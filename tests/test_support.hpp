// Shared fixtures for format tests: the paper's Fig. 1 example tensor and
// small helpers.
#pragma once

#include <filesystem>
#include <span>
#include <vector>

#include "core/coords.hpp"
#include "core/shape.hpp"
#include "formats/format.hpp"

namespace artsparse::testing {

/// The 3x3x3 example of Fig. 1: five points with values v1..v5 (encoded as
/// 1.0..5.0).
inline CoordBuffer fig1_coords() {
  CoordBuffer coords(3);
  coords.append({0, 0, 1});
  coords.append({0, 1, 1});
  coords.append({0, 1, 2});
  coords.append({2, 2, 1});
  coords.append({2, 2, 2});
  return coords;
}

inline Shape fig1_shape() { return Shape{3, 3, 3}; }

inline std::vector<value_t> fig1_values() {
  return {1.0, 2.0, 3.0, 4.0, 5.0};
}

/// Serialize-then-load round trip into `fresh`.
template <typename FormatT>
void reload(const FormatT& format, FormatT& fresh) {
  const Bytes bytes = serialize_format(format);
  BufferReader reader(bytes);
  fresh.load(reader);
}

/// Unique temporary directory for store tests; caller removes it.
inline std::filesystem::path fresh_temp_dir(const std::string& tag) {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("artsparse_test_" + tag + "_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter++));
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace artsparse::testing
