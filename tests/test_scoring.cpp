#include "benchlib/scoring.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace artsparse {
namespace {

Measurement fake(const std::string& workload, OrgKind org, double write,
                 double read, std::size_t bytes) {
  Measurement m;
  m.workload = workload;
  m.org = org;
  m.write_times.build = write;
  m.read_times.query = read;
  m.file_bytes = bytes;
  return m;
}

TEST(Scoring, MetricValueExtraction) {
  const Measurement m = fake("w", OrgKind::kCoo, 2.0, 3.0, 400);
  EXPECT_DOUBLE_EQ(metric_value(m, Metric::kWriteTime), 2.0);
  EXPECT_DOUBLE_EQ(metric_value(m, Metric::kReadTime), 3.0);
  EXPECT_DOUBLE_EQ(metric_value(m, Metric::kFileSize), 400.0);
}

TEST(Scoring, WorstOrganizationScoresOne) {
  // One cell where COO is worst on every metric: its normalized value is
  // 1.0 on all three.
  const std::vector<Measurement> grid{
      fake("cell", OrgKind::kCoo, 4.0, 10.0, 800),
      fake("cell", OrgKind::kLinear, 1.0, 5.0, 200),
  };
  const ScoreTable table = compute_scores(grid);
  EXPECT_DOUBLE_EQ(table.overall.at(OrgKind::kCoo), 1.0);
  // LINEAR: (0.25 + 0.5 + 0.25) / 3.
  EXPECT_NEAR(table.overall.at(OrgKind::kLinear), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(table.best(), OrgKind::kLinear);
}

TEST(Scoring, AveragesAcrossCells) {
  const std::vector<Measurement> grid{
      fake("a", OrgKind::kCoo, 2.0, 2.0, 2),
      fake("a", OrgKind::kCsf, 1.0, 1.0, 1),
      fake("b", OrgKind::kCoo, 1.0, 1.0, 1),
      fake("b", OrgKind::kCsf, 2.0, 2.0, 2),
  };
  const ScoreTable table = compute_scores(grid);
  // Symmetric: both average (1.0 + 0.5) / 2 = 0.75 per metric.
  EXPECT_NEAR(table.overall.at(OrgKind::kCoo), 0.75, 1e-12);
  EXPECT_NEAR(table.overall.at(OrgKind::kCsf), 0.75, 1e-12);
}

TEST(Scoring, PerMetricBreakdownExposed) {
  const std::vector<Measurement> grid{
      fake("a", OrgKind::kCoo, 4.0, 1.0, 100),
      fake("a", OrgKind::kLinear, 1.0, 1.0, 100),
  };
  const ScoreTable table = compute_scores(grid);
  EXPECT_DOUBLE_EQ(table.per_metric.at(Metric::kWriteTime).at(OrgKind::kLinear),
                   0.25);
  EXPECT_DOUBLE_EQ(table.per_metric.at(Metric::kReadTime).at(OrgKind::kCoo),
                   1.0);
}

TEST(Scoring, DegenerateAllZeroCellSkipped) {
  const std::vector<Measurement> grid{
      fake("a", OrgKind::kCoo, 0.0, 0.0, 0),
      fake("a", OrgKind::kLinear, 0.0, 0.0, 0),
      fake("b", OrgKind::kCoo, 2.0, 2.0, 2),
      fake("b", OrgKind::kLinear, 1.0, 1.0, 1),
  };
  const ScoreTable table = compute_scores(grid);
  EXPECT_DOUBLE_EQ(table.overall.at(OrgKind::kCoo), 1.0);
  EXPECT_DOUBLE_EQ(table.overall.at(OrgKind::kLinear), 0.5);
}

TEST(Scoring, EmptyInputRejected) {
  EXPECT_THROW(compute_scores({}), FormatError);
}

TEST(Scoring, ScoresLieInUnitInterval) {
  const std::vector<Measurement> grid{
      fake("a", OrgKind::kCoo, 5.0, 1.0, 10),
      fake("a", OrgKind::kGcsr, 2.0, 7.0, 30),
      fake("a", OrgKind::kCsf, 3.0, 2.0, 50),
  };
  const ScoreTable table = compute_scores(grid);
  for (const auto& [org, score] : table.overall) {
    EXPECT_GT(score, 0.0) << to_string(org);
    EXPECT_LE(score, 1.0) << to_string(org);
  }
}

TEST(Scoring, MetricNames) {
  EXPECT_EQ(to_string(Metric::kWriteTime), "write-time");
  EXPECT_EQ(to_string(Metric::kReadTime), "read-time");
  EXPECT_EQ(to_string(Metric::kFileSize), "file-size");
}

}  // namespace
}  // namespace artsparse
