#include "storage/serializer.hpp"

#include <gtest/gtest.h>

namespace artsparse {
namespace {

TEST(Serializer, PrimitiveRoundTrip) {
  BufferWriter writer;
  writer.put_u8(0xab);
  writer.put_u32(0xdeadbeef);
  writer.put_u64(0x0123456789abcdefULL);
  writer.put_f64(3.5);
  const Bytes bytes = writer.take();

  BufferReader reader(bytes);
  EXPECT_EQ(reader.get_u8(), 0xab);
  EXPECT_EQ(reader.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.get_f64(), 3.5);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serializer, VectorRoundTrip) {
  BufferWriter writer;
  const std::vector<std::uint64_t> ints{1, 2, 3};
  const std::vector<double> doubles{1.5, -2.5};
  writer.put_u64_vec(ints);
  writer.put_f64_vec(doubles);
  const Bytes bytes = writer.take();

  BufferReader reader(bytes);
  EXPECT_EQ(reader.get_u64_vec(), ints);
  EXPECT_EQ(reader.get_f64_vec(), doubles);
}

TEST(Serializer, EmptyVectorRoundTrip) {
  BufferWriter writer;
  writer.put_u64_vec({});
  BufferReader reader(writer.bytes());
  EXPECT_TRUE(reader.get_u64_vec().empty());
}

TEST(Serializer, StringRoundTrip) {
  BufferWriter writer;
  writer.put_string("hello, tensors");
  writer.put_string("");
  BufferReader reader(writer.bytes());
  EXPECT_EQ(reader.get_string(), "hello, tensors");
  EXPECT_EQ(reader.get_string(), "");
}

TEST(Serializer, RawBytesPassThrough) {
  BufferWriter writer;
  const Bytes payload{std::byte{1}, std::byte{2}, std::byte{3}};
  writer.put_bytes(payload);
  BufferReader reader(writer.bytes());
  EXPECT_EQ(reader.get_bytes(3), payload);
}

TEST(Serializer, TruncatedPrimitiveRejected) {
  BufferWriter writer;
  writer.put_u8(1);
  BufferReader reader(writer.bytes());
  EXPECT_THROW(reader.get_u64(), FormatError);
}

TEST(Serializer, HostileVectorLengthRejected) {
  // A length prefix claiming more elements than the buffer holds must not
  // trigger a giant allocation.
  BufferWriter writer;
  writer.put_u64(1ull << 60);
  BufferReader reader(writer.bytes());
  EXPECT_THROW(reader.get_u64_vec(), FormatError);
}

TEST(Serializer, GetBytesBeyondEndRejected) {
  BufferWriter writer;
  writer.put_u8(1);
  BufferReader reader(writer.bytes());
  EXPECT_THROW(reader.get_bytes(2), FormatError);
}

TEST(Serializer, OffsetTracksReads) {
  BufferWriter writer;
  writer.put_u32(0);
  writer.put_u32(0);
  BufferReader reader(writer.bytes());
  EXPECT_EQ(reader.offset(), 0u);
  reader.get_u32();
  EXPECT_EQ(reader.offset(), 4u);
  EXPECT_EQ(reader.remaining(), 4u);
}

TEST(Crc32, KnownVectors) {
  // CRC-32 of "123456789" is the classic check value 0xcbf43926.
  const std::string s = "123456789";
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  EXPECT_EQ(crc32(std::span<const std::byte>(p, s.size())), 0xcbf43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  Bytes data(64, std::byte{0x5a});
  const std::uint32_t original = crc32(data);
  data[17] ^= std::byte{0x01};
  EXPECT_NE(crc32(data), original);
}

}  // namespace
}  // namespace artsparse
