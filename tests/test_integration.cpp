// End-to-end scenarios across modules: multi-fragment stores mixing
// organizations, all organizations returning identical query results on the
// same data, compressed + throttled pipelines, and a small advisor loop.
#include <gtest/gtest.h>

#include "artsparse.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

class Integration : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = testing::fresh_temp_dir("integration"); }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
};

TEST_F(Integration, AllOrganizationsReturnIdenticalReads) {
  const Shape shape{64, 64, 64};
  const SparseDataset dataset = make_dataset(shape, MspConfig{0.005, 0.3}, 3);
  const Box region({16, 16, 16}, {47, 47, 47});

  std::vector<value_t> reference;
  for (OrgKind org : kPaperOrgs) {
    FragmentStore store(dir_ / to_string(org), shape);
    store.write(dataset.coords, dataset.values, org);
    const ReadResult result = store.read_region(region);
    if (reference.empty()) {
      reference = result.values;
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(result.values, reference) << to_string(org);
    }
  }
}

TEST_F(Integration, MixedOrganizationFragmentsInOneStore) {
  // A store whose fragments were written with different organizations (an
  // append-heavy workflow switching formats over time) must still answer
  // queries transparently.
  const Shape shape{128, 128};
  FragmentStore store(dir_, shape);

  std::vector<OrgKind> orgs(kPaperOrgs, kPaperOrgs + 5);
  std::size_t total_points = 0;
  for (std::size_t batch = 0; batch < orgs.size(); ++batch) {
    CoordBuffer coords(2);
    std::vector<value_t> values;
    // Disjoint row bands per batch.
    for (index_t r = batch * 16; r < batch * 16 + 8; ++r) {
      for (index_t c = 0; c < 32; c += 3) {
        coords.append({r, c});
        values.push_back(expected_value(coords.point(coords.size() - 1),
                                        shape));
      }
    }
    total_points += coords.size();
    store.write(coords, values, orgs[batch]);
  }
  EXPECT_EQ(store.fragment_count(), 5u);

  const ReadResult all = store.read_region(Box({0, 0}, {127, 127}));
  EXPECT_EQ(all.values.size(), total_points);
  for (std::size_t i = 0; i < all.values.size(); ++i) {
    EXPECT_EQ(all.values[i], expected_value(all.coords.point(i), shape));
  }
}

TEST_F(Integration, CompressedThrottledPipeline) {
  const Shape shape{96, 96};
  const SparseDataset dataset = make_dataset(shape, TspConfig{5}, 1);
  FragmentStore store(dir_, shape, DeviceModel{500e6, 50e-6},
                      CodecKind::kDeltaVarint);
  store.write(dataset.coords, dataset.values, OrgKind::kLinear);

  const Box region({40, 40}, {70, 70});
  const ReadResult result = store.read_region(region);
  for (std::size_t i = 0; i < result.values.size(); ++i) {
    EXPECT_EQ(result.values[i], expected_value(result.coords.point(i), shape));
  }
  EXPECT_GT(result.values.size(), 0u);
}

TEST_F(Integration, AdvisorPickVerifiesEndToEnd) {
  const Shape shape{64, 64, 64};
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.01}, 9);
  const SparsityProfile profile =
      profile_sparsity(dataset.coords, dataset.shape);
  const Recommendation rec =
      recommend_organization(profile, WorkloadWeights::read_mostly());

  FragmentStore store(dir_, shape);
  store.write(dataset.coords, dataset.values, rec.best().org);
  const ReadResult result = store.read_region(Box({32, 32, 32}, {38, 38, 38}));
  for (std::size_t i = 0; i < result.values.size(); ++i) {
    EXPECT_EQ(result.values[i], expected_value(result.coords.point(i), shape));
  }
}

TEST_F(Integration, FragmentFilesSurviveProcessBoundarySimulation) {
  // Write with one store instance, drop it, reopen from the directory only
  // (what a separate analysis process would do), and query.
  const Shape shape{64, 64};
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.05}, 21);
  {
    FragmentStore writer(dir_, shape, DeviceModel::unthrottled(),
                         CodecKind::kVarint);
    writer.write(dataset.coords, dataset.values, OrgKind::kCsf);
  }
  FragmentStore reader(dir_, shape);
  const ReadResult result = reader.read_region(Box({0, 0}, {63, 63}));
  EXPECT_EQ(result.values.size(), dataset.point_count());
}

TEST_F(Integration, ScoresFromRealGridFavorCompactFormats) {
  // Tiny grid end-to-end through harness + scoring: COO must not win.
  Workload w;
  w.name = "it-2D-GSP";
  w.shape = Shape{64, 64};
  w.pattern = PatternKind::kGsp;
  w.spec = GspConfig{0.05};
  w.seed = 2;

  HarnessOptions options;
  options.work_dir = dir_;
  options.device = DeviceModel::unthrottled();
  const auto measurements = run_grid(
      {w}, std::vector<OrgKind>(kPaperOrgs, kPaperOrgs + 5), options);
  const ScoreTable scores = compute_scores(measurements);
  EXPECT_NE(scores.best(), OrgKind::kCoo);
}

}  // namespace
}  // namespace artsparse
