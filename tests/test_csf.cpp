#include "formats/csf.hpp"

#include <gtest/gtest.h>

#include "core/sort.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

using testing::fig1_coords;
using testing::fig1_shape;

// Fig. 1's points under Algorithm 2: local extents are (3, 3, 2), so the
// ascending-extent dimension order is [2, 0, 1] (dimension 2 at the root).
// Sorted permuted tuples: (1,0,0) (1,0,1) (1,2,2) (2,0,1) (2,2,2) giving
//   level 0 (dim 2): {1, 2}
//   level 1 (dim 0): {0, 2 | 0, 2},        fptr0 = {0, 2, 4}
//   level 2 (dim 1): {0, 1 | 2 | 1 | 2},   fptr1 = {0, 2, 3, 4, 5}
TEST(Csf, Fig1TreeStructure) {
  CsfFormat csf;
  csf.build(fig1_coords(), fig1_shape());
  EXPECT_EQ(std::vector<std::size_t>(csf.dim_order().begin(),
                                     csf.dim_order().end()),
            (std::vector<std::size_t>{2, 0, 1}));
  EXPECT_EQ(std::vector<index_t>(csf.nfibs().begin(), csf.nfibs().end()),
            (std::vector<index_t>{2, 4, 5}));
  ASSERT_EQ(csf.fids().size(), 3u);
  EXPECT_EQ(csf.fids()[0], (std::vector<index_t>{1, 2}));
  EXPECT_EQ(csf.fids()[1], (std::vector<index_t>{0, 2, 0, 2}));
  EXPECT_EQ(csf.fids()[2], (std::vector<index_t>{0, 1, 2, 1, 2}));
  ASSERT_EQ(csf.fptr().size(), 2u);
  EXPECT_EQ(csf.fptr()[0], (std::vector<index_t>{0, 2, 4}));
  EXPECT_EQ(csf.fptr()[1], (std::vector<index_t>{0, 2, 3, 4, 5}));
}

TEST(Csf, Fig1MapAndLookups) {
  CsfFormat csf;
  const CoordBuffer coords = fig1_coords();
  const auto map = csf.build(coords, fig1_shape());
  EXPECT_EQ(map, (std::vector<std::size_t>{0, 1, 3, 2, 4}));
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(csf.lookup(coords.point(i)), map[i]);
  }
}

TEST(Csf, MissesAbsentPoints) {
  CsfFormat csf;
  csf.build(fig1_coords(), fig1_shape());
  const std::vector<index_t> miss_at_root{0, 0, 0};    // dim2 value 0 absent
  const std::vector<index_t> miss_at_mid{1, 0, 1};     // dim0 value 1 absent
  const std::vector<index_t> miss_at_leaf{0, 2, 1};    // leaf 2 absent there
  EXPECT_EQ(csf.lookup(miss_at_root), kNotFound);
  EXPECT_EQ(csf.lookup(miss_at_mid), kNotFound);
  EXPECT_EQ(csf.lookup(miss_at_leaf), kNotFound);
}

TEST(Csf, DimensionOrderSortsAscendingExtent) {
  CoordBuffer coords(3);
  coords.append({9, 0, 3});  // dim extents: 10, 1, 4 -> order 1, 2, 0
  coords.append({0, 0, 0});
  CsfFormat csf;
  csf.build(coords, Shape{16, 16, 16});
  EXPECT_EQ(std::vector<std::size_t>(csf.dim_order().begin(),
                                     csf.dim_order().end()),
            (std::vector<std::size_t>{1, 2, 0}));
}

TEST(Csf, WorstCaseSpaceIsNTimesD) {
  // Maximum divergence: no shared coordinates anywhere -> every level has
  // n nodes.
  CoordBuffer coords(3);
  for (index_t i = 0; i < 8; ++i) {
    coords.append({i, i, i});
  }
  CsfFormat csf;
  csf.build(coords, Shape{8, 8, 8});
  EXPECT_EQ(std::vector<index_t>(csf.nfibs().begin(), csf.nfibs().end()),
            (std::vector<index_t>{8, 8, 8}));
}

TEST(Csf, BestCaseSpaceIsNPlusD) {
  // Minimal branching: one shared prefix, all points in one leaf fiber.
  CoordBuffer coords(3);
  for (index_t i = 0; i < 8; ++i) {
    coords.append({0, 0, i});
  }
  CsfFormat csf;
  csf.build(coords, Shape{8, 8, 8});
  // Non-leaf levels have a single node; the leaf holds all n points.
  EXPECT_EQ(std::vector<index_t>(csf.nfibs().begin(), csf.nfibs().end()),
            (std::vector<index_t>{1, 1, 8}));
}

TEST(Csf, FptrRangesPartitionEachLevel) {
  CsfFormat csf;
  csf.build(fig1_coords(), fig1_shape());
  for (std::size_t level = 0; level + 1 < csf.fids().size(); ++level) {
    const auto& ptr = csf.fptr()[level];
    ASSERT_EQ(ptr.size(), csf.fids()[level].size() + 1);
    EXPECT_EQ(ptr.front(), 0u);
    EXPECT_EQ(ptr.back(), csf.fids()[level + 1].size());
    for (std::size_t k = 1; k < ptr.size(); ++k) {
      EXPECT_LT(ptr[k - 1], ptr[k]);  // every node has >= 1 child
    }
  }
}

TEST(Csf, FiberCoordinatesSortedWithinRanges) {
  CsfFormat csf;
  csf.build(fig1_coords(), fig1_shape());
  for (std::size_t level = 0; level + 1 < csf.fids().size(); ++level) {
    const auto& ptr = csf.fptr()[level];
    const auto& next = csf.fids()[level + 1];
    for (std::size_t k = 0; k + 1 < ptr.size(); ++k) {
      for (std::size_t i = ptr[k] + 1; i < ptr[k + 1]; ++i) {
        EXPECT_LT(next[i - 1], next[i]);
      }
    }
  }
}

TEST(Csf, SaveLoadRoundTrip) {
  CsfFormat csf;
  const CoordBuffer coords = fig1_coords();
  const auto map = csf.build(coords, fig1_shape());
  CsfFormat fresh;
  testing::reload(csf, fresh);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(fresh.lookup(coords.point(i)), map[i]);
  }
  EXPECT_EQ(fresh.nfibs().size(), 3u);
}

TEST(Csf, EmptyBuild) {
  CsfFormat csf;
  EXPECT_TRUE(csf.build(CoordBuffer(3), fig1_shape()).empty());
  const std::vector<index_t> point{0, 0, 1};
  EXPECT_EQ(csf.lookup(point), kNotFound);
  EXPECT_EQ(csf.point_count(), 0u);
}

TEST(Csf, SingleDimensionTensor) {
  CoordBuffer coords(1);
  coords.append({4});
  coords.append({1});
  coords.append({7});
  CsfFormat csf;
  const auto map = csf.build(coords, Shape{10});
  EXPECT_TRUE(is_permutation_of_iota(map));
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(csf.lookup(coords.point(i)), map[i]);
  }
  EXPECT_TRUE(csf.fptr().empty());
}

TEST(Csf, DuplicatePointsEachGetALeaf) {
  CoordBuffer coords(2);
  coords.append({1, 1});
  coords.append({1, 1});
  CsfFormat csf;
  const auto map = csf.build(coords, Shape{4, 4});
  EXPECT_TRUE(is_permutation_of_iota(map));
  EXPECT_EQ(csf.point_count(), 2u);
}

TEST(Csf, CorruptFptrRejectedOnLoad) {
  CsfFormat csf;
  csf.build(fig1_coords(), fig1_shape());
  BufferWriter writer;
  csf.save(writer);
  Bytes bytes = writer.take();
  bytes.resize(bytes.size() - 8);
  CsfFormat fresh;
  BufferReader reader(bytes);
  EXPECT_THROW(fresh.load(reader), FormatError);
}

TEST(Csf, IndexWordsTracksTreeSize) {
  CsfFormat csf;
  csf.build(fig1_coords(), fig1_shape());
  // nfibs(3) + dim_order(3) + fids(2+4+5) + fptr(3+5) = 25 words.
  EXPECT_EQ(csf.index_words(), 25u);
}

}  // namespace
}  // namespace artsparse
