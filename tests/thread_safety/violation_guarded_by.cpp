// Seeded violation: writes an ARTSPARSE_GUARDED_BY member without
// holding its mutex. Clang's thread safety analysis must reject this
// translation unit (the ctest entry is WILL_FAIL); if it ever compiles,
// the -Werror=thread-safety gate has silently stopped working.
#include "core/thread_safety.hpp"

namespace {

class Counter {
 public:
  void increment_without_lock() {
    ++value_;  // BUG (deliberate): guarded write, no lock held
  }

 private:
  mutable artsparse::Mutex mutex_;
  int value_ ARTSPARSE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment_without_lock();
  return 0;
}
