// Seeded violation: calls an ARTSPARSE_REQUIRES(mutex_) function without
// holding the mutex. Clang's thread safety analysis must reject this
// translation unit (the ctest entry is WILL_FAIL).
#include "core/thread_safety.hpp"

namespace {

class Counter {
 public:
  void increment_locked() ARTSPARSE_REQUIRES(mutex_) { ++value_; }

  void broken_caller() {
    increment_locked();  // BUG (deliberate): REQUIRES callee, no lock
  }

 private:
  mutable artsparse::Mutex mutex_;
  int value_ ARTSPARSE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.broken_caller();
  return 0;
}
