// Positive control for the negative-compile harness: a correctly locked
// counter that must compile clean under -Werror=thread-safety. If this
// file fails, the harness flags are broken, and the WILL_FAIL violation
// tests beside it prove nothing.
#include "core/thread_safety.hpp"

namespace {

class Counter {
 public:
  void increment() ARTSPARSE_EXCLUDES(mutex_) {
    const artsparse::MutexLock lock(mutex_);
    ++value_;
  }

  int value() const ARTSPARSE_EXCLUDES(mutex_) {
    const artsparse::MutexLock lock(mutex_);
    return value_;
  }

  void increment_locked() ARTSPARSE_REQUIRES(mutex_) { ++value_; }

  void increment_twice() ARTSPARSE_EXCLUDES(mutex_) {
    const artsparse::MutexLock lock(mutex_);
    increment_locked();
    increment_locked();
  }

 private:
  mutable artsparse::Mutex mutex_;
  int value_ ARTSPARSE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  counter.increment_twice();
  return counter.value() == 3 ? 0 : 1;
}
