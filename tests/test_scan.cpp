// Native box-scan tests: for every organization, scan_box must return
// exactly the stored points inside the box (same set as per-cell lookups),
// with slots that resolve to the right values — plus format-specific
// pruning edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/linearize.hpp"
#include "formats/registry.hpp"
#include "patterns/dataset.hpp"
#include "storage/fragment_store.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

struct ScanCase {
  OrgKind org;
  std::size_t rank;
  PatternKind pattern;
};

std::string case_name(const ::testing::TestParamInfo<ScanCase>& info) {
  std::string name = to_string(info.param.org) + "_" +
                     std::to_string(info.param.rank) + "D_" +
                     to_string(info.param.pattern);
  std::erase(name, '+');
  return name;
}

SparseDataset scan_dataset(std::size_t rank, PatternKind pattern) {
  const index_t extent = rank == 2 ? 64 : rank == 3 ? 24 : 10;
  const Shape shape = Shape::uniform(rank, extent);
  PatternSpec spec;
  switch (pattern) {
    case PatternKind::kTsp:
      spec = TspConfig{3};
      break;
    case PatternKind::kGsp:
      spec = GspConfig{0.08};
      break;
    case PatternKind::kMsp:
      spec = MspConfig{0.02, 0.6};
      break;
  }
  return make_dataset(shape, spec, /*seed=*/4321);
}

Box middle_box(const Shape& shape) {
  std::vector<index_t> lo(shape.rank());
  std::vector<index_t> hi(shape.rank());
  for (std::size_t i = 0; i < shape.rank(); ++i) {
    lo[i] = shape.extent(i) / 4;
    hi[i] = shape.extent(i) - shape.extent(i) / 4;
  }
  return Box(std::move(lo), std::move(hi));
}

class ScanBox : public ::testing::TestWithParam<ScanCase> {};

TEST_P(ScanBox, FindsExactlyTheStoredPointsInBox) {
  const auto& param = GetParam();
  const SparseDataset dataset = scan_dataset(param.rank, param.pattern);
  auto format = make_format(param.org);
  format->build(dataset.coords, dataset.shape);
  const Box box = middle_box(dataset.shape);

  CoordBuffer points(dataset.shape.rank());
  std::vector<std::size_t> slots;
  format->scan_box(box, points, slots);
  ASSERT_EQ(points.size(), slots.size());

  std::set<index_t> scanned;
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(box.contains(points.point(i)));
    scanned.insert(linearize(points.point(i), dataset.shape));
  }
  EXPECT_EQ(scanned.size(), points.size()) << "scan returned duplicates";

  std::set<index_t> expected;
  for (std::size_t i = 0; i < dataset.coords.size(); ++i) {
    if (box.contains(dataset.coords.point(i))) {
      expected.insert(linearize(dataset.coords.point(i), dataset.shape));
    }
  }
  EXPECT_EQ(scanned, expected);
}

TEST_P(ScanBox, SlotsAgreeWithLookup) {
  const auto& param = GetParam();
  const SparseDataset dataset = scan_dataset(param.rank, param.pattern);
  auto format = make_format(param.org);
  format->build(dataset.coords, dataset.shape);
  const Box box = middle_box(dataset.shape);

  CoordBuffer points(dataset.shape.rank());
  std::vector<std::size_t> slots;
  format->scan_box(box, points, slots);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(slots[i], format->lookup(points.point(i)));
  }
}

TEST_P(ScanBox, DisjointBoxIsEmpty) {
  const auto& param = GetParam();
  // Points near the origin, box in the far corner.
  const Shape shape = Shape::uniform(param.rank, 100);
  CoordBuffer coords(param.rank);
  coords.append(std::vector<index_t>(param.rank, 1));
  coords.append(std::vector<index_t>(param.rank, 3));
  auto format = make_format(param.org);
  format->build(coords, shape);

  const Box far(std::vector<index_t>(param.rank, 90),
                std::vector<index_t>(param.rank, 99));
  CoordBuffer points(param.rank);
  std::vector<std::size_t> slots;
  format->scan_box(far, points, slots);
  EXPECT_TRUE(points.empty());
  EXPECT_TRUE(slots.empty());
}

TEST_P(ScanBox, WholeTensorBoxReturnsEverything) {
  const auto& param = GetParam();
  const SparseDataset dataset = scan_dataset(param.rank, param.pattern);
  auto format = make_format(param.org);
  format->build(dataset.coords, dataset.shape);

  CoordBuffer points(dataset.shape.rank());
  std::vector<std::size_t> slots;
  format->scan_box(Box::whole(dataset.shape), points, slots);
  EXPECT_EQ(points.size(), dataset.point_count());
}

TEST_P(ScanBox, SingleCellBox) {
  const auto& param = GetParam();
  const SparseDataset dataset = scan_dataset(param.rank, param.pattern);
  auto format = make_format(param.org);
  format->build(dataset.coords, dataset.shape);

  const auto target = dataset.coords.point(dataset.coords.size() / 2);
  const Box cell(std::vector<index_t>(target.begin(), target.end()),
                 std::vector<index_t>(target.begin(), target.end()));
  CoordBuffer points(dataset.shape.rank());
  std::vector<std::size_t> slots;
  format->scan_box(cell, points, slots);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(slots[0], format->lookup(target));
}

TEST_P(ScanBox, EmptyFormatScansEmpty) {
  const auto& param = GetParam();
  const Shape shape = Shape::uniform(param.rank, 16);
  auto format = make_format(param.org);
  format->build(CoordBuffer(param.rank), shape);
  CoordBuffer points(param.rank);
  std::vector<std::size_t> slots;
  format->scan_box(Box::whole(shape), points, slots);
  EXPECT_TRUE(points.empty());
}

std::vector<ScanCase> scan_cases() {
  std::vector<ScanCase> cases;
  for (OrgKind org : all_org_kinds()) {
    for (std::size_t rank : {2u, 3u, 4u}) {
      for (PatternKind pattern :
           {PatternKind::kTsp, PatternKind::kGsp, PatternKind::kMsp}) {
        cases.push_back({org, rank, pattern});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOrgs, ScanBox, ::testing::ValuesIn(scan_cases()),
                         case_name);

// ---------- store-level scan_region ----------

TEST(ScanRegion, MatchesReadRegion) {
  const auto dir = testing::fresh_temp_dir("scan_region");
  const Shape shape{48, 48, 48};
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.02}, 5);

  for (OrgKind org : kPaperOrgs) {
    FragmentStore store(dir / to_string(org), shape);
    store.write(dataset.coords, dataset.values, org);
    const Box region({10, 10, 10}, {40, 40, 40});
    const ReadResult scanned = store.scan_region(region);
    const ReadResult queried = store.read_region(region);
    EXPECT_EQ(scanned.values, queried.values) << to_string(org);
    EXPECT_TRUE(scanned.coords == queried.coords) << to_string(org);
  }
  std::filesystem::remove_all(dir);
}

TEST(ScanRegion, MergesMultipleFragments) {
  const auto dir = testing::fresh_temp_dir("scan_merge");
  const Shape shape{64, 64};
  FragmentStore store(dir, shape);
  for (index_t base : {index_t{0}, index_t{20}, index_t{40}}) {
    CoordBuffer coords(2);
    std::vector<value_t> values;
    for (index_t i = 0; i < 8; ++i) {
      coords.append({base + i, base + i});
      values.push_back(expected_value(coords.point(coords.size() - 1),
                                      shape));
    }
    store.write(coords, values, OrgKind::kCsf);
  }
  const ReadResult result = store.scan_region(Box({0, 0}, {63, 63}));
  EXPECT_EQ(result.values.size(), 24u);
  for (std::size_t i = 1; i < result.values.size(); ++i) {
    EXPECT_LT(linearize(result.coords.point(i - 1), shape),
              linearize(result.coords.point(i), shape));
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace artsparse
