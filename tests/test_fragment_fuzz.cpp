// Robustness fuzzing of the fragment decoder: random truncations, random
// byte corruptions, and random garbage must always fail with FormatError —
// never crash, hang, or allocate absurd amounts.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "formats/registry.hpp"
#include "storage/fragment.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

Bytes valid_fragment_bytes(OrgKind org, CodecKind codec) {
  auto format = make_format(org);
  const CoordBuffer coords = testing::fig1_coords();
  format->build(coords, testing::fig1_shape());
  Fragment fragment;
  fragment.org = org;
  fragment.codec = codec;
  fragment.shape = testing::fig1_shape();
  fragment.bbox = Box::bounding(coords);
  fragment.point_count = coords.size();
  fragment.index = serialize_format(*format);
  fragment.values = testing::fig1_values();
  return encode_fragment(fragment);
}

TEST(FragmentFuzz, EveryTruncationFailsCleanly) {
  const Bytes valid = valid_fragment_bytes(OrgKind::kGcsr,
                                           CodecKind::kIdentity);
  for (std::size_t keep = 0; keep < valid.size(); ++keep) {
    const Bytes truncated(valid.begin(),
                          valid.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(decode_fragment(truncated), FormatError)
        << "kept " << keep << " of " << valid.size();
  }
}

TEST(FragmentFuzz, SingleByteCorruptionNeverDecodesSilently) {
  // The CRC catches every single-byte flip (CRC-32 detects all 1-bit and
  // 2-bit errors, and any burst under 32 bits).
  const Bytes valid = valid_fragment_bytes(OrgKind::kCsf,
                                           CodecKind::kVarint);
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes corrupt = valid;
    const std::size_t at = rng.next_below(corrupt.size());
    corrupt[at] ^= static_cast<std::byte>(1 + rng.next_below(255));
    EXPECT_THROW(decode_fragment(corrupt), FormatError) << "byte " << at;
  }
}

TEST(FragmentFuzz, RandomGarbageRejected) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    Bytes garbage(8 + rng.next_below(512));
    for (auto& b : garbage) {
      b = static_cast<std::byte>(rng.next_below(256));
    }
    EXPECT_THROW(decode_fragment(garbage), FormatError);
    EXPECT_THROW(decode_fragment_info(garbage), FormatError);
  }
}

TEST(FragmentFuzz, TruncatedInfoFailsCleanlyForEveryOrgAndCodec) {
  for (OrgKind org : {OrgKind::kCoo, OrgKind::kLinear, OrgKind::kBcsr}) {
    for (CodecKind codec :
         {CodecKind::kIdentity, CodecKind::kDeltaVarint, CodecKind::kRle}) {
      const Bytes valid = valid_fragment_bytes(org, codec);
      // Header-only parse on progressively shorter prefixes.
      for (std::size_t keep = 0; keep < 64 && keep < valid.size();
           keep += 3) {
        const Bytes prefix(
            valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(keep));
        EXPECT_THROW(decode_fragment_info(prefix), FormatError);
      }
      // The intact payload still parses.
      EXPECT_EQ(decode_fragment(valid).point_count, 5u);
    }
  }
}

TEST(FragmentFuzz, FormatLoadFuzzedIndexNeverCrashes) {
  // Below the fragment layer: feed each format's load() random prefixes of
  // a valid index; every failure must be a FormatError.
  Xoshiro256 rng(123);
  for (OrgKind org : all_org_kinds()) {
    auto format = make_format(org);
    const CoordBuffer coords = testing::fig1_coords();
    format->build(coords, testing::fig1_shape());
    const Bytes valid = serialize_format(*format);
    for (int trial = 0; trial < 50; ++trial) {
      const std::size_t keep = rng.next_below(valid.size());
      Bytes prefix(valid.begin(),
                   valid.begin() + static_cast<std::ptrdiff_t>(keep));
      if (trial % 2 == 1 && !prefix.empty()) {
        prefix[rng.next_below(prefix.size())] ^= std::byte{0xff};
      }
      auto fresh = make_format(org);
      BufferReader reader(prefix);
      try {
        fresh->load(reader);
        // Loading may *succeed* on a prefix that happens to be
        // self-consistent; lookups must then still be memory-safe.
        fresh->lookup(coords.point(0));
      } catch (const FormatError&) {
        // expected for malformed input
      } catch (const OverflowError&) {
        // corrupt extents may legitimately overflow shape arithmetic
      }
    }
  }
}

}  // namespace
}  // namespace artsparse
