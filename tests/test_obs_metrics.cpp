// MetricsRegistry, the metric primitives, and the exporters. Tests use
// test-local metric names (the registry is process-wide and shared with
// every other suite in this binary).
#include <gtest/gtest.h>

#include <string>

#include "core/error.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace artsparse::obs {
namespace {

TEST(ObsMetrics, CounterAccumulatesAndResets) {
  Counter& counter = registry().counter("test_obs_counter_basic_total");
  const std::uint64_t before = counter.value();
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), before + 42);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsMetrics, RegistryReturnsStableReferences) {
  Counter& a = registry().counter("test_obs_counter_stable_total");
  Counter& b = registry().counter("test_obs_counter_stable_total");
  EXPECT_EQ(&a, &b);
  // Distinct labels are distinct series.
  Counter& gcsr = registry().counter("test_obs_labeled_total", "",
                                     {{"org", "gcsr"}});
  Counter& csf = registry().counter("test_obs_labeled_total", "",
                                    {{"org", "csf"}});
  EXPECT_NE(&gcsr, &csf);
}

TEST(ObsMetrics, KindMismatchThrows) {
  registry().counter("test_obs_kind_clash");
  EXPECT_THROW(registry().gauge("test_obs_kind_clash"), Error);
  EXPECT_THROW(registry().histogram("test_obs_kind_clash"), Error);
}

TEST(ObsMetrics, GaugeTracksLevelAndSurvivesReset) {
  Gauge& gauge = registry().gauge("test_obs_gauge_level");
  gauge.set(10);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 7);
  Counter& counter = registry().counter("test_obs_gauge_peer_total");
  counter.add(5);
  registry().reset();
  // reset() zeroes counters/histograms but must not touch gauges: they
  // mirror live state owned by their instruments.
  EXPECT_EQ(gauge.value(), 7);
  EXPECT_EQ(counter.value(), 0u);
  gauge.set(0);
}

TEST(ObsMetrics, HistogramBucketsObservations) {
  Histogram& hist =
      registry().histogram("test_obs_hist_ns", "", {}, {10.0, 100.0, 1000.0});
  hist.reset();
  hist.observe(5.0);     // le=10
  hist.observe(10.0);    // le=10 (inclusive upper bound)
  hist.observe(50.0);    // le=100
  hist.observe(5000.0);  // +Inf
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 5065.0);
  const std::vector<std::uint64_t> buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // three bounds + Inf
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(ObsMetrics, SnapshotFindsByNameAndLabels) {
  registry().counter("test_obs_snap_total", "", {{"k", "a"}}).add(3);
  registry().counter("test_obs_snap_total", "", {{"k", "b"}}).add(7);
  const MetricsSnapshot snap = registry().snapshot();
  EXPECT_DOUBLE_EQ(snap.value("test_obs_snap_total", {{"k", "a"}}), 3.0);
  EXPECT_DOUBLE_EQ(snap.value("test_obs_snap_total", {{"k", "b"}}), 7.0);
  EXPECT_EQ(snap.find("test_obs_absent"), nullptr);
  EXPECT_DOUBLE_EQ(snap.value("test_obs_absent"), 0.0);
}

TEST(ObsMetrics, PrometheusExportIsWellFormed) {
  registry().counter("test_obs_prom_total", "events seen").add(2);
  registry()
      .histogram("test_obs_prom_ns", "", {}, {100.0, 1000.0})
      .observe(50.0);
  const std::string text = to_prometheus(registry().snapshot());
  EXPECT_NE(text.find("# TYPE test_obs_prom_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP test_obs_prom_total events seen"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_total 2"), std::string::npos);
  // Histogram: cumulative buckets, +Inf, _sum, _count.
  EXPECT_NE(text.find("# TYPE test_obs_prom_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_ns_bucket{le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_ns_bucket{le=\"1000\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_ns_sum 50"), std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_ns_count 1"), std::string::npos);
}

TEST(ObsMetrics, PrometheusEscapesLabelValues) {
  registry()
      .counter("test_obs_prom_escape_total", "",
               {{"path", "a\"b\\c\nd"}})
      .add(1);
  const std::string text = to_prometheus(registry().snapshot());
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(ObsMetrics, JsonExportCarriesValuesAndBuckets) {
  registry().counter("test_obs_json_total").add(9);
  const std::string json = to_json(registry().snapshot());
  EXPECT_NE(json.find("\"name\": \"test_obs_json_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

#if defined(ARTSPARSE_OBS_ENABLED)
TEST(ObsMetrics, MacrosPublishThroughCachedHandles) {
  registry().counter("test_obs_macro_total").reset();
  for (int i = 0; i < 3; ++i) {
    ARTSPARSE_COUNT("test_obs_macro_total", 2);
  }
  EXPECT_EQ(registry().counter("test_obs_macro_total").value(), 6u);

  ARTSPARSE_OBSERVE("test_obs_macro_ns", 1234.0);
  EXPECT_GE(registry().histogram("test_obs_macro_ns").count(), 1u);

  ARTSPARSE_COUNT_L("test_obs_macro_labeled_total", "org", "gcsr", 1);
  const MetricsSnapshot snap = registry().snapshot();
  EXPECT_GE(snap.value("test_obs_macro_labeled_total", {{"org", "gcsr"}}),
            1.0);
}
#endif

}  // namespace
}  // namespace artsparse::obs
