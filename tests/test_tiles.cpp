#include "tiles/tiled_store.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/linearize.hpp"
#include "core/rng.hpp"
#include "patterns/dataset.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

// ---------- TileGrid ----------

TEST(TileGrid, GridShapeCeilDivides) {
  const TileGrid grid(Shape{100, 64}, Shape{32, 32});
  EXPECT_EQ(grid.grid_shape(), (Shape{4, 2}));
  EXPECT_EQ(grid.tile_count(), 8u);
}

TEST(TileGrid, TileOfPoint) {
  const TileGrid grid(Shape{100, 64}, Shape{32, 32});
  const std::vector<index_t> p{33, 5};
  EXPECT_EQ(grid.tile_of(p), (std::vector<index_t>{1, 0}));
  EXPECT_EQ(grid.tile_id_of(p), 2u);  // row-major in a 4x2 grid
}

TEST(TileGrid, TileBoxInteriorAndClipped) {
  const TileGrid grid(Shape{100, 64}, Shape{32, 32});
  const std::vector<index_t> interior{1, 1};
  EXPECT_EQ(grid.tile_box(interior), Box({32, 32}, {63, 63}));
  // The last row of tiles is clipped: rows 96..99 only.
  const std::vector<index_t> edge{3, 0};
  EXPECT_EQ(grid.tile_box(edge), Box({96, 0}, {99, 31}));
}

TEST(TileGrid, TileBoxById) {
  const TileGrid grid(Shape{100, 64}, Shape{32, 32});
  EXPECT_EQ(grid.tile_box_by_id(2), Box({32, 0}, {63, 31}));
}

TEST(TileGrid, EveryPointFallsInItsTileBox) {
  const TileGrid grid(Shape{50, 70, 30}, Shape{16, 32, 30});
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<index_t> p{rng.next_below(50), rng.next_below(70),
                                 rng.next_below(30)};
    const Box box = grid.tile_box(grid.tile_of(p));
    EXPECT_TRUE(box.contains(p));
  }
}

TEST(TileGrid, TilesOverlappingBox) {
  const TileGrid grid(Shape{100, 64}, Shape{32, 32});
  // Box spanning tiles (0,0), (0,1), (1,0), (1,1).
  const auto ids = grid.tiles_overlapping(Box({20, 20}, {40, 40}));
  EXPECT_EQ(ids, (std::vector<index_t>{0, 1, 2, 3}));
}

TEST(TileGrid, TilesOverlappingSingleCell) {
  const TileGrid grid(Shape{100, 64}, Shape{32, 32});
  EXPECT_EQ(grid.tiles_overlapping(Box({96, 0}, {96, 0})),
            (std::vector<index_t>{6}));
}

TEST(TileGrid, OversizedTileRejected) {
  EXPECT_THROW(TileGrid(Shape{16, 16}, Shape{32, 16}), FormatError);
}

TEST(TileGrid, RankMismatchRejected) {
  EXPECT_THROW(TileGrid(Shape{16, 16}, Shape{8}), FormatError);
  const TileGrid grid(Shape{16, 16}, Shape{8, 8});
  const std::vector<index_t> bad{1, 2, 3};
  EXPECT_THROW(grid.tile_of(bad), FormatError);
}

TEST(TileGrid, PointOutsideTensorRejected) {
  const TileGrid grid(Shape{16, 16}, Shape{8, 8});
  const std::vector<index_t> outside{16, 0};
  EXPECT_THROW(grid.tile_of(outside), FormatError);
}

// ---------- TiledStore ----------

class TiledStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = testing::fresh_temp_dir("tiles"); }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(TiledStoreTest, WriteSplitsBatchIntoTileFragments) {
  const Shape shape{64, 64};
  TiledStore store(dir_, TileGrid(shape, Shape{32, 32}),
                   TilePolicy::fixed(OrgKind::kLinear));
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.05}, 3);
  const TiledWriteResult written =
      store.write(dataset.coords, dataset.values);
  EXPECT_EQ(written.tiles_written, 4u);  // dense-enough random data
  EXPECT_EQ(store.fragment_count(), 4u);
  EXPECT_EQ(written.point_count, dataset.point_count());
}

TEST_F(TiledStoreTest, ReadsMatchAcrossTileBoundaries) {
  const Shape shape{64, 64};
  TiledStore store(dir_, TileGrid(shape, Shape{16, 16}),
                   TilePolicy::fixed(OrgKind::kCsf));
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.08}, 9);
  store.write(dataset.coords, dataset.values);

  // Region crossing many tiles.
  const Box region({10, 10}, {50, 50});
  const ReadResult result = store.scan_region(region);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < dataset.coords.size(); ++i) {
    if (region.contains(dataset.coords.point(i))) ++expected;
  }
  ASSERT_EQ(result.values.size(), expected);
  for (std::size_t i = 0; i < result.values.size(); ++i) {
    EXPECT_EQ(result.values[i],
              expected_value(result.coords.point(i), shape));
  }
}

TEST_F(TiledStoreTest, ScanAndQueryAgree) {
  const Shape shape{48, 48};
  TiledStore store(dir_, TileGrid(shape, Shape{16, 16}),
                   TilePolicy::fixed(OrgKind::kGcsr));
  const SparseDataset dataset = make_dataset(shape, MspConfig{0.01, 0.5}, 4);
  store.write(dataset.coords, dataset.values);
  const Box region({8, 8}, {40, 40});
  const ReadResult scanned = store.scan_region(region);
  const ReadResult queried = store.read_region(region);
  EXPECT_EQ(scanned.values, queried.values);
}

TEST_F(TiledStoreTest, DiscoveryPrunesNonOverlappingTiles) {
  const Shape shape{64, 64};
  TiledStore store(dir_, TileGrid(shape, Shape{16, 16}),
                   TilePolicy::fixed(OrgKind::kLinear));
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.1}, 8);
  store.write(dataset.coords, dataset.values);
  EXPECT_EQ(store.fragment_count(), 16u);

  // A region inside one tile must open exactly one fragment.
  const ReadResult result = store.scan_region(Box({0, 0}, {10, 10}));
  EXPECT_EQ(result.fragments_visited, 1u);
}

TEST_F(TiledStoreTest, AdvisorPolicyPicksPerTile) {
  // A tensor whose left half is a dense diagonal band and right half is
  // random scatter: the advisor sees different profiles per tile.
  const Shape shape{64, 64};
  TiledStore store(dir_, TileGrid(shape, Shape{32, 32}),
                   TilePolicy::advisor(WorkloadWeights::read_mostly(), 1.0));
  CoordBuffer coords(2);
  std::vector<value_t> values;
  for (index_t i = 0; i < 32; ++i) {
    coords.append({i, i});  // tile (0,0): diagonal
  }
  Xoshiro256 rng(3);
  for (int k = 0; k < 200; ++k) {
    coords.append({rng.next_below(32), 32 + rng.next_below(32)});
  }
  for (std::size_t i = 0; i < coords.size(); ++i) {
    values.push_back(expected_value(coords.point(i), shape));
  }
  const TiledWriteResult written = store.write(coords, values);
  EXPECT_EQ(written.tiles_written, 2u);
  for (const auto& [tile, org] : written.tile_orgs) {
    // Read-heavy weights must avoid the scan formats everywhere.
    EXPECT_NE(org, OrgKind::kCoo);
    EXPECT_NE(org, OrgKind::kLinear);
  }

  const ReadResult all = store.scan_region(Box::whole(shape));
  EXPECT_EQ(all.values.size(), coords.size());
}

TEST_F(TiledStoreTest, MultipleWritesAppendFragments) {
  const Shape shape{32, 32};
  TiledStore store(dir_, TileGrid(shape, Shape{16, 16}),
                   TilePolicy::fixed(OrgKind::kCoo));
  CoordBuffer a(2);
  a.append({0, 0});
  CoordBuffer b(2);
  b.append({0, 1});
  const std::vector<value_t> va{expected_value(a.point(0), shape)};
  const std::vector<value_t> vb{expected_value(b.point(0), shape)};
  store.write(a, va);
  store.write(b, vb);
  EXPECT_EQ(store.fragment_count(), 2u);  // same tile, two fragments
  const ReadResult result = store.scan_region(Box({0, 0}, {1, 1}));
  EXPECT_EQ(result.values.size(), 2u);
}

TEST_F(TiledStoreTest, MismatchedValueCountRejected) {
  const Shape shape{32, 32};
  TiledStore store(dir_, TileGrid(shape, Shape{16, 16}));
  CoordBuffer coords(2);
  coords.append({1, 1});
  const std::vector<value_t> values{1.0, 2.0};
  EXPECT_THROW(store.write(coords, values), FormatError);
}

TEST_F(TiledStoreTest, DuplicatePointAcrossWritesBothReturned) {
  // Fragments are immutable; overlapping writes both surface (the caller
  // deduplicates by recency if needed — documented behaviour).
  const Shape shape{32, 32};
  TiledStore store(dir_, TileGrid(shape, Shape{16, 16}),
                   TilePolicy::fixed(OrgKind::kLinear));
  CoordBuffer coords(2);
  coords.append({5, 5});
  const std::vector<value_t> v1{1.0};
  const std::vector<value_t> v2{2.0};
  store.write(coords, v1);
  store.write(coords, v2);
  const ReadResult result = store.scan_region(Box({5, 5}, {5, 5}));
  EXPECT_EQ(result.values.size(), 2u);
}

}  // namespace
}  // namespace artsparse
