// Concurrency contract of the metrics registry (run under TSan in CI):
// parallel_for_each workers hammer counters, gauges, and histograms while
// a scraper thread snapshots and exports concurrently. Totals must come
// out exact — sharding may spread increments but never lose them.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "core/parallel.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace artsparse::obs {
namespace {

TEST(ObsConcurrency, ParallelWritersAndScraperAgreeOnTotals) {
  Counter& counter = registry().counter("test_obs_conc_total");
  Gauge& gauge = registry().gauge("test_obs_conc_gauge");
  Histogram& hist = registry().histogram("test_obs_conc_ns", "", {},
                                         {100.0, 10000.0, 1000000.0});
  counter.reset();
  gauge.set(0);
  hist.reset();

  constexpr std::size_t kItems = 20000;
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    // Scrape continuously while writers run; every intermediate reading
    // must be internally sane (count never exceeds the final total).
    while (!done.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = registry().snapshot();
      EXPECT_LE(snap.value("test_obs_conc_total"), kItems * 3.0);
      const std::string text = to_prometheus(snap);
      EXPECT_NE(text.find("test_obs_conc_total"), std::string::npos);
    }
  });

  // Grain 1: force the fan-out even though each item is tiny.
  parallel_for_each(
      kItems,
      [&](std::size_t i) {
        counter.add(3);
        gauge.add(1);
        gauge.add(-1);
        hist.observe(static_cast<double>(i));
        ARTSPARSE_COUNT("test_obs_conc_macro_total", 1);
      },
      0, 1);

  done.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_EQ(counter.value(), kItems * 3);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(hist.count(), kItems);
#if defined(ARTSPARSE_OBS_ENABLED)
  EXPECT_EQ(registry().counter("test_obs_conc_macro_total").value(),
            kItems);
#endif
}

TEST(ObsConcurrency, ParallelSpansRecordWithoutRacing) {
  const bool was_enabled = TraceBuffer::global().enabled();
  TraceBuffer::global().clear();
  TraceBuffer::global().set_enabled(true);

  constexpr std::size_t kSpans = 2000;
  parallel_for_each(
      kSpans,
      [&](std::size_t i) {
        Span span("obs_test.parallel", "test");
        span.attr("i", static_cast<std::uint64_t>(i));
      },
      0, 1);

  const std::vector<SpanRecord> spans = TraceBuffer::global().snapshot();
  EXPECT_EQ(spans.size() + TraceBuffer::global().dropped(), kSpans);

  TraceBuffer::global().set_enabled(was_enabled);
  TraceBuffer::global().clear();
}

TEST(ObsConcurrency, RegistrationRacesResolveToOneSeries) {
  // Many threads registering the same name concurrently must all get the
  // same instance.
  constexpr std::size_t kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Counter& c = registry().counter("test_obs_conc_race_total");
      c.add(1);
      seen[t] = &c;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);
  }
  EXPECT_EQ(registry().counter("test_obs_conc_race_total").value(),
            kThreads);
}

}  // namespace
}  // namespace artsparse::obs
