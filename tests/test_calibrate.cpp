#include "patterns/calibrate.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "patterns/dataset.hpp"

namespace artsparse {
namespace {

double measured_density(const Shape& shape, const PatternSpec& spec) {
  return make_dataset(shape, spec, /*seed=*/99).density();
}

TEST(CalibrateTsp, ReachesTargetDensity) {
  const Shape shape{256, 256};
  const double target = 0.0167;  // Table II, 2-D TSP
  const TspConfig config = calibrate_tsp(shape, target);
  const double density = measured_density(shape, config);
  EXPECT_GE(density, target);
  // Smallest sufficient width: one step narrower must fall short.
  if (config.half_width > 0) {
    EXPECT_LT(measured_density(shape, TspConfig{config.half_width - 1}),
              target);
  }
}

TEST(CalibrateTsp, HigherTargetWidensBand) {
  const Shape shape{128, 128};
  EXPECT_GT(calibrate_tsp(shape, 0.10).half_width,
            calibrate_tsp(shape, 0.01).half_width);
}

TEST(CalibrateTsp, ImpossibleTargetReturnsWidestBand) {
  const Shape shape{8, 8};
  const TspConfig config = calibrate_tsp(shape, 1.0);
  EXPECT_EQ(config.half_width, 7u);
}

TEST(CalibrateTsp, InvalidTargetRejected) {
  EXPECT_THROW(calibrate_tsp(Shape{8, 8}, 0.0), FormatError);
  EXPECT_THROW(calibrate_tsp(Shape{8, 8}, 1.5), FormatError);
}

TEST(CalibrateGsp, ProbabilityEqualsTarget) {
  EXPECT_DOUBLE_EQ(calibrate_gsp(0.0099).fill_probability, 0.0099);
}

TEST(CalibrateGsp, MeasuredDensityNearTarget) {
  const Shape shape{512, 512};
  const GspConfig config = calibrate_gsp(0.0099);
  EXPECT_NEAR(measured_density(shape, config), 0.0099, 0.001);
}

TEST(CalibrateMsp, MeasuredDensityNearTarget) {
  const Shape shape{512, 512};
  const double target = 0.0019;  // Table II, 2-D MSP
  const MspConfig config = calibrate_msp(shape, target);
  EXPECT_NEAR(measured_density(shape, config), target, 0.0005);
  EXPECT_DOUBLE_EQ(config.background_probability, 0.001);
}

TEST(CalibrateMsp, RegionFillSolvesClosedForm) {
  const Shape shape{90, 90};
  const Box region = msp_region(shape);
  const double f = static_cast<double>(region.cell_count()) /
                   static_cast<double>(shape.element_count());
  const double target = 0.01;
  const MspConfig config = calibrate_msp(shape, target, 0.001);
  EXPECT_NEAR(0.001 * (1.0 - f) + config.region_fill_probability * f,
              target, 1e-12);
}

TEST(CalibrateMsp, UnreachableTargetRejected) {
  // Region is ~1/9 of a 2-D tensor; with a 0.1% background the reachable
  // maximum is ~11.2%.
  EXPECT_THROW(calibrate_msp(Shape{90, 90}, 0.5), FormatError);
}

TEST(CalibrateMsp, TargetBelowBackgroundRejected) {
  EXPECT_THROW(calibrate_msp(Shape{90, 90}, 0.0001, 0.001), FormatError);
}

}  // namespace
}  // namespace artsparse
