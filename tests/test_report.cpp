#include "benchlib/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "core/error.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

TEST(Report, TableRendersHeaderAndRows) {
  TextTable table({"Org", "Time"});
  table.add_row({"COO", "0.1393"});
  table.add_row({"LINEAR", "0.0780"});
  const std::string s = table.str();
  EXPECT_NE(s.find("Org"), std::string::npos);
  EXPECT_NE(s.find("LINEAR"), std::string::npos);
  EXPECT_NE(s.find("0.1393"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Report, ColumnsAligned) {
  TextTable table({"A", "B"});
  table.add_row({"short", "1"});
  table.add_row({"a-much-longer-cell", "2"});
  const std::string s = table.str();
  // Every line has the same width.
  std::size_t width = std::string::npos;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t end = s.find('\n', start);
    const std::size_t len = end - start;
    if (width == std::string::npos) width = len;
    EXPECT_EQ(len, width);
    start = end + 1;
  }
}

TEST(Report, RowWidthMismatchRejected) {
  TextTable table({"A", "B"});
  EXPECT_THROW(table.add_row({"only-one"}), FormatError);
}

TEST(Report, CsvRoundTrip) {
  const auto dir = testing::fresh_temp_dir("report");
  const auto path = dir / "out.csv";
  TextTable table({"name", "value"});
  table.add_row({"plain", "1"});
  table.add_row({"with,comma", "2"});
  table.add_row({"with\"quote", "3"});
  table.write_csv(path);

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with\"\"quote\",3");
  std::filesystem::remove_all(dir);
}

TEST(Report, BarChartRendersRowsAndSeries) {
  const std::string chart =
      bar_chart("Demo", {"row-a", "row-b"}, {"X", "YY"},
                {{1.0, 2.0}, {4.0, 0.5}});
  EXPECT_NE(chart.find("Demo"), std::string::npos);
  EXPECT_NE(chart.find("row-a"), std::string::npos);
  EXPECT_NE(chart.find("YY"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(Report, BarChartBarsScaleWithValues) {
  const std::string chart =
      bar_chart("T", {"r"}, {"small", "large"}, {{1.0, 10.0}}, 40);
  // The 10x value gets ~10x the ticks.
  const auto count_hashes = [&](const std::string& label) {
    const std::size_t at = chart.find(label);
    const std::size_t bar_start = chart.find('|', at);
    const std::size_t bar_end = chart.find('|', bar_start + 1);
    return std::count(chart.begin() + static_cast<std::ptrdiff_t>(bar_start),
                      chart.begin() + static_cast<std::ptrdiff_t>(bar_end),
                      '#');
  };
  EXPECT_EQ(count_hashes("large"), 40);
  EXPECT_EQ(count_hashes("small"), 4);
}

TEST(Report, BarChartLogScaleRevealsMidValues) {
  // A value 30x above the minimum of a 1000x spread: one tick on a linear
  // scale, clearly visible (~mid-width) on the log scale.
  const std::string linear_chart = bar_chart(
      "T", {"r"}, {"lo", "mid", "hi"}, {{0.001, 0.032, 1.0}}, 40, false);
  const std::string log_chart = bar_chart(
      "T", {"r"}, {"lo", "mid", "hi"}, {{0.001, 0.032, 1.0}}, 40, true);
  EXPECT_NE(log_chart.find("(log scale)"), std::string::npos);
  const auto hashes = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '#');
  };
  // linear: 1 + 1 + 40; log: 1 + ~20 + 40.
  EXPECT_GT(hashes(log_chart), hashes(linear_chart) + 10);
}

TEST(Report, BarChartZeroValuesGetNoBar) {
  const std::string chart = bar_chart("T", {"r"}, {"z"}, {{0.0}}, 20);
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '#'), 0);
}

TEST(Report, BarChartShapeChecks) {
  EXPECT_THROW(bar_chart("T", {"r"}, {"a"}, {{1.0, 2.0}}), FormatError);
  EXPECT_THROW(bar_chart("T", {"r", "s"}, {"a"}, {{1.0}}), FormatError);
  EXPECT_THROW(bar_chart("T", {"r"}, {"a"}, {{-1.0}}), FormatError);
}

TEST(Report, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.0109), "0.0109");
  EXPECT_EQ(format_seconds(0.0), "0.0000");
}

TEST(Report, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(3u << 20), "3.00 MiB");
  EXPECT_EQ(format_bytes(5ull << 30), "5.00 GiB");
}

TEST(Report, FormatPercent) {
  EXPECT_EQ(format_percent(0.0167), "1.67%");
  EXPECT_EQ(format_percent(1.0), "100.00%");
}

TEST(Report, FormatFixed) {
  EXPECT_EQ(format_fixed(0.34, 2), "0.34");
  EXPECT_EQ(format_fixed(1.0 / 3.0, 4), "0.3333");
}

TEST(Report, FormatCacheStats) {
  CacheStats stats;
  stats.hits = 12;
  stats.misses = 4;
  stats.evictions = 1;
  stats.open_count = 3;
  stats.open_bytes = 1536;
  stats.budget_bytes = 256u << 20;
  EXPECT_EQ(format_cache_stats(stats),
            "cache: 12 hits / 4 misses (75.00% hit rate), 1 evictions, "
            "3 open (1.50 KiB of 256.00 MiB)");

  EXPECT_EQ(format_cache_stats(CacheStats{}),
            "cache: 0 hits / 0 misses (0.00% hit rate), 0 evictions, "
            "0 open (0 B of 0 B)");
}

}  // namespace
}  // namespace artsparse
