// End-to-end test of `artsparse_cli check` (the acceptance criterion of the
// invariant-checking subsystem): for each of the five seeded corruption
// classes, a store containing one corrupted fragment must make the CLI exit
// non-zero, and a clean store must exit zero. The CLI binary path is injected
// at compile time via ARTSPARSE_CLI_PATH.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "corruption_support.hpp"
#include "storage/file_io.hpp"
#include "storage/fragment_store.hpp"

namespace artsparse {
namespace {

namespace fs = std::filesystem;

int run_cli(const std::string& arguments) {
  const std::string command =
      std::string(ARTSPARSE_CLI_PATH) + " " + arguments + " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  if (status == -1) return -1;
#ifdef WIFEXITED
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
#else
  return status;
#endif
}

fs::path make_clean_store(const std::string& tag) {
  const fs::path dir = testing::fresh_temp_dir("cli_" + tag);
  FragmentStore store(dir, testing::fig1_shape());
  store.write(testing::fig1_coords(), testing::fig1_values(), OrgKind::kGcsr);
  store.write(testing::fig1_coords(), testing::fig1_values(), OrgKind::kCsf);
  return dir;
}

fs::path a_fragment_of(const fs::path& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".asf") return entry.path();
  }
  ADD_FAILURE() << "no fragment files in " << dir;
  return {};
}

struct CorruptionClass {
  const char* name;
  Bytes (*generate)();
};

TEST(CliCheck, CleanStoreExitsZeroAtEveryDepth) {
  const fs::path dir = make_clean_store("clean");
  for (const char* depth : {"header", "structure", "full"}) {
    EXPECT_EQ(run_cli("check --store " + dir.string() + " --depth " + depth),
              0)
        << depth;
  }
  EXPECT_EQ(run_cli("check --store " + dir.string() + " --json"), 0);
  fs::remove_all(dir);
}

TEST(CliCheck, EveryCorruptionClassMakesCheckExitNonZero) {
  const CorruptionClass classes[] = {
      {"truncated_buffer", testing::corrupt_truncated},
      {"bit_flipped_checksum", testing::corrupt_checksum},
      {"non_monotone_offsets", testing::corrupt_nonmonotone_offsets},
      {"out_of_shape_coord", testing::corrupt_out_of_shape_coord},
      {"bad_map_permutation", testing::corrupt_bad_map},
  };
  for (const CorruptionClass& corruption : classes) {
    const fs::path dir = make_clean_store(corruption.name);
    write_file(a_fragment_of(dir), corruption.generate());
    // Default depth (structure) must flag all five classes.
    EXPECT_NE(run_cli("check --store " + dir.string()), 0)
        << corruption.name;
    EXPECT_NE(run_cli("check --store " + dir.string() + " --json"), 0)
        << corruption.name << " (json)";
    fs::remove_all(dir);
  }
}

TEST(CliCheck, MissingStoreAndBadDepthFail) {
  EXPECT_NE(run_cli("check --store /nonexistent/artsparse_store"), 0);
  const fs::path dir = make_clean_store("baddepth");
  EXPECT_NE(run_cli("check --store " + dir.string() + " --depth bogus"), 0);
  EXPECT_NE(run_cli("check"), 0);  // --store is required
  fs::remove_all(dir);
}

TEST(CliCheck, RepairSweepsOrphansAndQuarantinesThenCheckIsClean) {
  const fs::path dir = make_clean_store("repair");
  // A crashed commit's stage file plus one torn fragment.
  write_file((dir / "frag_000031.asf.tmp").string(),
             testing::corrupt_truncated());
  write_file((dir / "frag_000032.asf").string(),
             testing::corrupt_truncated());
  EXPECT_NE(run_cli("check --store " + dir.string()), 0);

  EXPECT_EQ(run_cli("repair --store " + dir.string()), 0);
  EXPECT_FALSE(fs::exists(dir / "frag_000031.asf.tmp"));
  EXPECT_FALSE(fs::exists(dir / "frag_000032.asf"));
  EXPECT_TRUE(fs::exists(dir / "frag_000032.asf.quarantine"));
  EXPECT_EQ(run_cli("check --store " + dir.string() + " --depth full"), 0);
  fs::remove_all(dir);
}

TEST(CliCheck, ReadPolicySkipDegradesWhereStrictFails) {
  const fs::path dir = make_clean_store("readpolicy");
  // CRC-valid structural corruption: passes the open-time header sweep but
  // fails the hardened loader mid-read.
  write_file(a_fragment_of(dir), testing::corrupt_nonmonotone_offsets());
  EXPECT_NE(run_cli("read --store " + dir.string()), 0);
  EXPECT_NE(run_cli("read --store " + dir.string() +
                    " --read-policy strict"),
            0);
  EXPECT_EQ(run_cli("read --store " + dir.string() + " --read-policy skip"),
            0);
  EXPECT_EQ(run_cli("scan --store " + dir.string() + " --read-policy skip"),
            0);
  EXPECT_NE(run_cli("read --store " + dir.string() + " --read-policy bogus"),
            0);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace artsparse
