#include "storage/compress/codec.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "storage/compress/codec_impl.hpp"

namespace artsparse {
namespace {

Bytes words_to_bytes(const std::vector<std::uint64_t>& words) {
  Bytes out(words.size() * sizeof(std::uint64_t));
  std::memcpy(out.data(), words.data(), out.size());
  return out;
}

class CodecRoundTrip : public ::testing::TestWithParam<CodecKind> {};

TEST_P(CodecRoundTrip, WordPayloads) {
  const auto codec = make_codec(GetParam());
  Xoshiro256 rng(31);
  for (std::size_t words : {0u, 1u, 7u, 256u}) {
    std::vector<std::uint64_t> payload(words);
    for (auto& w : payload) w = rng.next();
    const Bytes raw = words_to_bytes(payload);
    const Bytes decoded = codec->decode(codec->encode(raw));
    EXPECT_EQ(decoded, raw) << to_string(GetParam()) << " words=" << words;
  }
}

TEST_P(CodecRoundTrip, UnalignedPayloads) {
  // Fragment index buffers are not word-aligned (they carry u8 flags);
  // every codec must accept arbitrary byte lengths.
  const auto codec = make_codec(GetParam());
  Xoshiro256 rng(37);
  for (std::size_t size : {1u, 3u, 9u, 17u, 1025u}) {
    Bytes raw(size);
    for (auto& b : raw) b = static_cast<std::byte>(rng.next_below(256));
    EXPECT_EQ(codec->decode(codec->encode(raw)), raw)
        << to_string(GetParam()) << " size=" << size;
  }
}

TEST_P(CodecRoundTrip, SortedAddressPayload) {
  const auto codec = make_codec(GetParam());
  std::vector<std::uint64_t> addresses;
  for (std::uint64_t a = 100; a < 5000; a += 7) addresses.push_back(a);
  const Bytes raw = words_to_bytes(addresses);
  EXPECT_EQ(codec->decode(codec->encode(raw)), raw);
}

TEST_P(CodecRoundTrip, KindMatches) {
  EXPECT_EQ(make_codec(GetParam())->kind(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTrip,
                         ::testing::Values(CodecKind::kIdentity,
                                           CodecKind::kDelta,
                                           CodecKind::kVarint,
                                           CodecKind::kRle,
                                           CodecKind::kDeltaVarint),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (c == '+') c = '_';
                           }
                           return name;
                         });

TEST(DeltaCodec, EncodesSmallGapsAsSmallWords) {
  DeltaCodec codec;
  const Bytes raw = words_to_bytes({100, 101, 103, 106});
  const Bytes coded = codec.encode(raw);
  // Layout: zigzag words first, 1-byte tail length marker at the end.
  EXPECT_EQ(static_cast<std::size_t>(coded.back()), 0u);
  std::vector<std::uint64_t> words(4);
  std::memcpy(words.data(), coded.data(), words.size() * 8);
  // zigzag(100), zigzag(1), zigzag(2), zigzag(3)
  EXPECT_EQ(words[0], 200u);
  EXPECT_EQ(words[1], 2u);
  EXPECT_EQ(words[2], 4u);
  EXPECT_EQ(words[3], 6u);
}

TEST(DeltaCodec, HandlesDecreasingSequences) {
  DeltaCodec codec;
  const Bytes raw = words_to_bytes({50, 10, 40});
  EXPECT_EQ(codec.decode(codec.encode(raw)), raw);
}

TEST(DeltaCodec, EmptyPayloadRejectedOnDecode) {
  DeltaCodec codec;
  EXPECT_TRUE(codec.decode(codec.encode(Bytes{})).empty());
  EXPECT_THROW(codec.decode(Bytes{}), FormatError);
}

TEST(VarintCodec, SmallWordsShrink) {
  VarintCodec codec;
  const Bytes raw = words_to_bytes({1, 2, 3, 4, 5, 6, 7, 8});
  const Bytes coded = codec.encode(raw);
  EXPECT_LT(coded.size(), raw.size());
}

TEST(VarintCodec, TruncatedPayloadRejected) {
  VarintCodec codec;
  const Bytes raw = words_to_bytes({1ull << 40});
  Bytes coded = codec.encode(raw);
  coded.pop_back();
  EXPECT_THROW(codec.decode(coded), FormatError);
}

TEST(RleCodec, ZeroRunsShrink) {
  RleCodec codec;
  const Bytes raw(4096, std::byte{0});
  const Bytes coded = codec.encode(raw);
  EXPECT_LT(coded.size(), raw.size() / 50);
  EXPECT_EQ(codec.decode(coded), raw);
}

TEST(RleCodec, ArbitraryBytesRoundTrip) {
  RleCodec codec;
  Xoshiro256 rng(17);
  Bytes raw(1001);  // deliberately not word-aligned
  for (auto& b : raw) b = static_cast<std::byte>(rng.next_below(4));
  EXPECT_EQ(codec.decode(codec.encode(raw)), raw);
}

TEST(DeltaVarint, SortedAddressesCompressWell) {
  const auto codec = make_codec(CodecKind::kDeltaVarint);
  std::vector<std::uint64_t> addresses;
  for (std::uint64_t a = 1u << 20; addresses.size() < 1000; a += 3) {
    addresses.push_back(a);
  }
  const Bytes raw = words_to_bytes(addresses);
  const Bytes coded = codec->encode(raw);
  // 8-byte words with tiny deltas become ~1 byte each.
  EXPECT_LT(coded.size(), raw.size() / 4);
  EXPECT_EQ(codec->decode(coded), raw);
}

TEST(Codec, Names) {
  EXPECT_EQ(to_string(CodecKind::kIdentity), "identity");
  EXPECT_EQ(to_string(CodecKind::kDeltaVarint), "delta+varint");
}

}  // namespace
}  // namespace artsparse
