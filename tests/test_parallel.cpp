#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <system_error>

#include "core/error.hpp"
#include "core/linearize.hpp"
#include "patterns/dataset.hpp"

namespace artsparse {
namespace {

/// Pins ARTSPARSE_THREADS for one test and restores the prior value after.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("ARTSPARSE_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value) {
      ::setenv("ARTSPARSE_THREADS", value, 1);
    } else {
      ::unsetenv("ARTSPARSE_THREADS");
    }
  }
  ~ScopedThreadsEnv() {
    if (had_old_) {
      ::setenv("ARTSPARSE_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("ARTSPARSE_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

unsigned hardware_fallback() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

TEST(Parallel, WorkerCountAtLeastOne) {
  EXPECT_GE(worker_count(), 1u);
}

TEST(Parallel, WorkerCountHonorsWellFormedEnv) {
  const ScopedThreadsEnv env("7");
  EXPECT_EQ(worker_count(), 7u);
}

TEST(Parallel, WorkerCountIgnoresTrailingGarbage) {
  // "4x" used to parse as 4 via strtol's longest-prefix rule; a malformed
  // setting must fall back to hardware, not honor the accidental prefix.
  const ScopedThreadsEnv env("4x");
  EXPECT_EQ(worker_count(), hardware_fallback());
}

TEST(Parallel, WorkerCountIgnoresEmptyZeroAndNegative) {
  {
    const ScopedThreadsEnv env("");
    EXPECT_EQ(worker_count(), hardware_fallback());
  }
  {
    const ScopedThreadsEnv env("0");
    EXPECT_EQ(worker_count(), hardware_fallback());
  }
  {
    const ScopedThreadsEnv env("-3");
    EXPECT_EQ(worker_count(), hardware_fallback());
  }
}

TEST(Parallel, WorkerCountClampsOversizedValues) {
  // 2^32 used to wrap to 0 through the long -> unsigned conversion,
  // violating the ">= 1 worker" contract; values past the clamp (including
  // out-of-range strings strtoll saturates) now pin to kMaxWorkerThreads.
  {
    const ScopedThreadsEnv env("4294967296");  // 2^32
    EXPECT_EQ(worker_count(), kMaxWorkerThreads);
  }
  {
    const ScopedThreadsEnv env("99999999999999999999");  // > LLONG_MAX
    EXPECT_EQ(worker_count(), kMaxWorkerThreads);
  }
  {
    const ScopedThreadsEnv env("1025");
    EXPECT_EQ(worker_count(), kMaxWorkerThreads);
  }
  {
    const ScopedThreadsEnv env("1024");
    EXPECT_EQ(worker_count(), 1024u);
  }
}

// State for the failing-spawner hook (function pointer: no captures).
std::atomic<int> g_spawn_calls{0};
std::atomic<int> g_spawned_ran{0};

std::thread failing_second_spawn(std::function<void()> work) {
  if (g_spawn_calls.fetch_add(1) == 1) {
    throw std::system_error(std::make_error_code(
        std::errc::resource_unavailable_try_again));
  }
  return std::thread([work = std::move(work)] {
    g_spawned_ran.fetch_add(1);
    work();
  });
}

TEST(Parallel, SpawnFailureMidLoopJoinsStartedWorkersAndPropagates) {
  // Faking thread exhaustion on the second spawn: before the fix the first
  // worker's std::thread destructor ran joinable and the process died in
  // std::terminate instead of surfacing the error.
  g_spawn_calls.store(0);
  g_spawned_ran.store(0);
  detail::set_thread_spawner_for_testing(&failing_second_spawn);
  std::atomic<std::size_t> covered{0};
  try {
    EXPECT_THROW(parallel_for(
                     0, kParallelGrain * 4,
                     [&](std::size_t lo, std::size_t hi) {
                       covered.fetch_add(hi - lo);
                     },
                     4),
                 std::system_error);
  } catch (...) {
    detail::set_thread_spawner_for_testing(nullptr);
    throw;
  }
  detail::set_thread_spawner_for_testing(nullptr);
  // The worker spawned before the failure was joined, not abandoned.
  EXPECT_EQ(g_spawn_calls.load(), 2);
  EXPECT_EQ(g_spawned_ran.load(), 1);
  EXPECT_EQ(covered.load(), kParallelGrain);  // first chunk of 4 completed
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  const std::size_t n = kParallelGrain * 3 + 17;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          hits[i].fetch_add(1);
        }
      },
      4);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(Parallel, EmptyRangeIsNoOp) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, SmallRangeRunsInline) {
  // Below the grain the callback sees the whole range in one call.
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(
      0, 100,
      [&](std::size_t lo, std::size_t hi) { chunks.emplace_back(lo, hi); },
      8);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], std::make_pair(std::size_t{0}, std::size_t{100}));
}

TEST(Parallel, NonZeroBeginHonored) {
  std::atomic<std::size_t> sum{0};
  parallel_for(
      10, kParallelGrain + 1010,
      [&](std::size_t lo, std::size_t hi) {
        std::size_t local = 0;
        for (std::size_t i = lo; i < hi; ++i) local += i;
        sum.fetch_add(local);
      },
      3);
  const std::size_t n = kParallelGrain + 1010;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2 - 10 * 9 / 2);
}

TEST(Parallel, WorkerExceptionPropagates) {
  EXPECT_THROW(
      parallel_for(
          0, kParallelGrain * 2,
          [&](std::size_t lo, std::size_t) {
            if (lo == 0) throw FormatError("boom");
          },
          2),
      FormatError);
}

TEST(Parallel, ForEachCoversEveryItemExactlyOnce) {
  const std::size_t n = kParallelGrain * 2 + 9;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_each(n, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(Parallel, ForEachCustomGrainFansOutSmallCounts) {
  // With grain 2, even a 4-item loop spreads across workers (the fragment
  // fan-out case: few items, each expensive).
  std::vector<std::atomic<int>> hits(4);
  parallel_for_each(4, [&](std::size_t i) { hits[i].fetch_add(1); }, 4,
                    /*grain=*/2);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(Parallel, TransformFillsOutput) {
  const std::size_t n = kParallelGrain + 5;
  std::vector<std::size_t> out(n);
  parallel_transform(n, out, [](std::size_t i) { return i * 2; }, 4);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], i * 2);
  }
}

TEST(Parallel, LinearizeAllIdenticalAcrossThreadCounts) {
  // Determinism: the parallel path must be bit-identical to serial.
  const Shape shape{256, 256};
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.9}, 7);
  ASSERT_GT(dataset.point_count(), kParallelGrain);  // engages threads

  const auto parallel = linearize_all(dataset.coords, shape);
  std::vector<index_t> serial(dataset.point_count());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    serial[i] = linearize(dataset.coords.point(i), shape);
  }
  EXPECT_EQ(parallel, serial);
}

}  // namespace
}  // namespace artsparse
