#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/error.hpp"
#include "core/linearize.hpp"
#include "patterns/dataset.hpp"

namespace artsparse {
namespace {

TEST(Parallel, WorkerCountAtLeastOne) {
  EXPECT_GE(worker_count(), 1u);
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  const std::size_t n = kParallelGrain * 3 + 17;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          hits[i].fetch_add(1);
        }
      },
      4);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(Parallel, EmptyRangeIsNoOp) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, SmallRangeRunsInline) {
  // Below the grain the callback sees the whole range in one call.
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(
      0, 100,
      [&](std::size_t lo, std::size_t hi) { chunks.emplace_back(lo, hi); },
      8);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], std::make_pair(std::size_t{0}, std::size_t{100}));
}

TEST(Parallel, NonZeroBeginHonored) {
  std::atomic<std::size_t> sum{0};
  parallel_for(
      10, kParallelGrain + 1010,
      [&](std::size_t lo, std::size_t hi) {
        std::size_t local = 0;
        for (std::size_t i = lo; i < hi; ++i) local += i;
        sum.fetch_add(local);
      },
      3);
  const std::size_t n = kParallelGrain + 1010;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2 - 10 * 9 / 2);
}

TEST(Parallel, WorkerExceptionPropagates) {
  EXPECT_THROW(
      parallel_for(
          0, kParallelGrain * 2,
          [&](std::size_t lo, std::size_t) {
            if (lo == 0) throw FormatError("boom");
          },
          2),
      FormatError);
}

TEST(Parallel, ForEachCoversEveryItemExactlyOnce) {
  const std::size_t n = kParallelGrain * 2 + 9;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_each(n, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(Parallel, ForEachCustomGrainFansOutSmallCounts) {
  // With grain 2, even a 4-item loop spreads across workers (the fragment
  // fan-out case: few items, each expensive).
  std::vector<std::atomic<int>> hits(4);
  parallel_for_each(4, [&](std::size_t i) { hits[i].fetch_add(1); }, 4,
                    /*grain=*/2);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(Parallel, TransformFillsOutput) {
  const std::size_t n = kParallelGrain + 5;
  std::vector<std::size_t> out(n);
  parallel_transform(n, out, [](std::size_t i) { return i * 2; }, 4);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], i * 2);
  }
}

TEST(Parallel, LinearizeAllIdenticalAcrossThreadCounts) {
  // Determinism: the parallel path must be bit-identical to serial.
  const Shape shape{256, 256};
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.9}, 7);
  ASSERT_GT(dataset.point_count(), kParallelGrain);  // engages threads

  const auto parallel = linearize_all(dataset.coords, shape);
  std::vector<index_t> serial(dataset.point_count());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    serial[i] = linearize(dataset.coords.point(i), shape);
  }
  EXPECT_EQ(parallel, serial);
}

}  // namespace
}  // namespace artsparse
