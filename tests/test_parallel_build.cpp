// Determinism suite for the parallel build pipeline: every format's
// build() must be a pure function of its input — the serialized fragment
// bytes and the returned `map` vector may not vary with ARTSPARSE_THREADS.
// The contract rests on stable-sort uniqueness: a stable sort's output
// permutation is fully determined by the keys, so the chunk-sort + merge
// path, the counting path, and the serial path are interchangeable.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/coords.hpp"
#include "core/rng.hpp"
#include "core/shape.hpp"
#include "core/sort.hpp"
#include "formats/format.hpp"
#include "formats/registry.hpp"
#include "patterns/dataset.hpp"

namespace artsparse {
namespace {

/// Thread counts the suite sweeps: serial, even, odd-prime, and whatever
/// the host hardware reports.
std::vector<const char*> thread_settings() {
  return {"1", "2", "7", nullptr};  // nullptr = unset (hardware)
}

void set_threads(const char* value) {
  if (value) {
    ::setenv("ARTSPARSE_THREADS", value, 1);
  } else {
    ::unsetenv("ARTSPARSE_THREADS");
  }
}

class ParallelBuild : public ::testing::Test {
 protected:
  // Restore (not just unset) the ambient value: CI runs the whole suite
  // with ARTSPARSE_THREADS pinned, and later tests must still see it.
  void SetUp() override {
    const char* ambient = std::getenv("ARTSPARSE_THREADS");
    had_ambient_ = ambient != nullptr;
    if (had_ambient_) ambient_ = ambient;
  }
  void TearDown() override {
    if (had_ambient_) {
      ::setenv("ARTSPARSE_THREADS", ambient_.c_str(), 1);
    } else {
      ::unsetenv("ARTSPARSE_THREADS");
    }
  }

 private:
  bool had_ambient_ = false;
  std::string ambient_;
};

/// Large enough to clear kParallelGrain so the parallel paths engage.
CoordBuffer dense_random_coords(std::size_t n, const Shape& shape,
                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<index_t> flat;
  flat.reserve(n * shape.rank());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t dim = 0; dim < shape.rank(); ++dim) {
      flat.push_back(rng.next_below(shape.extent(dim)));
    }
  }
  return CoordBuffer(shape.rank(), std::move(flat));
}

/// Formats to sweep. BCSR rejects duplicate coordinates by contract, so
/// duplicate-bearing inputs exclude it.
std::vector<OrgKind> swept_orgs(bool has_duplicates) {
  std::vector<OrgKind> orgs;
  for (OrgKind org : all_org_kinds()) {
    if (has_duplicates && org == OrgKind::kBcsr) continue;
    orgs.push_back(org);
  }
  return orgs;
}

void expect_identical_across_threads(const CoordBuffer& coords,
                                     const Shape& shape,
                                     bool has_duplicates = false) {
  for (OrgKind org : swept_orgs(has_duplicates)) {
    Bytes baseline_bytes;
    std::vector<std::size_t> baseline_map;
    bool first = true;
    for (const char* threads : thread_settings()) {
      set_threads(threads);
      auto format = make_format(org);
      std::vector<std::size_t> map = format->build(coords, shape);
      Bytes bytes = serialize_format(*format);
      const std::string label =
          to_string(org) + " threads=" + (threads ? threads : "hw");
      if (first) {
        baseline_bytes = std::move(bytes);
        baseline_map = std::move(map);
        first = false;
      } else {
        EXPECT_EQ(bytes, baseline_bytes) << label;
        EXPECT_EQ(map, baseline_map) << label;
      }
    }
    ::unsetenv("ARTSPARSE_THREADS");
  }
}

TEST_F(ParallelBuild, EveryFormatByteIdenticalAcrossThreadCounts) {
  // Small extents force heavy key duplication: each of the ~131k points
  // collides with many others in every sort key, so tie-breaking order is
  // what the serialized bytes actually witness.
  const Shape shape{16, 16, 16, 16};
  expect_identical_across_threads(
      dense_random_coords(kParallelGrain * 4 + 7, shape, 97), shape,
      /*has_duplicates=*/true);
}

TEST_F(ParallelBuild, DuplicateCoordinatesKeepInputOrder) {
  // Exact duplicate points: their relative order in the value buffer is
  // observable through `map` and must not depend on which chunk sorted
  // them.
  const Shape shape{8, 8};
  CoordBuffer coords(2);
  Xoshiro256 rng(5);
  for (std::size_t i = 0; i < kParallelGrain * 2; ++i) {
    const index_t r = rng.next_below(8);
    const index_t c = rng.next_below(8);
    coords.append({r, c});
    coords.append({r, c});  // every point appears at least twice
  }
  expect_identical_across_threads(coords, shape, /*has_duplicates=*/true);
}

TEST_F(ParallelBuild, AllEqualCoordinates) {
  // One coordinate repeated past the grain: every key comparison ties.
  const Shape shape{4, 4, 4};
  CoordBuffer coords(3);
  for (std::size_t i = 0; i < kParallelGrain + 100; ++i) {
    coords.append({1, 2, 3});
  }
  expect_identical_across_threads(coords, shape, /*has_duplicates=*/true);
}

TEST_F(ParallelBuild, PatternDatasetMatchesAcrossThreadCounts) {
  // A realistic generator-produced dataset (no duplicates, structured
  // sparsity) through the same sweep.
  const Shape shape{64, 64, 64};
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.5}, 31);
  ASSERT_GT(dataset.point_count(), kParallelGrain);
  expect_identical_across_threads(dataset.coords, shape);
}

TEST_F(ParallelBuild, MapIsAlwaysAPermutation) {
  const Shape shape{16, 16, 16};
  const CoordBuffer coords =
      dense_random_coords(kParallelGrain * 2, shape, 13);
  ::setenv("ARTSPARSE_THREADS", "7", 1);
  for (OrgKind org : swept_orgs(/*has_duplicates=*/true)) {
    auto format = make_format(org);
    const std::vector<std::size_t> map = format->build(coords, shape);
    EXPECT_TRUE(is_permutation_of_iota(map)) << to_string(org);
  }
}

}  // namespace
}  // namespace artsparse
