#include "core/sort.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace artsparse {
namespace {

TEST(Sort, PermutationOrdersKeys) {
  const std::vector<index_t> keys{30, 10, 20};
  const auto perm = sort_permutation(keys);
  ASSERT_EQ(perm.size(), 3u);
  EXPECT_EQ(perm[0], 1u);
  EXPECT_EQ(perm[1], 2u);
  EXPECT_EQ(perm[2], 0u);
}

TEST(Sort, StableOnTies) {
  const std::vector<index_t> keys{5, 1, 5, 1};
  const auto perm = sort_permutation(keys);
  // Equal keys keep input order: 1s at input 1 then 3; 5s at 0 then 2.
  EXPECT_EQ(perm, (std::vector<std::size_t>{1, 3, 0, 2}));
}

TEST(Sort, EmptyInput) {
  EXPECT_TRUE(sort_permutation({}).empty());
}

TEST(Sort, InvertPermutationRoundTrip) {
  const std::vector<std::size_t> perm{2, 0, 3, 1};
  const auto inverse = invert_permutation(perm);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inverse[perm[i]], i);
  }
}

TEST(Sort, InvertRejectsOutOfRange) {
  const std::vector<std::size_t> bad{0, 5};
  EXPECT_THROW(invert_permutation(bad), FormatError);
}

TEST(Sort, ApplyPermutationGathers) {
  const std::vector<double> values{10.0, 20.0, 30.0};
  const std::vector<std::size_t> perm{2, 0, 1};
  const auto out = apply_permutation<double>(values, perm);
  EXPECT_EQ(out, (std::vector<double>{30.0, 10.0, 20.0}));
}

TEST(Sort, MapSemanticsMatchPaper) {
  // The paper's `map` records the *new* index of each input point. Sorting
  // keys and then scattering values through the inverted permutation must
  // equal gathering through the sort permutation.
  const std::vector<index_t> keys{9, 3, 7, 1};
  const std::vector<double> values{90.0, 30.0, 70.0, 10.0};
  const auto perm = sort_permutation(keys);
  const auto map = invert_permutation(perm);

  std::vector<double> scattered(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    scattered[map[i]] = values[i];
  }
  const auto gathered = apply_permutation<double>(values, perm);
  EXPECT_EQ(scattered, gathered);
  EXPECT_EQ(scattered, (std::vector<double>{10.0, 30.0, 70.0, 90.0}));
}

TEST(Sort, IsPermutationOfIota) {
  EXPECT_TRUE(is_permutation_of_iota(std::vector<std::size_t>{2, 0, 1}));
  EXPECT_FALSE(is_permutation_of_iota(std::vector<std::size_t>{0, 0, 1}));
  EXPECT_FALSE(is_permutation_of_iota(std::vector<std::size_t>{0, 3, 1}));
  EXPECT_TRUE(is_permutation_of_iota(std::vector<std::size_t>{}));
}

TEST(Sort, RandomizedPermutationProperty) {
  Xoshiro256 rng(7);
  std::vector<index_t> keys(500);
  for (auto& k : keys) k = rng.next_below(100);
  const auto perm = sort_permutation(keys);
  EXPECT_TRUE(is_permutation_of_iota(perm));
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(keys[perm[i - 1]], keys[perm[i]]);
  }
}

std::vector<index_t> random_keys(std::size_t n, index_t bound,
                                 std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<index_t> keys(n);
  for (auto& k : keys) k = rng.next_below(bound);
  return keys;
}

TEST(Sort, ParallelPermutationMatchesSerialAcrossThreadCounts) {
  // The determinism contract: for *any* thread count the parallel sort
  // must produce the exact permutation std::stable_sort does — a stable
  // sort's output permutation is unique given the keys. Heavy duplication
  // (bound 50 over 200k keys) exercises the tie-handling in every merge.
  const std::size_t n = kParallelGrain * 6 + 123;
  const auto keys = random_keys(n, 50, 11);
  const auto serial = sort_permutation(keys);
  for (unsigned threads : {1u, 2u, 3u, 7u, 16u}) {
    EXPECT_EQ(parallel_sort_permutation(keys, threads), serial)
        << "threads=" << threads;
  }
}

TEST(Sort, ParallelPermutationAllEqualKeysIsIdentity) {
  // All-equal keys: stability demands the identity permutation.
  const std::vector<index_t> keys(kParallelGrain * 3, 42);
  for (unsigned threads : {1u, 2u, 7u}) {
    const auto perm = parallel_sort_permutation(keys, threads);
    for (std::size_t i = 0; i < perm.size(); ++i) {
      ASSERT_EQ(perm[i], i) << "threads=" << threads;
    }
  }
}

TEST(Sort, ParallelPermutationSmallInputsAndWideKeys) {
  const std::vector<index_t> empty;
  const std::vector<index_t> one{9};
  for (unsigned threads : {1u, 2u, 7u}) {
    EXPECT_TRUE(parallel_sort_permutation(empty, threads).empty());
    EXPECT_EQ(parallel_sort_permutation(one, threads),
              (std::vector<std::size_t>{0}));
  }
  // Keys far beyond any counting range still sort correctly.
  const auto keys = random_keys(kParallelGrain * 2, index_t{1} << 60, 3);
  EXPECT_EQ(parallel_sort_permutation(keys, 7), sort_permutation(keys));
}

TEST(Sort, HistogramPrefixMatchesManualCount) {
  const std::size_t buckets = 37;
  const auto keys = random_keys(kParallelGrain * 4 + 5, buckets, 23);
  std::vector<index_t> expected(buckets + 1, 0);
  for (index_t k : keys) ++expected[static_cast<std::size_t>(k) + 1];
  for (std::size_t b = 0; b < buckets; ++b) expected[b + 1] += expected[b];
  for (unsigned threads : {1u, 2u, 7u}) {
    EXPECT_EQ(histogram_prefix(keys, buckets, threads), expected)
        << "threads=" << threads;
  }
  EXPECT_THROW(histogram_prefix(keys, 36, 1), FormatError);  // key >= buckets
}

TEST(Sort, CountingSortMatchesComparisonSort) {
  const std::size_t buckets = 97;
  const auto keys = random_keys(kParallelGrain * 4 + 31, buckets, 41);
  const auto serial = sort_permutation(keys);
  const auto ptr = histogram_prefix(keys, buckets, 1);
  ASSERT_TRUE(counting_sort_applicable(keys.size(), buckets));
  for (unsigned threads : {1u, 2u, 7u}) {
    const CountingSort counting =
        counting_sort_permutation(keys, buckets, threads);
    EXPECT_EQ(counting.perm, serial) << "threads=" << threads;
    EXPECT_EQ(counting.ptr, ptr) << "threads=" << threads;
  }
}

TEST(Sort, CountingSortGateIsThreadIndependent) {
  // The gate decides counting vs comparison purely from (n, buckets) so
  // the chosen path — hence the bytes written — never depends on threads.
  EXPECT_TRUE(counting_sort_applicable(10, 1 << 16));
  EXPECT_FALSE(counting_sort_applicable(10, (1 << 16) + 1));
  EXPECT_TRUE(counting_sort_applicable(1 << 20, 1 << 20));
}

TEST(Sort, ParallelGatherMatchesApplyPermutation) {
  const auto keys = random_keys(kParallelGrain * 3, 1000, 53);
  const auto perm = sort_permutation(keys);
  const auto expected = apply_permutation<index_t>(keys, perm);
  for (unsigned threads : {1u, 2u, 7u}) {
    EXPECT_EQ(parallel_gather<index_t>(keys, perm, threads), expected)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace artsparse
