#include "core/sort.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace artsparse {
namespace {

TEST(Sort, PermutationOrdersKeys) {
  const std::vector<index_t> keys{30, 10, 20};
  const auto perm = sort_permutation(keys);
  ASSERT_EQ(perm.size(), 3u);
  EXPECT_EQ(perm[0], 1u);
  EXPECT_EQ(perm[1], 2u);
  EXPECT_EQ(perm[2], 0u);
}

TEST(Sort, StableOnTies) {
  const std::vector<index_t> keys{5, 1, 5, 1};
  const auto perm = sort_permutation(keys);
  // Equal keys keep input order: 1s at input 1 then 3; 5s at 0 then 2.
  EXPECT_EQ(perm, (std::vector<std::size_t>{1, 3, 0, 2}));
}

TEST(Sort, EmptyInput) {
  EXPECT_TRUE(sort_permutation({}).empty());
}

TEST(Sort, InvertPermutationRoundTrip) {
  const std::vector<std::size_t> perm{2, 0, 3, 1};
  const auto inverse = invert_permutation(perm);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inverse[perm[i]], i);
  }
}

TEST(Sort, InvertRejectsOutOfRange) {
  const std::vector<std::size_t> bad{0, 5};
  EXPECT_THROW(invert_permutation(bad), FormatError);
}

TEST(Sort, ApplyPermutationGathers) {
  const std::vector<double> values{10.0, 20.0, 30.0};
  const std::vector<std::size_t> perm{2, 0, 1};
  const auto out = apply_permutation<double>(values, perm);
  EXPECT_EQ(out, (std::vector<double>{30.0, 10.0, 20.0}));
}

TEST(Sort, MapSemanticsMatchPaper) {
  // The paper's `map` records the *new* index of each input point. Sorting
  // keys and then scattering values through the inverted permutation must
  // equal gathering through the sort permutation.
  const std::vector<index_t> keys{9, 3, 7, 1};
  const std::vector<double> values{90.0, 30.0, 70.0, 10.0};
  const auto perm = sort_permutation(keys);
  const auto map = invert_permutation(perm);

  std::vector<double> scattered(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    scattered[map[i]] = values[i];
  }
  const auto gathered = apply_permutation<double>(values, perm);
  EXPECT_EQ(scattered, gathered);
  EXPECT_EQ(scattered, (std::vector<double>{10.0, 30.0, 70.0, 90.0}));
}

TEST(Sort, IsPermutationOfIota) {
  EXPECT_TRUE(is_permutation_of_iota(std::vector<std::size_t>{2, 0, 1}));
  EXPECT_FALSE(is_permutation_of_iota(std::vector<std::size_t>{0, 0, 1}));
  EXPECT_FALSE(is_permutation_of_iota(std::vector<std::size_t>{0, 3, 1}));
  EXPECT_TRUE(is_permutation_of_iota(std::vector<std::size_t>{}));
}

TEST(Sort, RandomizedPermutationProperty) {
  Xoshiro256 rng(7);
  std::vector<index_t> keys(500);
  for (auto& k : keys) k = rng.next_below(100);
  const auto perm = sort_permutation(keys);
  EXPECT_TRUE(is_permutation_of_iota(perm));
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(keys[perm[i - 1]], keys[perm[i]]);
  }
}

}  // namespace
}  // namespace artsparse
