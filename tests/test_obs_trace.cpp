// Tracing: RAII spans, parent/child nesting, the bounded ring, and the
// Chrome / text exporters. Tests drive a private TraceBuffer where they
// can, and save/restore the global buffer's enabled flag where they must.
#include <gtest/gtest.h>

#include <string>

#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace artsparse::obs {
namespace {

/// Arms the global buffer for one test and restores the prior state.
class ScopedTracing {
 public:
  ScopedTracing() : was_enabled_(TraceBuffer::global().enabled()) {
    TraceBuffer::global().clear();
    TraceBuffer::global().set_enabled(true);
  }
  ~ScopedTracing() {
    TraceBuffer::global().set_enabled(was_enabled_);
    TraceBuffer::global().clear();
  }

 private:
  bool was_enabled_;
};

TEST(ObsTrace, DisabledSpanRecordsNothing) {
  TraceBuffer::global().set_enabled(false);
  TraceBuffer::global().clear();
  {
    Span span("obs_test.noop", "test");
    span.attr("k", std::string("v"));
  }
  EXPECT_TRUE(TraceBuffer::global().snapshot().empty());
}

TEST(ObsTrace, SpansNestByScope) {
  ScopedTracing tracing;
  {
    Span outer("obs_test.outer", "test");
    {
      Span inner("obs_test.inner", "test");
      inner.attr("points", static_cast<std::uint64_t>(42));
    }
  }
  const std::vector<SpanRecord> spans = TraceBuffer::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Spans record when they close: inner first.
  EXPECT_EQ(spans[0].name, "obs_test.inner");
  EXPECT_EQ(spans[1].name, "obs_test.outer");
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[1].parent, 0u);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].first, "points");
  EXPECT_EQ(spans[0].attrs[0].second, "42");
}

TEST(ObsTrace, ExplicitEndReparentsSiblings) {
  ScopedTracing tracing;
  {
    Span parent("obs_test.parent", "test");
    Span first("obs_test.first", "test");
    first.end();  // destructor after this must not double-record
    Span second("obs_test.second", "test");
    second.end();
  }
  const std::vector<SpanRecord> spans = TraceBuffer::global().snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "obs_test.first");
  EXPECT_EQ(spans[1].name, "obs_test.second");
  // Both siblings hang off the parent, not off each other.
  EXPECT_EQ(spans[0].parent, spans[2].id);
  EXPECT_EQ(spans[1].parent, spans[2].id);
}

TEST(ObsTrace, RingDropsOldestBeyondCapacity) {
  TraceBuffer buffer;
  buffer.set_capacity(4);
  buffer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    SpanRecord record;
    record.name = "span_" + std::to_string(i);
    record.id = static_cast<std::uint64_t>(i + 1);
    buffer.record(std::move(record));
  }
  EXPECT_EQ(buffer.dropped(), 6u);
  const std::vector<SpanRecord> spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "span_6");  // oldest retained
  EXPECT_EQ(spans.back().name, "span_9");
}

TEST(ObsTrace, ChromeExportIsValidTraceEventJson) {
  ScopedTracing tracing;
  {
    Span span("obs_test.chrome", "test");
    span.attr("path", std::string("/tmp/x \"quoted\""));
  }
  const std::string json =
      trace_to_chrome(TraceBuffer::global().snapshot());
  EXPECT_EQ(json.find('\n', json.size() - 2), std::string::npos);
  EXPECT_NE(json.find("{\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"obs_test.chrome\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST(ObsTrace, TextExportIndentsByDepth) {
  ScopedTracing tracing;
  {
    Span outer("obs_test.text_outer", "test");
    Span inner("obs_test.text_inner", "test");
    inner.end();
  }
  const std::string text = trace_to_text(TraceBuffer::global().snapshot());
  EXPECT_NE(text.find("obs_test.text_outer"), std::string::npos);
  EXPECT_NE(text.find("\n  obs_test.text_inner"), std::string::npos);
}

}  // namespace
}  // namespace artsparse::obs
