// Store health state machine: persistent capacity/EIO commit failures
// degrade the store to read-only, degraded writes fail fast with a typed
// StoreDegradedError while reads keep serving, and a successful probe
// (explicit or lazy) recovers the store. Also pins the deadline behavior
// of the read path against an injected slow device: a budgeted scan ends
// in bounded time with DeadlineExceededError under kStrict, or a partial
// result with the starved fragments marked skipped under kSkip.
#include "storage/fragment_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <filesystem>
#include <vector>

#include "core/deadline.hpp"
#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/timer.hpp"
#include "storage/fault.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

namespace fs = std::filesystem;

class StoreHealthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().reset();
    dir_ = testing::fresh_temp_dir("health");
    store_ = std::make_unique<FragmentStore>(dir_, Shape{32, 32});
    store_->set_retry_policy(fast_policy());
    // Probe interval far beyond the test: probes run only when a test
    // calls probe_health() explicitly, so lazy probes never consume an
    // armed fault mid-assertion.
    store_->set_health_policy(
        HealthPolicy{/*degrade_after=*/2, /*probe_interval_sec=*/3600.0});
  }
  void TearDown() override {
    FaultInjector::instance().reset();
    store_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  static RetryPolicy fast_policy() {
    RetryPolicy policy;
    policy.max_attempts = 4;
    policy.base_delay_sec = 1e-6;
    policy.cap_delay_sec = 8e-6;
    return policy;
  }

  /// One-point write; each call lands in a new fragment.
  void write_point(value_t value) {
    CoordBuffer coords(2);
    coords.append({3, 4});
    store_->write(coords, std::vector<value_t>{value}, OrgKind::kCoo);
  }

  /// Arms `count` consecutive errno faults on the open-for-write hook —
  /// "persistent" in directive-fires-once terms.
  static void arm_persistent_open_fault(int error_number, std::size_t count) {
    for (std::size_t nth = 1; nth <= count; ++nth) {
      FaultInjector::instance().arm(FaultOp::kOpenWrite, nth, error_number);
    }
  }

  fs::path dir_;
  std::unique_ptr<FragmentStore> store_;
};

TEST_F(StoreHealthTest, FreshStoreIsHealthy) {
  EXPECT_EQ(store_->health(), StoreHealth::kHealthy);
  EXPECT_STREQ(to_string(StoreHealth::kHealthy), "healthy");
  EXPECT_STREQ(to_string(StoreHealth::kDegraded), "degraded");
  EXPECT_STREQ(to_string(StoreHealth::kRecovering), "recovering");
}

TEST_F(StoreHealthTest, PersistentEnospcDegradesAfterThreshold) {
  write_point(1.0);  // one committed fragment so reads have data
  // Each failing write sees ENOSPC twice (first try + the single capacity
  // retry); degrade_after=2 needs two failed commits.
  arm_persistent_open_fault(ENOSPC, 16);

  for (int i = 0; i < 2; ++i) {
    try {
      write_point(2.0);
      FAIL() << "expected the ENOSPC to surface";
    } catch (const IoError& e) {
      EXPECT_EQ(e.errno_value(), ENOSPC);
    }
  }
  EXPECT_EQ(store_->health(), StoreHealth::kDegraded);
}

TEST_F(StoreHealthTest, SingleEnospcDoesNotDegrade) {
  // One failed commit is below degrade_after=2: a transient quota blip
  // must not flip the store read-only.
  arm_persistent_open_fault(ENOSPC, 4);
  EXPECT_THROW(write_point(1.0), IoError);
  FaultInjector::instance().reset();
  EXPECT_EQ(store_->health(), StoreHealth::kHealthy);
  write_point(2.0);  // and the next write goes through
  EXPECT_EQ(store_->health(), StoreHealth::kHealthy);
}

TEST_F(StoreHealthTest, EioDegradesToo) {
  // EIO is not retryable, so each write fails on its first attempt.
  FaultInjector::instance().configure("open:1:EIO,open:2:EIO");
  EXPECT_THROW(write_point(1.0), IoError);
  EXPECT_EQ(store_->health(), StoreHealth::kHealthy);
  EXPECT_THROW(write_point(1.0), IoError);
  EXPECT_EQ(store_->health(), StoreHealth::kDegraded);
}

TEST_F(StoreHealthTest, NonEligibleErrnoNeverDegrades) {
  // Permission errors are a caller/config problem, not device health.
  FaultInjector::instance().configure(
      "open:1:EACCES,open:2:EACCES,open:3:EACCES");
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(write_point(1.0), IoError);
  }
  EXPECT_EQ(store_->health(), StoreHealth::kHealthy);
}

TEST_F(StoreHealthTest, SuccessResetsTheFailureStreak) {
  arm_persistent_open_fault(ENOSPC, 2);  // exactly one failed commit
  EXPECT_THROW(write_point(1.0), IoError);
  write_point(2.0);  // success: streak back to zero
  // reset() rewinds the injector's call counter so re-arming nth 1..2
  // targets the next write, not the opens already consumed above.
  FaultInjector::instance().reset();
  arm_persistent_open_fault(ENOSPC, 2);
  EXPECT_THROW(write_point(3.0), IoError);
  EXPECT_EQ(store_->health(), StoreHealth::kHealthy)
      << "non-consecutive failures must not accumulate across successes";
}

TEST_F(StoreHealthTest, DegradedWritesFailFastAndTyped) {
  write_point(1.0);
  arm_persistent_open_fault(ENOSPC, 16);
  EXPECT_THROW(write_point(2.0), IoError);
  EXPECT_THROW(write_point(2.0), IoError);
  ASSERT_EQ(store_->health(), StoreHealth::kDegraded);

  const std::size_t opens_before =
      FaultInjector::instance().calls(FaultOp::kOpenWrite);
  WallTimer timer;
  try {
    write_point(3.0);
    FAIL() << "expected StoreDegradedError";
  } catch (const StoreDegradedError& e) {
    EXPECT_EQ(e.directory(), dir_.string());
    EXPECT_EQ(e.last_errno(), ENOSPC);
    EXPECT_NE(std::string(e.what()).find("degraded read-only"),
              std::string::npos);
  }
  EXPECT_LT(timer.seconds(), 0.5) << "degraded writes must not retry";
  EXPECT_EQ(FaultInjector::instance().calls(FaultOp::kOpenWrite),
            opens_before)
      << "degraded writes must fail before any syscall";
  // Consolidation is a write too.
  EXPECT_THROW(store_->consolidate(OrgKind::kSortedCoo),
               StoreDegradedError);
}

TEST_F(StoreHealthTest, ReadsKeepServingWhileDegraded) {
  write_point(7.5);
  arm_persistent_open_fault(ENOSPC, 16);
  EXPECT_THROW(write_point(2.0), IoError);
  EXPECT_THROW(write_point(2.0), IoError);
  ASSERT_EQ(store_->health(), StoreHealth::kDegraded);
  FaultInjector::instance().reset();  // the read path is not under test

  std::atomic<int> ok{0};
  parallel_for_each(
      4,
      [&](std::size_t) {
        const ReadResult result =
            store_->scan_region(Box::whole(Shape{32, 32}));
        if (result.values.size() == 1 && result.values[0] == 7.5) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*threads=*/4, /*grain=*/1);
  EXPECT_EQ(ok.load(), 4)
      << "concurrent reads must serve normally while degraded";
  EXPECT_EQ(store_->health(), StoreHealth::kDegraded);
}

TEST_F(StoreHealthTest, ProbeRecoversOnceTheFaultClears) {
  arm_persistent_open_fault(ENOSPC, 16);
  EXPECT_THROW(write_point(1.0), IoError);
  EXPECT_THROW(write_point(1.0), IoError);
  ASSERT_EQ(store_->health(), StoreHealth::kDegraded);

  // Device still full: the probe fails and the store stays degraded.
  EXPECT_EQ(store_->probe_health(), StoreHealth::kDegraded);

  // Device clears: the probe recovers the store, leaves no probe file
  // behind, and writes flow again.
  FaultInjector::instance().reset();
  EXPECT_EQ(store_->probe_health(), StoreHealth::kHealthy);
  EXPECT_FALSE(fs::exists(dir_ / "health_probe.tmp"));
  write_point(3.0);
  EXPECT_EQ(store_->health(), StoreHealth::kHealthy);
}

TEST_F(StoreHealthTest, LazyProbeRecoversOnWriteEntry) {
  store_->set_health_policy(
      HealthPolicy{/*degrade_after=*/2, /*probe_interval_sec=*/0.0});
  arm_persistent_open_fault(ENOSPC, 4);
  EXPECT_THROW(write_point(1.0), IoError);
  EXPECT_THROW(write_point(1.0), IoError);
  ASSERT_EQ(store_->health(), StoreHealth::kDegraded);
  FaultInjector::instance().reset();

  // With a zero probe interval the next write probes inline, recovers,
  // and then commits — no explicit probe_health() call needed.
  write_point(4.0);
  EXPECT_EQ(store_->health(), StoreHealth::kHealthy);
}

TEST_F(StoreHealthTest, ProbeHealthOnHealthyStoreIsANoOp) {
  EXPECT_EQ(store_->probe_health(), StoreHealth::kHealthy);
  EXPECT_EQ(FaultInjector::instance().calls(FaultOp::kOpenWrite), 0u);
}

// --- deadline behavior of the read path --------------------------------

TEST_F(StoreHealthTest, BudgetedScanAgainstSlowDeviceIsBounded) {
  write_point(1.0);
  // Every read syscall stalls 50 ms; the scan budget is 1 ms.
  for (std::size_t nth = 1; nth <= 8; ++nth) {
    FaultInjector::instance().arm_delay(FaultOp::kOpenRead, nth, 50);
    FaultInjector::instance().arm_delay(FaultOp::kRead, nth, 50);
  }
  const ScopedOpContext scope(
      OpContext{Deadline::after_ms(1), CancelToken()});
  WallTimer timer;
  EXPECT_THROW(store_->scan_region(Box::whole(Shape{32, 32})),
               DeadlineExceededError);
  EXPECT_LT(timer.seconds(), 2.0)
      << "the deadline must cut the injected stall short";
}

TEST_F(StoreHealthTest, SkipPolicyTurnsDeadlineIntoPartialResult) {
  write_point(1.0);
  store_->set_read_fault_policy(ReadFaultPolicy::kSkip);
  for (std::size_t nth = 1; nth <= 8; ++nth) {
    FaultInjector::instance().arm_delay(FaultOp::kOpenRead, nth, 50);
    FaultInjector::instance().arm_delay(FaultOp::kRead, nth, 50);
  }
  const ScopedOpContext scope(
      OpContext{Deadline::after_ms(1), CancelToken()});
  const ReadResult result = store_->scan_region(Box::whole(Shape{32, 32}));
  EXPECT_FALSE(result.skipped.empty())
      << "under kSkip a starved fragment becomes a skipped entry";
}

TEST_F(StoreHealthTest, CancelledScanThrowsTyped) {
  write_point(1.0);
  const CancelToken token = CancelToken::root();
  token.cancel();
  const ScopedOpContext scope(OpContext{Deadline(), token});
  EXPECT_THROW(store_->scan_region(Box::whole(Shape{32, 32})),
               CancelledError);
}

TEST_F(StoreHealthTest, CancellationRacesScanBatch) {
  // TSan target: one thread cancels while others scan_batch through the
  // same token. Run with ARTSPARSE_THREADS=8 in CI; every scan must end
  // in a clean result or a typed CancelledError, never a race or wedge.
  for (value_t v = 1.0; v <= 4.0; v += 1.0) write_point(v);
  const CancelToken root = CancelToken::root();
  std::vector<Box> regions;
  regions.push_back(Box({0, 0}, {15, 15}));
  regions.push_back(Box({8, 8}, {31, 31}));

  std::atomic<int> finished{0};
  parallel_for_each(
      8,
      [&](std::size_t which) {
        if (which == 0) {
          interruptible_sleep(0.002, OpContext{});
          root.cancel();
          return;
        }
        const ScopedOpContext scope(
            OpContext{Deadline::after_seconds(30.0), root.child()});
        for (int i = 0; i < 50; ++i) {
          try {
            store_->snapshot().scan_batch(regions);
          } catch (const CancelledError&) {
            break;
          }
        }
        finished.fetch_add(1, std::memory_order_relaxed);
      },
      /*threads=*/8, /*grain=*/1);
  EXPECT_EQ(finished.load(), 7) << "every scanning thread must terminate";
  EXPECT_TRUE(root.cancelled());
}

}  // namespace
}  // namespace artsparse
