// Fault-injection coverage of the crash-consistent commit path: the spec
// grammar, the injector mechanics, atomic_write_file's commit/cleanup
// contract, and the full crash matrix — a simulated crash at every syscall
// of a fragment WRITE (open, write, fsync, rename, dir-fsync) must leave
// the store readable, recovered to the last committed fragment set, with no
// .tmp residue and a clean fsck.
#include "storage/fault.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <string>
#include <vector>

#include "check/fsck.hpp"
#include "core/deadline.hpp"
#include "core/error.hpp"
#include "core/timer.hpp"
#include "storage/file_io.hpp"
#include "storage/fragment_store.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

namespace fs = std::filesystem;

class FaultInjection : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().reset();
    dir_ = testing::fresh_temp_dir("fault");
  }
  void TearDown() override {
    FaultInjector::instance().reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::vector<fs::path> files_with_extension(const std::string& ext) const {
    std::vector<fs::path> hits;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() == ext) hits.push_back(entry.path());
    }
    return hits;
  }

  fs::path dir_;
};

Bytes payload(std::size_t n) {
  Bytes bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<std::byte>(i * 17 % 251);
  }
  return bytes;
}

TEST_F(FaultInjection, SpecParsesOpsCountsAndActions) {
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("write:2:EIO,fsync:1:crash");
  EXPECT_TRUE(injector.enabled());
  injector.configure("");
  EXPECT_FALSE(injector.enabled());
}

TEST_F(FaultInjection, MalformedSpecsThrow) {
  FaultInjector& injector = FaultInjector::instance();
  EXPECT_THROW(injector.configure("bogus"), FormatError);
  EXPECT_THROW(injector.configure("write:0:EIO"), FormatError);
  EXPECT_THROW(injector.configure("write:one:EIO"), FormatError);
  EXPECT_THROW(injector.configure("write:1:EFROB"), FormatError);
  EXPECT_THROW(injector.configure("frobnicate:1:EIO"), FormatError);
  injector.reset();
}

TEST_F(FaultInjection, DelaySpecParsesAndMalformedDelaysThrow) {
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("read:2:delay_ms=50");
  EXPECT_TRUE(injector.enabled());
  injector.configure("read:1:delay_ms=50,write:1:ENOSPC,fsync:1:crash");
  EXPECT_TRUE(injector.enabled());

  EXPECT_THROW(injector.configure("read:1:delay_ms="), FormatError);
  EXPECT_THROW(injector.configure("read:1:delay_ms=0"), FormatError);
  EXPECT_THROW(injector.configure("read:1:delay_ms=abc"), FormatError);
  EXPECT_THROW(injector.configure("read:1:delay_ms=50x"), FormatError);
  EXPECT_THROW(injector.configure("read:1:delay_ms=-5"), FormatError);
  injector.reset();
}

TEST_F(FaultInjection, DelayStallsTheCallThenProceeds) {
  // A 30 ms injected delay on the first write: the call is slower than a
  // clean one but still succeeds with intact data.
  FaultInjector::instance().configure("write:1:delay_ms=30");
  const std::string path = (dir_ / "a.bin").string();
  const Bytes data = payload(64);
  WallTimer timer;
  write_file(path, data);
  EXPECT_GE(timer.seconds(), 0.025) << "the injected stall must be felt";
  EXPECT_EQ(read_file(path), data);
}

TEST_F(FaultInjection, ArmDelayMatchesTheSpecForm) {
  FaultInjector::instance().arm_delay(FaultOp::kWrite, 1, 30);
  const std::string path = (dir_ / "a.bin").string();
  WallTimer timer;
  write_file(path, payload(32));
  EXPECT_GE(timer.seconds(), 0.025);
  // Fires once: the second write is not delayed.
  timer.reset();
  write_file(path, payload(32));
  EXPECT_LT(timer.seconds(), 0.025);
}

TEST_F(FaultInjection, DelayIsInterruptedByTheAmbientDeadline) {
  // A 10 s injected stall under a 5 ms budget must end almost
  // immediately with the typed deadline error, not wait out the stall.
  FaultInjector::instance().configure("write:1:delay_ms=10000");
  const ScopedOpContext scope(
      OpContext{Deadline::after_ms(5), CancelToken()});
  WallTimer timer;
  EXPECT_THROW(write_file((dir_ / "a.bin").string(), payload(16)),
               DeadlineExceededError);
  EXPECT_LT(timer.seconds(), 2.0);
}

TEST_F(FaultInjection, DelayIsInterruptedByCancellation) {
  FaultInjector::instance().configure("write:1:delay_ms=10000");
  const CancelToken token = CancelToken::root();
  token.cancel();
  const ScopedOpContext scope(OpContext{Deadline(), token});
  WallTimer timer;
  EXPECT_THROW(write_file((dir_ / "a.bin").string(), payload(16)),
               CancelledError);
  EXPECT_LT(timer.seconds(), 2.0);
}

TEST_F(FaultInjection, FiresAtTheNthSyscallWithTheArmedErrno) {
  FaultInjector::instance().configure("write:2:EIO");
  const std::string path = (dir_ / "a.bin").string();
  write_file(path, payload(64));  // write #1 passes
  try {
    write_file(path, payload(64));  // write #2 faults
    FAIL() << "expected injected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.errno_value(), EIO);  // classified via the field, not text
  }
  EXPECT_EQ(FaultInjector::instance().calls(FaultOp::kWrite), 2u);
}

TEST_F(FaultInjection, CrashActionThrowsTheSentinel) {
  FaultInjector::instance().configure("fsync:1:crash");
  PosixFile file((dir_ / "a.bin").string(),
                 PosixFile::Mode::kWriteTruncate);
  file.write_all(payload(16));
  EXPECT_THROW(file.sync(), CrashFault);
}

TEST_F(FaultInjection, EnvSpecIsHonored) {
  ASSERT_EQ(::setenv("ARTSPARSE_FAULT_SPEC", "open:1:EACCES", 1), 0);
  FaultInjector::instance().configure_from_env();
  ::unsetenv("ARTSPARSE_FAULT_SPEC");
  try {
    write_file((dir_ / "a.bin").string(), payload(16));
    FAIL() << "expected injected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.errno_value(), EACCES);
  }
}

TEST_F(FaultInjection, AtomicWriteCommitsAndLeavesNoStageFile) {
  const std::string path = (dir_ / "frag.asf").string();
  const Bytes data = payload(4096);
  const RetryStats stats = atomic_write_file(path, data);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(read_file(path), data);
  EXPECT_TRUE(files_with_extension(".tmp").empty());
}

TEST_F(FaultInjection, AtomicWriteCrashLeavesOnlyTheOrphanedStageFile) {
  FaultInjector::instance().configure("fsync:1:crash");
  const std::string path = (dir_ / "frag.asf").string();
  EXPECT_THROW(atomic_write_file(path, payload(4096)), CrashFault);
  EXPECT_FALSE(fs::exists(path));  // never renamed: old state intact
  EXPECT_EQ(files_with_extension(".tmp").size(), 1u);
}

TEST_F(FaultInjection, AtomicWriteErrorCleansUpTheStageFile) {
  FaultInjector::instance().configure("write:1:EACCES");
  const std::string path = (dir_ / "frag.asf").string();
  EXPECT_THROW(atomic_write_file(path, payload(4096)), IoError);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(files_with_extension(".tmp").empty());
}

// The crash matrix. For every syscall point of a fragment WRITE, simulate
// the process dying there, reopen the store, and require: (a) the store
// opens and reads back exactly the committed state, (b) no .tmp residue,
// (c) fsck reports the directory clean at full depth. The commit point is
// the rename — a crash before it recovers to the pre-crash fragment set; a
// crash after it (dir-fsync) recovers with the new fragment fully intact.
TEST_F(FaultInjection, CrashMatrixRecoversTheCommittedStateAtEveryPoint) {
  const Shape shape{16, 16};
  const struct {
    const char* spec;
    bool committed;   ///< fragment B survives the crash
    bool tmp_orphan;  ///< the crash leaves a stage file behind
  } points[] = {
      // A crash at open dies before the stage file exists; one at dirsync
      // dies after the rename already moved it into place. Everything in
      // between orphans the .tmp for the next open to sweep.
      {"open:1:crash", false, false},  {"write:1:crash", false, true},
      {"fsync:1:crash", false, true},  {"rename:1:crash", false, true},
      {"dirsync:1:crash", true, false},
  };
  for (const auto& point : points) {
    SCOPED_TRACE(point.spec);
    const fs::path dir = testing::fresh_temp_dir("crash_matrix");
    CoordBuffer coords_a(2);
    coords_a.append({1, 1});
    coords_a.append({2, 3});
    CoordBuffer coords_b(2);
    coords_b.append({9, 9});

    {
      FragmentStore store(dir, shape);
      store.write(coords_a, std::vector<value_t>{1.0, 2.0}, OrgKind::kGcsr);
      // Arm after the committed write so only fragment B's commit faults.
      FaultInjector::instance().configure(point.spec);
      EXPECT_THROW(
          store.write(coords_b, std::vector<value_t>{9.0}, OrgKind::kCoo),
          CrashFault);
      FaultInjector::instance().reset();
    }

    FragmentStore recovered(dir, shape);
    EXPECT_EQ(recovered.fragment_count(), point.committed ? 2u : 1u);
    for (const auto& entry : fs::directory_iterator(dir)) {
      EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
      EXPECT_NE(entry.path().extension(), ".quarantine") << entry.path();
    }
    EXPECT_EQ(recovered.last_scan().swept_tmp.size(),
              point.tmp_orphan ? 1u : 0u);

    const ReadResult all = recovered.scan_region(Box::whole(shape));
    ASSERT_EQ(all.values.size(), point.committed ? 3u : 2u);
    EXPECT_EQ(all.values[0], 1.0);
    EXPECT_EQ(all.values[1], 2.0);

    const check::StoreReport fsck =
        check::check_store(dir, check::Depth::kFull);
    EXPECT_TRUE(fsck.ok());
    EXPECT_TRUE(fsck.strays.empty());
    fs::remove_all(dir);
  }
}

TEST_F(FaultInjection, OpenSweepsOrphanedTmpFiles) {
  write_file((dir_ / "frag_000042.asf.tmp").string(), payload(100));
  FragmentStore store(dir_, Shape{8, 8});
  ASSERT_EQ(store.last_scan().swept_tmp.size(), 1u);
  EXPECT_TRUE(files_with_extension(".tmp").empty());
  EXPECT_EQ(store.fragment_count(), 0u);
}

TEST_F(FaultInjection, OpenQuarantinesTornFragmentsInsteadOfThrowing) {
  const Shape shape{16, 16};
  {
    FragmentStore store(dir_, shape);
    CoordBuffer coords(2);
    coords.append({3, 4});
    store.write(coords, std::vector<value_t>{7.0}, OrgKind::kLinear);
  }
  // A second fragment torn mid-write: half the bytes of the first one.
  const fs::path victim = dir_ / "frag_000001.asf";
  const Bytes whole = read_file((dir_ / "frag_000000.asf").string());
  write_file(victim.string(),
             Bytes(whole.begin(),
                   whole.begin() + static_cast<std::ptrdiff_t>(
                                       whole.size() / 2)));

  FragmentStore store(dir_, shape);
  EXPECT_EQ(store.fragment_count(), 1u);
  ASSERT_EQ(store.last_scan().quarantined.size(), 1u);
  EXPECT_EQ(store.last_scan().quarantined[0], victim.string());
  EXPECT_FALSE(fs::exists(victim));
  EXPECT_EQ(files_with_extension(".quarantine").size(), 1u);

  // The surviving fragment still answers reads; fsck sees a clean store
  // (the quarantined file is a stray, not a fragment).
  const ReadResult all = store.scan_region(Box::whole(shape));
  ASSERT_EQ(all.values.size(), 1u);
  EXPECT_EQ(all.values[0], 7.0);
  const check::StoreReport fsck =
      check::check_store(dir_, check::Depth::kFull);
  EXPECT_TRUE(fsck.ok());
  EXPECT_EQ(fsck.strays.size(), 1u);
}

TEST_F(FaultInjection, RescanIgnoresAndLogsStrayFiles) {
  const Shape shape{8, 8};
  FragmentStore store(dir_, shape);
  CoordBuffer coords(2);
  coords.append({1, 2});
  store.write(coords, std::vector<value_t>{3.0}, OrgKind::kCoo);
  write_file((dir_ / "notes.txt").string(), payload(10));
  write_file((dir_ / "junk.bin").string(), payload(10));

  const std::uint64_t generation_before = store.generation();
  store.rescan();
  // Even a no-op repair rescan publishes a fresh manifest generation.
  EXPECT_EQ(store.generation(), generation_before + 1);
  EXPECT_EQ(store.fragment_count(), 1u);
  EXPECT_EQ(store.last_scan().ignored.size(), 2u);
  EXPECT_TRUE(fs::exists(dir_ / "notes.txt"));  // ignored, not deleted

  const check::StoreReport fsck =
      check::check_store(dir_, check::Depth::kStructure);
  EXPECT_TRUE(fsck.ok());
  EXPECT_EQ(fsck.strays.size(), 2u);
  EXPECT_NE(fsck.to_json().find("notes.txt"), std::string::npos);
}

TEST_F(FaultInjection, RepairStoreSweepsQuarantinesAndReports) {
  const Shape shape{16, 16};
  {
    FragmentStore store(dir_, shape);
    CoordBuffer coords(2);
    coords.append({5, 5});
    store.write(coords, std::vector<value_t>{1.5}, OrgKind::kGcsr);
  }
  write_file((dir_ / "frag_000031.asf.tmp").string(), payload(64));
  write_file((dir_ / "frag_000032.asf").string(), payload(64));  // torn
  write_file((dir_ / "notes.txt").string(), payload(8));

  const check::RepairReport report =
      check::repair_store(dir_, check::Depth::kHeader);
  EXPECT_EQ(report.checked, 2u);
  EXPECT_EQ(report.swept_tmp.size(), 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], (dir_ / "frag_000032.asf").string());
  EXPECT_EQ(report.strays.size(), 1u);
  EXPECT_FALSE(report.clean());

  // Idempotent: a second pass finds nothing left to fix.
  EXPECT_TRUE(check::repair_store(dir_, check::Depth::kHeader).clean());
  EXPECT_TRUE(check::check_store(dir_, check::Depth::kFull).ok());
}

}  // namespace
}  // namespace artsparse
