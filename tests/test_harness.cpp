#include "benchlib/harness.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace artsparse {
namespace {

HarnessOptions fast_options(const std::filesystem::path& dir) {
  HarnessOptions options;
  options.work_dir = dir;
  options.device = DeviceModel::unthrottled();
  options.verify = true;
  return options;
}

class HarnessTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = testing::fresh_temp_dir("harness"); }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  Workload tiny_workload(PatternKind pattern) const {
    Workload w;
    w.name = "tiny";
    w.shape = Shape{40, 40};
    w.pattern = pattern;
    w.seed = 5;
    switch (pattern) {
      case PatternKind::kTsp:
        w.spec = TspConfig{3};
        break;
      case PatternKind::kGsp:
        w.spec = GspConfig{0.05};
        break;
      case PatternKind::kMsp:
        w.spec = MspConfig{0.02, 0.5};
        break;
    }
    return w;
  }

  std::filesystem::path dir_;
};

TEST_F(HarnessTest, EveryOrganizationVerifies) {
  const Workload w = tiny_workload(PatternKind::kGsp);
  for (OrgKind org : kPaperOrgs) {
    const Measurement m = run_workload(w, org, fast_options(dir_));
    EXPECT_TRUE(m.verified) << to_string(org);
    EXPECT_GT(m.point_count, 0u);
    EXPECT_GT(m.file_bytes, 0u);
    EXPECT_EQ(m.org, org);
  }
}

TEST_F(HarnessTest, QueryCountIsRegionCellCount) {
  const Workload w = tiny_workload(PatternKind::kGsp);
  const Measurement m = run_workload(w, OrgKind::kCoo, fast_options(dir_));
  EXPECT_EQ(m.query_count, w.read_region().cell_count());
  EXPECT_LE(m.found_count, m.query_count);
}

TEST_F(HarnessTest, WorkDirIsCleanedUp) {
  const Workload w = tiny_workload(PatternKind::kTsp);
  run_workload(w, OrgKind::kLinear, fast_options(dir_));
  // Only the (empty) base directory remains.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir_)) {
    ++entries;
  }
  EXPECT_EQ(entries, 0u);
}

TEST_F(HarnessTest, GridRunsAllCombinations) {
  std::vector<Workload> workloads{tiny_workload(PatternKind::kGsp),
                                  tiny_workload(PatternKind::kMsp)};
  workloads[1].name = "tiny-msp";
  const std::vector<OrgKind> orgs{OrgKind::kCoo, OrgKind::kCsf};
  std::size_t progress_calls = 0;
  const auto measurements =
      run_grid(workloads, orgs, fast_options(dir_),
               [&](const Measurement&) { ++progress_calls; });
  EXPECT_EQ(measurements.size(), 4u);
  EXPECT_EQ(progress_calls, 4u);
  for (const Measurement& m : measurements) {
    EXPECT_TRUE(m.verified);
  }
}

TEST_F(HarnessTest, CooFileIsLargestLinearSmallest) {
  // Fig. 4's headline ordering on a single workload.
  const Workload w = tiny_workload(PatternKind::kGsp);
  const auto options = fast_options(dir_);
  const Measurement coo = run_workload(w, OrgKind::kCoo, options);
  const Measurement linear = run_workload(w, OrgKind::kLinear, options);
  const Measurement gcsr = run_workload(w, OrgKind::kGcsr, options);
  EXPECT_GT(coo.file_bytes, linear.file_bytes);
  EXPECT_LE(linear.file_bytes, gcsr.file_bytes);
}

TEST_F(HarnessTest, MeasurementTimesPopulated) {
  const Workload w = tiny_workload(PatternKind::kMsp);
  const Measurement m = run_workload(w, OrgKind::kGcsc, fast_options(dir_));
  EXPECT_GT(m.write_times.total(), 0.0);
  EXPECT_GT(m.read_times.total(), 0.0);
}

}  // namespace
}  // namespace artsparse
