#include "core/box.hpp"

#include <gtest/gtest.h>

#include "core/coords.hpp"
#include "core/error.hpp"

namespace artsparse {
namespace {

TEST(Box, WholeShape) {
  const Box box = Box::whole(Shape{3, 4});
  EXPECT_EQ(box.lo(0), 0u);
  EXPECT_EQ(box.hi(0), 2u);
  EXPECT_EQ(box.lo(1), 0u);
  EXPECT_EQ(box.hi(1), 3u);
  EXPECT_EQ(box.cell_count(), 12u);
}

TEST(Box, FromOriginSize) {
  const std::vector<index_t> origin{10, 20};
  const std::vector<index_t> size{5, 2};
  const Box box = Box::from_origin_size(origin, size);
  EXPECT_EQ(box.lo(0), 10u);
  EXPECT_EQ(box.hi(0), 14u);
  EXPECT_EQ(box.lo(1), 20u);
  EXPECT_EQ(box.hi(1), 21u);
}

TEST(Box, FromOriginZeroSizeRejected) {
  const std::vector<index_t> origin{0};
  const std::vector<index_t> size{0};
  EXPECT_THROW(Box::from_origin_size(origin, size), FormatError);
}

TEST(Box, BoundingOfCoordBuffer) {
  CoordBuffer coords(3);
  coords.append({0, 0, 1});
  coords.append({2, 2, 2});
  coords.append({1, 0, 5});
  const Box box = Box::bounding(coords);
  EXPECT_EQ(box.lo(0), 0u);
  EXPECT_EQ(box.hi(0), 2u);
  EXPECT_EQ(box.lo(1), 0u);
  EXPECT_EQ(box.hi(1), 2u);
  EXPECT_EQ(box.lo(2), 1u);
  EXPECT_EQ(box.hi(2), 5u);
}

TEST(Box, BoundingOfEmptyBufferRejected) {
  EXPECT_THROW(Box::bounding(CoordBuffer(2)), FormatError);
}

TEST(Box, InvertedBoundsRejected) {
  EXPECT_THROW(Box({5}, {4}), FormatError);
}

TEST(Box, ContainsPoint) {
  const Box box({1, 1}, {3, 3});
  const std::vector<index_t> inside{2, 3};
  const std::vector<index_t> outside{0, 2};
  const std::vector<index_t> wrong_rank{2};
  EXPECT_TRUE(box.contains(std::span<const index_t>(inside)));
  EXPECT_FALSE(box.contains(std::span<const index_t>(outside)));
  EXPECT_FALSE(box.contains(std::span<const index_t>(wrong_rank)));
}

TEST(Box, ContainsBox) {
  const Box outer({0, 0}, {9, 9});
  const Box inner({2, 3}, {4, 5});
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
}

TEST(Box, Overlaps) {
  const Box a({0, 0}, {4, 4});
  const Box b({4, 4}, {8, 8});  // shares the single corner (4, 4)
  const Box c({5, 5}, {8, 8});
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Box, IntersectOverlapping) {
  const Box a({0, 0}, {5, 5});
  const Box b({3, 2}, {8, 4});
  const Box i = a.intersect(b);
  EXPECT_EQ(i, Box({3, 2}, {5, 4}));
}

TEST(Box, IntersectDisjointIsEmpty) {
  const Box a({0, 0}, {1, 1});
  const Box b({5, 5}, {6, 6});
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(Box, ShapeAndCellCount) {
  const Box box({2, 10}, {4, 10});
  EXPECT_EQ(box.shape(), (Shape{3, 1}));
  EXPECT_EQ(box.cell_count(), 3u);
}

TEST(Box, EnumerateCellsRowMajor) {
  const Box box({1, 5}, {2, 6});
  CoordBuffer out(2);
  enumerate_cells(box, out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.at(0, 0), 1u);
  EXPECT_EQ(out.at(0, 1), 5u);
  EXPECT_EQ(out.at(1, 0), 1u);
  EXPECT_EQ(out.at(1, 1), 6u);
  EXPECT_EQ(out.at(2, 0), 2u);
  EXPECT_EQ(out.at(2, 1), 5u);
  EXPECT_EQ(out.at(3, 0), 2u);
  EXPECT_EQ(out.at(3, 1), 6u);
}

TEST(Box, EnumerateSingleCell) {
  const Box box({7, 7, 7}, {7, 7, 7});
  CoordBuffer out(3);
  enumerate_cells(box, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.at(0, 0), 7u);
}

TEST(Box, EnumerateCountsMatchCellCount) {
  const Box box({0, 0, 0}, {2, 3, 1});
  CoordBuffer out(3);
  enumerate_cells(box, out);
  EXPECT_EQ(out.size(), box.cell_count());
}

TEST(Box, ToString) {
  EXPECT_EQ(Box({1, 2}, {3, 4}).to_string(), "[1..3, 2..4]");
}

}  // namespace
}  // namespace artsparse
