// Retry/backoff coverage: errno classification via the IoError field,
// deterministic capped backoff delays, transient fault sequences that
// succeed within policy, exhausted retries surfacing the original error,
// and the attempt counters flowing into WriteBreakdown through
// FragmentStore and TiledStore.
#include "storage/retry.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <vector>

#include "core/error.hpp"
#include "storage/fault.hpp"
#include "storage/file_io.hpp"
#include "storage/fragment_store.hpp"
#include "tiles/tiled_store.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

namespace fs = std::filesystem;

class Retry : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().reset();
    dir_ = testing::fresh_temp_dir("retry");
  }
  void TearDown() override {
    FaultInjector::instance().reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Fast schedule so tests sleep microseconds, not the production default.
  static RetryPolicy fast_policy(std::size_t max_attempts) {
    RetryPolicy policy;
    policy.max_attempts = max_attempts;
    policy.base_delay_sec = 1e-6;
    policy.cap_delay_sec = 8e-6;
    return policy;
  }

  fs::path dir_;
};

Bytes payload(std::size_t n) {
  Bytes bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<std::byte>(i % 251);
  }
  return bytes;
}

TEST_F(Retry, ErrnoClassification) {
  EXPECT_TRUE(io_errno_retryable(EINTR));
  EXPECT_TRUE(io_errno_retryable(EAGAIN));
  EXPECT_TRUE(io_errno_retryable(ENOSPC));
  EXPECT_FALSE(io_errno_retryable(EIO));
  EXPECT_FALSE(io_errno_retryable(EACCES));
  EXPECT_FALSE(io_errno_retryable(0));

  // The three-way class behind the boolean: transient errnos get the full
  // retry budget, capacity errnos a bounded one, permanent ones none.
  EXPECT_EQ(io_errno_class(EINTR), IoErrnoClass::kTransient);
  EXPECT_EQ(io_errno_class(EAGAIN), IoErrnoClass::kTransient);
  EXPECT_EQ(io_errno_class(ETIMEDOUT), IoErrnoClass::kTransient);
  EXPECT_EQ(io_errno_class(ENOSPC), IoErrnoClass::kCapacity);
  EXPECT_EQ(io_errno_class(EIO), IoErrnoClass::kPermanent);
  EXPECT_EQ(io_errno_class(EACCES), IoErrnoClass::kPermanent);
  EXPECT_EQ(io_errno_class(0), IoErrnoClass::kPermanent);

  EXPECT_TRUE(IoError::with_errno("write", "p", EINTR).retryable());
  EXPECT_FALSE(IoError::with_errno("write", "p", EIO).retryable());
  EXPECT_EQ(IoError::with_errno("write", "p", ENOSPC).errno_value(),
            ENOSPC);
  EXPECT_EQ(IoError("short read").errno_value(), 0);
}

TEST_F(Retry, PersistentCapacityErrorSurfacesAfterBoundedRetries) {
  // Regression: ENOSPC used to be fully retryable, so a genuinely full
  // disk burned the whole max_attempts backoff schedule before failing.
  // Capacity errnos now get max_capacity_retries (default 1) and then
  // surface the ORIGINAL errno for the store health machinery to see.
  RetryPolicy policy = fast_policy(8);
  std::size_t runs = 0;
  try {
    retry_io(policy, [&] {
      ++runs;
      throw IoError::with_errno("write", "p", ENOSPC);
    });
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.errno_value(), ENOSPC);
  }
  EXPECT_EQ(runs, 2u) << "first try + exactly max_capacity_retries=1";
}

TEST_F(Retry, TransientEnospcStillClearsWithinTheCapacityBudget) {
  // One ENOSPC (a quota grant mid-flush) then success: the single
  // capacity retry is enough and the caller never sees the error.
  RetryPolicy policy = fast_policy(8);
  std::size_t runs = 0;
  const RetryStats stats = retry_io(policy, [&] {
    if (++runs == 1) throw IoError::with_errno("write", "p", ENOSPC);
  });
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_EQ(runs, 2u);
}

TEST_F(Retry, CapacityRetryBudgetIsConfigurable) {
  RetryPolicy policy = fast_policy(8);
  policy.max_capacity_retries = 3;
  std::size_t runs = 0;
  EXPECT_THROW(retry_io(policy,
                        [&] {
                          ++runs;
                          throw IoError::with_errno("write", "p", ENOSPC);
                        }),
               IoError);
  EXPECT_EQ(runs, 4u);

  policy.max_capacity_retries = 0;
  runs = 0;
  EXPECT_THROW(retry_io(policy,
                        [&] {
                          ++runs;
                          throw IoError::with_errno("write", "p", ENOSPC);
                        }),
               IoError);
  EXPECT_EQ(runs, 1u) << "zero budget: capacity errors fail immediately";
}

TEST_F(Retry, EnvForcedRepeatedEnospcIsBounded) {
  // The end-to-end regression shape: ARTSPARSE_FAULT_SPEC forces repeated
  // ENOSPC on the commit path; the write must surface ENOSPC after the
  // bounded capacity budget instead of exhausting max_attempts.
  ASSERT_EQ(setenv("ARTSPARSE_FAULT_SPEC",
                   "open:1:ENOSPC,open:2:ENOSPC,open:3:ENOSPC,"
                   "open:4:ENOSPC,open:5:ENOSPC,open:6:ENOSPC",
                   1),
            0);
  FaultInjector::instance().configure_from_env();
  unsetenv("ARTSPARSE_FAULT_SPEC");

  const std::string path = (dir_ / "frag.asf").string();
  try {
    atomic_write_file(path, payload(64), fast_policy(8));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.errno_value(), ENOSPC);
  }
  EXPECT_EQ(FaultInjector::instance().calls(FaultOp::kOpenWrite), 2u)
      << "first try + one capacity retry, not the full attempt budget";
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(Retry, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.base_delay_sec = 0.001;
  policy.cap_delay_sec = 0.008;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(policy.delay_seconds(1), 0.001);
  EXPECT_DOUBLE_EQ(policy.delay_seconds(2), 0.002);
  EXPECT_DOUBLE_EQ(policy.delay_seconds(3), 0.004);
  EXPECT_DOUBLE_EQ(policy.delay_seconds(4), 0.008);
  EXPECT_DOUBLE_EQ(policy.delay_seconds(10), 0.008);  // capped
  EXPECT_DOUBLE_EQ(policy.delay_seconds(64), 0.008);  // no overflow
}

TEST_F(Retry, JitteredDelaysAreBoundedAndDeterministic) {
  RetryPolicy policy;
  policy.base_delay_sec = 0.001;
  policy.cap_delay_sec = 0.008;
  policy.jitter = 0.5;
  for (std::size_t attempt = 1; attempt <= 12; ++attempt) {
    const double delay = policy.delay_seconds(attempt);
    EXPECT_GT(delay, 0.0);
    EXPECT_LE(delay, policy.cap_delay_sec * (1.0 + policy.jitter / 2.0));
    EXPECT_DOUBLE_EQ(delay, policy.delay_seconds(attempt))
        << "same seed + attempt must give the same delay";
  }
  RetryPolicy reseeded = policy;
  reseeded.seed = policy.seed + 1;
  EXPECT_NE(policy.delay_seconds(1), reseeded.delay_seconds(1));
}

TEST_F(Retry, ConcurrentCallsDrawDistinctJitterStreams) {
  // Seeding jitter with seed + attempt alone made every retry_io() call
  // sharing one policy sleep *identical* backoffs — a lockstep retry herd.
  // Each call must draw its own nonce and land on a distinct stream.
  RetryPolicy policy = fast_policy(4);
  policy.jitter = 0.9;
  EXPECT_NE(policy.delay_seconds(1, 1), policy.delay_seconds(1, 2));

  detail::reset_retry_nonce_for_testing(0);
  auto one_retry = [&] {
    bool failed = false;
    const RetryStats stats = retry_io(policy, [&] {
      if (!failed) {
        failed = true;
        throw IoError::with_errno("write", "p", EINTR);
      }
    });
    EXPECT_EQ(stats.retries, 1u);
    return stats.backoff_seconds;
  };
  const double first = one_retry();
  const double second = one_retry();
  EXPECT_NE(first, second) << "consecutive calls retried in lockstep";

  // Still deterministic: pinning the nonce counter reproduces the exact
  // backoff sequence under a fixed seed.
  detail::reset_retry_nonce_for_testing(0);
  EXPECT_DOUBLE_EQ(one_retry(), first);
  EXPECT_DOUBLE_EQ(one_retry(), second);

  // nonce 0 (the single-arg overload) keeps the legacy stream.
  EXPECT_DOUBLE_EQ(policy.delay_seconds(2), policy.delay_seconds(2, 0));
}

TEST_F(Retry, TransientSequenceSucceedsWithinPolicy) {
  // write #1 EINTR, write #2 EAGAIN; the third attempt commits.
  FaultInjector::instance().configure("write:1:EINTR,write:2:EAGAIN");
  const std::string path = (dir_ / "frag.asf").string();
  const Bytes data = payload(512);
  const RetryStats stats = atomic_write_file(path, data, fast_policy(4));
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_GT(stats.backoff_seconds, 0.0);
  EXPECT_EQ(read_file(path), data);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(Retry, NonRetryableErrnoFailsWithoutRetrying) {
  FaultInjector::instance().configure("write:1:EIO");
  const std::string path = (dir_ / "frag.asf").string();
  try {
    atomic_write_file(path, payload(64), fast_policy(4));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.errno_value(), EIO);
  }
  // One open, one write: the policy never re-entered the sequence.
  EXPECT_EQ(FaultInjector::instance().calls(FaultOp::kWrite), 1u);
  EXPECT_EQ(FaultInjector::instance().calls(FaultOp::kOpenWrite), 1u);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(Retry, ExhaustedRetriesSurfaceTheOriginalError) {
  FaultInjector::instance().configure(
      "write:1:EINTR,write:2:EINTR,write:3:EINTR,write:4:EINTR");
  const std::string path = (dir_ / "frag.asf").string();
  try {
    atomic_write_file(path, payload(64), fast_policy(3));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.errno_value(), EINTR);
  }
  EXPECT_EQ(FaultInjector::instance().calls(FaultOp::kWrite), 3u);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_FALSE(fs::exists(path));
}

TEST_F(Retry, RetryIoPropagatesNonIoErrorsUntouched) {
  const RetryPolicy policy = fast_policy(5);
  std::size_t runs = 0;
  EXPECT_THROW(retry_io(policy,
                        [&] {
                          ++runs;
                          throw FormatError("not an IO problem");
                        }),
               FormatError);
  EXPECT_EQ(runs, 1u);
}

TEST_F(Retry, WriteBreakdownSurfacesAttemptCounters) {
  const Shape shape{16, 16};
  FragmentStore store(dir_, shape);
  store.set_retry_policy(fast_policy(4));
  CoordBuffer coords(2);
  coords.append({4, 4});
  coords.append({5, 6});

  FaultInjector::instance().configure("write:1:EINTR");
  const WriteResult faulted =
      store.write(coords, std::vector<value_t>{1.0, 2.0}, OrgKind::kGcsr);
  FaultInjector::instance().reset();
  EXPECT_EQ(faulted.times.io_attempts, 2u);
  EXPECT_EQ(faulted.times.io_retries, 1u);
  EXPECT_GT(faulted.times.backoff, 0.0);

  const WriteResult clean =
      store.write(coords, std::vector<value_t>{3.0, 4.0}, OrgKind::kCoo);
  EXPECT_EQ(clean.times.io_attempts, 1u);
  EXPECT_EQ(clean.times.io_retries, 0u);
  EXPECT_DOUBLE_EQ(clean.times.backoff, 0.0);

  // Both fragments committed intact despite the transient fault: the scan
  // sees both copies of each of the two cells.
  const ReadResult all = store.scan_region(Box::whole(shape));
  EXPECT_EQ(all.values.size(), 4u);
}

TEST_F(Retry, TiledWriteSumsAttemptCountersAcrossTiles) {
  const Shape shape{16, 16};
  const TileGrid grid(shape, Shape{8, 8});
  TiledStore store(dir_, grid, TilePolicy::fixed(OrgKind::kCoo));
  store.set_retry_policy(fast_policy(4));
  EXPECT_EQ(store.retry_policy().max_attempts, 4u);

  CoordBuffer coords(2);
  coords.append({1, 1});    // tile 0
  coords.append({9, 9});    // tile 3
  FaultInjector::instance().configure("write:1:EINTR");
  const TiledWriteResult result =
      store.write(coords, std::vector<value_t>{1.0, 2.0});
  EXPECT_EQ(result.tiles_written, 2u);
  EXPECT_EQ(result.times.io_attempts, 3u);  // 2 commits + 1 retry
  EXPECT_EQ(result.times.io_retries, 1u);
}

}  // namespace
}  // namespace artsparse
