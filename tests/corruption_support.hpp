// Seeded corruption corpus shared by test_corruption (library-level
// expectations) and test_cli_check (the fsck CLI must flag every class).
// Each generator returns complete fragment bytes. Classes that corrupt the
// *index* re-encode the fragment afterwards, so the CRC is valid and the
// corruption reaches the format loader / deep validators instead of being
// caught by the checksum.
#pragma once

#include <gtest/gtest.h>

#include <cstring>

#include "formats/registry.hpp"
#include "storage/fragment.hpp"
#include "storage/serializer.hpp"
#include "test_support.hpp"

namespace artsparse::testing {

inline Bytes valid_fragment_bytes(OrgKind org,
                                  CodecKind codec = CodecKind::kIdentity) {
  auto format = make_format(org);
  const CoordBuffer coords = fig1_coords();
  format->build(coords, fig1_shape());
  Fragment fragment;
  fragment.org = org;
  fragment.codec = codec;
  fragment.shape = fig1_shape();
  fragment.bbox = Box::bounding(coords);
  fragment.point_count = coords.size();
  fragment.index = serialize_format(*format);
  fragment.values = fig1_values();
  return encode_fragment(fragment);
}

/// Overwrites the u64 at byte `offset` of `data`.
inline void poke_u64(Bytes& data, std::size_t offset, std::uint64_t value) {
  ASSERT_LE(offset + sizeof(value), data.size());
  std::memcpy(data.data() + offset, &value, sizeof(value));
}

/// Class 1: file cut off mid-payload.
inline Bytes corrupt_truncated() {
  const Bytes valid = valid_fragment_bytes(OrgKind::kGcsr);
  return Bytes(valid.begin(),
               valid.begin() + static_cast<std::ptrdiff_t>(valid.size() / 2));
}

/// Class 2: a flipped payload byte the trailing CRC no longer matches.
inline Bytes corrupt_checksum() {
  Bytes bytes = valid_fragment_bytes(OrgKind::kCsf);
  bytes[bytes.size() / 2] ^= std::byte{0x40};
  return bytes;
}

/// Class 3: GCSR row_ptr made non-monotone. The fragment is re-encoded so
/// only the always-on load() checks can catch it.
inline Bytes corrupt_nonmonotone_offsets() {
  Fragment fragment = decode_fragment(valid_fragment_bytes(OrgKind::kGcsr));
  // Index layout (GcsrFormat::save): shape vec | bbox flag + lo + hi |
  // rows | cols | row_ptr vec | col_ind vec.
  BufferReader reader(fragment.index);
  reader.get_u64_vec();  // shape extents
  if (reader.get_u8() != 0) {
    reader.get_u64_vec();  // box lo
    reader.get_u64_vec();  // box hi
  }
  reader.get_u64();  // rows
  reader.get_u64();  // cols
  reader.get_u64();  // row_ptr length prefix
  // Spike the second row_ptr entry above the final one.
  poke_u64(fragment.index, reader.offset() + sizeof(std::uint64_t), 1000);
  return encode_fragment(fragment);
}

/// Class 4: a COO coordinate outside the tensor shape. Survives load()
/// (cheap checks only) and must be caught by the deep validators.
inline Bytes corrupt_out_of_shape_coord() {
  Fragment fragment = decode_fragment(valid_fragment_bytes(OrgKind::kCoo));
  // Index layout (CooFormat::save): shape vec | rank | flat coord vec.
  BufferReader reader(fragment.index);
  reader.get_u64_vec();  // shape extents
  reader.get_u64();      // rank
  reader.get_u64();      // flat length prefix
  poke_u64(fragment.index, reader.offset(), 99);  // first coordinate
  return encode_fragment(fragment);
}

/// Class 5: broken value/map pairing — the header promises one value per
/// point but the value buffer is short.
inline Bytes corrupt_bad_map() {
  Fragment fragment = decode_fragment(valid_fragment_bytes(OrgKind::kLinear));
  fragment.values.pop_back();
  return encode_fragment(fragment);
}

}  // namespace artsparse::testing
