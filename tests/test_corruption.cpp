// Table-driven corruption-corpus test: every seeded corruption class must
// surface as a typed artsparse error or a named validator issue — never as
// silent acceptance (and, under the sanitizer jobs, never as UB).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "check/issues.hpp"
#include "check/validate.hpp"
#include "core/error.hpp"
#include "corruption_support.hpp"
#include "formats/registry.hpp"
#include "storage/fragment.hpp"

namespace artsparse {
namespace {

using testing::valid_fragment_bytes;

bool has_rule(const check::Issues& issues, const std::string& rule) {
  const auto& items = issues.items();
  return std::any_of(items.begin(), items.end(),
                     [&](const check::Issue& issue) {
                       return issue.rule == rule;
                     });
}

check::Issues check_bytes(const Bytes& bytes, check::Depth depth) {
  check::Issues issues;
  check::check_fragment_bytes(bytes, depth, issues);
  return issues;
}

TEST(CorruptionCorpus, ValidFragmentsPassAllDepths) {
  for (OrgKind org : all_org_kinds()) {
    for (CodecKind codec : {CodecKind::kIdentity, CodecKind::kDeltaVarint,
                            CodecKind::kRle}) {
      const Bytes bytes = valid_fragment_bytes(org, codec);
      const check::Issues issues = check_bytes(bytes, check::Depth::kFull);
      EXPECT_TRUE(issues.ok())
          << to_string(org) << "/" << to_string(codec) << ": "
          << issues.summary();
    }
  }
}

TEST(CorruptionCorpus, TruncatedBufferIsRejectedAtEveryCut) {
  for (OrgKind org : all_org_kinds()) {
    const Bytes valid = valid_fragment_bytes(org);
    for (std::size_t cut : {valid.size() / 4, valid.size() / 2,
                            valid.size() - 1}) {
      const Bytes bytes(valid.begin(),
                        valid.begin() + static_cast<std::ptrdiff_t>(cut));
      EXPECT_THROW(decode_fragment(bytes), FormatError)
          << to_string(org) << " cut at " << cut;
      EXPECT_FALSE(check_bytes(bytes, check::Depth::kHeader).ok())
          << to_string(org) << " cut at " << cut;
    }
  }
}

TEST(CorruptionCorpus, BitFlipAnywhereFailsTheChecksum) {
  const Bytes valid = valid_fragment_bytes(OrgKind::kSortedCoo);
  // Flip one bit at a spread of positions across the payload; the CRC
  // trailer must catch each of them before any parsing happens.
  for (std::size_t pos = 4; pos + sizeof(std::uint32_t) < valid.size();
       pos += valid.size() / 16 + 1) {
    Bytes bytes = valid;
    bytes[pos] ^= std::byte{0x01};
    EXPECT_THROW(decode_fragment(bytes), FormatError) << "flip at " << pos;
    const check::Issues issues = check_bytes(bytes, check::Depth::kHeader);
    EXPECT_TRUE(has_rule(issues, "fragment.checksum") ||
                has_rule(issues, "fragment.header"))
        << "flip at " << pos << ": " << issues.summary();
  }
}

TEST(CorruptionCorpus, NonMonotoneOffsetsAreRejectedByLoad) {
  const Bytes bytes = testing::corrupt_nonmonotone_offsets();
  // The CRC was recomputed, so the fragment itself decodes fine...
  const Fragment fragment = decode_fragment(bytes);
  // ...and the always-on load() contract must refuse the index.
  EXPECT_THROW(load_format(fragment.org, fragment.index), FormatError);
  const check::Issues issues = check_bytes(bytes, check::Depth::kStructure);
  EXPECT_TRUE(has_rule(issues, "format.load")) << issues.summary();
}

TEST(CorruptionCorpus, OutOfShapeCoordIsCaughtByDeepValidation) {
  const Bytes bytes = testing::corrupt_out_of_shape_coord();
  // Cheap load() checks alone do not scan coordinates, so the index loads...
  const Fragment fragment = decode_fragment(bytes);
  auto format = load_format(fragment.org, fragment.index);
  // ...but the deep invariant pass pins the exact rule.
  check::Issues issues;
  format->check_invariants(issues);
  EXPECT_TRUE(has_rule(issues, "coo.coords.in_shape")) << issues.summary();
  EXPECT_THROW(format->validate(), FormatError);
  EXPECT_FALSE(check_bytes(bytes, check::Depth::kStructure).ok());
}

TEST(CorruptionCorpus, BadMapPermutationFailsTheCountCrossCheck) {
  const Bytes bytes = testing::corrupt_bad_map();
  const check::Issues issues = check_bytes(bytes, check::Depth::kHeader);
  EXPECT_TRUE(has_rule(issues, "fragment.counts")) << issues.summary();
}

TEST(CorruptionCorpus, UnsortedSortedCooIsFlagged) {
  // A SortedCOO index whose points are out of order: every binary-search
  // lookup silently degrades, so the deep validator must flag it.
  Fragment fragment =
      decode_fragment(valid_fragment_bytes(OrgKind::kSortedCoo));
  // Index layout (SortedCooFormat::save): shape vec | rank | flat vec.
  BufferReader reader(fragment.index);
  reader.get_u64_vec();  // shape extents
  reader.get_u64();      // rank
  reader.get_u64();      // flat length prefix
  // Move the first point past the second by spiking its leading coordinate
  // within the 3x3x3 shape.
  testing::poke_u64(fragment.index, reader.offset(), 2);
  const Bytes bytes = encode_fragment(fragment);

  auto format = load_format(OrgKind::kSortedCoo,
                            decode_fragment(bytes).index);
  check::Issues issues;
  format->check_invariants(issues);
  EXPECT_TRUE(has_rule(issues, "sorted_coo.order")) << issues.summary();
}

TEST(CorruptionCorpus, UnderstatedPointCountIsCaughtAtStructureDepth) {
  Fragment fragment = decode_fragment(valid_fragment_bytes(OrgKind::kCsf));
  ASSERT_GE(fragment.point_count, 2u);
  fragment.point_count -= 1;
  fragment.values.pop_back();  // keep the header-level count check green
  const Bytes bytes = encode_fragment(fragment);
  ASSERT_TRUE(check_bytes(bytes, check::Depth::kHeader).ok());
  const check::Issues issues = check_bytes(bytes, check::Depth::kStructure);
  EXPECT_TRUE(has_rule(issues, "fragment.point_count")) << issues.summary();
}

TEST(CorruptionCorpus, LooseBboxIsCaughtAtFullDepth) {
  Fragment fragment = decode_fragment(valid_fragment_bytes(OrgKind::kBcsr));
  // Shrink the advertised bounding box so it no longer covers the points.
  fragment.bbox = Box({0, 0, 0}, {0, 0, 0});
  const Bytes bytes = encode_fragment(fragment);
  const check::Issues issues = check_bytes(bytes, check::Depth::kFull);
  EXPECT_FALSE(issues.ok());
}

}  // namespace
}  // namespace artsparse
