// Regression tests for unchecked size arithmetic in the untrusted
// deserialization path: hostile 64-bit length prefixes must fail the bounds
// check *before* any narrowing, multiplication, or allocation. The constants
// below are the classic wrap patterns (n * 8 overflowing to a small value,
// and lengths that only truncate on a 32-bit size_t).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "core/error.hpp"
#include "storage/compress/codec.hpp"
#include "storage/serializer.hpp"

namespace artsparse {
namespace {

Bytes with_u64_prefix(std::uint64_t prefix, std::size_t payload = 16) {
  BufferWriter writer;
  writer.put_u64(prefix);
  for (std::size_t i = 0; i < payload; ++i) {
    writer.put_u8(0);
  }
  return writer.take();
}

TEST(BufferHardening, VectorLengthTimesElementSizeCannotWrap) {
  // 0x2000000000000001 * 8 wraps to 8 on u64 arithmetic — a naive
  // `n * sizeof(T) <= remaining()` check would accept it and then copy
  // far past the buffer.
  for (std::uint64_t evil :
       {std::uint64_t{0x2000000000000001}, std::uint64_t{0x4000000000000001},
        std::numeric_limits<std::uint64_t>::max() / 8 + 1,
        std::numeric_limits<std::uint64_t>::max()}) {
    const Bytes data = with_u64_prefix(evil);
    BufferReader u64_reader(data);
    EXPECT_THROW(u64_reader.get_u64_vec(), FormatError) << evil;
    BufferReader f64_reader(data);
    EXPECT_THROW(f64_reader.get_f64_vec(), FormatError) << evil;
  }
}

TEST(BufferHardening, HugeStringLengthIsRejectedWithoutAllocating) {
  const Bytes data =
      with_u64_prefix(std::numeric_limits<std::uint64_t>::max());
  BufferReader reader(data);
  EXPECT_THROW(reader.get_string(), FormatError);
}

TEST(BufferHardening, GetBytesChecksU64BeforeNarrowing) {
  const Bytes data(64, std::byte{0});
  // On a 32-bit size_t, 1 << 32 would narrow to 0 and "succeed"; the u64
  // comparison must reject it first.
  for (std::uint64_t evil :
       {std::uint64_t{1} << 32, (std::uint64_t{1} << 32) + 8,
        std::numeric_limits<std::uint64_t>::max(), std::uint64_t{65}}) {
    BufferReader reader(data);
    EXPECT_THROW(reader.get_bytes(evil), FormatError) << evil;
  }
  BufferReader reader(data);
  EXPECT_EQ(reader.get_bytes(64).size(), 64u);
}

TEST(BufferHardening, VectorLengthJustPastBufferIsRejected) {
  const Bytes data = with_u64_prefix(3, 2 * sizeof(std::uint64_t));
  BufferReader reader(data);
  EXPECT_THROW(reader.get_u64_vec(), FormatError);
  const Bytes exact = with_u64_prefix(2, 2 * sizeof(std::uint64_t));
  BufferReader ok_reader(exact);
  EXPECT_EQ(ok_reader.get_u64_vec().size(), 2u);
  EXPECT_TRUE(ok_reader.exhausted());
}

TEST(BufferHardening, RleRejectsImplausiblyLargeDecodedSize) {
  // An RLE stream of k pairs can decode to at most 255 * k elements; a
  // header claiming more must be rejected before the output allocation.
  BufferWriter writer;
  writer.put_u64(std::numeric_limits<std::uint64_t>::max());
  writer.put_u8(1);  // one (count, delta-byte) pair
  writer.put_u8(0);
  const Bytes coded = writer.take();
  auto codec = make_codec(CodecKind::kRle);
  EXPECT_THROW(codec->decode(coded), FormatError);
}

TEST(BufferHardening, TruncatedPrimitiveReadsThrow) {
  const Bytes data(3, std::byte{0});
  BufferReader r1(data);
  EXPECT_THROW(r1.get_u64(), FormatError);
  BufferReader r2(data);
  EXPECT_THROW(r2.get_u32(), FormatError);
  BufferReader r3(data);
  EXPECT_THROW(r3.get_f64(), FormatError);
  BufferReader r4(data);
  r4.get_u8();
  r4.get_u8();
  r4.get_u8();
  EXPECT_TRUE(r4.exhausted());
  EXPECT_THROW(r4.get_u8(), FormatError);
}

}  // namespace
}  // namespace artsparse
