#include "cli_support.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "test_support.hpp"

namespace artsparse::cli {
namespace {

Args parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "artsparse");
  return parse_args(static_cast<int>(argv.size()),
                    const_cast<char**>(argv.data()));
}

TEST(CliArgs, CommandAndOptions) {
  const Args args =
      parse({"generate", "--shape", "256,256", "--density=0.01", "--print"});
  EXPECT_EQ(args.command, "generate");
  EXPECT_EQ(args.get("shape"), "256,256");
  EXPECT_EQ(args.get("density"), "0.01");
  EXPECT_TRUE(args.has("print"));
  EXPECT_FALSE(args.has("absent"));
  EXPECT_EQ(args.get("absent", "fallback"), "fallback");
}

TEST(CliArgs, NoCommand) {
  const Args args = parse({"--store", "dir"});
  EXPECT_TRUE(args.command.empty());
  EXPECT_EQ(args.get("store"), "dir");
}

TEST(CliParse, Shape) {
  EXPECT_EQ(parse_shape("256,128,64"), (Shape{256, 128, 64}));
  EXPECT_EQ(parse_shape("7"), (Shape{7}));
  EXPECT_THROW(parse_shape("12,x"), FormatError);
  EXPECT_THROW(parse_shape(""), FormatError);
}

TEST(CliParse, Region) {
  EXPECT_EQ(parse_region("10:20,30:40"), Box({10, 30}, {20, 40}));
  EXPECT_THROW(parse_region("10-20"), FormatError);
  EXPECT_THROW(parse_region("20:10"), FormatError);  // inverted bounds
}

TEST(CliParse, Pattern) {
  EXPECT_EQ(parse_pattern("TSP"), PatternKind::kTsp);
  EXPECT_EQ(parse_pattern("gsp"), PatternKind::kGsp);
  EXPECT_EQ(parse_pattern("cgp"), PatternKind::kGsp);  // Table II alias
  EXPECT_EQ(parse_pattern("msp"), PatternKind::kMsp);
  EXPECT_THROW(parse_pattern("nope"), FormatError);
}

TEST(CliParse, Org) {
  EXPECT_EQ(parse_org("coo"), OrgKind::kCoo);
  EXPECT_EQ(parse_org("GCSR++"), OrgKind::kGcsr);
  EXPECT_EQ(parse_org("gcsc"), OrgKind::kGcsc);
  EXPECT_EQ(parse_org("CSF"), OrgKind::kCsf);
  EXPECT_EQ(parse_org("sorted-coo"), OrgKind::kSortedCoo);
  EXPECT_THROW(parse_org("btree"), FormatError);
}

TEST(CliParse, ByteSize) {
  EXPECT_EQ(parse_byte_size("1048576"), 1048576u);
  EXPECT_EQ(parse_byte_size("64K"), 64u << 10);
  EXPECT_EQ(parse_byte_size("64k"), 64u << 10);
  EXPECT_EQ(parse_byte_size("256MiB"), 256u << 20);
  EXPECT_EQ(parse_byte_size("2M"), 2u << 20);
  EXPECT_EQ(parse_byte_size("1G"), 1u << 30);
  EXPECT_EQ(parse_byte_size("0"), 0u);
  EXPECT_THROW(parse_byte_size(""), FormatError);
  EXPECT_THROW(parse_byte_size("abc"), FormatError);
  EXPECT_THROW(parse_byte_size("12Q"), FormatError);
}

TEST(CliParse, Weights) {
  EXPECT_GT(parse_weights("read").read, parse_weights("read").write);
  EXPECT_GT(parse_weights("archive").space, 1.0);
  EXPECT_THROW(parse_weights("wat"), FormatError);
}

TEST(CliTsv, RoundTrip) {
  const auto dir = testing::fresh_temp_dir("cli_tsv");
  const auto path = (dir / "points.tsv").string();

  CoordBuffer coords(3);
  coords.append({1, 2, 3});
  coords.append({40, 50, 60});
  const std::vector<value_t> values{1.5, -2.25};
  write_tsv(path, coords, values);

  const auto [read_coords, read_values] = read_tsv(path);
  EXPECT_TRUE(read_coords == coords);
  EXPECT_EQ(read_values, values);
  std::filesystem::remove_all(dir);
}

TEST(CliTsv, InconsistentRankRejected) {
  const auto dir = testing::fresh_temp_dir("cli_tsv_bad");
  const auto path = (dir / "bad.tsv").string();
  {
    std::ofstream out(path);
    out << "1\t2\t3.0\n1\t2\t3\t4.0\n";
  }
  EXPECT_THROW(read_tsv(path), FormatError);
  std::filesystem::remove_all(dir);
}

TEST(CliTsv, MissingFileRejected) {
  EXPECT_THROW(read_tsv("/nonexistent/points.tsv"), IoError);
}

TEST(CliStoreShape, ReadsShapeFromFragments) {
  const auto dir = testing::fresh_temp_dir("cli_shape");
  const Shape shape{32, 32};
  {
    FragmentStore store(dir, shape);
    CoordBuffer coords(2);
    coords.append({1, 1});
    const std::vector<value_t> values{1.0};
    store.write(coords, values, OrgKind::kCoo);
  }
  EXPECT_EQ(store_shape(dir.string()), shape);
  std::filesystem::remove_all(dir);
}

TEST(CliStoreShape, EmptyDirectoryRejected) {
  const auto dir = testing::fresh_temp_dir("cli_empty");
  EXPECT_THROW(store_shape(dir.string()), FormatError);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace artsparse::cli
