// Graceful-degradation reads: under ReadFaultPolicy::kSkip a store with one
// corrupt (or vanished) fragment still answers queries from the remaining
// fragments and reports what it dropped; under kStrict (the default) the
// same store fails loudly, exactly as before.
#include "storage/fragment_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "core/error.hpp"
#include "corruption_support.hpp"
#include "storage/file_io.hpp"
#include "tiles/tiled_store.hpp"

namespace artsparse {
namespace {

namespace fs = std::filesystem;

class ReadPolicy : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = testing::fresh_temp_dir("readpolicy"); }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Three single-point fragments in disjoint cells of a 16x16 tensor.
  /// Returns the per-fragment write results in write order.
  std::vector<WriteResult> populate(FragmentStore& store) {
    std::vector<WriteResult> written;
    const index_t cells[][2] = {{1, 1}, {5, 5}, {9, 9}};
    for (std::size_t i = 0; i < 3; ++i) {
      CoordBuffer coords(2);
      coords.append({cells[i][0], cells[i][1]});
      written.push_back(store.write(
          coords, std::vector<value_t>{static_cast<value_t>(i + 1)},
          OrgKind::kCoo));
    }
    return written;
  }

  /// Truncates `path` in place, modeling corruption that appears after the
  /// store was opened (the open-time sweep cannot have quarantined it).
  static void tear(const std::string& path) {
    const Bytes whole = read_file(path);
    write_file(path, Bytes(whole.begin(),
                           whole.begin() + static_cast<std::ptrdiff_t>(
                                               whole.size() / 2)));
  }

  fs::path dir_;
};

TEST_F(ReadPolicy, StrictIsTheDefaultAndThrows) {
  const Shape shape{16, 16};
  FragmentStore store(dir_, shape);
  const std::vector<WriteResult> written = populate(store);
  EXPECT_EQ(store.read_fault_policy(), ReadFaultPolicy::kStrict);
  tear(written[1].path);
  EXPECT_THROW(store.scan_region(Box::whole(shape)), Error);
}

TEST_F(ReadPolicy, SkipAnswersFromHealthyFragmentsAndReportsTheBadOne) {
  const Shape shape{16, 16};
  FragmentStore store(dir_, shape);
  const std::vector<WriteResult> written = populate(store);
  store.set_read_fault_policy(ReadFaultPolicy::kSkip);
  tear(written[1].path);

  const ReadResult result = store.scan_region(Box::whole(shape));
  EXPECT_EQ(result.fragments_visited, 3u);
  ASSERT_EQ(result.skipped.size(), 1u);
  EXPECT_EQ(result.skipped[0].path, written[1].path);
  EXPECT_FALSE(result.skipped[0].error.empty());
  ASSERT_EQ(result.values.size(), 2u);
  EXPECT_EQ(result.values[0], 1.0);
  EXPECT_EQ(result.values[1], 3.0);
}

TEST_F(ReadPolicy, SkipCoversThePointReadPathToo) {
  const Shape shape{16, 16};
  FragmentStore store(dir_, shape);
  const std::vector<WriteResult> written = populate(store);
  store.set_read_fault_policy(ReadFaultPolicy::kSkip);
  tear(written[0].path);

  CoordBuffer queries(2);
  queries.append({1, 1});
  queries.append({9, 9});
  const ReadResult result = store.read(queries);
  ASSERT_EQ(result.skipped.size(), 1u);
  EXPECT_EQ(result.skipped[0].path, written[0].path);
  ASSERT_EQ(result.values.size(), 1u);  // (1,1) lived in the torn fragment
  EXPECT_EQ(result.values[0], 3.0);
}

TEST_F(ReadPolicy, SkipReportsAFragmentDeletedUnderneathTheStore) {
  const Shape shape{16, 16};
  FragmentStore store(dir_, shape);
  const std::vector<WriteResult> written = populate(store);
  store.set_read_fault_policy(ReadFaultPolicy::kSkip);
  fs::remove(written[2].path);

  const ReadResult result = store.scan_region(Box::whole(shape));
  ASSERT_EQ(result.skipped.size(), 1u);
  EXPECT_EQ(result.skipped[0].path, written[2].path);
  EXPECT_EQ(result.values.size(), 2u);
}

TEST_F(ReadPolicy, CleanStoreReportsNothingSkipped) {
  const Shape shape{16, 16};
  FragmentStore store(dir_, shape);
  populate(store);
  store.set_read_fault_policy(ReadFaultPolicy::kSkip);
  const ReadResult result = store.scan_region(Box::whole(shape));
  EXPECT_TRUE(result.skipped.empty());
  EXPECT_EQ(result.values.size(), 3u);
}

TEST_F(ReadPolicy, SkipSurvivesCrcValidStructuralCorruption) {
  // A corrupt index with a recomputed checksum passes the open-time header
  // sweep; only the hardened loader catches it, mid-read. kSkip must
  // degrade instead of failing the query.
  FragmentStore store(dir_, testing::fig1_shape());
  store.write(testing::fig1_coords(), testing::fig1_values(),
              OrgKind::kGcsr);
  const WriteResult second = store.write(
      testing::fig1_coords(), testing::fig1_values(), OrgKind::kGcsr);
  write_file(second.path, testing::corrupt_nonmonotone_offsets());
  store.set_read_fault_policy(ReadFaultPolicy::kSkip);

  const ReadResult result =
      store.scan_region(Box::whole(testing::fig1_shape()));
  ASSERT_EQ(result.skipped.size(), 1u);
  EXPECT_EQ(result.skipped[0].path, second.path);
  EXPECT_EQ(result.values.size(), testing::fig1_values().size());
}

TEST_F(ReadPolicy, TiledStoreForwardsThePolicy) {
  const Shape shape{16, 16};
  const TileGrid grid(shape, Shape{8, 8});
  TiledStore store(dir_, grid, TilePolicy::fixed(OrgKind::kCoo));
  CoordBuffer coords(2);
  coords.append({1, 1});
  coords.append({9, 9});
  store.write(coords, std::vector<value_t>{1.0, 2.0});

  // Tear whichever tile fragment holds (1,1): fragments are in tile order,
  // so it is the first one.
  std::vector<fs::path> fragments;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".asf") {
      fragments.push_back(entry.path());
    }
  }
  std::sort(fragments.begin(), fragments.end());
  ASSERT_EQ(fragments.size(), 2u);
  tear(fragments[0].string());

  EXPECT_THROW(store.scan_region(Box::whole(shape)), Error);
  store.set_read_fault_policy(ReadFaultPolicy::kSkip);
  EXPECT_EQ(store.read_fault_policy(), ReadFaultPolicy::kSkip);
  const ReadResult result = store.scan_region(Box::whole(shape));
  ASSERT_EQ(result.skipped.size(), 1u);
  ASSERT_EQ(result.values.size(), 1u);
  EXPECT_EQ(result.values[0], 2.0);
}

}  // namespace
}  // namespace artsparse
