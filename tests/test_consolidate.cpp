// Consolidation (compaction): many fragments -> one, with last-writer-wins
// semantics for cells written multiple times.
#include <gtest/gtest.h>

#include "core/linearize.hpp"
#include "patterns/dataset.hpp"
#include "storage/fragment_store.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

class ConsolidateTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = testing::fresh_temp_dir("consolidate"); }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(ConsolidateTest, MergesFragmentsIntoOne) {
  const Shape shape{64, 64};
  FragmentStore store(dir_, shape);
  std::size_t total = 0;
  for (index_t base : {index_t{0}, index_t{16}, index_t{32}}) {
    CoordBuffer coords(2);
    std::vector<value_t> values;
    for (index_t i = 0; i < 10; ++i) {
      coords.append({base + i, base});
      values.push_back(expected_value(coords.point(i), shape));
    }
    store.write(coords, values, OrgKind::kCoo);
    total += 10;
  }
  EXPECT_EQ(store.fragment_count(), 3u);

  const std::uint64_t generation_before = store.generation();
  const WriteResult merged = store.consolidate(OrgKind::kGcsr);
  EXPECT_EQ(store.fragment_count(), 1u);
  EXPECT_EQ(merged.point_count, total);
  // Consolidation publishes exactly one new manifest generation.
  EXPECT_EQ(store.generation(), generation_before + 1);

  const ReadResult all = store.scan_region(Box::whole(shape));
  EXPECT_EQ(all.values.size(), total);
  for (std::size_t i = 0; i < all.values.size(); ++i) {
    EXPECT_EQ(all.values[i], expected_value(all.coords.point(i), shape));
  }
}

TEST_F(ConsolidateTest, LastWriterWinsOnOverlaps) {
  const Shape shape{32, 32};
  FragmentStore store(dir_, shape);
  CoordBuffer coords(2);
  coords.append({5, 5});
  coords.append({6, 6});
  const std::vector<value_t> old_values{1.0, 2.0};
  store.write(coords, old_values, OrgKind::kLinear);

  CoordBuffer update(2);
  update.append({5, 5});
  const std::vector<value_t> new_values{99.0};
  store.write(update, new_values, OrgKind::kCsf);

  store.consolidate(OrgKind::kLinear);
  const ReadResult all = store.scan_region(Box::whole(shape));
  ASSERT_EQ(all.values.size(), 2u);  // deduplicated
  EXPECT_EQ(all.values[0], 99.0);    // (5,5): latest write
  EXPECT_EQ(all.values[1], 2.0);     // (6,6): untouched
}

TEST_F(ConsolidateTest, AdvisorChoiceWhenOrgUnset) {
  const Shape shape{48, 48};
  FragmentStore store(dir_, shape);
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.05}, 7);
  store.write(dataset.coords, dataset.values, OrgKind::kCoo);
  const WriteResult merged = store.consolidate();
  EXPECT_EQ(store.fragment_count(), 1u);
  EXPECT_EQ(merged.point_count, dataset.point_count());
  // The advisor never keeps the COO baseline for balanced weights.
  const ReadResult all = store.scan_region(Box::whole(shape));
  EXPECT_EQ(all.values.size(), dataset.point_count());
}

TEST_F(ConsolidateTest, EmptyStoreConsolidatesToEmptyFragment) {
  FragmentStore store(dir_, Shape{16, 16});
  const WriteResult merged = store.consolidate();
  EXPECT_EQ(merged.point_count, 0u);
  EXPECT_EQ(store.fragment_count(), 1u);
  EXPECT_TRUE(store.scan_region(Box::whole(Shape{16, 16})).values.empty());
}

TEST_F(ConsolidateTest, SurvivesReopen) {
  const Shape shape{32, 32};
  {
    FragmentStore store(dir_, shape);
    CoordBuffer coords(2);
    coords.append({3, 4});
    const std::vector<value_t> values{expected_value(coords.point(0), shape)};
    store.write(coords, values, OrgKind::kGcsc);
    store.consolidate(OrgKind::kCsf);
  }
  FragmentStore reopened(dir_, shape);
  EXPECT_EQ(reopened.fragment_count(), 1u);
  const ReadResult all = reopened.scan_region(Box::whole(shape));
  ASSERT_EQ(all.values.size(), 1u);
  EXPECT_EQ(all.values[0], expected_value(all.coords.point(0), shape));
}

}  // namespace
}  // namespace artsparse
