#include "formats/gcsr.hpp"

#include <gtest/gtest.h>

#include "core/sort.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

using testing::fig1_coords;
using testing::fig1_shape;

// For Fig. 1's five points the local boundary is [0..2, 0..2, 1..2], so the
// local shape is (3, 3, 2); the smallest extent (2, from dimension 2)
// becomes the rows, 3*3 = 9 the columns. Local row-major addresses are
// 0, 2, 3, 16, 17, giving 2-D cells (0,0), (0,2), (0,3), (1,7), (1,8).
TEST(Gcsr, Fig1Structure) {
  GcsrFormat gcsr;
  const auto map = gcsr.build(fig1_coords(), fig1_shape());
  EXPECT_EQ(gcsr.rows(), 2u);
  EXPECT_EQ(gcsr.cols(), 9u);
  EXPECT_EQ(std::vector<index_t>(gcsr.row_ptr().begin(),
                                 gcsr.row_ptr().end()),
            (std::vector<index_t>{0, 3, 5}));
  EXPECT_EQ(std::vector<index_t>(gcsr.col_ind().begin(),
                                 gcsr.col_ind().end()),
            (std::vector<index_t>{0, 2, 3, 7, 8}));
  // Input was already row-ordered: identity map.
  EXPECT_EQ(map, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Gcsr, LookupFindsEveryStoredPoint) {
  GcsrFormat gcsr;
  const CoordBuffer coords = fig1_coords();
  const auto map = gcsr.build(coords, fig1_shape());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(gcsr.lookup(coords.point(i)), map[i]);
  }
}

TEST(Gcsr, MissesAbsentPoints) {
  GcsrFormat gcsr;
  gcsr.build(fig1_coords(), fig1_shape());
  const std::vector<index_t> in_box_absent{0, 0, 2};
  const std::vector<index_t> outside_box{0, 0, 0};  // dim2 < boundary lo
  EXPECT_EQ(gcsr.lookup(in_box_absent), kNotFound);
  EXPECT_EQ(gcsr.lookup(outside_box), kNotFound);
}

TEST(Gcsr, UnsortedInputProducesSortingMap) {
  CoordBuffer coords(2);
  coords.append({3, 0});
  coords.append({0, 0});
  coords.append({1, 1});
  GcsrFormat gcsr;
  const auto map = gcsr.build(coords, Shape{4, 4});
  // 2-D rows come from the boundary's smaller extent; lookups must route
  // through the map regardless of the exact mapping.
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(gcsr.lookup(coords.point(i)), map[i]);
  }
  EXPECT_TRUE(is_permutation_of_iota(map));
}

TEST(Gcsr, RowPtrIsMonotoneAndCoversAllPoints) {
  GcsrFormat gcsr;
  gcsr.build(fig1_coords(), fig1_shape());
  const auto row_ptr = gcsr.row_ptr();
  for (std::size_t r = 1; r < row_ptr.size(); ++r) {
    EXPECT_LE(row_ptr[r - 1], row_ptr[r]);
  }
  EXPECT_EQ(row_ptr.front(), 0u);
  EXPECT_EQ(row_ptr.back(), gcsr.point_count());
}

TEST(Gcsr, SpaceIsNPlusMinExtent) {
  GcsrFormat gcsr;
  gcsr.build(fig1_coords(), fig1_shape());
  // col_ind: n words; row_ptr: rows+1 words. Far below COO's n*d.
  const std::size_t expected_words = 5 + (2 + 1);
  EXPECT_GE(gcsr.index_bytes(), expected_words * sizeof(index_t));
  EXPECT_LT(gcsr.index_bytes(), 5 * 3 * sizeof(index_t) + 96);
}

TEST(Gcsr, SaveLoadRoundTrip) {
  GcsrFormat gcsr;
  const CoordBuffer coords = fig1_coords();
  const auto map = gcsr.build(coords, fig1_shape());
  GcsrFormat fresh;
  testing::reload(gcsr, fresh);
  EXPECT_EQ(fresh.rows(), gcsr.rows());
  EXPECT_EQ(fresh.cols(), gcsr.cols());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(fresh.lookup(coords.point(i)), map[i]);
  }
}

TEST(Gcsr, CorruptRowPtrRejectedOnLoad) {
  GcsrFormat gcsr;
  gcsr.build(fig1_coords(), fig1_shape());
  BufferWriter writer;
  gcsr.save(writer);
  Bytes bytes = writer.take();
  // Truncate the payload: load must fail loudly, not read garbage.
  bytes.resize(bytes.size() / 2);
  GcsrFormat fresh;
  BufferReader reader(bytes);
  EXPECT_THROW(fresh.load(reader), FormatError);
}

TEST(Gcsr, BatchReadMatchesLookup) {
  GcsrFormat gcsr;
  const CoordBuffer coords = fig1_coords();
  gcsr.build(coords, fig1_shape());
  CoordBuffer queries(3);
  queries.append({0, 1, 2});
  queries.append({1, 1, 1});
  queries.append({0, 0, 0});
  queries.append({2, 2, 2});
  const auto slots = gcsr.read(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(slots[i], gcsr.lookup(queries.point(i)));
  }
}

TEST(Gcsr, EmptyBuild) {
  GcsrFormat gcsr;
  EXPECT_TRUE(gcsr.build(CoordBuffer(3), fig1_shape()).empty());
  const std::vector<index_t> point{0, 0, 1};
  EXPECT_EQ(gcsr.lookup(point), kNotFound);
}

TEST(Gcsr, TwoDimensionalInputIsPlainCsr) {
  // For 2-D tensors GCSR++ degenerates to classic CSR over the bounding
  // box — the reason it wins at 2-D reads in Fig. 5.
  CoordBuffer coords(2);
  coords.append({0, 0});
  coords.append({0, 3});
  coords.append({2, 1});
  GcsrFormat gcsr;
  const auto map = gcsr.build(coords, Shape{3, 4});
  EXPECT_EQ(gcsr.rows(), 3u);  // boundary rows 0..2
  EXPECT_EQ(gcsr.cols(), 4u);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(gcsr.lookup(coords.point(i)), map[i]);
  }
}

}  // namespace
}  // namespace artsparse
