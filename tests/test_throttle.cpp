#include "storage/throttle.hpp"

#include <gtest/gtest.h>

#include <ctime>
#include <filesystem>

#include "core/deadline.hpp"
#include "core/error.hpp"
#include "core/timer.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

class Throttle : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = testing::fresh_temp_dir("throttle"); }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
};

TEST_F(Throttle, UnthrottledModelIsPassThrough) {
  const DeviceModel model = DeviceModel::unthrottled();
  EXPECT_FALSE(model.throttled());
  auto device = open_for_write((dir_ / "f.bin").string(), model);
  device->write_all(Bytes(64, std::byte{1}));
  EXPECT_EQ(device->size(), 64u);
}

TEST_F(Throttle, WriteChargesModeledTime) {
  // 1 MB at 10 MB/s must take >= 0.1 s.
  const DeviceModel model{10e6, 0.0};
  auto device = open_for_write((dir_ / "f.bin").string(), model);
  const Bytes payload(1 << 20, std::byte{0});
  WallTimer timer;
  device->write_all(payload);
  EXPECT_GE(timer.seconds(), 0.095);
}

TEST_F(Throttle, LatencyChargedPerOperation) {
  const DeviceModel model{1e12, 0.02};  // effectively pure latency
  auto device = open_for_write((dir_ / "f.bin").string(), model);
  WallTimer timer;
  device->write_all(Bytes(8, std::byte{0}));
  device->write_all(Bytes(8, std::byte{0}));
  EXPECT_GE(timer.seconds(), 0.038);
}

TEST_F(Throttle, LargerWritesCostProportionallyMore) {
  // The effect behind Table III: COO's 4x larger fragment must cost ~4x
  // the write time under a fixed-bandwidth device.
  const DeviceModel model{50e6, 0.0};
  const Bytes small(1 << 18, std::byte{0});
  const Bytes large(4 << 18, std::byte{0});

  WallTimer timer;
  {
    auto device = open_for_write((dir_ / "small.bin").string(), model);
    device->write_all(small);
  }
  const double t_small = timer.seconds();
  timer.reset();
  {
    auto device = open_for_write((dir_ / "large.bin").string(), model);
    device->write_all(large);
  }
  const double t_large = timer.seconds();
  EXPECT_GT(t_large, 2.5 * t_small);
  EXPECT_LT(t_large, 6.0 * t_small);
}

TEST_F(Throttle, ChargeSleepsInsteadOfSpinning) {
  // charge() used to busy-wait the whole modeled transfer, burning a full
  // core for what the model says is device time. It must now sleep all but
  // the final ~1 ms tail: thread CPU time stays far below wall time while
  // the wall time still honors the modeled window.
  auto thread_cpu_seconds = [] {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  };

  // 2 MB at 10 MB/s: a 0.2 s charge window.
  const DeviceModel model{10e6, 0.0};
  auto device = open_for_write((dir_ / "f.bin").string(), model);
  const Bytes payload(2 << 20, std::byte{0});

  const double cpu_before = thread_cpu_seconds();
  WallTimer timer;
  device->write_all(payload);
  const double wall = timer.seconds();
  const double cpu = thread_cpu_seconds() - cpu_before;

  // Wall time within tolerance of the modeled window: no undershoot, and
  // the oversleep stays bounded (sleep wakes early by design, the spin
  // tail absorbs scheduler slop).
  EXPECT_GE(wall, 0.195);
  EXPECT_LT(wall, 0.4);
  // A spinning implementation spends ~the whole window on-CPU; the
  // sleeping one only the spin tail plus the actual write.
  EXPECT_LT(cpu, wall / 2.0);
}

TEST_F(Throttle, AcquireWithinWithoutDeadlineDegeneratesToTryAcquire) {
  TokenBucket bucket(1.0, 1.0);  // 1 token burst, 1 token/s refill
  EXPECT_TRUE(bucket.acquire_within(1.0, OpContext{}));
  WallTimer timer;
  // Unbounded context: never waits, behaves exactly like try_acquire.
  EXPECT_FALSE(bucket.acquire_within(1.0, OpContext{}));
  EXPECT_LT(timer.seconds(), 0.1);
  // Disabled buckets always admit.
  TokenBucket unlimited(0.0);
  EXPECT_TRUE(unlimited.acquire_within(
      1e9, OpContext{Deadline::after_ms(1), CancelToken()}));
}

TEST_F(Throttle, AcquireWithinWaitsOutARefillWithinBudget) {
  TokenBucket bucket(100.0, 1.0);  // refills a token every 10 ms
  EXPECT_TRUE(bucket.try_acquire());
  const OpContext ctx{Deadline::after_ms(2000), CancelToken()};
  WallTimer timer;
  EXPECT_TRUE(bucket.acquire_within(1.0, ctx))
      << "one refill interval fits comfortably in the budget";
  EXPECT_GE(timer.seconds(), 0.005) << "the refill must actually be waited";
  EXPECT_LT(timer.seconds(), 1.0);
}

TEST_F(Throttle, AcquireWithinFailsFastWhenTheRefillCannotFit) {
  TokenBucket bucket(0.1, 1.0);  // a token every 10 s
  EXPECT_TRUE(bucket.try_acquire());
  const OpContext ctx{Deadline::after_ms(20), CancelToken()};
  WallTimer timer;
  EXPECT_FALSE(bucket.acquire_within(1.0, ctx));
  EXPECT_LT(timer.seconds(), 1.0)
      << "a refill that cannot fit the budget must not sleep the budget "
         "out";
}

TEST_F(Throttle, ChargeIsInterruptedByTheDeadline) {
  // 8 MB at 10 MB/s models a 0.8 s transfer; a 10 ms budget must cut it
  // short with the typed error instead of charging the full window. The
  // bound leaves sanitizer/scheduler slack while staying far below 0.8 s.
  const DeviceModel model{10e6, 0.0};
  auto device = open_for_write((dir_ / "f.bin").string(), model);
  const ScopedOpContext scope(
      OpContext{Deadline::after_ms(10), CancelToken()});
  WallTimer timer;
  EXPECT_THROW(device->write_all(Bytes(8 << 20, std::byte{0})),
               DeadlineExceededError);
  EXPECT_LT(timer.seconds(), 0.4);
}

TEST_F(Throttle, ChargeIsInterruptedByCancellation) {
  const DeviceModel model{10e6, 0.0};
  auto device = open_for_write((dir_ / "f.bin").string(), model);
  const CancelToken token = CancelToken::root();
  token.cancel();
  const ScopedOpContext scope(OpContext{Deadline(), token});
  WallTimer timer;
  EXPECT_THROW(device->write_all(Bytes(8 << 20, std::byte{0})),
               CancelledError);
  EXPECT_LT(timer.seconds(), 0.4);
}

TEST_F(Throttle, ThrottledReadReturnsCorrectData) {
  const DeviceModel model{100e6, 1e-4};
  const Bytes payload(1024, std::byte{0x7e});
  {
    auto device = open_for_write((dir_ / "f.bin").string(), model);
    device->write_all(payload);
  }
  auto device = open_for_read((dir_ / "f.bin").string(), model);
  EXPECT_EQ(device->read_at(0, 1024), payload);
}

TEST_F(Throttle, LustreLikeDefaultsAreSane) {
  const DeviceModel model = DeviceModel::lustre_like();
  EXPECT_TRUE(model.throttled());
  EXPECT_GT(model.bandwidth_bytes_per_sec, 1e8);
  EXPECT_GT(model.latency_sec, 0.0);
}

}  // namespace
}  // namespace artsparse
