// Property tests run uniformly over every organization: whatever is built
// must be findable (through the map), absent cells must miss, serialization
// must preserve behaviour, and the map must be a permutation. Swept across
// ranks and sparsity patterns with parameterized gtest.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/linearize.hpp"
#include "core/sort.hpp"
#include "formats/registry.hpp"
#include "patterns/dataset.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

struct RoundTripCase {
  OrgKind org;
  std::size_t rank;
  PatternKind pattern;
};

std::string case_name(const ::testing::TestParamInfo<RoundTripCase>& info) {
  std::string name = to_string(info.param.org) + "_" +
                     std::to_string(info.param.rank) + "D_" +
                     to_string(info.param.pattern);
  std::erase(name, '+');
  return name;
}

SparseDataset small_dataset(std::size_t rank, PatternKind pattern) {
  const index_t extent = rank == 2 ? 48 : rank == 3 ? 16 : 8;
  const Shape shape = Shape::uniform(rank, extent);
  PatternSpec spec;
  switch (pattern) {
    case PatternKind::kTsp:
      spec = TspConfig{2};
      break;
    case PatternKind::kGsp:
      spec = GspConfig{0.05};
      break;
    case PatternKind::kMsp:
      spec = MspConfig{0.01, 0.5};
      break;
  }
  return make_dataset(shape, spec, /*seed=*/1234);
}

class FormatRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(FormatRoundTrip, MapIsPermutation) {
  const auto& param = GetParam();
  const SparseDataset dataset = small_dataset(param.rank, param.pattern);
  auto format = make_format(param.org);
  const auto map = format->build(dataset.coords, dataset.shape);
  ASSERT_EQ(map.size(), dataset.point_count());
  EXPECT_TRUE(is_permutation_of_iota(map));
}

TEST_P(FormatRoundTrip, EveryStoredPointIsFoundAtItsSlot) {
  const auto& param = GetParam();
  const SparseDataset dataset = small_dataset(param.rank, param.pattern);
  auto format = make_format(param.org);
  const auto map = format->build(dataset.coords, dataset.shape);
  for (std::size_t i = 0; i < dataset.coords.size(); ++i) {
    ASSERT_EQ(format->lookup(dataset.coords.point(i)), map[i])
        << "point " << i;
  }
}

TEST_P(FormatRoundTrip, ReorganizedValuesResolveCorrectly) {
  // End-to-end value integrity: scatter values by the map, then every
  // lookup must land on the point's own value.
  const auto& param = GetParam();
  const SparseDataset dataset = small_dataset(param.rank, param.pattern);
  auto format = make_format(param.org);
  const auto map = format->build(dataset.coords, dataset.shape);
  std::vector<value_t> reorganized(dataset.values.size());
  for (std::size_t i = 0; i < map.size(); ++i) {
    reorganized[map[i]] = dataset.values[i];
  }
  for (std::size_t i = 0; i < dataset.coords.size(); ++i) {
    const std::size_t slot = format->lookup(dataset.coords.point(i));
    ASSERT_NE(slot, kNotFound);
    EXPECT_EQ(reorganized[slot],
              expected_value(dataset.coords.point(i), dataset.shape));
  }
}

TEST_P(FormatRoundTrip, AbsentCellsMiss) {
  const auto& param = GetParam();
  const SparseDataset dataset = small_dataset(param.rank, param.pattern);
  auto format = make_format(param.org);
  format->build(dataset.coords, dataset.shape);

  // Collect the occupied addresses, then probe a sample of unoccupied ones.
  std::vector<index_t> occupied = linearize_all(dataset.coords, dataset.shape);
  std::sort(occupied.begin(), occupied.end());
  std::vector<index_t> probe(dataset.shape.rank());
  std::size_t probed = 0;
  for (index_t address = 0;
       address < dataset.shape.element_count() && probed < 200;
       address += 7) {
    if (std::binary_search(occupied.begin(), occupied.end(), address)) {
      continue;
    }
    delinearize(address, dataset.shape, probe);
    EXPECT_EQ(format->lookup(probe), kNotFound)
        << "address " << address;
    ++probed;
  }
  ASSERT_GT(probed, 0u);
}

TEST_P(FormatRoundTrip, SerializationPreservesBehaviour) {
  const auto& param = GetParam();
  const SparseDataset dataset = small_dataset(param.rank, param.pattern);
  auto format = make_format(param.org);
  const auto map = format->build(dataset.coords, dataset.shape);

  auto fresh = load_format(param.org, serialize_format(*format));
  EXPECT_EQ(fresh->kind(), param.org);
  EXPECT_EQ(fresh->point_count(), format->point_count());
  for (std::size_t i = 0; i < dataset.coords.size(); ++i) {
    ASSERT_EQ(fresh->lookup(dataset.coords.point(i)), map[i]);
  }
}

TEST_P(FormatRoundTrip, BatchReadAgreesWithLookup) {
  const auto& param = GetParam();
  const SparseDataset dataset = small_dataset(param.rank, param.pattern);
  auto format = make_format(param.org);
  format->build(dataset.coords, dataset.shape);

  CoordBuffer queries(dataset.shape.rank());
  std::vector<index_t> probe(dataset.shape.rank());
  for (index_t address = 0; address < dataset.shape.element_count();
       address += 11) {
    delinearize(address, dataset.shape, probe);
    queries.append(probe);
  }
  const auto slots = format->read(queries);
  ASSERT_EQ(slots.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(slots[q], format->lookup(queries.point(q)));
  }
}

std::vector<RoundTripCase> all_cases() {
  std::vector<RoundTripCase> cases;
  for (OrgKind org : all_org_kinds()) {
    for (std::size_t rank : {2u, 3u, 4u}) {
      for (PatternKind pattern :
           {PatternKind::kTsp, PatternKind::kGsp, PatternKind::kMsp}) {
        cases.push_back({org, rank, pattern});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOrgsAllPatterns, FormatRoundTrip,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace artsparse
