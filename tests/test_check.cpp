// Tests for the artsparse::check subsystem itself: the contract macro, the
// paranoid-mode switch, the Issues collector, per-format deep validators on
// healthy indexes, the R-tree self-check, and the store-level fsck engine.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "check/contracts.hpp"
#include "check/fsck.hpp"
#include "check/issues.hpp"
#include "check/validate.hpp"
#include "core/error.hpp"
#include "corruption_support.hpp"
#include "formats/registry.hpp"
#include "storage/file_io.hpp"
#include "storage/fragment_store.hpp"
#include "storage/rtree.hpp"

namespace artsparse {
namespace {

namespace fs = std::filesystem;

TEST(Contracts, AssertPassesAndThrowsFormatError) {
  EXPECT_NO_THROW(ARTSPARSE_ASSERT(2 + 2 == 4, "arithmetic still works"));
  try {
    ARTSPARSE_ASSERT(1 == 2, "broken invariant");
    FAIL() << "ARTSPARSE_ASSERT did not throw";
  } catch (const FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
    EXPECT_NE(what.find("broken invariant"), std::string::npos) << what;
  }
}

TEST(Contracts, ParanoidGuardOverridesAndRestores) {
  {
    check::ParanoidGuard on(true);
    EXPECT_TRUE(check::paranoid_enabled());
    check::set_paranoid(false);
    EXPECT_FALSE(check::paranoid_enabled());
    check::set_paranoid(true);
    EXPECT_TRUE(check::paranoid_enabled());
  }
  // After the guard, the env/compile-time default is back; in the test
  // environment that default is off.
  EXPECT_FALSE(check::paranoid_enabled());
}

TEST(Contracts, ParanoidLoadRejectsOutOfShapeCoords) {
  const Fragment fragment =
      decode_fragment(testing::corrupt_out_of_shape_coord());
  {
    check::ParanoidGuard off(false);
    EXPECT_NO_THROW(load_format(fragment.org, fragment.index));
  }
  {
    check::ParanoidGuard on(true);
    EXPECT_THROW(load_format(fragment.org, fragment.index), FormatError);
    // Healthy indexes still load in paranoid mode.
    const Fragment good =
        decode_fragment(testing::valid_fragment_bytes(OrgKind::kCoo));
    EXPECT_NO_THROW(load_format(good.org, good.index));
  }
}

TEST(IssuesCollector, CollectsSummarizesAndRaises) {
  check::Issues issues;
  EXPECT_TRUE(issues.ok());
  EXPECT_NO_THROW(issues.raise_if_failed("clean"));
  issues.add("a.rule", "first detail");
  issues.add("b.rule", "second detail");
  EXPECT_FALSE(issues.ok());
  EXPECT_EQ(issues.size(), 2u);
  const std::string summary = issues.summary();
  EXPECT_NE(summary.find("a.rule: first detail"), std::string::npos);
  EXPECT_NE(summary.find("b.rule"), std::string::npos);
  try {
    issues.raise_if_failed("ctx");
    FAIL() << "raise_if_failed did not throw";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("a.rule"), std::string::npos);
  }
}

TEST(DeepValidators, HealthyIndexesPassForEveryOrganization) {
  for (OrgKind org : all_org_kinds()) {
    auto built = make_format(org);
    built->build(testing::fig1_coords(), testing::fig1_shape());
    check::Issues issues;
    built->check_invariants(issues);
    EXPECT_TRUE(issues.ok()) << to_string(org) << ": " << issues.summary();
    EXPECT_NO_THROW(built->validate());

    // A default-constructed (empty) format is also a valid object.
    auto fresh = make_format(org);
    check::Issues empty_issues;
    fresh->check_invariants(empty_issues);
    EXPECT_TRUE(empty_issues.ok())
        << to_string(org) << " (empty): " << empty_issues.summary();
  }
}

TEST(DeepValidators, DepthNamesRoundTrip) {
  for (check::Depth depth : {check::Depth::kHeader, check::Depth::kStructure,
                             check::Depth::kFull}) {
    EXPECT_EQ(check::depth_from_string(check::to_string(depth)), depth);
  }
  EXPECT_THROW(check::depth_from_string("paranoid"), FormatError);
}

TEST(RTreeCheck, BulkLoadedTreePassesSelfCheck) {
  std::vector<Box> boxes;
  for (index_t i = 0; i < 100; ++i) {
    boxes.push_back(Box({i * 2, i * 3}, {i * 2 + 5, i * 3 + 4}));
  }
  const RTree tree = RTree::bulk_load(boxes, /*fanout=*/4);
  check::Issues issues;
  tree.check_invariants(issues);
  EXPECT_TRUE(issues.ok()) << issues.summary();

  const RTree empty;
  check::Issues empty_issues;
  empty.check_invariants(empty_issues);
  EXPECT_TRUE(empty_issues.ok()) << empty_issues.summary();
}

class FsckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::fresh_temp_dir("fsck");
    FragmentStore store(dir_, testing::fig1_shape());
    store.write(testing::fig1_coords(), testing::fig1_values(),
                OrgKind::kGcsr);
    store.write(testing::fig1_coords(), testing::fig1_values(),
                OrgKind::kCsf);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path first_fragment() const {
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() == ".asf") return entry.path();
    }
    ADD_FAILURE() << "store has no fragment files";
    return {};
  }

  fs::path dir_;
};

TEST_F(FsckTest, CleanStorePassesAtEveryDepth) {
  for (check::Depth depth : {check::Depth::kHeader, check::Depth::kStructure,
                             check::Depth::kFull}) {
    const check::StoreReport report = check::check_store(dir_, depth);
    EXPECT_EQ(report.checked(), 2u);
    EXPECT_EQ(report.failed(), 0u);
    EXPECT_TRUE(report.ok()) << check::to_string(depth);
  }
}

TEST_F(FsckTest, CorruptFragmentIsReportedNotThrown) {
  write_file(first_fragment(), testing::corrupt_checksum());
  const check::StoreReport report =
      check::check_store(dir_, check::Depth::kHeader);
  EXPECT_EQ(report.checked(), 2u);
  EXPECT_EQ(report.failed(), 1u);
  EXPECT_FALSE(report.ok());

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"fragment.checksum\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"checked\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"failed\": 1"), std::string::npos) << json;
}

TEST_F(FsckTest, UnreadableFileBecomesAnIoIssue) {
  const check::FragmentReport report = check::check_fragment_file(
      dir_ / "zz_missing.asf", check::Depth::kHeader);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues.items()[0].rule, "fragment.io");
}

TEST_F(FsckTest, NonFragmentDirectoryEntriesAreSkipped) {
  fs::create_directory(dir_ / "subdir.asf");
  std::ofstream(dir_ / "notes.txt") << "not a fragment";
  const check::StoreReport report =
      check::check_store(dir_, check::Depth::kStructure);
  EXPECT_EQ(report.checked(), 2u);
  EXPECT_TRUE(report.ok());
}

TEST_F(FsckTest, MissingDirectoryThrowsIoError) {
  EXPECT_THROW(check::check_store(dir_ / "no_such_subdir",
                                  check::Depth::kHeader),
               IoError);
}

}  // namespace
}  // namespace artsparse
