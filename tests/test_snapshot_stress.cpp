// Snapshot isolation under concurrency: readers race writes,
// consolidation, and repair rescans with NO external locking — the PR 6
// store contract. These tests are the ones CI runs under TSan at
// ARTSPARSE_THREADS=1 and =8; they assert logical stability (a reader
// always sees some published generation, a pinned snapshot sees exactly
// its own) while the sanitizer asserts the absence of data races.
#include <atomic>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/fragment_store.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

using testing::fresh_temp_dir;

CoordBuffer block_coords(index_t lo, index_t hi) {
  CoordBuffer coords(2);
  for (index_t r = lo; r < hi; ++r) {
    for (index_t c = lo; c < hi; ++c) {
      coords.append({r, c});
    }
  }
  return coords;
}

std::vector<value_t> block_values(std::size_t count, double scale) {
  std::vector<value_t> values(count);
  for (std::size_t i = 0; i < count; ++i) {
    values[i] = scale + static_cast<double>(i);
  }
  return values;
}

class SnapshotStressTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = fresh_temp_dir("snapstress"); }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(SnapshotStressTest, ReadersRaceConsolidate) {
  FragmentStore store(dir_, Shape{48, 48});
  // Disjoint blocks: every generation (pre- or post-consolidation) holds
  // the same logical point set, so every read must return it exactly.
  for (index_t lo = 0; lo < 48; lo += 12) {
    const CoordBuffer coords = block_coords(lo, lo + 12);
    store.write(coords, block_values(coords.size(), lo), OrgKind::kGcsr);
  }
  const Box whole = Box::whole(store.tensor_shape());
  const ReadResult expected = store.scan_region(whole);
  ASSERT_EQ(expected.values.size(), 4u * 12u * 12u);

  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const ReadResult result = store.scan_region(whole);
        if (result.coords != expected.coords ||
            result.values != expected.values) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int round = 0; round < 5; ++round) {
    store.consolidate(round % 2 == 0 ? OrgKind::kSortedCoo
                                     : OrgKind::kGcsr);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(store.fragment_count(), 1u);
}

TEST_F(SnapshotStressTest, PinnedSnapshotStableAcrossConsolidate) {
  FragmentStore store(dir_, Shape{32, 32});
  const CoordBuffer first = block_coords(0, 16);
  const CoordBuffer second = block_coords(16, 32);
  const WriteResult w1 =
      store.write(first, block_values(first.size(), 1.0), OrgKind::kCoo);
  const WriteResult w2 = store.write(
      second, block_values(second.size(), 1000.0), OrgKind::kGcsr);

  const Box whole = Box::whole(store.tensor_shape());
  {
    const Snapshot pinned = store.snapshot();
    const ReadResult before = pinned.scan_region(whole);
    ASSERT_EQ(pinned.fragment_count(), 2u);

    store.consolidate(OrgKind::kSortedCoo);
    EXPECT_EQ(store.fragment_count(), 1u);

    // The pinned snapshot keeps returning the pre-consolidation result,
    // resolved from the pre-consolidation files, which deferred deletion
    // keeps on disk for exactly as long as the pin lives.
    EXPECT_TRUE(std::filesystem::exists(w1.path));
    EXPECT_TRUE(std::filesystem::exists(w2.path));
    const ReadResult after = pinned.scan_region(whole);
    EXPECT_EQ(after.coords, before.coords);
    EXPECT_EQ(after.values, before.values);
    EXPECT_EQ(pinned.fragment_count(), 2u);
  }
  // Pin released: the consolidated-away files finally unlink.
  EXPECT_FALSE(std::filesystem::exists(w1.path));
  EXPECT_FALSE(std::filesystem::exists(w2.path));
  EXPECT_EQ(store.scan_region(whole).values.size(),
            first.size() + second.size());
}

TEST_F(SnapshotStressTest, ReadersRaceWrites) {
  FragmentStore store(dir_, Shape{64, 64});
  // Readers observe a monotonically growing store; every scan must land
  // exactly on one of the published prefix states (128 points per write).
  constexpr std::size_t kWrites = 8;
  constexpr std::size_t kPointsPerWrite = 8 * 8;
  std::set<std::size_t> valid_sizes;
  for (std::size_t i = 0; i <= kWrites; ++i) {
    valid_sizes.insert(i * kPointsPerWrite);
  }

  std::atomic<bool> done{false};
  std::atomic<int> invalid{0};
  const Box whole = Box::whole(store.tensor_shape());
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        const std::size_t points = store.scan_region(whole).values.size();
        if (valid_sizes.count(points) == 0) {
          invalid.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::size_t i = 0; i < kWrites; ++i) {
    const index_t lo = static_cast<index_t>(i * 8);
    const CoordBuffer coords = block_coords(lo, lo + 8);
    store.write(coords, block_values(coords.size(), i * 10.0),
                OrgKind::kCoo);
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(invalid.load(), 0);
  EXPECT_EQ(store.scan_region(whole).values.size(),
            kWrites * kPointsPerWrite);
}

TEST_F(SnapshotStressTest, ReadsRaceRepairRescan) {
  FragmentStore store(dir_, Shape{40, 40});
  for (index_t lo = 0; lo < 40; lo += 10) {
    const CoordBuffer coords = block_coords(lo, lo + 10);
    store.write(coords, block_values(coords.size(), lo), OrgKind::kGcsr);
  }
  const Box whole = Box::whole(store.tensor_shape());
  const ReadResult expected = store.scan_region(whole);

  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const ReadResult result = store.scan_region(whole);
        if (result.coords != expected.coords ||
            result.values != expected.values) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Repair-style rescans under live reads: the directory is healthy, so
  // every rescan republishes the same fragment set as a new generation.
  for (int round = 0; round < 10; ++round) {
    store.rescan();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(store.fragment_count(), 4u);
}

TEST_F(SnapshotStressTest, QuarantinedFragmentNeverSurfacesMidBatch) {
  FragmentStore store(dir_, Shape{48, 48});
  store.set_read_fault_policy(ReadFaultPolicy::kSkip);
  CoordBuffer keep_a = block_coords(0, 16);
  CoordBuffer victim = block_coords(16, 32);
  CoordBuffer keep_b = block_coords(32, 48);
  store.write(keep_a, block_values(keep_a.size(), 1.0), OrgKind::kGcsr);
  const WriteResult corrupt_me =
      store.write(victim, block_values(victim.size(), 2.0), OrgKind::kCoo);
  store.write(keep_b, block_values(keep_b.size(), 3.0), OrgKind::kGcsr);

  // Tear the victim in half, then rescan: the check gate quarantines it
  // and the published generation excludes it.
  std::filesystem::resize_file(corrupt_me.path, corrupt_me.file_bytes / 2);
  store.rescan();
  ASSERT_EQ(store.fragment_count(), 2u);
  ASSERT_EQ(store.last_scan().quarantined.size(), 1u);

  // Batched reads across the whole tensor, raced against further rescans:
  // no batch may ever contain a point from the quarantined fragment, and
  // none of the surviving fragments may be skipped.
  const std::vector<Box> regions = {
      Box({0, 0}, {23, 23}),
      Box({8, 8}, {39, 39}),
      Box({24, 24}, {47, 47}),
  };
  std::atomic<bool> stop{false};
  std::atomic<int> leaked{0};
  std::atomic<int> skipped{0};
  std::vector<std::thread> batchers;
  for (int t = 0; t < 3; ++t) {
    batchers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<ReadResult> results =
            store.snapshot().scan_batch(regions);
        for (const ReadResult& result : results) {
          if (!result.skipped.empty()) {
            skipped.fetch_add(1, std::memory_order_relaxed);
          }
          for (std::size_t i = 0; i < result.coords.size(); ++i) {
            const auto point = result.coords.point(i);
            if (point[0] >= 16 && point[0] < 32) {
              leaked.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  for (int round = 0; round < 5; ++round) {
    store.rescan();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& batcher : batchers) batcher.join();

  EXPECT_EQ(leaked.load(), 0);
  EXPECT_EQ(skipped.load(), 0);
}

}  // namespace
}  // namespace artsparse
