// The multi-tenant service core: admission control, per-tenant
// attribution, batched reads, and the snapshot/generation surface the
// service builds on.
#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/deadline.hpp"
#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/timer.hpp"
#include "obs/metrics.hpp"
#include "patterns/calibrate.hpp"
#include "patterns/dataset.hpp"
#include "service/service.hpp"
#include "storage/fault.hpp"
#include "storage/fragment_store.hpp"
#include "storage/throttle.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

using testing::fresh_temp_dir;

CoordBuffer grid_coords(index_t lo, index_t hi) {
  CoordBuffer coords(2);
  for (index_t r = lo; r < hi; ++r) {
    for (index_t c = lo; c < hi; ++c) {
      coords.append({r, c});
    }
  }
  return coords;
}

std::vector<value_t> values_for(const CoordBuffer& coords, double scale) {
  std::vector<value_t> values;
  values.reserve(coords.size());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    values.push_back(scale * static_cast<double>(i + 1));
  }
  return values;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fresh_temp_dir("service");
    store_ = std::make_unique<FragmentStore>(dir_, Shape{64, 64});
  }
  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::unique_ptr<FragmentStore> store_;
};

TEST(TokenBucketTest, DisabledBucketAlwaysAdmits) {
  TokenBucket bucket(0.0);
  EXPECT_FALSE(bucket.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(bucket.try_acquire(1e9));
  }
}

TEST(TokenBucketTest, BurstThenRejects) {
  // Rate 1/s with a burst of 3: three immediate acquires pass, the fourth
  // fails (the test finishes long before a refill token accrues).
  TokenBucket bucket(1.0, 3.0);
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_FALSE(bucket.try_acquire());
}

TEST(TokenBucketTest, ForceDebitCreatesDebt) {
  TokenBucket bucket(1.0, 5.0);
  bucket.force_debit(100.0);
  EXPECT_LT(bucket.available(), 0.0);
  // In debt, even a zero-token acquire fails until the refill catches up.
  EXPECT_FALSE(bucket.try_acquire(0.0));
}

TEST_F(ServiceTest, OpsQuotaRejectsWithTypedError) {
  Service service(*store_);
  service.admission().set_quota(
      "t1", TenantQuota{/*ops_per_sec=*/2.0, 0.0, 0});
  Session session = service.session("t1");
  const Box region({0, 0}, {8, 8});
  session.scan(region);
  session.scan(region);
  try {
    session.scan(region);
    FAIL() << "third op within the burst should be rejected";
  } catch (const OverloadedError& e) {
    EXPECT_EQ(e.tenant(), "t1");
    EXPECT_EQ(e.quota(), "ops");
  }
  const TenantAdmissionStats stats = service.admission().stats("t1");
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected_ops, 1u);
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST_F(ServiceTest, ConcurrencyQuotaIsSlotBased) {
  AdmissionController admission;
  admission.set_quota("t", TenantQuota{0.0, 0.0, /*max_concurrent=*/1});
  Ticket held = admission.admit("t");
  EXPECT_TRUE(held.admitted());
  try {
    admission.admit("t");
    FAIL() << "second concurrent request should be rejected";
  } catch (const OverloadedError& e) {
    EXPECT_EQ(e.quota(), "concurrency");
  }
  held.release();
  EXPECT_TRUE(admission.admit("t").admitted());
  EXPECT_EQ(admission.stats("t").rejected_concurrency, 1u);
}

TEST_F(ServiceTest, WriteBytesQuotaChargedUpFront) {
  Service service(*store_);
  // ~1 KB/s: the first small write fits the burst, a second immediately
  // after does not.
  service.admission().set_quota(
      "w", TenantQuota{0.0, /*bytes_per_sec=*/1024.0, 0});
  Session session = service.session("w");
  const CoordBuffer coords = grid_coords(0, 5);  // 25 points = 600 bytes
  const std::vector<value_t> values = values_for(coords, 1.0);
  session.write(coords, values, OrgKind::kCoo);
  try {
    session.write(coords, values, OrgKind::kCoo);
    FAIL() << "second write should exhaust the byte quota";
  } catch (const OverloadedError& e) {
    EXPECT_EQ(e.quota(), "bytes");
  }
  EXPECT_EQ(store_->fragment_count(), 1u);  // rejected write ran nothing
}

TEST_F(ServiceTest, ReadBytesArePostPaid) {
  Service service(*store_);
  Session seed = service.session("seeder");
  const CoordBuffer coords = grid_coords(0, 16);
  seed.write(coords, values_for(coords, 1.0), OrgKind::kGcsr);

  service.admission().set_quota(
      "r", TenantQuota{0.0, /*bytes_per_sec=*/64.0, 0});
  Session session = service.session("r");
  // Admitted optimistically (nothing debited up front for reads), but the
  // result's bytes land as debt...
  session.scan(Box({0, 0}, {16, 16}));
  // ...so the next request bounces on the bytes axis.
  try {
    session.scan(Box({0, 0}, {16, 16}));
    FAIL() << "post-paid debt should reject the follow-up";
  } catch (const OverloadedError& e) {
    EXPECT_EQ(e.quota(), "bytes");
  }
}

TEST_F(ServiceTest, PerTenantMetricsAndSpansCarryTenant) {
  Service service(*store_);
  Session session = service.session("acme");
  const CoordBuffer coords = grid_coords(0, 4);
  session.write(coords, values_for(coords, 2.0), OrgKind::kCoo);
  session.scan(Box({0, 0}, {4, 4}));

  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  EXPECT_GE(snapshot.value("artsparse_tenant_ops_total",
                           {{"tenant", "acme"}}),
            2.0);
  EXPECT_GT(snapshot.value("artsparse_tenant_write_bytes_total",
                           {{"tenant", "acme"}}),
            0.0);
  EXPECT_GE(snapshot.value("artsparse_service_admitted_total",
                           {{"tenant", "acme"}}),
            2.0);
}

TEST_F(ServiceTest, ScanBatchByteIdenticalToSequential) {
  // Budget-0 cache: every resolution loads from disk, so the miss count
  // below is exactly the number of fragment decodes performed.
  auto cache = std::make_shared<FragmentCache>(0);
  FragmentStore store(fresh_temp_dir("batch"), Shape{64, 64},
                      DeviceModel::unthrottled(), CodecKind::kIdentity,
                      cache);
  const CoordBuffer a = grid_coords(0, 24);
  const CoordBuffer b = grid_coords(20, 48);
  const CoordBuffer c = grid_coords(40, 64);
  store.write(a, values_for(a, 1.0), OrgKind::kGcsr);
  store.write(b, values_for(b, 2.0), OrgKind::kCoo);
  store.write(c, values_for(c, 3.0), OrgKind::kSortedCoo);

  // Overlapping regions: every region touches at least two fragments.
  const std::vector<Box> regions = {
      Box({0, 0}, {30, 30}),
      Box({10, 10}, {50, 50}),
      Box({22, 22}, {63, 63}),
  };
  const std::vector<ReadResult> sequential = {
      store.scan_region(regions[0]),
      store.scan_region(regions[1]),
      store.scan_region(regions[2]),
  };

  cache->reset_stats();
  const std::vector<ReadResult> batched =
      store.snapshot().scan_batch(regions);

  ASSERT_EQ(batched.size(), sequential.size());
  std::size_t touches = 0;
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].coords, sequential[i].coords) << "region " << i;
    EXPECT_EQ(batched[i].values, sequential[i].values) << "region " << i;
    EXPECT_EQ(batched[i].fragments_visited,
              sequential[i].fragments_visited);
    touches += batched[i].fragments_visited;
  }
  // The batch touched 3 fragments across 7 (region, fragment) pairs but —
  // the point of batching — decoded each exactly once.
  EXPECT_GT(touches, store.fragment_count());
  EXPECT_EQ(cache->stats().misses, store.fragment_count());
  std::filesystem::remove_all(store.directory());
}

TEST_F(ServiceTest, ScanBatchPinsBytesForTheDuration) {
  const CoordBuffer coords = grid_coords(0, 16);
  store_->write(coords, values_for(coords, 1.0), OrgKind::kGcsr);
  EXPECT_EQ(store_->cache().stats().pinned_bytes, 0u);
  store_->snapshot().scan_batch(
      std::vector<Box>{Box({0, 0}, {16, 16}), Box({4, 4}, {12, 12})});
  // Pins are released when the batch returns; the gauge must balance.
  EXPECT_EQ(store_->cache().stats().pinned_bytes, 0u);
}

TEST_F(ServiceTest, BatchedReaderServesConcurrentScansCorrectly) {
  const CoordBuffer coords = grid_coords(0, 32);
  store_->write(coords, values_for(coords, 1.0), OrgKind::kGcsr);
  Service service(*store_);
  const Box region({0, 0}, {32, 32});
  const ReadResult expected = store_->scan_region(region);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session session = service.session("tenant" + std::to_string(t % 2));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const ReadResult result = session.scan(region);
        if (result.coords != expected.coords ||
            result.values != expected.values) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0);

  const BatchStats stats = service.batch_stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.batches, stats.requests);
}

TEST_F(ServiceTest, SnapshotPinsGenerationAcrossWrites) {
  const CoordBuffer first = grid_coords(0, 8);
  store_->write(first, values_for(first, 1.0), OrgKind::kCoo);
  const Snapshot snapshot = store_->snapshot();
  const std::uint64_t pinned_generation = snapshot.generation();
  const ReadResult before = snapshot.scan_region(Box({0, 0}, {63, 63}));

  const CoordBuffer second = grid_coords(8, 16);
  store_->write(second, values_for(second, 2.0), OrgKind::kCoo);
  EXPECT_GT(store_->generation(), pinned_generation);

  // The pinned snapshot still answers from its generation...
  const ReadResult after = snapshot.scan_region(Box({0, 0}, {63, 63}));
  EXPECT_EQ(after.coords, before.coords);
  EXPECT_EQ(after.values, before.values);
  // ...while a fresh one sees both writes.
  EXPECT_GT(store_->scan_region(Box({0, 0}, {63, 63})).values.size(),
            before.values.size());
}

TEST_F(ServiceTest, DeferredDeletionKeepsPinnedFilesAlive) {
  const CoordBuffer coords = grid_coords(0, 8);
  const WriteResult written =
      store_->write(coords, values_for(coords, 1.0), OrgKind::kCoo);
  {
    const Snapshot snapshot = store_->snapshot();
    store_->clear();
    EXPECT_EQ(store_->fragment_count(), 0u);
    // The cleared fragment's file survives as long as the snapshot pins
    // it, and reads through the snapshot still resolve it.
    EXPECT_TRUE(std::filesystem::exists(written.path));
    EXPECT_EQ(snapshot.scan_region(Box({0, 0}, {8, 8})).values.size(),
              coords.size());
  }
  // Last reference released: the doomed file unlinks.
  EXPECT_FALSE(std::filesystem::exists(written.path));
}

TEST_F(ServiceTest, FragmentIdsAreNeverRecycled) {
  const CoordBuffer coords = grid_coords(0, 4);
  const WriteResult first =
      store_->write(coords, values_for(coords, 1.0), OrgKind::kCoo);
  store_->clear();
  const WriteResult second =
      store_->write(coords, values_for(coords, 2.0), OrgKind::kCoo);
  EXPECT_NE(first.path, second.path);
}

TEST_F(ServiceTest, GenerationGaugeTracksStore) {
  const std::uint64_t generation = store_->generation();
  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  EXPECT_EQ(snapshot.value("artsparse_store_generation",
                           {{"store", dir_.string()}}),
            static_cast<double>(generation));
}

// --- deadlines and cancellation at the session boundary -----------------

TEST_F(ServiceTest, SessionDeadlineBoundsScanAgainstSlowDevice) {
  FaultInjector::instance().reset();
  const CoordBuffer coords = grid_coords(0, 8);
  store_->write(coords, values_for(coords, 1.0), OrgKind::kCoo);
  Service service(*store_, TenantQuota{});
  const Box region({0, 0}, {31, 31});

  // Every read syscall stalls 50 ms; the session budget is 5 ms. The op
  // must end in bounded time with the typed error, not wait out stalls.
  for (std::size_t nth = 1; nth <= 8; ++nth) {
    FaultInjector::instance().arm_delay(FaultOp::kOpenRead, nth, 50);
    FaultInjector::instance().arm_delay(FaultOp::kRead, nth, 50);
  }
  Session budgeted = service.session("t").with_deadline_ms(5);
  EXPECT_EQ(budgeted.deadline_ms(), 5u);
  WallTimer timer;
  EXPECT_THROW(budgeted.scan(region), DeadlineExceededError);
  EXPECT_LT(timer.seconds(), 2.0);
  FaultInjector::instance().reset();

  // The same scan without a budget (and without stalls) just works —
  // with_deadline_ms returned a copy, the base session is untouched.
  Session unbudgeted = service.session("t");
  EXPECT_EQ(unbudgeted.deadline_ms(), 0u);
  EXPECT_EQ(unbudgeted.scan(region).values.size(), coords.size());
}

TEST_F(ServiceTest, SessionDefaultDeadlineComesFromTheQuota) {
  TenantQuota quota;
  quota.deadline_ms = 1234;
  Service service(*store_, quota);
  EXPECT_EQ(service.session("t").deadline_ms(), 1234u);
  EXPECT_EQ(service.session("t").with_deadline_ms(0).deadline_ms(), 0u);
}

TEST_F(ServiceTest, SessionCancelStopsItsOpsButNotOtherSessions) {
  const CoordBuffer coords = grid_coords(0, 4);
  store_->write(coords, values_for(coords, 1.0), OrgKind::kCoo);
  Service service(*store_, TenantQuota{});
  const Box region({0, 0}, {16, 16});

  Session doomed = service.session("t");
  Session copy = doomed.with_deadline_ms(500);  // shares the token
  Session other = service.session("t");

  doomed.cancel();
  EXPECT_TRUE(doomed.cancel_token().cancelled());
  EXPECT_THROW(doomed.scan(region), CancelledError);
  EXPECT_THROW(copy.scan(region), CancelledError);
  EXPECT_EQ(other.scan(region).values.size(), coords.size())
      << "cancelling one session must not touch its siblings";

  // cancel_all fans out through the service root token.
  service.cancel_all();
  EXPECT_THROW(other.scan(region), CancelledError);

  // Accounting still balances: cancelled ops were admitted, then failed.
  EXPECT_EQ(service.admission().stats("t").in_flight, 0u);
}

TEST_F(ServiceTest, AdmissionWaitsUnderDeadlineUntilSlotFrees) {
  AdmissionController admission;
  admission.set_quota("t", TenantQuota{0.0, 0.0, /*max_concurrent=*/1});
  Ticket held = admission.admit("t");

  // No ambient deadline: the legacy immediate shed.
  EXPECT_THROW(admission.admit("t"), OverloadedError);

  // Bounded deadline: the admit queues and wins once the slot frees.
  std::atomic<bool> waited_ok{false};
  parallel_for_each(
      2,
      [&](std::size_t which) {
        if (which == 0) {
          const ScopedOpContext scope(
              OpContext{Deadline::after_ms(5000), CancelToken()});
          const Ticket waited = admission.admit("t");
          waited_ok.store(waited.admitted(), std::memory_order_relaxed);
        } else {
          interruptible_sleep(0.020, OpContext{});
          held.release();
        }
      },
      /*threads=*/2, /*grain=*/1);
  EXPECT_TRUE(waited_ok.load());
  EXPECT_EQ(admission.stats("t").in_flight, 0u);
}

TEST_F(ServiceTest, AdmissionWaitExpiresIntoTheSameTypedRejection) {
  AdmissionController admission;
  admission.set_quota("t", TenantQuota{0.0, 0.0, /*max_concurrent=*/1});
  const Ticket held = admission.admit("t");
  const ScopedOpContext scope(
      OpContext{Deadline::after_ms(40), CancelToken()});
  WallTimer timer;
  try {
    admission.admit("t");
    FAIL() << "expected OverloadedError after the budget ran out";
  } catch (const OverloadedError& e) {
    EXPECT_EQ(e.tenant(), "t");
    EXPECT_EQ(e.quota(), "concurrency");
  }
  EXPECT_GE(timer.seconds(), 0.030) << "the admit must use its budget";
  EXPECT_LT(timer.seconds(), 2.0) << "and stop once the budget is gone";
  EXPECT_EQ(admission.stats("t").rejected_concurrency, 1u);
}

}  // namespace
}  // namespace artsparse
