#include "patterns/pattern.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/error.hpp"
#include "core/linearize.hpp"
#include "patterns/dataset.hpp"

namespace artsparse {
namespace {

std::set<index_t> address_set(const CoordBuffer& coords,
                              const Shape& shape) {
  std::set<index_t> addresses;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    addresses.insert(linearize(coords.point(i), shape));
  }
  return addresses;
}

// ---------- TSP ----------

TEST(Tsp, CellsSatisfyBandCondition) {
  const Shape shape{32, 32};
  const CoordBuffer cells = generate_tsp(shape, TspConfig{4});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto p = cells.point(i);
    const auto [lo, hi] = std::minmax_element(p.begin(), p.end());
    EXPECT_LE(*hi - *lo, 4u);
  }
}

TEST(Tsp, EnumerationIsExhaustive2D) {
  // Brute-force cross-check on a small tensor.
  const Shape shape{16, 16};
  const TspConfig config{3};
  const auto generated = address_set(generate_tsp(shape, config), shape);

  std::set<index_t> expected;
  for (index_t r = 0; r < 16; ++r) {
    for (index_t c = 0; c < 16; ++c) {
      const index_t diff = r > c ? r - c : c - r;
      if (diff <= 3) expected.insert(r * 16 + c);
    }
  }
  EXPECT_EQ(generated, expected);
}

TEST(Tsp, PointsAreDistinct) {
  const Shape shape{20, 20, 20};
  const CoordBuffer cells = generate_tsp(shape, TspConfig{2});
  EXPECT_EQ(address_set(cells, shape).size(), cells.size());
}

TEST(Tsp, ZeroWidthIsMainDiagonal) {
  const Shape shape{8, 8, 8};
  const CoordBuffer cells = generate_tsp(shape, TspConfig{0});
  EXPECT_EQ(cells.size(), 8u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells.at(i, 0), cells.at(i, 1));
    EXPECT_EQ(cells.at(i, 0), cells.at(i, 2));
  }
}

TEST(Tsp, PaperBandLengthNineIs2DWidthNine) {
  // "band length 9" = half-width 4: row 10 holds columns 6..14.
  const Shape shape{32, 32};
  const CoordBuffer cells = generate_tsp(shape, TspConfig{4});
  std::size_t in_row_10 = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells.at(i, 0) == 10) ++in_row_10;
  }
  EXPECT_EQ(in_row_10, 9u);
}

TEST(Tsp, DeterministicAcrossCalls) {
  const Shape shape{24, 24};
  EXPECT_TRUE(generate_tsp(shape, TspConfig{4}) ==
              generate_tsp(shape, TspConfig{4}));
}

TEST(Tsp, NonCubicShapeClamped) {
  const Shape shape{4, 16};
  const CoordBuffer cells = generate_tsp(shape, TspConfig{8});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_LT(cells.at(i, 0), 4u);
    EXPECT_LT(cells.at(i, 1), 16u);
  }
}

// ---------- GSP ----------

TEST(Gsp, DensityTracksProbability) {
  const Shape shape{256, 256};
  const CoordBuffer cells = generate_gsp(shape, GspConfig{0.01}, 9);
  const double density = static_cast<double>(cells.size()) /
                         static_cast<double>(shape.element_count());
  EXPECT_NEAR(density, 0.01, 0.002);
}

TEST(Gsp, SeedReproducibility) {
  const Shape shape{64, 64};
  EXPECT_TRUE(generate_gsp(shape, GspConfig{0.05}, 1) ==
              generate_gsp(shape, GspConfig{0.05}, 1));
  EXPECT_FALSE(generate_gsp(shape, GspConfig{0.05}, 1) ==
               generate_gsp(shape, GspConfig{0.05}, 2));
}

TEST(Gsp, PointsAreDistinctAndInShape) {
  const Shape shape{40, 40, 40};
  const CoordBuffer cells = generate_gsp(shape, GspConfig{0.02}, 5);
  EXPECT_EQ(address_set(cells, shape).size(), cells.size());
}

TEST(Gsp, ZeroProbabilityIsEmpty) {
  EXPECT_TRUE(generate_gsp(Shape{32, 32}, GspConfig{0.0}, 1).empty());
}

TEST(Gsp, FullProbabilityIsDense) {
  const Shape shape{6, 7};
  const CoordBuffer cells = generate_gsp(shape, GspConfig{1.0}, 1);
  EXPECT_EQ(cells.size(), shape.element_count());
}

TEST(Gsp, InvalidProbabilityRejected) {
  EXPECT_THROW(generate_gsp(Shape{8, 8}, GspConfig{1.5}, 1), FormatError);
}

TEST(Gsp, SpreadAcrossTensor) {
  // Random cells should land in every quadrant.
  const Shape shape{128, 128};
  const CoordBuffer cells = generate_gsp(shape, GspConfig{0.02}, 3);
  int quadrants[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int q = (cells.at(i, 0) >= 64 ? 2 : 0) +
                  (cells.at(i, 1) >= 64 ? 1 : 0);
    ++quadrants[q];
  }
  for (int q : quadrants) EXPECT_GT(q, 0);
}

// ---------- MSP ----------

TEST(Msp, RegionIsDenserThanBackground) {
  const Shape shape{96, 96};
  const CoordBuffer cells =
      generate_msp(shape, MspConfig{0.002, 0.5}, 11);
  const Box region = msp_region(shape);
  std::size_t inside = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (region.contains(cells.point(i))) ++inside;
  }
  const double inside_density =
      static_cast<double>(inside) / static_cast<double>(region.cell_count());
  const double outside_density =
      static_cast<double>(cells.size() - inside) /
      static_cast<double>(shape.element_count() - region.cell_count());
  EXPECT_GT(inside_density, 50 * outside_density);
}

TEST(Msp, RegionPlacementMatchesPaper) {
  const Box region = msp_region(Shape{90, 90, 90});
  EXPECT_EQ(region.lo(0), 30u);
  EXPECT_EQ(region.hi(0), 59u);  // origin m/3, size m/3
}

TEST(Msp, FullRegionFillIsFullyDense) {
  const Shape shape{30, 30};
  const CoordBuffer cells = generate_msp(shape, MspConfig{0.0, 1.0}, 1);
  const Box region = msp_region(shape);
  EXPECT_EQ(cells.size(), region.cell_count());
}

TEST(Msp, NoDuplicatesBetweenBackgroundAndRegion) {
  const Shape shape{60, 60};
  const CoordBuffer cells = generate_msp(shape, MspConfig{0.05, 0.8}, 13);
  EXPECT_EQ(address_set(cells, shape).size(), cells.size());
}

TEST(Msp, SeedReproducibility) {
  const Shape shape{48, 48};
  EXPECT_TRUE(generate_msp(shape, MspConfig{}, 21) ==
              generate_msp(shape, MspConfig{}, 21));
}

// ---------- dataset ----------

TEST(Dataset, AddressValuesAreSelfVerifying) {
  const SparseDataset dataset =
      make_dataset(Shape{32, 32}, GspConfig{0.05}, 3);
  for (std::size_t i = 0; i < dataset.coords.size(); ++i) {
    EXPECT_EQ(dataset.values[i],
              expected_value(dataset.coords.point(i), dataset.shape));
  }
}

TEST(Dataset, RandomValuesInUnitInterval) {
  const SparseDataset dataset = make_dataset(
      Shape{32, 32}, GspConfig{0.05}, 3, ValueKind::kRandom);
  for (value_t v : dataset.values) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Dataset, DensityReported) {
  const SparseDataset dataset =
      make_dataset(Shape{100, 100}, GspConfig{0.03}, 5);
  EXPECT_NEAR(dataset.density(), 0.03, 0.01);
  EXPECT_EQ(dataset.pattern, PatternKind::kGsp);
}

TEST(Dataset, PatternKindFromSpec) {
  EXPECT_EQ(pattern_kind(TspConfig{}), PatternKind::kTsp);
  EXPECT_EQ(pattern_kind(GspConfig{}), PatternKind::kGsp);
  EXPECT_EQ(pattern_kind(MspConfig{}), PatternKind::kMsp);
}

TEST(PatternNames, ToString) {
  EXPECT_EQ(to_string(PatternKind::kTsp), "TSP");
  EXPECT_EQ(to_string(PatternKind::kGsp), "GSP");
  EXPECT_EQ(to_string(PatternKind::kMsp), "MSP");
}

}  // namespace
}  // namespace artsparse
