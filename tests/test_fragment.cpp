#include "storage/fragment.hpp"

#include <gtest/gtest.h>

#include "formats/registry.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

Fragment sample_fragment(CodecKind codec = CodecKind::kIdentity) {
  auto format = make_format(OrgKind::kGcsr);
  const CoordBuffer coords = testing::fig1_coords();
  format->build(coords, testing::fig1_shape());

  Fragment fragment;
  fragment.org = OrgKind::kGcsr;
  fragment.codec = codec;
  fragment.shape = testing::fig1_shape();
  fragment.bbox = Box::bounding(coords);
  fragment.point_count = coords.size();
  fragment.index = serialize_format(*format);
  fragment.values = testing::fig1_values();
  return fragment;
}

TEST(Fragment, EncodeDecodeRoundTrip) {
  const Fragment original = sample_fragment();
  const Bytes encoded = encode_fragment(original);
  const Fragment decoded = decode_fragment(encoded);

  EXPECT_EQ(decoded.org, original.org);
  EXPECT_EQ(decoded.codec, original.codec);
  EXPECT_EQ(decoded.shape, original.shape);
  EXPECT_EQ(decoded.bbox, original.bbox);
  EXPECT_EQ(decoded.point_count, original.point_count);
  EXPECT_EQ(decoded.index, original.index);
  EXPECT_EQ(decoded.values, original.values);
}

TEST(Fragment, DecodedIndexReconstructsFormat) {
  const Bytes encoded = encode_fragment(sample_fragment());
  const Fragment decoded = decode_fragment(encoded);
  auto format = load_format(decoded.org, decoded.index);
  const CoordBuffer coords = testing::fig1_coords();
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_NE(format->lookup(coords.point(i)), kNotFound);
  }
}

TEST(Fragment, RoundTripWithEveryCodec) {
  for (CodecKind codec :
       {CodecKind::kIdentity, CodecKind::kDelta, CodecKind::kVarint,
        CodecKind::kRle, CodecKind::kDeltaVarint}) {
    const Fragment original = sample_fragment(codec);
    const Fragment decoded = decode_fragment(encode_fragment(original));
    EXPECT_EQ(decoded.index, original.index) << to_string(codec);
    EXPECT_EQ(decoded.values, original.values) << to_string(codec);
  }
}

TEST(Fragment, HeaderOnlyDecode) {
  const Bytes encoded = encode_fragment(sample_fragment());
  const FragmentInfo info = decode_fragment_info(encoded);
  EXPECT_EQ(info.org, OrgKind::kGcsr);
  EXPECT_EQ(info.shape, testing::fig1_shape());
  EXPECT_EQ(info.point_count, 5u);
  EXPECT_EQ(info.value_count, 5u);
  EXPECT_EQ(info.bbox, Box({0, 0, 1}, {2, 2, 2}));
}

TEST(Fragment, CorruptionDetectedByChecksum) {
  Bytes encoded = encode_fragment(sample_fragment());
  encoded[encoded.size() / 2] ^= std::byte{0x40};
  EXPECT_THROW(decode_fragment(encoded), FormatError);
}

TEST(Fragment, TruncationRejected) {
  Bytes encoded = encode_fragment(sample_fragment());
  encoded.resize(encoded.size() - 16);
  EXPECT_THROW(decode_fragment(encoded), FormatError);
}

TEST(Fragment, BadMagicRejected) {
  Bytes encoded = encode_fragment(sample_fragment());
  encoded[0] = std::byte{0x00};
  EXPECT_THROW(decode_fragment(encoded), FormatError);
  EXPECT_THROW(decode_fragment_info(encoded), FormatError);
}

TEST(Fragment, EmptyPayloadRejected) {
  EXPECT_THROW(decode_fragment(Bytes{}), FormatError);
}

TEST(Fragment, EmptyBoundingBoxSurvivesRoundTrip) {
  Fragment fragment = sample_fragment();
  fragment.bbox = Box();  // empty fragment written before any points
  fragment.point_count = 0;
  fragment.values.clear();
  const Fragment decoded = decode_fragment(encode_fragment(fragment));
  EXPECT_TRUE(decoded.bbox.empty());
}

TEST(Fragment, CompressedFragmentIsSmallerOnSortedIndex) {
  // LINEAR indexes are sorted-ish addresses: delta+varint should shrink
  // them substantially.
  auto format = make_format(OrgKind::kLinear);
  CoordBuffer coords(2);
  for (index_t i = 0; i < 512; ++i) coords.append({i, i});
  format->build(coords, Shape{512, 512});

  Fragment plain;
  plain.org = OrgKind::kLinear;
  plain.codec = CodecKind::kIdentity;
  plain.shape = Shape{512, 512};
  plain.bbox = Box::bounding(coords);
  plain.point_count = coords.size();
  plain.index = serialize_format(*format);
  plain.values.assign(coords.size(), 1.0);

  Fragment packed = plain;
  packed.codec = CodecKind::kDeltaVarint;
  EXPECT_LT(encode_fragment(packed).size(), encode_fragment(plain).size());
}

}  // namespace
}  // namespace artsparse
