// core/env: the hardened environment-knob parsing contract every
// ARTSPARSE_* integer knob (threads, cache budget, trace capacity, tenant
// quotas) now shares.
#include <cstdlib>

#include <gtest/gtest.h>

#include "core/env.hpp"
#include "service/admission.hpp"

namespace artsparse {
namespace {

TEST(ParseEnvU64, AcceptsPlainDecimal) {
  EXPECT_EQ(parse_env_u64("0"), 0u);
  EXPECT_EQ(parse_env_u64("7"), 7u);
  EXPECT_EQ(parse_env_u64("18446744073709551615"), UINT64_MAX);
}

TEST(ParseEnvU64, RejectsUnsetAndEmpty) {
  EXPECT_EQ(parse_env_u64(nullptr), std::nullopt);
  EXPECT_EQ(parse_env_u64(""), std::nullopt);
  EXPECT_EQ(parse_env_u64("   "), std::nullopt);
}

TEST(ParseEnvU64, RejectsTrailingGarbage) {
  // The contract's motivating case: "64K" must not half-parse into 64.
  EXPECT_EQ(parse_env_u64("64K"), std::nullopt);
  EXPECT_EQ(parse_env_u64("4x"), std::nullopt);
  EXPECT_EQ(parse_env_u64("12 "), std::nullopt);
  EXPECT_EQ(parse_env_u64("1.5"), std::nullopt);
}

TEST(ParseEnvU64, RejectsSigns) {
  // strtoull would happily wrap "-1" to UINT64_MAX; the contract rejects
  // any sign instead.
  EXPECT_EQ(parse_env_u64("-1"), std::nullopt);
  EXPECT_EQ(parse_env_u64("+4"), std::nullopt);
}

TEST(ParseEnvU64, BelowFloorIsMalformed) {
  EXPECT_EQ(parse_env_u64("0", /*floor=*/1), std::nullopt);
  EXPECT_EQ(parse_env_u64("3", /*floor=*/4), std::nullopt);
  EXPECT_EQ(parse_env_u64("4", /*floor=*/4), 4u);
}

TEST(ParseEnvU64, AboveCeilingClampsIncludingOverflow) {
  EXPECT_EQ(parse_env_u64("100", 0, 64), 64u);
  // A value past even uint64 saturates in strtoull (ERANGE) and still
  // clamps to the knob's ceiling rather than wrapping.
  EXPECT_EQ(parse_env_u64("99999999999999999999999999", 0, 1024), 1024u);
}

TEST(EnvU64, ReadsProcessEnvironment) {
  ::setenv("ARTSPARSE_TEST_ENV_U64", "123", 1);
  EXPECT_EQ(env_u64("ARTSPARSE_TEST_ENV_U64"), 123u);
  ::setenv("ARTSPARSE_TEST_ENV_U64", "123junk", 1);
  EXPECT_EQ(env_u64("ARTSPARSE_TEST_ENV_U64"), std::nullopt);
  ::unsetenv("ARTSPARSE_TEST_ENV_U64");
  EXPECT_EQ(env_u64("ARTSPARSE_TEST_ENV_U64"), std::nullopt);
}

TEST(ParseEnvFlag, UnsetIsNullopt) {
  EXPECT_EQ(parse_env_flag(nullptr), std::nullopt);
}

TEST(ParseEnvFlag, FalsySpellings) {
  // One shared falsy set for every ARTSPARSE_* switch: empty, "0",
  // "false", "off", "no", case-insensitively.
  EXPECT_EQ(parse_env_flag(""), false);
  EXPECT_EQ(parse_env_flag("0"), false);
  EXPECT_EQ(parse_env_flag("false"), false);
  EXPECT_EQ(parse_env_flag("FALSE"), false);
  EXPECT_EQ(parse_env_flag("off"), false);
  EXPECT_EQ(parse_env_flag("Off"), false);
  EXPECT_EQ(parse_env_flag("no"), false);
}

TEST(ParseEnvFlag, AnythingElseEnables) {
  EXPECT_EQ(parse_env_flag("1"), true);
  EXPECT_EQ(parse_env_flag("on"), true);
  EXPECT_EQ(parse_env_flag("yes"), true);
  EXPECT_EQ(parse_env_flag("true"), true);
  EXPECT_EQ(parse_env_flag("anything"), true);
}

TEST(EnvString, VerbatimOrNullopt) {
  ::setenv("ARTSPARSE_TEST_ENV_STRING", "write:3:EIO, spaces kept ", 1);
  EXPECT_EQ(env_string("ARTSPARSE_TEST_ENV_STRING"),
            "write:3:EIO, spaces kept ");
  ::unsetenv("ARTSPARSE_TEST_ENV_STRING");
  EXPECT_EQ(env_string("ARTSPARSE_TEST_ENV_STRING"), std::nullopt);
}

class TenantQuotaEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("ARTSPARSE_TENANT_OPS_PER_SEC");
    ::unsetenv("ARTSPARSE_TENANT_BYTES_PER_SEC");
    ::unsetenv("ARTSPARSE_TENANT_MAX_CONCURRENT");
    ::unsetenv("ARTSPARSE_TENANT_DEADLINE_MS");
  }
};

TEST_F(TenantQuotaEnvTest, UnsetMeansUnlimited) {
  TearDown();
  const TenantQuota quota = TenantQuota::from_env();
  EXPECT_TRUE(quota.unlimited());
  EXPECT_EQ(quota.deadline_ms, 0u) << "no knob, no default deadline";
}

TEST_F(TenantQuotaEnvTest, DeadlineKnobParsesAndIsNotAQuotaAxis) {
  ::setenv("ARTSPARSE_TENANT_DEADLINE_MS", "250", 1);
  const TenantQuota quota = TenantQuota::from_env();
  EXPECT_EQ(quota.deadline_ms, 250u);
  EXPECT_TRUE(quota.unlimited())
      << "a deadline bounds op duration, not admission";
}

TEST_F(TenantQuotaEnvTest, DeadlineKnobMalformedIgnoredAndHugeClamps) {
  ::setenv("ARTSPARSE_TENANT_DEADLINE_MS", "50ms", 1);
  EXPECT_EQ(TenantQuota::from_env().deadline_ms, 0u);
  ::setenv("ARTSPARSE_TENANT_DEADLINE_MS", "0", 1);
  EXPECT_EQ(TenantQuota::from_env().deadline_ms, 0u)
      << "zero is below the floor: unbounded, not instantly expired";
  // Absurd budgets clamp to 24 h instead of overflowing.
  ::setenv("ARTSPARSE_TENANT_DEADLINE_MS", "99999999999999999999", 1);
  EXPECT_EQ(TenantQuota::from_env().deadline_ms, 86'400'000u);
}

TEST_F(TenantQuotaEnvTest, KnobsParse) {
  ::setenv("ARTSPARSE_TENANT_OPS_PER_SEC", "100", 1);
  ::setenv("ARTSPARSE_TENANT_BYTES_PER_SEC", "1048576", 1);
  ::setenv("ARTSPARSE_TENANT_MAX_CONCURRENT", "8", 1);
  const TenantQuota quota = TenantQuota::from_env();
  EXPECT_EQ(quota.ops_per_sec, 100.0);
  EXPECT_EQ(quota.bytes_per_sec, 1048576.0);
  EXPECT_EQ(quota.max_concurrent, 8u);
}

TEST_F(TenantQuotaEnvTest, MalformedKnobsIgnoredAndHugeOnesClamp) {
  // Trailing garbage and zero are malformed (floor is 1): the axis stays
  // unlimited instead of half-honoring the setting.
  ::setenv("ARTSPARSE_TENANT_OPS_PER_SEC", "100x", 1);
  ::setenv("ARTSPARSE_TENANT_BYTES_PER_SEC", "0", 1);
  // Absurd concurrency clamps to the 1e6 ceiling instead of overflowing.
  ::setenv("ARTSPARSE_TENANT_MAX_CONCURRENT", "99999999999999999999", 1);
  const TenantQuota quota = TenantQuota::from_env();
  EXPECT_EQ(quota.ops_per_sec, 0.0);
  EXPECT_EQ(quota.bytes_per_sec, 0.0);
  EXPECT_EQ(quota.max_concurrent, 1'000'000u);
}

}  // namespace
}  // namespace artsparse
