#include "storage/rtree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "storage/fragment_store.hpp"
#include "patterns/dataset.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

std::vector<Box> random_boxes(std::size_t count, std::size_t rank,
                              index_t extent, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Box> boxes;
  boxes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<index_t> lo(rank);
    std::vector<index_t> hi(rank);
    for (std::size_t d = 0; d < rank; ++d) {
      lo[d] = rng.next_below(extent);
      hi[d] = std::min<index_t>(extent - 1, lo[d] + rng.next_below(8));
    }
    boxes.emplace_back(std::move(lo), std::move(hi));
  }
  return boxes;
}

std::vector<std::size_t> brute_force(const std::vector<Box>& boxes,
                                     const Box& query) {
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].overlaps(query)) hits.push_back(i);
  }
  return hits;
}

TEST(RTree, EmptyTree) {
  const RTree tree = RTree::bulk_load({});
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_TRUE(tree.query(Box({0}, {10})).empty());
}

TEST(RTree, SingleBox) {
  const RTree tree = RTree::bulk_load({Box({5, 5}, {9, 9})});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.query(Box({0, 0}, {6, 6})),
            (std::vector<std::size_t>{0}));
  EXPECT_TRUE(tree.query(Box({0, 0}, {4, 4})).empty());
}

TEST(RTree, QueriesMatchBruteForce2D) {
  const auto boxes = random_boxes(500, 2, 256, 11);
  const RTree tree = RTree::bulk_load(boxes);
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const index_t lo0 = rng.next_below(250);
    const index_t lo1 = rng.next_below(250);
    const Box query({lo0, lo1}, {lo0 + rng.next_below(40),
                                 lo1 + rng.next_below(40)});
    EXPECT_EQ(tree.query(query), brute_force(boxes, query));
  }
}

TEST(RTree, QueriesMatchBruteForce4D) {
  const auto boxes = random_boxes(300, 4, 48, 17);
  const RTree tree = RTree::bulk_load(boxes, /*fanout=*/4);
  Xoshiro256 rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<index_t> lo(4);
    std::vector<index_t> hi(4);
    for (std::size_t d = 0; d < 4; ++d) {
      lo[d] = rng.next_below(40);
      hi[d] = lo[d] + rng.next_below(10);
    }
    const Box query(std::move(lo), std::move(hi));
    EXPECT_EQ(tree.query(query), brute_force(boxes, query));
  }
}

TEST(RTree, WholeSpaceQueryReturnsEverything) {
  const auto boxes = random_boxes(200, 3, 64, 23);
  const RTree tree = RTree::bulk_load(boxes);
  EXPECT_EQ(tree.query(Box({0, 0, 0}, {63, 63, 63})).size(), 200u);
}

TEST(RTree, HeightIsLogarithmic) {
  const auto boxes = random_boxes(1000, 2, 1024, 29);
  const RTree tree = RTree::bulk_load(boxes, /*fanout=*/16);
  // 1000 entries, fanout 16: 63 leaves, 4 internal, 1 root -> height 3.
  EXPECT_GE(tree.height(), 2u);
  EXPECT_LE(tree.height(), 4u);
}

TEST(RTree, RejectsBadInput) {
  EXPECT_THROW(RTree::bulk_load({Box({0}, {1})}, /*fanout=*/1), FormatError);
  EXPECT_THROW(RTree::bulk_load({Box({0}, {1}), Box({0, 0}, {1, 1})}),
               FormatError);
  EXPECT_THROW(RTree::bulk_load({Box()}), FormatError);
}

TEST(RTree, DuplicateBoxesAllReturned) {
  const Box same({3, 3}, {5, 5});
  const RTree tree = RTree::bulk_load({same, same, same});
  EXPECT_EQ(tree.query(Box({4, 4}, {4, 4})).size(), 3u);
}

// ---------- store integration: above the R-tree threshold ----------

TEST(RTreeStore, LargeStoreDiscoveryMatchesSmallStore) {
  const auto dir = testing::fresh_temp_dir("rtree_store");
  const Shape shape{256, 256};
  FragmentStore store(dir, shape);
  // 64 single-tile fragments: above kRtreeThreshold, exercising the
  // R-tree discovery path.
  std::size_t total = 0;
  for (index_t r = 0; r < 8; ++r) {
    for (index_t c = 0; c < 8; ++c) {
      CoordBuffer coords(2);
      std::vector<value_t> values;
      for (index_t k = 0; k < 4; ++k) {
        coords.append({r * 32 + k, c * 32 + k});
        values.push_back(
            expected_value(coords.point(coords.size() - 1), shape));
      }
      store.write(coords, values, OrgKind::kLinear);
      total += 4;
    }
  }
  EXPECT_EQ(store.fragment_count(), 64u);

  // Whole-space scan sees everything...
  const ReadResult all = store.scan_region(Box::whole(shape));
  EXPECT_EQ(all.values.size(), total);
  // ...and a one-tile region opens exactly one fragment.
  const ReadResult one = store.scan_region(Box({0, 0}, {8, 8}));
  EXPECT_EQ(one.fragments_visited, 1u);
  EXPECT_EQ(one.values.size(), 4u);
  for (std::size_t i = 0; i < one.values.size(); ++i) {
    EXPECT_EQ(one.values[i], expected_value(one.coords.point(i), shape));
  }
  std::filesystem::remove_all(dir);
}

TEST(RTreeStore, IndexRefreshesAfterNewWrites) {
  const auto dir = testing::fresh_temp_dir("rtree_refresh");
  const Shape shape{256, 256};
  FragmentStore store(dir, shape);
  for (index_t i = 0; i < 40; ++i) {
    CoordBuffer coords(2);
    coords.append({i, i});
    const std::vector<value_t> values{
        expected_value(coords.point(0), shape)};
    store.write(coords, values, OrgKind::kCoo);
  }
  // Query (builds the R-tree), then append and query again: the new
  // fragment must be discoverable.
  EXPECT_EQ(store.scan_region(Box({0, 0}, {39, 39})).values.size(), 40u);
  CoordBuffer late(2);
  late.append({200, 200});
  const std::vector<value_t> late_values{
      expected_value(late.point(0), shape)};
  store.write(late, late_values, OrgKind::kCoo);
  const ReadResult hit = store.scan_region(Box({200, 200}, {200, 200}));
  EXPECT_EQ(hit.values.size(), 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace artsparse
