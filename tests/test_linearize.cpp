#include "core/linearize.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace artsparse {
namespace {

std::vector<index_t> v(std::initializer_list<index_t> init) { return init; }

TEST(Linearize, PaperFig1Addresses) {
  // Fig. 1(a): the five example points of the 3x3x3 tensor and their
  // LINEAR addresses.
  const Shape shape{3, 3, 3};
  EXPECT_EQ(linearize(v({0, 0, 1}), shape), 1u);
  EXPECT_EQ(linearize(v({0, 1, 1}), shape), 4u);
  EXPECT_EQ(linearize(v({0, 1, 2}), shape), 5u);
  EXPECT_EQ(linearize(v({2, 2, 1}), shape), 25u);
  EXPECT_EQ(linearize(v({2, 2, 2}), shape), 26u);
}

TEST(Linearize, RowMajorLastDimFastest) {
  const Shape shape{4, 6};
  EXPECT_EQ(linearize(v({0, 1}), shape), 1u);
  EXPECT_EQ(linearize(v({1, 0}), shape), 6u);
}

TEST(Linearize, ColMajorFirstDimFastest) {
  const Shape shape{4, 6};
  EXPECT_EQ(linearize_col_major(v({1, 0}), shape), 1u);
  EXPECT_EQ(linearize_col_major(v({0, 1}), shape), 4u);
}

TEST(Linearize, DelinearizeRoundTrip) {
  const Shape shape{5, 7, 3};
  std::vector<index_t> point(3);
  for (index_t address = 0; address < shape.element_count(); ++address) {
    delinearize(address, shape, point);
    EXPECT_EQ(linearize(point, shape), address);
  }
}

TEST(Linearize, OutOfShapeRejected) {
  const Shape shape{3, 3};
  EXPECT_THROW(linearize(v({3, 0}), shape), FormatError);
  std::vector<index_t> out(2);
  EXPECT_THROW(delinearize(9, shape, out), FormatError);
}

TEST(Linearize, RankMismatchRejected) {
  const Shape shape{3, 3};
  EXPECT_THROW(linearize(v({1, 1, 1}), shape), FormatError);
}

TEST(Linearize, LinearizeAll) {
  const Shape shape{3, 3, 3};
  CoordBuffer coords(3);
  coords.append({0, 0, 1});
  coords.append({2, 2, 2});
  const auto addresses = linearize_all(coords, shape);
  ASSERT_EQ(addresses.size(), 2u);
  EXPECT_EQ(addresses[0], 1u);
  EXPECT_EQ(addresses[1], 26u);
}

TEST(Linearize, LocalAddressingSubtractsOrigin) {
  // Box [10..12, 20..24]: local shape 3x5.
  const Box box({10, 20}, {12, 24});
  EXPECT_EQ(linearize_local(v({10, 20}), box), 0u);
  EXPECT_EQ(linearize_local(v({10, 21}), box), 1u);
  EXPECT_EQ(linearize_local(v({11, 20}), box), 5u);
  EXPECT_EQ(linearize_local(v({12, 24}), box), 14u);
}

TEST(Linearize, LocalRoundTrip) {
  const Box box({3, 7, 1}, {5, 9, 4});
  std::vector<index_t> point(3);
  for (index_t address = 0; address < box.cell_count(); ++address) {
    delinearize_local(address, box, point);
    EXPECT_EQ(linearize_local(point, box), address);
    EXPECT_TRUE(box.contains(point));
  }
}

TEST(Linearize, LocalOutsideBoxRejected) {
  const Box box({5, 5}, {6, 6});
  EXPECT_THROW(linearize_local(v({4, 5}), box), FormatError);
}

TEST(Linearize, LocalAvoidsGlobalOverflow) {
  // A tensor too large to linearize globally, but whose occupied block is
  // tiny — the paper's block-based overflow remedy.
  const Box box({1ull << 62, 1ull << 62}, {(1ull << 62) + 1, (1ull << 62) + 1});
  EXPECT_EQ(linearize_local(v({(1ull << 62) + 1, (1ull << 62) + 1}), box),
            3u);
}

}  // namespace
}  // namespace artsparse
