// End-to-end test of the observability surface of the CLI: `artsparse_cli
// metrics` must emit Prometheus text and JSON covering the hot-path
// metrics after its write+read selftest, `--trace` must produce a Chrome
// trace with the nested commit spans, and `read/scan --json` must carry a
// telemetry block. The binary path is injected via ARTSPARSE_CLI_PATH.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "obs/metrics.hpp"
#include "storage/file_io.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

namespace fs = std::filesystem;

/// Runs the CLI and captures stdout (stderr discarded). Returns the output
/// or fails the test on a non-zero exit.
std::string run_cli_capture(const std::string& arguments) {
  const std::string command =
      std::string(ARTSPARSE_CLI_PATH) + " " + arguments + " 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << command;
    return "";
  }
  std::string output;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, got);
  }
  const int status = ::pclose(pipe);
  EXPECT_EQ(status, 0) << "non-zero exit from: " << command;
  return output;
}

#if defined(ARTSPARSE_OBS_ENABLED)

TEST(ObsCliMetrics, SelftestCoversEveryHotPathArea) {
  const std::string text = run_cli_capture("metrics --format prometheus");
  // One representative metric per instrumented area, all required to be
  // present and non-zero after the selftest workload (this mirrors the CI
  // smoke gate).
  for (const char* name :
       {"artsparse_cache_hits_total", "artsparse_cache_misses_total",
        "artsparse_store_writes_total", "artsparse_store_io_attempts_total",
        "artsparse_read_fragments_resolved_total",
        "artsparse_tiled_writes_total"}) {
    // Anchor at line start so the `# TYPE name counter` header can't match.
    const std::string line_start = "\n" + std::string(name) + " ";
    const std::size_t pos = text.find(line_start);
    ASSERT_NE(pos, std::string::npos) << name;
    const std::size_t value_at = pos + line_start.size();
    const std::string value =
        text.substr(value_at, text.find('\n', value_at) - value_at);
    EXPECT_GT(std::stod(value), 0.0) << name;
  }
  // Histogram families expand into _bucket/_sum/_count.
  EXPECT_NE(text.find("artsparse_cache_load_ns_bucket{le="),
            std::string::npos);
  EXPECT_NE(text.find("artsparse_format_build_ns_count{org="),
            std::string::npos);
}

TEST(ObsCliMetrics, JsonFormatEmitsMetricsArray) {
  const std::string json = run_cli_capture("metrics --format json");
  EXPECT_EQ(json.find("# TYPE"), std::string::npos);
  EXPECT_NE(json.find("{\"metrics\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"artsparse_store_writes_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
}

TEST(ObsCliMetrics, BothFormatEmitsBoth) {
  const std::string out = run_cli_capture("metrics --format both");
  EXPECT_NE(out.find("# TYPE artsparse_store_writes_total counter"),
            std::string::npos);
  EXPECT_NE(out.find("{\"metrics\": ["), std::string::npos);
}

TEST(ObsCliMetrics, TraceFileHoldsNestedCommitSpans) {
  const fs::path trace =
      testing::fresh_temp_dir("cli_metrics_trace") / "trace.json";
  run_cli_capture("metrics --trace " + trace.string());
  ASSERT_TRUE(fs::exists(trace));
  const Bytes raw = read_file(trace.string());
  const std::string json(reinterpret_cast<const char*>(raw.data()),
                         raw.size());
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  // The commit chain the acceptance criterion names: encode -> fsync ->
  // rename, all present as spans.
  for (const char* name :
       {"tiled.write", "store.write", "write.encode", "store.commit",
        "commit.fsync", "commit.rename"}) {
    EXPECT_NE(json.find("\"name\": \"" + std::string(name) + "\""),
              std::string::npos)
        << name;
  }
  std::error_code ec;
  fs::remove_all(trace.parent_path(), ec);
}

TEST(ObsCliMetrics, MetricsOverExistingStoreReflectsReads) {
  const fs::path dir = testing::fresh_temp_dir("cli_metrics_store");
  run_cli_capture("generate --shape 32,32 --pattern gsp --density 0.05 "
                  "--seed 5 --store " +
                  dir.string() + " --org gcsr");
  const std::string text =
      run_cli_capture("metrics --store " + dir.string());
  // Two scan passes: the first misses, the second hits.
  EXPECT_NE(text.find("artsparse_cache_misses_total 1"), std::string::npos);
  EXPECT_NE(text.find("artsparse_cache_hits_total 1"), std::string::npos);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(ObsCliMetrics, ReadAndScanJsonCarryTelemetry) {
  const fs::path dir = testing::fresh_temp_dir("cli_metrics_json");
  run_cli_capture("generate --shape 32,32 --pattern gsp --density 0.05 "
                  "--seed 5 --store " +
                  dir.string() + " --org gcsr");
  for (const char* verb : {"read", "scan"}) {
    const std::string json = run_cli_capture(std::string(verb) +
                                             " --store " + dir.string() +
                                             " --json");
    EXPECT_EQ(json.find("points from"), std::string::npos) << verb;
    EXPECT_NE(json.find("\"command\": \"" + std::string(verb) + "\""),
              std::string::npos);
    EXPECT_NE(json.find("\"telemetry\": {\"metrics\": ["),
              std::string::npos);
    EXPECT_NE(json.find("\"fragments_visited\": 1"), std::string::npos);
    EXPECT_NE(json.find("artsparse_read_queries_total"), std::string::npos);
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(ObsCliMetrics, RejectsUnknownFormat) {
  const std::string command = std::string(ARTSPARSE_CLI_PATH) +
                              " metrics --format xml > /dev/null 2>&1";
  EXPECT_NE(std::system(command.c_str()), 0);
}

#else

TEST(ObsCliMetrics, DisabledBuildSkips) {
  GTEST_SKIP() << "observability compiled out (ARTSPARSE_OBS=OFF)";
}

#endif  // ARTSPARSE_OBS_ENABLED

}  // namespace
}  // namespace artsparse
