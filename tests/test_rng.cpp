#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace artsparse {
namespace {

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, SplitMixSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministic) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowZeroBound) {
  Xoshiro256 rng(3);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.next_below(8));
  }
  EXPECT_EQ(seen.size(), 8u);  // all residues hit
}

TEST(Rng, NextBelowRoughlyUniform) {
  Xoshiro256 rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.next_below(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

}  // namespace
}  // namespace artsparse
