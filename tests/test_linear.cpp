#include "formats/linear.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace artsparse {
namespace {

using testing::fig1_coords;
using testing::fig1_shape;

TEST(Linear, StoresPaperFig1Addresses) {
  LinearFormat linear;
  linear.build(fig1_coords(), fig1_shape());
  const std::vector<index_t> expected{1, 4, 5, 25, 26};
  EXPECT_EQ(std::vector<index_t>(linear.addresses().begin(),
                                 linear.addresses().end()),
            expected);
}

TEST(Linear, BuildReturnsIdentityMap) {
  LinearFormat linear;
  const auto map = linear.build(fig1_coords(), fig1_shape());
  EXPECT_EQ(map, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Linear, LookupFindsEveryStoredPoint) {
  LinearFormat linear;
  const CoordBuffer coords = fig1_coords();
  linear.build(coords, fig1_shape());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(linear.lookup(coords.point(i)), i);
  }
}

TEST(Linear, LookupMissesAbsentAndOutOfShape) {
  LinearFormat linear;
  linear.build(fig1_coords(), fig1_shape());
  const std::vector<index_t> absent{1, 1, 1};
  const std::vector<index_t> outside{5, 5, 5};
  EXPECT_EQ(linear.lookup(absent), kNotFound);
  EXPECT_EQ(linear.lookup(outside), kNotFound);
}

TEST(Linear, IndexIsOneWordPerPoint) {
  LinearFormat linear;
  linear.build(fig1_coords(), fig1_shape());
  const std::size_t payload = 5 * sizeof(index_t);
  EXPECT_GE(linear.index_bytes(), payload);
  // Strictly smaller than COO's 3 words/point for the same data.
  EXPECT_LT(linear.index_bytes(), 5 * 3 * sizeof(index_t) + 32);
}

TEST(Linear, SaveLoadRoundTrip) {
  LinearFormat linear;
  const CoordBuffer coords = fig1_coords();
  linear.build(coords, fig1_shape());
  LinearFormat fresh;
  testing::reload(linear, fresh);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(fresh.lookup(coords.point(i)), i);
  }
  EXPECT_EQ(fresh.addressing(), LinearAddressing::kGlobal);
}

TEST(Linear, LocalAddressingRoundTrip) {
  // A block far from the origin: global addressing would need the full
  // tensor's address space, local addressing only the bounding box.
  CoordBuffer coords(2);
  coords.append({1000, 2000});
  coords.append({1001, 2001});
  coords.append({1002, 2000});
  const Shape shape{4096, 4096};

  LinearFormat linear(LinearAddressing::kLocal);
  linear.build(coords, shape);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(linear.lookup(coords.point(i)), i);
  }
  // Points outside the local box are misses, not errors.
  const std::vector<index_t> outside{0, 0};
  EXPECT_EQ(linear.lookup(outside), kNotFound);

  LinearFormat fresh;
  testing::reload(linear, fresh);
  EXPECT_EQ(fresh.addressing(), LinearAddressing::kLocal);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(fresh.lookup(coords.point(i)), i);
  }
}

TEST(Linear, LocalAddressesAreBlockRelative) {
  CoordBuffer coords(2);
  coords.append({100, 100});
  coords.append({100, 101});
  LinearFormat linear(LinearAddressing::kLocal);
  linear.build(coords, Shape{1024, 1024});
  EXPECT_EQ(linear.addresses()[0], 0u);
  EXPECT_EQ(linear.addresses()[1], 1u);
}

TEST(Linear, EmptyBuild) {
  LinearFormat linear;
  const auto map = linear.build(CoordBuffer(3), fig1_shape());
  EXPECT_TRUE(map.empty());
  const std::vector<index_t> point{0, 0, 1};
  EXPECT_EQ(linear.lookup(point), kNotFound);
}

TEST(Linear, DuplicateAddressReturnsFirst) {
  CoordBuffer coords(2);
  coords.append({1, 1});
  coords.append({1, 1});
  LinearFormat linear;
  linear.build(coords, Shape{4, 4});
  const std::vector<index_t> point{1, 1};
  EXPECT_EQ(linear.lookup(point), 0u);
}

}  // namespace
}  // namespace artsparse
