#include "core/shape.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace artsparse {
namespace {

TEST(Shape, BasicExtentsAndRank) {
  const Shape shape{3, 4, 5};
  EXPECT_EQ(shape.rank(), 3u);
  EXPECT_EQ(shape.extent(0), 3u);
  EXPECT_EQ(shape.extent(1), 4u);
  EXPECT_EQ(shape.extent(2), 5u);
  EXPECT_FALSE(shape.empty());
}

TEST(Shape, DefaultIsEmpty) {
  const Shape shape;
  EXPECT_TRUE(shape.empty());
  EXPECT_EQ(shape.rank(), 0u);
  EXPECT_EQ(shape.element_count(), 0u);
}

TEST(Shape, RowMajorStrides) {
  const Shape shape{3, 4, 5};
  ASSERT_EQ(shape.strides().size(), 3u);
  EXPECT_EQ(shape.strides()[0], 20u);
  EXPECT_EQ(shape.strides()[1], 5u);
  EXPECT_EQ(shape.strides()[2], 1u);
}

TEST(Shape, ElementCount) {
  EXPECT_EQ((Shape{3, 4, 5}).element_count(), 60u);
  EXPECT_EQ((Shape{7}).element_count(), 7u);
  EXPECT_EQ(Shape::uniform(4, 128).element_count(), 128ull * 128 * 128 * 128);
}

TEST(Shape, MinExtent) {
  const Shape shape{8, 2, 5};
  EXPECT_EQ(shape.min_extent(), 2u);
  EXPECT_EQ(shape.min_extent_dim(), 1u);
}

TEST(Shape, MinExtentTieBreaksToFirst) {
  const Shape shape{4, 2, 2};
  EXPECT_EQ(shape.min_extent_dim(), 1u);
}

TEST(Shape, Flatten2DPicksSmallestAsRows) {
  // The paper's 3x3x3 example: rows = 3, cols = 9.
  const Flat2D flat = Shape{3, 3, 3}.flatten_2d();
  EXPECT_EQ(flat.rows, 3u);
  EXPECT_EQ(flat.cols, 9u);
  EXPECT_EQ(flat.min_dim, 0u);
}

TEST(Shape, Flatten2DNonUniform) {
  const Flat2D flat = Shape{16, 4, 8}.flatten_2d();
  EXPECT_EQ(flat.rows, 4u);
  EXPECT_EQ(flat.cols, 128u);
  EXPECT_EQ(flat.min_dim, 1u);
}

TEST(Shape, Flatten2DRank1Degenerates) {
  const Flat2D flat = Shape{9}.flatten_2d();
  EXPECT_EQ(flat.rows, 9u);
  EXPECT_EQ(flat.cols, 1u);
}

TEST(Shape, Uniform) {
  EXPECT_EQ(Shape::uniform(3, 512), (Shape{512, 512, 512}));
}

TEST(Shape, ZeroExtentRejected) {
  EXPECT_THROW(Shape({3, 0, 5}), FormatError);
}

TEST(Shape, ExtentOutOfRangeRejected) {
  const Shape shape{3, 4};
  EXPECT_THROW(shape.extent(2), FormatError);
}

TEST(Shape, ElementCountOverflowDetected) {
  // 2^32 * 2^32 == 2^64 overflows index_t.
  EXPECT_THROW(Shape({1ull << 32, 1ull << 32}), OverflowError);
}

TEST(Shape, LargeButRepresentableAccepted) {
  const Shape shape{1ull << 31, 1ull << 31};
  EXPECT_EQ(shape.element_count(), 1ull << 62);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_FALSE((Shape{2, 3}) == (Shape{3, 2}));
}

TEST(Shape, ToString) {
  EXPECT_EQ((Shape{3, 4, 5}).to_string(), "(3 x 4 x 5)");
}

TEST(Shape, MinExtentOnEmptyShapeRejected) {
  EXPECT_THROW(Shape().min_extent(), FormatError);
  EXPECT_THROW(Shape().flatten_2d(), FormatError);
}

}  // namespace
}  // namespace artsparse
