// Deadline / cancellation coverage: budget composition (a child can only
// shrink the budget), hierarchical cancel tokens, the ambient
// ScopedOpContext stack (including propagation into parallel_for
// workers), interruptible_sleep's capping and polling contract, and the
// retry loop's interaction with a budget (zero sleeps when the first
// backoff would overrun; capped sleep when the budget lands mid-backoff).
#include "core/deadline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/timer.hpp"
#include "storage/retry.hpp"

namespace artsparse {
namespace {

TEST(Deadline, DefaultIsUnbounded) {
  const Deadline deadline;
  EXPECT_FALSE(deadline.bounded());
  EXPECT_FALSE(deadline.expired());
  EXPECT_TRUE(std::isinf(deadline.remaining_seconds()));
  EXPECT_FALSE(Deadline::never().bounded());
}

TEST(Deadline, BoundedExpiresAndClampsAtZero) {
  const Deadline deadline = Deadline::after_seconds(0.005);
  EXPECT_TRUE(deadline.bounded());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_seconds(), 0.0);
  EXPECT_LE(deadline.remaining_seconds(), 0.005);

  const Deadline already = Deadline::after_seconds(0.0);
  EXPECT_TRUE(already.expired());
  EXPECT_DOUBLE_EQ(already.remaining_seconds(), 0.0);

  // after_ms(0) means "already expired", not "no budget".
  EXPECT_TRUE(Deadline::after_ms(0).expired());
}

TEST(Deadline, EarliestComposesTowardTheTighterBudget) {
  const Deadline loose = Deadline::after_seconds(60.0);
  const Deadline tight = Deadline::after_seconds(0.010);
  const Deadline unbounded;

  EXPECT_EQ(Deadline::earliest(loose, tight).time_point(),
            tight.time_point());
  EXPECT_EQ(Deadline::earliest(tight, loose).time_point(),
            tight.time_point());
  // Unbounded is the identity: composing keeps the bounded side.
  EXPECT_EQ(Deadline::earliest(unbounded, tight).time_point(),
            tight.time_point());
  EXPECT_EQ(Deadline::earliest(tight, unbounded).time_point(),
            tight.time_point());
  EXPECT_FALSE(Deadline::earliest(unbounded, unbounded).bounded());
}

TEST(CancelTokenTest, InertTokenNeverCancels) {
  const CancelToken inert;
  EXPECT_FALSE(inert.cancellable());
  EXPECT_FALSE(inert.cancelled());
  inert.cancel();  // documented no-op
  EXPECT_FALSE(inert.cancelled());
}

TEST(CancelTokenTest, CancelReachesDescendantsNotAncestors) {
  const CancelToken root = CancelToken::root();
  const CancelToken child = root.child();
  const CancelToken sibling = root.child();
  const CancelToken grandchild = child.child();

  child.cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(grandchild.cancelled()) << "cancel must reach descendants";
  EXPECT_FALSE(root.cancelled()) << "cancel must not reach ancestors";
  EXPECT_FALSE(sibling.cancelled()) << "cancel must not reach siblings";

  root.cancel();
  EXPECT_TRUE(root.cancelled());
  EXPECT_TRUE(sibling.cancelled()) << "root cancel fans out to all";
}

TEST(CancelTokenTest, CopiesShareStateAndChildOfInertIsRoot) {
  const CancelToken root = CancelToken::root();
  const CancelToken copy = root;
  root.cancel();
  EXPECT_TRUE(copy.cancelled());

  const CancelToken orphan = CancelToken().child();
  EXPECT_TRUE(orphan.cancellable());
  EXPECT_FALSE(orphan.cancelled());
}

TEST(ScopedOpContextTest, AmbientDefaultsToUnbounded) {
  const OpContext& ambient = current_op_context();
  EXPECT_FALSE(ambient.bounded());
  EXPECT_FALSE(ambient.interrupted());
}

TEST(ScopedOpContextTest, NestingComposesAndRestores) {
  const Deadline outer_deadline = Deadline::after_seconds(0.010);
  {
    const ScopedOpContext outer(OpContext{outer_deadline, CancelToken()});
    EXPECT_EQ(current_op_context().deadline.time_point(),
              outer_deadline.time_point());
    {
      // An inner scope with a looser deadline must NOT extend the budget.
      const ScopedOpContext inner(
          OpContext{Deadline::after_seconds(60.0), CancelToken()});
      EXPECT_EQ(current_op_context().deadline.time_point(),
                outer_deadline.time_point());
    }
    EXPECT_EQ(current_op_context().deadline.time_point(),
              outer_deadline.time_point());
  }
  EXPECT_FALSE(current_op_context().bounded());
}

TEST(ScopedOpContextTest, InnerInertCancelInheritsEnclosingToken) {
  const CancelToken root = CancelToken::root();
  const ScopedOpContext outer(OpContext{Deadline(), root});
  const ScopedOpContext inner(OpContext{Deadline::after_seconds(1.0),
                                        CancelToken()});
  EXPECT_FALSE(current_op_context().cancelled());
  root.cancel();
  EXPECT_TRUE(current_op_context().cancelled())
      << "an inert inner token must not mask the enclosing cancel";
}

TEST(ScopedOpContextTest, ParallelForWorkersSeeTheAmbientContext) {
  const CancelToken root = CancelToken::root();
  const ScopedOpContext scope(
      OpContext{Deadline::after_seconds(30.0), root});
  std::atomic<int> bounded_seen{0};
  // grain 1 forces real worker threads even for 64 elements; inline
  // execution would see the ambient context trivially.
  parallel_for(
      0, 64,
      [&](std::size_t, std::size_t) {
        if (current_op_context().bounded() &&
            current_op_context().cancel.cancellable()) {
          bounded_seen.fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*threads=*/4, /*grain=*/1);
  EXPECT_GT(bounded_seen.load(), 0)
      << "workers must inherit the spawning thread's OpContext";
}

TEST(InterruptibleSleep, UnboundedContextSleepsTheFullDuration) {
  WallTimer timer;
  EXPECT_EQ(interruptible_sleep(0.005, OpContext{}),
            WaitResult::kCompleted);
  EXPECT_GE(timer.seconds(), 0.004);
}

TEST(InterruptibleSleep, DeadlineCapsTheSleep) {
  const OpContext ctx{Deadline::after_seconds(0.005), CancelToken()};
  WallTimer timer;
  EXPECT_EQ(interruptible_sleep(10.0, ctx), WaitResult::kDeadlineExpired);
  EXPECT_LT(timer.seconds(), 1.0)
      << "a 10 s sleep under a 5 ms budget must stop at the budget";
}

TEST(InterruptibleSleep, AlreadyInterruptedReturnsWithoutSleeping) {
  const OpContext expired{Deadline::after_seconds(0.0), CancelToken()};
  WallTimer timer;
  EXPECT_EQ(interruptible_sleep(10.0, expired),
            WaitResult::kDeadlineExpired);
  EXPECT_LT(timer.seconds(), 0.5);

  const CancelToken token = CancelToken::root();
  token.cancel();
  const OpContext cancelled{Deadline(), token};
  EXPECT_EQ(interruptible_sleep(10.0, cancelled), WaitResult::kCancelled);

  // Cancellation wins the tie when both are tripped.
  const OpContext both{Deadline::after_seconds(0.0), token};
  EXPECT_EQ(interruptible_sleep(10.0, both), WaitResult::kCancelled);
}

TEST(InterruptibleSleep, CancelMidSleepStopsAtTheNextPoll) {
  const CancelToken token = CancelToken::root();
  const OpContext ctx{Deadline::after_seconds(30.0), token};
  std::atomic<bool> finished{false};
  WallTimer timer;
  parallel_for_each(
      2,
      [&](std::size_t which) {
        if (which == 0) {
          interruptible_sleep(10.0, ctx);
          finished.store(true, std::memory_order_relaxed);
        } else {
          interruptible_sleep(0.020, OpContext{});
          token.cancel();
        }
      },
      /*threads=*/2, /*grain=*/1);
  EXPECT_TRUE(finished.load());
  EXPECT_LT(timer.seconds(), 5.0)
      << "cancel must interrupt a sleep at the next ~2 ms poll";
}

// --- retry_io under a budget -------------------------------------------

TEST(RetryDeadline, BudgetShorterThanFirstBackoffFailsWithoutSleeping) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_delay_sec = 10.0;  // any sleep would blow the test timeout
  policy.cap_delay_sec = 10.0;
  policy.jitter = 0.0;
  const ScopedOpContext scope(
      OpContext{Deadline::after_seconds(0.050), CancelToken()});
  WallTimer timer;
  std::size_t runs = 0;
  try {
    retry_io(policy, [&] {
      ++runs;
      throw IoError::with_errno("write", "p", EINTR);
    });
    FAIL() << "expected DeadlineExceededError";
  } catch (const DeadlineExceededError& e) {
    EXPECT_EQ(e.attempts(), 1u);
    EXPECT_GE(e.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(runs, 1u) << "no retry may run once the budget cannot cover "
                         "the backoff";
  EXPECT_LT(timer.seconds(), 1.0) << "the backoff must not be slept";
}

TEST(RetryDeadline, BudgetExpiringMidBackoffCapsTheSleep) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_delay_sec = 0.010;
  policy.cap_delay_sec = 10.0;  // later backoffs far exceed the budget
  policy.jitter = 0.0;
  const ScopedOpContext scope(
      OpContext{Deadline::after_seconds(0.040), CancelToken()});
  WallTimer timer;
  EXPECT_THROW(retry_io(policy,
                        [&] {
                          throw IoError::with_errno("write", "p", EINTR);
                        }),
               DeadlineExceededError);
  EXPECT_LT(timer.seconds(), 2.0)
      << "total time must stay near the 40 ms budget, not the 10 s cap";
}

TEST(RetryDeadline, CancelledContextStopsTheLoop) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_delay_sec = 1e-4;
  policy.cap_delay_sec = 1e-3;
  const CancelToken token = CancelToken::root();
  token.cancel();
  const ScopedOpContext scope(OpContext{Deadline(), token});
  std::size_t runs = 0;
  EXPECT_THROW(retry_io(policy,
                        [&] {
                          ++runs;
                          throw IoError::with_errno("write", "p", EINTR);
                        }),
               CancelledError);
  EXPECT_EQ(runs, 1u);
}

TEST(RetryDeadline, UnboundedContextRetriesAsBefore) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_sec = 1e-6;
  policy.cap_delay_sec = 8e-6;
  std::size_t runs = 0;
  const RetryStats stats = retry_io(policy, [&] {
    if (++runs < 3) throw IoError::with_errno("write", "p", EINTR);
  });
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
}

}  // namespace
}  // namespace artsparse
