#include "core/reshape.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"
#include "core/linearize.hpp"
#include "formats/registry.hpp"
#include "patterns/dataset.hpp"

namespace artsparse {
namespace {

TEST(Reshape, FoldShapeMergesGroupExtents) {
  const Shape shape{4, 6, 8};
  EXPECT_EQ(fold_shape(shape, {{0}, {1, 2}}), (Shape{4, 48}));
  EXPECT_EQ(fold_shape(shape, {{0, 1, 2}}), (Shape{192}));
  EXPECT_EQ(fold_shape(shape, {{2, 0}, {1}}), (Shape{32, 6}));
}

TEST(Reshape, GcsrFoldIsolatesSmallestExtent) {
  const Shape shape{8, 2, 4};
  const FoldGroups groups = gcsr_fold(shape);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{1}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(fold_shape(shape, groups), (Shape{2, 32}));
}

TEST(Reshape, FoldCoordsRowMajorWithinGroup) {
  const Shape shape{3, 3, 3};
  CoordBuffer coords(3);
  coords.append({2, 2, 1});
  // Group {1, 2}: address = 2*3 + 1 = 7.
  const CoordBuffer folded = fold_coords(coords, shape, {{0}, {1, 2}});
  EXPECT_EQ(folded.at(0, 0), 2u);
  EXPECT_EQ(folded.at(0, 1), 7u);
}

TEST(Reshape, FoldUnfoldRoundTrip) {
  const Shape shape{5, 7, 3, 4};
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.05}, 9);
  const FoldGroups groups{{2, 0}, {3, 1}};
  const CoordBuffer folded = fold_coords(dataset.coords, shape, groups);

  std::vector<index_t> restored(4);
  for (std::size_t i = 0; i < folded.size(); ++i) {
    unfold_point(folded.point(i), shape, groups, restored);
    const auto original = dataset.coords.point(i);
    EXPECT_TRUE(std::equal(original.begin(), original.end(),
                           restored.begin()));
  }
}

TEST(Reshape, FoldIsInjective) {
  // Distinct points stay distinct after folding (losslessness).
  const Shape shape{6, 6, 6};
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.3}, 5);
  const FoldGroups groups{{0, 1}, {2}};
  const CoordBuffer folded = fold_coords(dataset.coords, shape, groups);
  const Shape folded_shape = fold_shape(shape, groups);
  std::set<index_t> addresses;
  for (std::size_t i = 0; i < folded.size(); ++i) {
    addresses.insert(linearize(folded.point(i), folded_shape));
  }
  EXPECT_EQ(addresses.size(), dataset.point_count());
}

TEST(Reshape, Finding2FoldedStorageShrinksCooIndex) {
  // The paper's finding (2) in one assert: storing a folded-to-2D tensor
  // in COO costs 2 words/point instead of d.
  const Shape shape = Shape::uniform(4, 12);
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.02}, 3);
  const FoldGroups groups = gcsr_fold(shape);
  const CoordBuffer folded = fold_coords(dataset.coords, shape, groups);
  const Shape folded_shape = fold_shape(shape, groups);

  auto coo_4d = make_format(OrgKind::kCoo);
  coo_4d->build(dataset.coords, shape);
  auto coo_2d = make_format(OrgKind::kCoo);
  coo_2d->build(folded, folded_shape);
  EXPECT_LT(coo_2d->index_bytes(), coo_4d->index_bytes() * 0.6);

  // And lookups still resolve through folded coordinates.
  for (std::size_t i = 0; i < folded.size(); i += 17) {
    EXPECT_NE(coo_2d->lookup(folded.point(i)), kNotFound);
  }
}

TEST(Reshape, InvalidGroupsRejected) {
  const Shape shape{4, 4};
  EXPECT_THROW(fold_shape(shape, {{0}}), FormatError);          // missing 1
  EXPECT_THROW(fold_shape(shape, {{0, 0}, {1}}), FormatError);  // repeat
  EXPECT_THROW(fold_shape(shape, {{0, 2}, {1}}), FormatError);  // OOB
  EXPECT_THROW(fold_shape(shape, {{0}, {}, {1}}), FormatError); // empty
}

TEST(Reshape, FoldedExtentOverflowDetected) {
  // Shapes whose total cell count overflows cannot even be constructed
  // (Shape guards it), so a fold can never overflow on a valid Shape; the
  // guard fires at construction.
  EXPECT_THROW(Shape({1ull << 32, 1ull << 33}), OverflowError);
  // Large-but-valid shapes fold without tripping the defensive check.
  const Shape shape{1ull << 31, 1ull << 31};
  EXPECT_EQ(fold_shape(shape, {{0, 1}}).extent(0), 1ull << 62);
}

TEST(Reshape, Rank1GcsrFoldDegenerates) {
  const FoldGroups groups = gcsr_fold(Shape{9});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(fold_shape(Shape{9}, groups), (Shape{9}));
}

}  // namespace
}  // namespace artsparse
