#include "benchlib/workload.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"

namespace artsparse {
namespace {

TEST(Workload, GridShapesMatchPaper) {
  EXPECT_EQ(grid_shape(2, ScaleKind::kPaper), Shape::uniform(2, 8192));
  EXPECT_EQ(grid_shape(3, ScaleKind::kPaper), Shape::uniform(3, 512));
  EXPECT_EQ(grid_shape(4, ScaleKind::kPaper), Shape::uniform(4, 128));
}

TEST(Workload, SmallShapesAreLaptopSized) {
  for (std::size_t rank : {2u, 3u, 4u}) {
    EXPECT_LT(grid_shape(rank, ScaleKind::kSmall).element_count(),
              grid_shape(rank, ScaleKind::kPaper).element_count());
  }
}

TEST(Workload, UnsupportedRankRejected) {
  EXPECT_THROW(grid_shape(1, ScaleKind::kSmall), FormatError);
  EXPECT_THROW(grid_shape(5, ScaleKind::kSmall), FormatError);
}

TEST(Workload, Table2Densities) {
  EXPECT_DOUBLE_EQ(table2_density(2, PatternKind::kTsp), 0.0167);
  EXPECT_DOUBLE_EQ(table2_density(3, PatternKind::kTsp), 0.0347);
  EXPECT_DOUBLE_EQ(table2_density(4, PatternKind::kTsp), 0.0822);
  EXPECT_DOUBLE_EQ(table2_density(4, PatternKind::kGsp), 0.0090);
  EXPECT_DOUBLE_EQ(table2_density(2, PatternKind::kMsp), 0.0019);
}

TEST(Workload, ReadRegionMatchesPaperRule) {
  const Workload w = make_workload(2, PatternKind::kGsp, ScaleKind::kSmall);
  const Box region = w.read_region();
  // origin (m/2), size (m/10) on a 1024^2 tensor.
  EXPECT_EQ(region.lo(0), 512u);
  EXPECT_EQ(region.hi(0), 512u + 102u - 1u);
}

TEST(Workload, GeneratedDensityTracksTable2) {
  for (PatternKind pattern :
       {PatternKind::kTsp, PatternKind::kGsp, PatternKind::kMsp}) {
    const Workload w = make_workload(2, pattern, ScaleKind::kSmall);
    const SparseDataset dataset = make_dataset(w.shape, w.spec, w.seed);
    const double target = table2_density(2, pattern);
    EXPECT_NEAR(dataset.density(), target, target * 0.5)
        << to_string(pattern);
  }
}

TEST(Workload, PaperGridHasNineCells) {
  const auto grid = paper_grid(ScaleKind::kSmall);
  EXPECT_EQ(grid.size(), 9u);
  // Names unique.
  std::set<std::string> names;
  for (const auto& w : grid) names.insert(w.name);
  EXPECT_EQ(names.size(), 9u);
}

TEST(Workload, NamesEncodeRankAndPattern) {
  const Workload w = make_workload(3, PatternKind::kMsp, ScaleKind::kSmall);
  EXPECT_EQ(w.name, "3D-MSP");
}

TEST(Workload, ScaleFromArgs) {
  const char* argv_paper[] = {"bench", "--scale=paper"};
  const char* argv_small[] = {"bench", "--scale=small"};
  const char* argv_none[] = {"bench"};
  EXPECT_EQ(scale_from_args(2, const_cast<char**>(argv_paper)),
            ScaleKind::kPaper);
  EXPECT_EQ(scale_from_args(2, const_cast<char**>(argv_small)),
            ScaleKind::kSmall);
  EXPECT_EQ(scale_from_args(1, const_cast<char**>(argv_none)),
            ScaleKind::kSmall);
}

}  // namespace
}  // namespace artsparse
