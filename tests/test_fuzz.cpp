// Differential fuzzing: a FragmentStore driven by random operation
// sequences is cross-checked against a trivial std::map reference model —
// random batch writes (random organization and codec per fragment,
// overlapping cells allowed), region reads, native scans, point reads, and
// occasional consolidation.
#include <gtest/gtest.h>

#include <map>

#include "core/linearize.hpp"
#include "core/rng.hpp"
#include "formats/registry.hpp"
#include "storage/fragment_store.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

class StoreFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreFuzz, MatchesReferenceModel) {
  const auto dir =
      testing::fresh_temp_dir("fuzz_" + std::to_string(GetParam()));
  const Shape shape{40, 40};
  Xoshiro256 rng(GetParam());

  const CodecKind codecs[] = {CodecKind::kIdentity, CodecKind::kVarint,
                              CodecKind::kDeltaVarint, CodecKind::kRle};
  FragmentStore store(dir, shape, DeviceModel::unthrottled(),
                      codecs[GetParam() % std::size(codecs)]);

  // Reference: address -> values in write order (duplicates all surface
  // until a consolidation collapses them to the latest).
  std::map<index_t, std::vector<value_t>> model;

  const auto orgs = all_org_kinds();
  for (int step = 0; step < 40; ++step) {
    const std::uint64_t action = rng.next_below(10);

    if (action < 5) {
      // Batch write: 1..30 random points, duplicates within a batch
      // removed (formats require distinct slots only per duplicate leaf,
      // but the reference is simpler without intra-batch duplicates).
      const std::size_t count = 1 + rng.next_below(30);
      std::map<index_t, value_t> batch;
      for (std::size_t i = 0; i < count; ++i) {
        const index_t address = rng.next_below(shape.element_count());
        batch[address] = static_cast<value_t>(rng.next_below(1000));
      }
      CoordBuffer coords(2);
      std::vector<value_t> values;
      std::vector<index_t> point(2);
      for (const auto& [address, value] : batch) {
        delinearize(address, shape, point);
        coords.append(point);
        values.push_back(value);
        model[address].push_back(value);
      }
      store.write(coords, values, orgs[rng.next_below(orgs.size())]);
      continue;
    }

    if (action < 7) {
      // Random region, both read paths.
      const index_t lo0 = rng.next_below(35);
      const index_t lo1 = rng.next_below(35);
      const Box region({lo0, lo1}, {lo0 + rng.next_below(5),
                                    lo1 + rng.next_below(5)});
      const ReadResult scanned = store.scan_region(region);
      const ReadResult queried = store.read_region(region);
      ASSERT_EQ(scanned.values, queried.values) << "step " << step;

      std::vector<value_t> expected;
      std::vector<index_t> point(2);
      for (const auto& [address, values] : model) {
        delinearize(address, shape, point);
        if (region.contains(point)) {
          expected.insert(expected.end(), values.begin(), values.end());
        }
      }
      ASSERT_EQ(scanned.values, expected) << "step " << step;
      continue;
    }

    if (action < 9) {
      // Point probes.
      for (int probe = 0; probe < 5; ++probe) {
        const index_t address = rng.next_below(shape.element_count());
        CoordBuffer query(2);
        std::vector<index_t> point(2);
        delinearize(address, shape, point);
        query.append(point);
        const ReadResult result = store.read(query);
        const auto it = model.find(address);
        const std::size_t expected =
            it == model.end() ? 0 : it->second.size();
        ASSERT_EQ(result.values.size(), expected)
            << "step " << step << " address " << address;
      }
      continue;
    }

    // Consolidate: the model collapses to latest-per-address.
    store.consolidate(orgs[rng.next_below(orgs.size())]);
    for (auto& [address, values] : model) {
      values = {values.back()};
    }
    ASSERT_EQ(store.fragment_count(), 1u);
  }

  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace artsparse
