#include "storage/fragment_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "core/linearize.hpp"
#include "storage/fragment_store.hpp"
#include "test_support.hpp"
#include "tiles/tiled_store.hpp"

namespace artsparse {
namespace {

class FragmentCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = testing::fresh_temp_dir("cache"); }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Writes `count` disjoint 4x4 fragments along the diagonal.
  void write_fragments(FragmentStore& store, std::size_t count) {
    for (std::size_t f = 0; f < count; ++f) {
      const index_t base = static_cast<index_t>(f) * 8;
      CoordBuffer coords(2);
      std::vector<value_t> values;
      for (index_t r = base; r < base + 4; ++r) {
        for (index_t c = base; c < base + 4; ++c) {
          coords.append({r, c});
          values.push_back(static_cast<value_t>(linearize(
              std::vector<index_t>{r, c}, store.tensor_shape())));
        }
      }
      store.write(coords, values, OrgKind::kGcsr);
    }
  }

  std::filesystem::path dir_;
};

TEST_F(FragmentCacheTest, HitAndMissAccounting) {
  const Shape shape{64, 64};
  auto cache = std::make_shared<FragmentCache>(64u << 20);
  FragmentStore store(dir_, shape, DeviceModel::unthrottled(),
                      CodecKind::kIdentity, cache);
  write_fragments(store, 3);

  const Box whole = Box::whole(shape);
  const ReadResult cold = store.scan_region(whole);
  EXPECT_EQ(cold.times.cache_misses, 3u);
  EXPECT_EQ(cold.times.cache_hits, 0u);

  const ReadResult warm = store.scan_region(whole);
  EXPECT_EQ(warm.times.cache_misses, 0u);
  EXPECT_EQ(warm.times.cache_hits, 3u);

  const CacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.open_count, 3u);
  EXPECT_GT(stats.open_bytes, 0u);
  EXPECT_EQ(stats.budget_bytes, 64u << 20);
}

TEST_F(FragmentCacheTest, RepeatedReadRegionDoesZeroFileReadsAfterWarmup) {
  const Shape shape{64, 64};
  auto cache = std::make_shared<FragmentCache>();
  FragmentStore store(dir_, shape, DeviceModel::unthrottled(),
                      CodecKind::kIdentity, cache);
  write_fragments(store, 4);

  const Box region({0, 0}, {63, 63});
  const ReadResult warmup = store.read_region(region);
  const std::size_t misses_after_warmup = cache->stats().misses;
  EXPECT_EQ(warmup.times.cache_misses, 4u);

  // The acceptance criterion: repeated reads over an unchanged store load
  // no fragment files at all — every resolution is a cache hit.
  for (int round = 0; round < 3; ++round) {
    const ReadResult again = store.read_region(region);
    EXPECT_EQ(again.times.cache_misses, 0u);
    EXPECT_EQ(again.times.cache_hits, 4u);
    EXPECT_EQ(again.values.size(), warmup.values.size());
  }
  EXPECT_EQ(cache->stats().misses, misses_after_warmup);
}

TEST_F(FragmentCacheTest, ByteBudgetEvictsLeastRecentlyUsedFirst) {
  const Shape shape{64, 64};
  // Budget sized to hold roughly two of the three identical fragments.
  auto probe = std::make_shared<FragmentCache>();
  {
    FragmentStore store(dir_ / "probe", shape, DeviceModel::unthrottled(),
                        CodecKind::kIdentity, probe);
    write_fragments(store, 1);
    store.scan_region(Box::whole(shape));
  }
  const std::size_t one_fragment = probe->stats().open_bytes;
  ASSERT_GT(one_fragment, 0u);

  auto cache = std::make_shared<FragmentCache>(2 * one_fragment);
  FragmentStore store(dir_, shape, DeviceModel::unthrottled(),
                      CodecKind::kIdentity, cache);
  write_fragments(store, 3);
  const std::vector<std::string> paths = [&] {
    std::vector<std::string> p;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      if (entry.is_regular_file()) p.push_back(entry.path().string());
    }
    std::sort(p.begin(), p.end());
    return p;
  }();
  ASSERT_EQ(paths.size(), 3u);

  // Touch 0, 1, 2: inserting 2 must evict 0 (the least recently used).
  EXPECT_FALSE(cache->get(paths[0], DeviceModel::unthrottled()).hit);
  EXPECT_FALSE(cache->get(paths[1], DeviceModel::unthrottled()).hit);
  EXPECT_FALSE(cache->get(paths[2], DeviceModel::unthrottled()).hit);
  EXPECT_EQ(cache->stats().evictions, 1u);
  EXPECT_EQ(cache->stats().open_count, 2u);

  EXPECT_TRUE(cache->get(paths[1], DeviceModel::unthrottled()).hit);
  EXPECT_TRUE(cache->get(paths[2], DeviceModel::unthrottled()).hit);
  // Fragment 0 was the eviction victim; re-reading it misses (and evicts
  // the now-least-recent fragment 1).
  EXPECT_FALSE(cache->get(paths[0], DeviceModel::unthrottled()).hit);
  EXPECT_EQ(cache->stats().evictions, 2u);
  EXPECT_FALSE(cache->get(paths[1], DeviceModel::unthrottled()).hit);
}

TEST_F(FragmentCacheTest, ZeroBudgetDisablesCaching) {
  const Shape shape{64, 64};
  auto cache = std::make_shared<FragmentCache>(0);
  FragmentStore store(dir_, shape, DeviceModel::unthrottled(),
                      CodecKind::kIdentity, cache);
  write_fragments(store, 2);

  const Box whole = Box::whole(shape);
  store.scan_region(whole);
  store.scan_region(whole);
  const CacheStats stats = cache->stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.open_count, 0u);
  EXPECT_EQ(stats.open_bytes, 0u);
}

TEST_F(FragmentCacheTest, ClearInvalidatesCachedFragments) {
  const Shape shape{64, 64};
  auto cache = std::make_shared<FragmentCache>();
  FragmentStore store(dir_, shape, DeviceModel::unthrottled(),
                      CodecKind::kIdentity, cache);
  write_fragments(store, 2);
  store.scan_region(Box::whole(shape));
  EXPECT_EQ(cache->stats().open_count, 2u);

  store.clear();
  EXPECT_EQ(cache->stats().open_count, 0u);
  EXPECT_GE(cache->stats().invalidations, 2u);

  // Fragment ids are never recycled (clear() keeps the counter), but the
  // read must still see the new bytes, not any stale cached decode.
  CoordBuffer coords(2);
  coords.append({1, 1});
  const std::vector<value_t> values{42.0};
  store.write(coords, values, OrgKind::kCoo);
  const ReadResult result = store.scan_region(Box::whole(shape));
  ASSERT_EQ(result.values.size(), 1u);
  EXPECT_EQ(result.values[0], 42.0);
}

TEST_F(FragmentCacheTest, ConsolidateInvalidatesAndRereadsCorrectly) {
  const Shape shape{64, 64};
  auto cache = std::make_shared<FragmentCache>();
  FragmentStore store(dir_, shape, DeviceModel::unthrottled(),
                      CodecKind::kIdentity, cache);
  write_fragments(store, 3);
  // Overwrite one cell so consolidation must keep the latest value.
  CoordBuffer coords(2);
  coords.append({0, 0});
  const std::vector<value_t> values{-1.0};
  store.write(coords, values, OrgKind::kCoo);

  store.scan_region(Box::whole(shape));  // warm the cache
  const WriteResult merged = store.consolidate(OrgKind::kLinear);
  EXPECT_EQ(store.fragment_count(), 1u);
  EXPECT_EQ(merged.point_count, 48u);

  const ReadResult result = store.scan_region(Box::whole(shape));
  EXPECT_EQ(result.times.cache_misses, 1u);  // only the merged fragment
  ASSERT_FALSE(result.values.empty());
  EXPECT_EQ(result.values[0], -1.0);  // latest write won
}

TEST_F(FragmentCacheTest, RescanInvalidatesCachedFragments) {
  const Shape shape{64, 64};
  auto cache = std::make_shared<FragmentCache>();
  FragmentStore store(dir_, shape, DeviceModel::unthrottled(),
                      CodecKind::kIdentity, cache);
  write_fragments(store, 2);
  store.scan_region(Box::whole(shape));
  EXPECT_EQ(cache->stats().open_count, 2u);

  store.rescan();
  EXPECT_EQ(cache->stats().open_count, 0u);

  // Reads after rescan still work (and reload from disk).
  const ReadResult result = store.scan_region(Box::whole(shape));
  EXPECT_EQ(result.times.cache_misses, 2u);
  EXPECT_EQ(result.values.size(), 32u);
}

TEST_F(FragmentCacheTest, BudgetFromEnvironment) {
  const char* saved = std::getenv("ARTSPARSE_CACHE_BYTES");
  const std::string saved_value = saved ? saved : "";

  ::setenv("ARTSPARSE_CACHE_BYTES", "12345", 1);
  EXPECT_EQ(FragmentCache::budget_from_env(), 12345u);
  EXPECT_EQ(FragmentCache().budget_bytes(), 12345u);

  ::unsetenv("ARTSPARSE_CACHE_BYTES");
  EXPECT_EQ(FragmentCache::budget_from_env(),
            FragmentCache::kDefaultBudgetBytes);

  if (saved) {
    ::setenv("ARTSPARSE_CACHE_BYTES", saved_value.c_str(), 1);
  }
}

TEST_F(FragmentCacheTest, TiledStoreSharesTheCache) {
  const Shape shape{64, 64};
  auto cache = std::make_shared<FragmentCache>();
  const TileGrid grid(shape, Shape{16, 16});
  TiledStore store(dir_, grid, TilePolicy::fixed(OrgKind::kGcsr),
                   DeviceModel::unthrottled(), CodecKind::kIdentity, cache);

  CoordBuffer coords(2);
  std::vector<value_t> values;
  for (index_t r = 0; r < 64; r += 8) {
    coords.append({r, r});
    values.push_back(static_cast<value_t>(r));
  }
  const TiledWriteResult written = store.write(coords, values);
  EXPECT_GT(written.tiles_written, 1u);

  const Box whole = Box::whole(shape);
  const ReadResult cold = store.scan_region(whole);
  EXPECT_EQ(cold.times.cache_misses, written.tiles_written);
  const ReadResult warm = store.scan_region(whole);
  EXPECT_EQ(warm.times.cache_misses, 0u);
  EXPECT_EQ(warm.times.cache_hits, written.tiles_written);
  EXPECT_EQ(&store.cache(), cache.get());
}

#if defined(ARTSPARSE_OBS_ENABLED)
TEST_F(FragmentCacheTest, StatsAndRegistryAreIndependentCursors) {
  // CacheStats (per instance) and the obs registry (process-wide) observe
  // the same event stream through independent cursors: resetting one must
  // not move the other.
  const Shape shape{64, 64};
  obs::MetricsRegistry& reg = obs::registry();
  const double hits_before = reg.snapshot().value("artsparse_cache_hits_total");
  const double misses_before =
      reg.snapshot().value("artsparse_cache_misses_total");
  const std::int64_t open_before = static_cast<std::int64_t>(
      reg.snapshot().value("artsparse_cache_open_fragments"));

  auto cache = std::make_shared<FragmentCache>();
  {
    FragmentStore store(dir_, shape, DeviceModel::unthrottled(),
                        CodecKind::kIdentity, cache);
    write_fragments(store, 2);
    store.scan_region(Box::whole(shape));  // 2 misses
    store.scan_region(Box::whole(shape));  // 2 hits

    EXPECT_EQ(cache->stats().hits, 2u);
    EXPECT_EQ(cache->stats().misses, 2u);
    EXPECT_DOUBLE_EQ(reg.snapshot().value("artsparse_cache_hits_total"),
                     hits_before + 2);
    EXPECT_DOUBLE_EQ(reg.snapshot().value("artsparse_cache_misses_total"),
                     misses_before + 2);
    EXPECT_EQ(static_cast<std::int64_t>(
                  reg.snapshot().value("artsparse_cache_open_fragments")),
              open_before + 2);

    // Cursor independence, direction 1: reset_stats() rewinds only the
    // per-instance view.
    cache->reset_stats();
    EXPECT_EQ(cache->stats().hits, 0u);
    EXPECT_DOUBLE_EQ(reg.snapshot().value("artsparse_cache_hits_total"),
                     hits_before + 2);

    // Direction 2: registry reset zeroes the process-wide counters but
    // not the instance's, and leaves the resident gauges alone.
    store.scan_region(Box::whole(shape));  // 2 more instance hits
    reg.reset();
    EXPECT_EQ(cache->stats().hits, 2u);
    EXPECT_DOUBLE_EQ(reg.snapshot().value("artsparse_cache_hits_total"),
                     0.0);
    EXPECT_EQ(static_cast<std::int64_t>(
                  reg.snapshot().value("artsparse_cache_open_fragments")),
              open_before + 2);
  }
  // The cache's residents die with it; the live gauges return to baseline.
  cache.reset();
  EXPECT_EQ(static_cast<std::int64_t>(
                reg.snapshot().value("artsparse_cache_open_fragments")),
            open_before);
}
#endif

}  // namespace
}  // namespace artsparse
