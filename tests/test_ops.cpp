// SparseTensor facade + computation kernels. Kernels are validated against
// brute-force dense references, and checked to be organization-independent
// (every org produces the identical result).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/linearize.hpp"
#include "ops/kernels.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

SparseTensor fig1_tensor(OrgKind org = OrgKind::kGcsr) {
  return SparseTensor(testing::fig1_coords(), testing::fig1_values(),
                      testing::fig1_shape(), org);
}

// ---------- facade ----------

TEST(SparseTensor, AtReturnsStoredValues) {
  const SparseTensor tensor = fig1_tensor();
  const CoordBuffer coords = testing::fig1_coords();
  const auto values = testing::fig1_values();
  for (std::size_t i = 0; i < coords.size(); ++i) {
    ASSERT_EQ(tensor.at(coords.point(i)), values[i]);
  }
  const std::vector<index_t> absent{1, 1, 1};
  EXPECT_FALSE(tensor.at(absent).has_value());
  EXPECT_EQ(tensor.nnz(), 5u);
}

TEST(SparseTensor, ForEachVisitsBoxOnly) {
  const SparseTensor tensor = fig1_tensor(OrgKind::kCsf);
  std::size_t visited = 0;
  value_t sum = 0.0;
  tensor.for_each(Box({0, 0, 0}, {0, 2, 2}),
                  [&](std::span<const index_t> p, value_t v) {
                    EXPECT_EQ(p[0], 0u);
                    ++visited;
                    sum += v;
                  });
  EXPECT_EQ(visited, 3u);  // the three points with first coordinate 0
  EXPECT_EQ(sum, 1.0 + 2.0 + 3.0);
}

TEST(SparseTensor, ToDenseMatchesAt) {
  const SparseTensor tensor = fig1_tensor(OrgKind::kLinear);
  const auto dense = tensor.to_dense();
  ASSERT_EQ(dense.size(), 27u);
  EXPECT_EQ(dense[1], 1.0);    // (0,0,1)
  EXPECT_EQ(dense[26], 5.0);   // (2,2,2)
  EXPECT_EQ(dense[0], 0.0);
}

TEST(SparseTensor, ToDenseRefusesHugeTensors) {
  CoordBuffer coords(2);
  coords.append({0, 0});
  const std::vector<value_t> values{1.0};
  const SparseTensor tensor(coords, values, Shape{1 << 16, 1 << 16},
                            OrgKind::kCoo);
  EXPECT_THROW(tensor.to_dense(), FormatError);
}

TEST(SparseTensor, MismatchedValuesRejected) {
  CoordBuffer coords(2);
  coords.append({0, 0});
  const std::vector<value_t> values{1.0, 2.0};
  EXPECT_THROW(
      SparseTensor(coords, values, Shape{4, 4}, OrgKind::kCoo),
      FormatError);
}

TEST(SparseTensor, IteratorVisitsEveryEntryOnce) {
  const Shape shape{20, 20};
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.1}, 8);
  const SparseTensor tensor(dataset, OrgKind::kCsf);

  std::set<index_t> seen;
  value_t sum = 0.0;
  for (const auto entry : tensor) {
    seen.insert(linearize(entry.coords, shape));
    sum += entry.value;
  }
  EXPECT_EQ(seen.size(), dataset.point_count());
  value_t expected_sum = 0.0;
  for (value_t v : dataset.values) expected_sum += v;
  EXPECT_DOUBLE_EQ(sum, expected_sum);
}

TEST(SparseTensor, IteratorSatisfiesForwardSemantics) {
  const SparseTensor tensor = fig1_tensor();
  auto it = tensor.begin();
  const auto first = (*it).value;
  auto copy = it++;
  EXPECT_EQ((*copy).value, first);
  EXPECT_NE((*it).value, first);

  std::size_t count = 0;
  for (auto i = tensor.begin(); i != tensor.end(); ++i) ++count;
  EXPECT_EQ(count, 5u);
}

TEST(SparseTensor, EmptyTensorIteratesNothing) {
  const SparseTensor tensor(CoordBuffer(2), std::vector<value_t>{},
                            Shape{4, 4}, OrgKind::kCoo);
  EXPECT_TRUE(tensor.begin() == tensor.end());
}

// ---------- SpMV ----------

class SpmvAllOrgs : public ::testing::TestWithParam<OrgKind> {};

TEST_P(SpmvAllOrgs, MatchesDenseReference) {
  const Shape shape{24, 40};
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.1}, 17);
  const SparseTensor A(dataset, GetParam());

  std::vector<value_t> x(40);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.25 * static_cast<value_t>(i) - 3.0;
  }
  const auto y = spmv(A, x);

  // Dense reference.
  std::vector<value_t> expected(24, 0.0);
  for (std::size_t i = 0; i < dataset.coords.size(); ++i) {
    const auto p = dataset.coords.point(i);
    expected[p[0]] += dataset.values[i] * x[p[1]];
  }
  ASSERT_EQ(y.size(), expected.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], expected[i], 1e-9 * (1.0 + std::abs(expected[i])));
  }
}

TEST_P(SpmvAllOrgs, TransposedMatchesReference) {
  const Shape shape{16, 12};
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.2}, 3);
  const SparseTensor A(dataset, GetParam());
  std::vector<value_t> x(16, 1.0);
  const auto y = spmv_transposed(A, x);
  std::vector<value_t> expected(12, 0.0);
  for (std::size_t i = 0; i < dataset.coords.size(); ++i) {
    expected[dataset.coords.at(i, 1)] += dataset.values[i];
  }
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], expected[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Orgs, SpmvAllOrgs,
                         ::testing::Values(OrgKind::kCoo, OrgKind::kLinear,
                                           OrgKind::kGcsr, OrgKind::kGcsc,
                                           OrgKind::kCsf,
                                           OrgKind::kSortedCoo),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           std::erase(name, '+');
                           return name;
                         });

TEST(Spmv, RankAndLengthChecks) {
  const SparseTensor three_d = fig1_tensor();
  std::vector<value_t> x(3, 1.0);
  EXPECT_THROW(spmv(three_d, x), FormatError);

  CoordBuffer coords(2);
  coords.append({0, 0});
  const std::vector<value_t> values{1.0};
  const SparseTensor A(coords, values, Shape{4, 6}, OrgKind::kGcsr);
  std::vector<value_t> wrong(5, 1.0);
  EXPECT_THROW(spmv(A, wrong), FormatError);
}

// ---------- MTTKRP ----------

DenseMatrix iota_matrix(std::size_t rows, std::size_t cols, double scale) {
  DenseMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = scale * static_cast<double>(r + 1) +
                   0.1 * static_cast<double>(c);
    }
  }
  return m;
}

TEST(Mttkrp, MatchesBruteForceEveryModeEveryOrg) {
  const Shape shape{6, 8, 10};
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.15}, 23);
  constexpr std::size_t kRank = 4;

  for (std::size_t mode = 0; mode < 3; ++mode) {
    const std::size_t j_dim = mode == 0 ? 1 : 0;
    const std::size_t k_dim = mode == 2 ? 1 : 2;
    const DenseMatrix B = iota_matrix(shape.extent(j_dim), kRank, 0.5);
    const DenseMatrix C = iota_matrix(shape.extent(k_dim), kRank, -0.25);

    // Brute force from the raw dataset.
    DenseMatrix expected(shape.extent(mode), kRank);
    for (std::size_t i = 0; i < dataset.coords.size(); ++i) {
      const auto p = dataset.coords.point(i);
      for (std::size_t r = 0; r < kRank; ++r) {
        expected.at(p[mode], r) +=
            dataset.values[i] * B.at(p[j_dim], r) * C.at(p[k_dim], r);
      }
    }

    for (OrgKind org : kPaperOrgs) {
      const SparseTensor X(dataset, org);
      const DenseMatrix M = mttkrp(X, B, C, mode);
      ASSERT_EQ(M.rows(), expected.rows());
      for (std::size_t i = 0; i < M.rows(); ++i) {
        for (std::size_t r = 0; r < kRank; ++r) {
          ASSERT_NEAR(M.at(i, r), expected.at(i, r),
                      1e-6 * (1.0 + std::abs(expected.at(i, r))))
              << to_string(org) << " mode " << mode;
        }
      }
    }
  }
}

TEST(Mttkrp, ShapeChecks) {
  const SparseTensor X = fig1_tensor();
  EXPECT_THROW(mttkrp(X, DenseMatrix(2, 2), DenseMatrix(3, 2), 0),
               FormatError);  // B rows mismatch
  EXPECT_THROW(mttkrp(X, DenseMatrix(3, 2), DenseMatrix(3, 3), 0),
               FormatError);  // rank mismatch
  EXPECT_THROW(mttkrp(X, DenseMatrix(3, 2), DenseMatrix(3, 2), 5),
               FormatError);  // bad mode
}

// ---------- TTV ----------

TEST(Ttv, ContractsAgainstBruteForce) {
  const Shape shape{5, 6, 7};
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.2}, 31);
  const SparseTensor X(dataset, OrgKind::kCsf);
  std::vector<value_t> v(6);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 1.0 + 0.5 * i;

  const auto [coords, values] = ttv(X, v, /*mode=*/1);

  // Brute force into a dense 5x7 slab.
  std::vector<value_t> dense(35, 0.0);
  for (std::size_t i = 0; i < dataset.coords.size(); ++i) {
    const auto p = dataset.coords.point(i);
    dense[p[0] * 7 + p[2]] += dataset.values[i] * v[p[1]];
  }
  // Every returned point matches; every non-returned cell is ~0.
  std::vector<value_t> got(35, 0.0);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    got[coords.at(i, 0) * 7 + coords.at(i, 1)] = values[i];
  }
  for (std::size_t cell = 0; cell < 35; ++cell) {
    EXPECT_NEAR(got[cell], dense[cell], 1e-9);
  }
}

TEST(Ttv, OutputIsRowMajorSorted) {
  const SparseTensor X = fig1_tensor();
  const std::vector<value_t> v{1.0, 1.0, 1.0};
  const auto [coords, values] = ttv(X, v, 2);
  const Shape reduced{3, 3};
  for (std::size_t i = 1; i < coords.size(); ++i) {
    EXPECT_LT(linearize(coords.point(i - 1), reduced),
              linearize(coords.point(i), reduced));
  }
}

TEST(Ttv, ModeAndLengthChecks) {
  const SparseTensor X = fig1_tensor();
  const std::vector<value_t> short_v{1.0};
  EXPECT_THROW(ttv(X, short_v, 0), FormatError);
  const std::vector<value_t> v{1.0, 1.0, 1.0};
  EXPECT_THROW(ttv(X, v, 3), FormatError);
}

TEST(NormSquared, SumsSquares) {
  const SparseTensor X = fig1_tensor();
  EXPECT_DOUBLE_EQ(norm_squared(X), 1.0 + 4.0 + 9.0 + 16.0 + 25.0);
}

}  // namespace
}  // namespace artsparse
