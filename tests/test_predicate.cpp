// Predicate-pushdown reads: value-range filtering with fragment skipping
// driven by the per-fragment min/max statistics block.
#include <gtest/gtest.h>

#include "core/linearize.hpp"
#include "formats/coo.hpp"
#include "patterns/dataset.hpp"
#include "storage/fragment.hpp"
#include "storage/fragment_store.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = testing::fresh_temp_dir("predicate"); }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST(ValueRange, MatchesAndOverlaps) {
  const ValueRange range{10.0, 20.0};
  EXPECT_TRUE(range.matches(10.0));
  EXPECT_TRUE(range.matches(20.0));
  EXPECT_FALSE(range.matches(9.999));
  EXPECT_TRUE(range.overlaps(15.0, 30.0));
  EXPECT_TRUE(range.overlaps(0.0, 10.0));
  EXPECT_FALSE(range.overlaps(21.0, 30.0));
}

TEST(ValueRange, Constructors) {
  EXPECT_TRUE(ValueRange::at_least(5.0).matches(1e300));
  EXPECT_FALSE(ValueRange::at_least(5.0).matches(4.0));
  EXPECT_TRUE(ValueRange::at_most(5.0).matches(-1e300));
  EXPECT_FALSE(ValueRange::at_most(5.0).matches(6.0));
  EXPECT_TRUE(ValueRange{}.matches(0.0));
}

TEST(FragmentStats, MinMaxRecordedInHeader) {
  Fragment fragment;
  fragment.org = OrgKind::kCoo;
  fragment.shape = Shape{4, 4};
  fragment.values = {3.5, -2.0, 7.25};
  CooFormat coo;
  CoordBuffer coords(2);
  coords.append({0, 0});
  coords.append({1, 1});
  coords.append({2, 2});
  coo.build(coords, fragment.shape);
  fragment.index = serialize_format(coo);
  fragment.bbox = Box::bounding(coords);
  fragment.point_count = 3;

  const FragmentInfo info =
      decode_fragment_info(encode_fragment(fragment));
  EXPECT_EQ(info.value_min, -2.0);
  EXPECT_EQ(info.value_max, 7.25);
}

TEST(FragmentStats, EmptyFragmentHasZeroStats) {
  Fragment fragment;
  fragment.org = OrgKind::kCoo;
  fragment.shape = Shape{4, 4};
  CooFormat coo;
  coo.build(CoordBuffer(2), fragment.shape);
  fragment.index = serialize_format(coo);
  const FragmentInfo info =
      decode_fragment_info(encode_fragment(fragment));
  EXPECT_EQ(info.value_min, 0.0);
  EXPECT_EQ(info.value_max, 0.0);
}

TEST_F(PredicateTest, FiltersIndividualValues) {
  const Shape shape{32, 32};
  FragmentStore store(dir_, shape);
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.2}, 11);
  store.write(dataset.coords, dataset.values, OrgKind::kGcsr);

  // Values equal linear addresses: keep only addresses in [100, 400].
  const ValueRange range{100.0, 400.0};
  const ReadResult result =
      store.scan_region_where(Box::whole(shape), range);
  std::size_t expected = 0;
  for (value_t v : dataset.values) {
    if (range.matches(v)) ++expected;
  }
  EXPECT_EQ(result.values.size(), expected);
  for (value_t v : result.values) {
    EXPECT_TRUE(range.matches(v));
  }
}

TEST_F(PredicateTest, SkipsFragmentsByStatistics) {
  // Two fragments with disjoint value ranges; a predicate matching only
  // one must not open the other.
  const Shape shape{64, 64};
  FragmentStore store(dir_, shape);

  CoordBuffer low(2);
  low.append({1, 1});
  low.append({2, 2});
  const std::vector<value_t> low_values{1.0, 2.0};
  store.write(low, low_values, OrgKind::kLinear);

  CoordBuffer high(2);
  high.append({3, 3});
  high.append({4, 4});
  const std::vector<value_t> high_values{1000.0, 2000.0};
  store.write(high, high_values, OrgKind::kLinear);

  const ReadResult result = store.scan_region_where(
      Box::whole(shape), ValueRange::at_least(500.0));
  EXPECT_EQ(result.fragments_visited, 1u);
  EXPECT_EQ(result.values, (std::vector<value_t>{1000.0, 2000.0}));
}

TEST_F(PredicateTest, StatisticsSurviveRescan) {
  const Shape shape{64, 64};
  {
    FragmentStore store(dir_, shape);
    CoordBuffer coords(2);
    coords.append({1, 1});
    const std::vector<value_t> values{42.0};
    store.write(coords, values, OrgKind::kCoo);
  }
  FragmentStore reopened(dir_, shape);
  // A range excluding 42 must prune the (only) fragment on the header
  // statistics alone.
  const ReadResult miss = reopened.scan_region_where(
      Box::whole(shape), ValueRange::at_least(100.0));
  EXPECT_EQ(miss.fragments_visited, 0u);
  const ReadResult hit = reopened.scan_region_where(
      Box::whole(shape), ValueRange{42.0, 42.0});
  EXPECT_EQ(hit.values.size(), 1u);
}

TEST_F(PredicateTest, InvertedRangeRejected) {
  FragmentStore store(dir_, Shape{8, 8});
  EXPECT_THROW(
      store.scan_region_where(Box::whole(Shape{8, 8}), ValueRange{5.0, 1.0}),
      FormatError);
}

TEST_F(PredicateTest, DefaultRangeEqualsPlainScan) {
  const Shape shape{32, 32};
  FragmentStore store(dir_, shape);
  const SparseDataset dataset = make_dataset(shape, MspConfig{0.02, 0.5}, 6);
  store.write(dataset.coords, dataset.values, OrgKind::kCsf);
  const Box region({4, 4}, {28, 28});
  const ReadResult plain = store.scan_region(region);
  const ReadResult with_default =
      store.scan_region_where(region, ValueRange{});
  EXPECT_EQ(plain.values, with_default.values);
}

}  // namespace
}  // namespace artsparse
