#include "formats/bcsr.hpp"

#include <gtest/gtest.h>

#include "core/sort.hpp"
#include "formats/linear.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

using testing::fig1_coords;
using testing::fig1_shape;

TEST(Bcsr, Fig1Structure) {
  // Fig. 1 local boundary -> 2-D shape 2x9 (like GCSR++), cells (0,0),
  // (0,2), (0,3), (1,7), (1,8). One block row, blocks (0,0) and (0,1).
  BcsrFormat bcsr;
  const auto map = bcsr.build(fig1_coords(), fig1_shape());
  EXPECT_EQ(bcsr.rows(), 2u);
  EXPECT_EQ(bcsr.cols(), 9u);
  ASSERT_EQ(bcsr.block_count(), 2u);
  EXPECT_EQ(bcsr.block_col()[0], 0u);
  EXPECT_EQ(bcsr.block_col()[1], 1u);
  // Block (0,0): bits (0,0)=0, (0,2)=2, (0,3)=3, (1,7)=15.
  EXPECT_EQ(bcsr.block_bitmap()[0],
            (1ull << 0) | (1ull << 2) | (1ull << 3) | (1ull << 15));
  // Block (0,1): cell (1,8) -> local col 0, row 1 -> bit 8.
  EXPECT_EQ(bcsr.block_bitmap()[1], 1ull << 8);
  EXPECT_TRUE(is_permutation_of_iota(map));
}

TEST(Bcsr, LookupThroughMap) {
  BcsrFormat bcsr;
  const CoordBuffer coords = fig1_coords();
  const auto map = bcsr.build(coords, fig1_shape());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(bcsr.lookup(coords.point(i)), map[i]);
  }
  const std::vector<index_t> absent{0, 0, 2};
  const std::vector<index_t> outside{0, 0, 0};
  EXPECT_EQ(bcsr.lookup(absent), kNotFound);
  EXPECT_EQ(bcsr.lookup(outside), kNotFound);
}

TEST(Bcsr, DenseBlockCompressesFarBelowLinear) {
  // A fully dense 32x32 patch: 1024 points. LINEAR stores 1024 words;
  // BCSR stores 16 blocks x ~4 words.
  CoordBuffer coords(2);
  for (index_t r = 100; r < 132; ++r) {
    for (index_t c = 200; c < 232; ++c) {
      coords.append({r, c});
    }
  }
  const Shape shape{512, 512};
  BcsrFormat bcsr;
  bcsr.build(coords, shape);
  LinearFormat linear;
  linear.build(coords, shape);
  EXPECT_LT(bcsr.index_bytes(), linear.index_bytes() / 4);
  EXPECT_EQ(bcsr.block_count(), 16u);
  // Every point still resolves.
  for (std::size_t i = 0; i < coords.size(); i += 37) {
    EXPECT_NE(bcsr.lookup(coords.point(i)), kNotFound);
  }
}

TEST(Bcsr, SlotsArePackedNotPadded) {
  // Two sparse points in one block: slots 0 and 1, not bit positions.
  CoordBuffer coords(2);
  coords.append({0, 0});
  coords.append({7, 7});
  BcsrFormat bcsr;
  const auto map = bcsr.build(coords, Shape{16, 16});
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(bcsr.lookup(coords.point(0)), map[0]);
  EXPECT_EQ(bcsr.lookup(coords.point(1)), map[1]);
  EXPECT_LT(std::max(map[0], map[1]), 2u);
}

TEST(Bcsr, SaveLoadRoundTrip) {
  BcsrFormat bcsr;
  const CoordBuffer coords = fig1_coords();
  const auto map = bcsr.build(coords, fig1_shape());
  BcsrFormat fresh;
  testing::reload(bcsr, fresh);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(fresh.lookup(coords.point(i)), map[i]);
  }
}

TEST(Bcsr, CorruptPopcountRejectedOnLoad) {
  BcsrFormat bcsr;
  bcsr.build(fig1_coords(), fig1_shape());
  BufferWriter writer;
  bcsr.save(writer);
  Bytes bytes = writer.take();
  // Flip a bitmap bit: the popcount/block_start invariants must catch it.
  bytes[bytes.size() - 8 * 5] ^= std::byte{0x01};
  BcsrFormat fresh;
  BufferReader reader(bytes);
  EXPECT_THROW(fresh.load(reader), FormatError);
}

TEST(Bcsr, EmptyBuild) {
  BcsrFormat bcsr;
  EXPECT_TRUE(bcsr.build(CoordBuffer(2), Shape{8, 8}).empty());
  const std::vector<index_t> point{0, 0};
  EXPECT_EQ(bcsr.lookup(point), kNotFound);
  EXPECT_EQ(bcsr.block_count(), 0u);
}

TEST(Bcsr, HighRankViaGcsrMapping) {
  CoordBuffer coords(4);
  coords.append({1, 2, 3, 4});
  coords.append({1, 2, 3, 5});
  coords.append({5, 5, 5, 5});
  BcsrFormat bcsr;
  const auto map = bcsr.build(coords, Shape{8, 8, 8, 8});
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(bcsr.lookup(coords.point(i)), map[i]);
  }
}

}  // namespace
}  // namespace artsparse
