#include "core/coords.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace artsparse {
namespace {

TEST(CoordBuffer, AppendAndAccess) {
  CoordBuffer coords(3);
  coords.append({1, 2, 3});
  coords.append({4, 5, 6});
  EXPECT_EQ(coords.size(), 2u);
  EXPECT_EQ(coords.rank(), 3u);
  EXPECT_EQ(coords.at(0, 2), 3u);
  EXPECT_EQ(coords.at(1, 0), 4u);
  const auto p = coords.point(1);
  EXPECT_EQ(p[1], 5u);
}

TEST(CoordBuffer, FromFlatVector) {
  const CoordBuffer coords(2, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(coords.size(), 3u);
  EXPECT_EQ(coords.at(2, 1), 6u);
}

TEST(CoordBuffer, FlatLengthMustBeMultipleOfRank) {
  EXPECT_THROW(CoordBuffer(2, {1, 2, 3}), FormatError);
}

TEST(CoordBuffer, ZeroRankFlatRejected) {
  EXPECT_THROW(CoordBuffer(0, {1}), FormatError);
}

TEST(CoordBuffer, WrongRankAppendRejected) {
  CoordBuffer coords(2);
  EXPECT_THROW(coords.append({1, 2, 3}), FormatError);
}

TEST(CoordBuffer, OutOfRangeAccessRejected) {
  CoordBuffer coords(2);
  coords.append({1, 2});
  EXPECT_THROW(coords.point(1), FormatError);
  EXPECT_THROW(coords.at(0, 2), FormatError);
}

TEST(CoordBuffer, Permuted) {
  CoordBuffer coords(2);
  coords.append({0, 0});
  coords.append({1, 1});
  coords.append({2, 2});
  const std::vector<std::size_t> perm{2, 0, 1};
  const CoordBuffer shuffled = coords.permuted(perm);
  EXPECT_EQ(shuffled.at(0, 0), 2u);
  EXPECT_EQ(shuffled.at(1, 0), 0u);
  EXPECT_EQ(shuffled.at(2, 0), 1u);
}

TEST(CoordBuffer, PermutedLengthMismatchRejected) {
  CoordBuffer coords(2);
  coords.append({0, 0});
  const std::vector<std::size_t> perm{0, 0};
  EXPECT_THROW(coords.permuted(perm), FormatError);
}

TEST(CoordBuffer, Equality) {
  CoordBuffer a(2);
  a.append({1, 2});
  CoordBuffer b(2);
  b.append({1, 2});
  EXPECT_TRUE(a == b);
  b.append({3, 4});
  EXPECT_FALSE(a == b);
}

TEST(CoordBuffer, ClearAndEmpty) {
  CoordBuffer coords(2);
  EXPECT_TRUE(coords.empty());
  coords.append({1, 2});
  EXPECT_FALSE(coords.empty());
  coords.clear();
  EXPECT_TRUE(coords.empty());
  EXPECT_EQ(coords.rank(), 2u);  // rank survives clear
}

}  // namespace
}  // namespace artsparse
