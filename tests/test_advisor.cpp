#include "advisor/advisor.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "patterns/dataset.hpp"

namespace artsparse {
namespace {

// ---------- profiling ----------

TEST(Profile, BasicCounts) {
  CoordBuffer coords(2);
  coords.append({0, 0});
  coords.append({0, 1});
  coords.append({3, 3});
  const SparsityProfile profile = profile_sparsity(coords, Shape{4, 4});
  EXPECT_EQ(profile.point_count, 3u);
  EXPECT_EQ(profile.rank, 2u);
  EXPECT_NEAR(profile.density, 3.0 / 16.0, 1e-12);
}

TEST(Profile, CsfLevelNodesMatchTree) {
  // Two shared roots: {0: [0, 1], 3: [3]} -> levels (2, 3).
  CoordBuffer coords(2);
  coords.append({0, 0});
  coords.append({0, 1});
  coords.append({3, 3});
  const SparsityProfile profile = profile_sparsity(coords, Shape{4, 4});
  EXPECT_EQ(profile.csf_level_nodes,
            (std::vector<std::size_t>{2, 3}));
}

TEST(Profile, DiagonalDataIsBanded) {
  CoordBuffer coords(2);
  for (index_t i = 0; i < 32; ++i) coords.append({i, i});
  const SparsityProfile profile = profile_sparsity(coords, Shape{32, 32});
  EXPECT_DOUBLE_EQ(profile.banded_fraction, 1.0);
}

TEST(Profile, ScatteredCornersAreNotBanded) {
  CoordBuffer coords(2);
  coords.append({0, 31});
  coords.append({31, 0});
  const SparsityProfile profile = profile_sparsity(coords, Shape{32, 32});
  EXPECT_DOUBLE_EQ(profile.banded_fraction, 0.0);
}

TEST(Profile, ClusteredDataDetected) {
  // Everything in one tiny corner block.
  CoordBuffer coords(2);
  for (index_t r = 0; r < 4; ++r) {
    for (index_t c = 0; c < 4; ++c) {
      coords.append({r, c});
    }
  }
  const SparsityProfile profile = profile_sparsity(coords, Shape{64, 64});
  EXPECT_DOUBLE_EQ(profile.cluster_fraction, 1.0);
}

TEST(Profile, EmptyInput) {
  const SparsityProfile profile =
      profile_sparsity(CoordBuffer(2), Shape{8, 8});
  EXPECT_EQ(profile.point_count, 0u);
  EXPECT_TRUE(profile.csf_level_nodes.empty());
}

TEST(Profile, CsfIndexWordsFormula) {
  SparsityProfile profile;
  profile.csf_level_nodes = {2, 4, 5};
  // levels(3) + fids(2+4+5) + fptr((2+1) + (4+1)) = 22
  EXPECT_EQ(profile.csf_index_words(), 22u);
}

TEST(Profile, ToStringMentionsKeyFields) {
  CoordBuffer coords(2);
  coords.append({1, 1});
  const SparsityProfile profile = profile_sparsity(coords, Shape{4, 4});
  const std::string s = profile.to_string();
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

// ---------- recommendation ----------

SparsityProfile sample_profile(std::size_t n = 100000) {
  const Shape shape{256, 256, 256};
  const SparseDataset dataset =
      make_dataset(shape, GspConfig{static_cast<double>(n) /
                                    static_cast<double>(shape.element_count())},
                   17);
  return profile_sparsity(dataset.coords, shape);
}

TEST(Advisor, RankingCoversPaperOrganizations) {
  const Recommendation rec = recommend_organization(
      sample_profile(), WorkloadWeights::balanced());
  EXPECT_EQ(rec.ranking.size(), 5u);
  for (std::size_t i = 1; i < rec.ranking.size(); ++i) {
    EXPECT_LE(rec.ranking[i - 1].weighted_score,
              rec.ranking[i].weighted_score);
  }
}

TEST(Advisor, ReadHeavyNeverPicksScanFormats) {
  const Recommendation rec = recommend_organization(
      sample_profile(), WorkloadWeights::read_mostly());
  EXPECT_NE(rec.best().org, OrgKind::kCoo);
  EXPECT_NE(rec.best().org, OrgKind::kLinear);
}

TEST(Advisor, SpaceHeavyAvoidsCoo) {
  const Recommendation rec = recommend_organization(
      sample_profile(), WorkloadWeights::archival());
  EXPECT_NE(rec.best().org, OrgKind::kCoo);
}

TEST(Advisor, BalancedMatchesPaperFindingLinearOrGcsr) {
  // Table IV: LINEAR wins with GCSR++ a close second.
  const Recommendation rec = recommend_organization(
      sample_profile(), WorkloadWeights::balanced(),
      /*queries_per_write=*/0.001);
  const OrgKind best = rec.best().org;
  EXPECT_TRUE(best == OrgKind::kLinear || best == OrgKind::kGcsr)
      << to_string(best);
}

TEST(Advisor, RationaleIsNonEmpty) {
  const Recommendation rec = recommend_organization(
      sample_profile(), WorkloadWeights::balanced());
  for (const CostEstimate& e : rec.ranking) {
    EXPECT_FALSE(e.rationale.empty()) << to_string(e.org);
  }
}

TEST(Advisor, EmptyProfileRejected) {
  SparsityProfile empty;
  EXPECT_THROW(
      recommend_organization(empty, WorkloadWeights::balanced()),
      FormatError);
}

TEST(Advisor, ZeroWeightsRejected) {
  EXPECT_THROW(
      recommend_organization(sample_profile(), WorkloadWeights{0, 0, 0}),
      FormatError);
}

TEST(Advisor, ScoresAreNormalized) {
  const Recommendation rec = recommend_organization(
      sample_profile(), WorkloadWeights::balanced());
  for (const CostEstimate& e : rec.ranking) {
    EXPECT_GT(e.weighted_score, 0.0);
    EXPECT_LE(e.weighted_score, 1.0);
  }
}

}  // namespace
}  // namespace artsparse
