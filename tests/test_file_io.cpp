#include "storage/file_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/error.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

class FileIo : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = testing::fresh_temp_dir("fileio"); }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
};

Bytes make_payload(std::size_t n) {
  Bytes payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<std::byte>(i * 31 % 251);
  }
  return payload;
}

TEST_F(FileIo, WriteReadRoundTrip) {
  const auto path = (dir_ / "data.bin").string();
  const Bytes payload = make_payload(4096);
  write_file(path, payload);
  EXPECT_EQ(read_file(path), payload);
}

TEST_F(FileIo, ReadAtOffset) {
  const auto path = (dir_ / "data.bin").string();
  const Bytes payload = make_payload(1000);
  write_file(path, payload);

  PosixFile file(path, PosixFile::Mode::kRead);
  const Bytes middle = file.read_at(100, 50);
  EXPECT_EQ(middle, Bytes(payload.begin() + 100, payload.begin() + 150));
}

TEST_F(FileIo, SizeReportsBytesWritten) {
  const auto path = (dir_ / "data.bin").string();
  PosixFile file(path, PosixFile::Mode::kWriteTruncate);
  file.write_all(make_payload(123));
  file.sync();
  EXPECT_EQ(file.size(), 123u);
}

TEST_F(FileIo, TruncateModeReplacesContent) {
  const auto path = (dir_ / "data.bin").string();
  write_file(path, make_payload(100));
  write_file(path, make_payload(10));
  EXPECT_EQ(read_file(path).size(), 10u);
}

TEST_F(FileIo, MissingFileThrowsIoError) {
  EXPECT_THROW(read_file((dir_ / "absent.bin").string()), IoError);
}

TEST_F(FileIo, ReadPastEndThrows) {
  const auto path = (dir_ / "data.bin").string();
  write_file(path, make_payload(8));
  PosixFile file(path, PosixFile::Mode::kRead);
  EXPECT_THROW(file.read_at(0, 9), IoError);
}

TEST_F(FileIo, ErrorMessageCarriesPath) {
  try {
    read_file((dir_ / "absent.bin").string());
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("absent.bin"), std::string::npos);
  }
}

TEST_F(FileIo, EmptyFileRoundTrip) {
  const auto path = (dir_ / "empty.bin").string();
  write_file(path, Bytes{});
  EXPECT_TRUE(read_file(path).empty());
}

}  // namespace
}  // namespace artsparse
