#include "formats/gcsc.hpp"

#include <gtest/gtest.h>

#include "core/sort.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

using testing::fig1_coords;
using testing::fig1_shape;

// Same local boundary as GCSR++ ([0..2, 0..2, 1..2], local shape (3,3,2)),
// but the smallest extent (2) becomes the *columns*: 2-D shape 9x2. Local
// addresses 0, 2, 3, 16, 17 give (row, col) = (0,0), (1,0), (1,1), (8,0),
// (8,1); sorting by column groups inputs {0, 1, 3} then {2, 4}.
TEST(Gcsc, Fig1Structure) {
  GcscFormat gcsc;
  const auto map = gcsc.build(fig1_coords(), fig1_shape());
  EXPECT_EQ(gcsc.rows(), 9u);
  EXPECT_EQ(gcsc.cols(), 2u);
  EXPECT_EQ(std::vector<index_t>(gcsc.col_ptr().begin(),
                                 gcsc.col_ptr().end()),
            (std::vector<index_t>{0, 3, 5}));
  EXPECT_EQ(std::vector<index_t>(gcsc.row_ind().begin(),
                                 gcsc.row_ind().end()),
            (std::vector<index_t>{0, 1, 8, 1, 8}));
  EXPECT_EQ(map, (std::vector<std::size_t>{0, 1, 3, 2, 4}));
}

TEST(Gcsc, LookupFindsEveryStoredPoint) {
  GcscFormat gcsc;
  const CoordBuffer coords = fig1_coords();
  const auto map = gcsc.build(coords, fig1_shape());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(gcsc.lookup(coords.point(i)), map[i]);
  }
}

TEST(Gcsc, MissesAbsentPoints) {
  GcscFormat gcsc;
  gcsc.build(fig1_coords(), fig1_shape());
  const std::vector<index_t> absent{0, 0, 2};
  const std::vector<index_t> outside{0, 0, 0};
  EXPECT_EQ(gcsc.lookup(absent), kNotFound);
  EXPECT_EQ(gcsc.lookup(outside), kNotFound);
}

TEST(Gcsc, ColPtrMonotoneAndCoversAllPoints) {
  GcscFormat gcsc;
  gcsc.build(fig1_coords(), fig1_shape());
  const auto col_ptr = gcsc.col_ptr();
  for (std::size_t c = 1; c < col_ptr.size(); ++c) {
    EXPECT_LE(col_ptr[c - 1], col_ptr[c]);
  }
  EXPECT_EQ(col_ptr.back(), gcsc.point_count());
}

TEST(Gcsc, MapIsAlwaysPermutation) {
  CoordBuffer coords(3);
  coords.append({5, 0, 3});
  coords.append({0, 2, 1});
  coords.append({3, 1, 0});
  coords.append({1, 1, 1});
  GcscFormat gcsc;
  const auto map = gcsc.build(coords, Shape{8, 8, 8});
  EXPECT_TRUE(is_permutation_of_iota(map));
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(gcsc.lookup(coords.point(i)), map[i]);
  }
}

TEST(Gcsc, SameIndexSizeAsGcsr) {
  // Fig. 4: GCSR++ and GCSC++ yield "very similar" sizes — both store n
  // index words plus min(m)+1 pointers.
  GcscFormat gcsc;
  gcsc.build(fig1_coords(), fig1_shape());
  const std::size_t expected_words = 5 + (2 + 1);
  EXPECT_GE(gcsc.index_bytes(), expected_words * sizeof(index_t));
  EXPECT_LT(gcsc.index_bytes(), 5 * 3 * sizeof(index_t) + 96);
}

TEST(Gcsc, SaveLoadRoundTrip) {
  GcscFormat gcsc;
  const CoordBuffer coords = fig1_coords();
  const auto map = gcsc.build(coords, fig1_shape());
  GcscFormat fresh;
  testing::reload(gcsc, fresh);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(fresh.lookup(coords.point(i)), map[i]);
  }
}

TEST(Gcsc, BatchReadMatchesLookup) {
  GcscFormat gcsc;
  gcsc.build(fig1_coords(), fig1_shape());
  CoordBuffer queries(3);
  queries.append({2, 2, 2});
  queries.append({0, 0, 1});
  queries.append({1, 1, 1});
  const auto slots = gcsc.read(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(slots[i], gcsc.lookup(queries.point(i)));
  }
}

TEST(Gcsc, EmptyBuild) {
  GcscFormat gcsc;
  EXPECT_TRUE(gcsc.build(CoordBuffer(3), fig1_shape()).empty());
  const std::vector<index_t> point{0, 0, 1};
  EXPECT_EQ(gcsc.lookup(point), kNotFound);
}

TEST(Gcsc, CorruptPayloadRejectedOnLoad) {
  GcscFormat gcsc;
  gcsc.build(fig1_coords(), fig1_shape());
  BufferWriter writer;
  gcsc.save(writer);
  Bytes bytes = writer.take();
  bytes.resize(bytes.size() - 8);
  GcscFormat fresh;
  BufferReader reader(bytes);
  EXPECT_THROW(fresh.load(reader), FormatError);
}

}  // namespace
}  // namespace artsparse
