#include "formats/coo.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace artsparse {
namespace {

using testing::fig1_coords;
using testing::fig1_shape;

TEST(Coo, BuildReturnsIdentityMap) {
  CooFormat coo;
  const auto map = coo.build(fig1_coords(), fig1_shape());
  EXPECT_EQ(map, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(coo.point_count(), 5u);
}

TEST(Coo, LookupFindsEveryStoredPoint) {
  CooFormat coo;
  const CoordBuffer coords = fig1_coords();
  coo.build(coords, fig1_shape());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(coo.lookup(coords.point(i)), i);
  }
}

TEST(Coo, LookupMissesAbsentPoint) {
  CooFormat coo;
  coo.build(fig1_coords(), fig1_shape());
  const std::vector<index_t> absent{1, 1, 1};
  EXPECT_EQ(coo.lookup(absent), kNotFound);
}

TEST(Coo, LookupRejectsWrongRank) {
  CooFormat coo;
  coo.build(fig1_coords(), fig1_shape());
  const std::vector<index_t> wrong{1, 1};
  EXPECT_EQ(coo.lookup(wrong), kNotFound);
}

TEST(Coo, PreservesInputOrderIncludingUnsorted) {
  CoordBuffer coords(2);
  coords.append({5, 5});
  coords.append({0, 0});  // deliberately out of order
  CooFormat coo;
  coo.build(coords, Shape{8, 8});
  EXPECT_EQ(coo.coords().at(0, 0), 5u);
  const std::vector<index_t> first{5, 5};
  EXPECT_EQ(coo.lookup(first), 0u);
}

TEST(Coo, SaveLoadRoundTrip) {
  CooFormat coo;
  const CoordBuffer coords = fig1_coords();
  coo.build(coords, fig1_shape());
  CooFormat fresh;
  testing::reload(coo, fresh);
  EXPECT_EQ(fresh.point_count(), 5u);
  EXPECT_EQ(fresh.tensor_shape(), fig1_shape());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(fresh.lookup(coords.point(i)), i);
  }
}

TEST(Coo, IndexBytesAreOrderDTimesN) {
  // Space complexity O(n * d): the dominant payload is n*d coordinate
  // words.
  CooFormat coo;
  coo.build(fig1_coords(), fig1_shape());
  const std::size_t payload = 5 * 3 * sizeof(index_t);
  EXPECT_GE(coo.index_bytes(), payload);
  EXPECT_LE(coo.index_bytes(), payload + 64);  // header slack
}

TEST(Coo, EmptyBuild) {
  CooFormat coo;
  const auto map = coo.build(CoordBuffer(3), fig1_shape());
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(coo.point_count(), 0u);
  const std::vector<index_t> point{0, 0, 1};
  EXPECT_EQ(coo.lookup(point), kNotFound);
}

TEST(Coo, RankMismatchRejected) {
  CooFormat coo;
  EXPECT_THROW(coo.build(CoordBuffer(2), fig1_shape()), FormatError);
}

TEST(Coo, BulkReadMatchesLookup) {
  CooFormat coo;
  const CoordBuffer coords = fig1_coords();
  coo.build(coords, fig1_shape());
  CoordBuffer queries(3);
  queries.append({0, 1, 2});
  queries.append({1, 1, 1});
  queries.append({2, 2, 2});
  const auto slots = coo.read(queries);
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0], 2u);
  EXPECT_EQ(slots[1], kNotFound);
  EXPECT_EQ(slots[2], 4u);
}

}  // namespace
}  // namespace artsparse
