#include "storage/fragment_store.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "core/linearize.hpp"
#include "patterns/dataset.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

class FragmentStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = testing::fresh_temp_dir("store"); }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
};

CoordBuffer grid_points(index_t lo, index_t hi) {
  CoordBuffer coords(2);
  for (index_t r = lo; r <= hi; ++r) {
    for (index_t c = lo; c <= hi; ++c) {
      coords.append({r, c});
    }
  }
  return coords;
}

std::vector<value_t> address_values(const CoordBuffer& coords,
                                    const Shape& shape) {
  std::vector<value_t> values;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    values.push_back(expected_value(coords.point(i), shape));
  }
  return values;
}

TEST_F(FragmentStoreTest, WriteCreatesOneFragmentFile) {
  const Shape shape{64, 64};
  FragmentStore store(dir_, shape);
  const CoordBuffer coords = grid_points(0, 3);
  const WriteResult result =
      store.write(coords, address_values(coords, shape), OrgKind::kLinear);
  EXPECT_EQ(store.fragment_count(), 1u);
  EXPECT_TRUE(std::filesystem::exists(result.path));
  EXPECT_EQ(result.point_count, 16u);
  EXPECT_GT(result.file_bytes, 0u);
  EXPECT_EQ(std::filesystem::file_size(result.path), result.file_bytes);
}

TEST_F(FragmentStoreTest, ReadReturnsPointsSortedByLinearAddress) {
  const Shape shape{64, 64};
  FragmentStore store(dir_, shape);
  CoordBuffer coords(2);
  coords.append({5, 5});
  coords.append({1, 2});
  coords.append({3, 0});
  store.write(coords, address_values(coords, shape), OrgKind::kCoo);

  CoordBuffer queries(2);
  queries.append({5, 5});
  queries.append({3, 0});
  queries.append({1, 2});
  queries.append({7, 7});  // absent
  const ReadResult result = store.read(queries);
  ASSERT_EQ(result.values.size(), 3u);
  for (std::size_t i = 1; i < result.values.size(); ++i) {
    EXPECT_LT(linearize(result.coords.point(i - 1), shape),
              linearize(result.coords.point(i), shape));
  }
  for (std::size_t i = 0; i < result.values.size(); ++i) {
    EXPECT_EQ(result.values[i],
              expected_value(result.coords.point(i), shape));
  }
}

TEST_F(FragmentStoreTest, ReadRegionFindsExactlyRegionPoints) {
  const Shape shape{64, 64};
  FragmentStore store(dir_, shape);
  const CoordBuffer coords = grid_points(0, 15);
  store.write(coords, address_values(coords, shape), OrgKind::kGcsr);

  const Box region({4, 4}, {7, 9});
  const ReadResult result = store.read_region(region);
  EXPECT_EQ(result.values.size(), region.cell_count());
}

TEST_F(FragmentStoreTest, MultipleFragmentsAreMerged) {
  const Shape shape{64, 64};
  FragmentStore store(dir_, shape);
  const CoordBuffer a = grid_points(0, 3);
  const CoordBuffer b = grid_points(8, 11);
  store.write(a, address_values(a, shape), OrgKind::kLinear);
  store.write(b, address_values(b, shape), OrgKind::kCsf);
  EXPECT_EQ(store.fragment_count(), 2u);

  const Box region({0, 0}, {15, 15});
  const ReadResult result = store.read_region(region);
  EXPECT_EQ(result.values.size(), a.size() + b.size());
  EXPECT_EQ(result.fragments_visited, 2u);
}

TEST_F(FragmentStoreTest, DiscoverySkipsNonOverlappingFragments) {
  const Shape shape{64, 64};
  FragmentStore store(dir_, shape);
  const CoordBuffer a = grid_points(0, 3);
  const CoordBuffer b = grid_points(40, 43);
  store.write(a, address_values(a, shape), OrgKind::kLinear);
  store.write(b, address_values(b, shape), OrgKind::kLinear);

  CoordBuffer queries(2);
  queries.append({41, 41});
  const ReadResult result = store.read(queries);
  EXPECT_EQ(result.fragments_visited, 1u);
  ASSERT_EQ(result.values.size(), 1u);
}

TEST_F(FragmentStoreTest, EveryOrganizationRoundTrips) {
  const Shape shape{32, 32, 32};
  const SparseDataset dataset =
      make_dataset(shape, GspConfig{0.02}, /*seed=*/7);
  const Box region({8, 8, 8}, {23, 23, 23});

  for (OrgKind org : kPaperOrgs) {
    const auto subdir = dir_ / to_string(org);
    FragmentStore store(subdir, shape);
    store.write(dataset.coords, dataset.values, org);
    const ReadResult result = store.read_region(region);

    std::size_t expected = 0;
    for (std::size_t i = 0; i < dataset.coords.size(); ++i) {
      if (region.contains(dataset.coords.point(i))) ++expected;
    }
    EXPECT_EQ(result.values.size(), expected) << to_string(org);
    for (std::size_t i = 0; i < result.values.size(); ++i) {
      EXPECT_EQ(result.values[i],
                expected_value(result.coords.point(i), shape))
          << to_string(org);
    }
  }
}

TEST_F(FragmentStoreTest, RescanRecoversFragmentsFromDisk) {
  const Shape shape{64, 64};
  const CoordBuffer coords = grid_points(2, 5);
  {
    FragmentStore store(dir_, shape);
    store.write(coords, address_values(coords, shape), OrgKind::kGcsc);
  }
  // A brand-new store instance over the same directory sees the fragment.
  FragmentStore reopened(dir_, shape);
  EXPECT_EQ(reopened.fragment_count(), 1u);
  CoordBuffer queries(2);
  queries.append({3, 3});
  const ReadResult result = reopened.read(queries);
  ASSERT_EQ(result.values.size(), 1u);
  EXPECT_EQ(result.values[0], expected_value(queries.point(0), shape));
}

TEST_F(FragmentStoreTest, RescanRejectsForeignShape) {
  {
    FragmentStore store(dir_, Shape{64, 64});
    const CoordBuffer coords = grid_points(0, 2);
    store.write(coords, address_values(coords, Shape{64, 64}),
                OrgKind::kCoo);
  }
  EXPECT_THROW(FragmentStore(dir_, Shape{32, 32}), FormatError);
}

TEST_F(FragmentStoreTest, ClearRemovesFilesAndState) {
  const Shape shape{64, 64};
  FragmentStore store(dir_, shape);
  const CoordBuffer coords = grid_points(0, 3);
  const WriteResult written =
      store.write(coords, address_values(coords, shape), OrgKind::kCoo);
  store.clear();
  EXPECT_EQ(store.fragment_count(), 0u);
  EXPECT_FALSE(std::filesystem::exists(written.path));
  EXPECT_EQ(store.total_file_bytes(), 0u);
}

TEST_F(FragmentStoreTest, WriteTimesAreBrokenDown) {
  const Shape shape{64, 64};
  FragmentStore store(dir_, shape);
  const CoordBuffer coords = grid_points(0, 15);
  const WriteResult result =
      store.write(coords, address_values(coords, shape), OrgKind::kGcsc);
  EXPECT_GE(result.times.build, 0.0);
  EXPECT_GT(result.times.total(), 0.0);
}

TEST_F(FragmentStoreTest, MismatchedValueCountRejected) {
  FragmentStore store(dir_, Shape{8, 8});
  CoordBuffer coords(2);
  coords.append({1, 1});
  const std::vector<value_t> values{1.0, 2.0};
  EXPECT_THROW(store.write(coords, values, OrgKind::kCoo), FormatError);
}

TEST_F(FragmentStoreTest, EmptyQueryReturnsEmpty) {
  FragmentStore store(dir_, Shape{8, 8});
  const ReadResult result = store.read(CoordBuffer(2));
  EXPECT_TRUE(result.values.empty());
  EXPECT_EQ(result.fragments_visited, 0u);
}

TEST_F(FragmentStoreTest, CompressedStoreRoundTrips) {
  const Shape shape{64, 64};
  FragmentStore store(dir_, shape, DeviceModel::unthrottled(),
                      CodecKind::kDeltaVarint);
  const CoordBuffer coords = grid_points(0, 9);
  store.write(coords, address_values(coords, shape), OrgKind::kLinear);
  const ReadResult result = store.read_region(Box({0, 0}, {9, 9}));
  EXPECT_EQ(result.values.size(), coords.size());
}

TEST_F(FragmentStoreTest, ParallelReadRegionMatchesSequentialBehavior) {
  // The parallel fan-out must stay byte-identical to the seed's sequential
  // per-fragment loop: same coordinates, same values, same order.
  const Shape shape{64, 64};
  FragmentStore store(dir_, shape);
  for (index_t base : {index_t{0}, index_t{8}, index_t{4}}) {
    // The third fragment overlaps the first two, so merge order matters.
    CoordBuffer coords(2);
    std::vector<value_t> values;
    for (index_t r = base; r < base + 8; ++r) {
      for (index_t c = base; c < base + 8; ++c) {
        coords.append({r, c});
        values.push_back(static_cast<value_t>(base + 1) * 1000.0 +
                         static_cast<value_t>(linearize(
                             std::vector<index_t>{r, c}, shape)));
      }
    }
    store.write(coords, values, OrgKind::kGcsr);
  }

  const Box region({0, 0}, {15, 15});
  // Sequential baseline: force a single worker via ARTSPARSE_THREADS.
  ::setenv("ARTSPARSE_THREADS", "1", 1);
  const ReadResult sequential = store.read_region(region);
  ::unsetenv("ARTSPARSE_THREADS");
  const ReadResult parallel = store.read_region(region);

  ASSERT_EQ(parallel.values.size(), sequential.values.size());
  EXPECT_TRUE(parallel.coords == sequential.coords);
  EXPECT_EQ(parallel.values, sequential.values);

  const ReadResult scan_seq = [&] {
    ::setenv("ARTSPARSE_THREADS", "1", 1);
    const ReadResult r = store.scan_region(region);
    ::unsetenv("ARTSPARSE_THREADS");
    return r;
  }();
  const ReadResult scan_par = store.scan_region(region);
  EXPECT_TRUE(scan_par.coords == scan_seq.coords);
  EXPECT_EQ(scan_par.values, scan_seq.values);
}

TEST_F(FragmentStoreTest, ConcurrentReadsAreSafeAndIdentical) {
  // Exercises the whole concurrent read path: the mutex-guarded lazy
  // R-tree rebuild (the store is pushed past kRtreeThreshold so the first
  // reads race on it) and the thread-safe fragment cache.
  const Shape shape{256, 256};
  FragmentStore store(dir_, shape);
  for (index_t f = 0; f < 40; ++f) {
    CoordBuffer coords(2);
    std::vector<value_t> values;
    const index_t base = f * 6;
    for (index_t r = base; r < base + 6 && r < 256; ++r) {
      coords.append({r, (r * 7) % 256});
      values.push_back(static_cast<value_t>(f * 1000 + r));
    }
    store.write(coords, values, f % 2 == 0 ? OrgKind::kGcsr
                                           : OrgKind::kLinear);
  }

  const Box region({0, 0}, {255, 255});
  const ReadResult expected = store.scan_region(region);
  store.rescan();  // drop cache + R-tree so concurrent first reads race

  constexpr int kThreads = 8;
  constexpr int kRounds = 4;
  std::vector<ReadResult> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        results[t] = store.scan_region(region);
      }
    });
  }
  for (auto& worker : workers) worker.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(results[t].coords == expected.coords) << "thread " << t;
    EXPECT_EQ(results[t].values, expected.values) << "thread " << t;
  }
  // Every fragment was loaded at most a handful of times (concurrent
  // first misses may race), then served from cache.
  const CacheStats stats = store.cache().stats();
  EXPECT_GE(stats.hits, stats.misses);
}

TEST_F(FragmentStoreTest, CompressionShrinksFragments) {
  const Shape shape{256, 256};
  const CoordBuffer coords = grid_points(0, 63);
  const auto values = address_values(coords, shape);

  FragmentStore plain(dir_ / "plain", shape);
  FragmentStore packed(dir_ / "packed", shape, DeviceModel::unthrottled(),
                       CodecKind::kDeltaVarint);
  const auto plain_result = plain.write(coords, values, OrgKind::kLinear);
  const auto packed_result = packed.write(coords, values, OrgKind::kLinear);
  EXPECT_LT(packed_result.file_bytes, plain_result.file_bytes);
}

}  // namespace
}  // namespace artsparse
