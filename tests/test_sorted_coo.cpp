#include "formats/sorted_coo.hpp"

#include <gtest/gtest.h>

#include "core/linearize.hpp"
#include "test_support.hpp"

namespace artsparse {
namespace {

using testing::fig1_coords;
using testing::fig1_shape;

TEST(SortedCoo, SortsUnsortedInput) {
  CoordBuffer coords(2);
  coords.append({3, 3});
  coords.append({0, 1});
  coords.append({1, 2});
  SortedCooFormat format;
  const auto map = format.build(coords, Shape{4, 4});
  // Stored order must be ascending by linear address: (0,1), (1,2), (3,3).
  EXPECT_EQ(format.coords().at(0, 0), 0u);
  EXPECT_EQ(format.coords().at(1, 0), 1u);
  EXPECT_EQ(format.coords().at(2, 0), 3u);
  // map: input 0 -> slot 2, input 1 -> slot 0, input 2 -> slot 1.
  EXPECT_EQ(map, (std::vector<std::size_t>{2, 0, 1}));
}

TEST(SortedCoo, LookupFindsEveryStoredPointViaMap) {
  CoordBuffer coords(3);
  coords.append({2, 2, 2});
  coords.append({0, 0, 1});
  coords.append({0, 1, 2});
  SortedCooFormat format;
  const auto map = format.build(coords, fig1_shape());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(format.lookup(coords.point(i)), map[i]);
  }
}

TEST(SortedCoo, MissesAbsentPoints) {
  SortedCooFormat format;
  format.build(fig1_coords(), fig1_shape());
  const std::vector<index_t> below{0, 0, 0};
  const std::vector<index_t> between{1, 0, 0};
  const std::vector<index_t> above_all{2, 2, 2};
  EXPECT_EQ(format.lookup(below), kNotFound);
  EXPECT_EQ(format.lookup(between), kNotFound);
  EXPECT_NE(format.lookup(above_all), kNotFound);  // present: last point
}

TEST(SortedCoo, LexicographicOrderEqualsAddressOrder) {
  // The invariant binary search relies on.
  SortedCooFormat format;
  format.build(fig1_coords(), fig1_shape());
  const auto& sorted = format.coords();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LT(linearize(sorted.point(i - 1), fig1_shape()),
              linearize(sorted.point(i), fig1_shape()));
  }
}

TEST(SortedCoo, SaveLoadRoundTrip) {
  SortedCooFormat format;
  const CoordBuffer coords = fig1_coords();
  const auto map = format.build(coords, fig1_shape());
  SortedCooFormat fresh;
  testing::reload(format, fresh);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(fresh.lookup(coords.point(i)), map[i]);
  }
}

TEST(SortedCoo, EmptyBuild) {
  SortedCooFormat format;
  EXPECT_TRUE(format.build(CoordBuffer(2), Shape{4, 4}).empty());
  const std::vector<index_t> point{0, 0};
  EXPECT_EQ(format.lookup(point), kNotFound);
}

TEST(SortedCoo, SpaceMatchesCoo) {
  // Sorting trades build time for read time; space stays O(n * d).
  SortedCooFormat format;
  format.build(fig1_coords(), fig1_shape());
  const std::size_t payload = 5 * 3 * sizeof(index_t);
  EXPECT_GE(format.index_bytes(), payload);
}

}  // namespace
}  // namespace artsparse
