// Exporters: turn a MetricsSnapshot into Prometheus text exposition or
// structured JSON, and a trace snapshot into Chrome trace_event JSON
// (loadable in about://tracing / Perfetto) or a flat indented text dump.
// These are pure functions over snapshots so tests can assert on exact
// output and the CLI can serve any combination.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace artsparse::obs {

/// Prometheus text exposition format, version 0.0.4: one # HELP / # TYPE
/// pair per family, histograms expanded into cumulative `_bucket{le=...}`
/// series plus `_sum` and `_count`.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// {"metrics": [{"name": ..., "type": ..., "labels": {...}, ...}]} —
/// counters/gauges carry "value", histograms carry "count"/"sum"/
/// "buckets" (upper bound + cumulative count, +Inf last).
std::string to_json(const MetricsSnapshot& snapshot);

/// Chrome trace_event JSON: {"traceEvents": [...]} of complete ("X")
/// events, microsecond timestamps, span attributes under "args". Load the
/// output in about://tracing or ui.perfetto.dev.
std::string trace_to_chrome(const std::vector<SpanRecord>& spans);

/// Flat text dump, one line per span ordered by start time, indented by
/// nesting depth: "  write.build 1.234ms (store) org=gcsr".
std::string trace_to_text(const std::vector<SpanRecord>& spans);

/// Minimal JSON string escaping (quotes, backslashes, control bytes),
/// shared by every JSON emitter that grew out of this subsystem.
std::string json_escape(std::string_view text);

}  // namespace artsparse::obs
