#include "obs/metrics.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace artsparse::obs {

namespace detail {

std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace detail

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  artsparse::detail::require(
      std::is_sorted(bounds_.begin(), bounds_.end()),
      "histogram bucket bounds must be ascending");
  for (auto& shard : shards_) {
    shard.buckets =
        std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());
  Shard& shard = shards_[detail::this_thread_shard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add_double(shard.sum, value);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset() {
  for (auto& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

const std::vector<double>& default_time_buckets_ns() {
  // 1µs .. ~4.3s in powers of four: wide enough that a cache hit and a
  // throttled multi-second commit both land inside the bounded range.
  static const std::vector<double> buckets = [] {
    std::vector<double> bounds;
    double bound = 1e3;  // 1µs
    for (int i = 0; i < 12; ++i) {
      bounds.push_back(bound);
      bound *= 4.0;
    }
    return bounds;
  }();
  return buckets;
}

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

namespace {

/// Registry map key: name plus the sorted label pairs, rendered so equal
/// label sets always collide and different ones never do.
std::string metric_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [label, value] : labels) {
    key += '\x1f';
    key += label;
    key += '\x1e';
    key += value;
  }
  return key;
}

Labels sorted_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never dies
  return *instance;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    MetricKind kind, std::string_view name, std::string_view help,
    const Labels& labels, const std::vector<double>* bounds) {
  const Labels ordered = sorted_labels(labels);
  const std::string key = metric_key(name, ordered);
  const MutexLock lock(mutex_);
  auto it = metrics_.find(key);
  if (it != metrics_.end()) {
    artsparse::detail::require(
        it->second.kind == kind,
        "metric '" + std::string(name) + "' already registered as " +
            std::string(to_string(it->second.kind)));
    if (it->second.help.empty() && !help.empty()) {
      it->second.help = std::string(help);
    }
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.name = std::string(name);
  entry.help = std::string(help);
  entry.labels = ordered;
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry.histogram = std::make_unique<Histogram>(*bounds);
      break;
  }
  return metrics_.emplace(key, std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help,
                                  const Labels& labels) {
  return *find_or_create(MetricKind::kCounter, name, help, labels, nullptr)
              .counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              const Labels& labels) {
  return *find_or_create(MetricKind::kGauge, name, help, labels, nullptr)
              .gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      const Labels& labels,
                                      const std::vector<double>& bounds) {
  return *find_or_create(MetricKind::kHistogram, name, help, labels,
                         &bounds)
              .histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snapshot;
  const MutexLock lock(mutex_);
  snapshot.samples.reserve(metrics_.size());
  for (const auto& [key, entry] : metrics_) {
    MetricSample sample;
    sample.name = entry.name;
    sample.help = entry.help;
    sample.kind = entry.kind;
    sample.labels = entry.labels;
    switch (entry.kind) {
      case MetricKind::kCounter:
        sample.value = static_cast<double>(entry.counter->value());
        break;
      case MetricKind::kGauge:
        sample.value = static_cast<double>(entry.gauge->value());
        break;
      case MetricKind::kHistogram:
        sample.bucket_bounds = entry.histogram->bounds();
        sample.bucket_counts = entry.histogram->bucket_counts();
        sample.observation_count = entry.histogram->count();
        sample.observation_sum = entry.histogram->sum();
        break;
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

void MetricsRegistry::reset() {
  const MutexLock lock(mutex_);
  for (auto& [key, entry] : metrics_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->reset();
        break;
      case MetricKind::kGauge:
        break;  // live state owned by the instrument; see header
      case MetricKind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

std::size_t MetricsRegistry::metric_count() const {
  const MutexLock lock(mutex_);
  return metrics_.size();
}

const MetricSample* MetricsSnapshot::find(std::string_view name,
                                          const Labels& labels) const {
  const Labels ordered = sorted_labels(labels);
  for (const MetricSample& sample : samples) {
    if (sample.name != name) continue;
    if (!labels.empty() && sample.labels != ordered) continue;
    return &sample;
  }
  return nullptr;
}

double MetricsSnapshot::value(std::string_view name,
                              const Labels& labels) const {
  const MetricSample* sample = find(name, labels);
  return sample == nullptr ? 0.0 : sample->value;
}

}  // namespace artsparse::obs
