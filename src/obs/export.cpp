#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_map>

namespace artsparse::obs {

namespace {

/// Integral values print without a decimal point (counter readings stay
/// grep-able integers); everything else gets shortest-round-trip-ish %g.
std::string format_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Prometheus label-value escaping: backslash, quote, newline.
std::string prometheus_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// {org="gcsr",le="1000"} — `extra` appends one more pair (histogram le).
std::string prometheus_labels(const Labels& labels,
                              const std::pair<std::string, std::string>*
                                  extra = nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  auto append = [&](const std::string& key, const std::string& value) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += prometheus_escape(value);
    out += '"';
  };
  for (const auto& [key, value] : labels) {
    append(key, value);
  }
  if (extra != nullptr) {
    append(extra->first, extra->second);
  }
  out += '}';
  return out;
}

/// Bucket upper bound rendered the Prometheus way: integral bounds
/// without an exponent so `le="1000"` stays readable.
std::string bound_text(double bound) { return format_number(bound); }

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricSample& sample : snapshot.samples) {
    // One HELP/TYPE header per family; label variants follow their first
    // series (the snapshot is sorted by name, so variants are adjacent).
    if (sample.name != last_family) {
      last_family = sample.name;
      if (!sample.help.empty()) {
        out += "# HELP " + sample.name + " " + sample.help + "\n";
      }
      out += "# TYPE " + sample.name + " " +
             std::string(to_string(sample.kind)) + "\n";
    }
    if (sample.kind == MetricKind::kHistogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < sample.bucket_counts.size(); ++i) {
        cumulative += sample.bucket_counts[i];
        const std::pair<std::string, std::string> le{
            "le", i < sample.bucket_bounds.size()
                      ? bound_text(sample.bucket_bounds[i])
                      : "+Inf"};
        out += sample.name + "_bucket" +
               prometheus_labels(sample.labels, &le) + " " +
               std::to_string(cumulative) + "\n";
      }
      out += sample.name + "_sum" + prometheus_labels(sample.labels) + " " +
             format_number(sample.observation_sum) + "\n";
      out += sample.name + "_count" + prometheus_labels(sample.labels) +
             " " + std::to_string(sample.observation_count) + "\n";
    } else {
      out += sample.name + prometheus_labels(sample.labels) + " " +
             format_number(sample.value) + "\n";
    }
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\": [";
  bool first_sample = true;
  for (const MetricSample& sample : snapshot.samples) {
    if (!first_sample) out += ", ";
    first_sample = false;
    out += "{\"name\": \"" + json_escape(sample.name) + "\", \"type\": \"" +
           to_string(sample.kind) + "\"";
    if (!sample.help.empty()) {
      out += ", \"help\": \"" + json_escape(sample.help) + "\"";
    }
    if (!sample.labels.empty()) {
      out += ", \"labels\": {";
      bool first_label = true;
      for (const auto& [key, value] : sample.labels) {
        if (!first_label) out += ", ";
        first_label = false;
        out += "\"" + json_escape(key) + "\": \"" + json_escape(value) +
               "\"";
      }
      out += "}";
    }
    if (sample.kind == MetricKind::kHistogram) {
      out += ", \"count\": " + std::to_string(sample.observation_count) +
             ", \"sum\": " + format_number(sample.observation_sum) +
             ", \"buckets\": [";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < sample.bucket_counts.size(); ++i) {
        cumulative += sample.bucket_counts[i];
        if (i != 0) out += ", ";
        out += "{\"le\": ";
        out += i < sample.bucket_bounds.size()
                   ? format_number(sample.bucket_bounds[i])
                   : std::string("\"+Inf\"");
        out += ", \"count\": " + std::to_string(cumulative) + "}";
      }
      out += "]";
    } else {
      out += ", \"value\": " + format_number(sample.value);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string trace_to_chrome(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ",\n";
    first = false;
    char head[256];
    std::snprintf(head, sizeof(head),
                  "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
                  json_escape(span.name).c_str(),
                  json_escape(span.category).c_str(),
                  static_cast<double>(span.start_ns) / 1e3,
                  static_cast<double>(span.duration_ns) / 1e3,
                  span.thread);
    out += head;
    out += ", \"args\": {\"span_id\": " + std::to_string(span.id) +
           ", \"parent_id\": " + std::to_string(span.parent);
    for (const auto& [key, value] : span.attrs) {
      out += ", \"" + json_escape(key) + "\": \"" + json_escape(value) +
             "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string trace_to_text(const std::vector<SpanRecord>& spans) {
  // Depth = distance to a root through recorded parents. Parents that
  // fell off the ring count as roots.
  std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
  by_id.reserve(spans.size());
  for (const SpanRecord& span : spans) {
    by_id.emplace(span.id, &span);
  }
  auto depth_of = [&](const SpanRecord& span) {
    std::size_t depth = 0;
    std::uint64_t parent = span.parent;
    while (parent != 0) {
      const auto it = by_id.find(parent);
      if (it == by_id.end()) break;
      ++depth;
      parent = it->second->parent;
    }
    return depth;
  };

  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const SpanRecord& span : spans) {
    ordered.push_back(&span);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->start_ns != b->start_ns
                         ? a->start_ns < b->start_ns
                         : a->id < b->id;
            });

  std::string out;
  for (const SpanRecord* span : ordered) {
    out += std::string(2 * depth_of(*span), ' ');
    char line[128];
    std::snprintf(line, sizeof(line), "%s %.3fms (%s, thread %u)",
                  span->name.c_str(),
                  static_cast<double>(span->duration_ns) / 1e6,
                  span->category.c_str(), span->thread);
    out += line;
    for (const auto& [key, value] : span->attrs) {
      out += " " + key + "=" + value;
    }
    out += '\n';
  }
  return out;
}

}  // namespace artsparse::obs
