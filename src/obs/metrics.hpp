// artsparse::obs — the unified observability layer. One process-wide
// MetricsRegistry of named counters, gauges, and fixed-bucket histograms
// replaces the ad-hoc stats structs each subsystem used to plumb by hand
// (CacheStats, WriteBreakdown's retry counters, ScanReport, ...): the
// instrumented layers publish here, the exporters (obs/export.hpp) turn a
// snapshot into Prometheus text or JSON, and `artsparse_cli metrics`
// serves both.
//
// Naming scheme: artsparse_<area>_<name>, Prometheus conventions —
// monotonic counters end in `_total`, nanosecond sums in `_ns_total`,
// duration histograms in `_ns`. Areas in use: cache, store, read, format,
// tiled, bench, fault.
//
// Hot-path cost: metric objects are sharded — kMetricShards cache-line-
// padded atomic cells, one picked per thread — so concurrent increments
// from the parallel_for_each fan-out never contend on one cache line, and
// a scrape aggregates the shards. An increment through a cached handle
// (the ARTSPARSE_COUNT / ARTSPARSE_OBSERVE macros cache the registry
// lookup in a function-local static) is one relaxed fetch_add. Compiling
// with -DARTSPARSE_OBS=OFF (which defines ARTSPARSE_OBS_DISABLED) turns
// every macro into nothing, for an instrumentation-free build to bound
// the overhead against.
//
// Thread safety: everything here is safe to call from any thread at any
// time. Registration takes a mutex (cold path, once per call site);
// increments and observations are lock-free; snapshot() aggregates with
// relaxed loads, so a scrape concurrent with writers sees each metric at
// some recent value (counts never go backwards).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/thread_safety.hpp"

namespace artsparse::obs {

/// Sorted-at-registration key/value pairs qualifying a metric (e.g.
/// {{"org", "gcsr"}}). Different label sets under one name are distinct
/// time series, as in Prometheus.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Shard count for per-thread striping. Power of two; 16 covers the
/// machine sizes we bench on without bloating small builds.
inline constexpr std::size_t kMetricShards = 16;

namespace detail {

/// The shard this thread writes. Threads are assigned round-robin on
/// first use, so up to kMetricShards concurrent writers never share a
/// cache line.
std::size_t this_thread_shard();

/// One cache line holding one atomic cell, so shards never false-share.
struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> value{0};
};

/// fetch_add for atomic<double> via CAS: portable to toolchains without
/// native C++20 atomic<double>::fetch_add.
inline void atomic_add_double(std::atomic<double>& target, double delta) {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    shards_[detail::this_thread_shard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over shards. Concurrent adds may or may not be included.
  std::uint64_t value() const;

  /// Zeroes every shard (between measurement runs; not atomic as a whole
  /// against concurrent adds).
  void reset();

 private:
  std::array<detail::PaddedU64, kMetricShards> shards_;
};

/// Instantaneous signed level (resident bytes, open fragments). Additive
/// across instruments: holders add() deltas, so several caches publishing
/// to one gauge sum naturally.
class Gauge {
 public:
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram (Prometheus `le` semantics: bucket i counts
/// observations <= bounds[i]; one implicit +Inf bucket past the last
/// bound). Bounds are fixed at registration; observation is a binary
/// search plus three relaxed atomic updates on this thread's shard.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (size bounds()+1; last = +Inf bucket),
  /// non-cumulative.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  double sum() const;

  void reset();

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Default duration buckets in nanoseconds: 1µs to ~4s in powers of four,
/// spanning a cache hit through a throttled multi-second fragment commit.
const std::vector<double>& default_time_buckets_ns();

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

/// One metric's point-in-time state inside a MetricsSnapshot.
struct MetricSample {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  Labels labels;
  double value = 0.0;  ///< counter / gauge reading
  // Histogram-only fields.
  std::vector<double> bucket_bounds;
  std::vector<std::uint64_t> bucket_counts;  ///< non-cumulative, +Inf last
  std::uint64_t observation_count = 0;
  double observation_sum = 0.0;
};

/// Consistent-enough scrape of every registered metric, sorted by name
/// then labels. Feed to obs::to_prometheus / obs::to_json.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// First sample matching `name` (and `labels` when given); null when
  /// absent.
  const MetricSample* find(std::string_view name,
                           const Labels& labels = {}) const;

  /// Convenience: counter/gauge value of `name`, or 0 when absent.
  double value(std::string_view name, const Labels& labels = {}) const;
};

/// The registry. Metrics register lazily on first use and live for the
/// process (references returned are stable forever), so call sites cache
/// them in function-local statics — that is what the macros below do.
class MetricsRegistry {
 public:
  /// The process-wide instance every instrumented layer publishes to.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter `name` x `labels`, registering it on first use.
  /// `help` is recorded on first registration (later calls may pass "").
  /// Throws FormatError if the name is already registered as another kind.
  Counter& counter(std::string_view name, std::string_view help = "",
                   const Labels& labels = {});

  Gauge& gauge(std::string_view name, std::string_view help = "",
               const Labels& labels = {});

  /// `bounds` must be ascending; only the first registration's bounds
  /// count. Defaults to default_time_buckets_ns().
  Histogram& histogram(std::string_view name, std::string_view help = "",
                       const Labels& labels = {},
                       const std::vector<double>& bounds =
                           default_time_buckets_ns());

  MetricsSnapshot snapshot() const;

  /// Zeroes every counter and histogram. Gauges are deliberately left
  /// alone: they mirror live state (resident cache bytes) owned by their
  /// instruments, which a registry reset must not contradict.
  void reset();

  std::size_t metric_count() const;

 private:
  struct Entry {
    MetricKind kind;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(MetricKind kind, std::string_view name,
                        std::string_view help, const Labels& labels,
                        const std::vector<double>* bounds)
      ARTSPARSE_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  /// Keyed by name + rendered labels; std::map keeps snapshots sorted.
  /// The returned Counter/Gauge/Histogram references escape the lock by
  /// design: the objects are heap-held, never erased, and internally
  /// atomic, so only the map itself needs the mutex.
  std::map<std::string, Entry> metrics_ ARTSPARSE_GUARDED_BY(mutex_);
};

/// Shorthand for MetricsRegistry::global().
inline MetricsRegistry& registry() { return MetricsRegistry::global(); }

}  // namespace artsparse::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. The only sanctioned way to touch the registry
// from hot paths: they cache the registration lookup in a function-local
// static (one mutex hit per call site per process) and compile to nothing
// under ARTSPARSE_OBS_DISABLED. The _L variants take one label pair whose
// value varies at runtime (per-organization series) and therefore skip the
// static cache — use them where the surrounding work dwarfs a map lookup.
// ---------------------------------------------------------------------------
#if !defined(ARTSPARSE_OBS_DISABLED)
#define ARTSPARSE_OBS_ENABLED 1

#define ARTSPARSE_COUNT(name, delta)                                \
  do {                                                              \
    static ::artsparse::obs::Counter& artsparse_obs_counter =       \
        ::artsparse::obs::registry().counter(name);                 \
    artsparse_obs_counter.add(                                      \
        static_cast<std::uint64_t>(delta));                         \
  } while (0)

#define ARTSPARSE_GAUGE_ADD(name, delta)                            \
  do {                                                              \
    static ::artsparse::obs::Gauge& artsparse_obs_gauge =           \
        ::artsparse::obs::registry().gauge(name);                   \
    artsparse_obs_gauge.add(static_cast<std::int64_t>(delta));      \
  } while (0)

#define ARTSPARSE_OBSERVE(name, value)                              \
  do {                                                              \
    static ::artsparse::obs::Histogram& artsparse_obs_histogram =   \
        ::artsparse::obs::registry().histogram(name);               \
    artsparse_obs_histogram.observe(static_cast<double>(value));    \
  } while (0)

#define ARTSPARSE_COUNT_L(name, label_key, label_value, delta)      \
  ::artsparse::obs::registry()                                      \
      .counter(name, "", {{label_key, label_value}})                \
      .add(static_cast<std::uint64_t>(delta))

#define ARTSPARSE_OBSERVE_L(name, label_key, label_value, value)    \
  ::artsparse::obs::registry()                                      \
      .histogram(name, "", {{label_key, label_value}})              \
      .observe(static_cast<double>(value))

#else  // ARTSPARSE_OBS_DISABLED

// sizeof() keeps the operands name-checked (and "used" for -Wunused)
// without evaluating them, so a disabled build costs literally nothing.
#define ARTSPARSE_COUNT(name, delta) \
  do { static_cast<void>(sizeof(delta)); } while (0)
#define ARTSPARSE_GAUGE_ADD(name, delta) \
  do { static_cast<void>(sizeof(delta)); } while (0)
#define ARTSPARSE_OBSERVE(name, value) \
  do { static_cast<void>(sizeof(value)); } while (0)
#define ARTSPARSE_COUNT_L(name, label_key, label_value, delta) \
  do { static_cast<void>(sizeof(delta)); } while (0)
#define ARTSPARSE_OBSERVE_L(name, label_key, label_value, value) \
  do { static_cast<void>(sizeof(value)); } while (0)

#endif  // ARTSPARSE_OBS_DISABLED
