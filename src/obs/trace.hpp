// Hot-path tracing: RAII spans with parent/child nesting and per-span
// attributes, recorded into a bounded ring buffer. A span covers one
// phase of work (store.write -> write.encode -> commit.fsync -> ...);
// nesting comes from a thread-local current-span pointer, so the
// parent/child tree mirrors the call stack with zero coordination.
//
// Cost model: tracing is OFF by default. A span constructed while tracing
// is off is one relaxed atomic load and nothing else — no clock read, no
// allocation — so spans stay in place on production paths. Turn recording
// on per process with TraceBuffer::global().set_enabled(true), the
// ARTSPARSE_TRACE=1 environment variable, or `artsparse_cli metrics
// --trace FILE`. The ring holds the most recent spans (default 65536,
// ARTSPARSE_TRACE_CAPACITY overrides); old spans are overwritten, never
// reallocated, so a hot loop cannot grow memory without bound.
//
// Exporters (obs/export.hpp): Chrome trace_event JSON for about://tracing
// and a flat indented text dump.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/thread_safety.hpp"

namespace artsparse::obs {

/// One finished span. Times are nanoseconds on the steady clock, relative
/// to the process trace epoch, so exports are stable within a run.
struct SpanRecord {
  std::string name;
  std::string category;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root span
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t thread = 0;  ///< small per-process thread ordinal
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Nanoseconds since the process trace epoch (steady clock).
std::uint64_t trace_now_ns();

/// Bounded ring of finished spans. Thread-safe; record() under one mutex
/// is fine because spans close at phase granularity, not per element.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// The process-wide buffer all Spans record into. On first use it arms
  /// itself from ARTSPARSE_TRACE / ARTSPARSE_TRACE_CAPACITY when set.
  static TraceBuffer& global();

  TraceBuffer() = default;
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Replaces the ring with an empty one of `capacity` (>= 1) slots.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  void record(SpanRecord&& record);

  /// The retained spans, oldest first.
  std::vector<SpanRecord> snapshot() const;

  /// Spans overwritten because the ring was full.
  std::uint64_t dropped() const;

  void clear();

 private:
  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_;
  std::vector<SpanRecord> ring_ ARTSPARSE_GUARDED_BY(mutex_);
  std::size_t capacity_ ARTSPARSE_GUARDED_BY(mutex_) = kDefaultCapacity;
  /// Ring slot the next record lands in.
  std::size_t next_ ARTSPARSE_GUARDED_BY(mutex_) = 0;
  /// Ring has lapped at least once.
  bool wrapped_ ARTSPARSE_GUARDED_BY(mutex_) = false;
  std::uint64_t dropped_ ARTSPARSE_GUARDED_BY(mutex_) = 0;
};

/// RAII span. Opens on construction, records into TraceBuffer::global()
/// on destruction (or at an explicit end() for phases that do not align
/// with a scope). Inert — one atomic load — while tracing is disabled.
class Span {
 public:
  explicit Span(const char* name, const char* category = "artsparse");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a key/value attribute (no-op on an inert span).
  void attr(std::string key, std::string value);
  void attr(std::string key, std::uint64_t value);
  void attr(std::string key, double value);

  /// Close the span now; the destructor becomes a no-op.
  void end();

  /// Whether this span is recording (tracing was enabled when it opened).
  bool live() const { return live_; }

 private:
  bool live_ = false;
  SpanRecord record_;
};

/// Drop-in stand-in the span macros expand to under
/// ARTSPARSE_OBS_DISABLED: same surface, no code.
struct NullSpan {
  explicit NullSpan(const char*, const char* = "") {}
  template <typename K, typename V>
  void attr(K&&, V&&) {}
  void end() {}
  bool live() const { return false; }
};

}  // namespace artsparse::obs

#if !defined(ARTSPARSE_OBS_DISABLED)
/// The span type instrumentation declares: real spans, unless the build
/// compiled observability out.
#define ARTSPARSE_SPAN_TYPE ::artsparse::obs::Span
#else
#define ARTSPARSE_SPAN_TYPE ::artsparse::obs::NullSpan
#endif

#define ARTSPARSE_OBS_CONCAT_INNER(a, b) a##b
#define ARTSPARSE_OBS_CONCAT(a, b) ARTSPARSE_OBS_CONCAT_INNER(a, b)

/// Anonymous scope span: `ARTSPARSE_SPAN("write.build", "store");`.
/// Use ARTSPARSE_SPAN_TYPE directly when the span needs attributes or an
/// explicit end().
#define ARTSPARSE_SPAN(...) \
  ARTSPARSE_SPAN_TYPE ARTSPARSE_OBS_CONCAT(artsparse_obs_span_, \
                                           __COUNTER__)(__VA_ARGS__)
