#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>

#include "core/env.hpp"

namespace artsparse::obs {

namespace {

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t this_thread_ordinal() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// The innermost open span on this thread; children parent under it.
thread_local std::uint64_t t_current_span = 0;

}  // namespace

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer* instance = [] {
    auto* buffer = new TraceBuffer();  // never dies
    // Hardened parse (core/env): "4096x" or "0" no longer half-apply; a
    // runaway setting clamps at 16M retained spans.
    if (const auto capacity =
            env_u64("ARTSPARSE_TRACE_CAPACITY", /*floor=*/1,
                    /*ceiling=*/std::size_t{1} << 24)) {
      buffer->set_capacity(static_cast<std::size_t>(*capacity));
    }
    // Shared flag contract (core/env): "0"/"off"/"false"/empty leave
    // tracing off, anything else turns it on.
    if (env_flag("ARTSPARSE_TRACE").value_or(false)) {
      buffer->set_enabled(true);
    }
    return buffer;
  }();
  return *instance;
}

void TraceBuffer::set_capacity(std::size_t capacity) {
  const MutexLock lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

std::size_t TraceBuffer::capacity() const {
  const MutexLock lock(mutex_);
  return capacity_;
}

void TraceBuffer::record(SpanRecord&& record) {
  const MutexLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
}

std::vector<SpanRecord> TraceBuffer::snapshot() const {
  const MutexLock lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    // next_ is the oldest retained slot once the ring has lapped.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
  } else {
    out = ring_;
  }
  return out;
}

std::uint64_t TraceBuffer::dropped() const {
  const MutexLock lock(mutex_);
  return dropped_;
}

void TraceBuffer::clear() {
  const MutexLock lock(mutex_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

Span::Span(const char* name, const char* category) {
  TraceBuffer& buffer = TraceBuffer::global();
  if (!buffer.enabled()) return;
  live_ = true;
  record_.name = name;
  record_.category = category;
  record_.id = next_span_id();
  record_.parent = t_current_span;
  record_.thread = this_thread_ordinal();
  record_.start_ns = trace_now_ns();
  t_current_span = record_.id;
}

Span::~Span() { end(); }

void Span::attr(std::string key, std::string value) {
  if (!live_) return;
  record_.attrs.emplace_back(std::move(key), std::move(value));
}

void Span::attr(std::string key, std::uint64_t value) {
  if (!live_) return;
  record_.attrs.emplace_back(std::move(key), std::to_string(value));
}

void Span::attr(std::string key, double value) {
  if (!live_) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  record_.attrs.emplace_back(std::move(key), buf);
}

void Span::end() {
  if (!live_) return;
  live_ = false;
  record_.duration_ns = trace_now_ns() - record_.start_ns;
  // Pop this span off the thread's nesting stack. Spans destruct in
  // reverse construction order within a thread, so the current span is
  // this one unless a sibling already closed (explicit end() out of
  // order); restoring the parent is correct either way.
  t_current_span = record_.parent;
  TraceBuffer::global().record(std::move(record_));
}

}  // namespace artsparse::obs
