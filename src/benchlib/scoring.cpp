#include "benchlib/scoring.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace artsparse {

std::string to_string(Metric metric) {
  switch (metric) {
    case Metric::kWriteTime:
      return "write-time";
    case Metric::kReadTime:
      return "read-time";
    case Metric::kFileSize:
      return "file-size";
  }
  throw FormatError("unknown Metric value");
}

double metric_value(const Measurement& m, Metric metric) {
  switch (metric) {
    case Metric::kWriteTime:
      return m.write_times.total();
    case Metric::kReadTime:
      return m.read_times.total();
    case Metric::kFileSize:
      return static_cast<double>(m.file_bytes);
  }
  throw FormatError("unknown Metric value");
}

OrgKind ScoreTable::best() const {
  detail::require(!overall.empty(), "score table is empty");
  return std::min_element(overall.begin(), overall.end(),
                          [](const auto& a, const auto& b) {
                            return a.second < b.second;
                          })
      ->first;
}

ScoreTable compute_scores(const std::vector<Measurement>& measurements) {
  detail::require(!measurements.empty(), "no measurements to score");

  // Group measurements by grid cell (workload name).
  std::map<std::string, std::vector<const Measurement*>> cells;
  for (const Measurement& m : measurements) {
    cells[m.workload].push_back(&m);
  }

  ScoreTable table;
  std::map<OrgKind, std::size_t> sample_counts;
  for (Metric metric :
       {Metric::kWriteTime, Metric::kReadTime, Metric::kFileSize}) {
    std::map<OrgKind, double> sums;
    std::map<OrgKind, std::size_t> counts;
    for (const auto& [name, cell] : cells) {
      double max_value = 0.0;
      for (const Measurement* m : cell) {
        max_value = std::max(max_value, metric_value(*m, metric));
      }
      if (max_value <= 0.0) continue;  // degenerate cell: skip
      for (const Measurement* m : cell) {
        sums[m->org] += metric_value(*m, metric) / max_value;
        ++counts[m->org];
      }
    }
    for (const auto& [org, sum] : sums) {
      table.per_metric[metric][org] =
          sum / static_cast<double>(counts[org]);
    }
  }

  // Overall: equal-weight mean across the three metrics.
  for (const auto& [metric, per_org] : table.per_metric) {
    (void)metric;
    for (const auto& [org, score] : per_org) {
      table.overall[org] += score;
      ++sample_counts[org];
    }
  }
  for (auto& [org, score] : table.overall) {
    score /= static_cast<double>(sample_counts[org]);
  }
  return table;
}

}  // namespace artsparse
