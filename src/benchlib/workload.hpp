// The paper's experiment grid: {2D, 3D, 4D} x {TSP, GSP, MSP}, with the
// read test extracting the contiguous region at origin (m/2, ...) of size
// (m/10, ...). Shapes come in two scales: the paper's Perlmutter sizes and
// a laptop-friendly default that preserves densities and every qualitative
// ordering (DESIGN.md Section 4).
#pragma once

#include <string>
#include <vector>

#include "patterns/dataset.hpp"

namespace artsparse {

/// Benchmark problem: one (shape, pattern) cell of the paper's grid.
struct Workload {
  std::string name;  ///< e.g. "2D-TSP"
  Shape shape;
  PatternKind pattern = PatternKind::kGsp;
  PatternSpec spec;
  std::uint64_t seed = 42;

  /// The paper's read region: origin (m_i/2), size (m_i/10), clamped to at
  /// least one cell per dimension.
  Box read_region() const;
};

enum class ScaleKind : std::uint8_t {
  kSmall = 0,  ///< 1024^2, 128^3, 48^4 — laptop default
  kPaper = 1,  ///< 8192^2, 512^3, 128^4 — Table II sizes
};

/// The cubic shape the grid uses for `rank` dimensions at `scale`.
Shape grid_shape(std::size_t rank, ScaleKind scale);

/// Table II's measured density for (rank, pattern); used to calibrate the
/// generators so data volumes match the paper.
double table2_density(std::size_t rank, PatternKind pattern);

/// One workload cell, generators calibrated to Table II's density.
Workload make_workload(std::size_t rank, PatternKind pattern,
                       ScaleKind scale, std::uint64_t seed = 42);

/// The full 3x3 grid in the paper's order (pattern-major: TSP 2/3/4D, ...).
std::vector<Workload> paper_grid(ScaleKind scale, std::uint64_t seed = 42);

/// Parses "--scale=paper|small" style arguments for the bench binaries;
/// returns kSmall when absent.
ScaleKind scale_from_args(int argc, char** argv);

}  // namespace artsparse
