// Table IV's overall score: each metric (write time, read time, file size)
// is normalized per grid cell by the maximum across organizations
// (r_i = m_i / max_j m_j, lower is better), then averaged with equal
// weights over dimensions, patterns, and finally metrics.
#pragma once

#include <map>
#include <vector>

#include "benchlib/harness.hpp"

namespace artsparse {

enum class Metric : std::uint8_t {
  kWriteTime = 0,
  kReadTime = 1,
  kFileSize = 2,
};

std::string to_string(Metric metric);

/// Scores per organization, overall and per metric.
struct ScoreTable {
  /// Overall score (Table IV); lower is better.
  std::map<OrgKind, double> overall;
  /// Per-metric breakdown (average normalized value per metric).
  std::map<Metric, std::map<OrgKind, double>> per_metric;

  /// Organization with the lowest overall score.
  OrgKind best() const;
};

/// Computes Table IV from a full grid of measurements. Every (workload,
/// org) cell must appear exactly once; all organizations must cover the
/// same workload set.
ScoreTable compute_scores(const std::vector<Measurement>& measurements);

/// The raw metric value of one measurement.
double metric_value(const Measurement& m, Metric metric);

}  // namespace artsparse
