#include "benchlib/harness.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>

#include "core/error.hpp"
#include "core/linearize.hpp"
#include "obs/metrics.hpp"

namespace artsparse {

namespace {

/// Unique per-process run directories so concurrent harness runs (and
/// leftover crashes) never collide.
std::filesystem::path fresh_run_dir(const std::filesystem::path& base) {
  static std::atomic<std::uint64_t> counter{0};
  const auto id = counter.fetch_add(1);
  return base / ("artsparse_run_" + std::to_string(::getpid()) + "_" +
                 std::to_string(id));
}

/// Brute-force ground truth: the dataset points inside `region`, as
/// (linear address -> value) in ascending address order.
std::vector<std::pair<index_t, value_t>> expected_hits(
    const SparseDataset& dataset, const Box& region) {
  std::vector<std::pair<index_t, value_t>> hits;
  for (std::size_t i = 0; i < dataset.coords.size(); ++i) {
    const auto p = dataset.coords.point(i);
    if (region.contains(p)) {
      hits.emplace_back(linearize(p, dataset.shape), dataset.values[i]);
    }
  }
  std::sort(hits.begin(), hits.end());
  return hits;
}

bool verify_read(const SparseDataset& dataset, const Box& region,
                 const ReadResult& result) {
  const auto expected = expected_hits(dataset, region);
  if (expected.size() != result.values.size()) return false;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const index_t address =
        linearize(result.coords.point(i), dataset.shape);
    if (address != expected[i].first ||
        result.values[i] != expected[i].second) {
      return false;
    }
  }
  return true;
}

}  // namespace

Measurement run_dataset(const SparseDataset& dataset, const Box& read_region,
                        const std::string& workload_name, OrgKind org,
                        const HarnessOptions& options) {
  Measurement m;
  m.workload = workload_name;
  m.rank = dataset.shape.rank();
  m.pattern = dataset.pattern;
  m.org = org;
  m.point_count = dataset.point_count();
  m.query_count = static_cast<std::size_t>(read_region.cell_count());

  const std::filesystem::path dir = fresh_run_dir(options.work_dir);
  const int repeats = std::max(1, options.repeats);
  {
    FragmentStore store(dir, dataset.shape, options.device, options.codec);
    // Best-of-N: rewrite from scratch each round, keep the fastest total.
    for (int round = 0; round < repeats; ++round) {
      store.clear();
      const WriteResult write =
          store.write(dataset.coords, dataset.values, org);
      if (round == 0 || write.times.total() < m.write_times.total()) {
        m.write_times = write.times;
      }
      m.file_bytes = write.file_bytes;
      m.index_bytes = write.index_bytes;
    }

    ReadResult read = store.read_region(read_region);
    m.read_times = read.times;
    for (int round = 1; round < repeats; ++round) {
      ReadResult again = store.read_region(read_region);
      if (again.times.total() < m.read_times.total()) {
        m.read_times = again.times;
      }
    }
    m.found_count = read.values.size();
    m.cache = store.cache().stats();

    ARTSPARSE_OBSERVE_L("artsparse_bench_write_ns", "org", to_string(org),
                        m.write_times.total() * 1e9);
    ARTSPARSE_OBSERVE_L("artsparse_bench_read_ns", "org", to_string(org),
                        m.read_times.total() * 1e9);

    m.verified = !options.verify || verify_read(dataset, read_region, read);
    store.clear();
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return m;
}

Measurement run_workload(const Workload& workload, OrgKind org,
                         const HarnessOptions& options) {
  const SparseDataset dataset =
      make_dataset(workload.shape, workload.spec, workload.seed);
  return run_dataset(dataset, workload.read_region(), workload.name, org,
                     options);
}

std::vector<Measurement> run_grid(
    const std::vector<Workload>& workloads, const std::vector<OrgKind>& orgs,
    const HarnessOptions& options,
    const std::function<void(const Measurement&)>& progress) {
  std::vector<Measurement> measurements;
  measurements.reserve(workloads.size() * orgs.size());
  for (const Workload& workload : workloads) {
    // Generate once, measure every organization against the same data.
    const SparseDataset dataset =
        make_dataset(workload.shape, workload.spec, workload.seed);
    const Box region = workload.read_region();
    for (OrgKind org : orgs) {
      measurements.push_back(
          run_dataset(dataset, region, workload.name, org, options));
      if (progress) progress(measurements.back());
    }
  }
  return measurements;
}

}  // namespace artsparse
