#include "benchlib/report.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/error.hpp"
#include "obs/export.hpp"
#include "patterns/pattern.hpp"

namespace artsparse {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  detail::require(cells.size() == headers_.size(),
                  "table row width does not match header");
  rows_.push_back(std::move(cells));
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != '%' && c != ' ') {
      return false;
    }
  }
  return true;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      out << "| ";
      if (looks_numeric(row[c])) {
        out << std::string(pad, ' ') << row[c];
      } else {
        out << row[c] << std::string(pad, ' ');
      }
      out << ' ';
    }
    out << "|\n";
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << '|' << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void TextTable::write_csv(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) {
    throw IoError("cannot open CSV output: " + path.string());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string bar_chart(const std::string& title,
                      const std::vector<std::string>& row_labels,
                      const std::vector<std::string>& series_labels,
                      const std::vector<std::vector<double>>& values,
                      std::size_t width, bool log_scale) {
  detail::require(values.size() == row_labels.size(),
                  "bar chart row count mismatch");
  detail::require(width >= 4, "bar chart width too small");

  // Global maximum sets the scale; log mode maps [min_positive, max] onto
  // [1 char, width].
  double max_value = 0.0;
  double min_positive = std::numeric_limits<double>::max();
  for (const auto& row : values) {
    detail::require(row.size() == series_labels.size(),
                    "bar chart series count mismatch");
    for (double v : row) {
      detail::require(v >= 0.0, "bar chart values must be non-negative");
      max_value = std::max(max_value, v);
      if (v > 0.0) min_positive = std::min(min_positive, v);
    }
  }

  std::size_t label_width = 0;
  for (const auto& s : series_labels) {
    label_width = std::max(label_width, s.size());
  }

  auto bar_length = [&](double v) -> std::size_t {
    if (v <= 0.0 || max_value <= 0.0) return 0;
    double fraction;
    if (log_scale && max_value > min_positive) {
      fraction = std::log(v / min_positive) /
                 std::log(max_value / min_positive);
      fraction = std::max(fraction, 0.0);
      // Smallest positive value still shows one tick.
      return 1 + static_cast<std::size_t>(fraction *
                                          static_cast<double>(width - 1));
    }
    fraction = v / max_value;
    return std::max<std::size_t>(1, static_cast<std::size_t>(
                                        fraction * static_cast<double>(width)));
  };

  std::ostringstream out;
  out << title;
  if (log_scale) out << "  (log scale)";
  out << '\n';
  for (std::size_t r = 0; r < row_labels.size(); ++r) {
    out << row_labels[r] << '\n';
    for (std::size_t s = 0; s < series_labels.size(); ++s) {
      const double v = values[r][s];
      const std::size_t len = bar_length(v);
      out << "  " << series_labels[s]
          << std::string(label_width - series_labels[s].size(), ' ')
          << " |" << std::string(len, '#')
          << std::string(width - std::min(width, len), ' ') << "| ";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4g", v);
      out << buf << '\n';
    }
  }
  return out.str();
}

std::string format_seconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", seconds);
  return buf;
}

std::string format_bytes(std::size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", b / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

std::string format_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
  return buf;
}

std::string format_fixed(double value, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_cache_stats(const CacheStats& stats) {
  const std::size_t lookups = stats.hits + stats.misses;
  const double hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(stats.hits) /
                         static_cast<double>(lookups);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "cache: %zu hits / %zu misses (%s hit rate), %zu evictions, "
                "%zu open (%s of %s)",
                stats.hits, stats.misses, format_percent(hit_rate).c_str(),
                stats.evictions, stats.open_count,
                format_bytes(stats.open_bytes).c_str(),
                format_bytes(stats.budget_bytes).c_str());
  return buf;
}

namespace {

/// Shortest float form that round-trips well enough for reports.
std::string json_number(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

std::string measurements_to_json(const std::vector<Measurement>& grid) {
  std::ostringstream out;
  out << "{\n  \"measurements\": [";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Measurement& m = grid[i];
    if (i != 0) out << ',';
    out << "\n    {";
    out << "\"workload\": \"" << obs::json_escape(m.workload) << "\", ";
    out << "\"rank\": " << m.rank << ", ";
    out << "\"pattern\": \"" << obs::json_escape(to_string(m.pattern))
        << "\", ";
    out << "\"org\": \"" << obs::json_escape(to_string(m.org)) << "\", ";
    out << "\"points\": " << m.point_count << ", ";
    out << "\"queries\": " << m.query_count << ", ";
    out << "\"found\": " << m.found_count << ", ";
    out << "\"file_bytes\": " << m.file_bytes << ", ";
    out << "\"index_bytes\": " << m.index_bytes << ", ";
    out << "\"verified\": " << (m.verified ? "true" : "false") << ",\n";
    out << "     \"write\": {"
        << "\"build_sec\": " << json_number(m.write_times.build) << ", "
        << "\"build_sort_sec\": " << json_number(m.write_times.build_sort)
        << ", "
        << "\"reorg_sec\": " << json_number(m.write_times.reorg) << ", "
        << "\"others_sec\": " << json_number(m.write_times.others) << ", "
        << "\"write_sec\": " << json_number(m.write_times.write) << ", "
        << "\"total_sec\": " << json_number(m.write_times.total()) << ", "
        << "\"io_attempts\": " << m.write_times.io_attempts << ", "
        << "\"io_retries\": " << m.write_times.io_retries << ", "
        << "\"backoff_sec\": " << json_number(m.write_times.backoff)
        << "},\n";
    out << "     \"read\": {"
        << "\"discover_sec\": " << json_number(m.read_times.discover) << ", "
        << "\"extract_sec\": " << json_number(m.read_times.extract) << ", "
        << "\"query_sec\": " << json_number(m.read_times.query) << ", "
        << "\"merge_sec\": " << json_number(m.read_times.merge) << ", "
        << "\"total_sec\": " << json_number(m.read_times.total()) << ", "
        << "\"cache_hits\": " << m.read_times.cache_hits << ", "
        << "\"cache_misses\": " << m.read_times.cache_misses << "},\n";
    out << "     \"cache\": {"
        << "\"hits\": " << m.cache.hits << ", "
        << "\"misses\": " << m.cache.misses << ", "
        << "\"evictions\": " << m.cache.evictions << ", "
        << "\"invalidations\": " << m.cache.invalidations << ", "
        << "\"open_count\": " << m.cache.open_count << ", "
        << "\"open_bytes\": " << m.cache.open_bytes << ", "
        << "\"budget_bytes\": " << m.cache.budget_bytes << "}}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

void write_json_report(const std::filesystem::path& path,
                       const std::vector<Measurement>& grid) {
  std::ofstream out(path);
  if (!out) {
    throw IoError("cannot open JSON output: " + path.string());
  }
  out << measurements_to_json(grid);
}

}  // namespace artsparse
