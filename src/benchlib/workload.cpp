#include "benchlib/workload.hpp"

#include <cstring>

#include "core/error.hpp"
#include "patterns/calibrate.hpp"

namespace artsparse {

Box Workload::read_region() const {
  std::vector<index_t> origin(shape.rank());
  std::vector<index_t> size(shape.rank());
  for (std::size_t i = 0; i < shape.rank(); ++i) {
    origin[i] = shape.extent(i) / 2;
    size[i] = std::max<index_t>(1, shape.extent(i) / 10);
  }
  return Box::from_origin_size(origin, size);
}

Shape grid_shape(std::size_t rank, ScaleKind scale) {
  detail::require(rank >= 2 && rank <= 4, "grid shapes cover 2D..4D");
  if (scale == ScaleKind::kPaper) {
    switch (rank) {
      case 2:
        return Shape::uniform(2, 8192);
      case 3:
        return Shape::uniform(3, 512);
      default:
        return Shape::uniform(4, 128);
    }
  }
  switch (rank) {
    case 2:
      return Shape::uniform(2, 1024);
    case 3:
      return Shape::uniform(3, 128);
    default:
      return Shape::uniform(4, 48);
  }
}

double table2_density(std::size_t rank, PatternKind pattern) {
  detail::require(rank >= 2 && rank <= 4, "grid densities cover 2D..4D");
  // Table II, in fractional form.
  switch (pattern) {
    case PatternKind::kTsp:
      return rank == 2 ? 0.0167 : rank == 3 ? 0.0347 : 0.0822;
    case PatternKind::kGsp:
      return rank == 2 ? 0.0099 : rank == 3 ? 0.0099 : 0.0090;
    case PatternKind::kMsp:
      return rank == 2 ? 0.0019 : rank == 3 ? 0.0019 : 0.0021;
  }
  throw FormatError("unknown PatternKind value");
}

Workload make_workload(std::size_t rank, PatternKind pattern,
                       ScaleKind scale, std::uint64_t seed) {
  Workload workload;
  workload.shape = grid_shape(rank, scale);
  workload.pattern = pattern;
  workload.seed = seed;
  workload.name = std::to_string(rank) + "D-" + to_string(pattern);
  const double density = table2_density(rank, pattern);
  switch (pattern) {
    case PatternKind::kTsp:
      workload.spec = calibrate_tsp(workload.shape, density);
      break;
    case PatternKind::kGsp:
      workload.spec = calibrate_gsp(density);
      break;
    case PatternKind::kMsp:
      workload.spec = calibrate_msp(workload.shape, density);
      break;
  }
  return workload;
}

std::vector<Workload> paper_grid(ScaleKind scale, std::uint64_t seed) {
  std::vector<Workload> grid;
  for (PatternKind pattern :
       {PatternKind::kTsp, PatternKind::kGsp, PatternKind::kMsp}) {
    for (std::size_t rank = 2; rank <= 4; ++rank) {
      grid.push_back(make_workload(rank, pattern, scale, seed));
    }
  }
  return grid;
}

ScaleKind scale_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale=paper") == 0) {
      return ScaleKind::kPaper;
    }
    if (std::strcmp(argv[i], "--scale=small") == 0) {
      return ScaleKind::kSmall;
    }
  }
  return ScaleKind::kSmall;
}

}  // namespace artsparse
