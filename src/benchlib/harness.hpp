// The measurement harness: runs Algorithm 3's WRITE and READ for one
// (workload, organization) pair through a FragmentStore and records every
// quantity the paper's tables and figures report.
#pragma once

#include <filesystem>
#include <functional>
#include <vector>

#include "benchlib/workload.hpp"
#include "storage/fragment_store.hpp"

namespace artsparse {

/// One grid cell's measurements.
struct Measurement {
  std::string workload;  ///< e.g. "2D-TSP"
  std::size_t rank = 0;
  PatternKind pattern = PatternKind::kGsp;
  OrgKind org = OrgKind::kCoo;

  std::size_t point_count = 0;     ///< n
  std::size_t query_count = 0;     ///< n_read (cells in the read region)
  std::size_t found_count = 0;     ///< points actually present in the region

  WriteBreakdown write_times;      ///< Table III / Fig. 3
  ReadBreakdown read_times;        ///< Fig. 5
  std::size_t file_bytes = 0;      ///< Fig. 4
  std::size_t index_bytes = 0;

  /// Open-fragment cache counters for this run's store, sampled after the
  /// measured reads (before the store is cleared).
  CacheStats cache;

  bool verified = false;  ///< read results matched the dataset exactly
};

struct HarnessOptions {
  /// Directory for fragment files; each run uses a fresh subdirectory that
  /// is removed afterwards.
  std::filesystem::path work_dir = std::filesystem::temp_directory_path();
  /// Storage model; the Lustre-like throttle reproduces the paper's
  /// bandwidth-bound write regime (DESIGN.md Section 5).
  DeviceModel device = DeviceModel::lustre_like();
  CodecKind codec = CodecKind::kIdentity;
  /// Cross-check every read against the self-verifying dataset values.
  bool verify = true;
  /// Measurement repetitions; the fastest write and read are kept (the
  /// standard best-of-N guard against scheduler noise). 1 = single shot.
  int repeats = 1;
};

/// Runs WRITE + region READ for one organization over one workload.
Measurement run_workload(const Workload& workload, OrgKind org,
                         const HarnessOptions& options);

/// Reuses an already-generated dataset (grid runs generate each dataset
/// once and measure all organizations against it).
Measurement run_dataset(const SparseDataset& dataset, const Box& read_region,
                        const std::string& workload_name, OrgKind org,
                        const HarnessOptions& options);

/// Full sweep: every workload x every organization. `progress` (optional)
/// is invoked after each measurement.
std::vector<Measurement> run_grid(
    const std::vector<Workload>& workloads, const std::vector<OrgKind>& orgs,
    const HarnessOptions& options,
    const std::function<void(const Measurement&)>& progress = {});

}  // namespace artsparse
