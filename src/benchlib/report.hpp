// Plain-text reporting: aligned ASCII tables (the bench binaries print the
// paper's tables/figures as rows) and CSV emission for external plotting.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "benchlib/harness.hpp"
#include "storage/fragment_cache.hpp"

namespace artsparse {

/// Column-aligned ASCII table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule; numeric-looking cells right-aligned.
  std::string str() const;

  /// Writes the same content as CSV.
  void write_csv(const std::filesystem::path& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Grouped horizontal ASCII bar chart — the textual rendering of the
/// paper's figures. One block of bars per row label, one bar per series;
/// bars are scaled to the global maximum (or its log when `log_scale`,
/// which suits Fig. 5's orders-of-magnitude spreads). Values must be
/// non-negative; `values[row][series]`.
std::string bar_chart(const std::string& title,
                      const std::vector<std::string>& row_labels,
                      const std::vector<std::string>& series_labels,
                      const std::vector<std::vector<double>>& values,
                      std::size_t width = 48, bool log_scale = false);

/// "0.1234" style seconds with 4 decimals (matching Table III's precision).
std::string format_seconds(double seconds);

/// Human-readable byte count ("1.25 MiB") plus exact bytes.
std::string format_bytes(std::size_t bytes);

/// "1.67%" style percentage with two decimals.
std::string format_percent(double fraction);

/// Fixed-decimal double ("0.34").
std::string format_fixed(double value, int decimals);

/// One-line open-fragment cache summary, e.g.
/// "cache: 12 hits / 4 misses (75.00% hit rate), 1 evictions, 4 open
/// (1.25 MiB of 256.00 MiB)".
std::string format_cache_stats(const CacheStats& stats);

/// Serializes a measurement grid as a JSON document:
/// {"measurements": [{workload, org, write: {..., io_attempts, io_retries,
/// backoff_sec}, read: {...}, cache: {...}, ...}]}. Every quantity the CSV
/// emits plus the retry/backoff and cache counters, machine-readable.
std::string measurements_to_json(const std::vector<Measurement>& grid);

/// Writes measurements_to_json() to `path`.
void write_json_report(const std::filesystem::path& path,
                       const std::vector<Measurement>& grid);

}  // namespace artsparse
