// Computation kernels over SparseTensor — the access patterns that motivate
// the storage organizations:
//   - SpMV, the classic CSR/CSC workload (paper's Related Work, [5][9]);
//   - MTTKRP, the kernel CSF was designed for (SPLATT, paper refs [14][15]).
// Every kernel works for any organization (iteration goes through the
// format's native scan), so the benches can compare organizations on equal
// semantics.
#pragma once

#include "ops/dense.hpp"
#include "ops/sparse_tensor.hpp"

namespace artsparse {

/// y = A * x for a 2-D sparse tensor. x has A.shape()[1] entries; the
/// result has A.shape()[0].
std::vector<value_t> spmv(const SparseTensor& A,
                          std::span<const value_t> x);

/// y = A^T * x (x over rows, result over columns).
std::vector<value_t> spmv_transposed(const SparseTensor& A,
                                     std::span<const value_t> x);

/// Matricized tensor times Khatri-Rao product for a 3-D tensor X:
///   M(i, r) = sum_{j,k} X(i,j,k) * B(j,r) * C(k,r)        (mode == 0)
/// For mode m, the output indexes dimension m and B/C are the factor
/// matrices of the remaining dimensions in ascending order. B and C must
/// have the matching dimension extents as rows and a common rank (columns).
DenseMatrix mttkrp(const SparseTensor& X, const DenseMatrix& B,
                   const DenseMatrix& C, std::size_t mode = 0);

/// Tensor-times-vector contraction along `mode`: the result is a sparse
/// (d-1)-dimensional dataset (coordinates with `mode` removed; values
/// accumulated), returned as coordinate/value buffers in row-major order.
std::pair<CoordBuffer, std::vector<value_t>> ttv(
    const SparseTensor& X, std::span<const value_t> v, std::size_t mode);

/// Frobenius norm squared (sum of squares of stored values).
value_t norm_squared(const SparseTensor& X);

}  // namespace artsparse
