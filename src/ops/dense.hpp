// Minimal dense containers for the computation kernels: a row-major matrix
// (factor matrices in MTTKRP, SpMV inputs/outputs use plain vectors).
#pragma once

#include <span>
#include <vector>

#include "core/error.hpp"
#include "core/types.hpp"

namespace artsparse {

/// Row-major dense matrix of value_t.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, value_t fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  value_t& at(std::size_t r, std::size_t c) {
    detail::require(r < rows_ && c < cols_, "dense matrix access OOB");
    return data_[r * cols_ + c];
  }
  value_t at(std::size_t r, std::size_t c) const {
    detail::require(r < rows_ && c < cols_, "dense matrix access OOB");
    return data_[r * cols_ + c];
  }

  /// Row r as a span of cols() values.
  std::span<value_t> row(std::size_t r) {
    detail::require(r < rows_, "dense matrix row OOB");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const value_t> row(std::size_t r) const {
    detail::require(r < rows_, "dense matrix row OOB");
    return {data_.data() + r * cols_, cols_};
  }

  std::span<const value_t> data() const { return data_; }

  friend bool operator==(const DenseMatrix& a, const DenseMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<value_t> data_;
};

}  // namespace artsparse
