// SparseTensor: an in-memory sparse tensor — one storage organization plus
// its reorganized value buffer — with a user-facing accessor API. This is
// the facade a downstream application uses when it wants the paper's
// organizations without the fragment/storage machinery.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "formats/registry.hpp"
#include "patterns/dataset.hpp"

namespace artsparse {

class SparseTensor {
 public:
  /// Builds from raw coordinates + values (values are reorganized by the
  /// organization's map internally).
  SparseTensor(const CoordBuffer& coords, std::span<const value_t> values,
               const Shape& shape, OrgKind org);

  /// Builds from a generated dataset.
  SparseTensor(const SparseDataset& dataset, OrgKind org)
      : SparseTensor(dataset.coords, dataset.values, dataset.shape, org) {}

  SparseTensor(SparseTensor&&) noexcept = default;
  SparseTensor& operator=(SparseTensor&&) noexcept = default;

  /// Value at `point`, or nullopt when the cell is empty.
  std::optional<value_t> at(std::span<const index_t> point) const;

  /// Visits every stored point inside `box` as (coordinates, value).
  void for_each(
      const Box& box,
      const std::function<void(std::span<const index_t>, value_t)>& visit)
      const;

  /// Visits every stored point.
  void for_each(
      const std::function<void(std::span<const index_t>, value_t)>& visit)
      const {
    for_each(Box::whole(shape()), visit);
  }

  /// Dense materialization (row-major). Guarded: refuses tensors with more
  /// than `max_cells` cells so a typo cannot allocate terabytes.
  std::vector<value_t> to_dense(index_t max_cells = 1u << 24) const;

  /// One stored entry, as seen through the iterator.
  struct Entry {
    std::span<const index_t> coords;
    value_t value;
  };

  /// Forward const iterator over all stored entries, in the format's
  /// native scan order. The iteration snapshot is materialized once at
  /// begin() and shared by iterator copies.
  class const_iterator {
   public:
    using value_type = Entry;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;

    Entry operator*() const;
    const_iterator& operator++();
    const_iterator operator++(int);

    friend bool operator==(const const_iterator& a,
                           const const_iterator& b) {
      return a.at_ == b.at_ && a.snapshot_ == b.snapshot_;
    }

   private:
    friend class SparseTensor;
    struct Snapshot;
    const_iterator(std::shared_ptr<const Snapshot> snapshot, std::size_t at)
        : snapshot_(std::move(snapshot)), at_(at) {}

    std::shared_ptr<const Snapshot> snapshot_;
    std::size_t at_ = 0;
  };

  const_iterator begin() const;
  const_iterator end() const;

  std::size_t nnz() const { return format_->point_count(); }
  const Shape& shape() const { return format_->tensor_shape(); }
  OrgKind org() const { return format_->kind(); }
  const SparseFormat& format() const { return *format_; }
  std::span<const value_t> values() const { return values_; }

 private:
  std::unique_ptr<SparseFormat> format_;
  std::vector<value_t> values_;  ///< slot-ordered (post-map)
  /// Lazily materialized iteration snapshot shared by begin()/end().
  mutable std::shared_ptr<const const_iterator::Snapshot> snapshot_;
};

}  // namespace artsparse
