#include "ops/sparse_tensor.hpp"

#include "core/linearize.hpp"

namespace artsparse {

SparseTensor::SparseTensor(const CoordBuffer& coords,
                           std::span<const value_t> values,
                           const Shape& shape, OrgKind org)
    : format_(make_format(org)) {
  detail::require(coords.size() == values.size(),
                  "coordinate and value counts differ");
  const std::vector<std::size_t> map = format_->build(coords, shape);
  values_.resize(values.size());
  for (std::size_t i = 0; i < map.size(); ++i) {
    values_[map[i]] = values[i];
  }
}

std::optional<value_t> SparseTensor::at(
    std::span<const index_t> point) const {
  const std::size_t slot = format_->lookup(point);
  if (slot == kNotFound) return std::nullopt;
  return values_[slot];
}

void SparseTensor::for_each(
    const Box& box,
    const std::function<void(std::span<const index_t>, value_t)>& visit)
    const {
  CoordBuffer points(shape().rank());
  std::vector<std::size_t> slots;
  format_->scan_box(box, points, slots);
  for (std::size_t i = 0; i < points.size(); ++i) {
    visit(points.point(i), values_[slots[i]]);
  }
}

struct SparseTensor::const_iterator::Snapshot {
  CoordBuffer points;
  std::vector<value_t> values;
};

SparseTensor::Entry SparseTensor::const_iterator::operator*() const {
  return Entry{snapshot_->points.point(at_), snapshot_->values[at_]};
}

SparseTensor::const_iterator& SparseTensor::const_iterator::operator++() {
  ++at_;
  return *this;
}

SparseTensor::const_iterator SparseTensor::const_iterator::operator++(int) {
  const_iterator before = *this;
  ++at_;
  return before;
}

SparseTensor::const_iterator SparseTensor::begin() const {
  if (!snapshot_) {
    auto snapshot = std::make_shared<const_iterator::Snapshot>();
    snapshot->points = CoordBuffer(shape().rank());
    std::vector<std::size_t> slots;
    format_->scan_box(Box::whole(shape()), snapshot->points, slots);
    snapshot->values.reserve(slots.size());
    for (std::size_t slot : slots) {
      snapshot->values.push_back(values_[slot]);
    }
    snapshot_ = std::move(snapshot);
  }
  return const_iterator(snapshot_, 0);
}

SparseTensor::const_iterator SparseTensor::end() const {
  if (!snapshot_) {
    begin();  // materialize so both ends share one snapshot
  }
  return const_iterator(snapshot_, snapshot_->points.size());
}

std::vector<value_t> SparseTensor::to_dense(index_t max_cells) const {
  const index_t cells = shape().element_count();
  detail::require(cells <= max_cells,
                  "to_dense refused: tensor exceeds max_cells");
  std::vector<value_t> dense(static_cast<std::size_t>(cells), 0.0);
  for_each([&](std::span<const index_t> point, value_t value) {
    dense[static_cast<std::size_t>(linearize(point, shape()))] = value;
  });
  return dense;
}

}  // namespace artsparse
