#include "ops/kernels.hpp"

#include <map>
#include <utility>

#include "core/linearize.hpp"
#include "core/parallel.hpp"

namespace artsparse {

std::vector<value_t> spmv(const SparseTensor& A,
                          std::span<const value_t> x) {
  detail::require(A.shape().rank() == 2, "spmv requires a 2-D tensor");
  detail::require(x.size() == A.shape().extent(1),
                  "spmv vector length does not match column count");
  std::vector<value_t> y(static_cast<std::size_t>(A.shape().extent(0)), 0.0);
  A.for_each([&](std::span<const index_t> p, value_t value) {
    y[static_cast<std::size_t>(p[0])] +=
        value * x[static_cast<std::size_t>(p[1])];
  });
  return y;
}

std::vector<value_t> spmv_transposed(const SparseTensor& A,
                                     std::span<const value_t> x) {
  detail::require(A.shape().rank() == 2, "spmv requires a 2-D tensor");
  detail::require(x.size() == A.shape().extent(0),
                  "spmv vector length does not match row count");
  std::vector<value_t> y(static_cast<std::size_t>(A.shape().extent(1)), 0.0);
  A.for_each([&](std::span<const index_t> p, value_t value) {
    y[static_cast<std::size_t>(p[1])] +=
        value * x[static_cast<std::size_t>(p[0])];
  });
  return y;
}

DenseMatrix mttkrp(const SparseTensor& X, const DenseMatrix& B,
                   const DenseMatrix& C, std::size_t mode) {
  detail::require(X.shape().rank() == 3, "mttkrp requires a 3-D tensor");
  detail::require(mode < 3, "mttkrp mode out of range");
  // The two non-output dimensions, ascending.
  const std::size_t j_dim = mode == 0 ? 1 : 0;
  const std::size_t k_dim = mode == 2 ? 1 : 2;
  detail::require(B.rows() == X.shape().extent(j_dim),
                  "factor B rows do not match tensor dimension");
  detail::require(C.rows() == X.shape().extent(k_dim),
                  "factor C rows do not match tensor dimension");
  detail::require(B.cols() == C.cols(), "factor ranks differ");

  const std::size_t rank = B.cols();
  DenseMatrix M(static_cast<std::size_t>(X.shape().extent(mode)), rank);
  X.for_each([&](std::span<const index_t> p, value_t value) {
    const auto i = static_cast<std::size_t>(p[mode]);
    const auto b = B.row(static_cast<std::size_t>(p[j_dim]));
    const auto c = C.row(static_cast<std::size_t>(p[k_dim]));
    const auto out = M.row(i);
    for (std::size_t r = 0; r < rank; ++r) {
      out[r] += value * b[r] * c[r];
    }
  });
  return M;
}

std::pair<CoordBuffer, std::vector<value_t>> ttv(
    const SparseTensor& X, std::span<const value_t> v, std::size_t mode) {
  const std::size_t d = X.shape().rank();
  detail::require(d >= 2, "ttv requires rank >= 2");
  detail::require(mode < d, "ttv mode out of range");
  detail::require(v.size() == X.shape().extent(mode),
                  "ttv vector length does not match mode extent");

  // Reduced shape (mode removed) for deterministic row-major ordering.
  std::vector<index_t> reduced_extents;
  for (std::size_t dim = 0; dim < d; ++dim) {
    if (dim != mode) reduced_extents.push_back(X.shape().extent(dim));
  }
  const Shape reduced(std::move(reduced_extents));

  std::map<index_t, value_t> accumulated;
  std::vector<index_t> reduced_point(d - 1);
  X.for_each([&](std::span<const index_t> p, value_t value) {
    std::size_t out = 0;
    for (std::size_t dim = 0; dim < d; ++dim) {
      if (dim != mode) reduced_point[out++] = p[dim];
    }
    accumulated[linearize(reduced_point, reduced)] +=
        value * v[static_cast<std::size_t>(p[mode])];
  });

  // Materialize in ascending reduced-address order; each item writes only
  // its own output slots, so the fan-out stays bit-identical to the
  // sequential loop.
  const std::vector<std::pair<index_t, value_t>> ordered(accumulated.begin(),
                                                         accumulated.end());
  const std::size_t rank = d - 1;
  std::vector<index_t> flat(ordered.size() * rank);
  std::vector<value_t> values(ordered.size());
  parallel_for_each(ordered.size(), [&](std::size_t i) {
    delinearize(ordered[i].first, reduced,
                std::span<index_t>(flat.data() + i * rank, rank));
    values[i] = ordered[i].second;
  });
  return {CoordBuffer(rank, std::move(flat)), std::move(values)};
}

value_t norm_squared(const SparseTensor& X) {
  value_t total = 0.0;
  X.for_each([&](std::span<const index_t>, value_t value) {
    total += value * value;
  });
  return total;
}

}  // namespace artsparse
