// Issue collector for the deep-invariant validators. A validator appends one
// Issue per violated rule instead of throwing on the first, so fsck can
// report everything wrong with a fragment in one pass; callers that want
// fail-fast semantics (paranoid loads) convert a non-empty collector into a
// FormatError via raise_if_failed().
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace artsparse::check {

/// One violated invariant. `rule` is a stable machine-readable identifier
/// ("gcsr.row_ptr.monotone"); `detail` is the human-readable specifics.
struct Issue {
  std::string rule;
  std::string detail;
};

/// Append-only list of violations found by a validation pass.
class Issues {
 public:
  void add(std::string rule, std::string detail);

  bool ok() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  const std::vector<Issue>& items() const { return items_; }

  /// "rule: detail; rule: detail" — for error messages and logs.
  std::string summary() const;

  /// Throws FormatError with the summary when any issue was recorded.
  void raise_if_failed(const std::string& context) const;

 private:
  std::vector<Issue> items_;
};

}  // namespace artsparse::check
