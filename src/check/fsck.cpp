#include "check/fsck.hpp"

#include <algorithm>
#include <cstdio>

#include "core/error.hpp"
#include "storage/file_io.hpp"

namespace artsparse::check {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::size_t StoreReport::failed() const {
  std::size_t count = 0;
  for (const FragmentReport& fragment : fragments) {
    if (!fragment.ok()) ++count;
  }
  return count;
}

std::string StoreReport::to_json() const {
  std::string out = "{\"directory\": \"" + json_escape(directory) +
                    "\", \"depth\": \"" + check::to_string(depth) +
                    "\", \"checked\": " + std::to_string(checked()) +
                    ", \"failed\": " + std::to_string(failed()) +
                    ", \"strays\": [";
  bool first_stray = true;
  for (const std::string& stray : strays) {
    if (!first_stray) out += ", ";
    first_stray = false;
    out += "\"" + json_escape(stray) + "\"";
  }
  out += "], \"fragments\": [";
  bool first_fragment = true;
  for (const FragmentReport& fragment : fragments) {
    if (!first_fragment) out += ", ";
    first_fragment = false;
    out += "{\"path\": \"" + json_escape(fragment.path) + "\", \"issues\": [";
    bool first_issue = true;
    for (const Issue& issue : fragment.issues.items()) {
      if (!first_issue) out += ", ";
      first_issue = false;
      out += "{\"rule\": \"" + json_escape(issue.rule) + "\", \"detail\": \"" +
             json_escape(issue.detail) + "\"}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

FragmentReport check_fragment_file(const std::filesystem::path& path,
                                   Depth depth) {
  FragmentReport report;
  report.path = path.string();
  Bytes data;
  try {
    data = read_file(path.string());
  } catch (const Error& e) {
    report.issues.add("fragment.io", e.what());
    return report;
  }
  check_fragment_bytes(data, depth, report.issues);
  return report;
}

StoreReport check_store(const std::filesystem::path& directory, Depth depth) {
  std::error_code ec;
  if (!std::filesystem::is_directory(directory, ec)) {
    throw IoError("not a store directory: " + directory.string());
  }
  StoreReport report;
  report.directory = directory.string();
  report.depth = depth;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() == ".asf") {
      paths.push_back(entry.path());
    } else {
      report.strays.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::sort(report.strays.begin(), report.strays.end());
  report.fragments.reserve(paths.size());
  for (const auto& path : paths) {
    report.fragments.push_back(check_fragment_file(path, depth));
  }
  return report;
}

RepairReport repair_store(const std::filesystem::path& directory,
                          Depth depth) {
  std::error_code ec;
  if (!std::filesystem::is_directory(directory, ec)) {
    throw IoError("not a store directory: " + directory.string());
  }
  RepairReport report;
  report.directory = directory.string();
  report.depth = depth;
  std::vector<std::filesystem::path> fragments;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (!entry.is_regular_file()) continue;
    const std::filesystem::path& path = entry.path();
    if (path.extension() == ".asf") {
      fragments.push_back(path);
    } else if (path.extension() == kTmpSuffix) {
      std::filesystem::remove(path, ec);
      report.swept_tmp.push_back(path.string());
    } else {
      report.strays.push_back(path.string());
    }
  }
  std::sort(fragments.begin(), fragments.end());
  std::sort(report.swept_tmp.begin(), report.swept_tmp.end());
  std::sort(report.strays.begin(), report.strays.end());
  for (const auto& path : fragments) {
    ++report.checked;
    if (check_fragment_file(path, depth).ok()) continue;
    const std::filesystem::path aside = path.string() + kQuarantineSuffix;
    std::filesystem::rename(path, aside, ec);
    report.quarantined.push_back(path.string());
  }
  return report;
}

}  // namespace artsparse::check
