// Fragment-level deep validation: the engine behind paranoid loads and the
// `artsparse check` (fsck) command. Validation is layered by Depth so a
// store walk can trade coverage for cost:
//
//   kHeader    — checksum + header parse only (what discovery already pays)
//   kStructure — + decode the index and run the format's check_invariants()
//   kFull      — + O(n * d) cross-checks between index, header, and values
//                (slot coverage is a permutation, recomputed bounding box
//                and value statistics match the header)
#pragma once

#include <span>
#include <string>

#include "check/issues.hpp"
#include "core/types.hpp"

namespace artsparse::check {

/// How much of a fragment to validate.
enum class Depth {
  kHeader = 0,
  kStructure = 1,
  kFull = 2,
};

/// Parses "header" / "structure" / "full"; throws FormatError otherwise.
Depth depth_from_string(const std::string& name);
std::string to_string(Depth depth);

/// Validates one encoded fragment at `depth`, appending any violations to
/// `issues`. Never throws on malformed input: parse failures are reported
/// as issues (rule "fragment.decode" etc.).
void check_fragment_bytes(std::span<const std::byte> data, Depth depth,
                          Issues& issues);

}  // namespace artsparse::check
