#include "check/contracts.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/error.hpp"

namespace artsparse::check {

namespace {

/// -1 = no runtime override, 0 = forced off, 1 = forced on.
std::atomic<int> paranoid_override{-1};

bool env_or_compiled_default() {
  if (const char* env = std::getenv("ARTSPARSE_PARANOID")) {
    return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
             std::strcmp(env, "false") == 0 || env[0] == '\0');
  }
#ifdef ARTSPARSE_PARANOID_DEFAULT
  return true;
#else
  return false;
#endif
}

}  // namespace

void contract_failure(const char* expression, const char* message,
                      const char* file, int line) {
  throw FormatError(std::string("invariant violated: ") + message + " (" +
                    expression + ") at " + file + ":" + std::to_string(line));
}

bool paranoid_enabled() {
  const int forced = paranoid_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  // The environment is read once; later changes go through set_paranoid().
  static const bool from_env = env_or_compiled_default();
  return from_env;
}

void set_paranoid(std::optional<bool> enabled) {
  paranoid_override.store(enabled.has_value() ? (*enabled ? 1 : 0) : -1,
                          std::memory_order_relaxed);
}

}  // namespace artsparse::check
