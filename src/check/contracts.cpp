#include "check/contracts.hpp"

#include <atomic>
#include <string>

#include "core/env.hpp"
#include "core/error.hpp"

namespace artsparse::check {

namespace {

/// -1 = no runtime override, 0 = forced off, 1 = forced on.
std::atomic<int> paranoid_override{-1};

bool env_or_compiled_default() {
  // Shared flag contract (core/env): "0"/"off"/"false"/empty disable,
  // any other set value enables.
  if (const auto enabled = env_flag("ARTSPARSE_PARANOID")) {
    return *enabled;
  }
#ifdef ARTSPARSE_PARANOID_DEFAULT
  return true;
#else
  return false;
#endif
}

}  // namespace

void contract_failure(const char* expression, const char* message,
                      const char* file, int line) {
  throw FormatError(std::string("invariant violated: ") + message + " (" +
                    expression + ") at " + file + ":" + std::to_string(line));
}

bool paranoid_enabled() {
  const int forced = paranoid_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  // The environment is read once; later changes go through set_paranoid().
  static const bool from_env = env_or_compiled_default();
  return from_env;
}

void set_paranoid(std::optional<bool> enabled) {
  paranoid_override.store(enabled.has_value() ? (*enabled ? 1 : 0) : -1,
                          std::memory_order_relaxed);
}

}  // namespace artsparse::check
