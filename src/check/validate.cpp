#include "check/validate.hpp"

#include <algorithm>
#include <cstdint>

#include "core/box.hpp"
#include "core/coords.hpp"
#include "core/error.hpp"
#include "formats/format.hpp"
#include "formats/registry.hpp"
#include "storage/fragment.hpp"
#include "storage/serializer.hpp"

namespace artsparse::check {

Depth depth_from_string(const std::string& name) {
  if (name == "header") return Depth::kHeader;
  if (name == "structure") return Depth::kStructure;
  if (name == "full") return Depth::kFull;
  throw FormatError("unknown check depth '" + name +
                    "' (expected header, structure, or full)");
}

std::string to_string(Depth depth) {
  switch (depth) {
    case Depth::kHeader:
      return "header";
    case Depth::kStructure:
      return "structure";
    case Depth::kFull:
      return "full";
  }
  return "unknown";
}

namespace {

/// kHeader: checksum and self-consistent header fields.
bool check_header(std::span<const std::byte> data, FragmentInfo& info,
                  Issues& issues) {
  if (data.size() <= sizeof(std::uint32_t)) {
    issues.add("fragment.size", "file holds " + std::to_string(data.size()) +
                                    " bytes, too small for a fragment");
    return false;
  }
  const std::size_t body = data.size() - sizeof(std::uint32_t);
  BufferReader crc_reader(data.subspan(body));
  if (crc32(data.subspan(0, body)) != crc_reader.get_u32()) {
    issues.add("fragment.checksum", "stored crc32 does not match contents");
    return false;
  }
  try {
    info = decode_fragment_info(data);
  } catch (const Error& e) {
    issues.add("fragment.header", e.what());
    return false;
  }
  bool ok = true;
  if (!info.bbox.empty()) {
    if (info.bbox.rank() != info.shape.rank()) {
      issues.add("fragment.bbox.rank",
                 "bounding box rank " + std::to_string(info.bbox.rank()) +
                     " != shape rank " + std::to_string(info.shape.rank()));
      ok = false;
    } else {
      for (std::size_t dim = 0; dim < info.bbox.rank(); ++dim) {
        if (info.bbox.hi(dim) >= info.shape.extent(dim)) {
          issues.add("fragment.bbox.in_shape",
                     "bounding box dim " + std::to_string(dim) +
                         " reaches " + std::to_string(info.bbox.hi(dim)) +
                         ", past extent " +
                         std::to_string(info.shape.extent(dim)));
          ok = false;
          break;
        }
      }
    }
  }
  // One value per stored point: the write path reorganizes values with the
  // build map, which is a permutation of the points.
  if (info.value_count != info.point_count) {
    issues.add("fragment.counts",
               "fragment stores " + std::to_string(info.value_count) +
                   " values for " + std::to_string(info.point_count) +
                   " points");
    ok = false;
  }
  if (info.point_count > 0 && info.bbox.empty()) {
    issues.add("fragment.bbox.missing",
               "non-empty fragment has no bounding box");
    ok = false;
  }
  return ok;
}

/// kFull: cross-checks between the decoded index, the header, and the
/// values. O(n * d) — scans every stored point.
void check_full(const Fragment& fragment, const SparseFormat& format,
                Issues& issues) {
  CoordBuffer points(std::max<std::size_t>(fragment.shape.rank(), 1));
  std::vector<std::size_t> slots;
  try {
    format.scan_box(Box::whole(fragment.shape), points, slots);
  } catch (const Error& e) {
    issues.add("fragment.scan", e.what());
    return;
  }
  if (points.size() != fragment.point_count) {
    issues.add("fragment.scan.count",
               "index enumerates " + std::to_string(points.size()) +
                   " points but the header records " +
                   std::to_string(fragment.point_count));
    return;
  }
  // The slots must cover the value buffer exactly once — a broken build map
  // (or a forged index) silently pairs points with the wrong values.
  std::vector<bool> seen(fragment.values.size(), false);
  for (std::size_t slot : slots) {
    if (slot >= seen.size() || seen[slot]) {
      issues.add("fragment.slots.permutation",
                 "value slot " + std::to_string(slot) +
                     " is out of range or assigned twice");
      return;
    }
    seen[slot] = true;
  }
  if (!points.empty()) {
    const Box bbox = Box::bounding(points);
    if (!(bbox == fragment.bbox)) {
      issues.add("fragment.bbox.tight",
                 "recomputed bounding box " + bbox.to_string() +
                     " != header box " + fragment.bbox.to_string());
    }
  }
  if (!fragment.values.empty()) {
    const auto [min_it, max_it] =
        std::minmax_element(fragment.values.begin(), fragment.values.end());
    if (*min_it != fragment.value_min || *max_it != fragment.value_max) {
      issues.add("fragment.stats",
                 "header value range does not match stored values");
    }
  }
}

}  // namespace

void check_fragment_bytes(std::span<const std::byte> data, Depth depth,
                          Issues& issues) {
  FragmentInfo info;
  if (!check_header(data, info, issues) || depth == Depth::kHeader) {
    return;
  }

  Fragment fragment;
  try {
    fragment = decode_fragment(data);
  } catch (const Error& e) {
    issues.add("fragment.decode", e.what());
    return;
  }
  std::unique_ptr<SparseFormat> format;
  try {
    format = load_format(fragment.org, fragment.index);
  } catch (const Error& e) {
    issues.add("format.load", e.what());
    return;
  }
  if (format->point_count() != fragment.point_count) {
    issues.add("fragment.point_count",
               "index stores " + std::to_string(format->point_count()) +
                   " points but the header records " +
                   std::to_string(fragment.point_count));
  }
  if (!(format->tensor_shape() == fragment.shape)) {
    issues.add("fragment.shape",
               "index shape " + format->tensor_shape().to_string() +
                   " != header shape " + fragment.shape.to_string());
  }
  format->check_invariants(issues);

  if (depth == Depth::kFull && issues.ok()) {
    check_full(fragment, *format, issues);
  }
}

}  // namespace artsparse::check
