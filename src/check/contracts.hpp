// Contract layer of the artsparse::check subsystem.
//
// Two tiers, mirroring the cost split the paper's read path forces on a
// production store:
//
//   ARTSPARSE_ASSERT(cond, msg)   always-on, O(1) checks guarding raw
//                                 indexing in hot paths. Compiled into every
//                                 build; a failure throws FormatError so the
//                                 untrusted-deserialization contract ("bad
//                                 bytes surface as FormatError, never UB")
//                                 holds even for invariants a hostile
//                                 fragment managed to smuggle past load().
//
//   paranoid mode                 deep O(n) invariant validation (the
//                                 per-format check_invariants() pass) run at
//                                 every deserialization. Off by default;
//                                 enabled by the ARTSPARSE_PARANOID CMake
//                                 option, the ARTSPARSE_PARANOID environment
//                                 variable, or set_paranoid() at runtime.
#pragma once

#include <optional>

namespace artsparse::check {

/// Throws FormatError carrying the failed expression and source location.
[[noreturn]] void contract_failure(const char* expression, const char* message,
                                   const char* file, int line);

/// True when deep (O(n)) invariant checks should run on every load.
/// Precedence: set_paranoid() override, then the ARTSPARSE_PARANOID
/// environment variable ("0"/"off"/"false" disable, anything else enables),
/// then the compile-time default (ON iff built with -DARTSPARSE_PARANOID=ON).
bool paranoid_enabled();

/// Runtime override (CLI flags, tests). std::nullopt restores the
/// environment/compile-time default.
void set_paranoid(std::optional<bool> enabled);

/// RAII paranoid override for tests.
class ParanoidGuard {
 public:
  explicit ParanoidGuard(bool enabled) { set_paranoid(enabled); }
  ~ParanoidGuard() { set_paranoid(std::nullopt); }
  ParanoidGuard(const ParanoidGuard&) = delete;
  ParanoidGuard& operator=(const ParanoidGuard&) = delete;
};

}  // namespace artsparse::check

/// Always-on cheap invariant check; see file comment.
#define ARTSPARSE_ASSERT(cond, msg)                                       \
  (static_cast<bool>(cond)                                                \
       ? static_cast<void>(0)                                             \
       : ::artsparse::check::contract_failure(#cond, msg, __FILE__, __LINE__))
