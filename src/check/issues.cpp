#include "check/issues.hpp"

#include "core/error.hpp"

namespace artsparse::check {

void Issues::add(std::string rule, std::string detail) {
  items_.push_back(Issue{std::move(rule), std::move(detail)});
}

std::string Issues::summary() const {
  std::string out;
  for (const Issue& issue : items_) {
    if (!out.empty()) out += "; ";
    out += issue.rule;
    out += ": ";
    out += issue.detail;
  }
  return out;
}

void Issues::raise_if_failed(const std::string& context) const {
  if (ok()) return;
  throw FormatError(context + ": " + summary());
}

}  // namespace artsparse::check
