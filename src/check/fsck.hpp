// Store-level fsck: walks a FragmentStore directory, validates every
// fragment file at a chosen Depth, and reports per-fragment issues plus a
// machine-readable summary. This is the engine of `artsparse check`.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "check/issues.hpp"
#include "check/validate.hpp"

namespace artsparse::check {

/// Validation result for one fragment file.
struct FragmentReport {
  std::string path;  ///< file path, as walked
  Issues issues;

  bool ok() const { return issues.ok(); }
};

/// Validation result for a whole store directory.
struct StoreReport {
  std::string directory;
  Depth depth = Depth::kStructure;
  std::vector<FragmentReport> fragments;
  /// Non-fragment files found in the directory (orphaned .tmp stage files,
  /// .asf.quarantine casualties, operator droppings). Logged for the
  /// operator but not counted as corruption: they are never loaded.
  std::vector<std::string> strays;

  std::size_t checked() const { return fragments.size(); }
  std::size_t failed() const;
  bool ok() const { return failed() == 0; }

  /// One-object JSON summary ({"directory": ..., "fragments": [...]}).
  std::string to_json() const;
};

/// What `artsparse repair` did to a store directory: orphaned .tmp stage
/// files removed, fragments failing validation at the chosen depth renamed
/// to <name>.quarantine, stray files left in place but listed.
struct RepairReport {
  std::string directory;
  Depth depth = Depth::kHeader;
  std::vector<std::string> swept_tmp;
  std::vector<std::string> quarantined;
  std::vector<std::string> strays;
  std::size_t checked = 0;  ///< fragments validated (kept + quarantined)

  bool clean() const { return swept_tmp.empty() && quarantined.empty(); }
};

/// Recovery sweep of a store directory without opening it as a
/// FragmentStore (no tensor shape required): removes *.tmp orphans and
/// quarantines fragments that fail validation at `depth`. Safe to run on a
/// live directory between writes; never deletes fragment data (corrupt
/// files are renamed, not removed). Throws IoError when `directory` is not
/// a readable directory.
RepairReport repair_store(const std::filesystem::path& directory,
                          Depth depth = Depth::kHeader);

/// Validates every *.asf file under `directory` (sorted by name) at
/// `depth`. Unreadable files are reported as issues, not thrown. Throws
/// IoError only when `directory` itself is not a readable directory.
StoreReport check_store(const std::filesystem::path& directory, Depth depth);

/// Validates a single fragment file.
FragmentReport check_fragment_file(const std::filesystem::path& path,
                                   Depth depth);

}  // namespace artsparse::check
