// Store-level fsck: walks a FragmentStore directory, validates every
// fragment file at a chosen Depth, and reports per-fragment issues plus a
// machine-readable summary. This is the engine of `artsparse check`.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "check/issues.hpp"
#include "check/validate.hpp"

namespace artsparse::check {

/// Validation result for one fragment file.
struct FragmentReport {
  std::string path;  ///< file path, as walked
  Issues issues;

  bool ok() const { return issues.ok(); }
};

/// Validation result for a whole store directory.
struct StoreReport {
  std::string directory;
  Depth depth = Depth::kStructure;
  std::vector<FragmentReport> fragments;

  std::size_t checked() const { return fragments.size(); }
  std::size_t failed() const;
  bool ok() const { return failed() == 0; }

  /// One-object JSON summary ({"directory": ..., "fragments": [...]}).
  std::string to_json() const;
};

/// Validates every *.asf file under `directory` (sorted by name) at
/// `depth`. Unreadable files are reported as issues, not thrown. Throws
/// IoError only when `directory` itself is not a readable directory.
StoreReport check_store(const std::filesystem::path& directory, Depth depth);

/// Validates a single fragment file.
FragmentReport check_fragment_file(const std::filesystem::path& path,
                                   Depth depth);

}  // namespace artsparse::check
