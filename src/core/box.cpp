#include "core/box.hpp"

#include <algorithm>
#include <sstream>

#include "core/coords.hpp"
#include "core/error.hpp"

namespace artsparse {

Box::Box(std::vector<index_t> lo, std::vector<index_t> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  detail::require(lo_.size() == hi_.size(), "box lo/hi rank mismatch");
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    detail::require(lo_[i] <= hi_[i], "box lo must not exceed hi");
  }
}

Box Box::whole(const Shape& shape) {
  std::vector<index_t> lo(shape.rank(), 0);
  std::vector<index_t> hi(shape.rank());
  for (std::size_t i = 0; i < shape.rank(); ++i) {
    hi[i] = shape.extent(i) - 1;
  }
  return Box(std::move(lo), std::move(hi));
}

Box Box::from_origin_size(std::span<const index_t> origin,
                          std::span<const index_t> size) {
  detail::require(origin.size() == size.size(),
                  "region origin/size rank mismatch");
  std::vector<index_t> lo(origin.begin(), origin.end());
  std::vector<index_t> hi(origin.size());
  for (std::size_t i = 0; i < origin.size(); ++i) {
    detail::require(size[i] > 0, "region size must be positive");
    hi[i] = origin[i] + size[i] - 1;
  }
  return Box(std::move(lo), std::move(hi));
}

Box Box::bounding(const CoordBuffer& coords) {
  detail::require(!coords.empty(), "bounding box of empty coordinate buffer");
  const std::size_t d = coords.rank();
  std::vector<index_t> lo(coords.point(0).begin(), coords.point(0).end());
  std::vector<index_t> hi = lo;
  for (std::size_t i = 1; i < coords.size(); ++i) {
    const auto p = coords.point(i);
    for (std::size_t dim = 0; dim < d; ++dim) {
      lo[dim] = std::min(lo[dim], p[dim]);
      hi[dim] = std::max(hi[dim], p[dim]);
    }
  }
  return Box(std::move(lo), std::move(hi));
}

index_t Box::lo(std::size_t dim) const {
  detail::require(dim < lo_.size(), "box dimension out of range");
  return lo_[dim];
}

index_t Box::hi(std::size_t dim) const {
  detail::require(dim < hi_.size(), "box dimension out of range");
  return hi_[dim];
}

Shape Box::shape() const {
  std::vector<index_t> extents(lo_.size());
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    extents[i] = hi_[i] - lo_[i] + 1;
  }
  return Shape(std::move(extents));
}

index_t Box::cell_count() const {
  return empty() ? 0 : shape().element_count();
}

bool Box::contains(std::span<const index_t> point) const {
  if (point.size() != lo_.size()) return false;
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (point[i] < lo_[i] || point[i] > hi_[i]) return false;
  }
  return true;
}

bool Box::contains(const Box& other) const {
  if (other.rank() != rank() || empty() || other.empty()) return false;
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  }
  return true;
}

bool Box::overlaps(const Box& other) const {
  if (other.rank() != rank() || empty()) return false;
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
  }
  return true;
}

Box Box::intersect(const Box& other) const {
  if (!overlaps(other)) return Box();
  std::vector<index_t> lo(rank());
  std::vector<index_t> hi(rank());
  for (std::size_t i = 0; i < rank(); ++i) {
    lo[i] = std::max(lo_[i], other.lo_[i]);
    hi[i] = std::min(hi_[i], other.hi_[i]);
  }
  return Box(std::move(lo), std::move(hi));
}

std::string Box::to_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (i != 0) out << ", ";
    out << lo_[i] << ".." << hi_[i];
  }
  out << ']';
  return out.str();
}

void enumerate_cells(const Box& box, CoordBuffer& out) {
  detail::require(out.rank() == box.rank(),
                  "output buffer rank does not match box rank");
  if (box.empty()) return;
  const std::size_t d = box.rank();
  std::vector<index_t> cursor(box.lo().begin(), box.lo().end());
  out.reserve(out.size() + static_cast<std::size_t>(box.cell_count()));
  while (true) {
    out.append(cursor);
    // Row-major increment: bump the last dimension, carry leftwards.
    std::size_t dim = d;
    while (dim-- > 0) {
      if (cursor[dim] < box.hi(dim)) {
        ++cursor[dim];
        break;
      }
      cursor[dim] = box.lo(dim);
      if (dim == 0) return;
    }
  }
}

}  // namespace artsparse
