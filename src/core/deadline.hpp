// Time budgets and cooperative cancellation for long-running operations.
//
// A production multi-tenant store must bound *how long* an operation runs,
// not just whether it is admitted: retry backoff, token-bucket waits,
// modeled-device charges, and multi-fragment scans are all places a request
// can otherwise sleep unboundedly while the client has long since given up.
// This header provides the three pieces every blocking point shares:
//
//   - Deadline: an absolute point on the monotonic clock. Composable —
//     Deadline::earliest(parent, child) never extends a parent's budget.
//   - CancelToken: hierarchical cancellation. A child token observes its
//     parent's cancel; cancelling a child never affects the parent, so a
//     Service can cancel every session while one session cancels only its
//     own in-flight ops.
//   - OpContext: the {deadline, cancel} pair ambient to the current thread,
//     installed by ScopedOpContext at operation entry (Session ops) and
//     re-installed inside parallel_for workers, so deep storage code reads
//     the budget without threading a parameter through every signature.
//
// interruptible_sleep() is the ONE sanctioned blocking sleep in the tree
// (lint rule ASL006): it caps the wait at the ambient deadline and polls
// the cancel token, so no caller can accidentally reintroduce an
// uninterruptible wait.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace artsparse {

/// An absolute budget on the monotonic clock. Default-constructed deadlines
/// are unbounded (never expire); bounded ones expire and stay expired.
/// Copyable, immutable, trivially thread-safe.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unbounded: never expires, remaining_seconds() is +infinity.
  Deadline() = default;

  /// Unbounded, spelled out.
  static Deadline never() { return Deadline(); }

  /// Expires `seconds` from now (clamped at >= 0, i.e. already expired).
  static Deadline after_seconds(double seconds);

  /// Expires `ms` milliseconds from now. 0 means "already expired" — use
  /// never() (or a default Deadline) for "no budget".
  static Deadline after_ms(std::uint64_t ms);

  /// Expires at `at` on the monotonic clock.
  static Deadline at(Clock::time_point at_time);

  /// The earlier of the two; unbounded is the identity, so composing a
  /// child budget with an unbounded parent keeps the child's. A nested
  /// operation can only shrink the budget, never extend it.
  static Deadline earliest(const Deadline& a, const Deadline& b);

  bool bounded() const { return bounded_; }
  bool expired() const;

  /// Seconds left before expiry: +infinity when unbounded, clamped at 0
  /// once expired (never negative).
  double remaining_seconds() const;

  /// Meaningful only when bounded().
  Clock::time_point time_point() const { return at_; }

 private:
  bool bounded_ = false;
  Clock::time_point at_{};
};

/// Hierarchical cooperative cancellation flag. Default-constructed tokens
/// are inert (never cancelled, cancel() is a no-op, zero allocation);
/// root() makes a cancellable token and child() derives one that observes
/// every ancestor's cancel but whose own cancel() leaves ancestors (and
/// siblings) untouched. Copies share state. All operations are lock-free
/// atomics; safe to use from any thread.
class CancelToken {
 public:
  CancelToken() = default;

  /// A fresh cancellable root.
  static CancelToken root();

  /// A token cancelled when either this token (or any ancestor) or the
  /// child itself is cancelled. Deriving from an inert token yields a
  /// plain root (there is no ancestor to observe).
  CancelToken child() const;

  /// Cancels this token and every descendant. No-op on inert tokens;
  /// idempotent.
  void cancel() const;

  /// True once this token or any ancestor has been cancelled.
  bool cancelled() const;

  /// False only for inert (default-constructed) tokens.
  bool cancellable() const { return state_ != nullptr; }

 private:
  struct State {
    /// mutable: tokens share the state as const (the tree topology is
    /// immutable) while cancel() still flips the flag.
    mutable std::atomic<bool> cancelled{false};
    std::shared_ptr<const State> parent;  ///< immutable after construction
  };

  explicit CancelToken(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

/// The budget pair every blocking point consults. Value type: copying at
/// operation entry (and into parallel_for worker lambdas) is the intended
/// propagation mechanism.
struct OpContext {
  Deadline deadline;
  CancelToken cancel;

  bool cancelled() const { return cancel.cancelled(); }
  bool expired() const { return deadline.expired(); }
  /// True when the operation should stop: cancelled or out of budget.
  bool interrupted() const { return cancelled() || expired(); }
  /// True when waits must be bounded/observed at all (saves the slicing
  /// machinery for the common unbudgeted case).
  bool bounded() const { return deadline.bounded() || cancel.cancellable(); }
};

/// The ambient context of the calling thread: whatever the innermost live
/// ScopedOpContext installed, or an unbounded default when none is active.
const OpContext& current_op_context();

/// RAII installer for the ambient OpContext. Composes with any enclosing
/// scope — the effective deadline is the earlier of the two, and an inert
/// cancel token inherits the enclosing one — so a nested operation can
/// never escape its caller's budget. Destruction restores the previous
/// context. Stack-only; not movable.
class ScopedOpContext {
 public:
  explicit ScopedOpContext(const OpContext& ctx);
  ~ScopedOpContext();

  ScopedOpContext(const ScopedOpContext&) = delete;
  ScopedOpContext& operator=(const ScopedOpContext&) = delete;

 private:
  OpContext previous_;
};

/// Why a bounded wait returned.
enum class WaitResult {
  kCompleted,        ///< slept the full requested duration
  kDeadlineExpired,  ///< the context's deadline cut the wait short
  kCancelled,        ///< the context's cancel token fired during the wait
};

/// Sleeps up to `seconds`, capped at `ctx`'s remaining deadline budget and
/// polling its cancel token every ~2 ms. Returns why the wait ended; an
/// already-interrupted context returns immediately without sleeping. The
/// single sanctioned blocking sleep in the tree (ASL006): all other code
/// must wait through here so every wait is deadline-aware.
WaitResult interruptible_sleep(double seconds, const OpContext& ctx);

/// interruptible_sleep against the ambient thread context.
WaitResult interruptible_sleep(double seconds);

}  // namespace artsparse
