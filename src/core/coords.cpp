#include "core/coords.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/parallel.hpp"

namespace artsparse {

CoordBuffer::CoordBuffer(std::size_t rank, std::vector<index_t> flat)
    : rank_(rank), flat_(std::move(flat)) {
  detail::require(rank_ > 0, "CoordBuffer rank must be positive");
  detail::require(flat_.size() % rank_ == 0,
                  "flat coordinate buffer length is not a multiple of rank");
}

std::span<const index_t> CoordBuffer::point(std::size_t i) const {
  detail::require(i < size(), "CoordBuffer point index out of range");
  return {flat_.data() + i * rank_, rank_};
}

index_t CoordBuffer::at(std::size_t i, std::size_t dim) const {
  detail::require(i < size() && dim < rank_,
                  "CoordBuffer access out of range");
  return flat_[i * rank_ + dim];
}

void CoordBuffer::append(std::span<const index_t> point) {
  detail::require(point.size() == rank_,
                  "appended point rank does not match buffer rank");
  flat_.insert(flat_.end(), point.begin(), point.end());
}

void CoordBuffer::append(std::initializer_list<index_t> point) {
  append(std::span<const index_t>(point.begin(), point.size()));
}

CoordBuffer CoordBuffer::permuted(std::span<const std::size_t> perm) const {
  detail::require(perm.size() == size(),
                  "permutation length does not match point count");
  // Each output point owns a disjoint rank_-wide window of the flat buffer,
  // so the gather can be chunked across workers after a single pre-size.
  std::vector<index_t> flat(size() * rank_);
  parallel_for(0, perm.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const auto p = point(perm[i]);
      std::copy(p.begin(), p.end(), flat.begin() + i * rank_);
    }
  });
  return CoordBuffer(rank_, std::move(flat));
}

}  // namespace artsparse
