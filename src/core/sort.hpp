// Permutation-producing sorts. Every organization that sorts (GCSR++,
// GCSC++, CSF, sorted COO) must report where each input point moved so the
// caller can reorganize the value buffer to match (the `map` vector of
// Algorithms 1-3).
//
// The parallel pipeline (parallel_sort_permutation & friends) chunk-sorts
// with per-thread std::stable_sort and merges pairwise with std::merge.
// Because a stable sort's output permutation is *uniquely* determined by
// the keys, every path here — serial fallback, any chunk count, the
// counting-sort shortcut — produces bit-identical results for any
// ARTSPARSE_THREADS value. That is the determinism contract the fragment
// serialization tests pin down.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "core/parallel.hpp"
#include "core/types.hpp"

namespace artsparse {

/// Stable-sorts indices [0, keys.size()) by ascending key and returns the
/// permutation: result[i] is the original index of the element now at rank i.
std::vector<std::size_t> sort_permutation(std::span<const index_t> keys);

/// Parallel stable sort of a contiguous array: per-chunk std::stable_sort
/// followed by pairwise std::merge passes (left range wins ties, so chunk
/// order — ascending original position — is preserved). Falls back to a
/// single stable_sort below kParallelGrain elements or with one worker.
template <typename T, typename Less>
void parallel_stable_sort(std::vector<T>& data, Less less,
                          unsigned threads = 0) {
  const std::size_t n = data.size();
  if (threads == 0) threads = worker_count();
  if (threads <= 1 || n < kParallelGrain) {
    std::stable_sort(data.begin(), data.end(), less);
    return;
  }
  const std::size_t chunks = std::min<std::size_t>(threads, n);
  const std::size_t width0 = (n + chunks - 1) / chunks;
  parallel_for_each(
      chunks,
      [&](std::size_t c) {
        const std::size_t lo = c * width0;
        const std::size_t hi = std::min(n, lo + width0);
        if (lo < hi) {
          std::stable_sort(data.begin() + static_cast<std::ptrdiff_t>(lo),
                           data.begin() + static_cast<std::ptrdiff_t>(hi),
                           less);
        }
      },
      threads, /*grain=*/1);

  // Pairwise merge passes, ping-ponging between `data` and a scratch
  // buffer. Each pair is independent, so passes fan out across workers.
  std::vector<T> scratch(n);
  T* src = data.data();
  T* dst = scratch.data();
  for (std::size_t width = width0; width < n; width *= 2) {
    const std::size_t pairs = (n + 2 * width - 1) / (2 * width);
    parallel_for_each(
        pairs,
        [&, width](std::size_t p) {
          const std::size_t lo = p * 2 * width;
          const std::size_t mid = std::min(n, lo + width);
          const std::size_t hi = std::min(n, lo + 2 * width);
          std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo,
                     less);
        },
        threads, /*grain=*/1);
    std::swap(src, dst);
  }
  if (src == scratch.data()) {
    std::copy(scratch.begin(), scratch.end(), data.begin());
  }
}

/// Generic parallel sort_permutation: stable-sorts indices [0, n) with
/// `less` (an index comparator). Bit-identical to the serial stable_sort
/// path for any thread count.
template <typename Less>
std::vector<std::size_t> parallel_sort_permutation_by(std::size_t n,
                                                      Less less,
                                                      unsigned threads = 0) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  parallel_stable_sort(perm, less, threads);
  return perm;
}

/// Parallel variant of sort_permutation for plain integer keys. Sorts
/// (key, index) pairs — the index tiebreak *is* stability — which trades
/// 2x transient memory for cache-friendly comparisons on large inputs.
std::vector<std::size_t> parallel_sort_permutation(
    std::span<const index_t> keys, unsigned threads = 0);

/// Converts a rank->original permutation (as returned by sort_permutation)
/// into the paper's `map` vector: map[original] == new position. The WRITE
/// function uses this to reorganize b_data (Algorithm 3 line 5).
std::vector<std::size_t> invert_permutation(
    std::span<const std::size_t> perm);

/// Gathers values into sorted order: out[i] = values[perm[i]].
template <typename T>
std::vector<T> apply_permutation(std::span<const T> values,
                                 std::span<const std::size_t> perm) {
  std::vector<T> out;
  out.reserve(values.size());
  for (std::size_t p : perm) {
    out.push_back(values[p]);
  }
  return out;
}

/// Parallel gather: out[i] = values[perm[i]], chunked across workers (each
/// output slot is written exactly once, so the result is thread-count
/// independent).
template <typename T>
std::vector<T> parallel_gather(std::span<const T> values,
                               std::span<const std::size_t> perm,
                               unsigned threads = 0) {
  std::vector<T> out(perm.size());
  parallel_for(
      0, perm.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = values[perm[i]];
        }
      },
      threads);
  return out;
}

/// Bucket pointer array for CSR/CSC packaging: ptr has `buckets + 1`
/// entries with ptr[b] = #keys < b (so [ptr[b], ptr[b+1]) delimits bucket
/// b). Every key must be < buckets. Histograms per-chunk in parallel for
/// large inputs, then prefix-sums serially over the bucket axis.
std::vector<index_t> histogram_prefix(std::span<const index_t> keys,
                                      std::size_t buckets,
                                      unsigned threads = 0);

/// Pointer array + stable permutation from one counting pass.
struct CountingSort {
  std::vector<index_t> ptr;       ///< histogram_prefix() of the keys
  std::vector<std::size_t> perm;  ///< == sort_permutation(keys), in O(n)
};

/// Stable counting sort by bucket key: O(n + buckets) replacement for
/// sort_permutation when keys are small integers, returning the *same*
/// permutation (counting sort is stable) plus the CSR/CSC pointer array —
/// no second pass over sorted data needed. Every key must be < buckets.
CountingSort counting_sort_permutation(std::span<const index_t> keys,
                                       std::size_t buckets,
                                       unsigned threads = 0);

/// Gate shared by the format builders: counting sort pays off while the
/// bucket axis stays comparable to the input size. Depends only on the
/// input (never on thread count), preserving build determinism.
inline bool counting_sort_applicable(std::size_t n, std::size_t buckets) {
  return buckets <= std::max<std::size_t>(n, std::size_t{1} << 16);
}

/// True when perm is a permutation of [0, perm.size()).
bool is_permutation_of_iota(std::span<const std::size_t> perm);

}  // namespace artsparse
