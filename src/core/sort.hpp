// Permutation-producing sorts. Every organization that sorts (GCSR++,
// GCSC++, CSF, sorted COO) must report where each input point moved so the
// caller can reorganize the value buffer to match (the `map` vector of
// Algorithms 1-3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace artsparse {

/// Stable-sorts indices [0, keys.size()) by ascending key and returns the
/// permutation: result[i] is the original index of the element now at rank i.
std::vector<std::size_t> sort_permutation(std::span<const index_t> keys);

/// Converts a rank->original permutation (as returned by sort_permutation)
/// into the paper's `map` vector: map[original] == new position. The WRITE
/// function uses this to reorganize b_data (Algorithm 3 line 5).
std::vector<std::size_t> invert_permutation(
    std::span<const std::size_t> perm);

/// Gathers values into sorted order: out[i] = values[perm[i]].
template <typename T>
std::vector<T> apply_permutation(std::span<const T> values,
                                 std::span<const std::size_t> perm) {
  std::vector<T> out;
  out.reserve(values.size());
  for (std::size_t p : perm) {
    out.push_back(values[p]);
  }
  return out;
}

/// True when perm is a permutation of [0, perm.size()).
bool is_permutation_of_iota(std::span<const std::size_t> perm);

}  // namespace artsparse
