// Tensor shape: dimension extents plus the derived quantities every
// organization needs (row-major strides, element count, and the d-D -> 2-D
// flattening rule used by GCSR++/GCSC++).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace artsparse {

/// The 2-D shape GCSR++/GCSC++ map a d-dimensional tensor onto: the smallest
/// extent becomes one side, the product of the remaining extents the other
/// (Algorithm 1 line 6). `min_dim` records which original dimension was
/// chosen so reads can apply the identical transform.
struct Flat2D {
  index_t rows = 0;
  index_t cols = 0;
  std::size_t min_dim = 0;  ///< index of the smallest original extent
};

/// Immutable dimension extents of a (dense bounding) tensor.
///
/// All stride and element-count arithmetic is overflow-checked: the paper
/// calls out linear-address overflow as the practical risk of address-based
/// organizations, and we refuse to construct shapes whose element count
/// cannot be represented in index_t.
class Shape {
 public:
  Shape() = default;
  explicit Shape(std::vector<index_t> extents);
  Shape(std::initializer_list<index_t> extents);

  /// Number of dimensions (d in the paper).
  std::size_t rank() const { return extents_.size(); }
  bool empty() const { return extents_.empty(); }

  index_t extent(std::size_t dim) const;
  std::span<const index_t> extents() const { return extents_; }

  /// Row-major strides: stride[d-1] == 1, stride[i] = prod(extents[i+1..]).
  std::span<const index_t> strides() const { return strides_; }

  /// Total number of cells (dense), i.e. the linear address space size.
  index_t element_count() const { return element_count_; }

  /// Smallest extent, min{m_1, ..., m_d} in the complexity table.
  index_t min_extent() const;
  std::size_t min_extent_dim() const;

  /// The GCSR++/GCSC++ 2-D flattening: rows = min extent, cols = product of
  /// the others. For rank-1 shapes this degenerates to (extent, 1).
  Flat2D flatten_2d() const;

  /// Builds the cubic shapes used by the paper's evaluation (Table II),
  /// e.g. uniform(3, 512) == {512, 512, 512}.
  static Shape uniform(std::size_t rank, index_t extent);

  std::string to_string() const;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.extents_ == b.extents_;
  }

 private:
  void init();

  std::vector<index_t> extents_;
  std::vector<index_t> strides_;
  index_t element_count_ = 0;
};

}  // namespace artsparse
