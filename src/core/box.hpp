// Inclusive axis-aligned bounding boxes ("local boundary" in the paper's
// algorithms). Used to derive per-fragment shapes, to decide which fragments
// overlap a read query, and to describe the read regions of Algorithm 3.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/shape.hpp"
#include "core/types.hpp"

namespace artsparse {

class CoordBuffer;  // coords.hpp

/// [lo, hi] inclusive on every axis. An empty box has rank 0.
class Box {
 public:
  Box() = default;
  Box(std::vector<index_t> lo, std::vector<index_t> hi);

  /// Box covering a whole dense shape: [0, extent-1] per dimension.
  static Box whole(const Shape& shape);

  /// Box from a region origin + extent (the paper's read regions are given
  /// as start (m/2, ...) and size (m/10, ...)).
  static Box from_origin_size(std::span<const index_t> origin,
                              std::span<const index_t> size);

  /// Tight bounding box of a coordinate buffer ("extract local boundary from
  /// b_coor", Algorithms 1 and 2). Throws FormatError on an empty buffer.
  static Box bounding(const CoordBuffer& coords);

  std::size_t rank() const { return lo_.size(); }
  bool empty() const { return lo_.empty(); }

  index_t lo(std::size_t dim) const;
  index_t hi(std::size_t dim) const;
  std::span<const index_t> lo() const { return lo_; }
  std::span<const index_t> hi() const { return hi_; }

  /// Dense shape of the box: extent hi-lo+1 per dimension.
  Shape shape() const;

  /// Number of cells inside the box.
  index_t cell_count() const;

  bool contains(std::span<const index_t> point) const;
  bool contains(const Box& other) const;
  bool overlaps(const Box& other) const;

  /// Intersection; returns an empty box when disjoint.
  Box intersect(const Box& other) const;

  std::string to_string() const;

  friend bool operator==(const Box& a, const Box& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  std::vector<index_t> lo_;
  std::vector<index_t> hi_;
};

/// Enumerates every cell of `box` in row-major order, appending each
/// coordinate to `out`. Used to materialize the read queries of Algorithm 3
/// (the benchmark reads every cell of a contiguous region).
void enumerate_cells(const Box& box, CoordBuffer& out);

}  // namespace artsparse
