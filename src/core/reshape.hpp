// Dimension folding: lossless transformation of a d-dimensional sparse
// tensor into a lower-dimensional one by merging groups of adjacent
// dimensions (row-major within each group).
//
// This is the paper's finding (2) — "sparse high-dimensional tensor data
// can be transformed into lower-dimensional tensors, facilitating
// efficient storage and access" — exposed as a first-class operation
// instead of being buried inside GCSR++/GCSC++ (whose 2-D mapping is the
// special case fold({{0}, {1, ..., d-1}}) up to dimension choice).
#pragma once

#include <vector>

#include "core/coords.hpp"
#include "core/shape.hpp"

namespace artsparse {

/// A partition of the original dimensions into ordered groups; each group
/// becomes one dimension of the folded tensor. Groups must cover every
/// dimension exactly once; within a group, dimensions combine row-major in
/// the listed order.
using FoldGroups = std::vector<std::vector<std::size_t>>;

/// The canonical 2-D fold GCSR++ uses: the smallest extent alone, all
/// remaining dimensions (ascending) merged.
FoldGroups gcsr_fold(const Shape& shape);

/// Shape of the folded tensor. Throws FormatError when `groups` is not a
/// partition of [0, shape.rank()) or a group's merged extent overflows.
Shape fold_shape(const Shape& shape, const FoldGroups& groups);

/// Folds every coordinate. Point order is preserved, so value buffers need
/// no reorganization.
CoordBuffer fold_coords(const CoordBuffer& coords, const Shape& shape,
                        const FoldGroups& groups);

/// Inverse of fold_coords for a single point: reconstructs the original
/// d-dimensional coordinates from folded ones.
void unfold_point(std::span<const index_t> folded, const Shape& shape,
                  const FoldGroups& groups, std::span<index_t> out);

}  // namespace artsparse
