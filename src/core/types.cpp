#include "core/types.hpp"

#include "core/error.hpp"

namespace artsparse {

std::string to_string(OrgKind kind) {
  switch (kind) {
    case OrgKind::kCoo:
      return "COO";
    case OrgKind::kLinear:
      return "LINEAR";
    case OrgKind::kGcsr:
      return "GCSR++";
    case OrgKind::kGcsc:
      return "GCSC++";
    case OrgKind::kCsf:
      return "CSF";
    case OrgKind::kSortedCoo:
      return "SortedCOO";
    case OrgKind::kBcsr:
      return "BCSR";
  }
  throw FormatError("unknown OrgKind value");
}

OrgKind org_kind_from_string(const std::string& name) {
  for (OrgKind kind :
       {OrgKind::kCoo, OrgKind::kLinear, OrgKind::kGcsr, OrgKind::kGcsc,
        OrgKind::kCsf, OrgKind::kSortedCoo, OrgKind::kBcsr}) {
    if (to_string(kind) == name) return kind;
  }
  throw FormatError("unknown organization name: " + name);
}

}  // namespace artsparse
