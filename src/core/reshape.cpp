#include "core/reshape.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/error.hpp"

namespace artsparse {

namespace {

void validate_groups(const Shape& shape, const FoldGroups& groups) {
  std::vector<bool> seen(shape.rank(), false);
  std::size_t covered = 0;
  for (const auto& group : groups) {
    detail::require(!group.empty(), "fold group must not be empty");
    for (std::size_t dim : group) {
      detail::require(dim < shape.rank(), "fold group dimension OOB");
      detail::require(!seen[dim], "fold groups overlap");
      seen[dim] = true;
      ++covered;
    }
  }
  detail::require(covered == shape.rank(),
                  "fold groups must cover every dimension");
}

}  // namespace

FoldGroups gcsr_fold(const Shape& shape) {
  detail::require(shape.rank() >= 1, "fold of empty shape");
  const std::size_t min_dim = shape.min_extent_dim();
  FoldGroups groups(2);
  groups[0] = {min_dim};
  for (std::size_t dim = 0; dim < shape.rank(); ++dim) {
    if (dim != min_dim) groups[1].push_back(dim);
  }
  if (groups[1].empty()) groups.pop_back();  // rank-1 degenerates
  return groups;
}

Shape fold_shape(const Shape& shape, const FoldGroups& groups) {
  validate_groups(shape, groups);
  std::vector<index_t> extents;
  extents.reserve(groups.size());
  for (const auto& group : groups) {
    index_t extent = 1;
    for (std::size_t dim : group) {
      detail::require(
          shape.extent(dim) == 0 ||
              extent <= std::numeric_limits<index_t>::max() /
                            shape.extent(dim),
          "folded extent overflows");
      extent *= shape.extent(dim);
    }
    extents.push_back(extent);
  }
  return Shape(std::move(extents));
}

CoordBuffer fold_coords(const CoordBuffer& coords, const Shape& shape,
                        const FoldGroups& groups) {
  detail::require(coords.rank() == shape.rank(),
                  "coordinate rank does not match shape rank");
  validate_groups(shape, groups);
  CoordBuffer out(groups.size());
  out.reserve(coords.size());
  std::vector<index_t> folded(groups.size());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const auto p = coords.point(i);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      index_t address = 0;
      for (std::size_t dim : groups[g]) {
        detail::require(p[dim] < shape.extent(dim),
                        "coordinate outside tensor shape");
        address = address * shape.extent(dim) + p[dim];
      }
      folded[g] = address;
    }
    out.append(folded);
  }
  return out;
}

void unfold_point(std::span<const index_t> folded, const Shape& shape,
                  const FoldGroups& groups, std::span<index_t> out) {
  detail::require(folded.size() == groups.size(),
                  "folded point rank does not match group count");
  detail::require(out.size() == shape.rank(),
                  "output rank does not match shape rank");
  for (std::size_t g = 0; g < groups.size(); ++g) {
    index_t address = folded[g];
    for (std::size_t k = groups[g].size(); k-- > 0;) {
      const std::size_t dim = groups[g][k];
      out[dim] = address % shape.extent(dim);
      address /= shape.extent(dim);
    }
    detail::require(address == 0, "folded coordinate outside group extent");
  }
}

}  // namespace artsparse
