// Exception hierarchy. All library failures surface as artsparse::Error (or a
// subclass) carrying a contextual message; std:: exceptions never escape the
// public API except std::bad_alloc.
#pragma once

#include <stdexcept>
#include <string>

namespace artsparse {

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Arithmetic overflow while linearizing coordinates or sizing buffers.
/// The paper flags linear-address overflow as the main risk of the LINEAR
/// organization (Section II-B); we detect it instead of wrapping silently.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

/// Malformed input: shape/coordinate mismatches, bad serialized payloads,
/// unknown organization names, invariant violations on deserialize.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// Filesystem / IO failures, carrying errno context.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
  /// Builds an IoError from the current errno.
  static IoError from_errno(const std::string& op, const std::string& path);
};

namespace detail {
/// Throws FormatError with `message` unless `condition` holds.
void require(bool condition, const std::string& message);
}  // namespace detail

}  // namespace artsparse
