// Exception hierarchy. All library failures surface as artsparse::Error (or a
// subclass) carrying a contextual message; std:: exceptions never escape the
// public API except std::bad_alloc.
#pragma once

#include <stdexcept>
#include <string>

namespace artsparse {

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Arithmetic overflow while linearizing coordinates or sizing buffers.
/// The paper flags linear-address overflow as the main risk of the LINEAR
/// organization (Section II-B); we detect it instead of wrapping silently.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

/// Malformed input: shape/coordinate mismatches, bad serialized payloads,
/// unknown organization names, invariant violations on deserialize.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// True for errno classes worth retrying: transient conditions a parallel
/// filesystem clears on its own (interrupted syscalls, backpressure, quota
/// flushes in progress). EIO and friends are treated as permanent.
bool io_errno_retryable(int error_number);

/// Filesystem / IO failures. The raw errno travels as a field (0 when the
/// failure has no errno, e.g. a short read), so retry classification and
/// tests never parse the message text.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what, int error_number = 0)
      : Error(what), errno_value_(error_number) {}

  /// Builds an IoError from the current errno.
  static IoError from_errno(const std::string& op, const std::string& path);

  /// Builds an IoError from an explicit errno (fault injection, wrappers).
  static IoError with_errno(const std::string& op, const std::string& path,
                            int error_number);

  int errno_value() const { return errno_value_; }
  bool retryable() const { return io_errno_retryable(errno_value_); }

 private:
  int errno_value_ = 0;
};

/// A request bounced by admission control before any work ran: the tenant
/// was over one of its quotas. Carries which tenant and which quota axis
/// ("ops", "bytes", or "concurrency") so callers and tests never parse the
/// message text. The correct client response is back off and retry; the
/// store's state is untouched.
class OverloadedError : public Error {
 public:
  OverloadedError(const std::string& what, std::string tenant,
                  std::string quota)
      : Error(what), tenant_(std::move(tenant)), quota_(std::move(quota)) {}

  const std::string& tenant() const { return tenant_; }
  const std::string& quota() const { return quota_; }

 private:
  std::string tenant_;
  std::string quota_;
};

namespace detail {
/// Throws FormatError with `message` unless `condition` holds.
void require(bool condition, const std::string& message);
}  // namespace detail

}  // namespace artsparse
