// Exception hierarchy. All library failures surface as artsparse::Error (or a
// subclass) carrying a contextual message; std:: exceptions never escape the
// public API except std::bad_alloc.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace artsparse {

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Arithmetic overflow while linearizing coordinates or sizing buffers.
/// The paper flags linear-address overflow as the main risk of the LINEAR
/// organization (Section II-B); we detect it instead of wrapping silently.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

/// Malformed input: shape/coordinate mismatches, bad serialized payloads,
/// unknown organization names, invariant violations on deserialize.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// How the retry loop should treat a failing errno.
enum class IoErrnoClass {
  /// Clears on its own (EINTR, EAGAIN, EBUSY, ETIMEDOUT): retry freely
  /// within the policy's attempt budget.
  kTransient,
  /// Capacity exhaustion (ENOSPC, EDQUOT): *sometimes* transient — a quota
  /// flush or Lustre grant refresh in progress — but a genuinely full disk
  /// never clears, so retries are bounded separately
  /// (RetryPolicy::max_capacity_retries) and the store health machinery
  /// treats persistence as a degradation signal.
  kCapacity,
  /// Never worth retrying (EIO, EACCES, ENOENT, ...).
  kPermanent,
};
IoErrnoClass io_errno_class(int error_number);

/// True for errno classes worth retrying at all (transient or capacity);
/// EIO and friends are permanent. Capacity errnos are additionally subject
/// to the bounded-retry budget — see IoErrnoClass.
bool io_errno_retryable(int error_number);

/// Filesystem / IO failures. The raw errno travels as a field (0 when the
/// failure has no errno, e.g. a short read), so retry classification and
/// tests never parse the message text.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what, int error_number = 0)
      : Error(what), errno_value_(error_number) {}

  /// Builds an IoError from the current errno.
  static IoError from_errno(const std::string& op, const std::string& path);

  /// Builds an IoError from an explicit errno (fault injection, wrappers).
  static IoError with_errno(const std::string& op, const std::string& path,
                            int error_number);

  int errno_value() const { return errno_value_; }
  bool retryable() const { return io_errno_retryable(errno_value_); }

 private:
  int errno_value_ = 0;
};

/// A request bounced by admission control before any work ran: the tenant
/// was over one of its quotas. Carries which tenant and which quota axis
/// ("ops", "bytes", or "concurrency") so callers and tests never parse the
/// message text. The correct client response is back off and retry; the
/// store's state is untouched.
class OverloadedError : public Error {
 public:
  OverloadedError(const std::string& what, std::string tenant,
                  std::string quota)
      : Error(what), tenant_(std::move(tenant)), quota_(std::move(quota)) {}

  const std::string& tenant() const { return tenant_; }
  const std::string& quota() const { return quota_; }

 private:
  std::string tenant_;
  std::string quota_;
};

/// An operation ran out of its time budget (see core/deadline.hpp) before
/// completing: a retry loop whose next backoff would overrun the deadline,
/// an admission or throttle wait cut short, an injected delay interrupted.
/// Carries how many attempts ran and how long the operation had been going
/// so callers and tests never parse the message text. The store's on-disk
/// state is consistent: commit paths clean their staging files on the way
/// out, exactly as for any other mid-commit error.
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& what,
                                 std::size_t attempts = 1,
                                 double elapsed_seconds = 0.0)
      : Error(what), attempts_(attempts), elapsed_seconds_(elapsed_seconds) {}

  /// Tries made before the budget ran out (1 = never got past the first).
  std::size_t attempts() const { return attempts_; }
  /// Wall time the operation had consumed when it gave up.
  double elapsed_seconds() const { return elapsed_seconds_; }

 private:
  std::size_t attempts_ = 1;
  double elapsed_seconds_ = 0.0;
};

/// The operation's CancelToken fired: the client (or its session) asked for
/// the work to stop. Like DeadlineExceededError, the store's state is
/// consistent; unlike it, retrying is pointless until whoever cancelled
/// says otherwise.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// The store is in degraded read-only mode (persistent ENOSPC/EIO on the
/// commit path) and fails writes fast instead of burning their retry
/// budgets against a disk that cannot accept them. Reads are unaffected.
/// Carries the store directory and the errno that tripped degradation.
/// The store probes the device and re-admits writes automatically once it
/// recovers — the correct client response is to retry later.
class StoreDegradedError : public Error {
 public:
  StoreDegradedError(const std::string& what, std::string directory,
                     int last_errno)
      : Error(what),
        directory_(std::move(directory)),
        last_errno_(last_errno) {}

  const std::string& directory() const { return directory_; }
  /// The errno whose persistence degraded the store (ENOSPC, EIO, ...).
  int last_errno() const { return last_errno_; }

 private:
  std::string directory_;
  int last_errno_ = 0;
};

namespace detail {
/// Throws FormatError with `message` unless `condition` holds.
void require(bool condition, const std::string& message);
}  // namespace detail

}  // namespace artsparse
