#include "core/error.hpp"

#include <cerrno>
#include <system_error>

namespace artsparse {

bool io_errno_retryable(int error_number) {
  switch (error_number) {
    case EINTR:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EBUSY:
    case ETIMEDOUT:
    case ENOSPC:  // quota flush / Lustre grant refresh in progress
      return true;
    default:
      return false;
  }
}

IoError IoError::from_errno(const std::string& op, const std::string& path) {
  return with_errno(op, path, errno);
}

IoError IoError::with_errno(const std::string& op, const std::string& path,
                            int error_number) {
  // std::generic_category().message() instead of std::strerror: same
  // text, but thread-safe (strerror may reuse one static buffer, which
  // concurrent fault-injected commits would race on).
  return IoError(op + " '" + path + "': " +
                     std::generic_category().message(error_number),
                 error_number);
}

namespace detail {
void require(bool condition, const std::string& message) {
  if (!condition) {
    throw FormatError(message);
  }
}
}  // namespace detail

}  // namespace artsparse
