#include "core/error.hpp"

#include <cerrno>
#include <cstring>

namespace artsparse {

IoError IoError::from_errno(const std::string& op, const std::string& path) {
  const int err = errno;
  return IoError(op + " '" + path + "': " + std::strerror(err));
}

namespace detail {
void require(bool condition, const std::string& message) {
  if (!condition) {
    throw FormatError(message);
  }
}
}  // namespace detail

}  // namespace artsparse
