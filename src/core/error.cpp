#include "core/error.hpp"

#include <cerrno>
#include <system_error>

namespace artsparse {

IoErrnoClass io_errno_class(int error_number) {
  switch (error_number) {
    case EINTR:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EBUSY:
    case ETIMEDOUT:
      return IoErrnoClass::kTransient;
    // Capacity errnos are only *sometimes* transient (quota flush / Lustre
    // grant refresh in progress); a genuinely full disk never clears, so
    // the retry loop bounds these separately instead of burning the whole
    // backoff schedule against them.
    case ENOSPC:
#if defined(EDQUOT)
    case EDQUOT:
#endif
      return IoErrnoClass::kCapacity;
    default:
      return IoErrnoClass::kPermanent;
  }
}

bool io_errno_retryable(int error_number) {
  return io_errno_class(error_number) != IoErrnoClass::kPermanent;
}

IoError IoError::from_errno(const std::string& op, const std::string& path) {
  return with_errno(op, path, errno);
}

IoError IoError::with_errno(const std::string& op, const std::string& path,
                            int error_number) {
  // std::generic_category().message() instead of std::strerror: same
  // text, but thread-safe (strerror may reuse one static buffer, which
  // concurrent fault-injected commits would race on).
  return IoError(op + " '" + path + "': " +
                     std::generic_category().message(error_number),
                 error_number);
}

namespace detail {
void require(bool condition, const std::string& message) {
  if (!condition) {
    throw FormatError(message);
  }
}
}  // namespace detail

}  // namespace artsparse
