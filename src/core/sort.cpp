#include "core/sort.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace artsparse {

std::vector<std::size_t> sort_permutation(std::span<const index_t> keys) {
  std::vector<std::size_t> perm(keys.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) {
                     return keys[a] < keys[b];
                   });
  return perm;
}

std::vector<std::size_t> invert_permutation(
    std::span<const std::size_t> perm) {
  std::vector<std::size_t> inverse(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    detail::require(perm[i] < perm.size(), "permutation entry out of range");
    inverse[perm[i]] = i;
  }
  return inverse;
}

bool is_permutation_of_iota(std::span<const std::size_t> perm) {
  std::vector<bool> seen(perm.size(), false);
  for (std::size_t p : perm) {
    if (p >= perm.size() || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

}  // namespace artsparse
