#include "core/sort.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"
#include "core/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace artsparse {

namespace {

/// Per-chunk histogram memory is chunks * buckets words; past this bucket
/// count the serial single-histogram pass is both cheaper and cache-kinder.
constexpr std::size_t kMaxParallelBuckets = std::size_t{1} << 20;

/// Histogram fan-out cap, independent of ARTSPARSE_THREADS (which the env
/// parser allows up to 1024): bounds transient memory at
/// kMaxHistogramChunks * buckets words. Chunk count never changes results.
constexpr std::size_t kMaxHistogramChunks = 64;

/// Shared chunk geometry for the histogram/scatter passes.
struct ChunkPlan {
  std::size_t chunks;
  std::size_t per_chunk;
};

ChunkPlan histogram_plan(std::size_t n, unsigned threads) {
  const std::size_t chunks =
      std::min({static_cast<std::size_t>(threads), kMaxHistogramChunks, n});
  return ChunkPlan{chunks, (n + chunks - 1) / chunks};
}

void count_chunk(std::span<const index_t> keys, std::size_t lo,
                 std::size_t hi, std::size_t buckets, index_t* counts) {
  for (std::size_t i = lo; i < hi; ++i) {
    detail::require(keys[i] < buckets, "histogram key out of bucket range");
    ++counts[keys[i]];
  }
}

}  // namespace

std::vector<std::size_t> sort_permutation(std::span<const index_t> keys) {
  std::vector<std::size_t> perm(keys.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) {
                     return keys[a] < keys[b];
                   });
  return perm;
}

std::vector<std::size_t> parallel_sort_permutation(
    std::span<const index_t> keys, unsigned threads) {
  const std::size_t n = keys.size();
  if (threads == 0) threads = worker_count();
  if (threads <= 1 || n < kParallelGrain) {
    return sort_permutation(keys);
  }

  ARTSPARSE_SPAN_TYPE span("sort.parallel", "build");
  span.attr("points", static_cast<std::uint64_t>(n));
  span.attr("threads", static_cast<std::uint64_t>(threads));
  WallTimer timer;

  // (key, index) pairs: the index tiebreak reproduces stable order while
  // keeping comparisons on contiguous memory instead of chasing keys[].
  std::vector<std::pair<index_t, std::size_t>> tagged(n);
  parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          tagged[i] = {keys[i], i};
        }
      },
      threads);
  parallel_stable_sort(
      tagged,
      [](const std::pair<index_t, std::size_t>& a,
         const std::pair<index_t, std::size_t>& b) { return a < b; },
      threads);
  std::vector<std::size_t> perm(n);
  parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          perm[i] = tagged[i].second;
        }
      },
      threads);
  ARTSPARSE_OBSERVE("artsparse_parallel_sort_ns", timer.seconds() * 1e9);
  return perm;
}

std::vector<index_t> histogram_prefix(std::span<const index_t> keys,
                                      std::size_t buckets,
                                      unsigned threads) {
  const std::size_t n = keys.size();
  if (threads == 0) threads = worker_count();
  std::vector<index_t> ptr(buckets + 1, 0);
  if (threads <= 1 || n < kParallelGrain || buckets > kMaxParallelBuckets) {
    count_chunk(keys, 0, n, buckets, ptr.data() + 1);
  } else {
    const ChunkPlan plan = histogram_plan(n, threads);
    std::vector<index_t> counts(plan.chunks * buckets, 0);
    parallel_for_each(
        plan.chunks,
        [&](std::size_t c) {
          const std::size_t lo = c * plan.per_chunk;
          const std::size_t hi = std::min(n, lo + plan.per_chunk);
          count_chunk(keys, lo, hi, buckets, counts.data() + c * buckets);
        },
        threads, /*grain=*/1);
    for (std::size_t c = 0; c < plan.chunks; ++c) {
      const index_t* chunk = counts.data() + c * buckets;
      for (std::size_t b = 0; b < buckets; ++b) {
        ptr[b + 1] += chunk[b];
      }
    }
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    ptr[b + 1] += ptr[b];
  }
  return ptr;
}

CountingSort counting_sort_permutation(std::span<const index_t> keys,
                                       std::size_t buckets,
                                       unsigned threads) {
  const std::size_t n = keys.size();
  if (threads == 0) threads = worker_count();
  CountingSort out;
  out.perm.resize(n);
  if (threads <= 1 || n < kParallelGrain || buckets > kMaxParallelBuckets) {
    out.ptr = histogram_prefix(keys, buckets, 1);
    std::vector<index_t> cursor(out.ptr.begin(), out.ptr.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      out.perm[cursor[keys[i]]++] = i;
    }
    return out;
  }

  ARTSPARSE_SPAN_TYPE span("sort.counting", "build");
  span.attr("points", static_cast<std::uint64_t>(n));
  span.attr("buckets", static_cast<std::uint64_t>(buckets));
  WallTimer timer;

  const ChunkPlan plan = histogram_plan(n, threads);
  std::vector<index_t> counts(plan.chunks * buckets, 0);
  parallel_for_each(
      plan.chunks,
      [&](std::size_t c) {
        const std::size_t lo = c * plan.per_chunk;
        const std::size_t hi = std::min(n, lo + plan.per_chunk);
        count_chunk(keys, lo, hi, buckets, counts.data() + c * buckets);
      },
      threads, /*grain=*/1);

  out.ptr.assign(buckets + 1, 0);
  for (std::size_t c = 0; c < plan.chunks; ++c) {
    const index_t* chunk = counts.data() + c * buckets;
    for (std::size_t b = 0; b < buckets; ++b) {
      out.ptr[b + 1] += chunk[b];
    }
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    out.ptr[b + 1] += out.ptr[b];
  }

  // Turn counts into per-(chunk, bucket) write cursors: chunk c's slice of
  // bucket b starts after ptr[b] plus every earlier chunk's b-count. Lower
  // chunks hold lower original indices, so in-chunk input order + this
  // chunk ordering is exactly stable_sort's tie order.
  for (std::size_t b = 0; b < buckets; ++b) {
    index_t running = out.ptr[b];
    for (std::size_t c = 0; c < plan.chunks; ++c) {
      index_t& slot = counts[c * buckets + b];
      const index_t count = slot;
      slot = running;
      running += count;
    }
  }
  parallel_for_each(
      plan.chunks,
      [&](std::size_t c) {
        index_t* cursor = counts.data() + c * buckets;
        const std::size_t lo = c * plan.per_chunk;
        const std::size_t hi = std::min(n, lo + plan.per_chunk);
        for (std::size_t i = lo; i < hi; ++i) {
          out.perm[cursor[keys[i]]++] = i;
        }
      },
      threads, /*grain=*/1);
  ARTSPARSE_OBSERVE("artsparse_counting_sort_ns", timer.seconds() * 1e9);
  return out;
}

std::vector<std::size_t> invert_permutation(
    std::span<const std::size_t> perm) {
  std::vector<std::size_t> inverse(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    detail::require(perm[i] < perm.size(), "permutation entry out of range");
    inverse[perm[i]] = i;
  }
  return inverse;
}

bool is_permutation_of_iota(std::span<const std::size_t> perm) {
  std::vector<bool> seen(perm.size(), false);
  for (std::size_t p : perm) {
    if (p >= perm.size() || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

}  // namespace artsparse
