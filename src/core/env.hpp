// Hardened environment-variable parsing, shared by every ARTSPARSE_* knob.
//
// PR 5 established the parsing contract for ARTSPARSE_THREADS: reject an
// empty value and trailing garbage ("4x") instead of honoring the
// accidental prefix, treat values below the knob's floor as malformed, and
// clamp oversized values (including ERANGE saturation) to the knob's
// ceiling instead of letting an integer conversion wrap to nonsense. This
// header is that contract as a reusable helper, so the cache budget, trace
// capacity, worker count, and the service layer's ARTSPARSE_TENANT_*
// quota knobs all parse the same way.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace artsparse {

/// Parses the environment variable `name` as a base-10 unsigned integer.
///
/// Returns nullopt when the variable is unset, empty, has trailing
/// garbage, is negative, or parses below `floor` — malformed settings are
/// ignored in favor of the caller's default rather than half-honored.
/// Values above `ceiling` (including strtoull's ERANGE saturation) clamp
/// to `ceiling`.
std::optional<std::uint64_t> env_u64(
    const char* name, std::uint64_t floor = 0,
    std::uint64_t ceiling = UINT64_MAX);

/// env_u64 over an explicit text value instead of the process environment
/// (testable core; env_u64 is getenv + this).
std::optional<std::uint64_t> parse_env_u64(
    const char* text, std::uint64_t floor = 0,
    std::uint64_t ceiling = UINT64_MAX);

/// Parses the environment variable `name` as a boolean switch.
///
/// Returns nullopt when unset. Set-but-falsy values — "", "0", "false",
/// "off", "no" (ASCII case-insensitive) — return false; anything else
/// returns true, so `ARTSPARSE_TRACE=1`, `=on`, and `=yes` all enable.
/// One shared falsy set instead of each knob improvising its own ("0" vs
/// "off" vs empty) keeps every ARTSPARSE_* switch consistent.
std::optional<bool> env_flag(const char* name);

/// env_flag over an explicit text value (testable core; nullptr = unset).
std::optional<bool> parse_env_flag(const char* text);

/// Returns the environment variable `name` verbatim, or nullopt when
/// unset. The single sanctioned way to read a free-form string knob
/// (fault specs, paths) — call sites outside core/env must not call
/// std::getenv directly (linter rule ASL001).
std::optional<std::string> env_string(const char* name);

}  // namespace artsparse
