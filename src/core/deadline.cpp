#include "core/deadline.hpp"

#include <algorithm>
#include <limits>
#include <thread>

namespace artsparse {

namespace {

/// Cancellation poll granularity inside interruptible_sleep. Bounds the
/// latency between CancelToken::cancel() and a sleeping waiter noticing.
constexpr double kCancelPollSec = 2e-3;

thread_local OpContext g_ambient_context;

}  // namespace

Deadline Deadline::after_seconds(double seconds) {
  Deadline d;
  d.bounded_ = true;
  d.at_ = Clock::now() +
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(std::max(seconds, 0.0)));
  return d;
}

Deadline Deadline::after_ms(std::uint64_t ms) {
  return after_seconds(static_cast<double>(ms) / 1e3);
}

Deadline Deadline::at(Clock::time_point at_time) {
  Deadline d;
  d.bounded_ = true;
  d.at_ = at_time;
  return d;
}

Deadline Deadline::earliest(const Deadline& a, const Deadline& b) {
  if (!a.bounded_) return b;
  if (!b.bounded_) return a;
  return a.at_ <= b.at_ ? a : b;
}

bool Deadline::expired() const {
  return bounded_ && Clock::now() >= at_;
}

double Deadline::remaining_seconds() const {
  if (!bounded_) return std::numeric_limits<double>::infinity();
  const double left = std::chrono::duration<double>(at_ - Clock::now()).count();
  return std::max(left, 0.0);
}

CancelToken CancelToken::root() {
  return CancelToken(std::make_shared<const State>());
}

CancelToken CancelToken::child() const {
  auto state = std::make_shared<State>();
  state->parent = state_;
  return CancelToken(std::shared_ptr<const State>(std::move(state)));
}

void CancelToken::cancel() const {
  if (state_ != nullptr) {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }
}

bool CancelToken::cancelled() const {
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_relaxed)) return true;
  }
  return false;
}

const OpContext& current_op_context() { return g_ambient_context; }

ScopedOpContext::ScopedOpContext(const OpContext& ctx)
    : previous_(g_ambient_context) {
  OpContext composed;
  composed.deadline = Deadline::earliest(previous_.deadline, ctx.deadline);
  composed.cancel = ctx.cancel.cancellable() ? ctx.cancel : previous_.cancel;
  g_ambient_context = composed;
}

ScopedOpContext::~ScopedOpContext() { g_ambient_context = previous_; }

WaitResult interruptible_sleep(double seconds, const OpContext& ctx) {
  if (ctx.cancelled()) return WaitResult::kCancelled;
  if (ctx.expired()) return WaitResult::kDeadlineExpired;
  if (seconds <= 0.0) return WaitResult::kCompleted;

  if (!ctx.bounded()) {
    // Nothing can interrupt the wait: one plain sleep, no poll slicing.
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    return WaitResult::kCompleted;
  }

  const auto wake =
      Deadline::Clock::now() +
      std::chrono::duration_cast<Deadline::Clock::duration>(
          std::chrono::duration<double>(seconds));
  for (;;) {
    const double left =
        std::chrono::duration<double>(wake - Deadline::Clock::now()).count();
    if (left <= 0.0) return WaitResult::kCompleted;
    const double budget = ctx.deadline.remaining_seconds();
    if (budget <= 0.0) return WaitResult::kDeadlineExpired;
    const double slice = std::min({left, budget, kCancelPollSec});
    std::this_thread::sleep_for(std::chrono::duration<double>(slice));
    if (ctx.cancelled()) return WaitResult::kCancelled;
  }
}

WaitResult interruptible_sleep(double seconds) {
  return interruptible_sleep(seconds, current_op_context());
}

}  // namespace artsparse
