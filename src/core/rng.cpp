#include "core/rng.hpp"

namespace artsparse {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 mix(seed);
  for (auto& word : s_) {
    word = mix.next();
  }
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method: unbiased and division-free in
  // the common case.
  std::uint64_t x = next();
  unsigned __int128 m =
      static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<unsigned __int128>(x) *
          static_cast<unsigned __int128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace artsparse
