#include "core/shape.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "core/error.hpp"

namespace artsparse {

namespace {

/// a * b with overflow detection.
index_t checked_mul(index_t a, index_t b) {
  if (a != 0 && b > std::numeric_limits<index_t>::max() / a) {
    throw OverflowError("shape element count overflows 64-bit index space");
  }
  return a * b;
}

}  // namespace

Shape::Shape(std::vector<index_t> extents) : extents_(std::move(extents)) {
  init();
}

Shape::Shape(std::initializer_list<index_t> extents)
    : extents_(extents) {
  init();
}

void Shape::init() {
  for (index_t e : extents_) {
    detail::require(e > 0, "shape extents must be positive");
  }
  strides_.assign(extents_.size(), 1);
  element_count_ = extents_.empty() ? 0 : 1;
  for (std::size_t i = extents_.size(); i-- > 0;) {
    if (i + 1 < extents_.size()) {
      strides_[i] = checked_mul(strides_[i + 1], extents_[i + 1]);
    }
    element_count_ = checked_mul(element_count_, extents_[i]);
  }
}

index_t Shape::extent(std::size_t dim) const {
  detail::require(dim < extents_.size(), "shape dimension out of range");
  return extents_[dim];
}

index_t Shape::min_extent() const {
  detail::require(!extents_.empty(), "min_extent() on empty shape");
  return *std::min_element(extents_.begin(), extents_.end());
}

std::size_t Shape::min_extent_dim() const {
  detail::require(!extents_.empty(), "min_extent_dim() on empty shape");
  return static_cast<std::size_t>(
      std::min_element(extents_.begin(), extents_.end()) - extents_.begin());
}

Flat2D Shape::flatten_2d() const {
  detail::require(!extents_.empty(), "flatten_2d() on empty shape");
  Flat2D flat;
  flat.min_dim = min_extent_dim();
  flat.rows = extents_[flat.min_dim];
  flat.cols = 1;
  for (std::size_t i = 0; i < extents_.size(); ++i) {
    if (i != flat.min_dim) {
      flat.cols = checked_mul(flat.cols, extents_[i]);
    }
  }
  return flat;
}

Shape Shape::uniform(std::size_t rank, index_t extent) {
  return Shape(std::vector<index_t>(rank, extent));
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << '(';
  for (std::size_t i = 0; i < extents_.size(); ++i) {
    if (i != 0) out << " x ";
    out << extents_[i];
  }
  out << ')';
  return out.str();
}

}  // namespace artsparse
