// Core type aliases and enumerations shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace artsparse {

/// Coordinate / linear-address integer type. The paper standardizes on
/// `unsigned long long int` (8 bytes) for coordinates; we do the same.
using index_t = std::uint64_t;

/// Value payload type used by the benchmark system. The paper notes the
/// value size is constant across organizations, so a single type suffices.
using value_t = double;

/// Byte buffer used for serialized index structures and fragment payloads.
using Bytes = std::vector<std::byte>;

/// The five storage organizations studied by the paper, plus the sorted-COO
/// variant the paper discusses as a build/read trade-off (Section II-A).
enum class OrgKind : std::uint8_t {
  kCoo = 0,
  kLinear = 1,
  kGcsr = 2,    ///< GCSR++ (Algorithm 1)
  kGcsc = 3,    ///< GCSC++ (Section II-D)
  kCsf = 4,     ///< Compressed Sparse Fiber tree (Algorithm 2)
  kSortedCoo = 5,
  kBcsr = 6,  ///< Block-CSR extension (Related Work [30]); not in the
              ///< paper's evaluated five
};

/// All organizations evaluated in the paper's figures, in the paper's order.
inline constexpr OrgKind kPaperOrgs[] = {
    OrgKind::kCoo, OrgKind::kLinear, OrgKind::kGcsr, OrgKind::kGcsc,
    OrgKind::kCsf};

/// Human-readable name as used in the paper ("COO", "LINEAR", ...).
std::string to_string(OrgKind kind);

/// Inverse of to_string(); throws FormatError on unknown names.
OrgKind org_kind_from_string(const std::string& name);

}  // namespace artsparse
