#include "core/parallel.hpp"

#include <algorithm>
#include <exception>
#include <mutex>

#include "core/deadline.hpp"
#include "core/env.hpp"

namespace artsparse {

namespace detail {

namespace {
ThreadSpawner g_thread_spawner = nullptr;
}  // namespace

void set_thread_spawner_for_testing(ThreadSpawner spawner) {
  g_thread_spawner = spawner;
}

namespace {

std::thread spawn_worker(std::function<void()> work) {
  if (g_thread_spawner != nullptr) {
    return g_thread_spawner(std::move(work));
  }
  return std::thread(std::move(work));
}

}  // namespace

}  // namespace detail

unsigned worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned fallback = hw == 0 ? 1 : hw;
  // Hardened parse (core/env): empty values, trailing garbage ("4x"),
  // negatives, and zero are ignored; oversized values clamp to
  // kMaxWorkerThreads.
  return static_cast<unsigned>(
      env_u64("ARTSPARSE_THREADS", /*floor=*/1, kMaxWorkerThreads)
          .value_or(fallback));
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  unsigned threads, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (threads == 0) threads = worker_count();
  if (threads <= 1 || n < grain || n < 2) {
    fn(begin, end);
    return;
  }

  const std::size_t chunks = std::min<std::size_t>(threads, n);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  std::vector<std::thread> workers;
  workers.reserve(chunks);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  // The caller's deadline/cancel budget is thread-local, which a fresh
  // worker thread would not inherit; re-install it so blocking points
  // inside fn (throttle charges, retries, fault delays) stay bounded.
  const OpContext ambient = current_op_context();

  try {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * per_chunk;
      const std::size_t hi = std::min(end, lo + per_chunk);
      if (lo >= hi) break;
      workers.push_back(detail::spawn_worker([&, ambient, lo, hi] {
        const ScopedOpContext op_scope(ambient);
        try {
          fn(lo, hi);
        } catch (...) {
          const std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }));
    }
  } catch (...) {
    // Thread construction failed (e.g. std::system_error on exhaustion)
    // partway through the spawn loop: join what did start before
    // propagating, or their destructors would call std::terminate.
    for (std::thread& worker : workers) {
      worker.join();
    }
    throw;
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace artsparse
