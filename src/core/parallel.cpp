#include "core/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <mutex>

namespace artsparse {

unsigned worker_count() {
  if (const char* env = std::getenv("ARTSPARSE_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  unsigned threads, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (threads == 0) threads = worker_count();
  if (threads <= 1 || n < grain || n < 2) {
    fn(begin, end);
    return;
  }

  const std::size_t chunks = std::min<std::size_t>(threads, n);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  std::vector<std::thread> workers;
  workers.reserve(chunks);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per_chunk;
    const std::size_t hi = std::min(end, lo + per_chunk);
    if (lo >= hi) break;
    workers.emplace_back([&, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace artsparse
