#include "core/parallel.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <mutex>

namespace artsparse {

namespace detail {

namespace {
ThreadSpawner g_thread_spawner = nullptr;
}  // namespace

void set_thread_spawner_for_testing(ThreadSpawner spawner) {
  g_thread_spawner = spawner;
}

namespace {

std::thread spawn_worker(std::function<void()> work) {
  if (g_thread_spawner != nullptr) {
    return g_thread_spawner(std::move(work));
  }
  return std::thread(std::move(work));
}

}  // namespace

}  // namespace detail

unsigned worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned fallback = hw == 0 ? 1 : hw;
  if (const char* env = std::getenv("ARTSPARSE_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(env, &end, 10);
    // Trailing garbage ("4x") or an empty value means the setting is
    // malformed — ignore it rather than honoring the accidental prefix.
    const bool malformed = end == env || *end != '\0';
    if (!malformed && parsed >= 1) {
      // errno == ERANGE saturates strtoll at LLONG_MAX, which this min()
      // clamps along with every other oversized value.
      return static_cast<unsigned>(std::min<long long>(parsed,
                                                       kMaxWorkerThreads));
    }
  }
  return fallback;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  unsigned threads, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (threads == 0) threads = worker_count();
  if (threads <= 1 || n < grain || n < 2) {
    fn(begin, end);
    return;
  }

  const std::size_t chunks = std::min<std::size_t>(threads, n);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  std::vector<std::thread> workers;
  workers.reserve(chunks);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  try {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * per_chunk;
      const std::size_t hi = std::min(end, lo + per_chunk);
      if (lo >= hi) break;
      workers.push_back(detail::spawn_worker([&, lo, hi] {
        try {
          fn(lo, hi);
        } catch (...) {
          const std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }));
    }
  } catch (...) {
    // Thread construction failed (e.g. std::system_error on exhaustion)
    // partway through the spawn loop: join what did start before
    // propagating, or their destructors would call std::terminate.
    for (std::thread& worker : workers) {
      worker.join();
    }
    throw;
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace artsparse
