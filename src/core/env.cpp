#include "core/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <string_view>

namespace artsparse {

namespace {

/// ASCII case-insensitive comparison; locale-independent on purpose so a
/// Turkish locale cannot change what "OFF" means.
bool iequals(std::string_view text, std::string_view expected) {
  if (text.size() != expected.size()) return false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (c != expected[i]) return false;
  }
  return true;
}

}  // namespace

std::optional<std::uint64_t> parse_env_u64(const char* text,
                                           std::uint64_t floor,
                                           std::uint64_t ceiling) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  // strtoull skips leading whitespace and silently negates "-1" into a
  // huge positive value; require the value to start with a digit so a
  // signed or padded setting reads as malformed, not as 2^64-1.
  if (*text < '0' || *text > '9') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(text, &end, 10);
  // No digits consumed, or trailing garbage ("64K", "4x"): the setting is
  // malformed — ignore it rather than honoring the accidental prefix.
  if (end == text || *end != '\0') return std::nullopt;
  // ERANGE saturates strtoull at ULLONG_MAX, which the ceiling clamp
  // absorbs along with every other oversized value.
  if (parsed > ceiling) return ceiling;
  if (parsed < floor) return std::nullopt;
  return static_cast<std::uint64_t>(parsed);
}

std::optional<std::uint64_t> env_u64(const char* name, std::uint64_t floor,
                                     std::uint64_t ceiling) {
  // The one sanctioned std::getenv site (with env_flag/env_string below):
  // every other layer reads the environment through these helpers so the
  // parsing contract stays in one place. Thread-safety note: getenv is
  // safe against concurrent getenv, only setenv races it, and the code
  // base never calls setenv outside test setup.
  return parse_env_u64(std::getenv(name),  // NOLINT(concurrency-mt-unsafe)
                       floor, ceiling);
}

std::optional<bool> parse_env_flag(const char* text) {
  if (text == nullptr) return std::nullopt;
  const std::string_view value(text);
  if (value.empty() || iequals(value, "0") || iequals(value, "false") ||
      iequals(value, "off") || iequals(value, "no")) {
    return false;
  }
  return true;
}

std::optional<bool> env_flag(const char* name) {
  return parse_env_flag(std::getenv(name));  // NOLINT(concurrency-mt-unsafe)
}

std::optional<std::string> env_string(const char* name) {
  const char* value = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

}  // namespace artsparse
