#include "core/env.hpp"

#include <cerrno>
#include <cstdlib>

namespace artsparse {

std::optional<std::uint64_t> parse_env_u64(const char* text,
                                           std::uint64_t floor,
                                           std::uint64_t ceiling) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  // strtoull skips leading whitespace and silently negates "-1" into a
  // huge positive value; require the value to start with a digit so a
  // signed or padded setting reads as malformed, not as 2^64-1.
  if (*text < '0' || *text > '9') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(text, &end, 10);
  // No digits consumed, or trailing garbage ("64K", "4x"): the setting is
  // malformed — ignore it rather than honoring the accidental prefix.
  if (end == text || *end != '\0') return std::nullopt;
  // ERANGE saturates strtoull at ULLONG_MAX, which the ceiling clamp
  // absorbs along with every other oversized value.
  if (parsed > ceiling) return ceiling;
  if (parsed < floor) return std::nullopt;
  return static_cast<std::uint64_t>(parsed);
}

std::optional<std::uint64_t> env_u64(const char* name, std::uint64_t floor,
                                     std::uint64_t ceiling) {
  return parse_env_u64(std::getenv(name), floor, ceiling);
}

}  // namespace artsparse
