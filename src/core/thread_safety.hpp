// Compile-time concurrency contracts: Clang Thread Safety Analysis
// attributes behind ARTSPARSE_* macros, plus annotated mutex wrappers the
// concurrent core declares its locks with.
//
// The locking discipline that used to live in comments ("guarded by
// writer_mutex_", "caller holds mutex_") is written here as attributes the
// compiler checks: a member annotated ARTSPARSE_GUARDED_BY(mu) may only be
// touched while `mu` is held, and a function annotated
// ARTSPARSE_REQUIRES(mu) may only be called with `mu` held. Clang builds
// with -Werror=thread-safety (the CI static-analysis job) reject
// violations at compile time; GCC and non-supporting compilers see empty
// macros and plain std::mutex behavior, so nothing changes for them.
//
// Project rules (enforced by tools/artsparse_lint.py):
//   - every Mutex/SharedMutex member must have at least one
//     ARTSPARSE_GUARDED_BY / ARTSPARSE_REQUIRES sibling naming it;
//   - ARTSPARSE_NO_THREAD_SAFETY_ANALYSIS is allowed only in core/parallel
//     and must carry a justifying comment.
//
// The wrappers exist because libstdc++'s std::mutex is not annotated, so
// the analysis cannot track it. Mutex/SharedMutex are zero-overhead
// wrappers (one std::mutex / std::shared_mutex member, all methods
// inline); MutexLock / SharedReaderLock replace std::scoped_lock /
// std::shared_lock at annotated call sites.
#pragma once

#include <mutex>
#include <shared_mutex>

// Attribute plumbing: real attributes under Clang (any version that ships
// thread safety analysis exposes them via __has_attribute), nothing
// elsewhere.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define ARTSPARSE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ARTSPARSE_THREAD_ANNOTATION
#define ARTSPARSE_THREAD_ANNOTATION(x)  // non-Clang: contracts are comments
#endif

/// Marks a type as a lockable capability ("mutex", "shared_mutex").
#define ARTSPARSE_CAPABILITY(x) ARTSPARSE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define ARTSPARSE_SCOPED_CAPABILITY \
  ARTSPARSE_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read or written while the named capability is held.
#define ARTSPARSE_GUARDED_BY(x) ARTSPARSE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded (the pointer itself is not).
#define ARTSPARSE_PT_GUARDED_BY(x) \
  ARTSPARSE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability; caller must not already hold it.
#define ARTSPARSE_ACQUIRE(...) \
  ARTSPARSE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ARTSPARSE_ACQUIRE_SHARED(...) \
  ARTSPARSE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability; caller must hold it.
#define ARTSPARSE_RELEASE(...) \
  ARTSPARSE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ARTSPARSE_RELEASE_SHARED(...) \
  ARTSPARSE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function may only be called with the capability held (the "_locked"
/// suffix convention, now compiler-checked).
#define ARTSPARSE_REQUIRES(...) \
  ARTSPARSE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ARTSPARSE_REQUIRES_SHARED(...) \
  ARTSPARSE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard
/// for non-reentrant locks).
#define ARTSPARSE_EXCLUDES(...) \
  ARTSPARSE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// try_lock-style function: acquires only when returning `result`.
#define ARTSPARSE_TRY_ACQUIRE(...) \
  ARTSPARSE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define ARTSPARSE_RETURN_CAPABILITY(x) \
  ARTSPARSE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch. Project rule: allowed only in core/parallel, with a
/// comment justifying why the analysis cannot see the discipline.
#define ARTSPARSE_NO_THREAD_SAFETY_ANALYSIS \
  ARTSPARSE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace artsparse {

/// Annotated exclusive mutex. Drop-in for std::mutex where the guarded
/// members carry ARTSPARSE_GUARDED_BY(this mutex).
class ARTSPARSE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ARTSPARSE_ACQUIRE() { mu_.lock(); }
  void unlock() ARTSPARSE_RELEASE() { mu_.unlock(); }
  bool try_lock() ARTSPARSE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated reader/writer mutex.
class ARTSPARSE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ARTSPARSE_ACQUIRE() { mu_.lock(); }
  void unlock() ARTSPARSE_RELEASE() { mu_.unlock(); }
  bool try_lock() ARTSPARSE_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() ARTSPARSE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() ARTSPARSE_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() ARTSPARSE_TRY_ACQUIRE(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex (std::scoped_lock at annotated sites).
class ARTSPARSE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ARTSPARSE_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  // Generic release: the analysis pairs it with the constructor's acquire.
  ~MutexLock() ARTSPARSE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over SharedMutex.
class ARTSPARSE_SCOPED_CAPABILITY SharedWriterLock {
 public:
  explicit SharedWriterLock(SharedMutex& mu) ARTSPARSE_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock();
  }
  ~SharedWriterLock() ARTSPARSE_RELEASE() { mu_.unlock(); }

  SharedWriterLock(const SharedWriterLock&) = delete;
  SharedWriterLock& operator=(const SharedWriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class ARTSPARSE_SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mu) ARTSPARSE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedReaderLock() ARTSPARSE_RELEASE() { mu_.unlock_shared(); }

  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace artsparse
