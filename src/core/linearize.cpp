#include "core/linearize.hpp"

#include "core/error.hpp"
#include "core/parallel.hpp"

namespace artsparse {

index_t linearize(std::span<const index_t> point, const Shape& shape) {
  detail::require(point.size() == shape.rank(),
                  "point rank does not match shape rank");
  const auto strides = shape.strides();
  index_t address = 0;
  for (std::size_t i = 0; i < point.size(); ++i) {
    detail::require(point[i] < shape.extent(i),
                    "coordinate outside tensor shape");
    address += point[i] * strides[i];
  }
  return address;
}

void delinearize(index_t address, const Shape& shape,
                 std::span<index_t> out) {
  detail::require(out.size() == shape.rank(),
                  "output rank does not match shape rank");
  detail::require(address < shape.element_count(),
                  "linear address outside tensor shape");
  const auto strides = shape.strides();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = address / strides[i];
    address %= strides[i];
  }
}

index_t linearize_col_major(std::span<const index_t> point,
                            const Shape& shape) {
  detail::require(point.size() == shape.rank(),
                  "point rank does not match shape rank");
  index_t address = 0;
  index_t stride = 1;
  for (std::size_t i = 0; i < point.size(); ++i) {
    detail::require(point[i] < shape.extent(i),
                    "coordinate outside tensor shape");
    address += point[i] * stride;
    stride *= shape.extent(i);
  }
  return address;
}

std::vector<index_t> linearize_all(const CoordBuffer& coords,
                                   const Shape& shape) {
  std::vector<index_t> addresses(coords.size());
  // Each point's address is independent: chunked across workers for large
  // batches, inline below the grain size.
  parallel_transform(coords.size(), addresses, [&](std::size_t i) {
    return linearize(coords.point(i), shape);
  });
  return addresses;
}

index_t linearize_local(std::span<const index_t> point, const Box& box) {
  detail::require(point.size() == box.rank(),
                  "point rank does not match box rank");
  detail::require(box.contains(point), "point outside local bounding box");
  const Shape local = box.shape();
  const auto strides = local.strides();
  index_t address = 0;
  for (std::size_t i = 0; i < point.size(); ++i) {
    address += (point[i] - box.lo(i)) * strides[i];
  }
  return address;
}

void delinearize_local(index_t address, const Box& box,
                       std::span<index_t> out) {
  const Shape local = box.shape();
  delinearize(address, local, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] += box.lo(i);
  }
}

}  // namespace artsparse
