// Monotonic wall-clock timing plus the Build/Reorg/Write/Others breakdown
// the paper reports in Table III.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>

namespace artsparse {

/// Steady-clock stopwatch; seconds() reads elapsed time without stopping.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-phase write timing, mirroring Table III's rows. All values in
/// seconds; `others` absorbs metadata and buffer-concatenation work.
struct WriteBreakdown {
  double build = 0.0;   ///< organization construction (BUILD function)
  double reorg = 0.0;   ///< value reorganization via the `map` vector
  double write = 0.0;   ///< fragment write to the storage device
  double others = 0.0;  ///< header encode, buffer concat, bookkeeping

  /// Portion of `build` spent deriving the sort permutation (key
  /// precompute + sort / counting pass). Zero for the non-sorting
  /// organizations (COO, LINEAR); the piece ARTSPARSE_THREADS scales.
  double build_sort = 0.0;

  /// Commit-attempt accounting from the retrying atomic write: attempts
  /// made (>= 1 per fragment on success; summed across fragments in tiled
  /// writes), retries among them, and the total backoff slept. `write`
  /// already includes `backoff` — it is wall time of the commit phase.
  std::size_t io_attempts = 0;
  std::size_t io_retries = 0;
  double backoff = 0.0;

  double total() const { return build + reorg + write + others; }
};

/// Per-phase read timing for Algorithm 3's READ function, plus the
/// open-fragment cache accounting for the fragments the read touched.
struct ReadBreakdown {
  double discover = 0.0;  ///< find fragments overlapping the query
  double extract = 0.0;   ///< read fragment payloads, decode the index
  double query = 0.0;     ///< organization-specific existence search
  double merge = 0.0;     ///< sort results by linear address + populate

  std::size_t cache_hits = 0;    ///< fragments served from FragmentCache
  std::size_t cache_misses = 0;  ///< fragments loaded from disk

  double total() const { return discover + extract + query + merge; }
};

}  // namespace artsparse
