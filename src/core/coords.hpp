// CoordBuffer: the "b_coor" of the paper's algorithms — a flat, row-major
// (point-major) buffer of n points x d coordinates.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace artsparse {

/// Dense array-of-points coordinate storage. Point i occupies the d
/// consecutive entries data()[i*d .. i*d+d-1]. This matches the paper's
/// assumption that "the input of our sparse tensor is an unsorted 1D
/// coordinate vector".
class CoordBuffer {
 public:
  CoordBuffer() = default;
  explicit CoordBuffer(std::size_t rank) : rank_(rank) {}
  CoordBuffer(std::size_t rank, std::vector<index_t> flat);

  std::size_t rank() const { return rank_; }
  std::size_t size() const { return rank_ == 0 ? 0 : flat_.size() / rank_; }
  bool empty() const { return flat_.empty(); }

  /// Coordinates of point i as a span of length rank().
  std::span<const index_t> point(std::size_t i) const;

  /// Coordinate of point i in dimension dim.
  index_t at(std::size_t i, std::size_t dim) const;

  /// Appends one point; the span length must equal rank().
  void append(std::span<const index_t> point);
  void append(std::initializer_list<index_t> point);

  void reserve(std::size_t points) { flat_.reserve(points * rank_); }
  void clear() { flat_.clear(); }

  std::span<const index_t> flat() const { return flat_; }
  const index_t* data() const { return flat_.data(); }

  /// Returns a copy with points rearranged so that result.point(i) ==
  /// this->point(perm[i]). perm must be a permutation of [0, size()).
  CoordBuffer permuted(std::span<const std::size_t> perm) const;

  friend bool operator==(const CoordBuffer& a, const CoordBuffer& b) {
    return a.rank_ == b.rank_ && a.flat_ == b.flat_;
  }

 private:
  std::size_t rank_ = 0;
  std::vector<index_t> flat_;
};

}  // namespace artsparse
