// Deterministic pseudo-random generators for the synthetic pattern
// generators. Seeded runs must reproduce bit-identical datasets across
// platforms, so we implement SplitMix64 and xoshiro256** ourselves instead
// of relying on std::mt19937 distributions (whose outputs are unspecified
// for some distribution types).
#pragma once

#include <array>
#include <cstdint>

#include "core/types.hpp"

namespace artsparse {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double();

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t next_below(std::uint64_t bound);

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace artsparse
