// Fork-join data parallelism for the hot loops (coordinate transforms,
// batch queries). Kept deliberately simple — std::thread chunking, no work
// stealing — because every use here is a balanced, embarrassingly parallel
// loop over points. Results are bit-identical regardless of thread count:
// each index writes only its own output slot.
//
// Thread count: ARTSPARSE_THREADS env var if set, else
// std::thread::hardware_concurrency(). Loops below kParallelGrain elements
// run inline (thread spawn costs more than the work).
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace artsparse {

/// Elements below which parallel_for runs inline on the calling thread.
inline constexpr std::size_t kParallelGrain = 1 << 15;

/// Upper bound on ARTSPARSE_THREADS: values above it clamp here instead of
/// wrapping through integer conversion (far beyond any sane fan-out, but
/// keeps a typo'd "4294967296" from silently becoming 0 workers).
inline constexpr unsigned kMaxWorkerThreads = 1024;

/// Worker count honoring ARTSPARSE_THREADS; always in
/// [1, kMaxWorkerThreads]. Malformed values (trailing garbage, empty,
/// zero, negative) are ignored in favor of hardware_concurrency();
/// oversized values clamp to kMaxWorkerThreads.
unsigned worker_count();

namespace detail {

/// Test-only hook replacing std::thread construction inside parallel_for,
/// so tests can fake thread exhaustion (std::system_error) partway through
/// the spawn loop. nullptr restores the real implementation. Set only from
/// single-threaded test setup.
using ThreadSpawner = std::thread (*)(std::function<void()> work);
void set_thread_spawner_for_testing(ThreadSpawner spawner);

}  // namespace detail

/// Runs fn(begin, end) over disjoint chunks of [begin, end) across
/// `threads` workers (0 = worker_count()). Blocks until every chunk is
/// done. Exceptions from workers are rethrown on the caller (first one
/// wins). `grain` is the element count below which the loop runs inline;
/// callers whose per-element work is heavy (e.g. one fragment decode per
/// element) pass a small grain to parallelize even tiny counts.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  unsigned threads = 0, std::size_t grain = kParallelGrain);

/// Per-item fan-out: fn(i) for each i in [0, n), chunked across workers so
/// callers stop hand-rolling [lo, hi) index math. Same determinism contract
/// as parallel_for: each item must write only its own output slot(s).
template <typename Fn>
void parallel_for_each(std::size_t n, Fn&& fn, unsigned threads = 0,
                       std::size_t grain = kParallelGrain) {
  parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          fn(i);
        }
      },
      threads, grain);
}

/// Element-wise transform: out[i] = fn(i) for i in [0, n). `out` must
/// already be sized to n.
template <typename T, typename Fn>
void parallel_transform(std::size_t n, std::vector<T>& out, Fn&& fn,
                        unsigned threads = 0) {
  parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = fn(i);
        }
      },
      threads);
}

}  // namespace artsparse
