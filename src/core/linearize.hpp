// Row-major (and column-major) linearization of coordinates — the transform
// at the heart of the LINEAR organization (Section II-B) and of the
// GCSR++/GCSC++ d-D -> 2-D mapping (Algorithm 1 lines 8-9).
//
// For a point (c_1, ..., c_d) in a tensor of extents (m_1, ..., m_d), the
// row-major linear address is sum_i c_i * prod_{j>i} m_j.
#pragma once

#include <span>

#include "core/box.hpp"
#include "core/coords.hpp"
#include "core/shape.hpp"
#include "core/types.hpp"

namespace artsparse {

/// Row-major linear address of `point` within `shape`. Throws FormatError if
/// the point lies outside the shape and OverflowError if the address space
/// itself overflows (detected at Shape construction).
index_t linearize(std::span<const index_t> point, const Shape& shape);

/// Inverse of linearize(): writes the coordinates of `address` into `out`
/// (length shape.rank()).
void delinearize(index_t address, const Shape& shape,
                 std::span<index_t> out);

/// Column-major linear address (first dimension fastest). GCSC++'s read
/// order is column-by-column; this is its addressing rule.
index_t linearize_col_major(std::span<const index_t> point,
                            const Shape& shape);

/// Linearizes every point of `coords` against `shape`; returns n addresses.
std::vector<index_t> linearize_all(const CoordBuffer& coords,
                                   const Shape& shape);

/// Block-local addressing: linearizes `point` relative to a bounding box
/// (subtract box.lo, use the box's dense shape). This is the paper's remedy
/// for address overflow on extremely large tensors — "use local boundary of
/// each block to perform the transform".
index_t linearize_local(std::span<const index_t> point, const Box& box);

/// Inverse of linearize_local().
void delinearize_local(index_t address, const Box& box,
                       std::span<index_t> out);

}  // namespace artsparse
