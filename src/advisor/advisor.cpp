#include "advisor/advisor.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace artsparse {

namespace {

/// Table I evaluated at the profiled parameters. Costs are in "operation"
/// units — only ratios matter.
CostEstimate estimate(OrgKind org, const SparsityProfile& profile,
                      double queries) {
  const auto n = static_cast<double>(profile.point_count);
  const auto d = static_cast<double>(std::max<std::size_t>(1, profile.rank));
  const double min_m =
      static_cast<double>(std::max<index_t>(1, profile.min_extent));
  const double log_n = n > 1 ? std::log2(n) : 1.0;

  CostEstimate e;
  e.org = org;
  switch (org) {
    case OrgKind::kCoo:
      e.build_cost = 1.0;             // O(1): buffer as-is
      e.read_cost = n * queries;      // full scan per query
      e.space_words = n * d;
      e.rationale = "no build work, but O(n) scan per read and d words/point";
      break;
    case OrgKind::kLinear:
      e.build_cost = n * d;           // linearize every coordinate
      e.read_cost = n * queries;      // still an unsorted scan
      e.space_words = n;
      e.rationale = "cheap build, 1 word/point; reads scan like COO";
      break;
    case OrgKind::kGcsr:
      e.build_cost = n * log_n + 2.0 * n;
      e.read_cost = queries * (n / min_m) + n;
      e.space_words = n + min_m;
      e.rationale = "sorted 2-D mapping: row-bounded reads, ~1 word/point";
      break;
    case OrgKind::kGcsc:
      // Same bounds as GCSR++, but building from row-major input pays a
      // layout-mismatch penalty (Table III): model it as a constant factor
      // on the sort+reorg work.
      e.build_cost = 1.5 * (n * log_n + 2.0 * n);
      e.read_cost = queries * (n / min_m) + n;
      e.space_words = n + min_m;
      e.rationale =
          "as GCSR++, but column sort fights row-major input layout";
      break;
    case OrgKind::kCsf:
      e.build_cost = n * log_n + n * d;
      e.read_cost = queries * d * log_n;  // root-to-leaf binary searches
      e.space_words = profile.csf_level_nodes.empty()
                          ? n * d
                          : static_cast<double>(profile.csf_index_words());
      e.rationale = "tree descent reads; space tracks prefix sharing";
      break;
    case OrgKind::kSortedCoo:
      e.build_cost = n * log_n;
      e.read_cost = queries * log_n;
      e.space_words = n * d;
      e.rationale = "binary-search reads at COO's d words/point";
      break;
  }
  return e;
}

}  // namespace

Recommendation recommend_organization(const SparsityProfile& profile,
                                      const WorkloadWeights& weights,
                                      double queries_per_write) {
  detail::require(profile.point_count > 0,
                  "cannot recommend an organization for an empty tensor");
  detail::require(weights.write >= 0 && weights.read >= 0 &&
                      weights.space >= 0 &&
                      weights.write + weights.read + weights.space > 0,
                  "weights must be non-negative and not all zero");

  const double queries =
      std::max(1.0, queries_per_write * static_cast<double>(
                                            profile.point_count));

  Recommendation rec;
  for (OrgKind org : kPaperOrgs) {
    rec.ranking.push_back(estimate(org, profile, queries));
  }

  // Normalize each metric by its maximum across organizations (Table IV's
  // r_i construction), then combine with the caller's weights.
  double max_build = 0.0;
  double max_read = 0.0;
  double max_space = 0.0;
  for (const CostEstimate& e : rec.ranking) {
    max_build = std::max(max_build, e.build_cost);
    max_read = std::max(max_read, e.read_cost);
    max_space = std::max(max_space, e.space_words);
  }
  const double weight_sum = weights.write + weights.read + weights.space;
  for (CostEstimate& e : rec.ranking) {
    const double build_r = max_build > 0 ? e.build_cost / max_build : 0;
    const double read_r = max_read > 0 ? e.read_cost / max_read : 0;
    const double space_r = max_space > 0 ? e.space_words / max_space : 0;
    e.weighted_score = (weights.write * build_r + weights.read * read_r +
                        weights.space * space_r) /
                       weight_sum;
  }

  std::stable_sort(rec.ranking.begin(), rec.ranking.end(),
                   [](const CostEstimate& a, const CostEstimate& b) {
                     return a.weighted_score < b.weighted_score;
                   });
  return rec;
}

}  // namespace artsparse
