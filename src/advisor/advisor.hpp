// Automatic organization selection (the paper's future work, Section VI).
//
// The advisor turns Table I's complexity formulas into a concrete cost
// model: for a profiled dataset and a caller-supplied workload weighting
// (how much write time, read time, and storage each matter), it estimates
// every organization's cost, normalizes per metric, and recommends the
// lowest weighted total — the same normalize-and-average construction as
// Table IV's score, but predicted instead of measured.
#pragma once

#include <string>
#include <vector>

#include "advisor/profile.hpp"
#include "core/types.hpp"

namespace artsparse {

/// Relative importance of the three metrics; need not be normalized.
struct WorkloadWeights {
  double write = 1.0;
  double read = 1.0;
  double space = 1.0;

  /// Matches the paper's evaluation: everything equally weighted.
  static WorkloadWeights balanced() { return {}; }
  /// Write-once archive: storage dominates.
  static WorkloadWeights archival() { return {0.5, 0.5, 2.0}; }
  /// Query-heavy analytics: reads dominate.
  static WorkloadWeights read_mostly() { return {0.5, 2.0, 0.5}; }
};

/// One organization's predicted costs (arbitrary units; comparable across
/// organizations, not across datasets).
struct CostEstimate {
  OrgKind org = OrgKind::kCoo;
  double build_cost = 0.0;   ///< Table I build column evaluated at n, d
  double read_cost = 0.0;    ///< Table I read column per query batch
  double space_words = 0.0;  ///< index words
  double weighted_score = 0.0;
  std::string rationale;
};

/// Ranked recommendation (best first).
struct Recommendation {
  std::vector<CostEstimate> ranking;
  const CostEstimate& best() const { return ranking.front(); }
};

/// Recommends an organization for data matching `profile`, assuming
/// `queries_per_write` point lookups per written point batch.
Recommendation recommend_organization(const SparsityProfile& profile,
                                      const WorkloadWeights& weights,
                                      double queries_per_write = 1.0);

}  // namespace artsparse
