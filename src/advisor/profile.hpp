// Sparsity characterization — the inputs to automatic organization
// selection, the paper's stated future work ("explore automatic strategies
// for selecting different organization for applications based on the
// characterization of sparsity in their data").
#pragma once

#include <string>
#include <vector>

#include "core/coords.hpp"
#include "core/shape.hpp"

namespace artsparse {

/// Summary statistics of a sparse tensor's coordinate distribution.
struct SparsityProfile {
  std::size_t rank = 0;
  std::size_t point_count = 0;  ///< n
  index_t min_extent = 0;       ///< min{m_1..m_d} of the bounding box
  double density = 0.0;         ///< n / cells of the dense shape

  /// Distinct coordinate values per dimension (ascending-extent order, the
  /// order CSF would use).
  std::vector<std::size_t> distinct_per_dim;

  /// CSF tree node counts per level for the ascending-extent dimension
  /// order — exactly nfibs of Algorithm 2, computed without materializing
  /// fids/fptr. Sum/(n*d) measures prefix duplication: near 1/d means a
  /// maximally shared (compact) tree, near 1 means no sharing.
  std::vector<std::size_t> csf_level_nodes;

  /// Fraction of points whose coordinates all lie within a small band of
  /// each other (max - min <= band_half_width); high values indicate
  /// TSP-like diagonal structure.
  double banded_fraction = 0.0;
  index_t band_half_width = 4;

  /// Fraction of points inside the densest cell of a coarse 4^d histogram;
  /// high values indicate MSP-like clustering.
  double cluster_fraction = 0.0;

  /// Expected CSF index words given the measured sharing (sum of level
  /// node counts plus pointer arrays).
  std::size_t csf_index_words() const;

  std::string to_string() const;
};

/// Profiles `coords` against `shape`. O(n log n) (one CSF-order sort).
SparsityProfile profile_sparsity(const CoordBuffer& coords,
                                 const Shape& shape);

}  // namespace artsparse
