#include "advisor/profile.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

#include "core/box.hpp"
#include "core/error.hpp"

namespace artsparse {

std::size_t SparsityProfile::csf_index_words() const {
  // fids: one word per node per level; fptr: nodes + 1 words per non-leaf
  // level; nfibs: one word per level.
  std::size_t words = csf_level_nodes.size();
  for (std::size_t level = 0; level < csf_level_nodes.size(); ++level) {
    words += csf_level_nodes[level];
    if (level + 1 < csf_level_nodes.size()) {
      words += csf_level_nodes[level] + 1;
    }
  }
  return words;
}

std::string SparsityProfile::to_string() const {
  std::ostringstream out;
  out << "SparsityProfile{n=" << point_count << ", rank=" << rank
      << ", density=" << density << ", banded=" << banded_fraction
      << ", clustered=" << cluster_fraction << ", csf_nodes=[";
  for (std::size_t i = 0; i < csf_level_nodes.size(); ++i) {
    if (i != 0) out << ", ";
    out << csf_level_nodes[i];
  }
  out << "]}";
  return out.str();
}

SparsityProfile profile_sparsity(const CoordBuffer& coords,
                                 const Shape& shape) {
  detail::require(coords.rank() == shape.rank(),
                  "coordinate rank does not match shape rank");
  SparsityProfile profile;
  profile.rank = shape.rank();
  profile.point_count = coords.size();
  if (shape.element_count() > 0) {
    profile.density = static_cast<double>(coords.size()) /
                      static_cast<double>(shape.element_count());
  }
  if (coords.empty()) {
    profile.min_extent = shape.rank() == 0 ? 0 : shape.min_extent();
    return profile;
  }

  const std::size_t d = shape.rank();
  const std::size_t n = coords.size();
  const Box box = Box::bounding(coords);
  const Shape local = box.shape();
  profile.min_extent = local.min_extent();

  // CSF dimension order: ascending local extent.
  std::vector<std::size_t> dim_order(d);
  std::iota(dim_order.begin(), dim_order.end(), std::size_t{0});
  std::stable_sort(dim_order.begin(), dim_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return local.extent(a) < local.extent(b);
                   });

  // Distinct values per dimension (in CSF order).
  profile.distinct_per_dim.resize(d);
  for (std::size_t level = 0; level < d; ++level) {
    std::set<index_t> distinct;
    for (std::size_t i = 0; i < n; ++i) {
      distinct.insert(coords.at(i, dim_order[level]));
    }
    profile.distinct_per_dim[level] = distinct.size();
  }

  // CSF level node counts: sort lexicographically in CSF order, count
  // distinct prefixes per level.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     for (std::size_t level = 0; level < d; ++level) {
                       const index_t ca = coords.at(a, dim_order[level]);
                       const index_t cb = coords.at(b, dim_order[level]);
                       if (ca != cb) return ca < cb;
                     }
                     return false;
                   });
  profile.csf_level_nodes.assign(d, 0);
  for (std::size_t rank = 0; rank < n; ++rank) {
    std::size_t first_diff = 0;
    if (rank != 0) {
      const std::size_t prev = order[rank - 1];
      const std::size_t cur = order[rank];
      while (first_diff < d && coords.at(cur, dim_order[first_diff]) ==
                                   coords.at(prev, dim_order[first_diff])) {
        ++first_diff;
      }
      if (first_diff == d) first_diff = d - 1;  // duplicate point
    }
    for (std::size_t level = first_diff; level < d; ++level) {
      ++profile.csf_level_nodes[level];
    }
  }

  // Banded fraction.
  std::size_t banded = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = coords.point(i);
    const auto [lo, hi] = std::minmax_element(p.begin(), p.end());
    if (*hi - *lo <= profile.band_half_width) ++banded;
  }
  profile.banded_fraction = static_cast<double>(banded) /
                            static_cast<double>(n);

  // Cluster fraction: coarse 4-bucket-per-dimension histogram, densest
  // bucket's share of points relative to its share of cells (capped at 1).
  constexpr std::size_t kBuckets = 4;
  std::size_t total_buckets = 1;
  for (std::size_t dim = 0; dim < d; ++dim) {
    total_buckets *= kBuckets;
  }
  std::vector<std::size_t> histogram(total_buckets, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t bucket = 0;
    for (std::size_t dim = 0; dim < d; ++dim) {
      const index_t extent = shape.extent(dim);
      const index_t c = coords.at(i, dim);
      const auto slot = static_cast<std::size_t>(
          std::min<index_t>(kBuckets - 1, c * kBuckets / extent));
      bucket = bucket * kBuckets + slot;
    }
    ++histogram[bucket];
  }
  const std::size_t max_bucket =
      *std::max_element(histogram.begin(), histogram.end());
  profile.cluster_fraction =
      static_cast<double>(max_bucket) / static_cast<double>(n);

  return profile;
}

}  // namespace artsparse
