// Density calibration for the synthetic generators.
//
// Table II reports *measured* densities (e.g. 2-D TSP 1.67%) that the
// paper's stated generator parameters do not produce on their own (see
// DESIGN.md Section 5). These helpers solve for generator parameters that
// hit a target density, so the benchmark workloads can reproduce Table II's
// data volumes while keeping the patterns' character.
#pragma once

#include "patterns/pattern.hpp"

namespace artsparse {

/// Smallest half-width whose band density reaches at least
/// `target_density`. Exponential + binary search over generated counts.
TspConfig calibrate_tsp(const Shape& shape, double target_density);

/// Exact: a Bernoulli process's expected density equals its probability.
GspConfig calibrate_gsp(double target_density);

/// Holds the background at `background_probability` and solves the region
/// fill rate so the expected total density matches `target_density`.
/// Throws FormatError when the target is unreachable (region too small).
MspConfig calibrate_msp(const Shape& shape, double target_density,
                        double background_probability = 0.001);

}  // namespace artsparse
