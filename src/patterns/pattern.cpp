#include "patterns/pattern.hpp"

#include "core/error.hpp"

namespace artsparse {

std::string to_string(PatternKind kind) {
  switch (kind) {
    case PatternKind::kTsp:
      return "TSP";
    case PatternKind::kGsp:
      return "GSP";
    case PatternKind::kMsp:
      return "MSP";
  }
  throw FormatError("unknown PatternKind value");
}

Box msp_region(const Shape& shape) {
  // Paper: "starting address of (m_1/3, ..., m_d/3) and a size of
  // (m_1/3, ..., m_d/3)".
  std::vector<index_t> origin(shape.rank());
  std::vector<index_t> size(shape.rank());
  for (std::size_t i = 0; i < shape.rank(); ++i) {
    origin[i] = shape.extent(i) / 3;
    size[i] = std::max<index_t>(1, shape.extent(i) / 3);
  }
  return Box::from_origin_size(origin, size);
}

}  // namespace artsparse
