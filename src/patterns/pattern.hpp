// The three sparsity patterns the paper distills from real-world datasets
// (Section III): tridiagonal (TSP), general-graph / random (GSP, also
// called CGP in Table II), and mixed (MSP: random background plus a
// contiguous dense-ish region, as in LCLS-II experimental data).
//
// Every generator is deterministic in (shape, config, seed) and produces
// distinct coordinates in row-major order.
#pragma once

#include <cstdint>
#include <string>

#include "core/box.hpp"
#include "core/coords.hpp"
#include "core/shape.hpp"
#include "core/types.hpp"

namespace artsparse {

enum class PatternKind : std::uint8_t {
  kTsp = 0,  ///< Tridiagonal Sparse Pattern
  kGsp = 1,  ///< General Graph Sparse Pattern (random cells)
  kMsp = 2,  ///< Mixed Sparse Pattern (random + contiguous region)
};

std::string to_string(PatternKind kind);

/// TSP: cells whose coordinates all lie within `half_width` of each other
/// (max_i c_i - min_i c_i <= half_width). In 2-D this is the classic band
/// of 2*half_width + 1 diagonals; the paper's "band length 9" is
/// half_width = 4. Deterministic — no randomness involved.
struct TspConfig {
  index_t half_width = 4;
};

/// GSP: i.i.d. Bernoulli cells. The paper draws a (0,1) number per cell and
/// keeps the cell when it exceeds a 0.99 threshold, i.e. fill probability
/// 0.01.
struct GspConfig {
  double fill_probability = 0.01;
};

/// MSP: GSP background at `background_probability` (paper threshold 0.999
/// -> 0.001), plus a contiguous region with origin (m_i/3) and size (m_i/3)
/// per dimension, filled at `region_fill_probability`. 1.0 makes the region
/// fully dense (the paper's literal description); the calibrated configs
/// use a partial fill to match Table II's measured densities (see
/// DESIGN.md Section 5).
struct MspConfig {
  double background_probability = 0.001;
  double region_fill_probability = 1.0;
};

/// Generates the TSP band cells of `shape`.
CoordBuffer generate_tsp(const Shape& shape, const TspConfig& config);

/// Generates GSP cells of `shape` (seeded Bernoulli process).
CoordBuffer generate_gsp(const Shape& shape, const GspConfig& config,
                         std::uint64_t seed);

/// Generates MSP cells of `shape` (seeded).
CoordBuffer generate_msp(const Shape& shape, const MspConfig& config,
                         std::uint64_t seed);

/// The MSP contiguous region of a shape: origin (m_i/3), size (m_i/3).
Box msp_region(const Shape& shape);

}  // namespace artsparse
