#include "patterns/calibrate.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace artsparse {

namespace {

double tsp_density(const Shape& shape, index_t half_width) {
  const CoordBuffer cells = generate_tsp(shape, TspConfig{half_width});
  return static_cast<double>(cells.size()) /
         static_cast<double>(shape.element_count());
}

}  // namespace

TspConfig calibrate_tsp(const Shape& shape, double target_density) {
  detail::require(target_density > 0.0 && target_density <= 1.0,
                  "target density must lie in (0, 1]");
  const index_t max_width = shape.min_extent() - 1;

  // Exponential search for an upper bound...
  index_t hi = 1;
  while (hi < max_width && tsp_density(shape, hi) < target_density) {
    hi = std::min<index_t>(hi * 2, max_width);
  }
  if (tsp_density(shape, hi) < target_density) {
    return TspConfig{max_width};  // even the full band falls short
  }
  // ...then binary search for the smallest sufficient width.
  index_t lo = 0;
  while (lo + 1 < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    if (tsp_density(shape, mid) < target_density) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return TspConfig{hi};
}

GspConfig calibrate_gsp(double target_density) {
  detail::require(target_density >= 0.0 && target_density <= 1.0,
                  "target density must lie in [0, 1]");
  return GspConfig{target_density};
}

MspConfig calibrate_msp(const Shape& shape, double target_density,
                        double background_probability) {
  detail::require(target_density >= 0.0 && target_density <= 1.0,
                  "target density must lie in [0, 1]");
  const Box region = msp_region(shape);
  const double region_fraction =
      static_cast<double>(region.cell_count()) /
      static_cast<double>(shape.element_count());
  // Expected density: bg * (1 - f) + fill * f  ==  target.
  const double fill =
      (target_density - background_probability * (1.0 - region_fraction)) /
      region_fraction;
  detail::require(fill >= 0.0 && fill <= 1.0,
                  "MSP target density unreachable with this background");
  return MspConfig{background_probability, fill};
}

}  // namespace artsparse
