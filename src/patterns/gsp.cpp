#include <cmath>

#include "core/error.hpp"
#include "core/linearize.hpp"
#include "patterns/bernoulli.hpp"
#include "patterns/pattern.hpp"

namespace artsparse {

namespace detail {

void append_bernoulli_cells(const Box& box, double p, Xoshiro256& rng,
                            const Box& exclude, CoordBuffer& out) {
  artsparse::detail::require(p >= 0.0 && p <= 1.0,
                             "fill probability must lie in [0, 1]");
  if (p <= 0.0 || box.empty()) return;
  const index_t cells = box.cell_count();
  std::vector<index_t> point(box.rank());

  if (p >= 1.0) {
    for (index_t address = 0; address < cells; ++address) {
      delinearize_local(address, box, point);
      if (exclude.empty() || !exclude.contains(point)) {
        out.append(point);
      }
    }
    return;
  }

  // Geometric gap sampling: the distance between consecutive successes of a
  // Bernoulli(p) process is Geometric(p), so we jump straight from hit to
  // hit in O(#hits) expected time.
  const double log1mp = std::log1p(-p);
  double cursor = -1.0;
  while (true) {
    const double u = rng.next_double();
    // skip >= 0; +1 moves past the previous hit.
    const double skip = std::floor(std::log1p(-u) / log1mp);
    cursor += skip + 1.0;
    if (cursor >= static_cast<double>(cells)) break;
    const auto address = static_cast<index_t>(cursor);
    delinearize_local(address, box, point);
    if (exclude.empty() || !exclude.contains(point)) {
      out.append(point);
    }
  }
}

}  // namespace detail

CoordBuffer generate_gsp(const Shape& shape, const GspConfig& config,
                         std::uint64_t seed) {
  CoordBuffer out(shape.rank());
  Xoshiro256 rng(seed);
  detail::append_bernoulli_cells(Box::whole(shape), config.fill_probability,
                                 rng, Box(), out);
  return out;
}

}  // namespace artsparse
