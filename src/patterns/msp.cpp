#include "patterns/bernoulli.hpp"
#include "patterns/pattern.hpp"

namespace artsparse {

CoordBuffer generate_msp(const Shape& shape, const MspConfig& config,
                         std::uint64_t seed) {
  CoordBuffer out(shape.rank());
  Xoshiro256 rng(seed);
  const Box region = msp_region(shape);
  // Random background everywhere outside the contiguous region...
  detail::append_bernoulli_cells(Box::whole(shape),
                                 config.background_probability, rng, region,
                                 out);
  // ...plus the contiguous region at its own fill rate.
  detail::append_bernoulli_cells(region, config.region_fill_probability, rng,
                                 Box(), out);
  return out;
}

}  // namespace artsparse
