// SparseDataset: a generated sparse tensor (coordinates + values) plus the
// provenance needed to reproduce it. This is the unit the benchmark harness
// writes and reads (Table II's synthetic datasets).
#pragma once

#include <variant>

#include "patterns/pattern.hpp"

namespace artsparse {

/// How values are synthesized.
enum class ValueKind : std::uint8_t {
  kAddress = 0,  ///< value == row-major linear address (self-verifying)
  kRandom = 1,   ///< uniform doubles in [0, 1)
};

using PatternSpec = std::variant<TspConfig, GspConfig, MspConfig>;

PatternKind pattern_kind(const PatternSpec& spec);

struct SparseDataset {
  Shape shape;
  PatternKind pattern = PatternKind::kGsp;
  CoordBuffer coords;
  std::vector<value_t> values;

  std::size_t point_count() const { return coords.size(); }

  /// Fraction of cells that are non-empty (Table II's density column).
  double density() const;
};

/// Generates a dataset: pattern cells per `spec`, values per `value_kind`.
/// With ValueKind::kAddress, values[i] equals the linear address of
/// coords[i], so any read can be verified without keeping the input around.
SparseDataset make_dataset(const Shape& shape, const PatternSpec& spec,
                           std::uint64_t seed,
                           ValueKind value_kind = ValueKind::kAddress);

/// The value the kAddress scheme assigns to `point` in `shape`.
value_t expected_value(std::span<const index_t> point, const Shape& shape);

}  // namespace artsparse
