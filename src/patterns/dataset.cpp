#include "patterns/dataset.hpp"

#include "core/linearize.hpp"
#include "core/rng.hpp"

namespace artsparse {

PatternKind pattern_kind(const PatternSpec& spec) {
  if (std::holds_alternative<TspConfig>(spec)) return PatternKind::kTsp;
  if (std::holds_alternative<GspConfig>(spec)) return PatternKind::kGsp;
  return PatternKind::kMsp;
}

double SparseDataset::density() const {
  if (shape.element_count() == 0) return 0.0;
  return static_cast<double>(coords.size()) /
         static_cast<double>(shape.element_count());
}

value_t expected_value(std::span<const index_t> point, const Shape& shape) {
  return static_cast<value_t>(linearize(point, shape));
}

SparseDataset make_dataset(const Shape& shape, const PatternSpec& spec,
                           std::uint64_t seed, ValueKind value_kind) {
  SparseDataset dataset;
  dataset.shape = shape;
  dataset.pattern = pattern_kind(spec);
  dataset.coords = std::visit(
      [&](const auto& config) -> CoordBuffer {
        using Config = std::decay_t<decltype(config)>;
        if constexpr (std::is_same_v<Config, TspConfig>) {
          return generate_tsp(shape, config);
        } else if constexpr (std::is_same_v<Config, GspConfig>) {
          return generate_gsp(shape, config, seed);
        } else {
          return generate_msp(shape, config, seed);
        }
      },
      spec);

  dataset.values.reserve(dataset.coords.size());
  if (value_kind == ValueKind::kAddress) {
    for (std::size_t i = 0; i < dataset.coords.size(); ++i) {
      dataset.values.push_back(
          expected_value(dataset.coords.point(i), shape));
    }
  } else {
    Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ULL);
    for (std::size_t i = 0; i < dataset.coords.size(); ++i) {
      dataset.values.push_back(rng.next_double());
    }
  }
  return dataset;
}

}  // namespace artsparse
