#include <algorithm>

#include "core/error.hpp"
#include "patterns/pattern.hpp"

namespace artsparse {

namespace {

/// Recursively enumerates dimensions 1..d-1 of one band cross-section,
/// keeping coordinates within [lo, hi] of each extent and of each other.
void emit_band_cells(const Shape& shape, index_t half_width,
                     std::vector<index_t>& point, std::size_t dim,
                     CoordBuffer& out) {
  const std::size_t d = shape.rank();
  if (dim == d) {
    // The anchored enumeration below guarantees |c_i - c_0| <= w; enforce
    // the full pairwise condition max - min <= w here.
    const auto [lo, hi] = std::minmax_element(point.begin(), point.end());
    if (*hi - *lo <= half_width) {
      out.append(point);
    }
    return;
  }
  const index_t anchor = point[0];
  const index_t lo = anchor > half_width ? anchor - half_width : 0;
  const index_t hi = std::min<index_t>(anchor + half_width,
                                       shape.extent(dim) - 1);
  for (index_t c = lo; c <= hi; ++c) {
    point[dim] = c;
    emit_band_cells(shape, half_width, point, dim + 1, out);
  }
}

}  // namespace

CoordBuffer generate_tsp(const Shape& shape, const TspConfig& config) {
  detail::require(shape.rank() >= 1, "TSP requires rank >= 1");
  CoordBuffer out(shape.rank());
  std::vector<index_t> point(shape.rank(), 0);
  // Anchor each band cell by its dimension-0 coordinate: every cell with
  // max - min <= w has all coordinates within [c_0 - w, c_0 + w], so this
  // enumeration is exhaustive and duplicate-free.
  for (index_t c0 = 0; c0 < shape.extent(0); ++c0) {
    point[0] = c0;
    emit_band_cells(shape, config.half_width, point, 1, out);
  }
  return out;
}

}  // namespace artsparse
