// Internal: Bernoulli cell sampling shared by the GSP and MSP generators.
#pragma once

#include "core/box.hpp"
#include "core/coords.hpp"
#include "core/rng.hpp"

namespace artsparse::detail {

/// Appends each cell of `box` independently with probability `p`, skipping
/// cells inside `exclude` (pass an empty box to exclude nothing). Runs in
/// O(#selected) expected time via geometric gap sampling, so low densities
/// over huge tensors stay cheap.
void append_bernoulli_cells(const Box& box, double p, Xoshiro256& rng,
                            const Box& exclude, CoordBuffer& out);

}  // namespace artsparse::detail
