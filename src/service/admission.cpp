#include "service/admission.hpp"

#include <atomic>
#include <utility>

#include "core/deadline.hpp"
#include "core/env.hpp"
#include "core/error.hpp"
#include "obs/metrics.hpp"

namespace artsparse {

namespace {

/// Clamp ceilings for the environment knobs: generous enough for any real
/// deployment, small enough that a typo'd exponent cannot overflow the
/// double-valued token buckets.
constexpr std::uint64_t kMaxOpsPerSec = 1'000'000'000;            // 1e9
constexpr std::uint64_t kMaxBytesPerSec = 1ull << 40;             // 1 TiB/s
constexpr std::uint64_t kMaxConcurrent = 1'000'000;
constexpr std::uint64_t kMaxDeadlineMs = 86'400'000;              // 24 h

/// Poll granularity while waiting (deadline-bounded) for a concurrency
/// slot: slots free when other ops finish, which has no schedulable
/// refill rate like the token buckets, so the wait polls.
constexpr double kConcurrencyPollSec = 1e-3;

void count_rejected(const std::string& tenant, const char* axis) {
  ARTSPARSE_COUNT_L("artsparse_service_rejected_total", "tenant", tenant, 1);
  ARTSPARSE_COUNT_L("artsparse_service_rejected_by_axis_total", "axis", axis,
                    1);
}

}  // namespace

TenantQuota TenantQuota::from_env() {
  TenantQuota quota;
  if (const auto ops = env_u64("ARTSPARSE_TENANT_OPS_PER_SEC", /*floor=*/1,
                               kMaxOpsPerSec)) {
    quota.ops_per_sec = static_cast<double>(*ops);
  }
  if (const auto bytes = env_u64("ARTSPARSE_TENANT_BYTES_PER_SEC",
                                 /*floor=*/1, kMaxBytesPerSec)) {
    quota.bytes_per_sec = static_cast<double>(*bytes);
  }
  if (const auto conc = env_u64("ARTSPARSE_TENANT_MAX_CONCURRENT",
                                /*floor=*/1, kMaxConcurrent)) {
    quota.max_concurrent = static_cast<std::size_t>(*conc);
  }
  if (const auto deadline = env_u64("ARTSPARSE_TENANT_DEADLINE_MS",
                                    /*floor=*/1, kMaxDeadlineMs)) {
    quota.deadline_ms = *deadline;
  }
  return quota;
}

/// Per-tenant live state. Each state carries its own mutex guarding the
/// quota and the bucket pointers, so set_quota on one tenant never
/// contends with another tenant's admit (the controller's SharedMutex
/// guards only the map). Buckets are heap-held so apply() can swap them
/// without disturbing in-flight accounting; in_flight is atomic so Ticket
/// release never takes any mutex.
struct Ticket::State {
  std::string tenant;
  mutable Mutex mutex;
  TenantQuota quota ARTSPARSE_GUARDED_BY(mutex);
  /// Buckets are thread-safe; the shared_ptr keeps a swapped-out bucket
  /// alive for requests already holding it.
  std::shared_ptr<TokenBucket> ops ARTSPARSE_GUARDED_BY(mutex);
  std::shared_ptr<TokenBucket> bytes ARTSPARSE_GUARDED_BY(mutex);
  std::atomic<std::size_t> in_flight{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> rejected_ops{0};
  std::atomic<std::uint64_t> rejected_bytes{0};
  std::atomic<std::uint64_t> rejected_concurrency{0};

  void apply(const TenantQuota& next) ARTSPARSE_REQUIRES(mutex) {
    quota = next;
    ops = std::make_shared<TokenBucket>(next.ops_per_sec);
    bytes = std::make_shared<TokenBucket>(next.bytes_per_sec);
  }
};

Ticket& Ticket::operator=(Ticket&& other) noexcept {
  if (this != &other) {
    release();
    state_ = std::exchange(other.state_, nullptr);
  }
  return *this;
}

void Ticket::release() {
  if (state_ == nullptr) return;
  state_->in_flight.fetch_sub(1, std::memory_order_relaxed);
  ARTSPARSE_COUNT_L("artsparse_service_completed_total", "tenant",
                    state_->tenant, 1);
  state_ = nullptr;
}

AdmissionController::AdmissionController(TenantQuota default_quota)
    : default_quota_(default_quota) {}

AdmissionController::~AdmissionController() = default;

Ticket::State& AdmissionController::state_for(const std::string& tenant) {
  // Fast path: the tenant already exists, a shared lock suffices. States
  // are never erased and std::map nodes are address-stable, so the
  // reference stays valid after the lock drops.
  {
    const SharedReaderLock lock(mutex_);
    const auto it = tenants_.find(tenant);
    if (it != tenants_.end()) return *it->second;
  }
  // Slow path (first sight of this tenant): take the writer lock and
  // re-check — another thread may have created it between the locks.
  const SharedWriterLock lock(mutex_);
  auto& slot = tenants_[tenant];
  if (!slot) {
    slot = std::make_unique<Ticket::State>();
    slot->tenant = tenant;
    const MutexLock state_lock(slot->mutex);
    slot->apply(default_quota_);
  }
  return *slot;
}

Ticket AdmissionController::admit(const std::string& tenant,
                                  std::size_t estimated_bytes) {
  Ticket::State& state = state_for(tenant);
  // Snapshot the quota and buckets under the per-tenant mutex so a
  // concurrent set_quota can swap them safely; the buckets themselves are
  // thread-safe and the shared_ptr keeps a swapped-out bucket alive for
  // requests already holding it.
  std::shared_ptr<TokenBucket> ops;
  std::shared_ptr<TokenBucket> bytes;
  std::size_t max_concurrent = 0;
  {
    const MutexLock lock(state.mutex);
    ops = state.ops;
    bytes = state.bytes;
    max_concurrent = state.quota.max_concurrent;
  }

  // With a bounded ambient deadline, over-quota requests queue (bounded
  // waits) before shedding; without one every axis decides immediately —
  // admission never waits unboundedly.
  const OpContext& ctx = current_op_context();
  const bool may_wait = ctx.deadline.bounded();

  // Concurrency first: claim the slot optimistically, back out on a lost
  // race. Claiming before the buckets means a rejection on a later axis
  // must return the slot, but never double-admits.
  if (max_concurrent != 0) {
    for (;;) {
      const std::size_t prior =
          state.in_flight.fetch_add(1, std::memory_order_relaxed);
      if (prior < max_concurrent) break;
      state.in_flight.fetch_sub(1, std::memory_order_relaxed);
      // Slots free when in-flight ops finish — no schedulable refill like
      // the buckets — so wait by polling within the remaining budget.
      if (may_wait &&
          interruptible_sleep(kConcurrencyPollSec, ctx) ==
              WaitResult::kCompleted) {
        continue;
      }
      state.rejected_concurrency.fetch_add(1, std::memory_order_relaxed);
      count_rejected(tenant, "concurrency");
      throw OverloadedError("tenant '" + tenant +
                                "' at max concurrent requests (" +
                                std::to_string(max_concurrent) + ")",
                            tenant, "concurrency");
    }
  } else {
    state.in_flight.fetch_add(1, std::memory_order_relaxed);
  }

  // acquire_within degenerates to try_acquire without a bounded deadline,
  // preserving the immediate-shed contract for unbudgeted callers.
  if (!ops->acquire_within(1.0, ctx)) {
    state.in_flight.fetch_sub(1, std::memory_order_relaxed);
    state.rejected_ops.fetch_add(1, std::memory_order_relaxed);
    count_rejected(tenant, "ops");
    throw OverloadedError("tenant '" + tenant + "' over ops/sec quota",
                          tenant, "ops");
  }

  if (!bytes->acquire_within(static_cast<double>(estimated_bytes), ctx)) {
    state.in_flight.fetch_sub(1, std::memory_order_relaxed);
    state.rejected_bytes.fetch_add(1, std::memory_order_relaxed);
    count_rejected(tenant, "bytes");
    throw OverloadedError("tenant '" + tenant + "' over bytes/sec quota",
                          tenant, "bytes");
  }

  state.admitted.fetch_add(1, std::memory_order_relaxed);
  ARTSPARSE_COUNT_L("artsparse_service_admitted_total", "tenant", tenant, 1);
  return Ticket(&state);
}

void AdmissionController::charge_bytes(const std::string& tenant,
                                       std::size_t bytes) {
  if (bytes == 0) return;
  Ticket::State& state = state_for(tenant);
  std::shared_ptr<TokenBucket> bucket;
  {
    const MutexLock lock(state.mutex);
    bucket = state.bytes;
  }
  bucket->force_debit(static_cast<double>(bytes));
}

void AdmissionController::set_quota(const std::string& tenant,
                                    const TenantQuota& quota) {
  Ticket::State& state = state_for(tenant);
  const MutexLock lock(state.mutex);
  state.apply(quota);
}

TenantAdmissionStats AdmissionController::stats(
    const std::string& tenant) const {
  TenantAdmissionStats stats;
  const SharedReaderLock lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return stats;
  const Ticket::State& state = *it->second;
  stats.admitted = state.admitted.load(std::memory_order_relaxed);
  stats.rejected_ops = state.rejected_ops.load(std::memory_order_relaxed);
  stats.rejected_bytes = state.rejected_bytes.load(std::memory_order_relaxed);
  stats.rejected_concurrency =
      state.rejected_concurrency.load(std::memory_order_relaxed);
  stats.in_flight = state.in_flight.load(std::memory_order_relaxed);
  return stats;
}

std::vector<std::string> AdmissionController::tenants() const {
  const SharedReaderLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace artsparse
