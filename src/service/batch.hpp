// BatchedReader: group-commit for box scans. Concurrent callers of scan()
// land their regions in a shared queue; one caller becomes the leader,
// drains the queue into a single Snapshot::scan_batch() — which resolves
// and decodes every fragment touched by the whole group exactly once —
// and distributes the per-region results. Callers that arrive while a
// batch is in flight queue up for the next one, so under concurrent load
// overlapping queries coalesce naturally (the read-side analogue of a WAL
// group commit). A lone caller pays one scan_region-equivalent, nothing
// more. Results are byte-identical to issuing each region sequentially
// through FragmentStore::scan_region.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "core/thread_safety.hpp"
#include "storage/fragment_store.hpp"

namespace artsparse {

/// Cumulative batching counters (also published to the obs registry as
/// artsparse_service_batches_total / batched_requests_total).
struct BatchStats {
  std::uint64_t batches = 0;   ///< scan_batch executions
  std::uint64_t requests = 0;  ///< scan() calls served
  std::uint64_t max_batch = 0;

  /// Requests that shared a batch with at least one other request.
  std::uint64_t coalesced() const { return requests - batches; }
};

class BatchedReader {
 public:
  explicit BatchedReader(const FragmentStore& store) : store_(store) {}

  /// Scans `region` against the store, batched with whatever other scans
  /// are concurrently in flight. Every batch executes against one pinned
  /// snapshot, so the group sees a single consistent generation. Blocks
  /// until this region's result is ready; storage errors propagate to
  /// every caller of the failed batch. The batch itself runs under the
  /// LEADER's ambient budget, but every caller also observes its own:
  /// a cancelled or expired follower stops waiting with the typed error
  /// instead of riding out the leader's scan.
  ReadResult scan(const Box& region);

  BatchStats stats() const;

 private:
  struct Pending {
    Box region;
    std::promise<ReadResult> promise;
  };

  const FragmentStore& store_;
  mutable Mutex mutex_;
  bool leader_active_ ARTSPARSE_GUARDED_BY(mutex_) = false;
  std::vector<std::shared_ptr<Pending>> queue_ ARTSPARSE_GUARDED_BY(mutex_);
  BatchStats stats_ ARTSPARSE_GUARDED_BY(mutex_);
};

}  // namespace artsparse
