// Admission control: per-tenant quotas enforced at the service boundary.
//
// Every Session operation passes through AdmissionController::admit()
// before any storage work runs. Three independent quota axes per tenant,
// each built on storage/throttle's TokenBucket (ops/sec, bytes/sec) or a
// plain in-flight counter (concurrency). Over-quota requests are rejected
// immediately with a typed OverloadedError naming the tenant and the axis
// — admission control sheds load, it does not queue it; queuing is the
// batcher's job (service/batch.hpp), shedding is this layer's.
//
// Byte quotas are charged in two halves: writes debit their payload at
// admit time (the size is known), reads admit optimistically and
// force-debit the bytes actually returned afterwards, which can push the
// bucket into debt and throttle that tenant's *next* request — the
// standard post-paid model for responses of unknown size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_safety.hpp"
#include "storage/throttle.hpp"

namespace artsparse {

/// Per-tenant limits. 0 on any axis means unlimited on that axis, so the
/// default-constructed quota admits everything.
struct TenantQuota {
  double ops_per_sec = 0.0;
  double bytes_per_sec = 0.0;
  std::size_t max_concurrent = 0;
  /// Default per-operation time budget for this tenant's sessions
  /// (core/deadline.hpp); 0 means unbounded. Sessions can override per op
  /// with Session::with_deadline_ms. Not a quota axis: it bounds how long
  /// an admitted op may run (and how long admission may wait), not whether
  /// it is admitted.
  std::uint64_t deadline_ms = 0;

  /// True when every *quota axis* is unlimited (deadline_ms is a time
  /// budget, not an admission axis, and does not participate).
  bool unlimited() const {
    return ops_per_sec == 0.0 && bytes_per_sec == 0.0 && max_concurrent == 0;
  }

  /// Default quota from the ARTSPARSE_TENANT_OPS_PER_SEC,
  /// ARTSPARSE_TENANT_BYTES_PER_SEC, ARTSPARSE_TENANT_MAX_CONCURRENT, and
  /// ARTSPARSE_TENANT_DEADLINE_MS environment knobs. Parsed with the
  /// hardened core/env contract: malformed values (trailing garbage,
  /// signs, empty) are ignored, and absurd values clamp to sane maxima
  /// (1e9 ops/s, 1 TiB/s, 1e6 concurrent, 24 h deadline).
  static TenantQuota from_env();
};

/// Point-in-time admission counters for one tenant.
struct TenantAdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected_ops = 0;
  std::uint64_t rejected_bytes = 0;
  std::uint64_t rejected_concurrency = 0;
  std::size_t in_flight = 0;

  std::uint64_t rejected() const {
    return rejected_ops + rejected_bytes + rejected_concurrency;
  }
};

class AdmissionController;

/// RAII admission: holding a Ticket is holding one slot of the tenant's
/// concurrency quota; the slot frees on destruction. Move-only.
class Ticket {
 public:
  Ticket() = default;
  Ticket(Ticket&& other) noexcept { *this = std::move(other); }
  Ticket& operator=(Ticket&& other) noexcept;
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;
  ~Ticket() { release(); }

  bool admitted() const { return state_ != nullptr; }
  void release();

 private:
  friend class AdmissionController;
  struct State;
  explicit Ticket(State* state) : state_(state) {}
  State* state_ = nullptr;
};

/// Thread-safe per-tenant quota enforcement. Tenants appear lazily on
/// first admit with the controller's default quota; set_quota() overrides
/// per tenant at any time (applies to subsequent admits).
class AdmissionController {
 public:
  explicit AdmissionController(TenantQuota default_quota = TenantQuota());
  ~AdmissionController();  ///< out of line: Ticket::State is incomplete here

  /// Admits one operation for `tenant`, debiting 1 op token and
  /// `estimated_bytes` byte tokens. Throws OverloadedError (naming the
  /// exhausted axis) without debiting anything when any axis rejects.
  /// The returned Ticket holds the concurrency slot.
  ///
  /// When the ambient OpContext carries a bounded deadline, an over-quota
  /// request queues instead of shedding immediately: token and slot waits
  /// are bounded by the remaining budget, then reject with the same typed
  /// OverloadedError. Without a deadline the behavior is unchanged —
  /// admission never waits unboundedly.
  Ticket admit(const std::string& tenant, std::size_t estimated_bytes = 0);

  /// Post-paid byte charge (reads): debits unconditionally, possibly into
  /// debt. No-op for tenants without a bytes quota.
  void charge_bytes(const std::string& tenant, std::size_t bytes);

  /// Replaces `tenant`'s quota (rebuilding its buckets full). Counters
  /// survive; in-flight tickets from the old quota still release safely.
  void set_quota(const std::string& tenant, const TenantQuota& quota);

  const TenantQuota& default_quota() const { return default_quota_; }

  TenantAdmissionStats stats(const std::string& tenant) const;

  /// Tenants seen so far (admitted or rejected at least once).
  std::vector<std::string> tenants() const;

 private:
  /// Finds or lazily creates `tenant`'s state: reader-locked lookup on the
  /// hot path, writer-locked insert the first time a tenant appears. The
  /// returned reference outlives the lock — states are never erased.
  Ticket::State& state_for(const std::string& tenant)
      ARTSPARSE_EXCLUDES(mutex_);

  const TenantQuota default_quota_;
  /// Guards the tenant map only; each State carries its own mutex for
  /// quota/bucket swaps, so one tenant's set_quota never stalls another's
  /// admit.
  mutable SharedMutex mutex_;
  /// Stable addresses: Ticket holds a raw State* across the map's growth.
  std::map<std::string, std::unique_ptr<Ticket::State>> tenants_
      ARTSPARSE_GUARDED_BY(mutex_);
};

}  // namespace artsparse
