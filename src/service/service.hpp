// Service: the embeddable multi-tenant server core. Wraps one
// FragmentStore (or a TiledStore's inner store) and layers on what a
// store embedded in a shared service needs:
//
//   - Sessions: every request carries a tenant id, which flows into
//     per-tenant obs metrics (artsparse_tenant_*) and trace-span
//     attributes, so one tenant's traffic is attributable end to end.
//   - Admission control (service/admission.hpp): per-tenant ops/sec,
//     bytes/sec, and concurrency quotas, enforced before any storage work
//     runs; over-quota requests fail fast with a typed OverloadedError.
//   - Batched reads (service/batch.hpp): concurrent box scans group-commit
//     into Snapshot::scan_batch, decoding each touched fragment once per
//     batch.
//   - Snapshots: sessions can pin a generation and run any number of
//     consistent reads against it while writers and consolidation proceed.
//
// The Service owns no threads; callers bring their own (it is a library
// core, not a daemon). All members are thread-safe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/deadline.hpp"
#include "service/admission.hpp"
#include "service/batch.hpp"
#include "storage/fragment_store.hpp"

namespace artsparse {

class Service;

/// One tenant's handle onto the service. Cheap to create (one string),
/// cheap to copy, safe to use from many threads at once — requests, not
/// sessions, are the unit of concurrency. Every operation below is
/// admission-checked and attributed to the tenant.
class Session {
 public:
  const std::string& tenant() const { return tenant_; }

  /// Per-operation time budget in milliseconds (0 = unbounded). Seeded
  /// from the tenant quota's deadline_ms at session creation.
  std::uint64_t deadline_ms() const { return deadline_ms_; }

  /// A copy of this session whose operations run under an `ms`-millisecond
  /// budget (0 removes the budget). The budget bounds the *whole* op:
  /// admission waits, retry backoff, throttle charges, and per-fragment
  /// scan work all observe it; on expiry the op fails with a typed
  /// DeadlineExceededError (or, under ReadPolicy::kSkip, returns partial
  /// results with the starved fragments marked skipped).
  Session with_deadline_ms(std::uint64_t ms) const {
    Session copy(*this);
    copy.deadline_ms_ = ms;
    return copy;
  }

  /// Cooperatively cancels every in-flight and future operation issued
  /// through this session (and its with_deadline_ms copies, which share
  /// the token). In-flight ops stop at their next check with a typed
  /// CancelledError. Does not affect other sessions.
  void cancel() const { cancel_.cancel(); }

  /// The session's cancel token: a child of the service-wide root, so
  /// Service-level cancellation reaches every session.
  const CancelToken& cancel_token() const { return cancel_; }

  /// Admission-checked write; payload bytes debit the tenant's byte
  /// quota up front (the size is known before any work runs).
  WriteResult write(const CoordBuffer& coords,
                    std::span<const value_t> values, OrgKind org);

  /// Admission-checked point read. Result bytes are charged to the byte
  /// quota after the fact (post-paid; see AdmissionController).
  ReadResult read(const CoordBuffer& queries);

  /// Admission-checked cell-by-cell region read.
  ReadResult read_region(const Box& region);

  /// Admission-checked box scan, group-committed with concurrent scans
  /// from all sessions via the service's BatchedReader.
  ReadResult scan(const Box& region);

  /// Admission-checked batch of box scans from this one request, executed
  /// against a single pinned snapshot (each touched fragment decodes
  /// once). One admission ticket covers the whole batch.
  std::vector<ReadResult> scan_batch(std::span<const Box> regions);

  /// Pins the current generation for consistent multi-read work. The
  /// snapshot itself is not admission-checked (it does no I/O); reads
  /// through it bypass admission, so hand it out accordingly.
  Snapshot snapshot() const;

 private:
  friend class Service;
  Session(Service* service, std::string tenant, std::uint64_t deadline_ms,
          CancelToken cancel)
      : service_(service),
        tenant_(std::move(tenant)),
        deadline_ms_(deadline_ms),
        cancel_(std::move(cancel)) {}

  /// Bytes a result ships back to the client (coords + values).
  static std::size_t result_bytes(const ReadResult& result);

  /// The budget every operation installs (ScopedOpContext) before
  /// admission: fresh deadline from deadline_ms_ plus the session token.
  OpContext op_context() const {
    return OpContext{deadline_ms_ == 0 ? Deadline::never()
                                       : Deadline::after_ms(deadline_ms_),
                     cancel_};
  }

  Service* service_;
  std::string tenant_;
  std::uint64_t deadline_ms_ = 0;
  CancelToken cancel_;
};

class Service {
 public:
  /// `default_quota` applies to tenants without an explicit set_quota();
  /// the default default comes from the ARTSPARSE_TENANT_* environment
  /// knobs (see TenantQuota::from_env).
  explicit Service(FragmentStore& store,
                   TenantQuota default_quota = TenantQuota::from_env());

  /// A handle for `tenant`. No registration needed; tenants exist from
  /// their first request. The session's default deadline comes from the
  /// default quota's deadline_ms; its cancel token is a child of the
  /// service-wide root.
  Session session(std::string tenant);

  /// Cancels every session handed out by this service (and all their
  /// in-flight operations). Irreversible; meant for shutdown.
  void cancel_all() const { root_cancel_.cancel(); }

  FragmentStore& store() { return store_; }
  const FragmentStore& store() const { return store_; }
  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }
  BatchStats batch_stats() const { return batcher_.stats(); }

 private:
  friend class Session;
  FragmentStore& store_;
  AdmissionController admission_;
  BatchedReader batcher_;
  /// Parent of every session token: cancel_all() fans out through it.
  CancelToken root_cancel_ = CancelToken::root();
};

}  // namespace artsparse
