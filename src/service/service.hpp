// Service: the embeddable multi-tenant server core. Wraps one
// FragmentStore (or a TiledStore's inner store) and layers on what a
// store embedded in a shared service needs:
//
//   - Sessions: every request carries a tenant id, which flows into
//     per-tenant obs metrics (artsparse_tenant_*) and trace-span
//     attributes, so one tenant's traffic is attributable end to end.
//   - Admission control (service/admission.hpp): per-tenant ops/sec,
//     bytes/sec, and concurrency quotas, enforced before any storage work
//     runs; over-quota requests fail fast with a typed OverloadedError.
//   - Batched reads (service/batch.hpp): concurrent box scans group-commit
//     into Snapshot::scan_batch, decoding each touched fragment once per
//     batch.
//   - Snapshots: sessions can pin a generation and run any number of
//     consistent reads against it while writers and consolidation proceed.
//
// The Service owns no threads; callers bring their own (it is a library
// core, not a daemon). All members are thread-safe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/admission.hpp"
#include "service/batch.hpp"
#include "storage/fragment_store.hpp"

namespace artsparse {

class Service;

/// One tenant's handle onto the service. Cheap to create (one string),
/// cheap to copy, safe to use from many threads at once — requests, not
/// sessions, are the unit of concurrency. Every operation below is
/// admission-checked and attributed to the tenant.
class Session {
 public:
  const std::string& tenant() const { return tenant_; }

  /// Admission-checked write; payload bytes debit the tenant's byte
  /// quota up front (the size is known before any work runs).
  WriteResult write(const CoordBuffer& coords,
                    std::span<const value_t> values, OrgKind org);

  /// Admission-checked point read. Result bytes are charged to the byte
  /// quota after the fact (post-paid; see AdmissionController).
  ReadResult read(const CoordBuffer& queries);

  /// Admission-checked cell-by-cell region read.
  ReadResult read_region(const Box& region);

  /// Admission-checked box scan, group-committed with concurrent scans
  /// from all sessions via the service's BatchedReader.
  ReadResult scan(const Box& region);

  /// Admission-checked batch of box scans from this one request, executed
  /// against a single pinned snapshot (each touched fragment decodes
  /// once). One admission ticket covers the whole batch.
  std::vector<ReadResult> scan_batch(std::span<const Box> regions);

  /// Pins the current generation for consistent multi-read work. The
  /// snapshot itself is not admission-checked (it does no I/O); reads
  /// through it bypass admission, so hand it out accordingly.
  Snapshot snapshot() const;

 private:
  friend class Service;
  Session(Service* service, std::string tenant)
      : service_(service), tenant_(std::move(tenant)) {}

  /// Bytes a result ships back to the client (coords + values).
  static std::size_t result_bytes(const ReadResult& result);

  Service* service_;
  std::string tenant_;
};

class Service {
 public:
  /// `default_quota` applies to tenants without an explicit set_quota();
  /// the default default comes from the ARTSPARSE_TENANT_* environment
  /// knobs (see TenantQuota::from_env).
  explicit Service(FragmentStore& store,
                   TenantQuota default_quota = TenantQuota::from_env());

  /// A handle for `tenant`. No registration needed; tenants exist from
  /// their first request.
  Session session(std::string tenant);

  FragmentStore& store() { return store_; }
  const FragmentStore& store() const { return store_; }
  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }
  BatchStats batch_stats() const { return batcher_.stats(); }

 private:
  friend class Session;
  FragmentStore& store_;
  AdmissionController admission_;
  BatchedReader batcher_;
};

}  // namespace artsparse
