#include "service/service.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace artsparse {

namespace {

void count_tenant_op(const std::string& tenant, std::uint64_t delta = 1) {
  ARTSPARSE_COUNT_L("artsparse_tenant_ops_total", "tenant", tenant, delta);
}

/// Templated over the span type: ARTSPARSE_SPAN_TYPE is NullSpan when the
/// build compiles observability out.
template <typename SpanT>
void span_deadline_attr(SpanT& span, std::uint64_t deadline_ms) {
  if (deadline_ms != 0) span.attr("deadline_ms", deadline_ms);
}

}  // namespace

Service::Service(FragmentStore& store, TenantQuota default_quota)
    : store_(store), admission_(default_quota), batcher_(store) {}

Session Service::session(std::string tenant) {
  return Session(this, std::move(tenant),
                 admission_.default_quota().deadline_ms,
                 root_cancel_.child());
}

std::size_t Session::result_bytes(const ReadResult& result) {
  return result.values.size() * sizeof(value_t) +
         result.coords.size() * result.coords.rank() * sizeof(index_t);
}

WriteResult Session::write(const CoordBuffer& coords,
                           std::span<const value_t> values, OrgKind org) {
  const std::size_t payload =
      values.size() * sizeof(value_t) +
      coords.size() * coords.rank() * sizeof(index_t);
  // Install the budget before admission so over-quota waits (and
  // everything after) are bounded by the same per-op deadline.
  const ScopedOpContext op_scope(op_context());
  const Ticket ticket = service_->admission_.admit(tenant_, payload);
  ARTSPARSE_SPAN_TYPE span("service.write", "service");
  span.attr("tenant", tenant_);
  span_deadline_attr(span, deadline_ms_);
  span.attr("points", static_cast<std::uint64_t>(coords.size()));
  count_tenant_op(tenant_);
  ARTSPARSE_COUNT_L("artsparse_tenant_write_bytes_total", "tenant", tenant_,
                    payload);
  return service_->store_.write(coords, values, org);
}

ReadResult Session::read(const CoordBuffer& queries) {
  const ScopedOpContext op_scope(op_context());
  const Ticket ticket = service_->admission_.admit(tenant_);
  ARTSPARSE_SPAN_TYPE span("service.read", "service");
  span.attr("tenant", tenant_);
  span_deadline_attr(span, deadline_ms_);
  span.attr("queries", static_cast<std::uint64_t>(queries.size()));
  count_tenant_op(tenant_);
  ReadResult result = service_->store_.read(queries);
  const std::size_t bytes = result_bytes(result);
  ARTSPARSE_COUNT_L("artsparse_tenant_read_bytes_total", "tenant", tenant_,
                    bytes);
  service_->admission_.charge_bytes(tenant_, bytes);
  return result;
}

ReadResult Session::read_region(const Box& region) {
  const ScopedOpContext op_scope(op_context());
  const Ticket ticket = service_->admission_.admit(tenant_);
  ARTSPARSE_SPAN_TYPE span("service.read_region", "service");
  span.attr("tenant", tenant_);
  span_deadline_attr(span, deadline_ms_);
  count_tenant_op(tenant_);
  ReadResult result = service_->store_.read_region(region);
  const std::size_t bytes = result_bytes(result);
  ARTSPARSE_COUNT_L("artsparse_tenant_read_bytes_total", "tenant", tenant_,
                    bytes);
  service_->admission_.charge_bytes(tenant_, bytes);
  return result;
}

ReadResult Session::scan(const Box& region) {
  const ScopedOpContext op_scope(op_context());
  const Ticket ticket = service_->admission_.admit(tenant_);
  ARTSPARSE_SPAN_TYPE span("service.scan", "service");
  span.attr("tenant", tenant_);
  span_deadline_attr(span, deadline_ms_);
  count_tenant_op(tenant_);
  ReadResult result = service_->batcher_.scan(region);
  const std::size_t bytes = result_bytes(result);
  ARTSPARSE_COUNT_L("artsparse_tenant_read_bytes_total", "tenant", tenant_,
                    bytes);
  service_->admission_.charge_bytes(tenant_, bytes);
  return result;
}

std::vector<ReadResult> Session::scan_batch(std::span<const Box> regions) {
  const ScopedOpContext op_scope(op_context());
  const Ticket ticket = service_->admission_.admit(tenant_);
  ARTSPARSE_SPAN_TYPE span("service.scan_batch", "service");
  span.attr("tenant", tenant_);
  span_deadline_attr(span, deadline_ms_);
  span.attr("regions", static_cast<std::uint64_t>(regions.size()));
  count_tenant_op(tenant_);
  std::vector<ReadResult> results =
      service_->store_.snapshot().scan_batch(regions);
  std::size_t bytes = 0;
  for (const ReadResult& result : results) {
    bytes += result_bytes(result);
  }
  ARTSPARSE_COUNT_L("artsparse_tenant_read_bytes_total", "tenant", tenant_,
                    bytes);
  service_->admission_.charge_bytes(tenant_, bytes);
  return results;
}

Snapshot Session::snapshot() const { return service_->store_.snapshot(); }

}  // namespace artsparse
