#include "service/batch.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/deadline.hpp"
#include "core/error.hpp"
#include "obs/metrics.hpp"

namespace artsparse {

namespace {

/// Poll granularity for a follower waiting on its leader's batch: the
/// shared future carries no budget of its own, so the wait re-checks the
/// follower's ambient deadline/cancel token at this interval.
constexpr std::chrono::milliseconds kFollowerPoll{2};

/// A batched scan observes the CALLER's budget at entry and while waiting
/// as a follower — the leader enforces only its own. Without this, a
/// cancelled or expired caller would be held hostage by a healthy leader
/// and return a result nobody wants.
void check_caller_budget(const OpContext& ctx) {
  if (ctx.cancelled()) {
    ARTSPARSE_COUNT("artsparse_cancelled_total", 1);
    throw CancelledError("scan cancelled while batched");
  }
  if (ctx.expired()) {
    ARTSPARSE_COUNT("artsparse_deadline_exceeded_total", 1);
    throw DeadlineExceededError("deadline expired while scan was batched");
  }
}

}  // namespace

ReadResult BatchedReader::scan(const Box& region) {
  const OpContext ctx = current_op_context();
  check_caller_budget(ctx);
  auto pending = std::make_shared<Pending>();
  pending->region = region;
  std::future<ReadResult> future = pending->promise.get_future();

  bool lead = false;
  {
    const MutexLock lock(mutex_);
    queue_.push_back(pending);
    if (!leader_active_) {
      leader_active_ = true;
      lead = true;
    }
  }
  if (!lead) {
    if (!ctx.bounded()) return future.get();
    // Budgeted follower: poll the own budget while the leader works. The
    // abandoned promise stays valid (shared_ptr), so the leader can still
    // fulfill it harmlessly after we bail.
    while (future.wait_for(kFollowerPoll) != std::future_status::ready) {
      check_caller_budget(ctx);
    }
    return future.get();
  }

  // Leader: keep draining until no new scans queued up behind us. Each
  // drain is one pinned snapshot + one scan_batch, so everything that
  // queued together reads one consistent generation and shares fragment
  // decodes.
  while (true) {
    std::vector<std::shared_ptr<Pending>> batch;
    {
      const MutexLock lock(mutex_);
      batch.swap(queue_);
      if (batch.empty()) {
        leader_active_ = false;
        break;
      }
      ++stats_.batches;
      stats_.requests += batch.size();
      stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch,
                                                 batch.size());
    }
    ARTSPARSE_COUNT("artsparse_service_batches_total", 1);
    ARTSPARSE_COUNT("artsparse_service_batched_requests_total", batch.size());
    ARTSPARSE_OBSERVE("artsparse_service_batch_size",
                      static_cast<double>(batch.size()));

    std::vector<Box> regions;
    regions.reserve(batch.size());
    for (const auto& entry : batch) {
      regions.push_back(entry->region);
    }
    try {
      const Snapshot snapshot = store_.snapshot();
      std::vector<ReadResult> results = snapshot.scan_batch(regions);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i]->promise.set_value(std::move(results[i]));
      }
    } catch (...) {
      // scan_batch is all-or-nothing (it throws before returning), so no
      // promise in this batch has been fulfilled yet.
      for (const auto& entry : batch) {
        entry->promise.set_exception(std::current_exception());
      }
    }
  }
  return future.get();
}

BatchStats BatchedReader::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

}  // namespace artsparse
