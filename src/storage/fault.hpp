// Deterministic fault injection for the storage syscall layer. Every POSIX
// call the fragment commit path makes (open-for-write, write, fsync, rename,
// directory fsync, plus the read side) passes through a named hook; a
// process-wide FaultInjector can make the Nth call to a hook fail with a
// chosen errno or "crash" (throw a CrashFault sentinel that models the
// process dying mid-commit). Tests arm exact failure points instead of
// racing timing tricks, so the whole crash matrix of a fragment WRITE is
// exercised reproducibly.
//
// Spec grammar (ARTSPARSE_FAULT_SPEC or FaultInjector::configure):
//   spec      := directive ("," directive)*
//   directive := op ":" nth ":" action
//   op        := open | open_read | read | write | fsync | rename | dirsync
//   nth       := 1-based call number at which the directive fires (per op)
//   action    := crash | delay_ms=N | errno name (EIO, EINTR, EAGAIN,
//                ENOSPC, ...) | decimal errno value
// Example: "write:3:EIO,fsync:1:crash,read:2:delay_ms=50" — the 3rd write
// call fails with EIO, the 1st fsync call simulates a crash, and the 2nd
// read call stalls 50 ms (modeling a slow device) before proceeding
// normally. Each directive fires once.
//
// Injected delays sleep through core/deadline's interruptible_sleep, so an
// operation with a deadline or cancel token observes its budget even while
// stalled and fails with the matching typed error instead of waiting the
// delay out.
//
// The injector is disabled (one relaxed atomic load per hook) until a spec
// is configured, so production paths pay nothing.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/thread_safety.hpp"

namespace artsparse {

/// Syscall sites the injector can interpose.
enum class FaultOp : std::size_t {
  kOpenWrite = 0,  ///< open(2) of a file for writing ("open")
  kOpenRead,       ///< open(2) of a file for reading ("open_read")
  kRead,           ///< pread(2) ("read")
  kWrite,          ///< write(2) ("write")
  kFsync,          ///< fsync(2) on a file ("fsync")
  kRename,         ///< rename(2) ("rename")
  kDirFsync,       ///< fsync(2) on a directory ("dirsync")
};
inline constexpr std::size_t kFaultOpCount = 7;

const char* to_string(FaultOp op);
/// Parses the spec-grammar op names; throws FormatError on unknown names.
FaultOp fault_op_from_string(const std::string& name);

/// Thrown by the injector's "crash" action: simulates the process dying at
/// the faulted syscall. Deliberately not an IoError so retry loops never
/// swallow it — a crash must propagate to the test harness unwrapped.
class CrashFault : public Error {
 public:
  explicit CrashFault(const std::string& what) : Error(what) {}
};

/// Process-wide injector singleton. Thread-safe; counters and directives
/// are guarded by one mutex (hooks are storage syscalls, never hot loops).
class FaultInjector {
 public:
  /// The singleton. On first use it arms itself from ARTSPARSE_FAULT_SPEC
  /// when that variable is set.
  static FaultInjector& instance();

  /// Replaces all directives with `spec` (see grammar above) and zeroes the
  /// per-op counters. An empty spec just resets.
  void configure(const std::string& spec);

  /// Re-reads ARTSPARSE_FAULT_SPEC (no-op when unset).
  void configure_from_env();

  /// Arms one errno fault at the `nth` call to `op` (1-based).
  void arm(FaultOp op, std::size_t nth, int error_number);

  /// Arms a simulated crash at the `nth` call to `op` (1-based).
  void arm_crash(FaultOp op, std::size_t nth);

  /// Arms a `delay_ms` stall at the `nth` call to `op` (1-based): the call
  /// sleeps that long (deadline-aware) and then proceeds normally.
  void arm_delay(FaultOp op, std::size_t nth, std::uint64_t delay_ms);

  /// Drops every directive and zeroes the counters.
  void reset();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Syscall hook: counts the call and throws IoError (with the armed
  /// errno) or CrashFault when a directive matches. No-op when disabled —
  /// callers guard with enabled() so the disabled cost is one atomic load.
  void on_syscall(FaultOp op, const std::string& path);

  /// Calls observed for `op` since the last configure/reset.
  std::size_t calls(FaultOp op) const;

 private:
  struct Directive {
    FaultOp op;
    std::size_t nth = 0;
    int error_number = 0;        ///< 0 means crash (unless delay_ms is set)
    std::uint64_t delay_ms = 0;  ///< > 0: stall this long, then proceed
    bool fired = false;
  };

  FaultInjector() { configure_from_env(); }

  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_;
  std::array<std::size_t, kFaultOpCount> counters_
      ARTSPARSE_GUARDED_BY(mutex_){};
  std::vector<Directive> directives_ ARTSPARSE_GUARDED_BY(mutex_);
};

/// Inlineable hook used at each syscall site.
inline void fault_point(FaultOp op, const std::string& path) {
  FaultInjector& injector = FaultInjector::instance();
  if (injector.enabled()) {
    injector.on_syscall(op, path);
  }
}

}  // namespace artsparse
