#include "storage/fragment.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "storage/serializer.hpp"

namespace artsparse {

namespace {

/// Reads the header fields shared by decode_fragment and
/// decode_fragment_info; on return the reader is positioned at the index
/// section.
FragmentInfo read_header(BufferReader& reader) {
  detail::require(reader.get_u32() == kFragmentMagic,
                  "not a fragment file (bad magic)");
  detail::require(reader.get_u32() == kFragmentVersion,
                  "unsupported fragment version");
  FragmentInfo info;
  info.org = static_cast<OrgKind>(reader.get_u8());
  detail::require(static_cast<std::uint8_t>(info.org) <=
                      static_cast<std::uint8_t>(OrgKind::kBcsr),
                  "fragment has unknown organization kind");
  info.codec = static_cast<CodecKind>(reader.get_u8());
  detail::require(static_cast<std::uint8_t>(info.codec) <=
                      static_cast<std::uint8_t>(CodecKind::kDeltaVarint),
                  "fragment has unknown codec kind");
  info.shape = Shape(reader.get_u64_vec());
  if (reader.get_u8() != 0) {
    auto lo = reader.get_u64_vec();
    auto hi = reader.get_u64_vec();
    info.bbox = Box(std::move(lo), std::move(hi));
  }
  info.point_count = reader.get_u64();
  info.index_bytes = reader.get_u64();
  info.value_count = reader.get_u64();
  info.value_min = reader.get_f64();
  info.value_max = reader.get_f64();
  return info;
}

}  // namespace

Bytes encode_fragment(const Fragment& fragment) {
  const auto codec = make_codec(fragment.codec);
  const Bytes coded_index = codec->encode(fragment.index);

  BufferWriter writer;
  writer.put_u32(kFragmentMagic);
  writer.put_u32(kFragmentVersion);
  writer.put_u8(static_cast<std::uint8_t>(fragment.org));
  writer.put_u8(static_cast<std::uint8_t>(fragment.codec));
  writer.put_u64_vec(fragment.shape.extents());
  writer.put_u8(fragment.bbox.empty() ? 0 : 1);
  if (!fragment.bbox.empty()) {
    writer.put_u64_vec(fragment.bbox.lo());
    writer.put_u64_vec(fragment.bbox.hi());
  }
  writer.put_u64(fragment.point_count);
  writer.put_u64(coded_index.size());
  writer.put_u64(fragment.values.size());
  // Statistics block, recomputed so hand-built fragments stay consistent.
  value_t lo = 0;
  value_t hi = 0;
  if (!fragment.values.empty()) {
    const auto [min_it, max_it] =
        std::minmax_element(fragment.values.begin(), fragment.values.end());
    lo = *min_it;
    hi = *max_it;
  }
  writer.put_f64(lo);
  writer.put_f64(hi);
  writer.put_bytes(coded_index);
  writer.put_f64_vec(fragment.values);

  // Checksum covers everything before it.
  const std::uint32_t checksum = crc32(writer.bytes());
  writer.put_u32(checksum);
  return writer.take();
}

Fragment decode_fragment(std::span<const std::byte> data) {
  detail::require(data.size() > sizeof(std::uint32_t),
                  "fragment file too small");
  const std::size_t body_size = data.size() - sizeof(std::uint32_t);

  // Verify the trailing checksum before trusting any lengths.
  BufferReader crc_reader(data.subspan(body_size));
  const std::uint32_t stored_crc = crc_reader.get_u32();
  detail::require(crc32(data.subspan(0, body_size)) == stored_crc,
                  "fragment checksum mismatch (corrupt file)");

  BufferReader reader(data.subspan(0, body_size));
  const FragmentInfo info = read_header(reader);

  Fragment fragment;
  fragment.org = info.org;
  fragment.codec = info.codec;
  fragment.shape = info.shape;
  fragment.bbox = info.bbox;
  fragment.point_count = info.point_count;
  fragment.value_min = info.value_min;
  fragment.value_max = info.value_max;

  const Bytes coded_index = reader.get_bytes(info.index_bytes);
  const auto codec = make_codec(info.codec);
  fragment.index = codec->decode(coded_index);
  fragment.values = reader.get_f64_vec();
  detail::require(fragment.values.size() == info.value_count,
                  "fragment value count mismatch");
  detail::require(reader.exhausted(), "fragment has trailing bytes");
  return fragment;
}

FragmentInfo decode_fragment_info(std::span<const std::byte> data) {
  detail::require(data.size() > sizeof(std::uint32_t),
                  "fragment file too small");
  BufferReader reader(data.subspan(0, data.size() - sizeof(std::uint32_t)));
  return read_header(reader);
}

}  // namespace artsparse
