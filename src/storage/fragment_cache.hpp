// OpenFragment + FragmentCache: the shared resolution layer of the read
// path. Every read-side entry point of FragmentStore (and, through it,
// TiledStore) turns a fragment *file* into an OpenFragment — the decoded
// SparseFormat index plus the slot-ordered value buffer — exactly once, and
// serves repeated reads over a hot store from memory. This is the open-array
// cache production fragment stores (TileDB and friends) ship: Algorithm 3
// pays one open + full decode per overlapping fragment per query; amortizing
// that across queries is where repeated-read throughput comes from.
//
// Thread safety: FragmentCache is fully thread-safe (one mutex around the
// LRU book-keeping; fragment loads happen outside the lock so concurrent
// misses on *different* fragments overlap their disk I/O). An OpenFragment
// is immutable after load and shared by shared_ptr, so readers keep a
// consistent snapshot even when the entry is evicted or invalidated
// underneath them.
//
// Budget: byte-budgeted LRU. The budget comes from the constructor knob, or
// the ARTSPARSE_CACHE_BYTES environment variable, or a 256 MiB default, in
// that order of precedence. A budget of 0 disables caching (every get loads
// from disk and nothing is retained) — useful as an A/B switch in benches.
#pragma once

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/box.hpp"
#include "core/thread_safety.hpp"
#include "core/shape.hpp"
#include "core/types.hpp"
#include "formats/format.hpp"
#include "storage/throttle.hpp"

namespace artsparse {

/// A fragment resolved into its in-memory read form: the decoded
/// organization index plus the reorganized value buffer. Immutable after
/// load; safe to share across threads (SparseFormat's read-side methods are
/// const and keep no hidden state).
struct OpenFragment {
  OrgKind org = OrgKind::kCoo;
  Shape shape;
  Box bbox;
  std::unique_ptr<SparseFormat> format;  ///< decoded index, ready to query
  std::vector<value_t> values;           ///< slot-ordered (post-map)
  std::size_t point_count = 0;
  std::size_t file_bytes = 0;    ///< encoded size on disk
  std::size_t memory_bytes = 0;  ///< what this entry charges to the budget
};

/// Loads `path` through the (possibly throttled) device model and resolves
/// it into an OpenFragment. This is the single open-decode implementation
/// the read paths previously each hand-rolled.
std::shared_ptr<const OpenFragment> load_open_fragment(
    const std::string& path, const DeviceModel& model);

/// Point-in-time cache counters. Cumulative counters (hits, misses,
/// evictions, invalidations) survive invalidation; open_* describe the
/// current residents.
///
/// Relationship to artsparse::obs: every event counted here is also
/// published to the process-wide metrics registry (artsparse_cache_*), so
/// CacheStats is this instance's view of the same stream the registry
/// aggregates across all caches. reset_stats() zeroes only this
/// instance's view; obs::registry().reset() zeroes only the registry's —
/// the two are independent cursors over one event stream.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;          ///< fragments loaded from disk
  std::size_t evictions = 0;       ///< entries dropped to satisfy the budget
  std::size_t invalidations = 0;   ///< entries dropped by writes/clears
  std::size_t open_count = 0;      ///< resident fragments right now
  std::size_t open_bytes = 0;      ///< resident bytes right now
  std::size_t pinned_bytes = 0;    ///< bytes held by in-flight batch reads
  std::size_t budget_bytes = 0;
};

/// Thread-safe, byte-budgeted LRU cache of OpenFragments, keyed by an
/// opaque string — plain file paths for direct callers, or the manifest
/// layer's generation-tagged "<path>@g<N>" keys, which make it impossible
/// for a recycled or rewritten path to ever serve stale bytes. One
/// instance per FragmentStore (TiledStore shares its inner store's
/// instance), so invalidation never crosses stores.
class FragmentCache {
 public:
  /// 256 MiB; roomy for the bench grids, small next to a real server.
  static constexpr std::size_t kDefaultBudgetBytes = 256u << 20;

  /// Budget of the ARTSPARSE_CACHE_BYTES environment variable when set and
  /// parseable, else kDefaultBudgetBytes.
  static std::size_t budget_from_env();

  explicit FragmentCache(std::size_t budget_bytes = budget_from_env());

  /// Releases the residents' share of the process-wide obs gauges
  /// (artsparse_cache_open_bytes / _open_fragments).
  ~FragmentCache();

  /// One resolution through the cache.
  struct Lookup {
    std::shared_ptr<const OpenFragment> fragment;
    bool hit = false;
    double load_seconds = 0.0;  ///< disk + decode time paid (0 on a hit)
  };

  /// Returns the open form of `path`, loading it via `model` on a miss.
  /// Concurrent misses on the same path may both load; the first insert
  /// wins and the loser adopts it (correct, merely redundant work — the
  /// fan-out path hits distinct fragments, where loads fully overlap).
  Lookup get(const std::string& path, const DeviceModel& model);

  /// As above, but cached under `key` while loading from `path`. The
  /// manifest layer resolves entries this way with generation-tagged keys,
  /// so two fragments that ever shared a path can never share an entry.
  Lookup get(const std::string& key, const std::string& path,
             const DeviceModel& model);

  /// Drops `key` if resident. Called by the store before a path is
  /// (re)written so a recycled fragment name can never serve stale bytes.
  void invalidate(const std::string& key);

  /// Drops every resident entry (store clear/rescan/consolidate).
  void invalidate_all();

  CacheStats stats() const;
  void reset_stats();

  std::size_t budget_bytes() const { return budget_bytes_; }

  /// Pinned-bytes accounting: a batched read pins the fragments it holds
  /// decoded for the duration of the batch (positive delta on entry,
  /// matching negative on exit), so operators can see how much of the
  /// resident budget is momentarily non-reclaimable. Accounting only — the
  /// LRU does not consult it; the shared_ptr references keep the memory
  /// alive regardless of eviction. Mirrored to the
  /// artsparse_cache_pinned_bytes gauge.
  void add_pinned(std::int64_t delta);

 private:
  /// Most-recently-used at the front.
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const OpenFragment>>>;

  /// Inserts at the MRU position and evicts from the LRU end until the
  /// budget holds (the newest entry itself is never evicted, so one
  /// oversized hot fragment still caches).
  void insert_locked(const std::string& key,
                     std::shared_ptr<const OpenFragment> fragment)
      ARTSPARSE_REQUIRES(mutex_);

  const std::size_t budget_bytes_;

  mutable Mutex mutex_;
  LruList lru_ ARTSPARSE_GUARDED_BY(mutex_);
  std::unordered_map<std::string, LruList::iterator> index_
      ARTSPARSE_GUARDED_BY(mutex_);
  std::size_t open_bytes_ ARTSPARSE_GUARDED_BY(mutex_) = 0;
  std::size_t hits_ ARTSPARSE_GUARDED_BY(mutex_) = 0;
  std::size_t misses_ ARTSPARSE_GUARDED_BY(mutex_) = 0;
  std::size_t evictions_ ARTSPARSE_GUARDED_BY(mutex_) = 0;
  std::size_t invalidations_ ARTSPARSE_GUARDED_BY(mutex_) = 0;
  /// Batch-pinned bytes; atomic so pin/unpin never takes the LRU mutex.
  std::atomic<std::int64_t> pinned_bytes_{0};
};

}  // namespace artsparse
