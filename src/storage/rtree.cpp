#include "storage/rtree.hpp"

#include <algorithm>
#include <cmath>

#include "check/issues.hpp"
#include "core/error.hpp"

namespace artsparse {

namespace {

/// Smallest box covering a and b.
Box cover(const Box& a, const Box& b) {
  std::vector<index_t> lo(a.rank());
  std::vector<index_t> hi(a.rank());
  for (std::size_t i = 0; i < a.rank(); ++i) {
    lo[i] = std::min(a.lo(i), b.lo(i));
    hi[i] = std::max(a.hi(i), b.hi(i));
  }
  return Box(std::move(lo), std::move(hi));
}

/// STR: recursively sort-and-tile `ids` (indices into boxes) by the center
/// along `dim`, slicing into groups that each hold ~fanout^(remaining
/// dims / d) entries so the final tiles have about `fanout` members.
void str_tile(const std::vector<Box>& boxes, std::vector<std::size_t>& ids,
              std::size_t begin, std::size_t end, std::size_t dim,
              std::size_t fanout,
              std::vector<std::pair<std::size_t, std::size_t>>& tiles) {
  const std::size_t n = end - begin;
  const std::size_t rank = boxes[ids[begin]].rank();
  if (n <= fanout || dim + 1 == rank) {
    // Final dimension: sort and emit consecutive tiles of `fanout`.
    std::sort(ids.begin() + static_cast<std::ptrdiff_t>(begin),
              ids.begin() + static_cast<std::ptrdiff_t>(end),
              [&](std::size_t a, std::size_t b) {
                return boxes[a].lo(dim) + boxes[a].hi(dim) <
                       boxes[b].lo(dim) + boxes[b].hi(dim);
              });
    for (std::size_t at = begin; at < end; at += fanout) {
      tiles.emplace_back(at, std::min(end, at + fanout));
    }
    return;
  }

  std::sort(ids.begin() + static_cast<std::ptrdiff_t>(begin),
            ids.begin() + static_cast<std::ptrdiff_t>(end),
            [&](std::size_t a, std::size_t b) {
              return boxes[a].lo(dim) + boxes[a].hi(dim) <
                     boxes[b].lo(dim) + boxes[b].hi(dim);
            });
  // Number of vertical slabs: ceil((n/fanout)^(1/(rank-dim))).
  const double leaves = std::ceil(static_cast<double>(n) /
                                  static_cast<double>(fanout));
  const double exponent = 1.0 / static_cast<double>(rank - dim);
  const auto slabs = static_cast<std::size_t>(
      std::max(1.0, std::ceil(std::pow(leaves, exponent))));
  const std::size_t per_slab = (n + slabs - 1) / slabs;
  for (std::size_t at = begin; at < end; at += per_slab) {
    str_tile(boxes, ids, at, std::min(end, at + per_slab), dim + 1, fanout,
             tiles);
  }
}

}  // namespace

RTree RTree::bulk_load(const std::vector<Box>& boxes, std::size_t fanout) {
  detail::require(fanout >= 2, "R-tree fanout must be >= 2");
  RTree tree;
  tree.entry_boxes_ = boxes;
  tree.leaf_count_ = boxes.size();
  if (boxes.empty()) return tree;
  const std::size_t rank = boxes[0].rank();
  for (const Box& box : boxes) {
    detail::require(!box.empty() && box.rank() == rank,
                    "R-tree boxes must be non-empty and of equal rank");
  }

  // Leaf level: STR-tile the entries.
  std::vector<std::size_t> ids(boxes.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  std::vector<std::pair<std::size_t, std::size_t>> tiles;
  str_tile(boxes, ids, 0, ids.size(), 0, fanout, tiles);

  std::vector<std::size_t> level;  // node indices of the current level
  for (const auto& [begin, end] : tiles) {
    Node node;
    node.leaf = true;
    node.children.assign(ids.begin() + static_cast<std::ptrdiff_t>(begin),
                         ids.begin() + static_cast<std::ptrdiff_t>(end));
    node.bbox = boxes[node.children[0]];
    for (std::size_t child : node.children) {
      node.bbox = cover(node.bbox, boxes[child]);
    }
    level.push_back(tree.nodes_.size());
    tree.nodes_.push_back(std::move(node));
  }

  // Internal levels: pack groups of `fanout` nodes until one root remains.
  while (level.size() > 1) {
    std::vector<std::size_t> next;
    for (std::size_t at = 0; at < level.size(); at += fanout) {
      Node node;
      node.leaf = false;
      const std::size_t end = std::min(level.size(), at + fanout);
      node.children.assign(level.begin() + static_cast<std::ptrdiff_t>(at),
                           level.begin() + static_cast<std::ptrdiff_t>(end));
      node.bbox = tree.nodes_[node.children[0]].bbox;
      for (std::size_t child : node.children) {
        node.bbox = cover(node.bbox, tree.nodes_[child].bbox);
      }
      next.push_back(tree.nodes_.size());
      tree.nodes_.push_back(std::move(node));
    }
    level = std::move(next);
  }
  tree.root_ = level.front();
  return tree;
}

std::vector<std::size_t> RTree::query(const Box& query) const {
  std::vector<std::size_t> hits;
  visit(query, [&](std::size_t id) { hits.push_back(id); });
  std::sort(hits.begin(), hits.end());
  return hits;
}

std::size_t RTree::height() const {
  if (nodes_.empty()) return 0;
  std::size_t levels = 1;
  std::size_t node = root_;
  while (!nodes_[node].leaf) {
    node = nodes_[node].children.front();
    ++levels;
  }
  return levels;
}

void RTree::check_invariants(check::Issues& issues) const {
  if (nodes_.empty()) {
    if (leaf_count_ != 0) {
      issues.add("rtree.empty", "tree records " +
                                    std::to_string(leaf_count_) +
                                    " entries but has no nodes");
    }
    return;
  }
  std::vector<std::size_t> entry_seen(entry_boxes_.size(), 0);
  std::vector<bool> node_seen(nodes_.size(), false);
  std::vector<std::size_t> stack{root_};
  while (!stack.empty()) {
    const std::size_t at = stack.back();
    stack.pop_back();
    if (at >= nodes_.size() || node_seen[at]) {
      issues.add("rtree.nodes", "node reference " + std::to_string(at) +
                                    " is out of range or forms a cycle");
      return;
    }
    node_seen[at] = true;
    const Node& node = nodes_[at];
    for (std::size_t child : node.children) {
      if (node.leaf) {
        if (child >= entry_boxes_.size()) {
          issues.add("rtree.entries", "leaf entry " + std::to_string(child) +
                                          " is out of range");
          return;
        }
        ++entry_seen[child];
        if (!node.bbox.contains(entry_boxes_[child])) {
          issues.add("rtree.containment",
                     "leaf node box does not contain entry " +
                         std::to_string(child));
        }
      } else {
        if (child < nodes_.size() &&
            !node.bbox.contains(nodes_[child].bbox)) {
          issues.add("rtree.containment",
                     "inner node box does not contain child node " +
                         std::to_string(child));
        }
        stack.push_back(child);
      }
    }
  }
  for (std::size_t i = 0; i < entry_seen.size(); ++i) {
    if (entry_seen[i] != 1) {
      issues.add("rtree.coverage",
                 "entry " + std::to_string(i) + " is referenced " +
                     std::to_string(entry_seen[i]) + " times");
      return;
    }
  }
  if (entry_boxes_.size() != leaf_count_) {
    issues.add("rtree.count", "entry box count " +
                                  std::to_string(entry_boxes_.size()) +
                                  " != recorded leaf count " +
                                  std::to_string(leaf_count_));
  }
}

}  // namespace artsparse
