#include "storage/fault.hpp"

#include <cerrno>
#include <cstdlib>

#include "core/deadline.hpp"
#include "core/env.hpp"
#include "obs/metrics.hpp"

namespace artsparse {

namespace {

struct OpName {
  FaultOp op;
  const char* name;
};

constexpr OpName kOpNames[] = {
    {FaultOp::kOpenWrite, "open"},   {FaultOp::kOpenRead, "open_read"},
    {FaultOp::kRead, "read"},        {FaultOp::kWrite, "write"},
    {FaultOp::kFsync, "fsync"},      {FaultOp::kRename, "rename"},
    {FaultOp::kDirFsync, "dirsync"},
};

struct ErrnoName {
  const char* name;
  int value;
};

constexpr ErrnoName kErrnoNames[] = {
    {"EIO", EIO},         {"EINTR", EINTR},   {"EAGAIN", EAGAIN},
    {"ENOSPC", ENOSPC},   {"EACCES", EACCES}, {"ENOENT", ENOENT},
    {"EBUSY", EBUSY},     {"EDQUOT", EDQUOT}, {"ETIMEDOUT", ETIMEDOUT},
    {"EROFS", EROFS},     {"EMFILE", EMFILE}, {"ENFILE", ENFILE},
};

struct ParsedAction {
  int error_number = 0;        ///< 0 = crash when delay_ms is 0
  std::uint64_t delay_ms = 0;  ///< > 0 = stall action
};

/// Parses the action field: "crash" -> {0, 0}, "delay_ms=N" -> {0, N},
/// errno name or decimal -> {value, 0}.
ParsedAction parse_action(const std::string& action) {
  if (action == "crash") return ParsedAction{};
  constexpr const char kDelayPrefix[] = "delay_ms=";
  constexpr std::size_t kDelayPrefixLen = sizeof(kDelayPrefix) - 1;
  if (action.compare(0, kDelayPrefixLen, kDelayPrefix) == 0) {
    const std::string ms_text = action.substr(kDelayPrefixLen);
    char* end = nullptr;
    const unsigned long long ms = std::strtoull(ms_text.c_str(), &end, 10);
    // Leading-digit check: strtoull silently wraps "-5" to a huge value.
    detail::require(!ms_text.empty() && ms_text[0] >= '0' &&
                        ms_text[0] <= '9' && end != ms_text.c_str() &&
                        *end == '\0' && ms > 0,
                    "fault spec: delay_ms wants a positive integer, got '" +
                        action + "'");
    return ParsedAction{0, static_cast<std::uint64_t>(ms)};
  }
  for (const ErrnoName& entry : kErrnoNames) {
    if (action == entry.name) return ParsedAction{entry.value, 0};
  }
  char* end = nullptr;
  const long value = std::strtol(action.c_str(), &end, 10);
  detail::require(end != action.c_str() && *end == '\0' && value > 0,
                  "fault spec: unknown action '" + action + "'");
  return ParsedAction{static_cast<int>(value), 0};
}

}  // namespace

const char* to_string(FaultOp op) {
  for (const OpName& entry : kOpNames) {
    if (entry.op == op) return entry.name;
  }
  return "?";
}

FaultOp fault_op_from_string(const std::string& name) {
  for (const OpName& entry : kOpNames) {
    if (name == entry.name) return entry.op;
  }
  throw FormatError("fault spec: unknown op '" + name + "'");
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const std::string& spec) {
  const MutexLock lock(mutex_);
  directives_.clear();
  counters_.fill(0);
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string directive = spec.substr(start, end - start);
    start = end + 1;
    if (directive.empty()) continue;
    const std::size_t first = directive.find(':');
    const std::size_t second =
        first == std::string::npos ? std::string::npos
                                   : directive.find(':', first + 1);
    detail::require(second != std::string::npos,
                    "fault spec: expected op:nth:action, got '" + directive +
                        "'");
    const FaultOp op = fault_op_from_string(directive.substr(0, first));
    char* end_ptr = nullptr;
    const std::string nth_text =
        directive.substr(first + 1, second - first - 1);
    const unsigned long long nth =
        std::strtoull(nth_text.c_str(), &end_ptr, 10);
    detail::require(end_ptr != nth_text.c_str() && *end_ptr == '\0' &&
                        nth > 0,
                    "fault spec: nth must be a positive integer, got '" +
                        nth_text + "'");
    const ParsedAction action = parse_action(directive.substr(second + 1));
    directives_.push_back(Directive{op, static_cast<std::size_t>(nth),
                                    action.error_number, action.delay_ms,
                                    false});
  }
  enabled_.store(!directives_.empty(), std::memory_order_relaxed);
}

void FaultInjector::configure_from_env() {
  if (const auto spec = env_string("ARTSPARSE_FAULT_SPEC")) {
    configure(*spec);
  }
}

void FaultInjector::arm(FaultOp op, std::size_t nth, int error_number) {
  detail::require(nth > 0 && error_number > 0,
                  "fault arm: nth and errno must be positive");
  const MutexLock lock(mutex_);
  directives_.push_back(Directive{op, nth, error_number, 0, false});
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::arm_crash(FaultOp op, std::size_t nth) {
  detail::require(nth > 0, "fault arm: nth must be positive");
  const MutexLock lock(mutex_);
  directives_.push_back(Directive{op, nth, 0, 0, false});
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::arm_delay(FaultOp op, std::size_t nth,
                              std::uint64_t delay_ms) {
  detail::require(nth > 0 && delay_ms > 0,
                  "fault arm: nth and delay_ms must be positive");
  const MutexLock lock(mutex_);
  directives_.push_back(Directive{op, nth, 0, delay_ms, false});
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  const MutexLock lock(mutex_);
  directives_.clear();
  counters_.fill(0);
  enabled_.store(false, std::memory_order_relaxed);
}

void FaultInjector::on_syscall(FaultOp op, const std::string& path) {
  int error_number = -1;
  std::uint64_t delay_ms = 0;
  std::size_t call = 0;
  {
    const MutexLock lock(mutex_);
    call = ++counters_[static_cast<std::size_t>(op)];
    for (Directive& directive : directives_) {
      if (!directive.fired && directive.op == op && directive.nth == call) {
        directive.fired = true;
        error_number = directive.error_number;
        delay_ms = directive.delay_ms;
        break;
      }
    }
  }
  if (error_number < 0) return;
  ARTSPARSE_COUNT_L("artsparse_fault_injected_total", "op", to_string(op),
                    1);
  const std::string site = std::string(to_string(op)) + " call #" +
                           std::to_string(call) + " on '" + path + "'";
  if (delay_ms > 0) {
    // Stall, then let the call proceed: models a slow device rather than a
    // broken one. The sleep observes the ambient deadline/cancel budget so
    // a budgeted operation fails typed-and-fast instead of waiting it out.
    const WaitResult wait =
        interruptible_sleep(static_cast<double>(delay_ms) / 1e3);
    if (wait == WaitResult::kCancelled) {
      ARTSPARSE_COUNT("artsparse_cancelled_total", 1);
      throw CancelledError("cancelled during injected delay at " + site);
    }
    if (wait == WaitResult::kDeadlineExpired) {
      ARTSPARSE_COUNT("artsparse_deadline_exceeded_total", 1);
      throw DeadlineExceededError(
          "deadline expired during injected " + std::to_string(delay_ms) +
          " ms delay at " + site);
    }
    return;
  }
  if (error_number == 0) {
    throw CrashFault("injected crash at " + site);
  }
  throw IoError::with_errno("injected fault at " + std::string(to_string(op)),
                            path, error_number);
}

std::size_t FaultInjector::calls(FaultOp op) const {
  const MutexLock lock(mutex_);
  return counters_[static_cast<std::size_t>(op)];
}

}  // namespace artsparse
