// Fragment: the on-disk unit of Algorithm 3. A WRITE produces one fragment
// holding the organization's serialized index concatenated with the
// (possibly reorganized) value buffer, prefixed by a self-describing header
// and suffixed by a payload checksum.
//
// Layout:
//   magic u32 | version u32 | org u8 | codec u8 |
//   shape extents (u64 vec) | bbox flag u8 [+ lo vec + hi vec] |
//   point count u64 | index length u64 | value count u64 |
//   value min f64 | value max f64 |
//   index bytes (codec-encoded) | values (f64) | crc32 u32
//
// The value min/max pair is the fragment's statistics block: reads with a
// value predicate skip whole fragments whose [min, max] cannot match
// (TileDB-style pushdown). Both are 0 for empty fragments.
#pragma once

#include <string>
#include <vector>

#include "core/box.hpp"
#include "core/shape.hpp"
#include "core/types.hpp"
#include "storage/compress/codec.hpp"

namespace artsparse {

inline constexpr std::uint32_t kFragmentMagic = 0x41535046;  // "ASPF"
inline constexpr std::uint32_t kFragmentVersion = 1;

/// Decoded fragment contents.
struct Fragment {
  OrgKind org = OrgKind::kCoo;
  CodecKind codec = CodecKind::kIdentity;
  Shape shape;                   ///< dense tensor shape of the store
  Box bbox;                      ///< bounding box of stored points
  std::uint64_t point_count = 0;
  Bytes index;                   ///< serialized SparseFormat (decoded)
  std::vector<value_t> values;   ///< reorganized per the build map

  /// Smallest/largest stored value (both 0 when values is empty). Callers
  /// building a Fragment by hand may leave them default; encode_fragment
  /// recomputes them from `values`.
  value_t value_min = 0;
  value_t value_max = 0;
};

/// Header-only view, enough for fragment discovery (bounding-box overlap
/// tests) without decoding payloads.
struct FragmentInfo {
  OrgKind org = OrgKind::kCoo;
  CodecKind codec = CodecKind::kIdentity;
  Shape shape;
  Box bbox;
  std::uint64_t point_count = 0;
  std::uint64_t index_bytes = 0;   ///< as stored (after codec)
  std::uint64_t value_count = 0;
  value_t value_min = 0;
  value_t value_max = 0;
};

/// Serializes a fragment (applying its codec to the index section).
Bytes encode_fragment(const Fragment& fragment);

/// Parses and validates a whole fragment, verifying the checksum and
/// decoding the index section through the recorded codec.
Fragment decode_fragment(std::span<const std::byte> data);

/// Parses only the header.
FragmentInfo decode_fragment_info(std::span<const std::byte> data);

}  // namespace artsparse
