// Bulk-loaded R-tree over bounding boxes (Sort-Tile-Recursive packing).
//
// The paper scopes R-trees out as "primarily used to index blocks of
// points" — i.e. the layer *above* the sparse organizations. That is
// exactly where this one sits: FragmentStore uses it to find the fragments
// overlapping a query without scanning every fragment's bounding box, which
// matters once a store holds thousands of tile fragments.
//
// Immutable once built (stores rebuild lazily after appends); queries are
// read-only and thread-safe.
#pragma once

#include <cstddef>
#include <vector>

#include "core/box.hpp"

namespace artsparse {

namespace check {
class Issues;  // check/issues.hpp
}

class RTree {
 public:
  RTree() = default;

  /// Packs `boxes` (all the same rank, none empty) with STR: entries are
  /// sorted by center along each dimension in turn and tiled into nodes of
  /// up to `fanout` children. Query results carry each box's index in the
  /// input vector.
  static RTree bulk_load(const std::vector<Box>& boxes,
                         std::size_t fanout = 16);

  /// Indices of all input boxes overlapping `query`, ascending.
  std::vector<std::size_t> query(const Box& query) const;

  /// Visits each overlapping input-box index (avoids the result vector).
  template <typename Fn>
  void visit(const Box& query, Fn&& fn) const {
    if (nodes_.empty()) return;
    visit_node(root_, query, fn);
  }

  std::size_t size() const { return leaf_count_; }
  bool empty() const { return leaf_count_ == 0; }

  /// Height of the tree (0 when empty, 1 for a single leaf node).
  std::size_t height() const;

  /// Structural self-check for `artsparse check`: every node box must
  /// contain its children's boxes (else queries silently miss entries) and
  /// every entry must be reachable exactly once.
  void check_invariants(check::Issues& issues) const;

 private:
  struct Node {
    Box bbox;
    /// Children: node indices for internal nodes, input-box indices for
    /// leaves.
    std::vector<std::size_t> children;
    bool leaf = true;
  };

  template <typename Fn>
  void visit_node(std::size_t node_index, const Box& query, Fn& fn) const {
    const Node& node = nodes_[node_index];
    if (!node.bbox.overlaps(query)) return;
    for (std::size_t child : node.children) {
      if (node.leaf) {
        if (entry_boxes_[child].overlaps(query)) {
          fn(child);
        }
      } else {
        visit_node(child, query, fn);
      }
    }
  }

  std::vector<Node> nodes_;
  std::vector<Box> entry_boxes_;  ///< copy of the inputs, for leaf tests
  std::size_t root_ = 0;
  std::size_t leaf_count_ = 0;
};

}  // namespace artsparse
