#include "storage/fragment_store.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <map>
#include <system_error>
#include <utility>

#include "advisor/advisor.hpp"
#include "check/validate.hpp"
#include "core/deadline.hpp"
#include "core/error.hpp"
#include "core/linearize.hpp"
#include "core/parallel.hpp"
#include "core/sort.hpp"
#include "formats/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/fault.hpp"
#include "storage/fragment.hpp"

namespace artsparse {

namespace {

/// Fan-out grain: one element is one whole fragment (disk read + decode +
/// search), so parallelize from two fragments up.
constexpr std::size_t kFragmentGrain = 2;

/// Publishes the store's current generation as a per-directory gauge
/// series, so dashboards can watch consolidation/rescan churn per store.
void set_generation_gauge(const std::string& directory,
                          std::uint64_t generation) {
#if defined(ARTSPARSE_OBS_ENABLED)
  obs::registry()
      .gauge("artsparse_store_generation",
             "Current manifest generation, labeled by store directory",
             {{"store", directory}})
      .set(static_cast<std::int64_t>(generation));
#else
  static_cast<void>(directory);
  static_cast<void>(generation);
#endif
}

/// Publishes the store's health state (0 healthy / 1 recovering /
/// 2 degraded) as a per-directory gauge, so dashboards alert on `> 0`.
void set_health_gauge(const std::string& directory, StoreHealth health) {
#if defined(ARTSPARSE_OBS_ENABLED)
  obs::registry()
      .gauge("artsparse_store_health",
             "Store health: 0 healthy, 1 recovering, 2 degraded read-only; "
             "labeled by store directory",
             {{"store", directory}})
      .set(static_cast<std::int64_t>(health));
#else
  static_cast<void>(directory);
  static_cast<void>(health);
#endif
}

/// Checked between fragments on the read fan-out: a gone budget stops the
/// scan at a fragment boundary with a typed error, which the kSkip policy
/// turns into a partial result (the fragment lands in ReadResult::skipped)
/// and kStrict propagates to the caller.
void check_budget(const OpContext& ctx) {
  if (ctx.cancelled()) {
    ARTSPARSE_COUNT("artsparse_cancelled_total", 1);
    throw CancelledError("operation cancelled before fragment was read");
  }
  if (ctx.expired()) {
    ARTSPARSE_COUNT("artsparse_deadline_exceeded_total", 1);
    throw DeadlineExceededError("deadline expired before fragment was read");
  }
}

/// Errnos whose persistence on the commit path degrades the store: the
/// capacity class (ENOSPC/EDQUOT) plus EIO (failing device).
bool degradation_eligible(int error_number) {
  return error_number == EIO ||
         io_errno_class(error_number) == IoErrnoClass::kCapacity;
}

}  // namespace

const char* to_string(StoreHealth health) {
  switch (health) {
    case StoreHealth::kHealthy:
      return "healthy";
    case StoreHealth::kRecovering:
      return "recovering";
    case StoreHealth::kDegraded:
      return "degraded";
  }
  return "?";
}

/// Per-fragment partial result, produced independently by one fan-out
/// worker and merged on the caller in hit order (= fragment write order),
/// which keeps results byte-identical to the sequential loop they replaced.
struct Snapshot::Partial {
  std::vector<std::size_t> found_query;  ///< read(): query index per hit
  CoordBuffer found_coords;              ///< scan paths: hit coordinates
  std::vector<value_t> found_values;
  double extract = 0.0;  ///< fragment load + decode (0 on a cache hit)
  double query = 0.0;    ///< organization-specific search
  bool cache_hit = false;
  bool skipped = false;     ///< kSkip policy dropped this fragment
  std::string skip_error;   ///< why (IoError / FormatError message)
};

// ---------------------------------------------------------------------------
// Snapshot: the read paths. Every method below sees only manifest_'s
// immutable entry list, so no locking against writers is ever needed.
// ---------------------------------------------------------------------------

ReadResult Snapshot::read(const CoordBuffer& queries) const {
  ReadResult result;
  if (queries.empty()) {
    result.coords = CoordBuffer(shape_.rank());
    return result;
  }
  detail::require(queries.rank() == shape_.rank(),
                  "query rank does not match store shape");

  ARTSPARSE_SPAN_TYPE read_span("store.read", "read");
  read_span.attr("queries", static_cast<std::uint64_t>(queries.size()));
  ARTSPARSE_COUNT("artsparse_read_queries_total", 1);
  ARTSPARSE_COUNT("artsparse_read_points_total", queries.size());

  // Find all fragments containing b_coor (line 4): bounding-box overlap.
  WallTimer timer;
  const Box query_box = Box::bounding(queries);
  const std::vector<const ManifestEntry*> hits =
      manifest_->discover(query_box);
  result.times.discover = timer.seconds();
  result.fragments_visited = hits.size();

  // Per fragment: resolve through the cache, search, collect <query, value>
  // (lines 6-11) — one independent worker per fragment. Under kSkip a
  // fragment that fails to load or decode — or whose turn comes after the
  // operation's deadline/cancel budget is gone — is dropped and reported
  // instead of failing the whole query.
  const OpContext budget = current_op_context();
  std::vector<Partial> partials(hits.size());
  parallel_for_each(
      hits.size(),
      [&](std::size_t i) {
        Partial& partial = partials[i];
        try {
          check_budget(budget);
          const FragmentCache::Lookup lookup =
              cache_->get(hits[i]->cache_key, hits[i]->path(), model_);
          partial.extract = lookup.load_seconds;
          partial.cache_hit = lookup.hit;

          // Organization-specific existence search (line 9).
          WallTimer search_timer;
          const OpenFragment& fragment = *lookup.fragment;
          const std::vector<std::size_t> slots =
              fragment.format->read(queries);
          for (std::size_t q = 0; q < slots.size(); ++q) {
            if (slots[q] != kNotFound) {
              detail::require(slots[q] < fragment.values.size(),
                              "format returned slot beyond value buffer");
              partial.found_query.push_back(q);
              partial.found_values.push_back(fragment.values[slots[q]]);
            }
          }
          partial.query = search_timer.seconds();
          ARTSPARSE_OBSERVE_L("artsparse_format_read_ns", "org",
                              to_string(fragment.org), partial.query * 1e9);
        } catch (const Error& e) {
          if (fault_policy_ == ReadFaultPolicy::kStrict) throw;
          partial = Partial{};
          partial.skipped = true;
          partial.skip_error = e.what();
        }
      },
      0, kFragmentGrain);

  // Merge partials in hit order — identical to the sequential loop's
  // concatenation order — then sort by linear address (lines 12-13).
  std::vector<std::size_t> found_query;
  std::vector<value_t> found_value;
  for (std::size_t i = 0; i < partials.size(); ++i) {
    const Partial& partial = partials[i];
    if (partial.skipped) {
      ARTSPARSE_COUNT("artsparse_read_fragments_skipped_total", 1);
      result.skipped.push_back(
          SkippedFragment{hits[i]->path(), partial.skip_error});
      continue;
    }
    ARTSPARSE_COUNT("artsparse_read_fragments_resolved_total", 1);
    result.times.extract += partial.extract;
    result.times.query += partial.query;
    ++(partial.cache_hit ? result.times.cache_hits
                         : result.times.cache_misses);
    found_query.insert(found_query.end(), partial.found_query.begin(),
                       partial.found_query.end());
    found_value.insert(found_value.end(), partial.found_values.begin(),
                       partial.found_values.end());
  }

  timer.reset();
  std::vector<index_t> addresses(found_query.size());
  parallel_for_each(found_query.size(), [&](std::size_t i) {
    addresses[i] = linearize(queries.point(found_query[i]), shape_);
  });
  const std::vector<std::size_t> order = sort_permutation(addresses);
  const std::size_t rank = shape_.rank();
  std::vector<index_t> flat(order.size() * rank);
  std::vector<value_t> values(order.size());
  parallel_for_each(order.size(), [&](std::size_t i) {
    const auto point = queries.point(found_query[order[i]]);
    std::copy(point.begin(), point.end(), flat.begin() + i * rank);
    values[i] = found_value[order[i]];
  });
  result.coords = CoordBuffer(rank, std::move(flat));
  result.values = std::move(values);
  result.times.merge = timer.seconds();
  return result;
}

ReadResult Snapshot::read_region(const Box& region) const {
  detail::require(region.rank() == shape_.rank(),
                  "region rank does not match store shape");
  CoordBuffer queries(shape_.rank());
  enumerate_cells(region, queries);
  return read(queries);
}

ReadResult Snapshot::scan_region(const Box& region) const {
  return scan_region_where(region, ValueRange{});
}

ReadResult Snapshot::scan_region_where(const Box& region,
                                       const ValueRange& range) const {
  detail::require(region.rank() == shape_.rank(),
                  "region rank does not match store shape");
  detail::require(range.min <= range.max, "value range is inverted");
  ReadResult result;
  ARTSPARSE_SPAN_TYPE scan_span("store.scan", "read");
  ARTSPARSE_COUNT("artsparse_read_queries_total", 1);
  WallTimer timer;
  // Discovery prunes on both axes: spatial overlap (R-tree backed for
  // large manifests) and the fragment's value statistics vs the predicate.
  std::vector<const ManifestEntry*> hits = manifest_->discover(region);
  std::erase_if(hits, [&](const ManifestEntry* entry) {
    return !range.overlaps(entry->value_min, entry->value_max);
  });
  result.times.discover = timer.seconds();
  result.fragments_visited = hits.size();

  // Native box scan per fragment, fanned out like read().
  const OpContext budget = current_op_context();
  std::vector<Partial> partials(hits.size());
  parallel_for_each(
      hits.size(),
      [&](std::size_t i) {
        Partial& partial = partials[i];
        partial.found_coords = CoordBuffer(shape_.rank());
        try {
          check_budget(budget);
          const FragmentCache::Lookup lookup =
              cache_->get(hits[i]->cache_key, hits[i]->path(), model_);
          partial.extract = lookup.load_seconds;
          partial.cache_hit = lookup.hit;

          WallTimer scan_timer;
          const OpenFragment& fragment = *lookup.fragment;
          std::vector<std::size_t> slots;
          CoordBuffer scanned(shape_.rank());
          fragment.format->scan_box(region, scanned, slots);
          detail::require(scanned.size() == slots.size(),
                          "scan_box points/slots length mismatch");
          for (std::size_t k = 0; k < slots.size(); ++k) {
            detail::require(slots[k] < fragment.values.size(),
                            "format returned slot beyond value buffer");
            const value_t value = fragment.values[slots[k]];
            if (range.matches(value)) {
              partial.found_coords.append(scanned.point(k));
              partial.found_values.push_back(value);
            }
          }
          partial.query = scan_timer.seconds();
          ARTSPARSE_OBSERVE_L("artsparse_format_read_ns", "org",
                              to_string(fragment.org), partial.query * 1e9);
        } catch (const Error& e) {
          if (fault_policy_ == ReadFaultPolicy::kStrict) throw;
          partial = Partial{};
          partial.skipped = true;
          partial.skip_error = e.what();
        }
      },
      0, kFragmentGrain);

  CoordBuffer found(shape_.rank());
  std::vector<value_t> values;
  for (std::size_t i = 0; i < partials.size(); ++i) {
    const Partial& partial = partials[i];
    if (partial.skipped) {
      ARTSPARSE_COUNT("artsparse_read_fragments_skipped_total", 1);
      result.skipped.push_back(
          SkippedFragment{hits[i]->path(), partial.skip_error});
      continue;
    }
    ARTSPARSE_COUNT("artsparse_read_fragments_resolved_total", 1);
    result.times.extract += partial.extract;
    result.times.query += partial.query;
    ++(partial.cache_hit ? result.times.cache_hits
                         : result.times.cache_misses);
    for (std::size_t k = 0; k < partial.found_coords.size(); ++k) {
      found.append(partial.found_coords.point(k));
    }
    values.insert(values.end(), partial.found_values.begin(),
                  partial.found_values.end());
  }

  timer.reset();
  std::vector<index_t> addresses(found.size());
  parallel_for_each(found.size(), [&](std::size_t i) {
    addresses[i] = linearize(found.point(i), shape_);
  });
  const std::vector<std::size_t> order = sort_permutation(addresses);
  const std::size_t rank = shape_.rank();
  std::vector<index_t> flat(order.size() * rank);
  std::vector<value_t> sorted_values(order.size());
  parallel_for_each(order.size(), [&](std::size_t i) {
    const auto point = found.point(order[i]);
    std::copy(point.begin(), point.end(), flat.begin() + i * rank);
    sorted_values[i] = values[order[i]];
  });
  result.coords = CoordBuffer(rank, std::move(flat));
  result.values = std::move(sorted_values);
  result.times.merge = timer.seconds();
  return result;
}

std::vector<ReadResult> Snapshot::scan_batch(
    std::span<const Box> regions) const {
  std::vector<ReadResult> results(regions.size());
  if (regions.empty()) return results;
  ARTSPARSE_SPAN_TYPE batch_span("store.scan_batch", "read");
  batch_span.attr("regions", static_cast<std::uint64_t>(regions.size()));

  // Discover per region (pure in-memory work against the pinned
  // manifest), recording each region's hit list in its own order.
  std::vector<std::vector<const ManifestEntry*>> hits(regions.size());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    detail::require(regions[r].rank() == shape_.rank(),
                    "region rank does not match store shape");
    ARTSPARSE_COUNT("artsparse_read_queries_total", 1);
    WallTimer timer;
    hits[r] = manifest_->discover(regions[r]);
    results[r].times.discover = timer.seconds();
    results[r].fragments_visited = hits[r].size();
  }

  // Coalesce: every fragment touched by any region is resolved exactly
  // once, no matter how many regions overlap it. `interested` maps each
  // unique fragment to the regions that want it, in region order.
  std::map<const ManifestEntry*, std::size_t> slot_of;
  std::vector<const ManifestEntry*> unique;
  std::vector<std::vector<std::size_t>> interested;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    for (const ManifestEntry* entry : hits[r]) {
      const auto [it, inserted] = slot_of.try_emplace(entry, unique.size());
      if (inserted) {
        unique.push_back(entry);
        interested.emplace_back();
      }
      interested[it->second].push_back(r);
    }
  }
  ARTSPARSE_COUNT("artsparse_batch_fragments_total", unique.size());
  std::size_t duplicate_touches = 0;
  for (const auto& wanters : interested) {
    duplicate_touches += wanters.size() - 1;
  }
  ARTSPARSE_COUNT("artsparse_batch_fragments_coalesced_total",
                  duplicate_touches);

  // One decode per unique fragment, then every interested region's box
  // scan against the same OpenFragment. Each (fragment, region) pair gets
  // its own Partial so assembly below can replay the exact per-region
  // sequential merge order.
  struct FragmentWork {
    std::vector<Partial> per_region;  ///< parallel to interested[slot]
    std::size_t memory_bytes = 0;     ///< pinned while the batch runs
    bool skipped = false;
    std::string skip_error;
    bool cache_hit = false;
    double extract = 0.0;
  };
  const OpContext budget = current_op_context();
  std::vector<FragmentWork> work(unique.size());
  parallel_for_each(
      unique.size(),
      [&](std::size_t s) {
        FragmentWork& w = work[s];
        w.per_region.resize(interested[s].size());
        try {
          check_budget(budget);
          const FragmentCache::Lookup lookup =
              cache_->get(unique[s]->cache_key, unique[s]->path(), model_);
          w.cache_hit = lookup.hit;
          w.extract = lookup.load_seconds;
          const OpenFragment& fragment = *lookup.fragment;
          w.memory_bytes = fragment.memory_bytes;
          cache_->add_pinned(static_cast<std::int64_t>(w.memory_bytes));
          for (std::size_t k = 0; k < interested[s].size(); ++k) {
            Partial& partial = w.per_region[k];
            partial.found_coords = CoordBuffer(shape_.rank());
            WallTimer scan_timer;
            std::vector<std::size_t> slots;
            CoordBuffer scanned(shape_.rank());
            fragment.format->scan_box(regions[interested[s][k]], scanned,
                                      slots);
            detail::require(scanned.size() == slots.size(),
                            "scan_box points/slots length mismatch");
            for (std::size_t j = 0; j < slots.size(); ++j) {
              detail::require(slots[j] < fragment.values.size(),
                              "format returned slot beyond value buffer");
              partial.found_coords.append(scanned.point(j));
              partial.found_values.push_back(fragment.values[slots[j]]);
            }
            partial.query = scan_timer.seconds();
          }
        } catch (const Error& e) {
          if (fault_policy_ == ReadFaultPolicy::kStrict) throw;
          w.skipped = true;
          w.skip_error = e.what();
        }
      },
      0, kFragmentGrain);

  // Assemble each region exactly as scan_region would: partials in that
  // region's own hit order, then the linear-address merge sort. Cache
  // accounting per region: the first region that wanted a freshly loaded
  // fragment records the miss (and its load time); the rest see a hit,
  // which is what a sequential replay through a warm cache would observe.
  for (std::size_t r = 0; r < regions.size(); ++r) {
    ReadResult& result = results[r];
    CoordBuffer found(shape_.rank());
    std::vector<value_t> values;
    for (const ManifestEntry* entry : hits[r]) {
      const std::size_t s = slot_of[entry];
      FragmentWork& w = work[s];
      if (w.skipped) {
        ARTSPARSE_COUNT("artsparse_read_fragments_skipped_total", 1);
        result.skipped.push_back(SkippedFragment{entry->path(), w.skip_error});
        continue;
      }
      ARTSPARSE_COUNT("artsparse_read_fragments_resolved_total", 1);
      const std::size_t k =
          std::find(interested[s].begin(), interested[s].end(), r) -
          interested[s].begin();
      const Partial& partial = w.per_region[k];
      const bool first_wanter = interested[s].front() == r;
      if (!w.cache_hit && first_wanter) {
        ++result.times.cache_misses;
        result.times.extract += w.extract;
      } else {
        ++result.times.cache_hits;
      }
      result.times.query += partial.query;
      for (std::size_t j = 0; j < partial.found_coords.size(); ++j) {
        found.append(partial.found_coords.point(j));
      }
      values.insert(values.end(), partial.found_values.begin(),
                    partial.found_values.end());
    }

    WallTimer timer;
    std::vector<index_t> addresses(found.size());
    parallel_for_each(found.size(), [&](std::size_t i) {
      addresses[i] = linearize(found.point(i), shape_);
    });
    const std::vector<std::size_t> order = sort_permutation(addresses);
    const std::size_t rank = shape_.rank();
    std::vector<index_t> flat(order.size() * rank);
    std::vector<value_t> sorted_values(order.size());
    parallel_for_each(order.size(), [&](std::size_t i) {
      const auto point = found.point(order[i]);
      std::copy(point.begin(), point.end(), flat.begin() + i * rank);
      sorted_values[i] = values[order[i]];
    });
    result.coords = CoordBuffer(rank, std::move(flat));
    result.values = std::move(sorted_values);
    result.times.merge = timer.seconds();
  }

  // Release the batch's pin accounting.
  for (const FragmentWork& w : work) {
    if (w.memory_bytes != 0) {
      cache_->add_pinned(-static_cast<std::int64_t>(w.memory_bytes));
    }
  }
  return results;
}

// ---------------------------------------------------------------------------
// FragmentStore: manifest publication and the write side.
// ---------------------------------------------------------------------------

FragmentStore::FragmentStore(std::filesystem::path directory, Shape shape,
                             DeviceModel model, CodecKind codec,
                             std::shared_ptr<FragmentCache> cache)
    : directory_(std::move(directory)),
      shape_(std::move(shape)),
      model_(model),
      codec_(codec),
      cache_(cache ? std::move(cache)
                   : std::make_shared<FragmentCache>()) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    throw IoError("create_directories '" + directory_.string() +
                  "': " + ec.message());
  }
  {
    // No concurrent access during construction; locking keeps the
    // guarded-member discipline uniform for the analysis.
    const MutexLock lock(manifest_mutex_);
    manifest_ = std::make_shared<Manifest>(0, std::vector<ManifestEntry>{},
                                           shape_);
  }
  rescan();
  set_health(StoreHealth::kHealthy);  // publish the gauge series
}

Snapshot FragmentStore::snapshot() const {
  return Snapshot(current_manifest(), cache_, shape_, model_,
                  read_fault_policy());
}

std::uint64_t FragmentStore::generation() const {
  return current_manifest()->generation();
}

std::shared_ptr<const Manifest> FragmentStore::current_manifest() const {
  const MutexLock lock(manifest_mutex_);
  return manifest_;
}

void FragmentStore::publish_locked(std::vector<ManifestEntry> entries) {
  std::shared_ptr<const Manifest> previous;
  std::shared_ptr<const Manifest> next;
  {
    const MutexLock lock(manifest_mutex_);
    next = std::make_shared<Manifest>(manifest_->generation() + 1,
                                      std::move(entries), shape_);
    previous = std::exchange(manifest_, next);
  }
  ARTSPARSE_COUNT("artsparse_store_generations_published_total", 1);
  set_generation_gauge(directory_.string(), next->generation());
  // `previous` releases here; if it was the last reference, entries whose
  // files were doomed unlink now. Pinned snapshots keep them alive.
}

std::filesystem::path FragmentStore::next_fragment_path() {
  char name[32];
  std::snprintf(name, sizeof(name), "frag_%06zu.asf", next_id_++);
  return directory_ / name;
}

WriteResult FragmentStore::write(const CoordBuffer& coords,
                                 std::span<const value_t> values,
                                 OrgKind org) {
  const MutexLock lock(writer_mutex_);
  ensure_writable_locked();
  return write_locked(coords, values, org, /*replace=*/false);
}

WriteResult FragmentStore::write_locked(const CoordBuffer& coords,
                                        std::span<const value_t> values,
                                        OrgKind org, bool replace) {
  detail::require(coords.size() == values.size(),
                  "coordinate and value counts differ");
  WriteResult result;
  result.point_count = coords.size();

  ARTSPARSE_SPAN_TYPE write_span("store.write", "store");
  write_span.attr("org", std::string(to_string(org)));
  write_span.attr("points", static_cast<std::uint64_t>(coords.size()));

  // Build the organization (Algorithm 3 line 4).
  WallTimer timer;
  ARTSPARSE_SPAN_TYPE build_span("write.build", "store");
  auto format = make_format(org);
  const std::vector<std::size_t> map = format->build(coords, shape_);
  build_span.end();
  result.times.build = timer.seconds();
  result.times.build_sort = format->last_build_sort_seconds();
  ARTSPARSE_OBSERVE_L("artsparse_format_build_ns", "org", to_string(org),
                      result.times.build * 1e9);
  ARTSPARSE_OBSERVE_L("artsparse_format_build_sort_ns", "org", to_string(org),
                      result.times.build_sort * 1e9);

  // Reorganize b_data based on map if necessary (line 5). COO/LINEAR return
  // the identity; skip the gather entirely, matching the paper's zero-cost
  // "Reorg." rows for them.
  timer.reset();
  ARTSPARSE_SPAN_TYPE reorg_span("write.reorg", "store");
  std::vector<value_t> reorganized;
  bool identity = true;
  for (std::size_t i = 0; i < map.size(); ++i) {
    if (map[i] != i) {
      identity = false;
      break;
    }
  }
  if (identity) {
    reorganized.assign(values.begin(), values.end());
  } else {
    // `map` is a permutation (build() inverts its sort permutation), so
    // every slot is written exactly once — the scatter chunks across
    // workers without write conflicts.
    reorganized.resize(values.size());
    parallel_for(0, values.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        reorganized[map[i]] = values[i];
      }
    });
  }
  reorg_span.end();
  result.times.reorg = timer.seconds();

  // Concatenate buffers and build the fragment (lines 6-7, "Others").
  timer.reset();
  ARTSPARSE_SPAN_TYPE encode_span("write.encode", "store");
  Fragment fragment;
  fragment.org = org;
  fragment.codec = codec_;
  fragment.shape = shape_;
  fragment.bbox = coords.empty() ? Box() : Box::bounding(coords);
  fragment.point_count = coords.size();
  fragment.index = serialize_format(*format);
  result.index_bytes = fragment.index.size();
  fragment.values = std::move(reorganized);
  const Bytes encoded = encode_fragment(fragment);
  encode_span.end();
  const std::filesystem::path path = next_fragment_path();
  result.times.others = timer.seconds();

  // Commit the fragment to the (possibly throttled) device (line 7):
  // stage + fsync + rename + directory fsync, retrying transient errors.
  // The outcome feeds the health state machine: persistent ENOSPC/EIO here
  // degrades the store to read-only (CrashFault and budget errors are not
  // device-health signals and bypass the bookkeeping).
  timer.reset();
  RetryStats io;
  try {
    io = atomic_write_file(
        path.string(), encoded, retry_, [this](const std::string& staged) {
          return open_for_write(staged, model_);
        });
  } catch (const IoError& e) {
    note_commit_failure_locked(e.errno_value());
    throw;
  }
  note_commit_success_locked();
  result.times.write = timer.seconds();
  result.times.io_attempts = io.attempts;
  result.times.io_retries = io.retries;
  result.times.backoff = io.backoff_seconds;

  result.path = path.string();
  result.file_bytes = encoded.size();
  value_t lo = 0;
  value_t hi = 0;
  if (!fragment.values.empty()) {
    const auto [min_it, max_it] =
        std::minmax_element(fragment.values.begin(), fragment.values.end());
    lo = *min_it;
    hi = *max_it;
  }

  // Publish the successor manifest: the committed fragment set plus the
  // new entry (write), or only the new entry with every predecessor
  // doomed (consolidate's replace). Readers switch atomically; pinned
  // snapshots keep the generation they hold.
  const std::shared_ptr<const Manifest> current = current_manifest();
  std::vector<ManifestEntry> entries;
  if (replace) {
    for (const ManifestEntry& old : current->entries()) {
      old.file->doom();
      cache_->invalidate(old.cache_key);
    }
  } else {
    entries = current->entries();
  }
  ManifestEntry entry;
  entry.file = std::make_shared<FragmentFile>(path);
  entry.cache_key = path.string() + "@g" +
                    std::to_string(current->generation() + 1);
  entry.bbox = fragment.bbox;
  entry.org = org;
  entry.file_bytes = encoded.size();
  entry.value_min = lo;
  entry.value_max = hi;
  entries.push_back(std::move(entry));
  publish_locked(std::move(entries));

  ARTSPARSE_COUNT("artsparse_store_writes_total", 1);
  ARTSPARSE_COUNT("artsparse_store_write_bytes_total", encoded.size());
  ARTSPARSE_COUNT("artsparse_store_write_build_ns_total",
                  result.times.build * 1e9);
  ARTSPARSE_COUNT("artsparse_store_write_reorg_ns_total",
                  result.times.reorg * 1e9);
  ARTSPARSE_COUNT("artsparse_store_write_others_ns_total",
                  result.times.others * 1e9);
  ARTSPARSE_COUNT("artsparse_store_write_commit_ns_total",
                  result.times.write * 1e9);
  return result;
}

ReadResult FragmentStore::read(const CoordBuffer& queries) const {
  return snapshot().read(queries);
}

ReadResult FragmentStore::read_region(const Box& region) const {
  return snapshot().read_region(region);
}

ReadResult FragmentStore::scan_region(const Box& region) const {
  return snapshot().scan_region(region);
}

ReadResult FragmentStore::scan_region_where(const Box& region,
                                            const ValueRange& range) const {
  return snapshot().scan_region_where(region, range);
}

WriteResult FragmentStore::consolidate(std::optional<OrgKind> org) {
  const MutexLock lock(writer_mutex_);
  ensure_writable_locked();
  // Merge from a pinned snapshot of the current generation. Reads here are
  // always strict: merging must never silently drop data before the old
  // fragments are obsoleted.
  const std::shared_ptr<const Manifest> manifest = current_manifest();
  ARTSPARSE_SPAN_TYPE consolidate_span("store.consolidate", "store");
  consolidate_span.attr(
      "fragments", static_cast<std::uint64_t>(manifest->fragment_count()));
  ARTSPARSE_COUNT("artsparse_store_consolidations_total", 1);
  const Box whole = Box::whole(shape_);
  const std::vector<ManifestEntry>& sources = manifest->entries();
  std::vector<std::vector<std::pair<index_t, value_t>>> partials(
      sources.size());
  parallel_for_each(
      sources.size(),
      [&](std::size_t i) {
        const FragmentCache::Lookup lookup =
            cache_->get(sources[i].cache_key, sources[i].path(), model_);
        const OpenFragment& fragment = *lookup.fragment;
        CoordBuffer points(shape_.rank());
        std::vector<std::size_t> slots;
        fragment.format->scan_box(whole, points, slots);
        auto& cells = partials[i];
        cells.reserve(points.size());
        for (std::size_t k = 0; k < points.size(); ++k) {
          cells.emplace_back(linearize(points.point(k), shape_),
                             fragment.values[slots[k]]);
        }
      },
      0, kFragmentGrain);

  std::map<index_t, value_t> cells;
  for (const auto& partial : partials) {
    for (const auto& [address, value] : partial) {
      cells[address] = value;  // later fragments override: latest wins
    }
  }

  // Materialize the merged cells (ascending address order).
  std::vector<std::pair<index_t, value_t>> ordered(cells.begin(),
                                                   cells.end());
  const std::size_t rank = shape_.rank();
  std::vector<index_t> flat(ordered.size() * rank);
  std::vector<value_t> values(ordered.size());
  parallel_for_each(ordered.size(), [&](std::size_t i) {
    delinearize(ordered[i].first, shape_,
                std::span<index_t>(flat.data() + i * rank, rank));
    values[i] = ordered[i].second;
  });
  CoordBuffer coords(rank, std::move(flat));

  OrgKind chosen;
  if (org.has_value()) {
    chosen = *org;
  } else if (coords.empty()) {
    chosen = OrgKind::kLinear;  // nothing to profile; any compact default
  } else {
    chosen = recommend_organization(profile_sparsity(coords, shape_),
                                    WorkloadWeights::balanced())
                 .best()
                 .org;
  }

  return write_locked(coords, values, chosen, /*replace=*/true);
}

void FragmentStore::rescan() {
  const MutexLock lock(writer_mutex_);
  cache_->invalidate_all();
  last_scan_ = ScanReport{};
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (!entry.is_regular_file()) continue;
    const std::filesystem::path& path = entry.path();
    if (path.extension() == ".asf") {
      paths.push_back(path);
    } else if (path.extension() == kTmpSuffix) {
      // Orphaned stage file from a crashed commit: never renamed, so never
      // part of the committed fragment set. Sweep it.
      std::error_code ec;
      std::filesystem::remove(path, ec);
      ARTSPARSE_COUNT("artsparse_store_swept_tmp_total", 1);
      last_scan_.swept_tmp.push_back(path.string());
    } else {
      // Stray non-fragment file (quarantined fragments land here too).
      // Ignored, but logged so operators and fsck can see it.
      last_scan_.ignored.push_back(path.string());
    }
  }
  std::sort(paths.begin(), paths.end());

  // Reuse the live manifest's file handles for paths it already tracks, so
  // a pinned snapshot's deferred-deletion guarantee survives a rescan (two
  // independent handles to one path could otherwise unlink it early).
  const std::shared_ptr<const Manifest> current = current_manifest();
  std::map<std::string, const ManifestEntry*> known;
  for (const ManifestEntry& entry : current->entries()) {
    known[entry.path()] = &entry;
  }
  const std::uint64_t born = current->generation() + 1;

  std::vector<ManifestEntry> entries;
  for (const auto& path : paths) {
    // Gate every fragment through the check subsystem at header depth
    // (header parse + payload checksum); a torn or bit-rotted file is
    // quarantined instead of loaded, so one bad fragment can no longer
    // make the whole store unopenable.
    Bytes raw;
    check::Issues issues;
    try {
      raw = read_file(path.string());
    } catch (const Error& e) {
      issues.add("fragment.io", e.what());
    }
    if (issues.ok()) {
      check::check_fragment_bytes(raw, check::Depth::kHeader, issues);
    }
    if (!issues.ok()) {
      const std::filesystem::path aside = path.string() + kQuarantineSuffix;
      std::error_code ec;
      std::filesystem::rename(path, aside, ec);
      ARTSPARSE_COUNT("artsparse_store_quarantined_total", 1);
      last_scan_.quarantined.push_back(path.string());
      continue;
    }
    const FragmentInfo info = decode_fragment_info(raw);
    detail::require(info.shape == shape_,
                    "fragment shape does not match store shape: " +
                        path.string());
    ManifestEntry entry;
    const auto it = known.find(path.string());
    entry.file = it != known.end()
                     ? it->second->file
                     : std::make_shared<FragmentFile>(path);
    entry.cache_key = path.string() + "@g" + std::to_string(born);
    entry.bbox = info.bbox;
    entry.org = info.org;
    entry.file_bytes = raw.size();
    entry.value_min = info.value_min;
    entry.value_max = info.value_max;
    entries.push_back(std::move(entry));
    // Keep new fragment names past any existing id, even with gaps.
    std::size_t id = 0;
    if (std::sscanf(path.filename().string().c_str(), "frag_%zu.asf", &id) ==
        1) {
      next_id_ = std::max(next_id_, id + 1);
    }
  }
  publish_locked(std::move(entries));
}

ScanReport FragmentStore::last_scan() const {
  const MutexLock lock(writer_mutex_);
  return last_scan_;
}

void FragmentStore::set_retry_policy(const RetryPolicy& policy) {
  const MutexLock lock(writer_mutex_);
  retry_ = policy;
}

RetryPolicy FragmentStore::retry_policy() const {
  const MutexLock lock(writer_mutex_);
  return retry_;
}

void FragmentStore::set_health_policy(const HealthPolicy& policy) {
  const MutexLock lock(writer_mutex_);
  health_policy_ = policy;
}

HealthPolicy FragmentStore::health_policy() const {
  const MutexLock lock(writer_mutex_);
  return health_policy_;
}

StoreHealth FragmentStore::probe_health() {
  const MutexLock lock(writer_mutex_);
  if (health_.load(std::memory_order_relaxed) != StoreHealth::kHealthy) {
    run_probe_locked();
  }
  return health_.load(std::memory_order_relaxed);
}

void FragmentStore::set_health(StoreHealth health) {
  health_.store(health, std::memory_order_relaxed);
  set_health_gauge(directory_.string(), health);
}

void FragmentStore::note_commit_success_locked() {
  commit_failure_streak_ = 0;
  degraded_errno_ = 0;
  if (health_.load(std::memory_order_relaxed) != StoreHealth::kHealthy) {
    set_health(StoreHealth::kHealthy);
    ARTSPARSE_COUNT("artsparse_store_recovered_total", 1);
  }
}

void FragmentStore::note_commit_failure_locked(int error_number) {
  // Transient errnos exhaust the commit's own retry budget without saying
  // anything about device health; only capacity/EIO persistence does.
  if (!degradation_eligible(error_number)) return;
  degraded_errno_ = error_number;
  ++commit_failure_streak_;
  if (commit_failure_streak_ >= health_policy_.degrade_after &&
      health_.load(std::memory_order_relaxed) == StoreHealth::kHealthy) {
    set_health(StoreHealth::kDegraded);
    next_probe_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          health_policy_.probe_interval_sec));
    ARTSPARSE_COUNT("artsparse_store_degraded_total", 1);
  }
}

void FragmentStore::ensure_writable_locked() {
  if (health_.load(std::memory_order_relaxed) == StoreHealth::kHealthy) {
    return;
  }
  if (std::chrono::steady_clock::now() >= next_probe_ &&
      run_probe_locked()) {
    return;
  }
  ARTSPARSE_COUNT("artsparse_store_degraded_writes_rejected_total", 1);
  throw StoreDegradedError(
      "store '" + directory_.string() + "' is degraded read-only (" +
          std::generic_category().message(degraded_errno_) +
          "); writes fail fast until a recovery probe succeeds",
      directory_.string(), degraded_errno_);
}

bool FragmentStore::run_probe_locked() {
  set_health(StoreHealth::kRecovering);
  ARTSPARSE_COUNT("artsparse_store_health_probes_total", 1);
  // Staged tmp-file write through the real device stack (throttle + fault
  // hooks included), then removed. The .tmp suffix means an interrupted
  // probe's leftover is swept by the next rescan like any orphaned stage
  // file.
  const std::filesystem::path probe = directory_ / "health_probe.tmp";
  const auto cleanup = [&probe] {
    std::error_code ec;
    std::filesystem::remove(probe, ec);  // best effort
  };
  try {
    const std::array<std::byte, 8> payload{};
    auto file = open_for_write(probe.string(), model_);
    file->write_all(std::span<const std::byte>(payload));
    file->sync();
    file.reset();
    cleanup();
  } catch (const CrashFault&) {
    // A crash directive is a test harness signal, not a device outcome:
    // propagate it unswallowed, as every commit path does.
    cleanup();
    set_health(StoreHealth::kDegraded);
    throw;
  } catch (const Error&) {
    cleanup();
    set_health(StoreHealth::kDegraded);
    next_probe_ =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(health_policy_.probe_interval_sec));
    return false;
  }
  commit_failure_streak_ = 0;
  degraded_errno_ = 0;
  set_health(StoreHealth::kHealthy);
  ARTSPARSE_COUNT("artsparse_store_recovered_total", 1);
  return true;
}

void FragmentStore::clear() {
  const MutexLock lock(writer_mutex_);
  const std::shared_ptr<const Manifest> current = current_manifest();
  for (const ManifestEntry& entry : current->entries()) {
    entry.file->doom();
    cache_->invalidate(entry.cache_key);
  }
  publish_locked({});
  // `current` (usually the last reference) releases on return, unlinking
  // the doomed files unless a pinned snapshot still holds them. Fragment
  // ids deliberately keep counting: see the header contract.
}

std::size_t FragmentStore::fragment_count() const {
  return current_manifest()->fragment_count();
}

std::size_t FragmentStore::total_file_bytes() const {
  return current_manifest()->total_file_bytes();
}

}  // namespace artsparse
