// FragmentStore: the experiment system of Algorithm 3. A directory-backed
// store over one logical sparse tensor; WRITE packages a coordinate/value
// batch with a chosen organization into a new fragment file, READ discovers
// every fragment overlapping a query, resolves points with the
// organization-specific search, and merges results in linear-address order.
//
// The store doubles as the paper's benchmark instrument: both operations
// return the phase-by-phase time breakdowns reported in Table III and the
// discussion of Fig. 5.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/box.hpp"
#include "core/coords.hpp"
#include "core/shape.hpp"
#include "core/thread_safety.hpp"
#include "core/timer.hpp"
#include "core/types.hpp"
#include "storage/compress/codec.hpp"
#include "storage/fragment_cache.hpp"
#include "storage/manifest.hpp"
#include "storage/retry.hpp"
#include "storage/rtree.hpp"
#include "storage/throttle.hpp"

namespace artsparse {

/// Outcome of one WRITE (Algorithm 3 lines 1-8).
struct WriteResult {
  std::string path;            ///< fragment file written
  std::size_t file_bytes = 0;  ///< total fragment size on disk
  std::size_t index_bytes = 0; ///< organization index size (Fig. 4 metric)
  std::size_t point_count = 0;
  WriteBreakdown times;
};

/// What the read fan-out does when one fragment fails to load or decode.
enum class ReadFaultPolicy {
  kStrict,  ///< propagate the error (default; today's behavior)
  kSkip,    ///< drop the fragment, report it in ReadResult::skipped
};

/// One fragment a kSkip read dropped, with the error that disqualified it.
struct SkippedFragment {
  std::string path;
  std::string error;
};

/// Outcome of one READ (Algorithm 3 lines 1-15): the found points, sorted
/// by ascending linear address within the store's tensor shape.
struct ReadResult {
  CoordBuffer coords;
  std::vector<value_t> values;
  std::size_t fragments_visited = 0;
  /// Fragments dropped under ReadFaultPolicy::kSkip (always empty under
  /// kStrict — those reads throw instead).
  std::vector<SkippedFragment> skipped;
  ReadBreakdown times;
};

/// What open()/rescan() found and fixed while sweeping the directory.
struct ScanReport {
  std::vector<std::string> swept_tmp;   ///< orphaned .tmp files removed
  std::vector<std::string> quarantined; ///< corrupt .asf renamed aside
  std::vector<std::string> ignored;     ///< stray non-fragment files

  bool clean() const {
    return swept_tmp.empty() && quarantined.empty() && ignored.empty();
  }
};

/// Store health state machine (DESIGN.md §14). Values are severity-ordered
/// and mirrored to the artsparse_store_health gauge, so dashboards alert on
/// `> 0`. Transitions: kHealthy → kDegraded when commit failures with a
/// degradation-eligible errno (ENOSPC/EDQUOT/EIO) persist; kDegraded →
/// kRecovering while a probe write runs; then back to kHealthy (probe
/// succeeded) or kDegraded (still failing).
enum class StoreHealth : int {
  kHealthy = 0,     ///< writes and reads both served
  kRecovering = 1,  ///< degraded, recovery probe in flight
  kDegraded = 2,    ///< read-only: commit path failing persistently
};
const char* to_string(StoreHealth health);

/// Knobs of the degradation/recovery machinery.
struct HealthPolicy {
  /// Consecutive commit failures with a degradation-eligible errno
  /// (ENOSPC/EDQUOT/EIO, after the commit's own retries) before the store
  /// turns degraded-read-only.
  std::size_t degrade_after = 2;
  /// Minimum spacing between recovery probes while degraded, so a stream
  /// of rejected writes does not hammer a full device with probe traffic.
  double probe_interval_sec = 0.05;
};

/// Inclusive value interval for predicate reads. Defaults accept anything.
struct ValueRange {
  value_t min = std::numeric_limits<value_t>::lowest();
  value_t max = std::numeric_limits<value_t>::max();

  bool matches(value_t v) const { return v >= min && v <= max; }
  bool overlaps(value_t lo, value_t hi) const {
    return hi >= min && lo <= max;
  }

  static ValueRange at_least(value_t v) {
    return ValueRange{v, std::numeric_limits<value_t>::max()};
  }
  static ValueRange at_most(value_t v) {
    return ValueRange{std::numeric_limits<value_t>::lowest(), v};
  }
};

/// A pinned, immutable view of the store at one manifest generation.
///
/// Holding a Snapshot guarantees two things for as long as it lives: every
/// read through it resolves exactly the fragment set that was committed
/// when it was taken (writes, consolidation, clears, and rescans published
/// afterwards are invisible), and the underlying fragment files stay on
/// disk even if a later generation obsoleted them (deferred deletion via
/// the manifest's FragmentFile handles). Snapshots are cheap — two
/// shared_ptr copies — and safe to use from any number of threads.
class Snapshot {
 public:
  std::uint64_t generation() const { return manifest_->generation(); }
  std::size_t fragment_count() const { return manifest_->fragment_count(); }
  std::size_t total_file_bytes() const {
    return manifest_->total_file_bytes();
  }
  const Shape& tensor_shape() const { return shape_; }
  const Manifest& manifest() const { return *manifest_; }
  FragmentCache& cache() const { return *cache_; }

  /// Algorithm 3 READ for an arbitrary coordinate list.
  ReadResult read(const CoordBuffer& queries) const;

  /// READ over every cell of a contiguous region (one existence query per
  /// region cell, faithful to Algorithm 3).
  ReadResult read_region(const Box& region) const;

  /// Region read via the formats' native box scans: touches only stored
  /// entries, so cost tracks hits rather than region volume.
  ReadResult scan_region(const Box& region) const;

  /// scan_region restricted to values inside `range`. Fragments whose
  /// recorded [min, max] statistics cannot intersect the range are skipped
  /// without being opened (predicate pushdown, as TileDB/HDF5 filters do).
  ReadResult scan_region_where(const Box& region,
                               const ValueRange& range) const;

  /// Executes many box scans against this snapshot as one batch: each
  /// fragment touched by any of the regions is resolved through the cache
  /// and decoded at most once, then searched for every region that
  /// overlaps it. Results are byte-identical to calling scan_region per
  /// region, in the same order. The decoded fragments are pinned in the
  /// cache's pinned-bytes accounting for the duration of the batch. This
  /// is the storage half of the service layer's batched read API.
  std::vector<ReadResult> scan_batch(std::span<const Box> regions) const;

 private:
  friend class FragmentStore;
  Snapshot(std::shared_ptr<const Manifest> manifest,
           std::shared_ptr<FragmentCache> cache, Shape shape,
           DeviceModel model, ReadFaultPolicy fault_policy)
      : manifest_(std::move(manifest)),
        cache_(std::move(cache)),
        shape_(std::move(shape)),
        model_(model),
        fault_policy_(fault_policy) {}

  /// Per-hit partial result of the fan-out read paths, merged in hit
  /// order.
  struct Partial;

  std::shared_ptr<const Manifest> manifest_;
  std::shared_ptr<FragmentCache> cache_;
  Shape shape_;
  DeviceModel model_;
  ReadFaultPolicy fault_policy_;
};

/// Directory-backed fragment store for one sparse tensor.
///
/// Concurrency contract: every entry point is safe to call from any
/// thread at any time, with no external synchronization. Reads
/// (read/read_region/scan_region/scan_region_where, and pinned Snapshots)
/// see an immutable manifest generation; mutating operations (write,
/// consolidate, clear, rescan) serialize among themselves on an internal
/// writer mutex and publish a new generation through the crash-consistent
/// commit path, so a consolidation or repair rescan can run under live
/// read traffic. A reader that started before a mutation completes against
/// the generation it pinned; obsoleted fragment files are unlinked only
/// after the last reader referencing them finishes (deferred deletion).
class FragmentStore {
 public:
  /// Creates/opens `directory` for a tensor of `shape`. Fragment traffic is
  /// throttled per `model`; index sections are compressed with `codec`.
  /// Reads resolve fragments through `cache` (shared so several stores can
  /// pool one budget); when null the store creates its own cache with the
  /// ARTSPARSE_CACHE_BYTES / default budget.
  FragmentStore(std::filesystem::path directory, Shape shape,
                DeviceModel model = DeviceModel::unthrottled(),
                CodecKind codec = CodecKind::kIdentity,
                std::shared_ptr<FragmentCache> cache = nullptr);

  /// Pins the current manifest generation for consistent multi-read work
  /// (and for the service layer's batched reads). See Snapshot.
  Snapshot snapshot() const;

  /// The current manifest generation: 1 after open, bumped by every
  /// publish (write, consolidate, clear, rescan). Mirrored to the
  /// artsparse_store_generation gauge, labeled by store directory.
  std::uint64_t generation() const;

  /// Algorithm 3 WRITE: builds `org`'s index over `coords`, reorganizes
  /// `values` by the build map, concatenates, and commits one fragment
  /// crash-consistently (stage at <name>.asf.tmp, fsync, rename, fsync the
  /// directory), retrying transient I/O errors per retry_policy(). The new
  /// fragment becomes visible to readers atomically, as a new generation.
  WriteResult write(const CoordBuffer& coords,
                    std::span<const value_t> values, OrgKind org);

  /// Algorithm 3 READ for an arbitrary coordinate list.
  ReadResult read(const CoordBuffer& queries) const;

  /// READ over every cell of a contiguous region (the paper's read test:
  /// origin (m/2, ...), size (m/10, ...)). Faithful to Algorithm 3: one
  /// existence query per region cell.
  ReadResult read_region(const Box& region) const;

  /// Region read via the formats' native box scans: touches only stored
  /// entries instead of querying every cell, so cost tracks the number of
  /// hits rather than the region volume. Same results (linear-address
  /// order) as read_region.
  ReadResult scan_region(const Box& region) const;

  /// scan_region restricted to values inside `range`. Fragments whose
  /// recorded [min, max] statistics cannot intersect the range are skipped
  /// without being opened (predicate pushdown, as TileDB/HDF5 filters do).
  ReadResult scan_region_where(const Box& region,
                               const ValueRange& range) const;

  /// Consolidates the whole store into a single fragment (TileDB-style
  /// compaction): reads every point from a pinned snapshot, deduplicates
  /// cells written more than once keeping the *latest* write, rewrites
  /// with `org` (or, when unset, whatever the advisor's balanced cost
  /// model recommends for the merged data), and publishes a new generation
  /// containing only the merged fragment. Concurrent readers keep
  /// answering from the generation they pinned; the replaced fragment
  /// files are unlinked when the last such reader finishes. Returns the
  /// write result of the new fragment.
  WriteResult consolidate(std::optional<OrgKind> org = std::nullopt);

  /// Re-scans the directory, picking up fragments written by other store
  /// instances. Recovery sweep: orphaned *.tmp files (crashed commits) are
  /// removed, and fragments failing the check subsystem's header-depth
  /// validation (torn writes, bit rot) are renamed to *.asf.quarantine and
  /// not loaded. Stray non-fragment files are ignored. Everything swept is
  /// reported in last_scan(). Publishes a new generation; in-flight reads
  /// finish against the one they pinned.
  void rescan();

  /// What the most recent open()/rescan() swept, quarantined, or ignored.
  /// Returns a copy: safe to call while another thread rescans.
  ScanReport last_scan() const;

  /// Retry schedule for transient I/O errors on the commit path.
  void set_retry_policy(const RetryPolicy& policy);
  RetryPolicy retry_policy() const;

  /// Current health (lock-free read; see StoreHealth). Degraded stores
  /// fail write()/consolidate() fast with StoreDegradedError while reads
  /// keep serving; a probe write re-admits writes automatically once the
  /// device recovers.
  StoreHealth health() const {
    return health_.load(std::memory_order_relaxed);
  }

  /// Degradation/recovery knobs (degrade_after, probe interval).
  void set_health_policy(const HealthPolicy& policy);
  HealthPolicy health_policy() const;

  /// While degraded: runs a recovery probe now, ignoring the probe
  /// interval, and returns the resulting health. Healthy stores return
  /// kHealthy without probing. Also how external supervisors force a
  /// recovery check without risking a real write.
  StoreHealth probe_health();

  /// How reads treat a fragment that fails to load: kStrict (default)
  /// throws; kSkip drops it and reports it in ReadResult::skipped, so one
  /// corrupt fragment cannot take down a whole multi-fragment query.
  /// consolidate() is always strict — merging must never silently drop
  /// data before deleting the source fragments.
  void set_read_fault_policy(ReadFaultPolicy policy) {
    read_fault_policy_.store(policy, std::memory_order_relaxed);
  }
  ReadFaultPolicy read_fault_policy() const {
    return read_fault_policy_.load(std::memory_order_relaxed);
  }

  /// Publishes an empty generation. Fragment files are unlinked once no
  /// snapshot references them (immediately, when none is held). Fragment
  /// ids are NOT recycled: a cleared store keeps numbering where it left
  /// off, so no path can ever name two different fragments.
  void clear();

  std::size_t fragment_count() const;
  const Shape& tensor_shape() const { return shape_; }
  const std::filesystem::path& directory() const { return directory_; }

  /// The open-fragment cache this store resolves reads through.
  FragmentCache& cache() const { return *cache_; }

  /// Total bytes across all fragment files (Fig. 4's file-size metric).
  std::size_t total_file_bytes() const;

 private:
  std::filesystem::path next_fragment_path()
      ARTSPARSE_REQUIRES(writer_mutex_);

  /// The current generation's manifest. Readers copy the shared_ptr under
  /// a brief mutex; writers publish a successor with publish_locked().
  std::shared_ptr<const Manifest> current_manifest() const
      ARTSPARSE_EXCLUDES(manifest_mutex_);

  /// Swaps in `entries` as generation current+1 and updates the
  /// generation gauge.
  void publish_locked(std::vector<ManifestEntry> entries)
      ARTSPARSE_REQUIRES(writer_mutex_) ARTSPARSE_EXCLUDES(manifest_mutex_);

  /// WRITE body. When `replace` is set the new manifest contains only the
  /// new fragment and every previous entry's file is doomed
  /// (consolidate's publish).
  WriteResult write_locked(const CoordBuffer& coords,
                           std::span<const value_t> values, OrgKind org,
                           bool replace) ARTSPARSE_REQUIRES(writer_mutex_);

  /// Gate at the top of every mutating commit: no-op when healthy; while
  /// degraded, probes once the probe interval elapsed, then either admits
  /// the write (recovered) or throws StoreDegradedError fast.
  void ensure_writable_locked() ARTSPARSE_REQUIRES(writer_mutex_);

  /// Stages and removes a small tmp file through the real device stack
  /// (so the fault injector and throttle apply). Success flips the store
  /// back to kHealthy; failure re-arms the probe timer. Returns success.
  bool run_probe_locked() ARTSPARSE_REQUIRES(writer_mutex_);

  /// Commit-outcome bookkeeping driving the health state machine.
  void note_commit_success_locked() ARTSPARSE_REQUIRES(writer_mutex_);
  void note_commit_failure_locked(int error_number)
      ARTSPARSE_REQUIRES(writer_mutex_);

  /// Stores the new state and mirrors it to the health gauge.
  void set_health(StoreHealth health);

  std::filesystem::path directory_;
  Shape shape_;
  DeviceModel model_;
  CodecKind codec_;
  std::shared_ptr<FragmentCache> cache_;
  std::atomic<ReadFaultPolicy> read_fault_policy_{ReadFaultPolicy::kStrict};

  /// Serializes mutating operations (write/consolidate/clear/rescan)
  /// against each other. Readers never take it. Lock order: writer_mutex_
  /// before manifest_mutex_ (publish_locked); never the reverse.
  mutable Mutex writer_mutex_;
  RetryPolicy retry_ ARTSPARSE_GUARDED_BY(writer_mutex_);
  ScanReport last_scan_ ARTSPARSE_GUARDED_BY(writer_mutex_);
  /// Never reset, so no path can ever name two different fragments.
  std::size_t next_id_ ARTSPARSE_GUARDED_BY(writer_mutex_) = 0;

  /// Health state machine. The state itself is atomic so readers and the
  /// gauge observe it lock-free; the bookkeeping that drives transitions
  /// lives on the commit path and is guarded by the writer mutex.
  std::atomic<StoreHealth> health_{StoreHealth::kHealthy};
  HealthPolicy health_policy_ ARTSPARSE_GUARDED_BY(writer_mutex_);
  std::size_t commit_failure_streak_ ARTSPARSE_GUARDED_BY(writer_mutex_) = 0;
  int degraded_errno_ ARTSPARSE_GUARDED_BY(writer_mutex_) = 0;
  std::chrono::steady_clock::time_point next_probe_
      ARTSPARSE_GUARDED_BY(writer_mutex_){};

  /// Guards the manifest pointer swap only (reads are a shared_ptr copy).
  mutable Mutex manifest_mutex_;
  std::shared_ptr<const Manifest> manifest_
      ARTSPARSE_GUARDED_BY(manifest_mutex_);
};

}  // namespace artsparse
