// FragmentStore: the experiment system of Algorithm 3. A directory-backed
// store over one logical sparse tensor; WRITE packages a coordinate/value
// batch with a chosen organization into a new fragment file, READ discovers
// every fragment overlapping a query, resolves points with the
// organization-specific search, and merges results in linear-address order.
//
// The store doubles as the paper's benchmark instrument: both operations
// return the phase-by-phase time breakdowns reported in Table III and the
// discussion of Fig. 5.
#pragma once

#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/box.hpp"
#include "core/coords.hpp"
#include "core/shape.hpp"
#include "core/timer.hpp"
#include "core/types.hpp"
#include "storage/compress/codec.hpp"
#include "storage/fragment_cache.hpp"
#include "storage/retry.hpp"
#include "storage/rtree.hpp"
#include "storage/throttle.hpp"

namespace artsparse {

/// Outcome of one WRITE (Algorithm 3 lines 1-8).
struct WriteResult {
  std::string path;            ///< fragment file written
  std::size_t file_bytes = 0;  ///< total fragment size on disk
  std::size_t index_bytes = 0; ///< organization index size (Fig. 4 metric)
  std::size_t point_count = 0;
  WriteBreakdown times;
};

/// What the read fan-out does when one fragment fails to load or decode.
enum class ReadFaultPolicy {
  kStrict,  ///< propagate the error (default; today's behavior)
  kSkip,    ///< drop the fragment, report it in ReadResult::skipped
};

/// One fragment a kSkip read dropped, with the error that disqualified it.
struct SkippedFragment {
  std::string path;
  std::string error;
};

/// Outcome of one READ (Algorithm 3 lines 1-15): the found points, sorted
/// by ascending linear address within the store's tensor shape.
struct ReadResult {
  CoordBuffer coords;
  std::vector<value_t> values;
  std::size_t fragments_visited = 0;
  /// Fragments dropped under ReadFaultPolicy::kSkip (always empty under
  /// kStrict — those reads throw instead).
  std::vector<SkippedFragment> skipped;
  ReadBreakdown times;
};

/// What open()/rescan() found and fixed while sweeping the directory.
struct ScanReport {
  std::vector<std::string> swept_tmp;   ///< orphaned .tmp files removed
  std::vector<std::string> quarantined; ///< corrupt .asf renamed aside
  std::vector<std::string> ignored;     ///< stray non-fragment files

  bool clean() const {
    return swept_tmp.empty() && quarantined.empty() && ignored.empty();
  }
};

/// Inclusive value interval for predicate reads. Defaults accept anything.
struct ValueRange {
  value_t min = std::numeric_limits<value_t>::lowest();
  value_t max = std::numeric_limits<value_t>::max();

  bool matches(value_t v) const { return v >= min && v <= max; }
  bool overlaps(value_t lo, value_t hi) const {
    return hi >= min && lo <= max;
  }

  static ValueRange at_least(value_t v) {
    return ValueRange{v, std::numeric_limits<value_t>::max()};
  }
  static ValueRange at_most(value_t v) {
    return ValueRange{std::numeric_limits<value_t>::lowest(), v};
  }
};

/// Directory-backed fragment store for one sparse tensor.
///
/// Concurrency contract: any number of threads may run the read-side entry
/// points (read/read_region/scan_region/scan_region_where) concurrently —
/// fragment resolution goes through the thread-safe FragmentCache and the
/// lazy R-tree rebuild is mutex-guarded. Mutating operations (write, clear,
/// consolidate, rescan) require external synchronization against readers,
/// as before.
class FragmentStore {
 public:
  /// Creates/opens `directory` for a tensor of `shape`. Fragment traffic is
  /// throttled per `model`; index sections are compressed with `codec`.
  /// Reads resolve fragments through `cache` (shared so several stores can
  /// pool one budget); when null the store creates its own cache with the
  /// ARTSPARSE_CACHE_BYTES / default budget.
  FragmentStore(std::filesystem::path directory, Shape shape,
                DeviceModel model = DeviceModel::unthrottled(),
                CodecKind codec = CodecKind::kIdentity,
                std::shared_ptr<FragmentCache> cache = nullptr);

  /// Algorithm 3 WRITE: builds `org`'s index over `coords`, reorganizes
  /// `values` by the build map, concatenates, and commits one fragment
  /// crash-consistently (stage at <name>.asf.tmp, fsync, rename, fsync the
  /// directory), retrying transient I/O errors per retry_policy().
  WriteResult write(const CoordBuffer& coords,
                    std::span<const value_t> values, OrgKind org);

  /// Algorithm 3 READ for an arbitrary coordinate list.
  ReadResult read(const CoordBuffer& queries) const;

  /// READ over every cell of a contiguous region (the paper's read test:
  /// origin (m/2, ...), size (m/10, ...)). Faithful to Algorithm 3: one
  /// existence query per region cell.
  ReadResult read_region(const Box& region) const;

  /// Region read via the formats' native box scans: touches only stored
  /// entries instead of querying every cell, so cost tracks the number of
  /// hits rather than the region volume. Same results (linear-address
  /// order) as read_region.
  ReadResult scan_region(const Box& region) const;

  /// scan_region restricted to values inside `range`. Fragments whose
  /// recorded [min, max] statistics cannot intersect the range are skipped
  /// without being opened (predicate pushdown, as TileDB/HDF5 filters do).
  ReadResult scan_region_where(const Box& region,
                               const ValueRange& range) const;

  /// Consolidates the whole store into a single fragment (TileDB-style
  /// compaction): reads every point, deduplicates cells written more than
  /// once keeping the *latest* write, deletes the old fragments, and
  /// rewrites with `org` (or, when unset, whatever the advisor's balanced
  /// cost model recommends for the merged data). Returns the write result
  /// of the new fragment.
  WriteResult consolidate(std::optional<OrgKind> org = std::nullopt);

  /// Re-scans the directory, picking up fragments written by other store
  /// instances. Recovery sweep: orphaned *.tmp files (crashed commits) are
  /// removed, and fragments failing the check subsystem's header-depth
  /// validation (torn writes, bit rot) are renamed to *.asf.quarantine and
  /// not loaded. Stray non-fragment files are ignored. Everything swept is
  /// reported in last_scan().
  void rescan();

  /// What the most recent open()/rescan() swept, quarantined, or ignored.
  const ScanReport& last_scan() const { return last_scan_; }

  /// Retry schedule for transient I/O errors on the commit path.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// How reads treat a fragment that fails to load: kStrict (default)
  /// throws; kSkip drops it and reports it in ReadResult::skipped, so one
  /// corrupt fragment cannot take down a whole multi-fragment query.
  /// consolidate() is always strict — merging must never silently drop
  /// data before deleting the source fragments.
  void set_read_fault_policy(ReadFaultPolicy policy) {
    read_fault_policy_ = policy;
  }
  ReadFaultPolicy read_fault_policy() const { return read_fault_policy_; }

  /// Deletes every fragment file and forgets them.
  void clear();

  std::size_t fragment_count() const { return fragments_.size(); }
  const Shape& tensor_shape() const { return shape_; }
  const std::filesystem::path& directory() const { return directory_; }

  /// The open-fragment cache this store resolves reads through.
  FragmentCache& cache() const { return *cache_; }

  /// Total bytes across all fragment files (Fig. 4's file-size metric).
  std::size_t total_file_bytes() const;

 private:
  struct Entry {
    std::filesystem::path path;
    Box bbox;
    OrgKind org;
    std::size_t file_bytes = 0;
    value_t value_min = 0;  ///< statistics block, for predicate pushdown
    value_t value_max = 0;
  };

  std::filesystem::path next_fragment_path();

  /// Fragments whose bounding box overlaps `box` (Algorithm 3 line 4).
  /// Linear scan for small stores; an STR R-tree over the fragment boxes
  /// (rebuilt lazily after appends) once the store passes
  /// kRtreeThreshold fragments. Safe under concurrent reads: the lazy
  /// rebuild is guarded by rtree_mutex_.
  std::vector<const Entry*> discover(const Box& box) const;

  /// Per-hit partial result of the fan-out read paths, merged in hit order.
  struct Partial;

  static constexpr std::size_t kRtreeThreshold = 32;

  std::filesystem::path directory_;
  Shape shape_;
  DeviceModel model_;
  CodecKind codec_;
  std::shared_ptr<FragmentCache> cache_;
  RetryPolicy retry_;
  ReadFaultPolicy read_fault_policy_ = ReadFaultPolicy::kStrict;
  ScanReport last_scan_;
  std::vector<Entry> fragments_;
  std::size_t next_id_ = 0;
  /// Lazily (re)built spatial index; mutable because discovery is
  /// logically const. rtree_mutex_ serializes the rebuild so concurrent
  /// first reads are safe.
  mutable std::mutex rtree_mutex_;
  mutable RTree rtree_;
  mutable bool rtree_dirty_ = true;
};

}  // namespace artsparse
