#include "storage/compress/codec.hpp"

#include "core/error.hpp"
#include "storage/compress/codec_impl.hpp"

namespace artsparse {

std::string to_string(CodecKind kind) {
  switch (kind) {
    case CodecKind::kIdentity:
      return "identity";
    case CodecKind::kDelta:
      return "delta";
    case CodecKind::kVarint:
      return "varint";
    case CodecKind::kRle:
      return "rle";
    case CodecKind::kDeltaVarint:
      return "delta+varint";
  }
  throw FormatError("unknown CodecKind value");
}

std::unique_ptr<Codec> make_codec(CodecKind kind) {
  switch (kind) {
    case CodecKind::kIdentity:
      return std::make_unique<IdentityCodec>();
    case CodecKind::kDelta:
      return std::make_unique<DeltaCodec>();
    case CodecKind::kVarint:
      return std::make_unique<VarintCodec>();
    case CodecKind::kRle:
      return std::make_unique<RleCodec>();
    case CodecKind::kDeltaVarint:
      return std::make_unique<PipelineCodec>(CodecKind::kDeltaVarint,
                                             std::make_unique<DeltaCodec>(),
                                             std::make_unique<VarintCodec>());
  }
  throw FormatError("unknown CodecKind value");
}

Bytes PipelineCodec::encode(std::span<const std::byte> raw) const {
  const Bytes intermediate = first_->encode(raw);
  return second_->encode(intermediate);
}

Bytes PipelineCodec::decode(std::span<const std::byte> coded) const {
  const Bytes intermediate = second_->decode(coded);
  return first_->decode(intermediate);
}

}  // namespace artsparse
