#include <cstring>

#include "core/error.hpp"
#include "storage/compress/codec_impl.hpp"

namespace artsparse {

// Layout: [zigzag-delta u64 words][raw tail bytes][tail_len u8]. The tail
// (0-7 bytes) carries whatever does not fill a whole word, so the codec
// accepts arbitrary byte buffers (fragment indexes are not word-aligned).
// The marker sits at the *end* so the delta words stay 8-byte aligned at
// offset 0 — that keeps a downstream varint stage seeing whole small words
// (the delta+varint pipeline relies on this).

namespace {

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

std::uint64_t load_word(const std::byte* data, std::size_t i) {
  std::uint64_t w;
  std::memcpy(&w, data + i * sizeof(w), sizeof(w));
  return w;
}

void store_word(Bytes& out, std::uint64_t w) {
  const auto* p = reinterpret_cast<const std::byte*>(&w);
  out.insert(out.end(), p, p + sizeof(w));
}

}  // namespace

Bytes DeltaCodec::encode(std::span<const std::byte> raw) const {
  const std::size_t words = raw.size() / sizeof(std::uint64_t);
  const std::size_t tail = raw.size() % sizeof(std::uint64_t);
  Bytes out;
  out.reserve(raw.size() + 1);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < words; ++i) {
    const std::uint64_t cur = load_word(raw.data(), i);
    // Differences are taken modulo 2^64; zigzag keeps small +/- deltas small.
    store_word(out, zigzag(static_cast<std::int64_t>(cur - prev)));
    prev = cur;
  }
  out.insert(out.end(), raw.end() - tail, raw.end());
  out.push_back(static_cast<std::byte>(tail));
  return out;
}

Bytes DeltaCodec::decode(std::span<const std::byte> coded) const {
  detail::require(!coded.empty(), "delta payload truncated");
  const auto tail = static_cast<std::size_t>(coded.back());
  detail::require(tail < sizeof(std::uint64_t), "delta tail length invalid");
  detail::require(coded.size() >= 1 + tail, "delta payload truncated");
  const std::size_t body = coded.size() - 1 - tail;
  detail::require(body % sizeof(std::uint64_t) == 0,
                  "delta payload body must be whole u64 words");
  const std::size_t words = body / sizeof(std::uint64_t);

  Bytes out;
  out.reserve(body + tail);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < words; ++i) {
    prev += static_cast<std::uint64_t>(unzigzag(load_word(coded.data(), i)));
    store_word(out, prev);
  }
  out.insert(out.end(), coded.end() - 1 - tail, coded.end() - 1);
  return out;
}

}  // namespace artsparse
