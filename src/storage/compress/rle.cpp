#include <cstring>

#include "core/error.hpp"
#include "storage/compress/codec_impl.hpp"

namespace artsparse {

// Byte-level RLE: an 8-byte raw-length header, then (run_length u8,
// value u8) pairs with runs capped at 255.

Bytes RleCodec::encode(std::span<const std::byte> raw) const {
  Bytes out;
  out.reserve(raw.size() / 2 + 16);
  std::uint64_t total = raw.size();
  const auto* lp = reinterpret_cast<const std::byte*>(&total);
  out.insert(out.end(), lp, lp + sizeof(total));

  std::size_t i = 0;
  while (i < raw.size()) {
    const std::byte value = raw[i];
    std::size_t run = 1;
    while (i + run < raw.size() && raw[i + run] == value && run < 255) {
      ++run;
    }
    out.push_back(static_cast<std::byte>(run));
    out.push_back(value);
    i += run;
  }
  return out;
}

Bytes RleCodec::decode(std::span<const std::byte> coded) const {
  detail::require(coded.size() >= sizeof(std::uint64_t),
                  "rle payload truncated");
  std::uint64_t total = 0;
  std::memcpy(&total, coded.data(), sizeof(total));
  // Multiply in 64 bits: on a 32-bit size_t the product could wrap and let
  // an absurd `total` through.
  detail::require(total <= static_cast<std::uint64_t>(coded.size()) * 255,
                  "rle raw length implausibly large");

  Bytes out;
  out.reserve(total);
  std::size_t i = sizeof(std::uint64_t);
  while (i < coded.size()) {
    detail::require(i + 1 < coded.size(), "rle pair truncated");
    const auto run = static_cast<std::size_t>(coded[i]);
    const std::byte value = coded[i + 1];
    detail::require(run > 0, "rle zero-length run");
    out.insert(out.end(), run, value);
    i += 2;
  }
  detail::require(out.size() == total, "rle decoded length mismatch");
  return out;
}

}  // namespace artsparse
