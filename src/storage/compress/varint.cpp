#include <cstring>

#include "core/error.hpp"
#include "storage/compress/codec_impl.hpp"

namespace artsparse {

// Layout: [tail_len u8][word count varint][LEB128 words][raw tail bytes].
// Like DeltaCodec, arbitrary byte lengths are accepted: 0-7 trailing bytes
// ride along uncompressed.

namespace {

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

std::uint64_t get_varint(std::span<const std::byte> data,
                         std::size_t& offset, std::size_t limit) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    detail::require(offset < limit, "varint payload truncated");
    detail::require(shift < 64, "varint too long");
    const auto b = static_cast<std::uint8_t>(data[offset++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

}  // namespace

Bytes VarintCodec::encode(std::span<const std::byte> raw) const {
  const std::size_t words = raw.size() / sizeof(std::uint64_t);
  const std::size_t tail = raw.size() % sizeof(std::uint64_t);
  Bytes out;
  out.reserve(raw.size() / 4 + 16);
  out.push_back(static_cast<std::byte>(tail));
  put_varint(out, words);
  for (std::size_t i = 0; i < words; ++i) {
    std::uint64_t w;
    std::memcpy(&w, raw.data() + i * sizeof(w), sizeof(w));
    put_varint(out, w);
  }
  out.insert(out.end(), raw.end() - tail, raw.end());
  return out;
}

Bytes VarintCodec::decode(std::span<const std::byte> coded) const {
  detail::require(!coded.empty(), "varint payload truncated");
  const auto tail = static_cast<std::size_t>(coded[0]);
  detail::require(tail < sizeof(std::uint64_t),
                  "varint tail length invalid");
  detail::require(coded.size() >= 1 + tail, "varint payload truncated");
  const std::size_t limit = coded.size() - tail;

  std::size_t offset = 1;
  const std::uint64_t words = get_varint(coded, offset, limit);
  detail::require(words <= coded.size(),  // each word needs >= 1 input byte
                  "varint word count exceeds payload size");
  Bytes out;
  out.reserve(words * sizeof(std::uint64_t) + tail);
  for (std::uint64_t i = 0; i < words; ++i) {
    const std::uint64_t w = get_varint(coded, offset, limit);
    const auto* p = reinterpret_cast<const std::byte*>(&w);
    out.insert(out.end(), p, p + sizeof(w));
  }
  detail::require(offset == limit, "varint payload has trailing bytes");
  out.insert(out.end(), coded.end() - tail, coded.end());
  return out;
}

}  // namespace artsparse
