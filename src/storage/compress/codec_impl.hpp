// Concrete codec classes. Internal header — library users go through
// make_codec(); these types are exposed for unit tests.
#pragma once

#include <vector>

#include "storage/compress/codec.hpp"

namespace artsparse {

class IdentityCodec final : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kIdentity; }
  Bytes encode(std::span<const std::byte> raw) const override;
  Bytes decode(std::span<const std::byte> coded) const override;
};

/// Zigzag-delta over little-endian u64 words: word[0] verbatim, then
/// zigzag(word[i] - word[i-1]). Sorted address arrays become small values.
class DeltaCodec final : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kDelta; }
  Bytes encode(std::span<const std::byte> raw) const override;
  Bytes decode(std::span<const std::byte> coded) const override;
};

/// LEB128 varint over u64 words, with a word-count prefix.
class VarintCodec final : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kVarint; }
  Bytes encode(std::span<const std::byte> raw) const override;
  Bytes decode(std::span<const std::byte> coded) const override;
};

/// Byte-level run-length encoding: (count u8, value u8) pairs with a raw
/// length prefix. Wins on long zero runs (row_ptr of empty rows).
class RleCodec final : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kRle; }
  Bytes encode(std::span<const std::byte> raw) const override;
  Bytes decode(std::span<const std::byte> coded) const override;
};

/// Composition: encode applies first then second; decode reverses.
class PipelineCodec final : public Codec {
 public:
  PipelineCodec(CodecKind kind, std::unique_ptr<Codec> first,
                std::unique_ptr<Codec> second)
      : kind_(kind), first_(std::move(first)), second_(std::move(second)) {}

  CodecKind kind() const override { return kind_; }
  Bytes encode(std::span<const std::byte> raw) const override;
  Bytes decode(std::span<const std::byte> coded) const override;

 private:
  CodecKind kind_;
  std::unique_ptr<Codec> first_;
  std::unique_ptr<Codec> second_;
};

}  // namespace artsparse
