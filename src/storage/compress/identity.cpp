#include "storage/compress/codec_impl.hpp"

namespace artsparse {

Bytes IdentityCodec::encode(std::span<const std::byte> raw) const {
  return Bytes(raw.begin(), raw.end());
}

Bytes IdentityCodec::decode(std::span<const std::byte> coded) const {
  return Bytes(coded.begin(), coded.end());
}

}  // namespace artsparse
