// Optional compression codecs for fragment index buffers.
//
// Section II of the paper: general compression is orthogonal to the choice
// of sparse organization — systems like TileDB and HDF5 pick a basic sparse
// organization first, then apply compression on top. These codecs implement
// that second stage; fragments record which codec was applied so reads are
// self-describing. Identity is the default everywhere.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "core/types.hpp"

namespace artsparse {

enum class CodecKind : std::uint8_t {
  kIdentity = 0,
  kDelta = 1,        ///< zigzag delta over u64 words
  kVarint = 2,       ///< LEB128 over u64 words
  kRle = 3,          ///< byte-level run-length
  kDeltaVarint = 4,  ///< delta, then varint — the useful pipeline for
                     ///< sorted address/index arrays
};

std::string to_string(CodecKind kind);

/// Reversible byte-buffer transform. decode(encode(x)) == x for all x the
/// codec accepts (word codecs require length % 8 == 0).
class Codec {
 public:
  virtual ~Codec() = default;
  virtual CodecKind kind() const = 0;
  virtual Bytes encode(std::span<const std::byte> raw) const = 0;
  virtual Bytes decode(std::span<const std::byte> coded) const = 0;
};

std::unique_ptr<Codec> make_codec(CodecKind kind);

}  // namespace artsparse
