#include "storage/file_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/error.hpp"

namespace artsparse {

PosixFile::PosixFile(const std::string& path, Mode mode) : path_(path) {
  if (mode == Mode::kRead) {
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } else {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
  }
  if (fd_ < 0) {
    throw IoError::from_errno("open", path);
  }
}

PosixFile::~PosixFile() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void PosixFile::write_all(std::span<const std::byte> data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t rc =
        ::write(fd_, data.data() + written, data.size() - written);
    if (rc < 0) {
      throw IoError::from_errno("write", path_);
    }
    written += static_cast<std::size_t>(rc);
  }
}

Bytes PosixFile::read_at(std::size_t offset, std::size_t size) {
  Bytes out(size);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t rc = ::pread(fd_, out.data() + done, size - done,
                               static_cast<off_t>(offset + done));
    if (rc < 0) {
      throw IoError::from_errno("pread", path_);
    }
    if (rc == 0) {
      throw IoError("pread '" + path_ + "': unexpected end of file");
    }
    done += static_cast<std::size_t>(rc);
  }
  return out;
}

std::size_t PosixFile::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    throw IoError::from_errno("fstat", path_);
  }
  return static_cast<std::size_t>(st.st_size);
}

void PosixFile::sync() {
  if (::fsync(fd_) != 0) {
    throw IoError::from_errno("fsync", path_);
  }
}

Bytes read_file(const std::string& path) {
  PosixFile file(path, PosixFile::Mode::kRead);
  return file.read_at(0, file.size());
}

void write_file(const std::string& path, std::span<const std::byte> data) {
  PosixFile file(path, PosixFile::Mode::kWriteTruncate);
  file.write_all(data);
}

}  // namespace artsparse
