#include "storage/file_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "core/error.hpp"
#include "obs/trace.hpp"
#include "storage/fault.hpp"

namespace artsparse {

PosixFile::PosixFile(const std::string& path, Mode mode) : path_(path) {
  if (mode == Mode::kRead) {
    fault_point(FaultOp::kOpenRead, path);
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } else {
    fault_point(FaultOp::kOpenWrite, path);
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
  }
  if (fd_ < 0) {
    throw IoError::from_errno("open", path);
  }
}

PosixFile::~PosixFile() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void PosixFile::write_all(std::span<const std::byte> data) {
  std::size_t written = 0;
  while (written < data.size()) {
    fault_point(FaultOp::kWrite, path_);
    const ssize_t rc =
        ::write(fd_, data.data() + written, data.size() - written);
    if (rc < 0) {
      throw IoError::from_errno("write", path_);
    }
    written += static_cast<std::size_t>(rc);
  }
}

Bytes PosixFile::read_at(std::size_t offset, std::size_t size) {
  Bytes out(size);
  std::size_t done = 0;
  while (done < size) {
    fault_point(FaultOp::kRead, path_);
    const ssize_t rc = ::pread(fd_, out.data() + done, size - done,
                               static_cast<off_t>(offset + done));
    if (rc < 0) {
      throw IoError::from_errno("pread", path_);
    }
    if (rc == 0) {
      throw IoError("pread '" + path_ + "': unexpected end of file");
    }
    done += static_cast<std::size_t>(rc);
  }
  return out;
}

std::size_t PosixFile::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    throw IoError::from_errno("fstat", path_);
  }
  return static_cast<std::size_t>(st.st_size);
}

void PosixFile::sync() {
  fault_point(FaultOp::kFsync, path_);
  if (::fsync(fd_) != 0) {
    throw IoError::from_errno("fsync", path_);
  }
}

Bytes read_file(const std::string& path) {
  PosixFile file(path, PosixFile::Mode::kRead);
  return file.read_at(0, file.size());
}

void write_file(const std::string& path, std::span<const std::byte> data) {
  PosixFile file(path, PosixFile::Mode::kWriteTruncate);
  file.write_all(data);
}

void rename_file(const std::string& from, const std::string& to) {
  fault_point(FaultOp::kRename, from);
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    throw IoError::from_errno("rename", from);
  }
}

void fsync_directory(const std::string& directory) {
  fault_point(FaultOp::kDirFsync, directory);
  const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    throw IoError::from_errno("open directory", directory);
  }
  if (::fsync(fd) != 0) {
    const IoError error = IoError::from_errno("fsync directory", directory);
    ::close(fd);
    throw error;
  }
  ::close(fd);
}

RetryStats atomic_write_file(const std::string& path,
                             std::span<const std::byte> data,
                             const RetryPolicy& retry,
                             const FileOpener& opener) {
  const std::string staged = path + kTmpSuffix;
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string directory = parent.empty() ? "." : parent.string();
  try {
    ARTSPARSE_SPAN_TYPE commit_span("store.commit", "store");
    commit_span.attr("path", path);
    commit_span.attr("bytes", static_cast<std::uint64_t>(data.size()));
    return retry_io(retry, [&] {
      {
        ARTSPARSE_SPAN_TYPE stage_span("commit.stage", "store");
        std::unique_ptr<FileDevice> device =
            opener ? opener(staged)
                   : std::make_unique<PosixFile>(
                         staged, PosixFile::Mode::kWriteTruncate);
        device->write_all(data);
        stage_span.end();
        ARTSPARSE_SPAN("commit.fsync", "store");
        device->sync();
      }
      // Commit point: past the rename the new content is the file's state;
      // the directory fsync makes the new entry itself durable.
      {
        ARTSPARSE_SPAN("commit.rename", "store");
        rename_file(staged, path);
      }
      ARTSPARSE_SPAN("commit.dirsync", "store");
      fsync_directory(directory);
    });
  } catch (const CrashFault&) {
    // Simulated process death: leave the orphaned stage file exactly as a
    // real crash would; the store sweep collects it on the next open.
    throw;
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(staged, ec);
    throw;
  }
}

}  // namespace artsparse
