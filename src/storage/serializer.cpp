#include "storage/serializer.hpp"

#include <array>

namespace artsparse {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (std::byte b : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(b)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace artsparse
