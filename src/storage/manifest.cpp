#include "storage/manifest.hpp"

#include <algorithm>

#include "core/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace artsparse {

FragmentFile::~FragmentFile() {
  if (!doomed()) return;
  // Last reference to an obsoleted fragment: every manifest (and thus
  // every pinned snapshot) that could resolve it is gone, so the file can
  // finally leave the disk. Errors are swallowed — the file may already
  // have been removed by an external repair sweep.
  std::error_code ec;
  std::filesystem::remove(path_, ec);
  ARTSPARSE_COUNT("artsparse_store_deferred_unlinks_total", 1);
}

Manifest::Manifest(std::uint64_t generation,
                   std::vector<ManifestEntry> entries, Shape shape)
    : generation_(generation),
      entries_(std::move(entries)),
      shape_(std::move(shape)) {}

std::size_t Manifest::total_file_bytes() const {
  std::size_t total = 0;
  for (const ManifestEntry& entry : entries_) {
    total += entry.file_bytes;
  }
  return total;
}

std::vector<const ManifestEntry*> Manifest::discover(const Box& box) const {
  std::vector<const ManifestEntry*> hits;
  if (entries_.size() < kRtreeThreshold) {
    for (const ManifestEntry& entry : entries_) {
      if (!entry.bbox.empty() && entry.bbox.overlaps(box)) {
        hits.push_back(&entry);
      }
    }
    return hits;
  }
  const RTree* tree = rtree_published_.load(std::memory_order_acquire);
  if (tree == nullptr) {
    // Serialize the one-time build; after the release-publish the tree is
    // immutable for this manifest's lifetime, so concurrent visits below
    // are read-only and safe.
    const MutexLock lock(rtree_mutex_);
    tree = build_rtree_locked();
  }
  tree->visit(box, [&](std::size_t id) {
    const ManifestEntry& entry = entries_[id];
    if (!entry.bbox.empty() && entry.bbox.overlaps(box)) {
      hits.push_back(&entry);
    }
  });
  // Keep write order (the linear path's order) for deterministic results.
  std::sort(hits.begin(), hits.end());
  return hits;
}

const RTree* Manifest::build_rtree_locked() const {
  if (rtree_ == nullptr) {
    ARTSPARSE_SPAN_TYPE rebuild_span("store.rtree_rebuild", "store");
    rebuild_span.attr("fragments",
                      static_cast<std::uint64_t>(entries_.size()));
    WallTimer rebuild_timer;
    // Empty-bbox fragments (zero points) can never overlap; give them a
    // degenerate placeholder the tree accepts, then filter on visit.
    std::vector<Box> boxes;
    boxes.reserve(entries_.size());
    const Box placeholder(std::vector<index_t>(shape_.rank(), 0),
                          std::vector<index_t>(shape_.rank(), 0));
    for (const ManifestEntry& entry : entries_) {
      boxes.push_back(entry.bbox.empty() ? placeholder : entry.bbox);
    }
    rtree_ = std::make_unique<const RTree>(RTree::bulk_load(boxes));
    ARTSPARSE_COUNT("artsparse_store_rtree_rebuilds_total", 1);
    ARTSPARSE_OBSERVE("artsparse_store_rtree_rebuild_ns",
                      rebuild_timer.seconds() * 1e9);
    rtree_published_.store(rtree_.get(), std::memory_order_release);
  }
  return rtree_.get();
}

}  // namespace artsparse
