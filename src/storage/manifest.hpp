// Manifest generations: the snapshot-isolation substrate of FragmentStore.
//
// A Manifest is an immutable, refcounted picture of the committed fragment
// set at one generation number. Readers pin a generation by copying a
// shared_ptr<const Manifest> and keep reading that exact fragment set no
// matter what writers do; writers (write/consolidate/clear/rescan) build a
// successor Manifest and publish it atomically under the store's writer
// mutex. This is the manifest/commit-log pattern Delta-Lake-style stores
// (and Delta Tensor) use: the on-disk commit point is still PR 3's
// stage -> fsync -> rename chain, and the in-memory manifest chain gives
// concurrent readers a consistent view of which renamed files exist.
//
// Fragment files are shared between generations through FragmentFile
// handles. Replacing or clearing a fragment dooms its handle; the file is
// unlinked only when the last manifest referencing it is released, so a
// pinned snapshot keeps resolving pre-consolidation fragments from disk
// even after the store has moved on. Fragment ids are never recycled
// within a store's lifetime, so a path uniquely names one fragment's bytes
// for as long as any reader can reach it.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/box.hpp"
#include "core/shape.hpp"
#include "core/thread_safety.hpp"
#include "core/types.hpp"
#include "storage/rtree.hpp"

namespace artsparse {

/// Shared handle to one committed fragment file. Manifests of successive
/// generations share the handle; doom() marks the file obsolete, and the
/// destructor of the *last* manifest that references it unlinks it — the
/// deferred-deletion half of snapshot isolation.
class FragmentFile {
 public:
  explicit FragmentFile(std::filesystem::path path)
      : path_(std::move(path)) {}
  ~FragmentFile();

  FragmentFile(const FragmentFile&) = delete;
  FragmentFile& operator=(const FragmentFile&) = delete;

  const std::filesystem::path& path() const { return path_; }

  /// Marks the file for deletion once the last referencing manifest goes
  /// away. Safe to call from any thread; idempotent.
  void doom() { doomed_.store(true, std::memory_order_relaxed); }
  bool doomed() const { return doomed_.load(std::memory_order_relaxed); }

 private:
  std::filesystem::path path_;
  std::atomic<bool> doomed_{false};
};

/// One committed fragment as a manifest lists it: the shared file handle
/// plus the header statistics discovery prunes on.
struct ManifestEntry {
  std::shared_ptr<FragmentFile> file;
  /// Cache key: "<path>@g<generation born>". Paths are never recycled
  /// within a store lifetime, and the generation tag makes a key unique
  /// across rescans too, so the FragmentCache can never serve bytes from a
  /// fragment this entry does not mean.
  std::string cache_key;
  Box bbox;
  OrgKind org = OrgKind::kCoo;
  std::size_t file_bytes = 0;
  value_t value_min = 0;  ///< statistics block, for predicate pushdown
  value_t value_max = 0;

  std::string path() const { return file->path().string(); }
};

/// Immutable fragment set at one generation. Entry order is write order
/// (rescan sorts by filename, which names fragments in write order), which
/// every read path relies on for deterministic merges.
class Manifest {
 public:
  Manifest(std::uint64_t generation, std::vector<ManifestEntry> entries,
           Shape shape);

  std::uint64_t generation() const { return generation_; }
  const std::vector<ManifestEntry>& entries() const { return entries_; }
  std::size_t fragment_count() const { return entries_.size(); }

  /// Total bytes across this generation's fragment files (Fig. 4 metric).
  std::size_t total_file_bytes() const;

  /// Entries whose bounding box overlaps `box` (Algorithm 3 line 4), in
  /// entry (write) order. Linear scan for small manifests; an STR R-tree
  /// over the fragment boxes once the manifest passes kRtreeThreshold
  /// entries. The tree is built lazily at most once per generation —
  /// manifests are immutable, so it can never go stale — and the build is
  /// mutex-guarded, making discovery safe from any number of threads.
  std::vector<const ManifestEntry*> discover(const Box& box) const;

  static constexpr std::size_t kRtreeThreshold = 32;

 private:
  /// Builds the spatial index over entries_ (called once, under
  /// rtree_mutex_) and publishes it through rtree_published_.
  const RTree* build_rtree_locked() const ARTSPARSE_REQUIRES(rtree_mutex_);

  std::uint64_t generation_;
  std::vector<ManifestEntry> entries_;
  Shape shape_;
  /// Lazily built spatial index; mutable because discovery is logically
  /// const. The build is serialized by rtree_mutex_ and the finished tree
  /// is published through the atomic pointer, so the common already-built
  /// case is one acquire load, no lock, and the analysis can see that the
  /// mutable storage is only ever touched under the mutex.
  mutable Mutex rtree_mutex_;
  mutable std::unique_ptr<const RTree> rtree_
      ARTSPARSE_GUARDED_BY(rtree_mutex_);
  mutable std::atomic<const RTree*> rtree_published_{nullptr};
};

}  // namespace artsparse
