// Simulated storage device: a bandwidth/latency model around a FileDevice.
//
// The paper ran on Perlmutter's Lustre file system, where writing a 4x
// larger COO fragment costs visibly more wall time than a LINEAR fragment
// (Table III). On a laptop the page cache absorbs small writes almost for
// free, hiding exactly the effect the paper measures — so benches route
// fragment traffic through this throttle, which models a parallel-file-
// system client as a fixed per-operation latency plus a finite bandwidth.
// The model sleeps most of the charge window and spins only the final
// ~1 ms, so timings stay proportional to bytes moved (sub-ms precision)
// without burning a core for the whole modeled transfer. An unthrottled
// passthrough is the default for correctness paths.
#pragma once

#include <chrono>
#include <memory>

#include "core/deadline.hpp"
#include "core/thread_safety.hpp"
#include "storage/file_io.hpp"

namespace artsparse {

/// Thread-safe token bucket: refills `rate_per_sec` tokens per second up
/// to a `burst` ceiling. Unlike ThrottledFile below — which *charges time*
/// to model a slow device — the bucket *rejects*: try_acquire() never
/// blocks, so it is the primitive admission control builds per-tenant
/// ops/sec and bytes/sec quotas on. A rate of 0 disables the bucket
/// (every acquire succeeds).
class TokenBucket {
 public:
  /// `burst` defaults to one second's worth of tokens; the bucket starts
  /// full so quotas admit an initial burst instead of starving cold
  /// tenants.
  explicit TokenBucket(double rate_per_sec, double burst = -1.0);

  /// Debits `tokens` and returns true when the (refilled) balance covers
  /// them; otherwise returns false leaving the balance untouched. A
  /// balance in debt (see force_debit) fails even a zero-token acquire
  /// until the refill pays the debt off.
  bool try_acquire(double tokens = 1.0);

  /// Unconditionally debits, allowing the balance to go negative (debt).
  /// Used for post-hoc charging: reads admit optimistically, then charge
  /// the bytes actually returned, throttling the tenant's *next* request.
  void force_debit(double tokens);

  /// Deadline-bounded blocking acquire: waits (in interruptible slices)
  /// for the refill to cover `tokens`, up to `ctx`'s remaining budget.
  /// Returns true when the tokens were debited. A context with no bounded
  /// deadline degenerates to try_acquire — this bucket never waits
  /// unboundedly — and a disabled bucket always succeeds immediately.
  bool acquire_within(double tokens, const OpContext& ctx);

  /// Current (refilled) balance; may be negative while in debt.
  double available() const;

  bool enabled() const { return rate_per_sec_ > 0.0; }
  double rate_per_sec() const { return rate_per_sec_; }

 private:
  /// Accrues tokens since the last refill.
  void refill_locked() const ARTSPARSE_REQUIRES(mutex_);

  const double rate_per_sec_;
  const double burst_;
  mutable Mutex mutex_;
  mutable double tokens_ ARTSPARSE_GUARDED_BY(mutex_) = 0.0;
  mutable std::chrono::steady_clock::time_point last_
      ARTSPARSE_GUARDED_BY(mutex_){};
};

/// Bandwidth/latency parameters of the simulated device.
struct DeviceModel {
  /// Sustained bandwidth in bytes per second; 0 disables throttling.
  double bandwidth_bytes_per_sec = 0.0;
  /// Fixed cost charged per read/write call (client RPC latency).
  double latency_sec = 0.0;

  bool throttled() const { return bandwidth_bytes_per_sec > 0.0; }

  /// Perlmutter-Lustre-like single-client defaults used by the benches:
  /// ~200 MB/s effective per-writer bandwidth and 1 ms per operation —
  /// back-solved from the paper's own Table III (COO writes ~22 MB in
  /// 0.12 s, LINEAR ~9 MB in 0.05 s).
  static DeviceModel lustre_like() {
    return DeviceModel{200e6, 1e-3};
  }

  /// No throttling: raw local filesystem speed.
  static DeviceModel unthrottled() { return DeviceModel{}; }
};

/// FileDevice decorator that charges the model's time for every transfer.
class ThrottledFile final : public FileDevice {
 public:
  ThrottledFile(std::unique_ptr<FileDevice> inner, DeviceModel model);

  void write_all(std::span<const std::byte> data) override;
  Bytes read_at(std::size_t offset, std::size_t size) override;
  std::size_t size() const override;
  void sync() override;

 private:
  /// Waits until `seconds` of simulated device time have elapsed beyond
  /// what the real operation already consumed: sleeps all but the last
  /// ~1 ms of the window, then spins the tail for precision. The sleep
  /// observes the ambient OpContext — a deadline or cancellation cuts the
  /// modeled transfer short with DeadlineExceededError/CancelledError
  /// (the data already moved; only the simulated time charge is skipped).
  void charge(double seconds, double already_spent) const;

  std::unique_ptr<FileDevice> inner_;
  DeviceModel model_;
};

/// Opens a fragment file for writing, throttled per `model` when enabled.
std::unique_ptr<FileDevice> open_for_write(const std::string& path,
                                           const DeviceModel& model);

/// Opens a fragment file for reading, throttled per `model` when enabled.
std::unique_ptr<FileDevice> open_for_read(const std::string& path,
                                          const DeviceModel& model);

}  // namespace artsparse
