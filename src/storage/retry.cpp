#include "storage/retry.hpp"

#include <algorithm>
#include <atomic>

#include "core/deadline.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "obs/metrics.hpp"

namespace artsparse {

namespace detail {

namespace {
std::atomic<std::uint64_t> g_retry_nonce{0};
}  // namespace

std::uint64_t next_retry_nonce() {
  return g_retry_nonce.fetch_add(1, std::memory_order_relaxed) + 1;
}

void reset_retry_nonce_for_testing(std::uint64_t value) {
  g_retry_nonce.store(value, std::memory_order_relaxed);
}

}  // namespace detail

double RetryPolicy::delay_seconds(std::size_t attempt,
                                  std::uint64_t nonce) const {
  if (attempt == 0 || base_delay_sec <= 0.0) return 0.0;
  // min(cap, base * 2^(attempt-1)), computed without overflow: once the
  // doubling passes the cap it can only stay there.
  double delay = base_delay_sec;
  for (std::size_t k = 1; k < attempt && delay < cap_delay_sec; ++k) {
    delay *= 2.0;
  }
  delay = std::min(delay, cap_delay_sec);
  if (jitter > 0.0) {
    // Seeding with seed + attempt alone made every concurrent operation
    // sharing a policy compute *identical* backoffs — lockstep retries,
    // the exact herd jitter exists to break. The golden-ratio-scaled nonce
    // moves each call onto its own SplitMix64 stream (nonce 0 keeps the
    // legacy stream for fixed-seed tests).
    SplitMix64 rng(seed + attempt + nonce * 0x9e3779b97f4a7c15ULL);
    const double unit =
        static_cast<double>(rng.next() >> 11) / 9007199254740992.0;  // 2^53
    delay *= 1.0 + jitter * (unit - 0.5);
  }
  return delay;
}

RetryStats retry_io(const RetryPolicy& policy,
                    const std::function<void()>& fn) {
  RetryStats stats;
  const std::size_t max_attempts =
      std::max<std::size_t>(policy.max_attempts, 1);
  const std::uint64_t nonce = detail::next_retry_nonce();
  const OpContext& ctx = current_op_context();
  WallTimer elapsed;
  std::size_t capacity_failures = 0;
  for (std::size_t attempt = 1;; ++attempt) {
    // Counted per try (not on return) so exhausted operations still show
    // their attempts in the registry.
    ARTSPARSE_COUNT("artsparse_store_io_attempts_total", 1);
    try {
      fn();
      stats.attempts = attempt;
      stats.retries = attempt - 1;
      return stats;
    } catch (const IoError& e) {
      if (!e.retryable() || attempt >= max_attempts) throw;
      if (io_errno_class(e.errno_value()) == IoErrnoClass::kCapacity &&
          ++capacity_failures > policy.max_capacity_retries) {
        // Persistent capacity exhaustion (full disk, hard quota) rarely
        // clears within a backoff schedule; surface the original errno so
        // the store health machinery can degrade instead of spinning the
        // commit path through the whole attempt budget.
        throw;
      }
      if (ctx.cancelled()) {
        ARTSPARSE_COUNT("artsparse_cancelled_total", 1);
        throw CancelledError("I/O retry cancelled after " +
                             std::to_string(attempt) +
                             " attempt(s): " + e.what());
      }
      const double delay = policy.delay_seconds(attempt, nonce);
      const double budget = ctx.deadline.remaining_seconds();
      if (budget <= 0.0 || delay >= budget) {
        // The next backoff would overrun the deadline: give up now with
        // zero sleep rather than burning budget the caller no longer has.
        ARTSPARSE_COUNT("artsparse_deadline_exceeded_total", 1);
        throw DeadlineExceededError(
            "deadline expired before I/O retry backoff (" +
                std::to_string(attempt) + " attempt(s)): " + e.what(),
            attempt, elapsed.seconds());
      }
      ARTSPARSE_COUNT("artsparse_store_io_retries_total", 1);
      if (delay > 0.0) {
        const WaitResult wait = interruptible_sleep(delay, ctx);
        if (wait == WaitResult::kCancelled) {
          ARTSPARSE_COUNT("artsparse_cancelled_total", 1);
          throw CancelledError("I/O retry cancelled during backoff after " +
                               std::to_string(attempt) +
                               " attempt(s): " + e.what());
        }
        if (wait == WaitResult::kDeadlineExpired) {
          ARTSPARSE_COUNT("artsparse_deadline_exceeded_total", 1);
          throw DeadlineExceededError(
              "deadline expired during I/O retry backoff (" +
                  std::to_string(attempt) + " attempt(s)): " + e.what(),
              attempt, elapsed.seconds());
        }
        stats.backoff_seconds += delay;
        ARTSPARSE_COUNT("artsparse_store_backoff_ns_total", delay * 1e9);
      }
    }
  }
}

}  // namespace artsparse
