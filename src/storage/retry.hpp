// Retry with exponential backoff + deterministic jitter for transient I/O
// failures. A parallel filesystem under load returns EINTR/EAGAIN (and
// transient ENOSPC while quota grants flush) routinely; the commit path
// retries those per a RetryPolicy instead of surfacing them to callers.
// Non-retryable errnos (EIO, EACCES, ...) and the fault injector's
// CrashFault sentinel always propagate immediately.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace artsparse {

/// Backoff schedule: attempt k (1-based) that fails sleeps
/// min(cap, base * 2^(k-1)) scaled by a deterministic jitter factor in
/// [1 - jitter/2, 1 + jitter/2], derived from `seed` and k via SplitMix64.
struct RetryPolicy {
  std::size_t max_attempts = 4;   ///< total tries, including the first
  double base_delay_sec = 0.001;  ///< backoff after the first failure
  double cap_delay_sec = 0.100;   ///< exponential growth clamps here
  double jitter = 0.5;            ///< +/- half this fraction of the delay
  std::uint64_t seed = 0x415350u; ///< jitter stream; fixed => reproducible
  /// Retries granted to capacity-class errnos (ENOSPC/EDQUOT — see
  /// IoErrnoClass) per retry_io call. A quota flush in flight clears in
  /// one retry; a genuinely full disk never does, so capacity failures do
  /// not get the whole max_attempts budget before surfacing to the store
  /// health machinery.
  std::size_t max_capacity_retries = 1;

  /// No retries: fail on the first error.
  static RetryPolicy none() { return RetryPolicy{1, 0.0, 0.0, 0.0, 0, 0}; }

  /// Backoff to sleep after failed attempt `attempt` (1-based). Always in
  /// [0, cap_delay_sec * (1 + jitter / 2)]. `nonce` shifts the jitter
  /// stream so concurrent operations sharing one policy (same seed) do not
  /// retry in lockstep; nonce 0 reproduces the bare seed+attempt stream.
  /// Deterministic in (seed, attempt, nonce).
  double delay_seconds(std::size_t attempt, std::uint64_t nonce) const;
  double delay_seconds(std::size_t attempt) const {
    return delay_seconds(attempt, 0);
  }
};

namespace detail {

/// Process-wide jitter nonce: each retry_io() call draws the next value so
/// concurrent retries de-synchronize even under one shared RetryPolicy.
std::uint64_t next_retry_nonce();

/// Test-only: pins the counter so backoff sequences are reproducible.
void reset_retry_nonce_for_testing(std::uint64_t value);

}  // namespace detail

/// What a retried operation cost.
struct RetryStats {
  std::size_t attempts = 1;     ///< tries made (1 = first try succeeded)
  std::size_t retries = 0;      ///< attempts - 1
  double backoff_seconds = 0.0; ///< total time slept between attempts
};

/// Runs `fn` up to `policy.max_attempts` times. A retryable IoError (see
/// io_errno_retryable) sleeps the backoff and tries again; any other
/// exception — and the last retryable error once attempts are exhausted —
/// propagates to the caller unchanged. Capacity-class errnos
/// (ENOSPC/EDQUOT) surface after `policy.max_capacity_retries` retries
/// even when attempts remain.
///
/// The loop observes the ambient OpContext (core/deadline.hpp): a backoff
/// that would overrun the remaining deadline budget is never slept —
/// retry_io throws DeadlineExceededError (carrying attempts + elapsed)
/// immediately — and a cancelled token stops the loop with CancelledError
/// before the next sleep or at the next poll (~2 ms) of one in progress.
RetryStats retry_io(const RetryPolicy& policy,
                    const std::function<void()>& fn);

}  // namespace artsparse
