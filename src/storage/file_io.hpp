// RAII POSIX file wrapper. All fragment traffic goes through this layer (or
// its throttled decorator), so benches can account byte-for-byte for what
// hits the storage device.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace artsparse {

/// Minimal file-device interface so the throttled Lustre stand-in can wrap
/// real files transparently.
class FileDevice {
 public:
  virtual ~FileDevice() = default;

  /// Writes the whole buffer at the current end of file.
  virtual void write_all(std::span<const std::byte> data) = 0;

  /// Reads `size` bytes at `offset`; throws IoError on short reads.
  virtual Bytes read_at(std::size_t offset, std::size_t size) = 0;

  virtual std::size_t size() const = 0;

  /// Flushes data to the device (fsync for real files).
  virtual void sync() = 0;
};

/// Real POSIX file.
class PosixFile final : public FileDevice {
 public:
  enum class Mode { kRead, kWriteTruncate };

  PosixFile(const std::string& path, Mode mode);
  ~PosixFile() override;

  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  void write_all(std::span<const std::byte> data) override;
  Bytes read_at(std::size_t offset, std::size_t size) override;
  std::size_t size() const override;
  void sync() override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Convenience helpers for whole-file access.
Bytes read_file(const std::string& path);
void write_file(const std::string& path, std::span<const std::byte> data);

}  // namespace artsparse
