// RAII POSIX file wrapper. All fragment traffic goes through this layer (or
// its throttled decorator), so benches can account byte-for-byte for what
// hits the storage device, and every syscall passes a fault-injection hook
// (see fault.hpp) so tests can exercise each failure point deterministically.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "storage/retry.hpp"

namespace artsparse {

/// Minimal file-device interface so the throttled Lustre stand-in can wrap
/// real files transparently.
class FileDevice {
 public:
  virtual ~FileDevice() = default;

  /// Writes the whole buffer at the current end of file.
  virtual void write_all(std::span<const std::byte> data) = 0;

  /// Reads `size` bytes at `offset`; throws IoError on short reads.
  virtual Bytes read_at(std::size_t offset, std::size_t size) = 0;

  virtual std::size_t size() const = 0;

  /// Flushes data to the device (fsync for real files).
  virtual void sync() = 0;
};

/// Real POSIX file.
class PosixFile final : public FileDevice {
 public:
  enum class Mode { kRead, kWriteTruncate };

  PosixFile(const std::string& path, Mode mode);
  ~PosixFile() override;

  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  void write_all(std::span<const std::byte> data) override;
  Bytes read_at(std::size_t offset, std::size_t size) override;
  std::size_t size() const override;
  void sync() override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Convenience helpers for whole-file access.
Bytes read_file(const std::string& path);
void write_file(const std::string& path, std::span<const std::byte> data);

/// rename(2) with error context and a fault hook.
void rename_file(const std::string& from, const std::string& to);

/// fsync(2) on a directory, making renames within it durable. Required on
/// POSIX for the commit point of an atomic file replace.
void fsync_directory(const std::string& directory);

/// The file extension appended to a path while its content is staged, and
/// the one a corrupt fragment is renamed to when quarantined.
inline constexpr const char* kTmpSuffix = ".tmp";
inline constexpr const char* kQuarantineSuffix = ".quarantine";

/// Factory for the device a staged file is written through; lets callers
/// route the commit through the throttled device model. Null = bare
/// PosixFile.
using FileOpener =
    std::function<std::unique_ptr<FileDevice>(const std::string&)>;

/// Crash-consistent whole-file commit: stages `data` at `path`.tmp, fsyncs
/// the file, rename(2)s it over `path`, then fsyncs the parent directory.
/// A crash at any point leaves either the old state or the fully committed
/// new file, plus at most one orphaned .tmp for the store sweep to collect.
/// Transient errnos retry the whole staged sequence per `retry` (the stage
/// file is truncated on each attempt, so retries are idempotent); on a
/// non-crash failure the stage file is removed best-effort before the error
/// propagates. Returns the attempt/backoff accounting.
RetryStats atomic_write_file(const std::string& path,
                             std::span<const std::byte> data,
                             const RetryPolicy& retry = RetryPolicy::none(),
                             const FileOpener& opener = nullptr);

}  // namespace artsparse
