// Bounds-checked binary buffer writer/reader. Every fragment payload — the
// organization-specific index buffers of Algorithms 1-2 and the value buffer
// they are concatenated with — is encoded through this layer, so malformed
// fragments fail with FormatError instead of undefined behaviour.
//
// Encoding is little-endian, fixed-width; integers are std::uint64_t unless
// stated otherwise. Vectors are encoded as a u64 length followed by the
// elements.
#pragma once

#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "core/error.hpp"
#include "core/types.hpp"

namespace artsparse {

/// Appends primitive values and arrays to a growable byte buffer.
class BufferWriter {
 public:
  BufferWriter() = default;

  void put_u8(std::uint8_t v) { put_raw(&v, 1); }
  void put_u32(std::uint32_t v) { put_pod(v); }
  void put_u64(std::uint64_t v) { put_pod(v); }
  void put_f64(double v) { put_pod(v); }

  /// Length-prefixed u64 vector.
  void put_u64_vec(std::span<const std::uint64_t> v) {
    put_u64(v.size());
    put_raw(v.data(), v.size() * sizeof(std::uint64_t));
  }

  /// Length-prefixed f64 vector.
  void put_f64_vec(std::span<const double> v) {
    put_u64(v.size());
    put_raw(v.data(), v.size() * sizeof(double));
  }

  /// Length-prefixed UTF-8 string.
  void put_string(const std::string& s) {
    put_u64(s.size());
    put_raw(s.data(), s.size());
  }

  /// Raw bytes without a length prefix (callers encode their own framing).
  void put_bytes(std::span<const std::byte> b) {
    put_raw(b.data(), b.size());
  }

  std::size_t size() const { return buffer_.size(); }
  const Bytes& bytes() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }

 private:
  template <typename T>
  void put_pod(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_raw(&v, sizeof(T));
  }

  void put_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buffer_.insert(buffer_.end(), p, p + n);
  }

  Bytes buffer_;
};

/// Sequential reader over a byte span; every access is bounds-checked.
class BufferReader {
 public:
  explicit BufferReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t get_u8() {
    std::uint8_t v;
    get_raw(&v, 1);
    return v;
  }
  std::uint32_t get_u32() { return get_pod<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_pod<std::uint64_t>(); }
  double get_f64() { return get_pod<double>(); }

  std::vector<std::uint64_t> get_u64_vec() {
    const std::uint64_t n = get_checked_count(sizeof(std::uint64_t));
    std::vector<std::uint64_t> v(n);
    get_raw(v.data(), n * sizeof(std::uint64_t));
    return v;
  }

  std::vector<double> get_f64_vec() {
    const std::uint64_t n = get_checked_count(sizeof(double));
    std::vector<double> v(n);
    get_raw(v.data(), n * sizeof(double));
    return v;
  }

  std::string get_string() {
    const std::uint64_t n = get_checked_count(1);
    std::string s(n, '\0');
    get_raw(s.data(), n);
    return s;
  }

  /// Takes a u64 so untrusted 64-bit lengths are bounds-checked *before*
  /// any narrowing to size_t (a 32-bit size_t would otherwise truncate a
  /// hostile length into a small, "valid" one).
  Bytes get_bytes(std::uint64_t n) {
    detail::require(n <= remaining(), "serialized buffer truncated");
    const auto count = static_cast<std::size_t>(n);
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
            data_.begin() + static_cast<std::ptrdiff_t>(offset_ + count));
    offset_ += count;
    return b;
  }

  std::size_t remaining() const { return data_.size() - offset_; }
  std::size_t offset() const { return offset_; }
  bool exhausted() const { return offset_ == data_.size(); }

 private:
  template <typename T>
  T get_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    get_raw(&v, sizeof(T));
    return v;
  }

  void get_raw(void* out, std::size_t n) {
    detail::require(remaining() >= n, "serialized buffer truncated");
    if (n > 0) {  // data() may be null on an empty span; memcpy forbids null
      std::memcpy(out, data_.data() + offset_, n);
    }
    offset_ += n;
  }

  /// Reads a length prefix and validates it against the remaining bytes so
  /// hostile lengths cannot trigger giant allocations.
  std::uint64_t get_checked_count(std::size_t element_size) {
    const std::uint64_t n = get_u64();
    detail::require(n <= remaining() / element_size,
                    "serialized vector length exceeds buffer size");
    return n;
  }

  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
};

/// CRC-32 (ISO-HDLC polynomial) over a byte span; fragments carry a payload
/// checksum so storage corruption is detected at read time.
std::uint32_t crc32(std::span<const std::byte> data);

}  // namespace artsparse
