#include "storage/throttle.hpp"

#include <algorithm>
#include <chrono>

#include "core/error.hpp"
#include "core/timer.hpp"
#include "obs/metrics.hpp"

namespace artsparse {

namespace {

/// Tail of the charge window served by spinning. Sleeping the whole window
/// would leave scheduler wake-up granularity (~ms, worse under load) in
/// the measurement; spinning the whole window burned a full core for the
/// entire modeled transfer. Sleep up to this close to the deadline, then
/// spin the rest for precision.
constexpr double kSpinTailSec = 1e-3;

}  // namespace

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_per_sec_(rate_per_sec > 0.0 ? rate_per_sec : 0.0),
      burst_(burst >= 0.0 ? burst : rate_per_sec_),
      tokens_(burst >= 0.0 ? burst : rate_per_sec_),
      last_(std::chrono::steady_clock::now()) {}

void TokenBucket::refill_locked() const {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - last_).count();
  last_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_per_sec_);
}

bool TokenBucket::try_acquire(double tokens) {
  if (!enabled()) return true;
  const MutexLock lock(mutex_);
  refill_locked();
  if (tokens_ < tokens) return false;
  tokens_ -= tokens;
  return true;
}

void TokenBucket::force_debit(double tokens) {
  if (!enabled()) return;
  const MutexLock lock(mutex_);
  refill_locked();
  tokens_ -= tokens;
}

bool TokenBucket::acquire_within(double tokens, const OpContext& ctx) {
  if (!enabled()) return true;
  if (!ctx.deadline.bounded()) {
    // No budget to bound the wait, so never block: quota waits are
    // deadline-bounded by construction.
    return try_acquire(tokens);
  }
  for (;;) {
    double shortfall = 0.0;
    {
      const MutexLock lock(mutex_);
      refill_locked();
      if (tokens_ >= tokens) {
        tokens_ -= tokens;
        return true;
      }
      shortfall = tokens - tokens_;
    }
    const double refill_wait = shortfall / rate_per_sec_;
    const double budget = ctx.deadline.remaining_seconds();
    // The refill rate is fixed and nothing ever returns tokens, so a wait
    // longer than the remaining budget cannot succeed — fail without
    // sleeping it out. (Concurrent acquirers can only grow the shortfall,
    // hence the re-check loop after each wait.)
    if (budget <= 0.0 || refill_wait > budget) return false;
    if (interruptible_sleep(refill_wait, ctx) != WaitResult::kCompleted) {
      return false;
    }
  }
}

double TokenBucket::available() const {
  if (!enabled()) return 0.0;
  const MutexLock lock(mutex_);
  refill_locked();
  return tokens_;
}

ThrottledFile::ThrottledFile(std::unique_ptr<FileDevice> inner,
                             DeviceModel model)
    : inner_(std::move(inner)), model_(model) {}

void ThrottledFile::charge(double seconds, double already_spent) const {
  if (seconds <= already_spent) return;
  WallTimer timer;
  const double remaining = seconds - already_spent;
  if (remaining > kSpinTailSec) {
    const OpContext& ctx = current_op_context();
    const WaitResult wait = interruptible_sleep(remaining - kSpinTailSec, ctx);
    if (wait == WaitResult::kCancelled) {
      ARTSPARSE_COUNT("artsparse_cancelled_total", 1);
      throw CancelledError("modeled device charge cancelled mid-transfer");
    }
    if (wait == WaitResult::kDeadlineExpired) {
      ARTSPARSE_COUNT("artsparse_deadline_exceeded_total", 1);
      throw DeadlineExceededError(
          "deadline expired during modeled device time charge", 1,
          timer.seconds());
    }
  }
  while (timer.seconds() < remaining) {
    // Spin only the final ~1 ms: keeps the charged time proportional to
    // bytes moved without a core-burning wait for the whole transfer.
  }
}

void ThrottledFile::write_all(std::span<const std::byte> data) {
  WallTimer timer;
  inner_->write_all(data);
  if (model_.throttled()) {
    const double modeled =
        model_.latency_sec +
        static_cast<double>(data.size()) / model_.bandwidth_bytes_per_sec;
    charge(modeled, timer.seconds());
  }
}

Bytes ThrottledFile::read_at(std::size_t offset, std::size_t size) {
  WallTimer timer;
  Bytes out = inner_->read_at(offset, size);
  if (model_.throttled()) {
    const double modeled =
        model_.latency_sec +
        static_cast<double>(size) / model_.bandwidth_bytes_per_sec;
    charge(modeled, timer.seconds());
  }
  return out;
}

std::size_t ThrottledFile::size() const { return inner_->size(); }

void ThrottledFile::sync() {
  // The model's bandwidth charge already covers the transfer reaching the
  // simulated device; a real fsync would add host-filesystem noise (tens of
  // milliseconds of jitter) that has nothing to do with the modeled device,
  // so durability is intentionally not forced here.
}

std::unique_ptr<FileDevice> open_for_write(const std::string& path,
                                           const DeviceModel& model) {
  auto file =
      std::make_unique<PosixFile>(path, PosixFile::Mode::kWriteTruncate);
  if (!model.throttled()) return file;
  return std::make_unique<ThrottledFile>(std::move(file), model);
}

std::unique_ptr<FileDevice> open_for_read(const std::string& path,
                                          const DeviceModel& model) {
  auto file = std::make_unique<PosixFile>(path, PosixFile::Mode::kRead);
  if (!model.throttled()) return file;
  return std::make_unique<ThrottledFile>(std::move(file), model);
}

}  // namespace artsparse
