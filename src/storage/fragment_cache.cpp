#include "storage/fragment_cache.hpp"

#include "core/env.hpp"
#include "core/timer.hpp"
#include "formats/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/fragment.hpp"
#include "storage/serializer.hpp"

namespace artsparse {

std::shared_ptr<const OpenFragment> load_open_fragment(
    const std::string& path, const DeviceModel& model) {
  ARTSPARSE_SPAN_TYPE span("cache.load", "cache");
  span.attr("path", path);
  Bytes raw;
  {
    auto device = open_for_read(path, model);
    raw = device->read_at(0, device->size());
  }
  Fragment fragment = decode_fragment(raw);

  auto open = std::make_shared<OpenFragment>();
  open->org = fragment.org;
  open->shape = fragment.shape;
  open->bbox = fragment.bbox;
  open->point_count = fragment.point_count;
  open->file_bytes = raw.size();
  // load_format() rather than a bare load(): it applies the paranoid
  // deep-invariant pass (ARTSPARSE_PARANOID) to every fragment opened
  // through the cache.
  open->format = load_format(fragment.org, fragment.index);
  open->values = std::move(fragment.values);
  // Budget accounting: the two payloads that dominate the resident size.
  // The decoded in-memory index is approximated by its serialized size.
  open->memory_bytes = open->values.size() * sizeof(value_t) +
                       fragment.index.size() + sizeof(OpenFragment);
  return open;
}

std::size_t FragmentCache::budget_from_env() {
  // Hardened parse (core/env): "64K" or "-1" no longer half-parse into a
  // surprise budget; malformed settings fall back to the default.
  return static_cast<std::size_t>(
      env_u64("ARTSPARSE_CACHE_BYTES").value_or(kDefaultBudgetBytes));
}

FragmentCache::FragmentCache(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

FragmentCache::~FragmentCache() {
  // Residents vanish with the cache; return their share of the live
  // gauges so process-wide open_bytes/open_fragments stay truthful.
  const MutexLock lock(mutex_);
  ARTSPARSE_GAUGE_ADD("artsparse_cache_open_bytes",
                      -static_cast<std::int64_t>(open_bytes_));
  ARTSPARSE_GAUGE_ADD("artsparse_cache_open_fragments",
                      -static_cast<std::int64_t>(lru_.size()));
}

FragmentCache::Lookup FragmentCache::get(const std::string& path,
                                         const DeviceModel& model) {
  return get(path, path, model);
}

FragmentCache::Lookup FragmentCache::get(const std::string& key,
                                         const std::string& path,
                                         const DeviceModel& model) {
  {
    const MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      ARTSPARSE_COUNT("artsparse_cache_hits_total", 1);
      return Lookup{it->second->second, true, 0.0};
    }
  }

  // Load outside the lock so concurrent misses overlap their I/O.
  WallTimer timer;
  std::shared_ptr<const OpenFragment> fragment =
      load_open_fragment(path, model);
  const double load_seconds = timer.seconds();
  ARTSPARSE_COUNT("artsparse_cache_misses_total", 1);
  ARTSPARSE_OBSERVE("artsparse_cache_load_ns", load_seconds * 1e9);

  const MutexLock lock(mutex_);
  ++misses_;
  if (budget_bytes_ == 0) {
    return Lookup{std::move(fragment), false, load_seconds};
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Another thread inserted while we loaded; adopt its copy.
    lru_.splice(lru_.begin(), lru_, it->second);
    return Lookup{it->second->second, false, load_seconds};
  }
  insert_locked(key, fragment);
  return Lookup{std::move(fragment), false, load_seconds};
}

void FragmentCache::insert_locked(
    const std::string& key, std::shared_ptr<const OpenFragment> fragment) {
  open_bytes_ += fragment->memory_bytes;
  ARTSPARSE_GAUGE_ADD("artsparse_cache_open_bytes", fragment->memory_bytes);
  ARTSPARSE_GAUGE_ADD("artsparse_cache_open_fragments", 1);
  lru_.emplace_front(key, std::move(fragment));
  index_[key] = lru_.begin();
  while (open_bytes_ > budget_bytes_ && lru_.size() > 1) {
    const auto& [victim_path, victim] = lru_.back();
    open_bytes_ -= victim->memory_bytes;
    ARTSPARSE_GAUGE_ADD("artsparse_cache_open_bytes",
                        -static_cast<std::int64_t>(victim->memory_bytes));
    ARTSPARSE_GAUGE_ADD("artsparse_cache_open_fragments", -1);
    index_.erase(victim_path);
    lru_.pop_back();
    ++evictions_;
    ARTSPARSE_COUNT("artsparse_cache_evictions_total", 1);
  }
}

void FragmentCache::add_pinned(std::int64_t delta) {
  pinned_bytes_.fetch_add(delta, std::memory_order_relaxed);
  ARTSPARSE_GAUGE_ADD("artsparse_cache_pinned_bytes", delta);
}

void FragmentCache::invalidate(const std::string& key) {
  const MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  open_bytes_ -= it->second->second->memory_bytes;
  ARTSPARSE_GAUGE_ADD(
      "artsparse_cache_open_bytes",
      -static_cast<std::int64_t>(it->second->second->memory_bytes));
  ARTSPARSE_GAUGE_ADD("artsparse_cache_open_fragments", -1);
  lru_.erase(it->second);
  index_.erase(it);
  ++invalidations_;
  ARTSPARSE_COUNT("artsparse_cache_invalidations_total", 1);
}

void FragmentCache::invalidate_all() {
  const MutexLock lock(mutex_);
  invalidations_ += lru_.size();
  ARTSPARSE_COUNT("artsparse_cache_invalidations_total", lru_.size());
  ARTSPARSE_GAUGE_ADD("artsparse_cache_open_bytes",
                      -static_cast<std::int64_t>(open_bytes_));
  ARTSPARSE_GAUGE_ADD("artsparse_cache_open_fragments",
                      -static_cast<std::int64_t>(lru_.size()));
  lru_.clear();
  index_.clear();
  open_bytes_ = 0;
}

CacheStats FragmentCache::stats() const {
  const MutexLock lock(mutex_);
  CacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.invalidations = invalidations_;
  stats.open_count = lru_.size();
  stats.open_bytes = open_bytes_;
  const std::int64_t pinned = pinned_bytes_.load(std::memory_order_relaxed);
  stats.pinned_bytes = pinned > 0 ? static_cast<std::size_t>(pinned) : 0;
  stats.budget_bytes = budget_bytes_;
  return stats;
}

void FragmentCache::reset_stats() {
  const MutexLock lock(mutex_);
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  invalidations_ = 0;
}

}  // namespace artsparse
