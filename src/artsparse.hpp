// Umbrella header: the full public API of ArtSparse.
//
// ArtSparse reproduces "The Art of Sparsity: Mastering High-Dimensional
// Tensor Storage" (Dong, Wu, Byna): five storage organizations for sparse
// tensors (COO, LINEAR, GCSR++, GCSC++, CSF), a fragment-based storage
// system, synthetic sparsity-pattern generators, the paper's benchmark
// harness, and an automatic organization advisor.
#pragma once

#include "advisor/advisor.hpp"
#include "advisor/profile.hpp"
#include "benchlib/harness.hpp"
#include "benchlib/report.hpp"
#include "benchlib/scoring.hpp"
#include "benchlib/workload.hpp"
#include "core/box.hpp"
#include "core/coords.hpp"
#include "core/error.hpp"
#include "core/linearize.hpp"
#include "core/reshape.hpp"
#include "core/rng.hpp"
#include "core/shape.hpp"
#include "core/sort.hpp"
#include "core/timer.hpp"
#include "core/types.hpp"
#include "formats/bcsr.hpp"
#include "formats/coo.hpp"
#include "formats/csf.hpp"
#include "formats/format.hpp"
#include "formats/gcsc.hpp"
#include "formats/gcsr.hpp"
#include "formats/linear.hpp"
#include "formats/registry.hpp"
#include "formats/sorted_coo.hpp"
#include "ops/dense.hpp"
#include "ops/kernels.hpp"
#include "ops/sparse_tensor.hpp"
#include "patterns/calibrate.hpp"
#include "patterns/dataset.hpp"
#include "patterns/pattern.hpp"
#include "storage/compress/codec.hpp"
#include "storage/file_io.hpp"
#include "storage/fragment.hpp"
#include "storage/fragment_store.hpp"
#include "storage/serializer.hpp"
#include "storage/throttle.hpp"
#include "tiles/tile_grid.hpp"
#include "tiles/tiled_store.hpp"
