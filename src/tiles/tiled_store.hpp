// TiledStore: block-decomposed fragment storage. Incoming batches are
// split by tile; each non-empty tile becomes its own fragment whose
// bounding box lies inside the tile, so region reads prune whole tiles via
// the store's bounding-box discovery. The organization per tile is either
// fixed or chosen per tile by the advisor's cost model from that tile's
// own sparsity profile (the paper's future work, applied at block
// granularity — different regions of one tensor can genuinely prefer
// different organizations, e.g. MSP's dense block vs its random background).
#pragma once

#include <map>
#include <optional>

#include "advisor/advisor.hpp"
#include "storage/fragment_store.hpp"
#include "tiles/tile_grid.hpp"

namespace artsparse {

/// How the per-tile organization is chosen.
struct TilePolicy {
  /// Fixed organization for every tile; ignored when `automatic`.
  OrgKind org = OrgKind::kGcsr;
  /// Choose per tile via the advisor cost model.
  bool automatic = false;
  /// Advisor inputs when automatic.
  WorkloadWeights weights = WorkloadWeights::balanced();
  double queries_per_write = 1.0;

  static TilePolicy fixed(OrgKind org) { return TilePolicy{org, false, {}, 1.0}; }
  static TilePolicy advisor(WorkloadWeights weights =
                                WorkloadWeights::balanced(),
                            double queries_per_write = 1.0) {
    return TilePolicy{OrgKind::kGcsr, true, weights, queries_per_write};
  }
};

/// Per-write accounting, aggregated over the tiles the batch touched.
struct TiledWriteResult {
  std::size_t tiles_written = 0;
  std::size_t point_count = 0;
  std::size_t file_bytes = 0;
  std::size_t index_bytes = 0;
  WriteBreakdown times;  ///< summed across tiles
  /// Organization chosen per tile id (what the advisor decided).
  std::map<index_t, OrgKind> tile_orgs;
};

class TiledStore {
 public:
  /// `cache` as in FragmentStore: tiled reads resolve their per-tile
  /// fragments through the same OpenFragment layer; pass a shared instance
  /// to pool one byte budget across stores, or null for a private cache.
  TiledStore(std::filesystem::path directory, TileGrid grid,
             TilePolicy policy = TilePolicy::fixed(OrgKind::kGcsr),
             DeviceModel model = DeviceModel::unthrottled(),
             CodecKind codec = CodecKind::kIdentity,
             std::shared_ptr<FragmentCache> cache = nullptr);

  /// Splits the batch by tile and writes one fragment per non-empty tile.
  TiledWriteResult write(const CoordBuffer& coords,
                         std::span<const value_t> values);

  /// Region read; fragments from non-overlapping tiles are never opened.
  ReadResult read_region(const Box& region) const;

  /// Region read via native box scans (see FragmentStore::scan_region).
  ReadResult scan_region(const Box& region) const;

  /// Point-set read (Algorithm 3 READ semantics).
  ReadResult read(const CoordBuffer& queries) const;

  /// Region read restricted to values inside `range` (predicate pushdown;
  /// see FragmentStore::scan_region_where).
  ReadResult scan_region_where(const Box& region,
                               const ValueRange& range) const;

  const TileGrid& grid() const { return grid_; }
  std::size_t fragment_count() const { return store_.fragment_count(); }
  std::size_t total_file_bytes() const { return store_.total_file_bytes(); }

  /// Commit retry schedule, forwarded to the inner store (see
  /// FragmentStore::set_retry_policy). Per-tile attempt/retry counters are
  /// summed into TiledWriteResult::times.
  void set_retry_policy(const RetryPolicy& policy) {
    store_.set_retry_policy(policy);
  }
  RetryPolicy retry_policy() const { return store_.retry_policy(); }

  /// Read-side degradation policy, forwarded to the inner store (see
  /// FragmentStore::set_read_fault_policy).
  void set_read_fault_policy(ReadFaultPolicy policy) {
    store_.set_read_fault_policy(policy);
  }
  ReadFaultPolicy read_fault_policy() const {
    return store_.read_fault_policy();
  }

  /// Recovery sweep results of the inner store's last open()/rescan().
  ScanReport last_scan() const { return store_.last_scan(); }

  /// The open-fragment cache tiled reads resolve through.
  FragmentCache& cache() const { return store_.cache(); }

  /// Batched box scans against one pinned generation (see
  /// Snapshot::scan_batch); each touched fragment decodes at most once.
  std::vector<ReadResult> scan_batch(std::span<const Box> regions) const {
    return store_.snapshot().scan_batch(regions);
  }

  /// The inner FragmentStore, for layers (service core, fsck, benches)
  /// that need snapshots, generations, or consolidation on a tiled store.
  FragmentStore& store() { return store_; }
  const FragmentStore& store() const { return store_; }

 private:
  TileGrid grid_;
  TilePolicy policy_;
  FragmentStore store_;
};

}  // namespace artsparse
