#include "tiles/tiled_store.hpp"

#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace artsparse {

TiledStore::TiledStore(std::filesystem::path directory, TileGrid grid,
                       TilePolicy policy, DeviceModel model, CodecKind codec,
                       std::shared_ptr<FragmentCache> cache)
    : grid_(std::move(grid)),
      policy_(policy),
      store_(std::move(directory), grid_.tensor_shape(), model, codec,
             std::move(cache)) {}

TiledWriteResult TiledStore::write(const CoordBuffer& coords,
                                   std::span<const value_t> values) {
  detail::require(coords.size() == values.size(),
                  "coordinate and value counts differ");
  TiledWriteResult result;
  result.point_count = coords.size();

  ARTSPARSE_SPAN_TYPE write_span("tiled.write", "tiled");
  write_span.attr("points", static_cast<std::uint64_t>(coords.size()));

  // Bucket points by tile id.
  std::map<index_t, std::vector<std::size_t>> buckets;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    buckets[grid_.tile_id_of(coords.point(i))].push_back(i);
  }

  for (const auto& [tile, members] : buckets) {
    CoordBuffer tile_coords(coords.rank());
    std::vector<value_t> tile_values;
    tile_coords.reserve(members.size());
    tile_values.reserve(members.size());
    for (std::size_t i : members) {
      tile_coords.append(coords.point(i));
      tile_values.push_back(values[i]);
    }

    OrgKind org = policy_.org;
    if (policy_.automatic) {
      const SparsityProfile profile =
          profile_sparsity(tile_coords, grid_.tensor_shape());
      org = recommend_organization(profile, policy_.weights,
                                   policy_.queries_per_write)
                .best()
                .org;
    }

    const WriteResult written = store_.write(tile_coords, tile_values, org);
    ++result.tiles_written;
    result.file_bytes += written.file_bytes;
    result.index_bytes += written.index_bytes;
    result.times.build += written.times.build;
    result.times.build_sort += written.times.build_sort;
    result.times.reorg += written.times.reorg;
    result.times.write += written.times.write;
    result.times.others += written.times.others;
    result.times.io_attempts += written.times.io_attempts;
    result.times.io_retries += written.times.io_retries;
    result.times.backoff += written.times.backoff;
    result.tile_orgs[tile] = org;
  }
  write_span.attr("tiles", static_cast<std::uint64_t>(result.tiles_written));
  ARTSPARSE_COUNT("artsparse_tiled_writes_total", 1);
  ARTSPARSE_COUNT("artsparse_tiled_tiles_written_total",
                  result.tiles_written);
  return result;
}

ReadResult TiledStore::read_region(const Box& region) const {
  return store_.read_region(region);
}

ReadResult TiledStore::scan_region(const Box& region) const {
  return store_.scan_region(region);
}

ReadResult TiledStore::read(const CoordBuffer& queries) const {
  return store_.read(queries);
}

ReadResult TiledStore::scan_region_where(const Box& region,
                                         const ValueRange& range) const {
  return store_.scan_region_where(region, range);
}

}  // namespace artsparse
