// Uniform tile decomposition of a tensor. The paper invokes blocks twice:
// as the practical remedy for linear-address overflow ("break large tensors
// into small blocks ... use local boundary of each block to perform the
// transform") and as what spatial hashes / R-trees index ("blocks of
// points" whose interiors a sparse organization represents). TileGrid is
// that decomposition: pure coordinate math, no storage.
#pragma once

#include "core/box.hpp"
#include "core/shape.hpp"

namespace artsparse {

class TileGrid {
 public:
  TileGrid() = default;

  /// Decomposes `tensor` into tiles of `tile` extents (the trailing tiles
  /// are clipped to the tensor boundary). Tile extents must be positive
  /// and no larger than the tensor's.
  TileGrid(Shape tensor, Shape tile);

  const Shape& tensor_shape() const { return tensor_; }
  const Shape& tile_shape() const { return tile_; }

  /// Number of tiles along each dimension (ceil division).
  const Shape& grid_shape() const { return grid_; }

  /// Total number of tiles.
  index_t tile_count() const { return grid_.element_count(); }

  /// Tile coordinates of the tile containing `point`.
  std::vector<index_t> tile_of(std::span<const index_t> point) const;

  /// Row-major tile id (stable naming for fragments and directories).
  index_t tile_id(std::span<const index_t> tile_coords) const;
  index_t tile_id_of(std::span<const index_t> point) const;

  /// Dense region covered by the tile, clipped to the tensor boundary.
  Box tile_box(std::span<const index_t> tile_coords) const;
  Box tile_box_by_id(index_t tile_id) const;

  /// Ids of all tiles overlapping `box`, in row-major order.
  std::vector<index_t> tiles_overlapping(const Box& box) const;

 private:
  Shape tensor_;
  Shape tile_;
  Shape grid_;
};

}  // namespace artsparse
