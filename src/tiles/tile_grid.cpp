#include "tiles/tile_grid.hpp"

#include <algorithm>

#include "core/coords.hpp"
#include "core/error.hpp"
#include "core/linearize.hpp"

namespace artsparse {

TileGrid::TileGrid(Shape tensor, Shape tile)
    : tensor_(std::move(tensor)), tile_(std::move(tile)) {
  detail::require(tensor_.rank() == tile_.rank(),
                  "tile rank does not match tensor rank");
  detail::require(tensor_.rank() > 0, "tile grid requires rank >= 1");
  std::vector<index_t> grid(tensor_.rank());
  for (std::size_t i = 0; i < tensor_.rank(); ++i) {
    detail::require(tile_.extent(i) <= tensor_.extent(i),
                    "tile extent exceeds tensor extent");
    grid[i] = (tensor_.extent(i) + tile_.extent(i) - 1) / tile_.extent(i);
  }
  grid_ = Shape(std::move(grid));
}

std::vector<index_t> TileGrid::tile_of(
    std::span<const index_t> point) const {
  detail::require(point.size() == tensor_.rank(),
                  "point rank does not match tensor rank");
  std::vector<index_t> tile(point.size());
  for (std::size_t i = 0; i < point.size(); ++i) {
    detail::require(point[i] < tensor_.extent(i),
                    "point outside tensor shape");
    tile[i] = point[i] / tile_.extent(i);
  }
  return tile;
}

index_t TileGrid::tile_id(std::span<const index_t> tile_coords) const {
  return linearize(tile_coords, grid_);
}

index_t TileGrid::tile_id_of(std::span<const index_t> point) const {
  return tile_id(tile_of(point));
}

Box TileGrid::tile_box(std::span<const index_t> tile_coords) const {
  detail::require(tile_coords.size() == grid_.rank(),
                  "tile rank does not match grid rank");
  std::vector<index_t> lo(grid_.rank());
  std::vector<index_t> hi(grid_.rank());
  for (std::size_t i = 0; i < grid_.rank(); ++i) {
    detail::require(tile_coords[i] < grid_.extent(i),
                    "tile coordinates outside grid");
    lo[i] = tile_coords[i] * tile_.extent(i);
    hi[i] = std::min(lo[i] + tile_.extent(i) - 1, tensor_.extent(i) - 1);
  }
  return Box(std::move(lo), std::move(hi));
}

Box TileGrid::tile_box_by_id(index_t tile_id) const {
  std::vector<index_t> tile(grid_.rank());
  delinearize(tile_id, grid_, tile);
  return tile_box(tile);
}

std::vector<index_t> TileGrid::tiles_overlapping(const Box& box) const {
  detail::require(box.rank() == tensor_.rank(),
                  "box rank does not match tensor rank");
  // Clip to the tensor, convert to a box in tile coordinates, enumerate.
  const Box clipped = box.intersect(Box::whole(tensor_));
  if (clipped.empty()) return {};
  std::vector<index_t> lo(grid_.rank());
  std::vector<index_t> hi(grid_.rank());
  for (std::size_t i = 0; i < grid_.rank(); ++i) {
    lo[i] = clipped.lo(i) / tile_.extent(i);
    hi[i] = clipped.hi(i) / tile_.extent(i);
  }
  CoordBuffer tiles(grid_.rank());
  enumerate_cells(Box(std::move(lo), std::move(hi)), tiles);
  std::vector<index_t> ids;
  ids.reserve(tiles.size());
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    ids.push_back(tile_id(tiles.point(i)));
  }
  return ids;
}

}  // namespace artsparse
