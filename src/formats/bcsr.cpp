#include "formats/bcsr.hpp"

#include <algorithm>
#include <bit>

#include "check/issues.hpp"
#include "core/linearize.hpp"
#include "core/sort.hpp"

namespace artsparse {

namespace {

/// Bit position of a cell inside its 8x8 block.
inline index_t bit_of(index_t row, index_t col) {
  return (row % BcsrFormat::kBlockRows) * BcsrFormat::kBlockCols +
         (col % BcsrFormat::kBlockCols);
}

}  // namespace

std::vector<std::size_t> BcsrFormat::build(const CoordBuffer& coords,
                                           const Shape& shape) {
  detail::require(coords.rank() == shape.rank(),
                  "coordinate rank does not match shape rank");
  shape_ = shape;
  block_row_ptr_.clear();
  block_col_.clear();
  block_bitmap_.clear();
  block_start_.clear();
  point_count_ = coords.size();

  if (coords.empty()) {
    local_box_ = Box();
    rows_ = 0;
    cols_ = 0;
    block_row_ptr_.assign(1, 0);
    return {};
  }

  local_box_ = Box::bounding(coords);
  const Flat2D flat = local_box_.shape().flatten_2d();
  rows_ = flat.rows;
  cols_ = flat.cols;
  const index_t n_block_cols = (cols_ + kBlockCols - 1) / kBlockCols;
  const index_t n_block_rows = (rows_ + kBlockRows - 1) / kBlockRows;
  // Sort key packs (block id, in-block bit): needs cells * 64 to fit.
  detail::require(local_box_.shape().element_count() <
                      (index_t{1} << 57),
                  "BCSR bounding box too large for packed sort keys");

  const std::size_t n = coords.size();
  std::vector<index_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    index_t row = 0;
    index_t col = 0;
    to_2d(coords.point(i), row, col);
    const index_t block =
        (row / kBlockRows) * n_block_cols + (col / kBlockCols);
    keys[i] = block * (kBlockRows * kBlockCols) + bit_of(row, col);
  }
  const std::vector<std::size_t> perm = sort_permutation(keys);

  // Walk sorted points, emitting one entry per distinct block.
  block_row_ptr_.assign(static_cast<std::size_t>(n_block_rows) + 1, 0);
  index_t prev_block = 0;
  bool have_block = false;
  for (std::size_t rank = 0; rank < n; ++rank) {
    const index_t key = keys[perm[rank]];
    const index_t block = key / (kBlockRows * kBlockCols);
    const index_t bit = key % (kBlockRows * kBlockCols);
    if (!have_block || block != prev_block) {
      detail::require(!have_block || block > prev_block,
                      "BCSR blocks out of order");
      block_col_.push_back(block % n_block_cols);
      block_bitmap_.push_back(0);
      block_start_.push_back(rank);
      ++block_row_ptr_[static_cast<std::size_t>(block / n_block_cols) + 1];
      prev_block = block;
      have_block = true;
    }
    detail::require((block_bitmap_.back() & (index_t{1} << bit)) == 0,
                    "duplicate point in BCSR build");
    block_bitmap_.back() |= index_t{1} << bit;
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(n_block_rows); ++r) {
    block_row_ptr_[r + 1] += block_row_ptr_[r];
  }

  return invert_permutation(perm);
}

bool BcsrFormat::to_2d(std::span<const index_t> point, index_t& row,
                       index_t& col) const {
  if (point.size() != shape_.rank() || local_box_.empty() ||
      !local_box_.contains(point)) {
    return false;
  }
  const index_t address = linearize_local(point, local_box_);
  row = address / cols_;
  col = address % cols_;
  return true;
}

std::size_t BcsrFormat::find_block(index_t block_row,
                                   index_t block_col) const {
  if (block_row_ptr_.empty() ||
      block_row + 1 >= block_row_ptr_.size()) {
    return kNotFound;
  }
  const std::size_t begin = block_row_ptr_[block_row];
  const std::size_t end = block_row_ptr_[block_row + 1];
  // Block columns within a block row are ascending: binary search.
  const auto first = block_col_.begin() + static_cast<std::ptrdiff_t>(begin);
  const auto last = block_col_.begin() + static_cast<std::ptrdiff_t>(end);
  const auto it = std::lower_bound(first, last, block_col);
  if (it == last || *it != block_col) return kNotFound;
  return static_cast<std::size_t>(it - block_col_.begin());
}

std::size_t BcsrFormat::lookup(std::span<const index_t> point) const {
  index_t row = 0;
  index_t col = 0;
  if (!to_2d(point, row, col)) return kNotFound;
  const std::size_t block =
      find_block(row / kBlockRows, col / kBlockCols);
  if (block == kNotFound) return kNotFound;
  const index_t bit = bit_of(row, col);
  const index_t bitmap = block_bitmap_[block];
  if ((bitmap & (index_t{1} << bit)) == 0) return kNotFound;
  // Slot = block start + number of occupied cells before this bit.
  const index_t below = bitmap & ((index_t{1} << bit) - 1);
  return block_start_[block] +
         static_cast<std::size_t>(std::popcount(below));
}

void BcsrFormat::scan_box(const Box& box, CoordBuffer& points,
                          std::vector<std::size_t>& slots) const {
  detail::require(box.rank() == shape_.rank(),
                  "scan box rank does not match tensor rank");
  if (local_box_.empty() || !local_box_.overlaps(box)) return;
  const Box clipped = box.intersect(local_box_);
  const index_t lo_addr = linearize_local(clipped.lo(), local_box_);
  const index_t hi_addr = linearize_local(clipped.hi(), local_box_);
  const index_t first_block_row = (lo_addr / cols_) / kBlockRows;
  const index_t last_block_row = (hi_addr / cols_) / kBlockRows;
  const index_t n_block_rows = block_row_ptr_.size() - 1;

  std::vector<index_t> point(shape_.rank());
  for (index_t br = first_block_row;
       br <= last_block_row && br < n_block_rows; ++br) {
    const std::size_t begin = block_row_ptr_[br];
    const std::size_t end = block_row_ptr_[br + 1];
    for (std::size_t b = begin; b < end; ++b) {
      index_t bitmap = block_bitmap_[b];
      std::size_t emitted = 0;
      while (bitmap != 0) {
        const int bit = std::countr_zero(bitmap);
        bitmap &= bitmap - 1;
        const index_t row = br * kBlockRows +
                            static_cast<index_t>(bit) / kBlockCols;
        const index_t col = block_col_[b] * kBlockCols +
                            static_cast<index_t>(bit) % kBlockCols;
        const std::size_t slot = block_start_[b] + emitted;
        ++emitted;
        if (row >= rows_ || col >= cols_) continue;  // defensive
        const index_t address = row * cols_ + col;
        if (address < lo_addr || address > hi_addr) continue;
        delinearize_local(address, local_box_, point);
        if (box.contains(point)) {
          points.append(point);
          slots.push_back(slot);
        }
      }
    }
  }
}

void BcsrFormat::save(BufferWriter& out) const {
  out.put_u64_vec(shape_.extents());
  out.put_u8(local_box_.empty() ? 0 : 1);
  if (!local_box_.empty()) {
    out.put_u64_vec(local_box_.lo());
    out.put_u64_vec(local_box_.hi());
  }
  out.put_u64(rows_);
  out.put_u64(cols_);
  out.put_u64(point_count_);
  out.put_u64_vec(block_row_ptr_);
  out.put_u64_vec(block_col_);
  out.put_u64_vec(block_bitmap_);
  out.put_u64_vec(block_start_);
}

void BcsrFormat::load(BufferReader& in) {
  shape_ = Shape(in.get_u64_vec());
  local_box_ = Box();
  if (in.get_u8() != 0) {
    auto lo = in.get_u64_vec();
    auto hi = in.get_u64_vec();
    local_box_ = Box(std::move(lo), std::move(hi));
  }
  rows_ = in.get_u64();
  cols_ = in.get_u64();
  point_count_ = in.get_u64();
  block_row_ptr_ = in.get_u64_vec();
  block_col_ = in.get_u64_vec();
  block_bitmap_ = in.get_u64_vec();
  block_start_ = in.get_u64_vec();
  // to_2d() divides addresses by cols_ and lookup() indexes
  // block_row_ptr_[row / 8 + 1]: the 2-D shape must tile the local box and
  // block_row_ptr_ must have one entry per block row plus one.
  if (local_box_.empty()) {
    detail::require(rows_ == 0 && cols_ == 0,
                    "BCSR 2-D shape without a local box");
  } else {
    detail::require(local_box_.rank() == shape_.rank(),
                    "BCSR local box rank does not match shape rank");
    const index_t cells = local_box_.shape().element_count();
    detail::require(cols_ > 0 && cols_ <= cells && rows_ == cells / cols_ &&
                        cells % cols_ == 0,
                    "BCSR 2-D shape does not tile the local box");
  }
  const index_t n_block_rows = (rows_ + kBlockRows - 1) / kBlockRows;
  detail::require(
      block_row_ptr_.size() == static_cast<std::size_t>(n_block_rows) + 1,
      "BCSR block_row_ptr length mismatch");
  detail::require(block_col_.size() == block_bitmap_.size() &&
                      block_col_.size() == block_start_.size(),
                  "BCSR block arrays length mismatch");
  detail::require(!block_row_ptr_.empty() &&
                      block_row_ptr_.back() == block_col_.size(),
                  "BCSR block_row_ptr does not cover blocks");
  for (std::size_t r = 1; r < block_row_ptr_.size(); ++r) {
    detail::require(block_row_ptr_[r - 1] <= block_row_ptr_[r],
                    "BCSR block_row_ptr not monotone");
  }
  std::size_t running = 0;
  for (std::size_t b = 0; b < block_bitmap_.size(); ++b) {
    detail::require(block_start_[b] == running,
                    "BCSR block_start inconsistent with bitmaps");
    running += static_cast<std::size_t>(std::popcount(block_bitmap_[b]));
  }
  detail::require(running == point_count_,
                  "BCSR bitmap popcount does not match point count");
}

void BcsrFormat::check_invariants(check::Issues& issues) const {
  if (rows_ == 0 && block_row_ptr_.empty() && block_col_.empty() &&
      block_bitmap_.empty() && block_start_.empty()) {
    return;  // default-constructed / empty index
  }
  const index_t n_block_rows = (rows_ + kBlockRows - 1) / kBlockRows;
  const index_t n_block_cols = (cols_ + kBlockCols - 1) / kBlockCols;
  if (block_row_ptr_.size() != static_cast<std::size_t>(n_block_rows) + 1 ||
      !std::is_sorted(block_row_ptr_.begin(), block_row_ptr_.end()) ||
      block_row_ptr_.back() != block_col_.size() ||
      block_col_.size() != block_bitmap_.size() ||
      block_col_.size() != block_start_.size()) {
    issues.add("bcsr.structure",
               "block_row_ptr does not partition the block arrays");
    return;
  }
  for (index_t br = 0; br < n_block_rows; ++br) {
    const std::size_t begin = block_row_ptr_[static_cast<std::size_t>(br)];
    const std::size_t end = block_row_ptr_[static_cast<std::size_t>(br) + 1];
    for (std::size_t b = begin; b < end; ++b) {
      if (block_col_[b] >= n_block_cols) {
        issues.add("bcsr.block_col.range",
                   "block " + std::to_string(b) + " column " +
                       std::to_string(block_col_[b]) + " >= " +
                       std::to_string(n_block_cols));
        return;
      }
      // find_block() binary-searches block columns within a block row.
      if (b > begin && block_col_[b - 1] >= block_col_[b]) {
        issues.add("bcsr.block_col.sorted",
                   "block row " + std::to_string(br) +
                       " columns are not strictly ascending");
        return;
      }
      if (block_bitmap_[b] == 0) {
        issues.add("bcsr.bitmap.empty",
                   "block " + std::to_string(b) + " stores no points");
        return;
      }
      // Edge blocks may overhang the 2-D shape; occupied cells must not.
      index_t bitmap = block_bitmap_[b];
      while (bitmap != 0) {
        const int bit = std::countr_zero(bitmap);
        bitmap &= bitmap - 1;
        const index_t row =
            br * kBlockRows + static_cast<index_t>(bit) / kBlockCols;
        const index_t col = block_col_[b] * kBlockCols +
                            static_cast<index_t>(bit) % kBlockCols;
        if (row >= rows_ || col >= cols_) {
          issues.add("bcsr.bitmap.in_shape",
                     "block " + std::to_string(b) + " occupies cell (" +
                         std::to_string(row) + ", " + std::to_string(col) +
                         ") outside " + std::to_string(rows_) + "x" +
                         std::to_string(cols_));
          return;
        }
      }
    }
  }
}

}  // namespace artsparse
