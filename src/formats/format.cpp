#include "formats/format.hpp"

namespace artsparse {

std::vector<std::size_t> SparseFormat::read(const CoordBuffer& queries) const {
  std::vector<std::size_t> slots;
  slots.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    slots.push_back(lookup(queries.point(i)));
  }
  return slots;
}

std::size_t SparseFormat::index_bytes() const {
  BufferWriter writer;
  save(writer);
  return writer.size();
}

Bytes serialize_format(const SparseFormat& format) {
  BufferWriter writer;
  format.save(writer);
  return writer.take();
}

}  // namespace artsparse
