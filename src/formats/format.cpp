#include "formats/format.hpp"

#include "check/issues.hpp"
#include "core/types.hpp"

namespace artsparse {

std::vector<std::size_t> SparseFormat::read(const CoordBuffer& queries) const {
  std::vector<std::size_t> slots;
  slots.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    slots.push_back(lookup(queries.point(i)));
  }
  return slots;
}

void SparseFormat::validate() const {
  check::Issues issues;
  check_invariants(issues);
  issues.raise_if_failed(to_string(kind()) + " index invalid");
}

std::size_t SparseFormat::index_bytes() const {
  BufferWriter writer;
  save(writer);
  return writer.size();
}

Bytes serialize_format(const SparseFormat& format) {
  BufferWriter writer;
  format.save(writer);
  return writer.take();
}

}  // namespace artsparse
