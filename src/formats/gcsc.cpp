#include "formats/gcsc.hpp"

#include <algorithm>

#include "check/issues.hpp"
#include "core/linearize.hpp"
#include "core/parallel.hpp"
#include "core/sort.hpp"
#include "core/timer.hpp"

namespace artsparse {

std::vector<std::size_t> GcscFormat::build(const CoordBuffer& coords,
                                           const Shape& shape) {
  detail::require(coords.rank() == shape.rank(),
                  "coordinate rank does not match shape rank");
  shape_ = shape;
  col_ptr_.clear();
  row_ind_.clear();
  build_sort_seconds_ = 0.0;

  if (coords.empty()) {
    local_box_ = Box();
    rows_ = 0;
    cols_ = 0;
    col_ptr_.assign(1, 0);
    return {};
  }

  // The smallest boundary extent becomes the *column* count (difference (1)
  // from GCSR++ in Section II-D); the product of the rest the row count.
  local_box_ = Box::bounding(coords);
  const Flat2D flat = local_box_.shape().flatten_2d();
  cols_ = flat.rows;  // smallest extent
  rows_ = flat.cols;  // product of the remaining extents

  const std::size_t n = coords.size();
  std::vector<index_t> row_of(n);
  std::vector<index_t> col_of(n);
  parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      index_t row = 0;
      index_t col = 0;
      to_2d(coords.point(i), row, col);
      row_of[i] = row;
      col_of[i] = col;
    }
  });

  // Difference (2): sort all points by their column index. On row-major
  // input this sort (and the value reorganization it induces) works against
  // the buffer layout, which is the slowdown Table III exposes. Columns are
  // bounded by the smallest boundary extent, so one stable counting pass
  // yields the permutation and col_ptr_ together — difference (3)'s classic
  // CSC packaging — with the same permutation as a stable comparison sort.
  WallTimer sort_timer;
  std::vector<std::size_t> perm;
  if (counting_sort_applicable(n, static_cast<std::size_t>(cols_))) {
    CountingSort counting =
        counting_sort_permutation(col_of, static_cast<std::size_t>(cols_));
    col_ptr_ = std::move(counting.ptr);
    perm = std::move(counting.perm);
  } else {
    perm = parallel_sort_permutation(col_of);
    col_ptr_ = histogram_prefix(col_of, static_cast<std::size_t>(cols_));
  }
  build_sort_seconds_ = sort_timer.seconds();

  row_ind_ = parallel_gather<index_t>(row_of, perm);
  return invert_permutation(perm);
}

bool GcscFormat::to_2d(std::span<const index_t> point, index_t& row,
                       index_t& col) const {
  if (point.size() != shape_.rank() || local_box_.empty() ||
      !local_box_.contains(point)) {
    return false;
  }
  const index_t address = linearize_local(point, local_box_);
  // 2-D shape is rows_ x cols_ with cols_ the smallest boundary extent.
  row = address / cols_;
  col = address % cols_;
  return true;
}

std::size_t GcscFormat::search_col(index_t col, index_t row) const {
  const std::size_t begin = col_ptr_[static_cast<std::size_t>(col)];
  const std::size_t end = col_ptr_[static_cast<std::size_t>(col) + 1];
  for (std::size_t i = begin; i < end; ++i) {
    if (row_ind_[i] == row) return i;
  }
  return kNotFound;
}

std::size_t GcscFormat::lookup(std::span<const index_t> point) const {
  index_t row = 0;
  index_t col = 0;
  if (!to_2d(point, row, col)) return kNotFound;
  return search_col(col, row);
}

std::vector<std::size_t> GcscFormat::read(const CoordBuffer& queries) const {
  // Difference (4): reads proceed column by column. Queries are transformed
  // in one pass, then resolved grouped by column so each column's range is
  // walked while hot.
  const std::size_t q = queries.size();
  std::vector<index_t> row_of(q);
  std::vector<index_t> col_of(q);
  std::vector<bool> in_box(q);
  for (std::size_t i = 0; i < q; ++i) {
    in_box[i] = to_2d(queries.point(i), row_of[i], col_of[i]);
  }
  std::vector<std::size_t> order(q);
  for (std::size_t i = 0; i < q; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return col_of[a] < col_of[b];
                   });
  std::vector<std::size_t> slots(q, kNotFound);
  for (std::size_t i : order) {
    if (in_box[i]) {
      slots[i] = search_col(col_of[i], row_of[i]);
    }
  }
  return slots;
}

void GcscFormat::scan_box(const Box& box, CoordBuffer& points,
                          std::vector<std::size_t>& slots) const {
  detail::require(box.rank() == shape_.rank(),
                  "scan box rank does not match tensor rank");
  if (local_box_.empty() || !local_box_.overlaps(box)) return;
  // Columns interleave through the address space (col = addr mod cols), so
  // no whole column can be pruned by an address window; every entry is
  // reconstructed and filtered by the window + box test. This asymmetry
  // with GCSR++'s row pruning mirrors their read-order difference.
  const Box clipped = box.intersect(local_box_);
  const index_t lo_addr = linearize_local(clipped.lo(), local_box_);
  const index_t hi_addr = linearize_local(clipped.hi(), local_box_);
  std::vector<index_t> point(shape_.rank());
  for (index_t col = 0; col < cols_; ++col) {
    const std::size_t begin = col_ptr_[static_cast<std::size_t>(col)];
    const std::size_t end = col_ptr_[static_cast<std::size_t>(col) + 1];
    for (std::size_t i = begin; i < end; ++i) {
      const index_t address = row_ind_[i] * cols_ + col;
      if (address < lo_addr || address > hi_addr) continue;
      delinearize_local(address, local_box_, point);
      if (box.contains(point)) {
        points.append(point);
        slots.push_back(i);
      }
    }
  }
}

void GcscFormat::save(BufferWriter& out) const {
  out.put_u64_vec(shape_.extents());
  out.put_u8(local_box_.empty() ? 0 : 1);
  if (!local_box_.empty()) {
    out.put_u64_vec(local_box_.lo());
    out.put_u64_vec(local_box_.hi());
  }
  out.put_u64(rows_);
  out.put_u64(cols_);
  out.put_u64_vec(col_ptr_);
  out.put_u64_vec(row_ind_);
}

void GcscFormat::load(BufferReader& in) {
  shape_ = Shape(in.get_u64_vec());
  local_box_ = Box();
  if (in.get_u8() != 0) {
    auto lo = in.get_u64_vec();
    auto hi = in.get_u64_vec();
    local_box_ = Box(std::move(lo), std::move(hi));
  }
  rows_ = in.get_u64();
  cols_ = in.get_u64();
  col_ptr_ = in.get_u64_vec();
  row_ind_ = in.get_u64_vec();
  // to_2d() computes addr % cols_ and indexes col_ptr_[col + 1]: the 2-D
  // shape must exactly tile the local box's address space.
  if (local_box_.empty()) {
    detail::require(rows_ == 0 && cols_ == 0,
                    "GCSC 2-D shape without a local box");
  } else {
    detail::require(local_box_.rank() == shape_.rank(),
                    "GCSC local box rank does not match shape rank");
    const index_t cells = local_box_.shape().element_count();
    detail::require(cols_ > 0 && cols_ <= cells && rows_ == cells / cols_ &&
                        cells % cols_ == 0,
                    "GCSC 2-D shape does not tile the local box");
  }
  detail::require(col_ptr_.size() == static_cast<std::size_t>(cols_) + 1,
                  "GCSC col_ptr length mismatch");
  detail::require(col_ptr_.empty() || col_ptr_.back() == row_ind_.size(),
                  "GCSC col_ptr does not cover row_ind");
  for (std::size_t c = 1; c < col_ptr_.size(); ++c) {
    detail::require(col_ptr_[c - 1] <= col_ptr_[c],
                    "GCSC col_ptr not monotone");
  }
}

void GcscFormat::check_invariants(check::Issues& issues) const {
  if (cols_ == 0 && col_ptr_.empty() && row_ind_.empty()) {
    return;  // default-constructed / empty index
  }
  if (col_ptr_.size() != static_cast<std::size_t>(cols_) + 1) {
    issues.add("gcsc.col_ptr.length",
               "col_ptr has " + std::to_string(col_ptr_.size()) +
                   " entries for " + std::to_string(cols_) + " columns");
    return;
  }
  for (std::size_t c = 1; c < col_ptr_.size(); ++c) {
    if (col_ptr_[c - 1] > col_ptr_[c]) {
      issues.add("gcsc.col_ptr.monotone",
                 "col_ptr decreases at column " + std::to_string(c));
      return;
    }
  }
  if (!col_ptr_.empty() && col_ptr_.back() != row_ind_.size()) {
    issues.add("gcsc.col_ptr.cover",
               "col_ptr ends at " + std::to_string(col_ptr_.back()) +
                   " but row_ind has " + std::to_string(row_ind_.size()) +
                   " entries");
    return;
  }
  for (std::size_t i = 0; i < row_ind_.size(); ++i) {
    if (row_ind_[i] >= rows_) {
      issues.add("gcsc.row_ind.range",
                 "row_ind[" + std::to_string(i) + "] = " +
                     std::to_string(row_ind_[i]) + " >= rows " +
                     std::to_string(rows_));
      break;
    }
  }
}

}  // namespace artsparse
