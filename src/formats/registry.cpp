#include "formats/registry.hpp"

#include "check/contracts.hpp"
#include "formats/bcsr.hpp"
#include "formats/coo.hpp"
#include "formats/csf.hpp"
#include "formats/gcsc.hpp"
#include "formats/gcsr.hpp"
#include "formats/linear.hpp"
#include "formats/sorted_coo.hpp"

namespace artsparse {

std::unique_ptr<SparseFormat> make_format(OrgKind kind) {
  switch (kind) {
    case OrgKind::kCoo:
      return std::make_unique<CooFormat>();
    case OrgKind::kLinear:
      return std::make_unique<LinearFormat>();
    case OrgKind::kGcsr:
      return std::make_unique<GcsrFormat>();
    case OrgKind::kGcsc:
      return std::make_unique<GcscFormat>();
    case OrgKind::kCsf:
      return std::make_unique<CsfFormat>();
    case OrgKind::kSortedCoo:
      return std::make_unique<SortedCooFormat>();
    case OrgKind::kBcsr:
      return std::make_unique<BcsrFormat>();
  }
  throw FormatError("unknown OrgKind value");
}

std::unique_ptr<SparseFormat> make_format(const std::string& name) {
  return make_format(org_kind_from_string(name));
}

std::unique_ptr<SparseFormat> load_format(OrgKind kind,
                                          std::span<const std::byte> bytes) {
  auto format = make_format(kind);
  BufferReader reader(bytes);
  format->load(reader);
  // load() enforces only the cheap memory-safety invariants; paranoid mode
  // (ARTSPARSE_PARANOID) adds the full O(n) structural pass on every load.
  if (check::paranoid_enabled()) {
    format->validate();
  }
  return format;
}

std::vector<OrgKind> all_org_kinds() {
  return {OrgKind::kCoo,       OrgKind::kLinear, OrgKind::kGcsr,
          OrgKind::kGcsc,      OrgKind::kCsf,    OrgKind::kSortedCoo,
          OrgKind::kBcsr};
}

}  // namespace artsparse
