// Block-CSR — the "block CSR" variant the paper's Related Work cites
// ([30], Buluç et al.) as the classic refinement of CSR, generalized to
// d dimensions with the same d-D -> 2-D mapping as GCSR++ and packed with
// per-block occupancy bitmaps. Extension format (not part of the paper's
// evaluated five), clearly marked as such.
//
// Layout: the 2-D mapping of the local boundary is partitioned into
// kBlockRows x kBlockCols = 8x8 blocks. Non-empty blocks are stored in CSR
// order over block rows:
//   block_row_ptr : #blockrows + 1
//   block_col     : one block-column id per non-empty block
//   block_bitmap  : one u64 per block, bit (r%8)*8 + (c%8) set iff occupied
//   block_start   : running slot offset per block (prefix popcounts)
// A point's slot is its block's start plus the popcount of the lower
// bitmap bits — so values stay exactly n slots (no zero padding), unlike
// textbook BCSR, while the index shrinks to ~1 u64 per *block*: on
// clustered data (MSP) that is up to 64x smaller than LINEAR's word per
// point.
//
// Build O(n log n); read O(log blocks-per-row + O(1) popcount) per query;
// space O(blocks + rows/8).
#pragma once

#include "formats/format.hpp"

namespace artsparse {

class BcsrFormat final : public SparseFormat {
 public:
  static constexpr index_t kBlockRows = 8;
  static constexpr index_t kBlockCols = 8;

  BcsrFormat() = default;

  OrgKind kind() const override { return OrgKind::kBcsr; }

  std::vector<std::size_t> build(const CoordBuffer& coords,
                                 const Shape& shape) override;

  std::size_t lookup(std::span<const index_t> point) const override;

  void scan_box(const Box& box, CoordBuffer& points,
                std::vector<std::size_t>& slots) const override;

  void save(BufferWriter& out) const override;
  void load(BufferReader& in) override;

  void check_invariants(check::Issues& issues) const override;

  std::size_t point_count() const override { return point_count_; }
  const Shape& tensor_shape() const override { return shape_; }

  /// Structure accessors (tests).
  std::size_t block_count() const { return block_col_.size(); }
  std::span<const index_t> block_row_ptr() const { return block_row_ptr_; }
  std::span<const index_t> block_col() const { return block_col_; }
  std::span<const index_t> block_bitmap() const { return block_bitmap_; }
  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }

 private:
  /// Original point -> (2-D row, col) within the local boundary (the
  /// GCSR++ mapping); false when outside the boundary.
  bool to_2d(std::span<const index_t> point, index_t& row,
             index_t& col) const;

  /// Finds the block (block_row, block_col); returns its index in
  /// block_col_/bitmap_, or kNotFound.
  std::size_t find_block(index_t block_row, index_t block_col) const;

  Shape shape_;
  Box local_box_;
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::size_t point_count_ = 0;
  std::vector<index_t> block_row_ptr_;  ///< #blockrows + 1
  std::vector<index_t> block_col_;      ///< per non-empty block
  std::vector<index_t> block_bitmap_;   ///< per non-empty block
  std::vector<index_t> block_start_;    ///< per block: first slot
};

}  // namespace artsparse
