// SparseFormat: the common interface of the five storage organizations the
// paper studies (COO, LINEAR, GCSR++, GCSC++, CSF) plus the sorted-COO
// variant. A format owns only the *index* side of a fragment; values live in
// a parallel buffer ordered by the `map` permutation that build() returns
// (Algorithm 3: "reorganize b_data based on map if necessary").
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "core/box.hpp"
#include "core/coords.hpp"
#include "core/shape.hpp"
#include "core/types.hpp"
#include "storage/serializer.hpp"

namespace artsparse {

namespace check {
class Issues;  // check/issues.hpp
}

/// Sentinel slot for "point not present".
inline constexpr std::size_t kNotFound = std::numeric_limits<std::size_t>::max();

/// Abstract storage organization.
///
/// Lifecycle: construct empty -> build() from coordinates (write path), or
/// construct empty -> load() from a serialized index (read path). After
/// either, lookup()/read() resolve coordinates to value slots.
class SparseFormat {
 public:
  virtual ~SparseFormat() = default;

  SparseFormat(const SparseFormat&) = delete;
  SparseFormat& operator=(const SparseFormat&) = delete;

  virtual OrgKind kind() const = 0;

  /// Builds the organization from `coords`, which must all lie inside
  /// `shape` (the fragment's dense shape). Returns the paper's `map`
  /// vector: map[i] is the slot the i-th input point's value must occupy in
  /// the reorganized value buffer. Formats that do not sort (COO, LINEAR)
  /// return the identity.
  virtual std::vector<std::size_t> build(const CoordBuffer& coords,
                                         const Shape& shape) = 0;

  /// Resolves one coordinate to its value slot, or kNotFound. This is the
  /// per-point search of the paper's READ algorithms (linear scan for
  /// COO/LINEAR, row/column search for GCSR++/GCSC++, root-to-leaf descent
  /// for CSF).
  virtual std::size_t lookup(std::span<const index_t> point) const = 0;

  /// Bulk read: slot (or kNotFound) for every query point. The default
  /// loops lookup(); formats whose read algorithm amortizes work across
  /// queries (e.g. GCSR++'s one-pass coordinate transform) override it.
  virtual std::vector<std::size_t> read(const CoordBuffer& queries) const;

  /// Native region scan: appends every *stored* point lying inside `box`
  /// (its coordinates to `points`, its value slot to `slots`), in
  /// format-dependent order. Unlike read(), which pays one existence query
  /// per region *cell* (Algorithm 3's access pattern), a scan touches only
  /// stored entries — the optimization a production store ships for sparse
  /// regions. Implementations prune where their structure allows (CSF
  /// prunes whole subtrees, GCSR++/GCSC++ whole rows/columns).
  virtual void scan_box(const Box& box, CoordBuffer& points,
                        std::vector<std::size_t>& slots) const = 0;

  /// Serializes the index (the concatenated buffer `b` of Algorithms 1-2,
  /// plus whatever transform state reads need). Self-contained: load()
  /// on a fresh instance fully reconstructs the format.
  virtual void save(BufferWriter& out) const = 0;
  virtual void load(BufferReader& in) = 0;

  /// Deep structural self-check: appends one Issue per violated invariant
  /// (monotone offsets, sorted fibers, in-shape coordinates, consistent
  /// fiber trees, ...). O(n) or worse — run by paranoid loads and by
  /// `artsparse check`, not on the default hot path. A format that passes
  /// build() or a trusted load() must come out clean.
  virtual void check_invariants(check::Issues& issues) const = 0;

  /// Runs check_invariants() and throws FormatError when anything failed.
  void validate() const;

  /// Size in bytes of the serialized index — the space cost the paper's
  /// Fig. 4 reports (values excluded; they are constant across formats).
  std::size_t index_bytes() const;

  /// Number of stored points.
  virtual std::size_t point_count() const = 0;

  /// Dense shape the format was built against.
  virtual const Shape& tensor_shape() const = 0;

  /// Wall seconds the most recent build() spent deriving its sort
  /// permutation (key precompute + sort / counting pass); 0 for formats
  /// that do not sort or before any build. Feeds WriteBreakdown.build_sort
  /// so Table III can split Build into its parallelizable sort stage and
  /// the serial structure assembly.
  double last_build_sort_seconds() const { return build_sort_seconds_; }

 protected:
  SparseFormat() = default;

  /// Set by sorting formats' build() around their permutation stage.
  double build_sort_seconds_ = 0.0;
};

/// Convenience: serializes the format into a fresh byte buffer.
Bytes serialize_format(const SparseFormat& format);

}  // namespace artsparse
