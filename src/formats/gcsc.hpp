// GCSC++ — Generalized Compressed Sparse Column (Section II-D).
//
// The column-wise twin of GCSR++: the same local-boundary extraction and
// row-major linearization, but the smallest extent of the boundary becomes
// the *column* count (the product of the rest the row count), points are
// sorted by column index, and the result is packaged as classic CSC
// (col_ptr + row_ind). Reads proceed column by column.
//
// Complexities match GCSR++: build O(n log n + 2n), read
// O(n_read * n / min(m) + n), space O(n + min(m)). The paper's experiments
// show GCSC++ building slower than GCSR++ on row-major input because the
// column sort and the value reorganization fight the input layout — that
// effect falls out of this implementation naturally.
#pragma once

#include "formats/format.hpp"

namespace artsparse {

class GcscFormat final : public SparseFormat {
 public:
  GcscFormat() = default;

  OrgKind kind() const override { return OrgKind::kGcsc; }

  std::vector<std::size_t> build(const CoordBuffer& coords,
                                 const Shape& shape) override;

  std::size_t lookup(std::span<const index_t> point) const override;

  /// Column-by-column batch read (GCSC++'s preferred access order).
  std::vector<std::size_t> read(const CoordBuffer& queries) const override;

  void scan_box(const Box& box, CoordBuffer& points,
                std::vector<std::size_t>& slots) const override;

  void save(BufferWriter& out) const override;
  void load(BufferReader& in) override;

  void check_invariants(check::Issues& issues) const override;

  std::size_t point_count() const override { return row_ind_.size(); }
  const Shape& tensor_shape() const override { return shape_; }

  std::span<const index_t> col_ptr() const { return col_ptr_; }
  std::span<const index_t> row_ind() const { return row_ind_; }
  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  const Box& local_box() const { return local_box_; }

 private:
  bool to_2d(std::span<const index_t> point, index_t& row,
             index_t& col) const;
  std::size_t search_col(index_t col, index_t row) const;

  Shape shape_;
  Box local_box_;
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> col_ptr_;  ///< cols_ + 1 entries
  std::vector<index_t> row_ind_;  ///< one entry per point, grouped by column
};

}  // namespace artsparse
