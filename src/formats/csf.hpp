// CSF — Compressed Sparse Fiber tree (Algorithm 2, after SPLATT).
//
// A d-level tree: level i holds the distinct dimension-i coordinates of each
// fiber, so duplicated coordinate prefixes are stored once. Dimensions are
// reordered ascending by local-boundary extent before building ("sort s_l in
// ascending order") to maximize prefix sharing at the root and shrink the
// upper levels. Points are then sorted lexicographically in the permuted
// dimension order.
//
// Structures follow the paper: nfibs[level] (node count per level),
// fids[level][...] (coordinate values per level), fptr[level][...] (child
// ranges from level to level+1, nfibs[level] + 1 entries).
//
// Build O(n log n + n*d); read descends root-to-leaf per query (binary
// search inside each fiber range); space O(n + d) ... O(n * d) depending on
// prefix duplication.
#pragma once

#include "formats/format.hpp"

namespace artsparse {

class CsfFormat final : public SparseFormat {
 public:
  CsfFormat() = default;

  OrgKind kind() const override { return OrgKind::kCsf; }

  std::vector<std::size_t> build(const CoordBuffer& coords,
                                 const Shape& shape) override;

  std::size_t lookup(std::span<const index_t> point) const override;

  void scan_box(const Box& box, CoordBuffer& points,
                std::vector<std::size_t>& slots) const override;

  void save(BufferWriter& out) const override;
  void load(BufferReader& in) override;

  void check_invariants(check::Issues& issues) const override;

  std::size_t point_count() const override {
    return fids_.empty() ? 0 : fids_.back().size();
  }
  const Shape& tensor_shape() const override { return shape_; }

  /// Tree accessors (tests, fig1 walkthrough).
  std::span<const index_t> nfibs() const { return nfibs_; }
  const std::vector<std::vector<index_t>>& fids() const { return fids_; }
  const std::vector<std::vector<index_t>>& fptr() const { return fptr_; }
  std::span<const std::size_t> dim_order() const { return dim_order_; }

  /// Total index words stored (sum of nfibs + fptr lengths); the quantity
  /// whose spread between O(n+d) and O(n*d) drives CSF's Fig.-4 variance.
  std::size_t index_words() const;

 private:
  Shape shape_;
  /// Permutation of dimensions: dim_order_[level] = original dimension
  /// stored at that tree level (ascending local extent).
  std::vector<std::size_t> dim_order_;
  std::vector<index_t> nfibs_;               ///< d entries
  std::vector<std::vector<index_t>> fids_;   ///< d levels
  std::vector<std::vector<index_t>> fptr_;   ///< d-1 levels
};

}  // namespace artsparse
