#include "formats/gcsr.hpp"

#include "check/issues.hpp"
#include "core/linearize.hpp"
#include "core/parallel.hpp"
#include "core/sort.hpp"
#include "core/timer.hpp"

namespace artsparse {

std::vector<std::size_t> GcsrFormat::build(const CoordBuffer& coords,
                                           const Shape& shape) {
  detail::require(coords.rank() == shape.rank(),
                  "coordinate rank does not match shape rank");
  shape_ = shape;
  row_ptr_.clear();
  col_ind_.clear();
  build_sort_seconds_ = 0.0;

  if (coords.empty()) {
    local_box_ = Box();
    rows_ = 0;
    cols_ = 0;
    row_ptr_.assign(1, 0);
    return {};
  }

  // Algorithm 1 lines 5-6: extract the local boundary, pick its smallest
  // extent as the row count, the product of the rest as the column count.
  local_box_ = Box::bounding(coords);
  const Flat2D flat = local_box_.shape().flatten_2d();
  rows_ = flat.rows;
  cols_ = flat.cols;

  // Lines 7-11: transform each point to its 2-D coordinates; every point
  // writes only its own slots, so the transform fans out across workers.
  const std::size_t n = coords.size();
  std::vector<index_t> row_of(n);
  std::vector<index_t> col_of(n);
  parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      index_t row = 0;
      index_t col = 0;
      to_2d(coords.point(i), row, col);
      row_of[i] = row;
      col_of[i] = col;
    }
  });

  // Lines 12-13 fused: rows are bounded by the smallest boundary extent,
  // so one stable counting pass yields the permutation *and* row_ptr_ in
  // O(n + rows) — no comparison sort, no second pass over sorted data.
  // Counting sort is stable, so the permutation is identical to the
  // comparison path's for any thread count (input order within a row is
  // what keeps row searches linear scans).
  WallTimer sort_timer;
  std::vector<std::size_t> perm;
  if (counting_sort_applicable(n, static_cast<std::size_t>(rows_))) {
    CountingSort counting =
        counting_sort_permutation(row_of, static_cast<std::size_t>(rows_));
    row_ptr_ = std::move(counting.ptr);
    perm = std::move(counting.perm);
  } else {
    perm = parallel_sort_permutation(row_of);
    row_ptr_ = histogram_prefix(row_of, static_cast<std::size_t>(rows_));
  }
  build_sort_seconds_ = sort_timer.seconds();

  col_ind_ = parallel_gather<index_t>(col_of, perm);
  return invert_permutation(perm);
}

bool GcsrFormat::to_2d(std::span<const index_t> point, index_t& row,
                       index_t& col) const {
  if (point.size() != shape_.rank() || local_box_.empty() ||
      !local_box_.contains(point)) {
    return false;
  }
  // Lines 8-9: row-major linearize within the local boundary, then
  // reverse-transform the address into the 2-D shape.
  const index_t address = linearize_local(point, local_box_);
  row = address / cols_;
  col = address % cols_;
  return true;
}

std::size_t GcsrFormat::search_row(index_t row, index_t col) const {
  const std::size_t begin = row_ptr_[static_cast<std::size_t>(row)];
  const std::size_t end = row_ptr_[static_cast<std::size_t>(row) + 1];
  for (std::size_t i = begin; i < end; ++i) {
    if (col_ind_[i] == col) return i;
  }
  return kNotFound;
}

std::size_t GcsrFormat::lookup(std::span<const index_t> point) const {
  index_t row = 0;
  index_t col = 0;
  if (!to_2d(point, row, col)) return kNotFound;
  return search_row(row, col);
}

std::vector<std::size_t> GcsrFormat::read(const CoordBuffer& queries) const {
  // GCSR++_READ: one pass converts every query to 2-D (the "+ n" term of
  // the read complexity), then each query scans its row.
  const std::size_t q = queries.size();
  std::vector<index_t> row_of(q);
  std::vector<index_t> col_of(q);
  std::vector<bool> in_box(q);
  for (std::size_t i = 0; i < q; ++i) {
    in_box[i] = to_2d(queries.point(i), row_of[i], col_of[i]);
  }
  std::vector<std::size_t> slots(q, kNotFound);
  // Each query touches only its own slot: safe to chunk across workers.
  parallel_for(0, q, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (in_box[i]) {
        slots[i] = search_row(row_of[i], col_of[i]);
      }
    }
  });
  return slots;
}

void GcsrFormat::scan_box(const Box& box, CoordBuffer& points,
                          std::vector<std::size_t>& slots) const {
  detail::require(box.rank() == shape_.rank(),
                  "scan box rank does not match tensor rank");
  if (local_box_.empty() || !local_box_.overlaps(box)) return;
  // Rows partition the local address space into contiguous [r*cols,
  // (r+1)*cols) windows, so only rows intersecting the box's address range
  // need visiting; each surviving entry is reconstructed and tested.
  const Box clipped = box.intersect(local_box_);
  const index_t lo_addr = linearize_local(clipped.lo(), local_box_);
  const index_t hi_addr = linearize_local(clipped.hi(), local_box_);
  const index_t first_row = lo_addr / cols_;
  const index_t last_row = hi_addr / cols_;
  std::vector<index_t> point(shape_.rank());
  for (index_t row = first_row; row <= last_row && row < rows_; ++row) {
    const std::size_t begin = row_ptr_[static_cast<std::size_t>(row)];
    const std::size_t end = row_ptr_[static_cast<std::size_t>(row) + 1];
    for (std::size_t i = begin; i < end; ++i) {
      const index_t address = row * cols_ + col_ind_[i];
      if (address < lo_addr || address > hi_addr) continue;
      delinearize_local(address, local_box_, point);
      if (box.contains(point)) {
        points.append(point);
        slots.push_back(i);
      }
    }
  }
}

void GcsrFormat::save(BufferWriter& out) const {
  out.put_u64_vec(shape_.extents());
  out.put_u8(local_box_.empty() ? 0 : 1);
  if (!local_box_.empty()) {
    out.put_u64_vec(local_box_.lo());
    out.put_u64_vec(local_box_.hi());
  }
  out.put_u64(rows_);
  out.put_u64(cols_);
  out.put_u64_vec(row_ptr_);
  out.put_u64_vec(col_ind_);
}

void GcsrFormat::load(BufferReader& in) {
  shape_ = Shape(in.get_u64_vec());
  local_box_ = Box();
  if (in.get_u8() != 0) {
    auto lo = in.get_u64_vec();
    auto hi = in.get_u64_vec();
    local_box_ = Box(std::move(lo), std::move(hi));
  }
  rows_ = in.get_u64();
  cols_ = in.get_u64();
  row_ptr_ = in.get_u64_vec();
  col_ind_ = in.get_u64_vec();
  // to_2d() divides addresses by cols_ and indexes row_ptr_[row + 1], so
  // the 2-D shape must exactly tile the local box's address space.
  if (local_box_.empty()) {
    detail::require(rows_ == 0 && cols_ == 0,
                    "GCSR 2-D shape without a local box");
  } else {
    detail::require(local_box_.rank() == shape_.rank(),
                    "GCSR local box rank does not match shape rank");
    const index_t cells = local_box_.shape().element_count();
    detail::require(cols_ > 0 && cols_ <= cells && rows_ == cells / cols_ &&
                        cells % cols_ == 0,
                    "GCSR 2-D shape does not tile the local box");
  }
  detail::require(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1,
                  "GCSR row_ptr length mismatch");
  detail::require(row_ptr_.empty() || row_ptr_.back() == col_ind_.size(),
                  "GCSR row_ptr does not cover col_ind");
  for (std::size_t r = 1; r < row_ptr_.size(); ++r) {
    detail::require(row_ptr_[r - 1] <= row_ptr_[r],
                    "GCSR row_ptr not monotone");
  }
}

void GcsrFormat::check_invariants(check::Issues& issues) const {
  if (rows_ == 0 && row_ptr_.empty() && col_ind_.empty()) {
    return;  // default-constructed / empty index
  }
  if (row_ptr_.size() != static_cast<std::size_t>(rows_) + 1) {
    issues.add("gcsr.row_ptr.length",
               "row_ptr has " + std::to_string(row_ptr_.size()) +
                   " entries for " + std::to_string(rows_) + " rows");
    return;
  }
  for (std::size_t r = 1; r < row_ptr_.size(); ++r) {
    if (row_ptr_[r - 1] > row_ptr_[r]) {
      issues.add("gcsr.row_ptr.monotone",
                 "row_ptr decreases at row " + std::to_string(r));
      return;
    }
  }
  if (!row_ptr_.empty() && row_ptr_.back() != col_ind_.size()) {
    issues.add("gcsr.row_ptr.cover",
               "row_ptr ends at " + std::to_string(row_ptr_.back()) +
                   " but col_ind has " + std::to_string(col_ind_.size()) +
                   " entries");
    return;
  }
  for (std::size_t i = 0; i < col_ind_.size(); ++i) {
    if (col_ind_[i] >= cols_) {
      issues.add("gcsr.col_ind.range",
                 "col_ind[" + std::to_string(i) + "] = " +
                     std::to_string(col_ind_[i]) + " >= cols " +
                     std::to_string(cols_));
      break;
    }
  }
}

}  // namespace artsparse
