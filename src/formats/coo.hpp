// COO — the paper's baseline organization (Section II-A).
//
// The input is assumed to be an unsorted 1D coordinate vector, so building
// COO is O(1) beyond buffering: the coordinate buffer and the value buffer
// are serialized independently and concatenated into a single fragment.
// Reads pay for that thrift: each query scans the whole list, giving the
// O(n * n_read) read bound of Table I. Space is O(n * d).
#pragma once

#include "formats/format.hpp"

namespace artsparse {

class CooFormat final : public SparseFormat {
 public:
  CooFormat() = default;

  OrgKind kind() const override { return OrgKind::kCoo; }

  std::vector<std::size_t> build(const CoordBuffer& coords,
                                 const Shape& shape) override;

  std::size_t lookup(std::span<const index_t> point) const override;

  void scan_box(const Box& box, CoordBuffer& points,
                std::vector<std::size_t>& slots) const override;

  void save(BufferWriter& out) const override;
  void load(BufferReader& in) override;

  void check_invariants(check::Issues& issues) const override;

  std::size_t point_count() const override { return coords_.size(); }
  const Shape& tensor_shape() const override { return shape_; }

  /// Stored coordinates, in input order (COO never reorders).
  const CoordBuffer& coords() const { return coords_; }

 private:
  Shape shape_;
  CoordBuffer coords_;
};

}  // namespace artsparse
