// GCSR++ — Generalized Compressed Sparse Row (Algorithm 1).
//
// Maps a d-dimensional tensor into a 2-D matrix: the local bounding box of
// the points is extracted ("s_l"), its smallest extent becomes the row count
// and the product of the remaining extents the column count. Each point is
// row-major linearized within the box, re-interpreted as (row, column) in
// the 2-D shape, sorted by row, and packaged as classic CSR (row_ptr +
// col_ind).
//
// Build O(n log n + 2n); read O(n_read * n / min(m) + n) — each query pays a
// linear scan of its row, and the whole batch pays one coordinate-transform
// pass; space O(n + min(m)).
#pragma once

#include "formats/format.hpp"

namespace artsparse {

class GcsrFormat final : public SparseFormat {
 public:
  GcsrFormat() = default;

  OrgKind kind() const override { return OrgKind::kGcsr; }

  std::vector<std::size_t> build(const CoordBuffer& coords,
                                 const Shape& shape) override;

  std::size_t lookup(std::span<const index_t> point) const override;

  /// Algorithm 1's GCSR++_READ: transforms all queries to 2-D in one pass,
  /// then searches row by row.
  std::vector<std::size_t> read(const CoordBuffer& queries) const override;

  void scan_box(const Box& box, CoordBuffer& points,
                std::vector<std::size_t>& slots) const override;

  void save(BufferWriter& out) const override;
  void load(BufferReader& in) override;

  void check_invariants(check::Issues& issues) const override;

  std::size_t point_count() const override { return col_ind_.size(); }
  const Shape& tensor_shape() const override { return shape_; }

  /// CSR structure accessors (for tests and the fig1 walkthrough).
  std::span<const index_t> row_ptr() const { return row_ptr_; }
  std::span<const index_t> col_ind() const { return col_ind_; }
  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  const Box& local_box() const { return local_box_; }

 private:
  /// Maps an original coordinate to (row, col) in the 2-D shape; false when
  /// the point lies outside the local bounding box (guaranteed miss).
  bool to_2d(std::span<const index_t> point, index_t& row,
             index_t& col) const;

  /// Scans row `row` for `col`; returns the slot or kNotFound.
  std::size_t search_row(index_t row, index_t col) const;

  Shape shape_;
  Box local_box_;
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_ptr_;  ///< rows_ + 1 entries
  std::vector<index_t> col_ind_;  ///< one entry per point, grouped by row
};

}  // namespace artsparse
