#include "formats/coo.hpp"

#include <algorithm>
#include <numeric>

#include "check/issues.hpp"

namespace artsparse {

std::vector<std::size_t> CooFormat::build(const CoordBuffer& coords,
                                          const Shape& shape) {
  detail::require(coords.rank() == shape.rank(),
                  "coordinate rank does not match shape rank");
  shape_ = shape;
  coords_ = coords;
  // COO keeps input order: the map is the identity permutation.
  std::vector<std::size_t> map(coords.size());
  std::iota(map.begin(), map.end(), std::size_t{0});
  return map;
}

std::size_t CooFormat::lookup(std::span<const index_t> point) const {
  // Unsorted list: the only option is a full scan (O(n) per query).
  const std::size_t d = coords_.rank();
  if (point.size() != d) return kNotFound;
  for (std::size_t i = 0; i < coords_.size(); ++i) {
    const auto p = coords_.point(i);
    if (std::equal(p.begin(), p.end(), point.begin())) {
      return i;
    }
  }
  return kNotFound;
}

void CooFormat::scan_box(const Box& box, CoordBuffer& points,
                         std::vector<std::size_t>& slots) const {
  detail::require(box.rank() == shape_.rank(),
                  "scan box rank does not match tensor rank");
  // Unsorted list: every stored point must be tested.
  for (std::size_t i = 0; i < coords_.size(); ++i) {
    const auto p = coords_.point(i);
    if (box.contains(p)) {
      points.append(p);
      slots.push_back(i);
    }
  }
}

void CooFormat::save(BufferWriter& out) const {
  out.put_u64_vec(shape_.extents());
  out.put_u64(coords_.rank());
  out.put_u64_vec(coords_.flat());
}

void CooFormat::load(BufferReader& in) {
  shape_ = Shape(in.get_u64_vec());
  const std::size_t rank = in.get_u64();
  auto flat = in.get_u64_vec();
  detail::require(rank == 0 ? flat.empty() : rank == shape_.rank(),
                  "COO coordinate rank does not match shape rank");
  coords_ = rank == 0 ? CoordBuffer() : CoordBuffer(rank, std::move(flat));
}

void CooFormat::check_invariants(check::Issues& issues) const {
  if (!coords_.empty() && coords_.rank() != shape_.rank()) {
    issues.add("coo.rank",
               "coordinate rank " + std::to_string(coords_.rank()) +
                   " != shape rank " + std::to_string(shape_.rank()));
    return;  // per-coordinate checks would index the wrong extents
  }
  for (std::size_t i = 0; i < coords_.size(); ++i) {
    const auto p = coords_.point(i);
    for (std::size_t dim = 0; dim < p.size(); ++dim) {
      if (p[dim] >= shape_.extent(dim)) {
        issues.add("coo.coords.in_shape",
                   "point " + std::to_string(i) + " dim " +
                       std::to_string(dim) + " coordinate " +
                       std::to_string(p[dim]) + " >= extent " +
                       std::to_string(shape_.extent(dim)));
        return;  // one witness is enough; avoid flooding on bulk corruption
      }
    }
  }
}

}  // namespace artsparse
