#include "formats/sorted_coo.hpp"

#include <algorithm>

#include "check/issues.hpp"
#include "core/linearize.hpp"
#include "core/sort.hpp"
#include "core/timer.hpp"

namespace artsparse {

std::vector<std::size_t> SortedCooFormat::build(const CoordBuffer& coords,
                                                const Shape& shape) {
  detail::require(coords.rank() == shape.rank(),
                  "coordinate rank does not match shape rank");
  shape_ = shape;
  build_sort_seconds_ = 0.0;
  // Lexicographic coordinate order equals ascending row-major address order,
  // so sorting by linear address gives the binary-searchable layout.
  WallTimer sort_timer;
  const std::vector<index_t> addresses = linearize_all(coords, shape);
  const std::vector<std::size_t> perm = parallel_sort_permutation(addresses);
  build_sort_seconds_ = sort_timer.seconds();
  coords_ = coords.permuted(perm);
  return invert_permutation(perm);
}

std::size_t SortedCooFormat::lookup(std::span<const index_t> point) const {
  const std::size_t d = coords_.rank();
  if (point.size() != d || coords_.empty()) return kNotFound;
  // Binary search on lexicographic coordinate order.
  std::size_t lo = 0;
  std::size_t hi = coords_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const auto p = coords_.point(mid);
    if (std::lexicographical_compare(p.begin(), p.end(), point.begin(),
                                     point.end())) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < coords_.size()) {
    const auto p = coords_.point(lo);
    if (std::equal(p.begin(), p.end(), point.begin())) return lo;
  }
  return kNotFound;
}

void SortedCooFormat::scan_box(const Box& box, CoordBuffer& points,
                               std::vector<std::size_t>& slots) const {
  detail::require(box.rank() == shape_.rank(),
                  "scan box rank does not match tensor rank");
  if (coords_.empty()) return;
  // Lexicographic order lets the scan start at the box's smallest corner
  // and stop once points lexicographically exceed the largest corner.
  const auto lo = box.lo();
  const auto hi = box.hi();
  std::size_t first = 0;
  std::size_t last = coords_.size();
  while (first < last) {
    const std::size_t mid = first + (last - first) / 2;
    const auto p = coords_.point(mid);
    if (std::lexicographical_compare(p.begin(), p.end(), lo.begin(),
                                     lo.end())) {
      first = mid + 1;
    } else {
      last = mid;
    }
  }
  for (std::size_t i = first; i < coords_.size(); ++i) {
    const auto p = coords_.point(i);
    if (std::lexicographical_compare(hi.begin(), hi.end(), p.begin(),
                                     p.end())) {
      break;  // past the box's last corner: nothing further can match
    }
    if (box.contains(p)) {
      points.append(p);
      slots.push_back(i);
    }
  }
}

void SortedCooFormat::save(BufferWriter& out) const {
  out.put_u64_vec(shape_.extents());
  out.put_u64(coords_.rank());
  out.put_u64_vec(coords_.flat());
}

void SortedCooFormat::load(BufferReader& in) {
  shape_ = Shape(in.get_u64_vec());
  const std::size_t rank = in.get_u64();
  auto flat = in.get_u64_vec();
  detail::require(rank == 0 ? flat.empty() : rank == shape_.rank(),
                  "sorted-COO coordinate rank does not match shape rank");
  coords_ = rank == 0 ? CoordBuffer() : CoordBuffer(rank, std::move(flat));
}

void SortedCooFormat::check_invariants(check::Issues& issues) const {
  if (!coords_.empty() && coords_.rank() != shape_.rank()) {
    issues.add("sorted_coo.rank",
               "coordinate rank " + std::to_string(coords_.rank()) +
                   " != shape rank " + std::to_string(shape_.rank()));
    return;
  }
  bool coord_witness = false;
  for (std::size_t i = 0; i < coords_.size() && !coord_witness; ++i) {
    const auto p = coords_.point(i);
    for (std::size_t dim = 0; dim < p.size(); ++dim) {
      if (p[dim] >= shape_.extent(dim)) {
        issues.add("sorted_coo.coords.in_shape",
                   "point " + std::to_string(i) + " dim " +
                       std::to_string(dim) + " coordinate " +
                       std::to_string(p[dim]) + " >= extent " +
                       std::to_string(shape_.extent(dim)));
        coord_witness = true;
        break;
      }
    }
  }
  // lookup() and scan_box() binary-search on lexicographic order; an
  // out-of-order pair silently turns present points into misses.
  for (std::size_t i = 1; i < coords_.size(); ++i) {
    const auto a = coords_.point(i - 1);
    const auto b = coords_.point(i);
    if (std::lexicographical_compare(b.begin(), b.end(), a.begin(),
                                     a.end())) {
      issues.add("sorted_coo.order",
                 "points " + std::to_string(i - 1) + " and " +
                     std::to_string(i) + " are out of lexicographic order");
      break;
    }
  }
}

}  // namespace artsparse
