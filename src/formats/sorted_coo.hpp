// Sorted COO — the variant the paper discusses but does not benchmark
// (Section II-A): sorting the coordinate list costs O(n log n) at build time
// but drops the per-query cost from a full scan to a binary search,
// O(log n). Space stays O(n * d). Included as a clearly-marked extension so
// the trade-off can be measured (bench_ablation_sorted_coo).
#pragma once

#include "formats/format.hpp"

namespace artsparse {

class SortedCooFormat final : public SparseFormat {
 public:
  SortedCooFormat() = default;

  OrgKind kind() const override { return OrgKind::kSortedCoo; }

  std::vector<std::size_t> build(const CoordBuffer& coords,
                                 const Shape& shape) override;

  std::size_t lookup(std::span<const index_t> point) const override;

  void scan_box(const Box& box, CoordBuffer& points,
                std::vector<std::size_t>& slots) const override;

  void save(BufferWriter& out) const override;
  void load(BufferReader& in) override;

  void check_invariants(check::Issues& issues) const override;

  std::size_t point_count() const override { return coords_.size(); }
  const Shape& tensor_shape() const override { return shape_; }

  /// Stored coordinates in ascending row-major (lexicographic) order.
  const CoordBuffer& coords() const { return coords_; }

 private:
  Shape shape_;
  CoordBuffer coords_;  ///< sorted lexicographically
};

}  // namespace artsparse
