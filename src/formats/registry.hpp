// Factory for storage organizations, keyed by OrgKind or paper name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "formats/format.hpp"

namespace artsparse {

/// Creates an empty format instance of the given kind.
std::unique_ptr<SparseFormat> make_format(OrgKind kind);

/// Creates a format by its paper name ("COO", "LINEAR", "GCSR++", ...).
std::unique_ptr<SparseFormat> make_format(const std::string& name);

/// Reconstructs a format from a serialized index buffer produced by
/// serialize_format()/SparseFormat::save().
std::unique_ptr<SparseFormat> load_format(OrgKind kind,
                                          std::span<const std::byte> bytes);

/// All kinds the library implements (paper's five + sorted COO).
std::vector<OrgKind> all_org_kinds();

}  // namespace artsparse
