#include "formats/csf.hpp"

#include <algorithm>
#include <numeric>

#include "check/issues.hpp"
#include "core/parallel.hpp"
#include "core/sort.hpp"
#include "core/timer.hpp"

namespace artsparse {

std::vector<std::size_t> CsfFormat::build(const CoordBuffer& coords,
                                          const Shape& shape) {
  detail::require(coords.rank() == shape.rank(),
                  "coordinate rank does not match shape rank");
  shape_ = shape;
  const std::size_t d = shape.rank();
  dim_order_.clear();
  nfibs_.clear();
  fids_.clear();
  fptr_.clear();
  build_sort_seconds_ = 0.0;

  if (coords.empty()) {
    return {};
  }

  // Algorithm 2 lines 5-6: sort the local boundary extents ascending; the
  // smallest dimension becomes the root level so the most coordinates get
  // deduplicated there.
  const Box box = Box::bounding(coords);
  const Shape local = box.shape();
  dim_order_.resize(d);
  std::iota(dim_order_.begin(), dim_order_.end(), std::size_t{0});
  std::stable_sort(dim_order_.begin(), dim_order_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return local.extent(a) < local.extent(b);
                   });

  // Line 7: sort points lexicographically in the permuted dimension order.
  // Rather than a comparator that re-reads coords.point() per comparison,
  // linearize each point within the local box in dim_order_ — the box's
  // Shape already proved its address space fits index_t, so one u64 key per
  // point captures the full lexicographic order.
  const std::size_t n = coords.size();
  WallTimer sort_timer;
  std::vector<index_t> stride(d);
  stride[d - 1] = 1;
  for (std::size_t level = d - 1; level > 0; --level) {
    stride[level - 1] = stride[level] * local.extent(dim_order_[level]);
  }
  std::vector<index_t> keys(n);
  parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const auto p = coords.point(i);
      index_t key = 0;
      for (std::size_t level = 0; level < d; ++level) {
        const std::size_t dim = dim_order_[level];
        key += (p[dim] - box.lo(dim)) * stride[level];
      }
      keys[i] = key;
    }
  });
  const std::vector<std::size_t> perm = parallel_sort_permutation(keys);
  build_sort_seconds_ = sort_timer.seconds();

  // Gather the sorted points once into a flat buffer already permuted into
  // dim_order_, so the tree-build pass below streams contiguously instead
  // of chasing coords.point(perm[rank]) through the original layout.
  std::vector<index_t> sorted_pts(n * d);
  parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t rank = lo; rank < hi; ++rank) {
      const auto p = coords.point(perm[rank]);
      for (std::size_t level = 0; level < d; ++level) {
        sorted_pts[rank * d + level] = p[dim_order_[level]];
      }
    }
  });

  // Lines 8-18: build the tree level by level in one pass over the sorted
  // points. A point opens a new node at every level from the first level at
  // which it differs from its predecessor down to the leaf.
  fids_.assign(d, {});
  fptr_.assign(d > 0 ? d - 1 : 0, {});
  const index_t* prev = nullptr;
  for (std::size_t rank = 0; rank < n; ++rank) {
    const index_t* p = sorted_pts.data() + rank * d;
    std::size_t first_diff = 0;
    if (rank != 0) {
      while (first_diff < d && p[first_diff] == prev[first_diff]) {
        ++first_diff;
      }
      // Exact duplicate coordinates still get their own leaf entry so every
      // input point owns a distinct value slot.
      if (first_diff == d) first_diff = d - 1;
    }
    for (std::size_t level = first_diff; level < d; ++level) {
      // Record where this node's children begin before any are appended.
      if (level + 1 < d) {
        fptr_[level].push_back(fids_[level + 1].size());
      }
      fids_[level].push_back(p[level]);
    }
    prev = p;
  }
  for (std::size_t level = 0; level + 1 < d; ++level) {
    fptr_[level].push_back(fids_[level + 1].size());
  }
  nfibs_.resize(d);
  for (std::size_t level = 0; level < d; ++level) {
    nfibs_[level] = fids_[level].size();
  }

  return invert_permutation(perm);
}

std::size_t CsfFormat::lookup(std::span<const index_t> point) const {
  const std::size_t d = shape_.rank();
  if (point.size() != d || fids_.empty() || fids_[0].empty()) {
    return kNotFound;
  }
  // Root-to-leaf descent; fiber coordinate ranges are sorted, so each level
  // is a binary search within [lo, hi).
  std::size_t lo = 0;
  std::size_t hi = fids_[0].size();
  for (std::size_t level = 0; level < d; ++level) {
    const index_t target = point[dim_order_[level]];
    const auto& ids = fids_[level];
    const auto begin = ids.begin() + static_cast<std::ptrdiff_t>(lo);
    const auto end = ids.begin() + static_cast<std::ptrdiff_t>(hi);
    const auto it = std::lower_bound(begin, end, target);
    if (it == end || *it != target) return kNotFound;
    const std::size_t fi =
        static_cast<std::size_t>(it - ids.begin());
    if (level + 1 == d) return fi;
    lo = fptr_[level][fi];
    hi = fptr_[level][fi + 1];
  }
  return kNotFound;
}

namespace {

/// Recursive subtree scan used by CsfFormat::scan_box.
struct CsfScanner {
  const std::vector<std::vector<index_t>>& fids;
  const std::vector<std::vector<index_t>>& fptr;
  const std::vector<std::size_t>& dim_order;
  const Box& box;
  CoordBuffer& points;
  std::vector<std::size_t>& slots;
  std::vector<index_t> point;

  void scan(std::size_t level, std::size_t lo, std::size_t hi) {
    const std::size_t dim = dim_order[level];
    const auto& ids = fids[level];
    // Fiber coordinates are sorted: restrict to [box.lo(dim), box.hi(dim)]
    // with two binary searches, pruning whole subtrees outside the box.
    const auto begin = ids.begin() + static_cast<std::ptrdiff_t>(lo);
    const auto end = ids.begin() + static_cast<std::ptrdiff_t>(hi);
    const auto first = std::lower_bound(begin, end, box.lo(dim));
    const auto last = std::upper_bound(first, end, box.hi(dim));
    for (auto it = first; it != last; ++it) {
      const auto fi = static_cast<std::size_t>(it - ids.begin());
      point[dim] = *it;
      if (level + 1 == fids.size()) {
        points.append(point);
        slots.push_back(fi);
      } else {
        scan(level + 1, fptr[level][fi], fptr[level][fi + 1]);
      }
    }
  }
};

}  // namespace

void CsfFormat::scan_box(const Box& box, CoordBuffer& points,
                         std::vector<std::size_t>& slots) const {
  detail::require(box.rank() == shape_.rank(),
                  "scan box rank does not match tensor rank");
  if (fids_.empty() || fids_[0].empty()) return;
  CsfScanner scanner{fids_,  fptr_, dim_order_,
                     box,    points, slots,
                     std::vector<index_t>(shape_.rank(), 0)};
  scanner.scan(0, 0, fids_[0].size());
}

std::size_t CsfFormat::index_words() const {
  std::size_t words = nfibs_.size() + dim_order_.size();
  for (const auto& level : fids_) words += level.size();
  for (const auto& level : fptr_) words += level.size();
  return words;
}

void CsfFormat::save(BufferWriter& out) const {
  out.put_u64_vec(shape_.extents());
  std::vector<index_t> order(dim_order_.begin(), dim_order_.end());
  out.put_u64_vec(order);
  out.put_u64_vec(nfibs_);
  out.put_u64(fids_.size());
  for (const auto& level : fids_) out.put_u64_vec(level);
  out.put_u64(fptr_.size());
  for (const auto& level : fptr_) out.put_u64_vec(level);
}

void CsfFormat::load(BufferReader& in) {
  shape_ = Shape(in.get_u64_vec());
  const auto order = in.get_u64_vec();
  dim_order_.assign(order.begin(), order.end());
  nfibs_ = in.get_u64_vec();
  // Level counts come from untrusted bytes: every level costs at least a
  // length prefix, so bound them by the remaining payload before
  // allocating.
  const std::uint64_t fid_levels = in.get_u64();
  detail::require(fid_levels <= in.remaining() / sizeof(std::uint64_t),
                  "CSF level count exceeds payload size");
  fids_.assign(fid_levels, {});
  for (auto& level : fids_) level = in.get_u64_vec();
  const std::uint64_t fptr_levels = in.get_u64();
  detail::require(fptr_levels <= in.remaining() / sizeof(std::uint64_t) + 1,
                  "CSF fptr level count exceeds payload size");
  fptr_.assign(fptr_levels, {});
  for (auto& level : fptr_) level = in.get_u64_vec();

  detail::require(fids_.size() == nfibs_.size(),
                  "CSF fids/nfibs level count mismatch");
  detail::require(fids_.empty() || fptr_.size() + 1 == fids_.size(),
                  "CSF fptr level count mismatch");
  // lookup() walks one level per shape dimension, reading
  // point[dim_order_[level]]: the tree must have exactly rank() levels and
  // dim_order_ must be a permutation of the dimensions, or the descent
  // indexes out of bounds.
  detail::require(fids_.empty() || fids_.size() == shape_.rank(),
                  "CSF level count does not match shape rank");
  detail::require(dim_order_.size() == fids_.size(),
                  "CSF dim_order length does not match level count");
  std::vector<bool> seen(dim_order_.size(), false);
  for (std::size_t dim : dim_order_) {
    detail::require(dim < seen.size() && !seen[dim],
                    "CSF dim_order is not a permutation of the dimensions");
    seen[dim] = true;
  }
  for (std::size_t level = 0; level < fids_.size(); ++level) {
    detail::require(fids_[level].size() == nfibs_[level],
                    "CSF nfibs does not match fids length");
    if (level + 1 < fids_.size()) {
      detail::require(fptr_[level].size() == fids_[level].size() + 1,
                      "CSF fptr length mismatch");
      detail::require(fptr_[level].empty() ||
                          fptr_[level].back() == fids_[level + 1].size(),
                      "CSF fptr does not cover next level");
      for (std::size_t k = 1; k < fptr_[level].size(); ++k) {
        detail::require(fptr_[level][k - 1] <= fptr_[level][k],
                        "CSF fptr not monotone");
      }
    }
  }
}

void CsfFormat::check_invariants(check::Issues& issues) const {
  if (fids_.empty()) return;
  if (fids_.size() != shape_.rank() || dim_order_.size() != fids_.size() ||
      fptr_.size() + 1 != fids_.size()) {
    issues.add("csf.levels",
               "tree has " + std::to_string(fids_.size()) +
                   " levels, dim_order " + std::to_string(dim_order_.size()) +
                   ", fptr " + std::to_string(fptr_.size()) + " for rank " +
                   std::to_string(shape_.rank()));
    return;
  }
  // Validate the fptr structure before using it to delimit fiber ranges:
  // the sortedness sweep below indexes fids_[level] through these offsets.
  for (std::size_t level = 0; level + 1 < fids_.size(); ++level) {
    const auto& ptr = fptr_[level];
    const bool shaped = ptr.size() == fids_[level].size() + 1 &&
                        !ptr.empty() && ptr.back() == fids_[level + 1].size();
    if (!shaped || !std::is_sorted(ptr.begin(), ptr.end())) {
      issues.add("csf.fptr",
                 "level " + std::to_string(level) +
                     " fptr does not partition the next level");
      return;
    }
  }
  for (std::size_t level = 0; level < fids_.size(); ++level) {
    const std::size_t dim = dim_order_[level];
    if (dim >= shape_.rank()) {
      issues.add("csf.dim_order.range",
                 "dim_order[" + std::to_string(level) + "] = " +
                     std::to_string(dim) + " >= rank " +
                     std::to_string(shape_.rank()));
      return;
    }
    for (index_t fid : fids_[level]) {
      if (fid >= shape_.extent(dim)) {
        issues.add("csf.fids.in_shape",
                   "level " + std::to_string(level) + " coordinate " +
                       std::to_string(fid) + " >= extent " +
                       std::to_string(shape_.extent(dim)));
        break;
      }
    }
    // lookup() binary-searches each fiber's child range: coordinates must
    // be sorted within every range (duplicates occur only at the leaves,
    // where duplicate input points keep their own slots).
    const auto& ids = fids_[level];
    bool sorted = true;
    if (level == 0) {
      sorted = std::is_sorted(ids.begin(), ids.end());
    } else {
      const auto& parents = fptr_[level - 1];
      for (std::size_t f = 0; f + 1 < parents.size() && sorted; ++f) {
        const auto begin =
            ids.begin() + static_cast<std::ptrdiff_t>(parents[f]);
        const auto end =
            ids.begin() + static_cast<std::ptrdiff_t>(parents[f + 1]);
        sorted = std::is_sorted(begin, end);
      }
    }
    if (!sorted) {
      issues.add("csf.fids.sorted", "level " + std::to_string(level) +
                                        " fiber coordinates are not sorted");
    }
  }
}

}  // namespace artsparse
