#include "formats/linear.hpp"

#include <numeric>

#include "check/issues.hpp"
#include "core/linearize.hpp"

namespace artsparse {

std::vector<std::size_t> LinearFormat::build(const CoordBuffer& coords,
                                             const Shape& shape) {
  detail::require(coords.rank() == shape.rank(),
                  "coordinate rank does not match shape rank");
  shape_ = shape;
  if (addressing_ == LinearAddressing::kLocal && !coords.empty()) {
    local_box_ = Box::bounding(coords);
  } else {
    local_box_ = Box();
  }

  addresses_.clear();
  addresses_.reserve(coords.size());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const auto p = coords.point(i);
    addresses_.push_back(addressing_ == LinearAddressing::kLocal
                             ? linearize_local(p, local_box_)
                             : linearize(p, shape_));
  }
  // LINEAR keeps input order: identity map.
  std::vector<std::size_t> map(coords.size());
  std::iota(map.begin(), map.end(), std::size_t{0});
  return map;
}

bool LinearFormat::address_of(std::span<const index_t> point,
                              index_t& out) const {
  if (point.size() != shape_.rank()) return false;
  if (addressing_ == LinearAddressing::kLocal) {
    if (local_box_.empty() || !local_box_.contains(point)) return false;
    out = linearize_local(point, local_box_);
    return true;
  }
  for (std::size_t i = 0; i < point.size(); ++i) {
    if (point[i] >= shape_.extent(i)) return false;
  }
  out = linearize(point, shape_);
  return true;
}

std::size_t LinearFormat::lookup(std::span<const index_t> point) const {
  index_t target = 0;
  if (!address_of(point, target)) return kNotFound;
  // Unsorted address list: full scan, O(n) per query.
  for (std::size_t i = 0; i < addresses_.size(); ++i) {
    if (addresses_[i] == target) return i;
  }
  return kNotFound;
}

void LinearFormat::scan_box(const Box& box, CoordBuffer& points,
                            std::vector<std::size_t>& slots) const {
  detail::require(box.rank() == shape_.rank(),
                  "scan box rank does not match tensor rank");
  // Delinearize each stored address and test it, pre-filtering by the
  // box's [min address, max address] window (the box's corners bound the
  // addresses of every cell inside it).
  if (addressing_ == LinearAddressing::kLocal) {
    if (local_box_.empty() || !local_box_.overlaps(box)) return;
    const Box clipped = box.intersect(local_box_);
    const index_t lo = linearize_local(clipped.lo(), local_box_);
    const index_t hi = linearize_local(clipped.hi(), local_box_);
    std::vector<index_t> point(shape_.rank());
    for (std::size_t i = 0; i < addresses_.size(); ++i) {
      if (addresses_[i] < lo || addresses_[i] > hi) continue;
      delinearize_local(addresses_[i], local_box_, point);
      if (box.contains(point)) {
        points.append(point);
        slots.push_back(i);
      }
    }
    return;
  }
  const Box whole = Box::whole(shape_);
  if (!whole.overlaps(box)) return;
  const Box clipped = box.intersect(whole);
  const index_t lo = linearize(clipped.lo(), shape_);
  const index_t hi = linearize(clipped.hi(), shape_);
  std::vector<index_t> point(shape_.rank());
  for (std::size_t i = 0; i < addresses_.size(); ++i) {
    if (addresses_[i] < lo || addresses_[i] > hi) continue;
    delinearize(addresses_[i], shape_, point);
    if (box.contains(point)) {
      points.append(point);
      slots.push_back(i);
    }
  }
}

void LinearFormat::save(BufferWriter& out) const {
  out.put_u8(static_cast<std::uint8_t>(addressing_));
  out.put_u64_vec(shape_.extents());
  if (addressing_ == LinearAddressing::kLocal) {
    out.put_u8(local_box_.empty() ? 0 : 1);
    if (!local_box_.empty()) {
      out.put_u64_vec(local_box_.lo());
      out.put_u64_vec(local_box_.hi());
    }
  }
  out.put_u64_vec(addresses_);
}

void LinearFormat::load(BufferReader& in) {
  addressing_ = static_cast<LinearAddressing>(in.get_u8());
  detail::require(addressing_ == LinearAddressing::kGlobal ||
                      addressing_ == LinearAddressing::kLocal,
                  "bad LINEAR addressing flag");
  shape_ = Shape(in.get_u64_vec());
  local_box_ = Box();
  if (addressing_ == LinearAddressing::kLocal && in.get_u8() != 0) {
    auto lo = in.get_u64_vec();
    auto hi = in.get_u64_vec();
    local_box_ = Box(std::move(lo), std::move(hi));
    detail::require(local_box_.rank() == shape_.rank(),
                    "LINEAR local box rank does not match shape rank");
  }
  addresses_ = in.get_u64_vec();
}

void LinearFormat::check_invariants(check::Issues& issues) const {
  if (addressing_ == LinearAddressing::kLocal) {
    if (!local_box_.empty() && local_box_.rank() != shape_.rank()) {
      issues.add("linear.box.rank",
                 "local box rank " + std::to_string(local_box_.rank()) +
                     " != shape rank " + std::to_string(shape_.rank()));
      return;
    }
    if (local_box_.empty() && !addresses_.empty()) {
      issues.add("linear.box.missing",
                 "local addressing with " +
                     std::to_string(addresses_.size()) +
                     " addresses but no local box");
      return;
    }
  }
  // Addresses past the address space delinearize to out-of-shape points.
  const index_t space = addressing_ == LinearAddressing::kLocal
                            ? (local_box_.empty()
                                   ? 0
                                   : local_box_.shape().element_count())
                            : shape_.element_count();
  for (std::size_t i = 0; i < addresses_.size(); ++i) {
    if (addresses_[i] >= space) {
      issues.add("linear.addresses.bounded",
                 "address " + std::to_string(addresses_[i]) + " at slot " +
                     std::to_string(i) + " >= address space " +
                     std::to_string(space));
      break;
    }
  }
}

}  // namespace artsparse
