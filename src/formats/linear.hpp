// LINEAR — linearized-address organization (Section II-B).
//
// Each point's coordinates are transformed into a single row-major linear
// address, spending O(n * d) build time to shrink the index from O(n * d)
// words (COO) to O(n). Reads remain a full scan: addresses are stored in
// input order, unsorted, matching the paper's "non-sorted" choice, so the
// read bound is O(n * n_read).
//
// Addressing is either global (against the fragment's dense shape, the
// default) or block-local (against the points' bounding box) — the latter is
// the paper's remedy for address overflow on extremely large tensors.
#pragma once

#include "formats/format.hpp"

namespace artsparse {

/// Which shape the linear addresses are computed against.
enum class LinearAddressing : std::uint8_t {
  kGlobal = 0,  ///< addresses within the fragment's dense shape
  kLocal = 1,   ///< addresses within the points' bounding box
};

class LinearFormat final : public SparseFormat {
 public:
  explicit LinearFormat(LinearAddressing addressing = LinearAddressing::kGlobal)
      : addressing_(addressing) {}

  OrgKind kind() const override { return OrgKind::kLinear; }

  std::vector<std::size_t> build(const CoordBuffer& coords,
                                 const Shape& shape) override;

  std::size_t lookup(std::span<const index_t> point) const override;

  void scan_box(const Box& box, CoordBuffer& points,
                std::vector<std::size_t>& slots) const override;

  void save(BufferWriter& out) const override;
  void load(BufferReader& in) override;

  void check_invariants(check::Issues& issues) const override;

  std::size_t point_count() const override { return addresses_.size(); }
  const Shape& tensor_shape() const override { return shape_; }

  LinearAddressing addressing() const { return addressing_; }

  /// Stored linear addresses, in input order.
  std::span<const index_t> addresses() const { return addresses_; }

 private:
  /// Address of `point` under the configured addressing, or kNotFound-like
  /// miss signal via the bool when the point cannot have an address (e.g.
  /// outside the local box).
  bool address_of(std::span<const index_t> point, index_t& out) const;

  LinearAddressing addressing_ = LinearAddressing::kGlobal;
  Shape shape_;
  Box local_box_;  ///< populated when addressing_ == kLocal
  std::vector<index_t> addresses_;
};

}  // namespace artsparse
