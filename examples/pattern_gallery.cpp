// Renders Fig. 2's three sparsity patterns (TSP, GSP, MSP) as ASCII art on
// a small 2-D tensor, and prints each pattern's measured density and
// sparsity profile.
#include <cstdio>
#include <string>

#include "artsparse.hpp"

namespace {

using namespace artsparse;

void render(const char* title, const CoordBuffer& cells, const Shape& shape) {
  const auto rows = static_cast<std::size_t>(shape.extent(0));
  const auto cols = static_cast<std::size_t>(shape.extent(1));
  std::vector<std::string> canvas(rows, std::string(cols, '.'));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    canvas[cells.at(i, 0)][cells.at(i, 1)] = '#';
  }
  const double density = static_cast<double>(cells.size()) /
                         static_cast<double>(shape.element_count());
  std::printf("%s — %zu points, density %.2f%%\n", title, cells.size(),
              density * 100.0);
  for (const auto& line : canvas) {
    std::printf("  %s\n", line.c_str());
  }

  const SparsityProfile profile = profile_sparsity(cells, shape);
  std::printf("  profile: banded %.0f%%, clustered %.0f%%\n\n",
              profile.banded_fraction * 100.0,
              profile.cluster_fraction * 100.0);
}

}  // namespace

int main() {
  const Shape shape{40, 72};

  // TSP: values concentrated along the (generalized) diagonal band —
  // one-hot encodings, stencil matrices.
  render("TSP (tridiagonal, band length 9)",
         generate_tsp(shape, TspConfig{4}), shape);

  // GSP: points at random coordinates — graph adjacency, tabular data.
  render("GSP (random, fill 3%)", generate_gsp(shape, GspConfig{0.03}, 7),
         shape);

  // MSP: sparse background plus a contiguous dense region — LCLS-II-style
  // experimental data.
  render("MSP (background 1%, dense region at (m/3) of size (m/3))",
         generate_msp(shape, MspConfig{0.01, 0.9}, 7), shape);

  return 0;
}
