// Reproduces Fig. 1 of the paper: the five example points of a 3x3x3
// sparse tensor represented in every organization, with the internal
// structures printed.
//
// Note: the paper's printed figure is internally inconsistent (its row_ptr
// does not match its own row indices — see DESIGN.md); the structures below
// follow Algorithms 1 and 2 exactly.
#include <cstdio>

#include "artsparse.hpp"

namespace {

using namespace artsparse;

void print_vec(const char* label, std::span<const index_t> v) {
  std::printf("  %-10s", label);
  for (index_t x : v) std::printf(" %llu", static_cast<unsigned long long>(x));
  std::printf("\n");
}

}  // namespace

int main() {
  const Shape shape{3, 3, 3};
  CoordBuffer coords(3);
  coords.append({0, 0, 1});
  coords.append({0, 1, 1});
  coords.append({0, 1, 2});
  coords.append({2, 2, 1});
  coords.append({2, 2, 2});
  const std::vector<value_t> values{1, 2, 3, 4, 5};  // v1..v5

  std::printf("Fig. 1 example: 3x3x3 tensor, points ");
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const auto p = coords.point(i);
    std::printf("(%llu,%llu,%llu) ", static_cast<unsigned long long>(p[0]),
                static_cast<unsigned long long>(p[1]),
                static_cast<unsigned long long>(p[2]));
  }
  std::printf("\n\n");

  {
    std::printf("(a) COO — coordinates stored verbatim, O(n*d) words\n");
    CooFormat coo;
    coo.build(coords, shape);
    for (std::size_t i = 0; i < coords.size(); ++i) {
      const auto p = coo.coords().point(i);
      std::printf("  (%llu, %llu, %llu) -> v%zu\n",
                  static_cast<unsigned long long>(p[0]),
                  static_cast<unsigned long long>(p[1]),
                  static_cast<unsigned long long>(p[2]), i + 1);
    }
    std::printf("  index bytes: %zu\n\n", coo.index_bytes());
  }

  {
    std::printf("(a) LINEAR — row-major addresses, O(n) words\n");
    LinearFormat linear;
    linear.build(coords, shape);
    print_vec("addresses:", linear.addresses());
    std::printf("  index bytes: %zu\n\n", linear.index_bytes());
  }

  {
    std::printf("(b) GCSR++ — 2-D mapping over the local boundary "
                "[0..2, 0..2, 1..2] (local shape 3x3x2 -> 2x9)\n");
    GcsrFormat gcsr;
    gcsr.build(coords, shape);
    std::printf("  2-D shape: %llu x %llu\n",
                static_cast<unsigned long long>(gcsr.rows()),
                static_cast<unsigned long long>(gcsr.cols()));
    print_vec("row_ptr:", gcsr.row_ptr());
    print_vec("col_ind:", gcsr.col_ind());
    std::printf("  index bytes: %zu\n\n", gcsr.index_bytes());
  }

  {
    std::printf("(c) GCSC++ — same mapping, smallest extent as columns "
                "(9x2), sorted by column\n");
    GcscFormat gcsc;
    gcsc.build(coords, shape);
    std::printf("  2-D shape: %llu x %llu\n",
                static_cast<unsigned long long>(gcsc.rows()),
                static_cast<unsigned long long>(gcsc.cols()));
    print_vec("col_ptr:", gcsc.col_ptr());
    print_vec("row_ind:", gcsc.row_ind());
    std::printf("  index bytes: %zu\n\n", gcsc.index_bytes());
  }

  {
    std::printf("(d) CSF — fiber tree, dimensions reordered ascending by "
                "local extent\n");
    CsfFormat csf;
    csf.build(coords, shape);
    std::printf("  dim order:");
    for (std::size_t d : csf.dim_order()) std::printf(" %zu", d);
    std::printf("\n");
    print_vec("nfibs:", csf.nfibs());
    for (std::size_t level = 0; level < csf.fids().size(); ++level) {
      char label[32];
      std::snprintf(label, sizeof(label), "fids[%zu]:", level);
      print_vec(label, csf.fids()[level]);
    }
    for (std::size_t level = 0; level < csf.fptr().size(); ++level) {
      char label[32];
      std::snprintf(label, sizeof(label), "fptr[%zu]:", level);
      print_vec(label, csf.fptr()[level]);
    }
    std::printf("  index bytes: %zu\n\n", csf.index_bytes());
  }

  // Cross-check: every organization resolves every point to its value.
  std::printf("cross-check: ");
  for (OrgKind org : kPaperOrgs) {
    auto format = make_format(org);
    const auto map = format->build(coords, shape);
    std::vector<value_t> reorganized(values.size());
    for (std::size_t i = 0; i < map.size(); ++i) {
      reorganized[map[i]] = values[i];
    }
    for (std::size_t i = 0; i < coords.size(); ++i) {
      const std::size_t slot = format->lookup(coords.point(i));
      if (slot == kNotFound || reorganized[slot] != values[i]) {
        std::printf("FAILED (%s)\n", to_string(org).c_str());
        return 1;
      }
    }
  }
  std::printf("all five organizations agree\n");
  return 0;
}
