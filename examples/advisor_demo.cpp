// Demonstrates the organization advisor (the paper's future work): profiles
// one dataset per sparsity pattern and prints the recommended organization
// under three workload weightings, with per-candidate cost breakdowns.
#include <cstdio>

#include "artsparse.hpp"

int main() {
  using namespace artsparse;

  const Shape shape{192, 192, 192};
  struct Case {
    const char* name;
    PatternSpec spec;
  };
  const Case cases[] = {
      {"TSP (diagonal band)", TspConfig{6}},
      {"GSP (random 1%)", GspConfig{0.01}},
      {"MSP (clustered)", MspConfig{0.001, 0.4}},
  };
  const struct {
    const char* name;
    WorkloadWeights weights;
  } workloads[] = {
      {"balanced", WorkloadWeights::balanced()},
      {"read-mostly", WorkloadWeights::read_mostly()},
      {"archival", WorkloadWeights::archival()},
  };

  for (const Case& c : cases) {
    const SparseDataset dataset = make_dataset(shape, c.spec, 77);
    const SparsityProfile profile =
        profile_sparsity(dataset.coords, dataset.shape);
    std::printf("=== %s ===\n%s\n", c.name, profile.to_string().c_str());

    for (const auto& w : workloads) {
      const Recommendation rec =
          recommend_organization(profile, w.weights, /*queries/write=*/0.01);
      std::printf("  %-12s ->", w.name);
      for (const CostEstimate& e : rec.ranking) {
        std::printf(" %s(%.2f)", to_string(e.org).c_str(), e.weighted_score);
      }
      std::printf("\n      best: %s — %s\n", to_string(rec.best().org).c_str(),
                  rec.best().rationale.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
