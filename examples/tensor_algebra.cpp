// Tensor-algebra example: the access patterns that motivate the storage
// organizations (paper Related Work: CSR/CSC for SpMV, CSF for SPLATT's
// MTTKRP). Builds one sparse matrix and one sparse 3-D tensor, runs SpMV,
// MTTKRP, and a TTV contraction in every organization, and cross-checks
// the results.
#include <cmath>
#include <cstdio>

#include "artsparse.hpp"

int main() {
  using namespace artsparse;

  // 2-D: SpMV over a ~1% random matrix.
  const Shape mat_shape{2048, 2048};
  const SparseDataset mat = make_dataset(mat_shape, GspConfig{0.01}, 11);
  std::vector<value_t> x(2048);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.01 * static_cast<double>(i));
  }

  std::printf("SpMV: %s matrix, %zu nnz\n", mat_shape.to_string().c_str(),
              mat.point_count());
  std::vector<value_t> reference;
  for (OrgKind org : kPaperOrgs) {
    const SparseTensor A(mat, org);
    WallTimer timer;
    const std::vector<value_t> y = spmv(A, x);
    const double elapsed = timer.seconds();
    double checksum = 0.0;
    for (value_t v : y) checksum += v;
    std::printf("  %-8s %.4fs  checksum %.6e\n", to_string(org).c_str(),
                elapsed, checksum);
    if (reference.empty()) {
      reference = y;
    } else {
      for (std::size_t i = 0; i < y.size(); ++i) {
        if (std::abs(y[i] - reference[i]) > 1e-9) {
          std::printf("MISMATCH at row %zu\n", i);
          return 1;
        }
      }
    }
  }

  // 3-D: MTTKRP (the CP-decomposition workhorse) over a random cube.
  const Shape cube_shape{128, 128, 128};
  const SparseDataset cube = make_dataset(cube_shape, GspConfig{0.005}, 13);
  constexpr std::size_t kRank = 16;
  DenseMatrix B(128, kRank);
  DenseMatrix C(128, kRank);
  for (std::size_t r = 0; r < 128; ++r) {
    for (std::size_t c = 0; c < kRank; ++c) {
      B.at(r, c) = 1.0 / (1.0 + static_cast<double>(r + c));
      C.at(r, c) = std::cos(0.1 * static_cast<double>(r * c));
    }
  }
  std::printf("\nMTTKRP: %s tensor, %zu nnz, rank %zu\n",
              cube_shape.to_string().c_str(), cube.point_count(), kRank);
  for (OrgKind org : {OrgKind::kCsf, OrgKind::kGcsr, OrgKind::kCoo}) {
    const SparseTensor X(cube, org);
    WallTimer timer;
    const DenseMatrix M = mttkrp(X, B, C, /*mode=*/0);
    double checksum = 0.0;
    for (value_t v : M.data()) checksum += v;
    std::printf("  %-8s %.4fs  checksum %.6e\n", to_string(org).c_str(),
                timer.seconds(), checksum);
  }

  // TTV: contract the cube's last mode down to a sparse matrix.
  const SparseTensor X(cube, OrgKind::kCsf);
  std::vector<value_t> v(128, 1.0);
  const auto [coords, values] = ttv(X, v, /*mode=*/2);
  std::printf("\nTTV over mode 2: %zu nnz in the contracted %s matrix, "
              "|X|_F^2 = %.3e\n",
              coords.size(), Shape{128, 128}.to_string().c_str(),
              norm_squared(X));
  return 0;
}
