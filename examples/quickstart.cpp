// Quickstart: write a sparse 3-D tensor into a fragment store with one of
// the paper's organizations, read a region back, and print what happened.
//
//   ./quickstart [directory]
#include <cstdio>
#include <filesystem>

#include "artsparse.hpp"

int main(int argc, char** argv) {
  using namespace artsparse;

  const std::filesystem::path dir =
      argc > 1 ? argv[1]
               : std::filesystem::temp_directory_path() / "artsparse_quickstart";
  std::filesystem::remove_all(dir);

  // A 256^3 sparse tensor with ~0.5% random occupancy (GSP pattern).
  const Shape shape{256, 256, 256};
  const SparseDataset dataset = make_dataset(shape, GspConfig{0.005},
                                             /*seed=*/2024);
  std::printf("dataset: %s, %zu points (density %.3f%%)\n",
              shape.to_string().c_str(), dataset.point_count(),
              dataset.density() * 100.0);

  // Write one fragment per organization choice — here GCSR++, the paper's
  // runner-up for balanced workloads.
  FragmentStore store(dir, shape);
  const WriteResult written =
      store.write(dataset.coords, dataset.values, OrgKind::kGcsr);
  std::printf("wrote %s: %zu bytes (index %zu bytes) in %.4fs "
              "(build %.4fs, reorg %.4fs, write %.4fs)\n",
              written.path.c_str(), written.file_bytes, written.index_bytes,
              written.times.total(), written.times.build,
              written.times.reorg, written.times.write);

  // Read back the paper's standard region: origin (m/2), size (m/10).
  const Box region = Box::from_origin_size(
      std::vector<index_t>{128, 128, 128}, std::vector<index_t>{25, 25, 25});
  const ReadResult result = store.read_region(region);
  std::printf("read region %s: %zu of %llu cells occupied in %.4fs\n",
              region.to_string().c_str(), result.values.size(),
              static_cast<unsigned long long>(region.cell_count()),
              result.times.total());

  // Values were generated as linear addresses, so reads self-verify.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < result.values.size(); ++i) {
    if (result.values[i] != expected_value(result.coords.point(i), shape)) {
      ++mismatches;
    }
  }
  std::printf("verification: %zu mismatches\n", mismatches);

  std::filesystem::remove_all(dir);
  return mismatches == 0 ? 0 : 1;
}
