// A scientific-workflow scenario modeled on the paper's MSP motivation
// (LCLS-II experimental data, Section III): a detector produces one sparse
// 3-D frame per timestep — a hot contiguous region (the beam spot) over a
// noisy sparse background. Each timestep is appended to one fragment store;
// the organization is chosen once by the advisor from the first frame's
// sparsity profile. Afterwards an analysis pass reads the beam-spot region
// across the whole store and verifies every value.
#include <cstdio>
#include <filesystem>

#include "artsparse.hpp"

int main(int argc, char** argv) {
  using namespace artsparse;

  const std::filesystem::path dir =
      argc > 1 ? argv[1]
               : std::filesystem::temp_directory_path() / "artsparse_lcls";
  std::filesystem::remove_all(dir);

  // Frames: 128x128 detector, 8 timesteps stacked as the first dimension.
  const index_t timesteps = 8;
  const Shape frame_shape{128, 128};
  const Shape store_shape{timesteps, 128, 128};
  FragmentStore store(dir, store_shape, DeviceModel::lustre_like());

  OrgKind chosen = OrgKind::kGcsr;
  for (index_t t = 0; t < timesteps; ++t) {
    // Detector frame: MSP pattern, seeded per timestep.
    const CoordBuffer frame =
        generate_msp(frame_shape, MspConfig{0.002, 0.6}, 1000 + t);

    // Lift the 2-D frame into the 3-D store coordinates (t, row, col).
    CoordBuffer coords(3);
    std::vector<value_t> values;
    coords.reserve(frame.size());
    for (std::size_t i = 0; i < frame.size(); ++i) {
      coords.append({t, frame.at(i, 0), frame.at(i, 1)});
      values.push_back(expected_value(coords.point(i), store_shape));
    }

    if (t == 0) {
      // One-time organization choice from the first frame's profile —
      // the automation the paper names as future work.
      const SparsityProfile profile = profile_sparsity(coords, store_shape);
      const Recommendation rec =
          recommend_organization(profile, WorkloadWeights::read_mostly(),
                                 /*queries_per_write=*/0.05);
      chosen = rec.best().org;
      std::printf("advisor chose %s (%s)\n", to_string(chosen).c_str(),
                  rec.best().rationale.c_str());
    }

    const WriteResult written = store.write(coords, values, chosen);
    std::printf("t=%llu: %zu points -> %zu bytes in %.4fs\n",
                static_cast<unsigned long long>(t), written.point_count,
                written.file_bytes, written.times.total());
  }

  // Analysis: read the beam-spot region across all timesteps.
  const Box spot = msp_region(frame_shape);
  const Box query({0, spot.lo(0), spot.lo(1)},
                  {timesteps - 1, spot.hi(0), spot.hi(1)});
  const ReadResult result = store.read_region(query);
  std::printf("beam-spot query %s: %zu points from %zu fragments in %.4fs\n",
              query.to_string().c_str(), result.values.size(),
              result.fragments_visited, result.times.total());

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < result.values.size(); ++i) {
    if (result.values[i] !=
        expected_value(result.coords.point(i), store_shape)) {
      ++mismatches;
    }
  }
  std::printf("verification: %zu mismatches; store totals %zu bytes in %zu "
              "fragments\n",
              mismatches, store.total_file_bytes(), store.fragment_count());

  std::filesystem::remove_all(dir);
  return mismatches == 0 ? 0 : 1;
}
