// Argument parsing and text I/O helpers for the artsparse CLI. Kept apart
// from the library: these are tool conveniences, not API.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "artsparse.hpp"

namespace artsparse::cli {

/// Parsed command line: one positional subcommand plus --key=value /
/// --key value options and bare --flags.
struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> positionals;

  bool has(const std::string& key) const { return options.count(key) != 0; }
  std::string get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

/// Parses argv. Throws FormatError on malformed input (option without a
/// value at the end, etc.).
Args parse_args(int argc, char** argv);

/// "256,256,128" -> Shape{256, 256, 128}.
Shape parse_shape(const std::string& text);

/// "10:20,30:40" -> Box [10..20, 30..40] (inclusive bounds).
Box parse_region(const std::string& text);

/// "tsp" / "gsp" / "msp" (case-insensitive).
PatternKind parse_pattern(const std::string& text);

/// "coo" / "linear" / "gcsr" / "gcsc" / "csf" / "sortedcoo" or the paper
/// spellings ("GCSR++", ...).
OrgKind parse_org(const std::string& text);

/// "balanced" / "read" / "archive".
WorkloadWeights parse_weights(const std::string& text);

/// Byte count with an optional binary suffix: "1048576", "64K", "256MiB",
/// "1G" (case-insensitive; K/M/G are KiB/MiB/GiB). Used by --cache-bytes.
std::size_t parse_byte_size(const std::string& text);

/// Tab-separated export: one line per point, d coordinates then the value.
void write_tsv(const std::string& path, const CoordBuffer& coords,
               std::span<const value_t> values);

/// Inverse of write_tsv; rank is inferred from the first line.
std::pair<CoordBuffer, std::vector<value_t>> read_tsv(
    const std::string& path);

/// Reads the tensor shape recorded in a store directory's fragments.
/// Throws FormatError when the directory holds no fragments.
Shape store_shape(const std::string& directory);

}  // namespace artsparse::cli
