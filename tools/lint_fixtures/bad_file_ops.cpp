// ASL002 fixture: bare C file API outside storage/file_io. The
// std::filesystem calls at the bottom are fine and must NOT be flagged.
#include <cstdio>
#include <filesystem>
#include <unistd.h>

void fixture_raw_file_ops(const char* from, const char* to) {
  std::FILE* handle = fopen(from, "rb");  // flagged
  if (handle != nullptr) std::fclose(handle);
  ::unlink(to);            // flagged
  std::rename(from, to);   // flagged
}

void fixture_filesystem_is_fine(const std::filesystem::path& from,
                                const std::filesystem::path& to) {
  std::error_code ec;
  std::filesystem::rename(from, to, ec);  // not flagged
  std::filesystem::remove(to, ec);        // not flagged
}
