// Suppression fixture: every would-be violation carries an allow
// comment, so this file must lint clean.
#include <thread>

void fixture_suppressed() {
  // Deliberate raw thread for the fixture.
  // artsparse-lint: allow(ASL003)
  std::thread worker([] {});
  worker.join();  // artsparse-lint: allow(ASL003) -- joins the raw thread
}
