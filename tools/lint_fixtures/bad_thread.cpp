// ASL003 fixture: naked std::thread outside core/parallel. The
// hardware_concurrency query is allowed; construction is not.
#include <thread>

unsigned fixture_spawn() {
  const unsigned hw = std::thread::hardware_concurrency();  // not flagged
  std::thread worker([] {});  // flagged
  worker.join();
  return hw;
}
