// ASL004 fixture: an obs macro in a header outside an ARTSPARSE_OBS
// preprocessor guard. The guarded use below is fine.
#pragma once

inline void fixture_unguarded() {
  ARTSPARSE_COUNT("artsparse_fixture_total", 1);  // flagged
}

#if defined(ARTSPARSE_OBS_ENABLED)
inline void fixture_guarded() {
  ARTSPARSE_COUNT("artsparse_fixture_total", 1);  // not flagged
}
#endif
