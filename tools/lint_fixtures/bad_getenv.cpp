// ASL001 fixture: raw std::getenv outside core/env.
#include <cstdlib>

bool fixture_trace_enabled() {
  const char* value = std::getenv("ARTSPARSE_TRACE");
  return value != nullptr && value[0] != '0';
}
