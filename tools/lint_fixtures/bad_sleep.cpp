// ASL006 fixture: raw std::this_thread sleeps outside core/deadline and
// storage/throttle. Both forms are flagged; waits must route through
// interruptible_sleep so the ambient deadline and cancel token apply.
#include <chrono>
#include <thread>

void fixture_raw_sleep() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // flagged
  std::this_thread::sleep_until(  // flagged
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10));
}
