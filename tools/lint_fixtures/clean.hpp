// Clean fixture: exercises near-misses of every rule -- prose mentions
// of std::getenv and std::thread in comments, std::filesystem::rename,
// a properly guarded mutex member -- none of which may be flagged.
#pragma once

#include <filesystem>

// Comments may say std::getenv or std::thread freely.
class FixtureClean {
 public:
  void move(const std::filesystem::path& from,
            const std::filesystem::path& to) {
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
  }

 private:
  mutable Mutex mutex_;
  int value_ ARTSPARSE_GUARDED_BY(mutex_) = 0;
};
