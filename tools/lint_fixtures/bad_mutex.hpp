// ASL005 fixture: a raw std::mutex member (use the annotated wrapper)
// and an annotated Mutex member that guards nothing it can name.
#pragma once

#include <mutex>

class FixtureRawMutex {
  std::mutex mutex_;  // flagged: raw std::mutex member
  int value_ = 0;
};

class FixtureUnguardedMutex {
  mutable Mutex mutex_;  // flagged: no ARTSPARSE_GUARDED_BY(mutex_) sibling
  int value_ = 0;
};
