#include "cli_support.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace artsparse::cli {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(text);
  while (std::getline(in, part, sep)) {
    parts.push_back(part);
  }
  return parts;
}

index_t parse_index(const std::string& text) {
  std::size_t consumed = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &consumed);
  } catch (const std::exception&) {
    throw FormatError("not a number: '" + text + "'");
  }
  detail::require(consumed == text.size(), "not a number: '" + text + "'");
  return value;
}

}  // namespace

Args parse_args(int argc, char** argv) {
  Args args;
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    args.command = argv[i++];
  }
  for (; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      token = token.substr(2);
      const auto eq = token.find('=');
      if (eq != std::string::npos) {
        args.options[token.substr(0, eq)] = token.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.options[token] = argv[++i];
      } else {
        args.options[token] = "";  // bare flag
      }
    } else {
      args.positionals.push_back(token);
    }
  }
  return args;
}

Shape parse_shape(const std::string& text) {
  std::vector<index_t> extents;
  for (const std::string& part : split(text, ',')) {
    extents.push_back(parse_index(part));
  }
  detail::require(!extents.empty(), "empty shape specification");
  return Shape(std::move(extents));
}

Box parse_region(const std::string& text) {
  std::vector<index_t> lo;
  std::vector<index_t> hi;
  for (const std::string& part : split(text, ',')) {
    const auto bounds = split(part, ':');
    detail::require(bounds.size() == 2,
                    "region dimensions must be lo:hi, got '" + part + "'");
    lo.push_back(parse_index(bounds[0]));
    hi.push_back(parse_index(bounds[1]));
  }
  detail::require(!lo.empty(), "empty region specification");
  return Box(std::move(lo), std::move(hi));
}

PatternKind parse_pattern(const std::string& text) {
  const std::string name = lower(text);
  if (name == "tsp") return PatternKind::kTsp;
  if (name == "gsp" || name == "cgp") return PatternKind::kGsp;
  if (name == "msp") return PatternKind::kMsp;
  throw FormatError("unknown pattern: " + text + " (tsp|gsp|msp)");
}

OrgKind parse_org(const std::string& text) {
  const std::string name = lower(text);
  if (name == "coo") return OrgKind::kCoo;
  if (name == "linear") return OrgKind::kLinear;
  if (name == "gcsr" || name == "gcsr++") return OrgKind::kGcsr;
  if (name == "gcsc" || name == "gcsc++") return OrgKind::kGcsc;
  if (name == "csf") return OrgKind::kCsf;
  if (name == "sortedcoo" || name == "sorted-coo") {
    return OrgKind::kSortedCoo;
  }
  if (name == "bcsr") return OrgKind::kBcsr;
  throw FormatError("unknown organization: " + text +
                    " (coo|linear|gcsr|gcsc|csf|sortedcoo|bcsr)");
}

std::size_t parse_byte_size(const std::string& text) {
  detail::require(!text.empty(), "empty byte size");
  std::size_t pos = 0;
  unsigned long long amount = 0;
  try {
    amount = std::stoull(text, &pos);
  } catch (const std::exception&) {
    throw FormatError("invalid byte size: " + text);
  }
  std::string suffix = lower(text.substr(pos));
  if (!suffix.empty() && suffix.back() == 'b') suffix.pop_back();
  if (!suffix.empty() && suffix.back() == 'i') suffix.pop_back();
  std::size_t shift = 0;
  if (suffix == "k") {
    shift = 10;
  } else if (suffix == "m") {
    shift = 20;
  } else if (suffix == "g") {
    shift = 30;
  } else if (!suffix.empty()) {
    throw FormatError("invalid byte size suffix: " + text +
                      " (use K, M, G, KiB, MiB, GiB)");
  }
  return static_cast<std::size_t>(amount) << shift;
}

WorkloadWeights parse_weights(const std::string& text) {
  const std::string name = lower(text);
  if (name == "balanced" || name.empty()) {
    return WorkloadWeights::balanced();
  }
  if (name == "read" || name == "read-mostly") {
    return WorkloadWeights::read_mostly();
  }
  if (name == "archive" || name == "archival") {
    return WorkloadWeights::archival();
  }
  throw FormatError("unknown weights: " + text + " (balanced|read|archive)");
}

void write_tsv(const std::string& path, const CoordBuffer& coords,
               std::span<const value_t> values) {
  detail::require(coords.size() == values.size(),
                  "coordinate and value counts differ");
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path);
  out.precision(17);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const auto p = coords.point(i);
    for (index_t c : p) out << c << '\t';
    out << values[i] << '\n';
  }
  detail::require(static_cast<bool>(out), "write failed: " + path);
}

std::pair<CoordBuffer, std::vector<value_t>> read_tsv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open for reading: " + path);
  CoordBuffer coords;
  std::vector<value_t> values;
  std::string line;
  std::size_t rank = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::vector<std::string> cells;
    std::string cell;
    while (fields >> cell) cells.push_back(cell);
    detail::require(cells.size() >= 2, "TSV line needs >= 1 coord + value");
    if (rank == 0) {
      rank = cells.size() - 1;
      coords = CoordBuffer(rank);
    }
    detail::require(cells.size() == rank + 1, "inconsistent TSV rank");
    std::vector<index_t> point(rank);
    for (std::size_t d = 0; d < rank; ++d) {
      point[d] = parse_index(cells[d]);
    }
    coords.append(point);
    values.push_back(std::stod(cells[rank]));
  }
  return {std::move(coords), std::move(values)};
}

Shape store_shape(const std::string& directory) {
  // Sorted walk for determinism; a fragment whose header will not decode
  // (torn write, bit rot) is skipped so one corrupt file cannot stop the
  // CLI from discovering the store shape from its healthy siblings.
  std::vector<std::filesystem::path> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".asf") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    try {
      return decode_fragment_info(read_file(path.string())).shape;
    } catch (const Error&) {
      continue;
    }
  }
  throw FormatError("no readable fragments found in " + directory);
}

}  // namespace artsparse::cli
