// artsparse — command-line front end for the library.
//
//   artsparse generate --shape 512,512 --pattern gsp --density 0.01
//                      --seed 42 --store DIR --org gcsr [--tile 128,128]
//   artsparse import   --store DIR --shape 512,512 --tsv points.tsv
//                      --org linear
//   artsparse read     --store DIR --region 10:20,30:40 [--print]
//                      [--cache-bytes 64M] [--read-policy strict|skip]
//   artsparse scan     --store DIR --region 10:20,30:40 [--print]
//                      [--cache-bytes 64M] [--read-policy strict|skip]
//   artsparse info     --store DIR
//   artsparse advise   --store DIR [--weights balanced|read|archive]
//   artsparse consolidate --store DIR [--org ORG]
//   artsparse export   --store DIR --tsv out.tsv
//   artsparse repair   --store DIR [--depth header|structure|full]
//   artsparse metrics  [--store DIR] [--region R] [--format prometheus|
//                      json|both] [--trace FILE]
//   artsparse serve-selftest [--threads N] [--ops N] [--json] [--chaos]
//
// Every command prints a one-line summary; data-carrying commands accept
// --print to dump points, and read/scan accept --json for a machine-
// readable result that includes an observability telemetry block.
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "cli_support.hpp"
#include "storage/fault.hpp"

namespace artsparse::cli {
namespace {

int usage() {
  std::fputs(
      "usage: artsparse <command> [options]\n"
      "  generate  --shape S --pattern tsp|gsp|msp --density F --seed N\n"
      "            --store DIR [--org ORG] [--tile S] [--codec none|dv]\n"
      "  import    --store DIR --shape S --tsv FILE [--org ORG]\n"
      "  read      --store DIR --region lo:hi,... [--print] [--json]\n"
      "            [--cache-bytes N[K|M|G]] [--read-policy strict|skip]\n"
      "  scan      --store DIR --region lo:hi,... [--print] [--json]\n"
      "            [--cache-bytes N[K|M|G]] [--read-policy strict|skip]\n"
      "  info      --store DIR\n"
      "  advise    --store DIR [--weights balanced|read|archive]\n"
      "  consolidate --store DIR [--org ORG]\n"
      "  export    --store DIR --tsv FILE\n"
      "  check     --store DIR [--depth header|structure|full] [--json]\n"
      "  repair    --store DIR [--depth header|structure|full]\n"
      "  metrics   [--store DIR] [--region lo:hi,...]\n"
      "            [--format prometheus|json|both] [--trace FILE]\n"
      "  serve-selftest [--threads N] [--ops N] [--json] [--chaos]\n",
      stderr);
  return 2;
}

PatternSpec spec_for(PatternKind pattern, const Shape& shape,
                     double density) {
  switch (pattern) {
    case PatternKind::kTsp:
      return calibrate_tsp(shape, density);
    case PatternKind::kGsp:
      return calibrate_gsp(density);
    case PatternKind::kMsp:
      return calibrate_msp(shape, density,
                           std::min(0.001, density / 2.0));
  }
  throw FormatError("unknown pattern");
}

CodecKind codec_for(const std::string& name) {
  if (name.empty() || name == "none" || name == "identity") {
    return CodecKind::kIdentity;
  }
  if (name == "dv" || name == "delta-varint") return CodecKind::kDeltaVarint;
  if (name == "delta") return CodecKind::kDelta;
  if (name == "varint") return CodecKind::kVarint;
  if (name == "rle") return CodecKind::kRle;
  throw FormatError("unknown codec: " + name);
}

void print_points(const ReadResult& result) {
  for (std::size_t i = 0; i < result.values.size(); ++i) {
    const auto p = result.coords.point(i);
    for (index_t c : p) {
      std::printf("%llu\t", static_cast<unsigned long long>(c));
    }
    std::printf("%.17g\n", result.values[i]);
  }
}

int cmd_generate(const Args& args) {
  const Shape shape = parse_shape(args.get("shape"));
  const PatternKind pattern = parse_pattern(args.get("pattern", "gsp"));
  const double density = std::stod(args.get("density", "0.01"));
  const std::uint64_t seed = std::stoull(args.get("seed", "42"));
  const std::string dir = args.get("store");
  detail::require(!dir.empty(), "--store is required");

  const SparseDataset dataset =
      make_dataset(shape, spec_for(pattern, shape, density), seed);
  const CodecKind codec = codec_for(args.get("codec"));

  if (args.has("tile")) {
    const TileGrid grid(shape, parse_shape(args.get("tile")));
    const TilePolicy policy =
        args.has("org") ? TilePolicy::fixed(parse_org(args.get("org")))
                        : TilePolicy::advisor();
    TiledStore store(dir, grid, policy, DeviceModel::unthrottled(), codec);
    const TiledWriteResult written =
        store.write(dataset.coords, dataset.values);
    std::printf("generated %zu points (%s, density %.4f%%) into %zu tile "
                "fragments, %zu bytes\n",
                dataset.point_count(), to_string(pattern).c_str(),
                dataset.density() * 100.0, written.tiles_written,
                written.file_bytes);
  } else {
    const OrgKind org = parse_org(args.get("org", "gcsr"));
    FragmentStore store(dir, shape, DeviceModel::unthrottled(), codec);
    const WriteResult written =
        store.write(dataset.coords, dataset.values, org);
    std::printf("generated %zu points (%s, density %.4f%%) as %s, %zu "
                "bytes in %.4fs\n",
                dataset.point_count(), to_string(pattern).c_str(),
                dataset.density() * 100.0, to_string(org).c_str(),
                written.file_bytes, written.times.total());
  }
  return 0;
}

int cmd_import(const Args& args) {
  const std::string dir = args.get("store");
  const std::string tsv = args.get("tsv");
  detail::require(!dir.empty() && !tsv.empty(),
                  "--store and --tsv are required");
  const Shape shape = parse_shape(args.get("shape"));
  const OrgKind org = parse_org(args.get("org", "gcsr"));

  const auto [coords, values] = read_tsv(tsv);
  FragmentStore store(dir, shape);
  const WriteResult written = store.write(coords, values, org);
  std::printf("imported %zu points as %s, %zu bytes\n", coords.size(),
              to_string(org).c_str(), written.file_bytes);
  return 0;
}

ReadFaultPolicy parse_read_policy(const std::string& name) {
  if (name.empty() || name == "strict") return ReadFaultPolicy::kStrict;
  if (name == "skip") return ReadFaultPolicy::kSkip;
  throw FormatError("unknown read policy: " + name +
                    " (expected strict or skip)");
}

int cmd_read(const Args& args, bool scan) {
  const std::string dir = args.get("store");
  detail::require(!dir.empty(), "--store is required");
  const Shape shape = store_shape(dir);
  auto cache = std::make_shared<FragmentCache>(
      args.has("cache-bytes") ? parse_byte_size(args.get("cache-bytes"))
                              : FragmentCache::budget_from_env());
  FragmentStore store(dir, shape, DeviceModel::unthrottled(),
                      CodecKind::kIdentity, cache);
  store.set_read_fault_policy(parse_read_policy(args.get("read-policy")));
  const Box region = args.has("region") ? parse_region(args.get("region"))
                                        : Box::whole(shape);
  const ReadResult result =
      scan ? store.scan_region(region) : store.read_region(region);
  if (args.has("json")) {
    // Machine-readable result: the query summary plus a telemetry block
    // scraped from the process-wide metrics registry.
    std::printf("{\"command\": \"%s\", \"region\": \"%s\", "
                "\"points\": %zu, \"fragments_visited\": %zu, "
                "\"fragments_skipped\": %zu,\n",
                scan ? "scan" : "read",
                obs::json_escape(region.to_string()).c_str(),
                result.values.size(), result.fragments_visited,
                result.skipped.size());
    std::printf(" \"times\": {\"discover_sec\": %.9g, \"extract_sec\": "
                "%.9g, \"query_sec\": %.9g, \"merge_sec\": %.9g, "
                "\"total_sec\": %.9g},\n",
                result.times.discover, result.times.extract,
                result.times.query, result.times.merge,
                result.times.total());
    const CacheStats cache_stats = cache->stats();
    std::printf(" \"cache\": {\"hits\": %zu, \"misses\": %zu, "
                "\"evictions\": %zu, \"open_count\": %zu, "
                "\"open_bytes\": %zu},\n",
                cache_stats.hits, cache_stats.misses, cache_stats.evictions,
                cache_stats.open_count, cache_stats.open_bytes);
    std::printf(" \"telemetry\": %s}\n",
                obs::to_json(obs::registry().snapshot()).c_str());
    return 0;
  }
  std::printf("%s %s: %zu points from %zu fragments in %.4fs "
              "(discover %.4f, extract %.4f, query %.4f, merge %.4f)\n",
              scan ? "scan" : "read", region.to_string().c_str(),
              result.values.size(), result.fragments_visited,
              result.times.total(), result.times.discover,
              result.times.extract, result.times.query, result.times.merge);
  std::printf("%s\n", format_cache_stats(cache->stats()).c_str());
  for (const SkippedFragment& skipped : result.skipped) {
    std::printf("skipped %s: %s\n", skipped.path.c_str(),
                skipped.error.c_str());
  }
  if (!result.skipped.empty()) {
    std::printf("answered from %zu of %zu fragments (%zu skipped)\n",
                result.fragments_visited - result.skipped.size(),
                result.fragments_visited, result.skipped.size());
  }
  if (args.has("print")) print_points(result);
  return 0;
}

int cmd_info(const Args& args) {
  const std::string dir = args.get("store");
  detail::require(!dir.empty(), "--store is required");
  const Shape shape = store_shape(dir);
  FragmentStore store(dir, shape);
  std::printf("store %s\n  tensor shape: %s\n  fragments: %zu\n"
              "  total bytes: %zu\n",
              dir.c_str(), shape.to_string().c_str(),
              store.fragment_count(), store.total_file_bytes());
  // Per-fragment detail from the headers.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".asf") {
      continue;
    }
    const FragmentInfo info =
        decode_fragment_info(read_file(entry.path().string()));
    std::printf("  %s: %s, %llu points, bbox %s, codec %s\n",
                entry.path().filename().string().c_str(),
                to_string(info.org).c_str(),
                static_cast<unsigned long long>(info.point_count),
                info.bbox.empty() ? "(empty)" : info.bbox.to_string().c_str(),
                to_string(info.codec).c_str());
  }
  return 0;
}

int cmd_advise(const Args& args) {
  const std::string dir = args.get("store");
  detail::require(!dir.empty(), "--store is required");
  const Shape shape = store_shape(dir);
  FragmentStore store(dir, shape);
  const ReadResult all = store.scan_region(Box::whole(shape));
  detail::require(!all.values.empty(), "store holds no points");

  const SparsityProfile profile = profile_sparsity(all.coords, shape);
  const WorkloadWeights weights = parse_weights(args.get("weights"));
  const Recommendation rec = recommend_organization(
      profile, weights, std::stod(args.get("queries-per-write", "1.0")));

  std::printf("%s\n", profile.to_string().c_str());
  for (const CostEstimate& e : rec.ranking) {
    std::printf("  %-10s score %.3f — %s\n", to_string(e.org).c_str(),
                e.weighted_score, e.rationale.c_str());
  }
  std::printf("recommended: %s\n", to_string(rec.best().org).c_str());
  return 0;
}

int cmd_consolidate(const Args& args) {
  const std::string dir = args.get("store");
  detail::require(!dir.empty(), "--store is required");
  const Shape shape = store_shape(dir);
  FragmentStore store(dir, shape);
  const std::size_t before = store.fragment_count();
  std::optional<OrgKind> org;
  if (args.has("org")) org = parse_org(args.get("org"));
  const WriteResult merged = store.consolidate(org);
  std::printf("consolidated %zu fragments into 1 (%zu points, %zu bytes, "
              "org from fragment header)\n",
              before, merged.point_count, merged.file_bytes);
  return 0;
}

int cmd_export(const Args& args) {
  const std::string dir = args.get("store");
  const std::string tsv = args.get("tsv");
  detail::require(!dir.empty() && !tsv.empty(),
                  "--store and --tsv are required");
  const Shape shape = store_shape(dir);
  FragmentStore store(dir, shape);
  const ReadResult all = store.scan_region(Box::whole(shape));
  write_tsv(tsv, all.coords, all.values);
  std::printf("exported %zu points to %s\n", all.values.size(), tsv.c_str());
  return 0;
}

int cmd_check(const Args& args) {
  const std::string dir = args.get("store");
  detail::require(!dir.empty(), "--store is required");
  const check::Depth depth =
      check::depth_from_string(args.get("depth", "structure"));
  const check::StoreReport report = check::check_store(dir, depth);
  if (args.has("json")) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    for (const auto& fragment : report.fragments) {
      for (const auto& issue : fragment.issues.items()) {
        std::printf("%s: %s: %s\n", fragment.path.c_str(),
                    issue.rule.c_str(), issue.detail.c_str());
      }
    }
    for (const std::string& stray : report.strays) {
      std::printf("%s: stray non-fragment file\n", stray.c_str());
    }
    std::printf("checked %zu fragments at depth %s: %zu ok, %zu corrupt, "
                "%zu strays\n",
                report.checked(), check::to_string(depth).c_str(),
                report.checked() - report.failed(), report.failed(),
                report.strays.size());
  }
  return report.ok() ? 0 : 1;
}

int cmd_repair(const Args& args) {
  const std::string dir = args.get("store");
  detail::require(!dir.empty(), "--store is required");
  const check::Depth depth =
      check::depth_from_string(args.get("depth", "header"));
  const check::RepairReport report = check::repair_store(dir, depth);
  for (const std::string& path : report.swept_tmp) {
    std::printf("swept %s\n", path.c_str());
  }
  for (const std::string& path : report.quarantined) {
    std::printf("quarantined %s\n", path.c_str());
  }
  for (const std::string& path : report.strays) {
    std::printf("stray %s\n", path.c_str());
  }
  std::printf("repaired %s at depth %s: %zu fragments checked, %zu "
              "orphaned tmp swept, %zu quarantined, %zu strays\n",
              report.directory.c_str(), check::to_string(depth).c_str(),
              report.checked, report.swept_tmp.size(),
              report.quarantined.size(), report.strays.size());
  return 0;
}

/// Exercises the full write + read path against a throwaway store so a
/// bare `artsparse metrics` (and the CI smoke job) sees every hot-path
/// metric populated: tiled write, commit, cold reads (cache misses), then
/// a warm re-read (cache hits).
void metrics_selftest() {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("artsparse_metrics_" + std::to_string(::getpid()));
  {
    const Shape shape = parse_shape("64,64");
    const SparseDataset dataset =
        make_dataset(shape, calibrate_gsp(0.02), 7);
    const TileGrid grid(shape, parse_shape("32,32"));
    TiledStore store(dir, grid, TilePolicy::advisor(),
                     DeviceModel::unthrottled(), CodecKind::kIdentity);
    store.write(dataset.coords, dataset.values);
    store.scan_region(Box::whole(shape));  // cold: cache misses
    store.scan_region(Box::whole(shape));  // warm: cache hits
    store.read(dataset.coords);            // point-query path
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

int cmd_metrics(const Args& args) {
  const std::string format = args.get("format", "prometheus");
  detail::require(format == "prometheus" || format == "json" ||
                      format == "both",
                  "--format must be prometheus, json, or both");
  const std::string trace_path = args.get("trace");
  if (!trace_path.empty()) {
    obs::TraceBuffer::global().set_enabled(true);
  }

  if (args.has("store")) {
    // Drive reads over an existing store so the scrape reflects it: one
    // cold pass (misses + fragment loads) and one warm pass (hits).
    const std::string dir = args.get("store");
    const Shape shape = store_shape(dir);
    FragmentStore store(dir, shape);
    const Box region = args.has("region") ? parse_region(args.get("region"))
                                          : Box::whole(shape);
    store.scan_region(region);
    store.scan_region(region);
  } else {
    metrics_selftest();
  }

  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  if (format == "prometheus" || format == "both") {
    std::fputs(obs::to_prometheus(snapshot).c_str(), stdout);
  }
  if (format == "json" || format == "both") {
    std::fputs(obs::to_json(snapshot).c_str(), stdout);
  }

  if (!trace_path.empty()) {
    const std::vector<obs::SpanRecord> spans =
        obs::TraceBuffer::global().snapshot();
    std::ofstream out(trace_path);
    detail::require(static_cast<bool>(out),
                    "cannot open trace output: " + trace_path);
    out << obs::trace_to_chrome(spans);
    std::fprintf(stderr, "trace: %zu spans -> %s\n", spans.size(),
                 trace_path.c_str());
  }
  return 0;
}

/// serve-selftest --chaos: layered failure drill for the deadline,
/// cancellation, and store-health subsystems, run against a throwaway
/// store. Three phases:
///
///   A  slow device, tight budget: delay_ms faults armed on the read path
///      while a session with a short per-op deadline scans a cold store.
///      Every op must end in bounded time — success, a typed
///      DeadlineExceededError, or a partial result with skipped fragments —
///      and at least one deadline trip must be observed (proof the budget
///      actually cut a stalled read short).
///   B  full device: persistent ENOSPC on the commit path until the store
///      degrades to read-only. Degraded writes must fail fast with
///      StoreDegradedError (no retry backoff, no syscalls), reads must
///      keep serving, and once the fault clears a health probe must
///      recover the store so writes succeed again.
///   C  cancellation storm under load: worker threads scan through shared
///      sessions (one tenant tightly quota'd, some sessions deadlined)
///      while the main thread cancels half the sessions mid-flight and a
///      consolidator churns generations. Every op must terminate, and the
///      workers' admitted/rejected tallies must match the
///      AdmissionController's axis accounting with zero in-flight leaks.
///      An ARTSPARSE_FAULT_SPEC from the environment is applied on top
///      for this phase, so CI can mix in arbitrary errno/delay faults.
///
/// A wall-clock watchdog fails the run if the whole drill overruns its
/// budget — a wedged wait is exactly the regression chaos mode exists to
/// catch. Exits nonzero on any failed invariant.
int cmd_serve_selftest_chaos(const Args& args) {
  const unsigned threads = static_cast<unsigned>(
      std::stoul(args.get("threads", "4")));
  const std::size_t ops = std::stoull(args.get("ops", "40"));
  const double watchdog_sec = std::stod(args.get("watchdog-sec", "180"));
  detail::require(threads >= 2, "--chaos wants --threads >= 2");
  WallTimer watchdog;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("artsparse_chaos_" + std::to_string(::getpid()));
  std::error_code cleanup_ec;
  std::filesystem::remove_all(dir, cleanup_ec);

  FaultInjector& faults = FaultInjector::instance();
  std::vector<std::string> problems;
  std::uint64_t deadline_trips = 0;
  std::uint64_t degraded_rejections = 0;
  std::uint64_t cancelled_ops = 0;
  struct TenantCounts {
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> rejected{0};
  };
  TenantCounts alpha_counts;
  TenantCounts beta_counts;
  TenantAdmissionStats alpha_stats;
  TenantAdmissionStats beta_stats;
  StoreHealth final_health = StoreHealth::kHealthy;

  {
    // Setup runs fault-free: the drill arms its own faults per phase.
    faults.reset();
    const Shape shape = parse_shape("96,96");
    FragmentStore store(dir, shape);
    store.set_health_policy(
        HealthPolicy{/*degrade_after=*/2, /*probe_interval_sec=*/0.02});
    const SparseDataset dataset =
        make_dataset(shape, calibrate_gsp(0.05), 11);
    const std::size_t chunk = std::max<std::size_t>(
        1, dataset.point_count() / 4);
    for (std::size_t lo = 0; lo < dataset.point_count(); lo += chunk) {
      const std::size_t hi = std::min(lo + chunk, dataset.point_count());
      CoordBuffer part(shape.rank());
      for (std::size_t i = lo; i < hi; ++i) {
        part.append(dataset.coords.point(i));
      }
      store.write(part,
                  std::span<const value_t>(dataset.values.data() + lo,
                                           hi - lo),
                  OrgKind::kGcsr);
    }

    Service service(store, TenantQuota{});  // alpha: unlimited
    service.admission().set_quota(
        "beta", TenantQuota{/*ops_per_sec=*/25.0, /*bytes_per_sec=*/0.0,
                            /*max_concurrent=*/2});
    const Box region({8, 8}, {72, 72});

    // --- Phase A: delay faults vs a 10 ms per-op deadline. Runs before
    // any scan so the fragment cache is cold and reads genuinely hit the
    // (stalled) device.
    for (std::size_t nth = 1; nth <= 64; ++nth) {
      faults.arm_delay(FaultOp::kRead, nth, 25);
      faults.arm_delay(FaultOp::kOpenRead, nth, 25);
    }
    Session deadlined = service.session("alpha").with_deadline_ms(10);
    for (int i = 0; i < 6; ++i) {
      WallTimer op_timer;
      try {
        const ReadResult result = deadlined.scan(region);
        alpha_counts.admitted.fetch_add(1, std::memory_order_relaxed);
        if (!result.skipped.empty()) ++deadline_trips;
      } catch (const DeadlineExceededError&) {
        alpha_counts.admitted.fetch_add(1, std::memory_order_relaxed);
        ++deadline_trips;
      } catch (const OverloadedError&) {
        alpha_counts.rejected.fetch_add(1, std::memory_order_relaxed);
      }
      // 10 ms budget + one 25 ms delay slice + slack: anything slower
      // means a wait somewhere ignored the deadline.
      if (op_timer.seconds() > 2.0) {
        problems.push_back("phase A: deadlined scan took " +
                           std::to_string(op_timer.seconds()) + " s");
      }
    }
    if (deadline_trips == 0) {
      problems.push_back(
          "phase A: no scan tripped its deadline despite armed delays");
    }
    faults.reset();

    // --- Phase B: persistent ENOSPC until the store degrades, then
    // recovery once the device "frees up".
    for (std::size_t nth = 1; nth <= 64; ++nth) {
      faults.arm(FaultOp::kOpenWrite, nth, ENOSPC);
    }
    Session writer = service.session("alpha");
    CoordBuffer one_point(shape.rank());
    one_point.append({1, 2});
    const value_t one_value[] = {7.0};
    bool degraded = false;
    for (int i = 0; i < 8 && !degraded; ++i) {
      try {
        writer.write(one_point, one_value, OrgKind::kCoo);
        alpha_counts.admitted.fetch_add(1, std::memory_order_relaxed);
        problems.push_back("phase B: write succeeded under full-disk fault");
        break;
      } catch (const StoreDegradedError&) {
        alpha_counts.admitted.fetch_add(1, std::memory_order_relaxed);
        degraded = true;
      } catch (const IoError&) {
        alpha_counts.admitted.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!degraded || store.health() != StoreHealth::kDegraded) {
      problems.push_back("phase B: store did not degrade under ENOSPC");
    } else {
      // Degraded writes must fail fast (no backoff, no syscalls).
      WallTimer reject_timer;
      try {
        writer.write(one_point, one_value, OrgKind::kCoo);
        problems.push_back("phase B: degraded write succeeded");
      } catch (const StoreDegradedError&) {
        ++degraded_rejections;
      }
      alpha_counts.admitted.fetch_add(1, std::memory_order_relaxed);
      if (reject_timer.seconds() > 0.5) {
        problems.push_back("phase B: degraded write was not fail-fast");
      }
      // Reads keep serving while degraded.
      try {
        writer.scan(region);
        alpha_counts.admitted.fetch_add(1, std::memory_order_relaxed);
      } catch (const Error& e) {
        alpha_counts.admitted.fetch_add(1, std::memory_order_relaxed);
        problems.push_back(std::string("phase B: degraded read failed: ") +
                           e.what());
      }
      // Device clears: the probe must bring the store back.
      faults.reset();
      if (store.probe_health() != StoreHealth::kHealthy) {
        problems.push_back("phase B: probe did not recover the store");
      } else {
        try {
          writer.write(one_point, one_value, OrgKind::kCoo);
          alpha_counts.admitted.fetch_add(1, std::memory_order_relaxed);
        } catch (const Error& e) {
          alpha_counts.admitted.fetch_add(1, std::memory_order_relaxed);
          problems.push_back(
              std::string("phase B: post-recovery write failed: ") +
              e.what());
        }
      }
    }
    faults.reset();

    // --- Phase C: cancellation storm. Honor any environment fault spec on
    // top so CI can mix in extra errno/delay chaos.
    faults.configure_from_env();
    std::vector<Session> sessions;
    for (unsigned t = 0; t < threads; ++t) {
      Session session = service.session(t % 2 == 0 ? "alpha" : "beta");
      // Odd sessions also carry a budget, so admission waits and scans
      // race deadlines as well as cancellation.
      sessions.push_back(t % 2 == 0 ? session
                                    : session.with_deadline_ms(50));
    }
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> cancelled_seen{0};
    // Rendezvous so the cancel deterministically lands mid-storm: every
    // worker proves the storm is live (one completed op), the main thread
    // cancels the even sessions, and only then do workers run the rest.
    std::atomic<unsigned> warmed_up{0};
    std::atomic<bool> cancel_issued{false};
    // artsparse-lint: allow(ASL003)
    std::thread consolidator([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          store.consolidate(OrgKind::kSortedCoo);
        } catch (const Error&) {
          // Injected faults may fail a consolidation pass; the next one
          // retries. Health bookkeeping is phase B's subject, not C's.
        }
        interruptible_sleep(0.010);
      }
    });
    std::vector<std::thread> workers;  // artsparse-lint: allow(ASL003)
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Session& session = sessions[t];
        TenantCounts& counts = t % 2 == 0 ? alpha_counts : beta_counts;
        for (std::size_t i = 0; i < ops; ++i) {
          try {
            session.scan(region);
            counts.admitted.fetch_add(1, std::memory_order_relaxed);
          } catch (const OverloadedError&) {
            counts.rejected.fetch_add(1, std::memory_order_relaxed);
          } catch (const CancelledError&) {
            counts.admitted.fetch_add(1, std::memory_order_relaxed);
            cancelled_seen.fetch_add(1, std::memory_order_relaxed);
          } catch (const Error&) {
            // Deadline trips and injected I/O faults: admitted, failed.
            counts.admitted.fetch_add(1, std::memory_order_relaxed);
          }
          if (i == 0) {
            warmed_up.fetch_add(1, std::memory_order_relaxed);
            while (!cancel_issued.load(std::memory_order_acquire)) {
              interruptible_sleep(0.001);
            }
          }
        }
      });
    }
    // Once every worker has one op behind it, cancel half the sessions;
    // the even sessions' remaining ops must all observe the cancel.
    while (warmed_up.load(std::memory_order_relaxed) < threads) {
      interruptible_sleep(0.001);
    }
    for (unsigned t = 0; t < threads; t += 2) {
      sessions[t].cancel();
    }
    cancel_issued.store(true, std::memory_order_release);
    // artsparse-lint: allow(ASL003)
    for (std::thread& worker : workers) worker.join();
    stop.store(true, std::memory_order_relaxed);
    consolidator.join();
    faults.reset();

    cancelled_ops = cancelled_seen.load(std::memory_order_relaxed);
    if (cancelled_ops == 0) {
      problems.push_back("phase C: no op observed its session's cancel");
    }
    alpha_stats = service.admission().stats("alpha");
    beta_stats = service.admission().stats("beta");
    if (alpha_stats.admitted != alpha_counts.admitted.load() ||
        alpha_stats.rejected() != alpha_counts.rejected.load() ||
        beta_stats.admitted != beta_counts.admitted.load() ||
        beta_stats.rejected() != beta_counts.rejected.load()) {
      problems.push_back("admission accounting mismatch");
    }
    if (alpha_stats.in_flight != 0 || beta_stats.in_flight != 0) {
      problems.push_back("admission slot leaked (in_flight != 0)");
    }
    final_health = store.health();
    if (final_health != StoreHealth::kHealthy) {
      problems.push_back("store not healthy at end of drill");
    }
  }
  std::filesystem::remove_all(dir, cleanup_ec);

  if (watchdog.seconds() > watchdog_sec) {
    problems.push_back("watchdog: drill exceeded " +
                       std::to_string(watchdog_sec) + " s");
  }
  const bool ok = problems.empty();

  if (args.has("json")) {
    std::printf(
        "{\"ok\": %s, \"mode\": \"chaos\", \"threads\": %u, "
        "\"ops_per_thread\": %zu,\n"
        " \"deadline_trips\": %llu, \"degraded_rejections\": %llu, "
        "\"cancelled_ops\": %llu,\n"
        " \"final_health\": \"%s\", \"elapsed_sec\": %.3f,\n"
        " \"problems\": [",
        ok ? "true" : "false", threads, ops,
        static_cast<unsigned long long>(deadline_trips),
        static_cast<unsigned long long>(degraded_rejections),
        static_cast<unsigned long long>(cancelled_ops),
        to_string(final_health), watchdog.seconds());
    for (std::size_t i = 0; i < problems.size(); ++i) {
      std::printf("%s\"%s\"", i == 0 ? "" : ", ", problems[i].c_str());
    }
    std::printf("]}\n");
  } else {
    std::printf(
        "serve-selftest --chaos: %s (%.1f s)\n"
        "  deadline trips: %llu, degraded rejections: %llu, cancelled "
        "ops: %llu, final health: %s\n",
        ok ? "ok" : "FAILED", watchdog.seconds(),
        static_cast<unsigned long long>(deadline_trips),
        static_cast<unsigned long long>(degraded_rejections),
        static_cast<unsigned long long>(cancelled_ops),
        to_string(final_health));
    for (const std::string& problem : problems) {
      std::printf("  problem: %s\n", problem.c_str());
    }
  }
  return ok ? 0 : 1;
}

/// Multi-tenant service stress mode: hammers a throwaway store through the
/// service layer from several threads (two tenants, one of them tightly
/// quota'd) while consolidation runs concurrently, then cross-checks
///   - every request the workers saw admitted/rejected is accounted
///     identically by the AdmissionController (the CI gate),
///   - batched scans returned byte-identical results to sequential scans,
///   - no admission slot leaked (in_flight back to 0).
/// Exits nonzero on any mismatch. With --chaos, runs the failure drill
/// above instead.
int cmd_serve_selftest(const Args& args) {
  if (args.has("chaos")) return cmd_serve_selftest_chaos(args);
  const unsigned threads = static_cast<unsigned>(
      std::stoul(args.get("threads", "4")));
  const std::size_t ops = std::stoull(args.get("ops", "150"));
  detail::require(threads >= 1, "--threads must be >= 1");

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("artsparse_serve_" + std::to_string(::getpid()));
  std::error_code cleanup_ec;
  std::filesystem::remove_all(dir, cleanup_ec);

  int failures = 0;
  std::size_t batch_mismatches = 0;
  std::uint64_t generation_start = 0;
  std::uint64_t generation_end = 0;
  struct TenantCounts {
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> rejected{0};
  };
  TenantCounts alpha_counts;
  TenantCounts beta_counts;
  TenantAdmissionStats alpha_stats;
  TenantAdmissionStats beta_stats;
  BatchStats batch_stats;

  {
    const Shape shape = parse_shape("96,96");
    FragmentStore store(dir, shape);
    const SparseDataset dataset =
        make_dataset(shape, calibrate_gsp(0.05), 11);
    // Several fragments so scans genuinely fan out and consolidation has
    // something to merge.
    const std::size_t chunk = std::max<std::size_t>(
        1, dataset.point_count() / 4);
    for (std::size_t lo = 0; lo < dataset.point_count(); lo += chunk) {
      const std::size_t hi = std::min(lo + chunk, dataset.point_count());
      CoordBuffer part(shape.rank());
      for (std::size_t i = lo; i < hi; ++i) {
        part.append(dataset.coords.point(i));
      }
      store.write(part,
                  std::span<const value_t>(dataset.values.data() + lo,
                                           hi - lo),
                  OrgKind::kGcsr);
    }
    generation_start = store.generation();

    Service service(store, TenantQuota{});  // alpha: unlimited
    // beta: tight enough that a multi-threaded run must bounce requests.
    service.admission().set_quota(
        "beta", TenantQuota{/*ops_per_sec=*/25.0, /*bytes_per_sec=*/0.0,
                            /*max_concurrent=*/2});

    // Probe: batched scans must be byte-identical to sequential ones.
    std::vector<Box> regions;
    for (index_t lo = 0; lo + 40 <= 96; lo += 16) {
      regions.push_back(Box({lo, lo / 2}, {lo + 39, lo / 2 + 39}));
    }
    const std::vector<ReadResult> batched =
        store.snapshot().scan_batch(regions);
    for (std::size_t i = 0; i < regions.size(); ++i) {
      const ReadResult sequential = store.scan_region(regions[i]);
      if (batched[i].values != sequential.values ||
          batched[i].coords != sequential.coords) {
        ++batch_mismatches;
      }
    }

    // Stress: workers alternate tenants; consolidation runs concurrently.
    // Raw threads on purpose: the selftest drives the service the way an
    // external client would, from threads the store's own parallel_for
    // machinery knows nothing about.
    std::atomic<bool> stop{false};
    // artsparse-lint: allow(ASL003)
    std::thread consolidator([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        store.consolidate(OrgKind::kSortedCoo);
        interruptible_sleep(0.010);
      }
    });
    std::vector<std::thread> workers;  // artsparse-lint: allow(ASL003)
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Session session =
            service.session(t % 2 == 0 ? "alpha" : "beta");
        TenantCounts& counts = t % 2 == 0 ? alpha_counts : beta_counts;
        const Box region({8, 8}, {72, 72});
        for (std::size_t i = 0; i < ops; ++i) {
          try {
            session.scan(region);
            counts.admitted.fetch_add(1, std::memory_order_relaxed);
          } catch (const OverloadedError&) {
            counts.rejected.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    // artsparse-lint: allow(ASL003)
    for (std::thread& worker : workers) worker.join();
    stop.store(true, std::memory_order_relaxed);
    consolidator.join();

    generation_end = store.generation();
    alpha_stats = service.admission().stats("alpha");
    beta_stats = service.admission().stats("beta");
    batch_stats = service.batch_stats();
  }
  std::filesystem::remove_all(dir, cleanup_ec);

  // The CI gate: what the workers observed must equal what admission
  // accounted, axis by axis, and nothing may still be in flight.
  if (alpha_stats.admitted != alpha_counts.admitted.load() ||
      alpha_stats.rejected() != alpha_counts.rejected.load() ||
      beta_stats.admitted != beta_counts.admitted.load() ||
      beta_stats.rejected() != beta_counts.rejected.load() ||
      alpha_stats.in_flight != 0 || beta_stats.in_flight != 0 ||
      batch_mismatches != 0) {
    failures = 1;
  }

  if (args.has("json")) {
    std::printf(
        "{\"ok\": %s, \"threads\": %u, \"ops_per_thread\": %zu,\n"
        " \"generation\": {\"start\": %llu, \"end\": %llu},\n"
        " \"tenants\": {\n"
        "  \"alpha\": {\"admitted\": %llu, \"admitted_accounted\": %llu, "
        "\"rejected\": %llu, \"rejected_accounted\": %llu, "
        "\"in_flight\": %zu},\n"
        "  \"beta\": {\"admitted\": %llu, \"admitted_accounted\": %llu, "
        "\"rejected\": %llu, \"rejected_accounted\": %llu, "
        "\"in_flight\": %zu}},\n"
        " \"batch\": {\"batches\": %llu, \"requests\": %llu, "
        "\"max_batch\": %llu, \"mismatches\": %zu}}\n",
        failures == 0 ? "true" : "false", threads, ops,
        static_cast<unsigned long long>(generation_start),
        static_cast<unsigned long long>(generation_end),
        static_cast<unsigned long long>(alpha_counts.admitted.load()),
        static_cast<unsigned long long>(alpha_stats.admitted),
        static_cast<unsigned long long>(alpha_counts.rejected.load()),
        static_cast<unsigned long long>(alpha_stats.rejected()),
        alpha_stats.in_flight,
        static_cast<unsigned long long>(beta_counts.admitted.load()),
        static_cast<unsigned long long>(beta_stats.admitted),
        static_cast<unsigned long long>(beta_counts.rejected.load()),
        static_cast<unsigned long long>(beta_stats.rejected()),
        beta_stats.in_flight,
        static_cast<unsigned long long>(batch_stats.batches),
        static_cast<unsigned long long>(batch_stats.requests),
        static_cast<unsigned long long>(batch_stats.max_batch),
        batch_mismatches);
  } else {
    std::printf(
        "serve-selftest: %s (%u threads x %zu ops, generation %llu -> "
        "%llu)\n"
        "  alpha: %llu admitted, %llu rejected (accounting %s)\n"
        "  beta:  %llu admitted, %llu rejected (accounting %s)\n"
        "  batches: %llu for %llu requests (max %llu), %zu result "
        "mismatches\n",
        failures == 0 ? "ok" : "FAILED", threads, ops,
        static_cast<unsigned long long>(generation_start),
        static_cast<unsigned long long>(generation_end),
        static_cast<unsigned long long>(alpha_counts.admitted.load()),
        static_cast<unsigned long long>(alpha_counts.rejected.load()),
        alpha_stats.admitted == alpha_counts.admitted.load() ? "ok"
                                                             : "MISMATCH",
        static_cast<unsigned long long>(beta_counts.admitted.load()),
        static_cast<unsigned long long>(beta_counts.rejected.load()),
        beta_stats.admitted == beta_counts.admitted.load() ? "ok"
                                                           : "MISMATCH",
        static_cast<unsigned long long>(batch_stats.batches),
        static_cast<unsigned long long>(batch_stats.requests),
        static_cast<unsigned long long>(batch_stats.max_batch),
        batch_mismatches);
  }
  return failures;
}

int run(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.command == "generate") return cmd_generate(args);
  if (args.command == "import") return cmd_import(args);
  if (args.command == "read") return cmd_read(args, false);
  if (args.command == "scan") return cmd_read(args, true);
  if (args.command == "info") return cmd_info(args);
  if (args.command == "advise") return cmd_advise(args);
  if (args.command == "consolidate") return cmd_consolidate(args);
  if (args.command == "export") return cmd_export(args);
  if (args.command == "check") return cmd_check(args);
  if (args.command == "repair") return cmd_repair(args);
  if (args.command == "metrics") return cmd_metrics(args);
  if (args.command == "serve-selftest") return cmd_serve_selftest(args);
  return usage();
}

}  // namespace
}  // namespace artsparse::cli

int main(int argc, char** argv) {
  try {
    return artsparse::cli::run(argc, argv);
  } catch (const artsparse::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
