#!/usr/bin/env python3
"""artsparse project-rule linter.

Enforces the codebase's layering contracts that neither the compiler nor
clang-tidy can see -- which layer is allowed to touch which OS facility,
and the thread-safety annotation discipline for headers:

  ASL001 raw-getenv        std::getenv outside core/env. Every knob reads
                           through env_u64/env_flag/env_string so the
                           hardened parsing contract stays in one place.
  ASL002 raw-file-op       ::unlink/::rename/std::rename/fopen outside
                           storage/file_io. The file_io layer owns fault
                           injection hooks and errno mapping; raw calls
                           bypass both. std::filesystem::* is fine -- the
                           rule targets the bare C API only.
  ASL003 naked-thread      std::thread construction outside core/parallel.
                           parallel_for owns worker-count policy, error
                           funnelling, and the test-only thread spawner
                           hook; ad-hoc threads escape all three.
  ASL004 obs-macro-header  ARTSPARSE_COUNT/OBSERVE/GAUGE_ADD in a header
                           outside an #if region mentioning ARTSPARSE_OBS.
                           Headers are included everywhere; unguarded obs
                           macros drag the metrics registry into every TU
                           even for obs-disabled builds.
  ASL005 unguarded-mutex   A mutex member in a header without an
                           ARTSPARSE_GUARDED_BY(that_mutex) sibling, or a
                           raw std::mutex/std::shared_mutex member instead
                           of the annotated core/thread_safety wrappers.
                           A mutex that guards nothing it can name is a
                           lock the thread-safety analysis cannot check.
  ASL006 raw-sleep         std::this_thread::sleep_for/sleep_until outside
                           core/deadline and storage/throttle. Raw sleeps
                           ignore the ambient deadline and cancel token;
                           wait through core/deadline's interruptible_sleep
                           so every block is budget-aware.

Suppression: a comment `artsparse-lint: allow(ASL003)` suppresses that
rule on its own line and the line directly below. Suppressions are for
deliberate, justified exceptions -- pair them with a why.

Exit codes: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass

SOURCE_EXTENSIONS = (".cpp", ".hpp")
HEADER_EXTENSIONS = (".hpp",)

# Paths (suffix-matched against the /-normalized relative path) where a
# rule's restricted construct is the sanctioned implementation site.
EXEMPT_SUFFIXES = {
    "ASL001": ("core/env.cpp",),
    "ASL002": ("storage/file_io.cpp", "storage/file_io.hpp"),
    "ASL003": ("core/parallel.cpp", "core/parallel.hpp"),
    "ASL004": ("obs/metrics.hpp",),  # the macros' definition site
    "ASL005": ("core/thread_safety.hpp",),  # the annotated wrappers
    # interruptible_sleep's implementation, and the throttle's modeled
    # device-time charge (whose wait already routes through it).
    "ASL006": ("core/deadline.cpp", "core/deadline.hpp",
               "storage/throttle.cpp"),
}

ALLOW_RE = re.compile(r"artsparse-lint:\s*allow\(\s*(ASL\d{3})\s*\)")

GETENV_RE = re.compile(r"(?<![\w:])(?:std::)?getenv\s*\(")
# Bare C file API: `::rename(`, `std::rename(`, `::unlink(`, `unlink(`,
# `fopen(`. Deliberately does NOT match std::filesystem::rename (the
# lookbehind rejects `filesystem::rename` and member calls like
# `ec.rename`).
RAW_FILE_OP_RE = re.compile(
    r"(?:(?<![\w:])(?:std::|::)rename\s*\()"
    r"|(?:(?<![\w:])(?:std::|::)?unlink\s*\()"
    r"|(?:(?<![\w:])(?:std::|::)?fopen\s*\()"
)
THREAD_RE = re.compile(r"\bstd::thread\b(?!::hardware_concurrency)")
OBS_MACRO_RE = re.compile(
    r"\bARTSPARSE_(?:COUNT|COUNT_L|OBSERVE|OBSERVE_L|GAUGE_ADD)\s*\("
)
RAW_SLEEP_RE = re.compile(r"\bstd::this_thread::sleep_(?:for|until)\s*\(")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(?P<type>(?:artsparse::)?(?:Mutex|SharedMutex)|"
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex))\s+"
    r"(?P<name>\w+)\s*(?:;|ARTSPARSE_GUARDED_BY)"
)
GUARDED_BY_RE = re.compile(r"ARTSPARSE_(?:PT_)?GUARDED_BY\(\s*(\w+)")
PP_IF_RE = re.compile(r"^\s*#\s*(if|ifdef|ifndef)\b(.*)")
PP_ELSE_RE = re.compile(r"^\s*#\s*(else|elif)\b(.*)")
PP_ENDIF_RE = re.compile(r"^\s*#\s*endif\b")
PP_DEFINE_RE = re.compile(r"^\s*#\s*(define|undef)\b")


@dataclass
class Violation:
    rule: str
    path: str
    line: int
    message: str
    snippet: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
        }


def strip_comments(lines: list[str]) -> list[str]:
    """Blanks out // and /* */ comment text (preserving line count) so the
    rules match code, not prose. String literals are left alone: none of
    the restricted constructs is plausible inside one with the trailing
    `(` the regexes require."""
    stripped: list[str] = []
    in_block = False
    for line in lines:
        out: list[str] = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            out.append(line[i])
            i += 1
        stripped.append("".join(out))
    return stripped


def allowed_rules_by_line(lines: list[str]) -> dict[int, set[str]]:
    """Lines (0-based) each allow-comment suppresses: its own and the
    next, so the comment can sit above the flagged line or trail it."""
    allowed: dict[int, set[str]] = {}
    for idx, line in enumerate(lines):
        for match in ALLOW_RE.finditer(line):
            for target in (idx, idx + 1):
                allowed.setdefault(target, set()).add(match.group(1))
    return allowed


def exempt(rule: str, rel_path: str) -> bool:
    return rel_path.endswith(EXEMPT_SUFFIXES[rule])


class PreprocessorTracker:
    """Tracks the active #if nesting so ASL004 can ask whether a line is
    inside a region whose condition mentions ARTSPARSE_OBS. An #else
    flips the region's condition out of scope (the obs-disabled branch of
    the guard is not obs-guarded code)."""

    def __init__(self) -> None:
        self._stack: list[bool] = []

    def feed(self, line: str) -> None:
        if match := PP_IF_RE.match(line):
            self._stack.append("ARTSPARSE_OBS" in match.group(2))
        elif match := PP_ELSE_RE.match(line):
            if self._stack:
                self._stack[-1] = "ARTSPARSE_OBS" in match.group(2)
        elif PP_ENDIF_RE.match(line):
            if self._stack:
                self._stack.pop()

    def in_obs_guard(self) -> bool:
        return any(self._stack)


def lint_file(path: str, rel_path: str) -> list[Violation]:
    try:
        with open(path, encoding="utf-8", errors="replace") as handle:
            raw_lines = handle.read().splitlines()
    except OSError as error:
        raise SystemExit(f"artsparse_lint: cannot read {path}: {error}")

    code_lines = strip_comments(raw_lines)
    allowed = allowed_rules_by_line(raw_lines)
    is_header = rel_path.endswith(HEADER_EXTENSIONS)
    violations: list[Violation] = []

    def report(rule: str, idx: int, message: str) -> None:
        if rule in allowed.get(idx, set()):
            return
        violations.append(
            Violation(rule, rel_path, idx + 1, message,
                      raw_lines[idx].strip()))

    # ASL005 needs the file-wide set of guarded mutex names first.
    guarded_names = set()
    for line in code_lines:
        guarded_names.update(GUARDED_BY_RE.findall(line))

    tracker = PreprocessorTracker()
    for idx, line in enumerate(code_lines):
        tracker.feed(line)
        is_pp_define = bool(PP_DEFINE_RE.match(line))

        if not exempt("ASL001", rel_path) and GETENV_RE.search(line):
            report("ASL001", idx,
                   "raw std::getenv; read knobs through core/env "
                   "(env_u64 / env_flag / env_string)")
        if not exempt("ASL002", rel_path) and RAW_FILE_OP_RE.search(line):
            report("ASL002", idx,
                   "raw C file API; route through storage/file_io so "
                   "fault injection and errno mapping apply")
        if not exempt("ASL003", rel_path) and THREAD_RE.search(line):
            report("ASL003", idx,
                   "naked std::thread; use core/parallel (parallel_for / "
                   "parallel_for_each) or justify with an allow comment")
        if not exempt("ASL006", rel_path) and RAW_SLEEP_RE.search(line):
            report("ASL006", idx,
                   "raw std::this_thread sleep; wait through core/deadline"
                   "'s interruptible_sleep so the deadline and cancel "
                   "token are observed")
        if (is_header and not is_pp_define
                and not exempt("ASL004", rel_path)
                and OBS_MACRO_RE.search(line)
                and not tracker.in_obs_guard()):
            report("ASL004", idx,
                   "obs macro in a header outside an ARTSPARSE_OBS "
                   "preprocessor guard")
        if is_header and not exempt("ASL005", rel_path):
            if match := MUTEX_MEMBER_RE.match(line):
                mutex_type = match.group("type")
                name = match.group("name")
                if mutex_type.startswith("std::"):
                    report("ASL005", idx,
                           f"raw {mutex_type} member; use the annotated "
                           "Mutex/SharedMutex from core/thread_safety.hpp")
                elif name not in guarded_names:
                    report("ASL005", idx,
                           f"mutex member '{name}' has no "
                           f"ARTSPARSE_GUARDED_BY({name}) sibling; "
                           "annotate what it protects")
    return violations


def collect_files(root: str, paths: list[str]) -> list[tuple[str, str]]:
    """(absolute, root-relative) pairs to lint. Explicit paths are taken
    as given (fixture trees included); the default scan walks src/ and
    tools/, skipping fixture and build directories."""
    pairs: list[tuple[str, str]] = []
    if paths:
        for path in paths:
            absolute = os.path.abspath(path)
            if os.path.isdir(absolute):
                pairs.extend(walk(root, absolute, skip_fixtures=False))
            else:
                pairs.append((absolute, relativize(root, absolute)))
        return pairs
    for scan_dir in ("src", "tools"):
        pairs.extend(
            walk(root, os.path.join(root, scan_dir), skip_fixtures=True))
    return pairs


def walk(root: str, directory: str,
         skip_fixtures: bool) -> list[tuple[str, str]]:
    pairs: list[tuple[str, str]] = []
    for dirpath, dirnames, filenames in os.walk(directory):
        dirnames[:] = sorted(
            d for d in dirnames
            if not d.startswith("build")
            and not (skip_fixtures and d == "lint_fixtures"))
        for filename in sorted(filenames):
            if filename.endswith(SOURCE_EXTENSIONS):
                absolute = os.path.join(dirpath, filename)
                pairs.append((absolute, relativize(root, absolute)))
    return pairs


def relativize(root: str, absolute: str) -> str:
    relative = os.path.relpath(absolute, root)
    return relative.replace(os.sep, "/")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="artsparse_lint",
        description="artsparse project-rule linter (rules ASL001-ASL006)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src/ and tools/ under --root)")
    parser.add_argument("--root", default=None,
                        help="repository root for rule path scoping "
                             "(default: the directory above this script)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit a JSON report on stdout")
    options = parser.parse_args(argv)

    root = os.path.abspath(options.root) if options.root else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    violations: list[Violation] = []
    files = collect_files(root, options.paths)
    for absolute, relative in files:
        violations.extend(lint_file(absolute, relative))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))

    if options.as_json:
        print(json.dumps({
            "checked_files": len(files),
            "violations": [v.as_dict() for v in violations],
        }, indent=2))
    else:
        for violation in violations:
            print(f"{violation.path}:{violation.line}: "
                  f"[{violation.rule}] {violation.message}\n"
                  f"    {violation.snippet}")
        print(f"artsparse_lint: {len(files)} files checked, "
              f"{len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
