#!/usr/bin/env python3
"""Self-test for artsparse_lint.py: pins each rule id against its fixture
(tools/lint_fixtures/), the exit-code contract, the JSON report shape,
and a clean scan of the real tree. Run directly or via the lint_selftest
ctest."""

import json
import os
import subprocess
import sys
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
LINTER = os.path.join(TOOLS_DIR, "artsparse_lint.py")
FIXTURES = os.path.join(TOOLS_DIR, "lint_fixtures")


def run_lint(*paths, as_json=True):
    command = [sys.executable, LINTER, "--root", REPO_ROOT]
    if as_json:
        command.append("--json")
    command.extend(paths)
    completed = subprocess.run(command, capture_output=True, text=True)
    report = json.loads(completed.stdout) if as_json else None
    return completed.returncode, report, completed.stdout


def fixture(name):
    return os.path.join(FIXTURES, name)


class RuleFixtures(unittest.TestCase):
    def assert_rules(self, path, expected_rules):
        exit_code, report, _ = run_lint(fixture(path))
        rules = [v["rule"] for v in report["violations"]]
        self.assertEqual(rules, expected_rules)
        self.assertEqual(exit_code, 1 if expected_rules else 0)

    def test_asl001_raw_getenv(self):
        self.assert_rules("bad_getenv.cpp", ["ASL001"])

    def test_asl002_raw_file_ops_not_filesystem(self):
        # Three raw C calls flagged; the std::filesystem calls are not.
        self.assert_rules("bad_file_ops.cpp",
                          ["ASL002", "ASL002", "ASL002"])

    def test_asl003_naked_thread(self):
        # Construction flagged; hardware_concurrency query is not.
        self.assert_rules("bad_thread.cpp", ["ASL003"])

    def test_asl004_obs_macro_outside_guard(self):
        # The unguarded use only; the #if ARTSPARSE_OBS_ENABLED one is ok.
        self.assert_rules("bad_obs_header.hpp", ["ASL004"])

    def test_asl005_unguarded_and_raw_mutex(self):
        self.assert_rules("bad_mutex.hpp", ["ASL005", "ASL005"])

    def test_asl006_raw_sleep(self):
        # sleep_for and sleep_until both flagged.
        self.assert_rules("bad_sleep.cpp", ["ASL006", "ASL006"])

    def test_suppression_comment(self):
        self.assert_rules("suppressed.cpp", [])

    def test_clean_fixture(self):
        self.assert_rules("clean.hpp", [])


class ReportShape(unittest.TestCase):
    def test_json_fields_and_line_numbers(self):
        _, report, _ = run_lint(fixture("bad_getenv.cpp"))
        self.assertEqual(report["checked_files"], 1)
        (violation,) = report["violations"]
        self.assertEqual(violation["rule"], "ASL001")
        self.assertTrue(violation["path"].endswith("bad_getenv.cpp"))
        self.assertEqual(violation["line"], 5)
        self.assertIn("core/env", violation["message"])
        self.assertIn("getenv", violation["snippet"])

    def test_text_mode_mentions_rule_and_count(self):
        exit_code, _, stdout = run_lint(fixture("bad_thread.cpp"),
                                        as_json=False)
        self.assertEqual(exit_code, 1)
        self.assertIn("[ASL003]", stdout)
        self.assertIn("1 violation(s)", stdout)


class RealTree(unittest.TestCase):
    def test_src_and_tools_are_clean(self):
        # The default scan (src/ + tools/, fixtures excluded) must pass:
        # this is the same invocation CI gates on.
        exit_code, report, _ = run_lint()
        self.assertEqual(
            [v for v in report["violations"]], [],
            "project tree has lint violations; run "
            "tools/artsparse_lint.py for details")
        self.assertEqual(exit_code, 0)
        # Sanity: the scan actually covered the tree.
        self.assertGreater(report["checked_files"], 50)

    def test_sanctioned_sites_are_exempt(self):
        # core/env.cpp's getenv and file_io's rename are the sanctioned
        # implementations; linting them directly stays clean.
        exit_code, _, _ = run_lint(
            os.path.join(REPO_ROOT, "src", "core", "env.cpp"),
            os.path.join(REPO_ROOT, "src", "storage", "file_io.cpp"),
            os.path.join(REPO_ROOT, "src", "core", "parallel.cpp"),
            os.path.join(REPO_ROOT, "src", "core", "deadline.cpp"),
            os.path.join(REPO_ROOT, "src", "storage", "throttle.cpp"))
        self.assertEqual(exit_code, 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
