// Regenerates the checked-in seed corpus under fuzz/corpus/: one valid
// fragment per (organization, codec) pairing for fuzz_fragment, and one
// org-byte-prefixed serialized index per organization for fuzz_format.
// Valid inputs seed the fuzzers deep inside the parsers instead of leaving
// them to rediscover the magic/CRC framing byte by byte.
//
//   make_seed_corpus <corpus_dir>     (writes fragment/ and format/ below)
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/box.hpp"
#include "core/coords.hpp"
#include "core/shape.hpp"
#include "formats/format.hpp"
#include "formats/registry.hpp"
#include "storage/fragment.hpp"

namespace {

using namespace artsparse;

/// The paper's Fig. 1 example: five points in a 3x3x3 tensor.
CoordBuffer example_coords() {
  CoordBuffer coords(3);
  coords.append({0, 0, 0});
  coords.append({0, 1, 2});
  coords.append({1, 0, 1});
  coords.append({2, 1, 0});
  coords.append({2, 2, 2});
  return coords;
}

void write_bytes(const std::filesystem::path& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

Bytes fragment_bytes(OrgKind org, CodecKind codec) {
  const CoordBuffer coords = example_coords();
  const Shape shape({3, 3, 3});
  auto format = make_format(org);
  format->build(coords, shape);
  Fragment fragment;
  fragment.org = org;
  fragment.codec = codec;
  fragment.shape = shape;
  fragment.bbox = Box::bounding(coords);
  fragment.point_count = coords.size();
  fragment.index = serialize_format(*format);
  fragment.values = {1.0, 2.0, 3.0, 4.0, 5.0};
  return encode_fragment(fragment);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_seed_corpus <corpus_dir>\n");
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  const auto fragment_dir = root / "fragment";
  const auto format_dir = root / "format";
  std::filesystem::create_directories(fragment_dir);
  std::filesystem::create_directories(format_dir);

  int written = 0;
  for (OrgKind org : all_org_kinds()) {
    const std::string name = to_string(org);
    for (CodecKind codec : {CodecKind::kIdentity, CodecKind::kDeltaVarint,
                            CodecKind::kRle}) {
      write_bytes(fragment_dir /
                      (name + "_" + to_string(codec) + ".asf"),
                  fragment_bytes(org, codec));
      ++written;
    }
    // fuzz_format convention: first byte selects the organization.
    auto format = make_format(org);
    format->build(example_coords(), Shape({3, 3, 3}));
    Bytes seed{static_cast<std::byte>(org)};
    const Bytes index = serialize_format(*format);
    seed.insert(seed.end(), index.begin(), index.end());
    write_bytes(format_dir / (name + ".bin"), seed);
    ++written;
  }
  // An empty fragment exercises the zero-point paths.
  Fragment empty;
  empty.shape = Shape({3, 3, 3});
  write_bytes(fragment_dir / "empty.asf", encode_fragment(empty));
  ++written;

  std::printf("wrote %d seeds under %s\n", written, root.string().c_str());
  return 0;
}
