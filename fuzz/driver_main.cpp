// Standalone replay driver: lets the fuzz targets build and run without
// libFuzzer (e.g. under GCC), replaying every file — or every file inside a
// directory — passed on the command line. libFuzzer-style option arguments
// (leading '-') are ignored so the same invocation works for both builds.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.string().c_str());
    return 1;
  }
  std::vector<char> data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(data.data()),
                         data.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;  // libFuzzer option, not an input
    const std::filesystem::path path(argv[i]);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (!entry.is_regular_file()) continue;
        if (replay_file(entry.path()) != 0) return 2;
        ++replayed;
      }
    } else {
      if (replay_file(path) != 0) return 2;
      ++replayed;
    }
  }
  std::printf("replayed %d inputs\n", replayed);
  return 0;
}
