// Fuzz target for the fragment decoder — the outermost untrusted surface:
// bytes read from disk go straight into decode_fragment(). The contract
// under fuzzing: arbitrary input either decodes or throws artsparse::Error.
// Crashes, sanitizer reports, or foreign exceptions are findings.
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "check/validate.hpp"
#include "core/error.hpp"
#include "formats/format.hpp"
#include "formats/registry.hpp"
#include "storage/fragment.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(data), size);
  try {
    const artsparse::Fragment fragment = artsparse::decode_fragment(bytes);
    // A fragment that decodes must also survive the read path and the deep
    // validators without UB (they may *report* issues, never crash).
    artsparse::check::Issues issues;
    artsparse::check::check_fragment_bytes(
        bytes, artsparse::check::Depth::kFull, issues);
    auto format = artsparse::load_format(fragment.org, fragment.index);
    if (fragment.shape.rank() > 0) {
      const std::vector<artsparse::index_t> probe(fragment.shape.rank(), 0);
      format->lookup(probe);
    }
  } catch (const artsparse::Error&) {
    // Expected for malformed input.
  }
  try {
    artsparse::decode_fragment_info(bytes);
  } catch (const artsparse::Error&) {
  }
  return 0;
}
