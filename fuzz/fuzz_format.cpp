// Fuzz target for SparseFormat::load() — the layer below the fragment
// decoder, reached with attacker-controlled bytes once the fragment CRC is
// forged or the index is corrupted in memory. The first input byte selects
// the organization; the rest is the serialized index. Arbitrary input must
// either load or throw artsparse::Error, and a successful load must leave
// an object whose whole read API is memory-safe.
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "check/issues.hpp"
#include "core/box.hpp"
#include "core/coords.hpp"
#include "core/error.hpp"
#include "formats/format.hpp"
#include "formats/registry.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const auto orgs = artsparse::all_org_kinds();
  const artsparse::OrgKind org = orgs[data[0] % orgs.size()];
  const std::span<const std::byte> payload(
      reinterpret_cast<const std::byte*>(data + 1), size - 1);
  try {
    auto format = artsparse::load_format(org, payload);
    format->index_bytes();
    artsparse::check::Issues issues;
    format->check_invariants(issues);
    const artsparse::Shape& shape = format->tensor_shape();
    if (shape.rank() > 0) {
      const std::vector<artsparse::index_t> probe(shape.rank(), 0);
      format->lookup(probe);
      artsparse::CoordBuffer points(shape.rank());
      std::vector<std::size_t> slots;
      format->scan_box(artsparse::Box::whole(shape), points, slots);
    }
  } catch (const artsparse::Error&) {
    // Expected for malformed input.
  }
  return 0;
}
